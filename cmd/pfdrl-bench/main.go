// Command pfdrl-bench regenerates the paper's evaluation figures. Every
// figure of Section 5 (Figs 2–14) has a driver; select one with -fig or
// run the whole suite with -fig all. -throughput runs the end-to-end
// homes × GOMAXPROCS scaling sweep instead (see BENCH_throughput.json);
// -comms runs the fleet-size × codec federation comms sweep
// (see BENCH_comms.json); -topology runs the fleet-size ×
// federation-topology sweep (see BENCH_topology.json); -store runs the
// compressed trace-store codec + memory sweep (see BENCH_store.json).
//
// Usage:
//
//	pfdrl-bench -fig 9              # method comparison (Fig 9)
//	pfdrl-bench -fig all -homes 8 -days 10
//	pfdrl-bench -throughput -out BENCH_throughput.json
//	pfdrl-bench -comms -out BENCH_comms.json
//	pfdrl-bench -topology -topo-homes 256,1024,4096 -out BENCH_topology.json
//	pfdrl-bench -store -store-homes 64,256,1024 -out BENCH_store.json
//	pfdrl-bench -fig 9 -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/benchmeta"
	"repro/internal/experiments"
	"repro/internal/plot"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pfdrl-bench: ")

	var (
		fig    = flag.String("fig", "all", "figure to regenerate: 2..14 or 'all'")
		homes  = flag.Int("homes", 0, "override homes")
		days   = flag.Int("days", 0, "override days")
		seed   = flag.Int64("seed", 1, "random seed")
		csvDir = flag.String("csv", "", "also write each figure as CSV into this directory")
		ablate = flag.String("ablation", "", "run an ablation instead of figures: 'topology' or 'scaling'")
		svgDir = flag.String("svg", "", "also render each figure as an SVG line chart into this directory")

		throughput = flag.Bool("throughput", false, "run the homes × GOMAXPROCS end-to-end scaling sweep instead of figures")
		sweepHomes = flag.String("sweep-homes", "2,4,8", "comma-separated home counts for -throughput")
		sweepProcs = flag.String("sweep-procs", "1,2,4", "comma-separated GOMAXPROCS values for -throughput")
		sweepDays  = flag.Int("sweep-days", 2, "simulated days per -throughput cell")
		out        = flag.String("out", "", "output file (default BENCH_throughput.json / BENCH_comms.json)")
		baseline   = flag.String("baseline", "", "previous -throughput JSON to embed under \"baseline\" for before/after comparison")
		effFloor   = flag.Float64("efficiency-floor", 0, "fail -throughput if any ≥8-home GOMAXPROCS=4 cell's parallel efficiency drops below this (0 disables the gate)")

		comms       = flag.Bool("comms", false, "run the fleet-size × codec federation comms sweep instead of figures")
		commsAgents = flag.String("comms-agents", "4,8,16,32", "comma-separated fleet sizes for -comms")
		commsRounds = flag.Int("comms-rounds", 9, "federation rounds per -comms cell (round 1 is the dense keyframe)")

		topology    = flag.Bool("topology", false, "run the fleet-size × federation-topology sweep instead of figures")
		topoHomes   = flag.String("topo-homes", "256,1024,4096", "comma-separated fleet sizes for -topology round cells")
		topoK       = flag.Int("topo-k", 8, "peers sampled per round for -topology sampled cells")
		topoCluster = flag.Int("topo-cluster", 64, "homes per cluster for -topology cluster cells")
		topoRounds  = flag.Int("topo-rounds", 3, "federation rounds per -topology round cell")
		topoDays    = flag.Int("topo-sim-days", 2, "simulated days per -topology end-to-end cell")

		storeSweep = flag.Bool("store", false, "run the compressed trace-store codec + memory sweep instead of figures")
		storeHomes = flag.String("store-homes", "64,256,1024", "comma-separated fleet sizes for the -store memory sweep")
		storeXL    = flag.Int("store-xl", 4096, "extra store-only fleet size for -store (0 disables)")
		storeDevs  = flag.Int("store-devices", 3, "devices per home for -store corpora")
		storeDays  = flag.Int("store-days", 4, "days per trace for -store corpora")
		storeRes   = flag.Float64("store-res", 0.001, "meter resolution in kW for -store corpora (the 1 W feed real hardware reports)")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file")

		metaOnly = flag.String("benchmeta", "", "print one benchmeta JSON line for this artifact schema (hotpath, throughput, comms, topology, store) and exit")
	)
	flag.Parse()

	if *metaOnly != "" {
		// Emitted as the first line of `go test -json`-style artifact streams
		// (the Makefile bench target), giving JSONL files the same header the
		// structured reports embed.
		blob, err := json.Marshal(struct {
			Meta benchmeta.Meta `json:"meta"`
		}{benchmeta.Collect(*metaOnly, 2)})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(blob))
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
	}

	if *throughput {
		path := *out
		if path == "" {
			path = "BENCH_throughput.json"
		}
		if err := runThroughputSweep(*sweepHomes, *sweepProcs, *sweepDays, *seed, path, *baseline, *effFloor); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *comms {
		path := *out
		if path == "" {
			path = "BENCH_comms.json"
		}
		if err := runCommsSweep(*commsAgents, *commsRounds, *seed, path); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *storeSweep {
		path := *out
		if path == "" {
			path = "BENCH_store.json"
		}
		if err := runStoreSweep(*storeHomes, *storeXL, *storeDevs, *storeDays, *storeRes, *seed, path); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *topology {
		path := *out
		if path == "" {
			path = "BENCH_topology.json"
		}
		if err := runTopologySweep(*topoHomes, *topoK, *topoCluster, *topoRounds, *topoDays, *seed, path); err != nil {
			log.Fatal(err)
		}
		return
	}

	sc := experiments.DefaultScale()
	sc.Seed = *seed
	if *homes > 0 {
		sc.Homes = *homes
	}
	if *days > 0 {
		sc.Days = *days
	}

	if *ablate != "" {
		var t *experiments.Table
		switch *ablate {
		case "topology":
			r, err := experiments.RunTopologyAblation(sc)
			if err != nil {
				log.Fatal(err)
			}
			t = r.Table()
		case "scaling":
			r, err := experiments.RunScaling(sc, nil)
			if err != nil {
				log.Fatal(err)
			}
			t = r.Table()
		default:
			log.Fatalf("unknown ablation %q (want topology or scaling)", *ablate)
		}
		t.Render(os.Stdout)
		return
	}

	var figs []int
	if *fig == "all" {
		figs = []int{2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14}
	} else {
		for _, part := range strings.Split(*fig, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 2 || n > 14 {
				log.Fatalf("invalid -fig %q (want 2..14 or 'all')", *fig)
			}
			figs = append(figs, n)
		}
	}

	// Figures 5/6 share a run, as do 9/11/12/14 (12 adds one extra run);
	// cache those results across requested figures.
	var fcCmp *experiments.ForecastComparison
	var methods *experiments.MethodsResult

	getFcCmp := func() *experiments.ForecastComparison {
		if fcCmp == nil {
			r, err := experiments.CompareForecasters(sc)
			if err != nil {
				log.Fatal(err)
			}
			fcCmp = r
		}
		return fcCmp
	}
	getMethods := func() *experiments.MethodsResult {
		if methods == nil {
			r, err := experiments.CompareMethods(sc)
			if err != nil {
				log.Fatal(err)
			}
			methods = r
		}
		return methods
	}

	for _, n := range figs {
		start := time.Now()
		var t *experiments.Table
		switch n {
		case 2:
			r, err := experiments.Alpha(sc)
			if err != nil {
				log.Fatal(err)
			}
			t = r.Table()
		case 3:
			r, err := experiments.Beta(sc)
			if err != nil {
				log.Fatal(err)
			}
			t = r.Table()
		case 4:
			r, err := experiments.Gamma(sc)
			if err != nil {
				log.Fatal(err)
			}
			t = r.Table()
		case 5:
			t = getFcCmp().CDFTable()
		case 6:
			t = getFcCmp().HourlyTable()
		case 7:
			r, err := experiments.AccuracyVsDays(sc)
			if err != nil {
				log.Fatal(err)
			}
			t = r.Table()
		case 8:
			r, err := experiments.AccuracyVsClients(sc, nil)
			if err != nil {
				log.Fatal(err)
			}
			t = r.Table()
		case 9:
			t = getMethods().SavingsTable()
		case 10:
			r, err := experiments.MonetarySavings(sc)
			if err != nil {
				log.Fatal(err)
			}
			t = r.Table()
		case 11:
			t = getMethods().HourlySavingsTable()
		case 12:
			r, err := experiments.Personalization(sc)
			if err != nil {
				log.Fatal(err)
			}
			t = r.Table()
		case 13:
			r, err := experiments.ForecastOverhead(sc)
			if err != nil {
				log.Fatal(err)
			}
			t = r.Table()
		case 14:
			t = getMethods().EMSOverheadTable()
		}
		t.Render(os.Stdout)
		if *svgDir != "" {
			if chart, err := plot.FromTable(t.Title, t.Header, t.Rows); err == nil {
				if err := os.MkdirAll(*svgDir, 0o755); err != nil {
					log.Fatal(err)
				}
				svg, err := chart.SVG()
				if err != nil {
					log.Fatal(err)
				}
				path := fmt.Sprintf("%s/fig%02d.svg", *svgDir, n)
				if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("(svg: %s)\n", path)
			}
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				log.Fatal(err)
			}
			path := fmt.Sprintf("%s/fig%02d.csv", *csvDir, n)
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := t.WriteCSV(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("(csv: %s)\n", path)
		}
		fmt.Printf("(fig %d regenerated in %v)\n\n", n, time.Since(start).Round(time.Millisecond))
	}
}
