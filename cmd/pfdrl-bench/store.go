package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/benchmeta"
	"repro/internal/pecan"
	"repro/internal/store"
)

// Acceptance gates for the -store sweep (see EXPERIMENTS.md "Trace
// storage"). The bytes/point gate applies to the meter-quantized corpus —
// full-precision synthetic noise carries ~52 random mantissa bits per
// sample, which no lossless codec can remove, and the honest unquantized
// number is reported alongside.
const (
	storeGateBytesPerPoint = 2.0
	storeGateDecodeMBps    = 100.0
	storeGateMemRatio      = 4.0
	storeGateMemHomes      = 1024
)

// storeCodecCell characterizes the block codec on one corpus flavor:
// compression ratio against the 8-byte float64 baseline and single-core
// encode/decode throughput over the raw sample bytes.
type storeCodecCell struct {
	// Resolution is the meter quantization in kW (0 = full precision).
	ResolutionKW float64 `json:"resolution_kw"`
	Samples      int     `json:"samples"`
	// BytesPerPoint is compressed KW bytes per sample (raw baseline: 8).
	BytesPerPoint float64 `json:"bytes_per_point"`
	// BytesPerPointFull adds the RLE mode labels (raw baseline: 16).
	BytesPerPointFull float64 `json:"bytes_per_point_full"`
	EncodeMBps        float64 `json:"encode_mb_per_s"`
	DecodeMBps        float64 `json:"decode_mb_per_s"`
}

// storeMemCell is one generation-sweep measurement: resident heap growth
// attributable to holding the corpus, per backing.
type storeMemCell struct {
	Homes   int  `json:"homes"`
	Devices int  `json:"devices"`
	Days    int  `json:"days"`
	Raw     bool `json:"raw"`
	// HeapBytes is the runtime.MemStats HeapAlloc delta across generation
	// (after a full GC on both sides) — the resident-corpus proxy.
	HeapBytes int64 `json:"heap_bytes"`
	// StorageBytes is the corpus's own accounting of trace storage.
	StorageBytes int     `json:"storage_bytes"`
	WallSeconds  float64 `json:"wall_seconds"`
}

// storeReport is the schema of BENCH_store.json.
type storeReport struct {
	Meta  benchmeta.Meta   `json:"meta"`
	Seed  int64            `json:"seed"`
	Codec []storeCodecCell `json:"codec"`
	Mem   []storeMemCell   `json:"mem"`
	// MemRatioAtGate is raw/store resident heap at the gate fleet size.
	MemRatioAtGate float64 `json:"mem_ratio_at_gate"`
}

// heapAfterGC returns HeapAlloc after forcing a collection, so live-set
// deltas are not polluted by garbage awaiting sweep.
func heapAfterGC() int64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}

// measureStoreCodecCell re-encodes and re-decodes a small corpus to time
// the codec in isolation from generation.
func measureStoreCodecCell(seed int64, devices, days int, res float64) (storeCodecCell, error) {
	ds := pecan.Generate(pecan.Config{
		Seed: seed, Homes: 64, Days: days, DevicesPerHome: devices,
		MeterResolutionKW: res,
	})
	cell := storeCodecCell{ResolutionKW: res}
	kwBytes, fullBytes := 0, 0
	var encNs, decNs int64
	var block []byte
	day := make([]float64, pecan.MinutesPerDay)
	for _, h := range ds.Homes {
		for _, tr := range h.Traces {
			cell.Samples += tr.Len()
			kwBytes += tr.Series().StorageBytes()
			fullBytes += tr.StorageBytes()
			kw := tr.MaterializeKW()
			for off := 0; off < len(kw); off += pecan.MinutesPerDay {
				stop := off + pecan.MinutesPerDay
				if stop > len(kw) {
					stop = len(kw)
				}
				t0 := time.Now()
				var err error
				block, err = store.EncodeBlockQuantized(block[:0], kw[off:stop], res)
				encNs += time.Since(t0).Nanoseconds()
				if err != nil {
					return cell, err
				}
				t0 = time.Now()
				out, err := store.DecodeBlock(block, pecan.MinutesPerDay, day[:0])
				decNs += time.Since(t0).Nanoseconds()
				if err != nil {
					return cell, err
				}
				for i, v := range out {
					if v != kw[off+i] {
						return cell, fmt.Errorf("store codec not bit-exact at sample %d", off+i)
					}
				}
			}
		}
	}
	rawMB := float64(8*cell.Samples) / (1 << 20)
	cell.BytesPerPoint = float64(kwBytes) / float64(cell.Samples)
	cell.BytesPerPointFull = float64(fullBytes) / float64(cell.Samples)
	cell.EncodeMBps = rawMB / (float64(encNs) / 1e9)
	cell.DecodeMBps = rawMB / (float64(decNs) / 1e9)
	return cell, nil
}

// measureStoreMemCell generates one corpus and attributes resident heap to
// it. The GC fences on both sides keep transient generation garbage out of
// the delta, so the number tracks what stays live — the whole point of the
// compressed backing.
func measureStoreMemCell(seed int64, homes, devices, days int, raw bool, res float64) storeMemCell {
	cell := storeMemCell{Homes: homes, Devices: devices, Days: days, Raw: raw}
	before := heapAfterGC()
	t0 := time.Now()
	ds := pecan.Generate(pecan.Config{
		Seed: seed, Homes: homes, Days: days, DevicesPerHome: devices,
		RawTraces: raw, MeterResolutionKW: res,
	})
	cell.WallSeconds = time.Since(t0).Seconds()
	cell.HeapBytes = heapAfterGC() - before
	cell.StorageBytes = ds.StorageBytes()
	runtime.KeepAlive(ds)
	return cell
}

// runStoreSweep measures the compressed columnar trace store: codec
// bytes/point and throughput on quantized and full-precision corpora, and
// the generation memory sweep raw-vs-store up to xlHomes. Gates fail the
// run if compression, decode speed, or the memory reduction regress.
func runStoreSweep(homesList string, xlHomes, devices, days int, res float64, seed int64, outPath string) error {
	fleets, err := parseIntList(homesList)
	if err != nil {
		return fmt.Errorf("store-homes: %w", err)
	}
	if devices < 1 || days < 1 {
		return fmt.Errorf("store sweep needs ≥1 device and day, got %d/%d", devices, days)
	}
	rep := storeReport{
		Meta: benchmeta.Collect("store", 1),
		Seed: seed,
	}

	for _, r := range []float64{res, 0} {
		cell, err := measureStoreCodecCell(seed, devices, days, r)
		if err != nil {
			return err
		}
		rep.Codec = append(rep.Codec, cell)
		log.Printf("store: codec res=%-6g  %6.3f B/pt kw (%6.3f with modes)  enc %7.1f MB/s  dec %7.1f MB/s  (%d samples)",
			r, cell.BytesPerPoint, cell.BytesPerPointFull, cell.EncodeMBps, cell.DecodeMBps, cell.Samples)
	}

	memAt := map[int]map[bool]int64{}
	for _, n := range fleets {
		for _, raw := range []bool{true, false} {
			cell := measureStoreMemCell(seed, n, devices, days, raw, res)
			rep.Mem = append(rep.Mem, cell)
			if memAt[n] == nil {
				memAt[n] = map[bool]int64{}
			}
			memAt[n][raw] = cell.HeapBytes
			log.Printf("store: mem homes=%-5d raw=%-5v  heap %8.2f MB  storage %8.2f MB  gen %6.2fs",
				n, raw, float64(cell.HeapBytes)/(1<<20), float64(cell.StorageBytes)/(1<<20), cell.WallSeconds)
		}
	}
	if xlHomes > 0 {
		// Store-only extra point: the raw twin at this scale is exactly the
		// eager footprint the store exists to avoid holding.
		cell := measureStoreMemCell(seed, xlHomes, devices, days, false, res)
		rep.Mem = append(rep.Mem, cell)
		log.Printf("store: mem homes=%-5d raw=false  heap %8.2f MB  storage %8.2f MB  gen %6.2fs (store-only)",
			xlHomes, float64(cell.HeapBytes)/(1<<20), float64(cell.StorageBytes)/(1<<20), cell.WallSeconds)
	}

	// Gates.
	quant := rep.Codec[0]
	if quant.BytesPerPoint > storeGateBytesPerPoint {
		return fmt.Errorf("store gate: %.3f bytes/point on the quantized corpus exceeds %.1f",
			quant.BytesPerPoint, storeGateBytesPerPoint)
	}
	if quant.DecodeMBps < storeGateDecodeMBps {
		return fmt.Errorf("store gate: decode %.1f MB/s below %.0f MB/s", quant.DecodeMBps, storeGateDecodeMBps)
	}
	if m := memAt[storeGateMemHomes]; m != nil && m[false] > 0 {
		rep.MemRatioAtGate = float64(m[true]) / float64(m[false])
		if rep.MemRatioAtGate < storeGateMemRatio {
			return fmt.Errorf("store gate: raw/store heap ratio %.2f at %d homes below %.0f×",
				rep.MemRatioAtGate, storeGateMemHomes, storeGateMemRatio)
		}
		log.Printf("store: heap ratio raw/store at %d homes: %.1f×", storeGateMemHomes, rep.MemRatioAtGate)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(outPath, blob, 0o644); err != nil {
		return err
	}
	log.Printf("wrote %s", outPath)
	return nil
}
