package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"repro/internal/benchmeta"
	"repro/internal/core"
	"repro/internal/fed"
	"repro/internal/fednet"
	"repro/internal/nn"
)

// topoRoundCell is one (topology, fleet size) measurement of the
// federation-round sweep: repeated rounds over a clean fabric with a
// small drifted model, measuring the per-round message and byte bill
// against the closed-form prediction, plus how fast the fleet's
// parameter spread collapses. These cells isolate the transport and
// aggregation cost — no simulation rides along — which is what lets the
// sweep reach thousands of homes.
type topoRoundCell struct {
	Topology string `json:"topology"`
	Agents   int    `json:"agents"`
	// K is the gossip sample size (sampled cells only); ClusterSize the
	// grouping width (cluster cells only).
	K           int `json:"k,omitempty"`
	ClusterSize int `json:"cluster_size,omitempty"`
	Rounds      int `json:"rounds"`
	// MessagesPerRound is the measured mean wire bill;
	// PredictedMessages is the fabric's closed form (n(n−1) all-to-all,
	// n·k sampled, (n−C)+C(C−1)+C′ cluster). The two must agree.
	MessagesPerRound  float64 `json:"messages_per_round"`
	PredictedMessages int     `json:"predicted_messages"`
	BytesPerRound     float64 `json:"bytes_per_round"`
	RoundWallNs       float64 `json:"round_wall_ns"`
	// SpreadBefore / SpreadAfter bracket the consensus progress: the
	// fleet is perturbed once, then federated for Rounds rounds.
	SpreadBefore float64 `json:"spread_before"`
	SpreadAfter  float64 `json:"spread_after"`
}

// topoSimCell is one end-to-end PFDRL simulation under a topology at
// small fleet scale — the guard that alternative fabrics do not tax the
// full pipeline (acceptance: within ~10% of all-to-all at 8 homes).
type topoSimCell struct {
	Topology       string  `json:"topology"`
	Homes          int     `json:"homes"`
	Days           int     `json:"days"`
	WallSeconds    float64 `json:"wall_seconds"`
	HomeDaysPerSec float64 `json:"home_days_per_sec"`
	// MessagesSent sums both federation planes' fabric counters.
	MessagesSent int `json:"messages_sent"`
}

// topologyReport is the schema of BENCH_topology.json.
type topologyReport struct {
	Meta   benchmeta.Meta  `json:"meta"`
	Seed   int64           `json:"seed"`
	Rounds []topoRoundCell `json:"rounds"`
	Sims   []topoSimCell   `json:"sims"`
}

// topoFleet builds n identically-initialized small MLPs (every home
// starts from one shared init, as in the simulator) and perturbs each
// with its own noise stream so the fleet starts the sweep disagreeing.
func topoFleet(n int, seed int64) []*nn.Sequential {
	models := make([]*nn.Sequential, n)
	for i := range models {
		models[i] = nn.NewMLP(rand.New(rand.NewSource(seed)), 8, 16, 16, 4)
		drift := rand.New(rand.NewSource(seed + 1000 + int64(i)))
		for _, p := range models[i].Params() {
			for j := range p.Data {
				p.Data[j] *= 1 + drift.NormFloat64()*1e-2
			}
		}
	}
	return models
}

// measureTopoRoundCell federates one perturbed fleet for `rounds` rounds
// over the given fabric and reports the measured traffic and spread.
func measureTopoRoundCell(topo string, n, k, clusterSize, rounds int, seed int64) (topoRoundCell, error) {
	cfg := fednet.Config{Topology: fednet.AllToAll, Seed: seed}
	cell := topoRoundCell{Topology: topo, Agents: n, Rounds: rounds}
	switch topo {
	case core.TopoSampled:
		cfg.Topology, cfg.SampleK = fednet.Sampled, k
		cell.K = k
	case core.TopoCluster:
		cfg.Topology, cfg.ClusterSize = fednet.Cluster, clusterSize
		cell.ClusterSize = clusterSize
	}
	net, err := fednet.NewChecked(n, cfg)
	if err != nil {
		return cell, fmt.Errorf("topology %s n=%d: %w", topo, n, err)
	}
	cell.PredictedMessages = net.RoundMessages()

	models := topoFleet(n, seed)
	cell.SpreadBefore = fed.GossipDisagreement(models, -1)
	ws := &fed.RoundWorkspace{}
	st0 := net.Stats()
	start := time.Now()
	for r := 0; r < rounds; r++ {
		var rep fed.RoundReport
		var err error
		switch topo {
		case core.TopoSampled:
			rep, err = fed.BeginSampledGossipRound(net, models, "bench", -1, ws).Join()
		case core.TopoCluster:
			rep, err = fed.ClusterRound(net, models, "bench", -1, ws)
		default:
			rep, err = fed.BeginDecentralizedRound(net, models, "bench", -1, ws).Join()
		}
		if err != nil {
			return cell, fmt.Errorf("topology %s n=%d round %d: %w", topo, n, r+1, err)
		}
		if rep.Degraded() {
			return cell, fmt.Errorf("topology %s n=%d round %d degraded on a clean fabric", topo, n, r+1)
		}
	}
	wall := time.Since(start)
	st := net.Stats()
	cell.MessagesPerRound = float64(st.MessagesSent-st0.MessagesSent) / float64(rounds)
	cell.BytesPerRound = float64(st.BytesSent-st0.BytesSent) / float64(rounds)
	cell.RoundWallNs = float64(wall.Nanoseconds()) / float64(rounds)
	cell.SpreadAfter = fed.GossipDisagreement(models, -1)
	return cell, nil
}

// measureTopoSimCell runs a full default-scale PFDRL simulation with the
// given fabric on both planes and reports end-to-end throughput.
func measureTopoSimCell(topo string, homes, days, k, clusterSize int, seed int64) (topoSimCell, error) {
	cfg := core.DefaultConfig(core.MethodPFDRL)
	cfg.Homes = homes
	cfg.Days = days
	cfg.Seed = seed
	switch topo {
	case core.TopoSampled:
		if k > homes/2 {
			k = homes / 2 // keep the graph genuinely sparse at small fleets
		}
		cfg.Topology = core.TopologySpec{Kind: topo, K: k}
	case core.TopoCluster:
		if clusterSize > homes/2 {
			clusterSize = homes / 2 // keep ≥ 2 clusters so the summary hop runs
		}
		cfg.Topology = core.TopologySpec{Kind: topo, ClusterSize: clusterSize}
	}
	cell := topoSimCell{Topology: topo, Homes: homes, Days: days}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return cell, err
	}
	start := time.Now()
	res, err := sys.Run()
	if err != nil {
		return cell, err
	}
	wall := time.Since(start)
	cell.WallSeconds = wall.Seconds()
	cell.HomeDaysPerSec = float64(homes*days) / wall.Seconds()
	cell.MessagesSent = res.ForecastNetStats.MessagesSent + res.EMSNetStats.MessagesSent
	return cell, nil
}

// runTopologySweep measures message complexity and round cost across
// topology × fleet-size cells, plus end-to-end throughput at small
// scale, and writes BENCH_topology.json. The all-to-all reference is
// capped at allToAllCap agents — its O(N²) rounds are the cost the
// alternatives exist to avoid.
func runTopologySweep(homesList string, k, clusterSize, rounds, simDays int, seed int64, outPath string) error {
	fleets, err := parseIntList(homesList)
	if err != nil {
		return err
	}
	if rounds < 1 {
		return fmt.Errorf("topo-rounds must be ≥ 1, got %d", rounds)
	}
	const allToAllCap = 1024

	rep := topologyReport{
		Meta: benchmeta.Collect("topology", 2),
		Seed: seed,
	}
	topos := []string{core.TopoAllToAll, core.TopoSampled, core.TopoCluster}
	for _, n := range fleets {
		for _, topo := range topos {
			if topo == core.TopoAllToAll && n > allToAllCap {
				log.Printf("topology: skipping all-to-all at n=%d (reference capped at %d)", n, allToAllCap)
				continue
			}
			cell, err := measureTopoRoundCell(topo, n, k, clusterSize, rounds, seed)
			if err != nil {
				return err
			}
			rep.Rounds = append(rep.Rounds, cell)
			log.Printf("topology: n=%-5d %-10s  %9.0f msg/round (predicted %9d)  %10.0f B/round  %8.2fms/round  spread %.2e → %.2e",
				n, topo, cell.MessagesPerRound, cell.PredictedMessages, cell.BytesPerRound,
				cell.RoundWallNs/1e6, cell.SpreadBefore, cell.SpreadAfter)
		}
	}
	const simHomes = 8
	for _, topo := range topos {
		cell, err := measureTopoSimCell(topo, simHomes, simDays, k, clusterSize, seed)
		if err != nil {
			return err
		}
		rep.Sims = append(rep.Sims, cell)
		log.Printf("topology: sim homes=%d %-10s  %.2fs wall  %.2f home-days/s  %d messages",
			simHomes, topo, cell.WallSeconds, cell.HomeDaysPerSec, cell.MessagesSent)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(outPath, blob, 0o644); err != nil {
		return err
	}
	log.Printf("wrote %s", outPath)
	return nil
}
