package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"repro/internal/benchmeta"
	"repro/internal/fed"
	"repro/internal/fednet"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// commsCell is one (agents, codec) measurement of the comms-plane sweep:
// repeated decentralized federation rounds over a clean all-to-all fabric,
// with per-round byte accounting from RoundReport and codec-level timing
// from bench-side timers (the wire package keeps byte counters only).
type commsCell struct {
	Agents int    `json:"agents"`
	Codec  string `json:"codec"`
	Rounds int    `json:"rounds"`
	// ParamFloats is P, the per-agent federated parameter count.
	ParamFloats int `json:"param_floats"`
	// KeyframeBytes is the first round's wire bill (every sender's first
	// broadcast of a kind is a dense keyframe, so round 1 never compresses);
	// BytesPerRound / DenseBytesPerRound / CompressionRatio are steady-state
	// means over rounds 2..Rounds.
	KeyframeBytes      int64   `json:"keyframe_bytes"`
	BytesPerRound      float64 `json:"bytes_per_round"`
	DenseBytesPerRound float64 `json:"dense_bytes_per_round"`
	CompressionRatio   float64 `json:"compression_ratio"`
	// EncodeNs / DecodeNs are per-payload codec costs measured in a
	// separate micro-loop (encode one agent's drifting parameters;
	// validate + fold the payload into a staged sum).
	EncodeNsPerPayload float64 `json:"encode_ns_per_payload"`
	DecodeNsPerPayload float64 `json:"decode_ns_per_payload"`
	// RoundWallNs is the mean wall time of one full round (broadcast,
	// drain, aggregate, join), steady-state rounds only.
	RoundWallNs float64 `json:"round_wall_ns"`
	// AggScratchFloats is each aggregating agent's peak float64 scratch:
	// the streaming fold stages one O(P) sum regardless of fleet size,
	// while the legacy dense path materializes all N parameter sets
	// before averaging — O(N·P).
	AggScratchFloats int64 `json:"agg_scratch_floats_per_agent"`
}

// commsReport is the schema of BENCH_comms.json.
type commsReport struct {
	Meta    benchmeta.Meta `json:"meta"`
	Seed    int64          `json:"seed"`
	Rounds  int            `json:"rounds"`
	Results []commsCell    `json:"results"`
}

// commsTier is one codec configuration of the sweep. A nil exchange factory
// marks the legacy PFP1 dense path (no wire.Exchange attached).
type commsTier struct {
	name string
	opts *wire.Options
}

func commsTiers() []commsTier {
	return []commsTier{
		{name: "pfp1-dense", opts: nil},
		{name: "wire-dense", opts: &wire.Options{Level: wire.Dense}},
		{name: "wire-delta", opts: &wire.Options{Level: wire.Delta}},
		{name: "wire-topk", opts: &wire.Options{Level: wire.TopK, TopKFrac: 0.05}},
	}
}

// commsFleet builds n identically-initialized MLPs (the simulator starts
// every home from one shared initialization, so federated averages begin
// aligned) plus per-agent drift sources that stand in for local training
// between rounds.
func commsFleet(n int, seed int64) ([]*nn.Sequential, []*rand.Rand) {
	models := make([]*nn.Sequential, n)
	drift := make([]*rand.Rand, n)
	for i := range models {
		models[i] = nn.NewMLP(rand.New(rand.NewSource(seed)), 16, 64, 64, 8)
		drift[i] = rand.New(rand.NewSource(seed + 1000 + int64(i)))
	}
	return models, drift
}

// driftParams applies SGD-sized relative movement (~1e-4 per round) to every
// parameter — the regime the delta codec actually sees between federation
// rounds, where an update touches the low mantissa bits of each weight rather
// than replacing it. Exact zeros (untrained biases) stay zero and collapse
// into the codec's zero-run tokens.
func driftParams(params []*tensor.Matrix, rng *rand.Rand) {
	for _, p := range params {
		for j := range p.Data {
			p.Data[j] *= 1 + rng.NormFloat64()*1e-4
		}
	}
}

func paramFloats(params []*tensor.Matrix) int {
	n := 0
	for _, p := range params {
		n += len(p.Data)
	}
	return n
}

// measureCommsCell runs `rounds` decentralized rounds for one (agents, tier)
// cell and returns its measurements. Round 1 is the keyframe round and is
// reported separately; steady-state figures average rounds 2..rounds.
func measureCommsCell(agents, rounds int, seed int64, tier commsTier) (commsCell, error) {
	models, drift := commsFleet(agents, seed)
	net := fednet.New(agents, fednet.Config{Topology: fednet.AllToAll, Seed: seed})
	ws := &fed.RoundWorkspace{}
	if tier.opts != nil {
		ws.Comms = wire.NewExchange(*tier.opts)
	}

	P := paramFloats(models[0].Params())
	cell := commsCell{
		Agents:      agents,
		Codec:       tier.name,
		Rounds:      rounds,
		ParamFloats: P,
		// Streaming fold: one staged O(P) sum per agent. Legacy dense
		// aggregation decodes every arriving set first: N sets of P.
		AggScratchFloats: int64(P),
	}
	if tier.opts == nil {
		cell.AggScratchFloats = int64(agents * P)
	}

	var steady fed.CommsTotals
	var steadyWall time.Duration
	for r := 1; r <= rounds; r++ {
		for i, m := range models {
			driftParams(m.Params(), drift[i])
		}
		start := time.Now()
		rep, err := fed.BeginDecentralizedRound(net, models, "bench", -1, ws).Join()
		wall := time.Since(start)
		if err != nil {
			return cell, fmt.Errorf("agents=%d codec=%s round %d: %w", agents, tier.name, r, err)
		}
		if rep.Degraded() {
			return cell, fmt.Errorf("agents=%d codec=%s round %d degraded on a clean fabric", agents, tier.name, r)
		}
		if r == 1 {
			cell.KeyframeBytes = rep.BytesSent
			continue
		}
		steady.Absorb(rep)
		steadyWall += wall
	}
	if steady.Rounds > 0 {
		cell.BytesPerRound = float64(steady.BytesSent) / float64(steady.Rounds)
		cell.DenseBytesPerRound = float64(steady.DenseBytes) / float64(steady.Rounds)
		cell.CompressionRatio = steady.CompressionRatio()
		cell.RoundWallNs = float64(steadyWall.Nanoseconds()) / float64(steady.Rounds)
	}

	encNs, decNs, err := measureCodecNs(tier, seed)
	if err != nil {
		return cell, err
	}
	cell.EncodeNsPerPayload = encNs
	cell.DecodeNsPerPayload = decNs
	return cell, nil
}

// measureCodecNs times one sender's encode and one receiver's validate+fold
// over a sequence of drifting parameter versions — the wire package counts
// bytes, not nanoseconds, so the bench brings its own timers. The PFP1 tier
// times the dense marshal/unmarshal pair instead.
func measureCodecNs(tier commsTier, seed int64) (encNs, decNs float64, err error) {
	const iters = 64
	models, drift := commsFleet(1, seed+7777)
	params := models[0].Params()
	staged := nn.CloneParams(params)

	if tier.opts == nil {
		var buf []byte
		scratch := nn.CloneParams(params)
		var encTot, decTot time.Duration
		for it := 0; it < iters; it++ {
			driftParams(params, drift[0])
			t0 := time.Now()
			buf = fed.MarshalParamsInto(buf[:0], params)
			encTot += time.Since(t0)
			t0 = time.Now()
			if err := fed.UnmarshalParamsInto(scratch, params, buf); err != nil {
				return 0, 0, err
			}
			decTot += time.Since(t0)
		}
		return float64(encTot.Nanoseconds()) / iters, float64(decTot.Nanoseconds()) / iters, nil
	}

	x := wire.NewExchange(*tier.opts)
	var comp [][]float64
	if tier.opts.KahanFold {
		comp = make([][]float64, len(staged))
		for i, m := range staged {
			comp[i] = make([]float64, len(m.Data))
		}
	}
	var buf []byte
	var encTot, decTot time.Duration
	for it := 0; it < iters; it++ {
		driftParams(params, drift[0])
		t0 := time.Now()
		buf, err = x.EncodeInto(buf[:0], 0, "bench", params)
		encTot += time.Since(t0)
		if err != nil {
			return 0, 0, err
		}
		for _, m := range staged {
			m.Zero()
		}
		t0 = time.Now()
		if err := x.Validate(0, "bench", params, buf); err != nil {
			return 0, 0, err
		}
		if err := x.FoldInto(staged, comp, 0, "bench", buf, 1); err != nil {
			return 0, 0, err
		}
		decTot += time.Since(t0)
	}
	return float64(encTot.Nanoseconds()) / iters, float64(decTot.Nanoseconds()) / iters, nil
}

// runCommsSweep measures bytes/round, codec timing, aggregation scratch, and
// round wall time across fleet sizes × codec tiers and writes BENCH_comms.json.
func runCommsSweep(agentsList string, rounds int, seed int64, outPath string) error {
	agents, err := parseIntList(agentsList)
	if err != nil {
		return err
	}
	if rounds < 2 {
		return fmt.Errorf("comms-rounds must be ≥ 2 (round 1 is the keyframe), got %d", rounds)
	}

	rep := commsReport{
		Meta:   benchmeta.Collect("comms", 2),
		Seed:   seed,
		Rounds: rounds,
	}
	for _, n := range agents {
		if n < 2 {
			return fmt.Errorf("comms sweep needs ≥ 2 agents per cell, got %d", n)
		}
		for _, tier := range commsTiers() {
			cell, err := measureCommsCell(n, rounds, seed, tier)
			if err != nil {
				return err
			}
			rep.Results = append(rep.Results, cell)
			log.Printf("comms: agents=%-2d codec=%-10s  %8.0f B/round  ratio %.2fx  enc %6.0fns dec %6.0fns  scratch %d floats",
				n, tier.name, cell.BytesPerRound, cell.CompressionRatio,
				cell.EncodeNsPerPayload, cell.DecodeNsPerPayload, cell.AggScratchFloats)
		}
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(outPath, blob, 0o644); err != nil {
		return err
	}
	log.Printf("wrote %s", outPath)
	return nil
}
