package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/benchmeta"
	"repro/internal/core"
	"repro/internal/sched"
)

// throughputCell is one (homes, GOMAXPROCS) measurement of the end-to-end
// scaling sweep: a full PFDRL simulation at default experiment scale, timed
// wall-clock. HomeDaysPerSec is the throughput figure the sweep compares
// across cells — simulated home-days completed per wall second.
type throughputCell struct {
	Homes          int     `json:"homes"`
	Gomaxprocs     int     `json:"gomaxprocs"`
	Days           int     `json:"days"`
	WallSeconds    float64 `json:"wall_seconds"`
	HomeDaysPerSec float64 `json:"home_days_per_sec"`
	// ParallelEfficiency is this cell's HomeDaysPerSec divided by the same
	// fleet size's throughput at the sweep's lowest GOMAXPROCS (the serial
	// anchor when the sweep includes P=1). 1.0 means added processors cost
	// nothing; below 1.0 means parallel hand-off overhead ate throughput —
	// the regression the adaptive scheduling grain exists to prevent.
	ParallelEfficiency float64 `json:"parallel_efficiency"`
	// EMSWallSeconds / EMSCPUSeconds split the run's EMS phase into the
	// per-wave critical path vs total compute across homes; their ratio is
	// the achieved home-level parallelism.
	EMSWallSeconds float64 `json:"ems_wall_seconds"`
	EMSCPUSeconds  float64 `json:"ems_cpu_seconds"`
}

// throughputReport is the schema of BENCH_throughput.json. Schema v3 adds
// the sweep axes (sweep_homes / sweep_procs, the actual GOMAXPROCS list
// measured) and per-cell parallel_efficiency.
type throughputReport struct {
	Meta       benchmeta.Meta   `json:"meta"`
	SweepDays  int              `json:"sweep_days"`
	Seed       int64            `json:"seed"`
	SweepHomes []int            `json:"sweep_homes"`
	SweepProcs []int            `json:"sweep_procs"`
	Results    []throughputCell `json:"results"`
	// Baseline embeds a previous sweep (via -baseline) so one artifact
	// carries the before/after comparison.
	Baseline *throughputReport `json:"baseline,omitempty"`
}

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid list entry %q (want positive integers)", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// runThroughputSweep measures end-to-end PFDRL day throughput across a
// homes × GOMAXPROCS grid and writes the result table as JSON. Each cell
// resizes both GOMAXPROCS and the shared scheduler pool, so the simulation
// actually runs at the cell's parallelism. When baselinePath names a
// previous sweep's JSON, that report is embedded under "baseline" in the
// output. A positive effFloor arms the scaling gate: after the artifact is
// written, any 8-homes-or-larger cell at GOMAXPROCS=4 whose parallel
// efficiency fell below the floor fails the run.
func runThroughputSweep(homesList, procsList string, days int, seed int64, outPath, baselinePath string, effFloor float64) error {
	homes, err := parseIntList(homesList)
	if err != nil {
		return err
	}
	procs, err := parseIntList(procsList)
	if err != nil {
		return err
	}
	if days < 1 {
		return fmt.Errorf("sweep-days must be ≥ 1, got %d", days)
	}

	rep := throughputReport{
		Meta:       benchmeta.Collect("throughput", 3),
		SweepDays:  days,
		Seed:       seed,
		SweepHomes: homes,
		SweepProcs: procs,
	}
	if baselinePath != "" {
		blob, err := os.ReadFile(baselinePath)
		if err != nil {
			return fmt.Errorf("read baseline: %w", err)
		}
		rep.Baseline = &throughputReport{}
		if err := json.Unmarshal(blob, rep.Baseline); err != nil {
			return fmt.Errorf("parse baseline %s: %w", baselinePath, err)
		}
	}
	origProcs := runtime.GOMAXPROCS(0)
	defer func() {
		runtime.GOMAXPROCS(origProcs)
		sched.SetDefaultSize(origProcs)
	}()

	for _, h := range homes {
		for _, p := range procs {
			runtime.GOMAXPROCS(p)
			// Resize the shared worker pool too — GOMAXPROCS alone only
			// caps OS threads; the pool's size is what the simulation's
			// parallel waves actually fan out over.
			sched.SetDefaultSize(p)
			cfg := core.DefaultConfig(core.MethodPFDRL)
			cfg.Homes = h
			cfg.Days = days
			cfg.Seed = seed
			sys, err := core.NewSystem(cfg)
			if err != nil {
				return err
			}
			start := time.Now()
			res, err := sys.Run()
			if err != nil {
				return err
			}
			wall := time.Since(start)
			cell := throughputCell{
				Homes:          h,
				Gomaxprocs:     p,
				Days:           days,
				WallSeconds:    wall.Seconds(),
				HomeDaysPerSec: float64(h*days) / wall.Seconds(),
				EMSWallSeconds: res.EMSWallTime.Seconds(),
				EMSCPUSeconds:  (res.EMSTrainTime + res.EMSTestTime).Seconds(),
			}
			rep.Results = append(rep.Results, cell)
			log.Printf("throughput: homes=%d procs=%d  %.2fs wall  %.2f home-days/s",
				h, p, cell.WallSeconds, cell.HomeDaysPerSec)
		}
	}

	// Parallel efficiency: each cell against its fleet size's lowest-procs
	// anchor (P=1 in the default sweep).
	anchor := map[int]float64{}
	for _, c := range rep.Results {
		if c.Gomaxprocs == procs[0] {
			anchor[c.Homes] = c.HomeDaysPerSec
		}
	}
	for i := range rep.Results {
		if a := anchor[rep.Results[i].Homes]; a > 0 {
			rep.Results[i].ParallelEfficiency = rep.Results[i].HomeDaysPerSec / a
		}
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(outPath, blob, 0o644); err != nil {
		return err
	}
	log.Printf("wrote %s", outPath)

	if effFloor > 0 {
		for _, c := range rep.Results {
			if c.Homes >= 8 && c.Gomaxprocs == 4 && c.ParallelEfficiency > 0 && c.ParallelEfficiency < effFloor {
				return fmt.Errorf("scaling gate: homes=%d procs=%d parallel efficiency %.3f below floor %.3f",
					c.Homes, c.Gomaxprocs, c.ParallelEfficiency, effFloor)
			}
		}
		log.Printf("scaling gate passed (floor %.2f)", effFloor)
	}
	return nil
}
