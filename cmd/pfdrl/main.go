// Command pfdrl runs one residential energy-management simulation — the
// paper's PFDRL system or any of the four baselines — and prints the daily
// savings trajectory plus the final summary.
//
// Usage:
//
//	pfdrl -method PFDRL -homes 8 -days 12 -alpha 6 -beta 12 -gamma 12
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/fednet"
	"repro/internal/forecast"
	"repro/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pfdrl: ")

	var (
		method   = flag.String("method", "PFDRL", "EMS method: Local, Cloud, FL, FRL, or PFDRL")
		homes    = flag.Int("homes", 8, "number of residences")
		days     = flag.Int("days", 12, "simulated days")
		devices  = flag.Int("devices", 3, "devices per home")
		seed     = flag.Int64("seed", 1, "random seed")
		alpha    = flag.Int("alpha", 6, "shared base layers α (PFDRL)")
		beta     = flag.Float64("beta", 12, "forecast broadcast period β in hours")
		gamma    = flag.Float64("gamma", 12, "DRL broadcast period γ in hours")
		fcKind   = flag.String("forecast", "LSTM", "forecaster: LR, SVM, BP, or LSTM")
		paper    = flag.Bool("paper-scale", false, "use the paper's full model sizes (slow)")
		saveTo   = flag.String("save", "", "write a model checkpoint here after the run")
		loadFrom = flag.String("load", "", "restore a model checkpoint before the run")
		topo     = flag.String("topology", "", "federation fabric for the PFDRL planes: all-to-all (default), sampled, or cluster")
		topoK    = flag.Int("topo-k", 8, "peers sampled per round (with -topology sampled)")
		clSize   = flag.Int("cluster-size", 8, "homes per cluster (with -topology cluster)")
		emsTopo  = flag.String("ems-topology", "", "override the EMS (γ) plane's fabric independently")
		drop     = flag.Float64("drop", 0, "per-message drop probability on the fabric")
		retries  = flag.Int("retries", 0, "delivery attempts per message (>1 enables the acked transport)")
		chaos    = flag.Bool("chaos", false, "inject an aggressive scripted fault plan (partition, straggler, corruption, crash)")
		telAddr  = flag.String("telemetry-addr", "", "serve /metrics, /healthz, /debug/trace, and pprof on this address (e.g. 127.0.0.1:8080; :0 picks a port)")
		telLing  = flag.Duration("telemetry-linger", 0, "keep the telemetry server alive this long after the run finishes")
		journal  = flag.String("journal", "", "stream a JSONL run journal (one record per simulated hour and federation round) to this file")
	)
	flag.Parse()

	cfg := core.DefaultConfig(core.Method(*method))
	cfg.Homes = *homes
	cfg.Days = *days
	cfg.DevicesPerHome = *devices
	cfg.Seed = *seed
	cfg.Alpha = *alpha
	cfg.BetaHours = *beta
	cfg.GammaHours = *gamma
	cfg.ForecastKind = forecast.Kind(*fcKind)
	if *paper {
		cfg = cfg.PaperScale()
		cfg.Alpha = *alpha
	}
	// Kinds the spec doesn't know pass through so Config.Validate can name
	// them in its error.
	specFor := func(kind string) core.TopologySpec {
		switch kind {
		case core.TopoSampled:
			return core.TopologySpec{Kind: kind, K: *topoK}
		case core.TopoCluster:
			return core.TopologySpec{Kind: kind, ClusterSize: *clSize}
		case "":
			return core.TopologySpec{}
		}
		return core.TopologySpec{Kind: kind}
	}
	cfg.Topology = specFor(*topo)
	cfg.EMSTopology = specFor(*emsTopo)
	cfg.DropProb = *drop
	if *retries > 1 {
		cfg.Retry = fednet.RetryPolicy{MaxAttempts: *retries}
	}
	if *chaos {
		cfg.FaultPlan = core.ChaosFaultPlan(cfg.Homes, cfg.Days)
	}

	sys, err := core.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Telemetry is opt-in: without these flags no sink exists and the run
	// takes the uninstrumented (bit-identical, allocation-free) path.
	var sink *telemetry.Sink
	if *telAddr != "" || *journal != "" {
		sink = telemetry.NewSink()
		if *journal != "" {
			jf, err := os.Create(*journal)
			if err != nil {
				log.Fatal(err)
			}
			defer func() {
				if err := sink.Journal.Err(); err != nil {
					log.Printf("journal: %v", err)
				}
				if err := jf.Close(); err != nil {
					log.Printf("journal: %v", err)
				}
			}()
			sink.Journal = telemetry.NewJournal(jf)
		}
		if *telAddr != "" {
			srv, bound, err := sink.ListenAndServe(*telAddr)
			if err != nil {
				log.Fatal(err)
			}
			defer srv.Close()
			fmt.Printf("telemetry: serving on %s\n", bound)
		}
		sys.AttachTelemetry(sink)
	}
	if *loadFrom != "" {
		f, err := os.Open(*loadFrom)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.LoadModels(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("restored models from %s\n", *loadFrom)
	}
	fmt.Printf("method=%s homes=%d days=%d devices/home=%d α=%d β=%gh γ=%gh forecaster=%s\n",
		cfg.Method, cfg.Homes, cfg.Days, cfg.DevicesPerHome, cfg.Alpha, cfg.BetaHours, cfg.GammaHours, cfg.ForecastKind)

	res, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nday  saved_kWh/home  saved_frac")
	for d := range res.DailySavedKWhPerHome {
		fmt.Printf("%3d  %14.4f  %10.3f\n", d+1, res.DailySavedKWhPerHome[d], res.DailySavedFrac[d])
	}
	fmt.Printf("\nforecast accuracy (eval window): %.3f\n", res.ForecastAccuracy)
	fmt.Printf("convergence day (90%% of plateau): %d\n", res.ConvergenceDay+1)
	fmt.Printf("time: fc-train %v, fc-test %v, ems-train %v, ems-test %v\n",
		res.ForecastTrainTime.Round(1e6), res.ForecastTestTime.Round(1e6),
		res.EMSTrainTime.Round(1e6), res.EMSTestTime.Round(1e6))
	for _, line := range res.CommsLines() {
		fmt.Println(line)
	}
	if *chaos || *drop > 0 || *retries > 1 {
		fmt.Println(res.ResilienceLine())
	}
	if *saveTo != "" {
		f, err := os.Create(*saveTo)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.SaveModels(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved models to %s\n", *saveTo)
	}
	if *telAddr != "" && *telLing > 0 {
		fmt.Printf("telemetry: lingering %v for scrapes\n", *telLing)
		time.Sleep(*telLing)
	}
}
