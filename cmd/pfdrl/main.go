// Command pfdrl runs one residential energy-management simulation — the
// paper's PFDRL system or any of the four baselines — either as a batch
// run that prints the daily savings trajectory and final summary, or as a
// long-running service daemon (-serve) that steps the fleet in the
// background while serving per-home forecasts and control plans over HTTP.
//
// Usage:
//
//	pfdrl -method PFDRL -homes 8 -days 12 -alpha 6 -beta 12 -gamma 12
//	pfdrl -days 4 -snapshot fleet.ckpt              # batch, resumable snapshot
//	pfdrl -serve -load fleet.ckpt -checkpoint live.ckpt -telemetry-addr :8800
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/fednet"
	"repro/internal/forecast"
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pfdrl: ")

	var (
		method   = flag.String("method", "PFDRL", "EMS method: Local, Cloud, FL, FRL, or PFDRL")
		homes    = flag.Int("homes", 8, "number of residences")
		days     = flag.Int("days", 12, "simulated days")
		devices  = flag.Int("devices", 3, "devices per home")
		seed     = flag.Int64("seed", 1, "random seed")
		alpha    = flag.Int("alpha", 6, "shared base layers α (PFDRL)")
		beta     = flag.Float64("beta", 12, "forecast broadcast period β in hours")
		gamma    = flag.Float64("gamma", 12, "DRL broadcast period γ in hours")
		fcKind   = flag.String("forecast", "LSTM", "forecaster: LR, SVM, BP, or LSTM")
		paper    = flag.Bool("paper-scale", false, "use the paper's full model sizes (slow)")
		saveTo   = flag.String("save", "", "write a models-only checkpoint here after the run (batch mode)")
		loadFrom = flag.String("load", "", "restore a checkpoint before running: models-only in batch mode, a full-fleet snapshot in serve mode")
		snapTo   = flag.String("snapshot", "", "write a full-fleet snapshot here after the run — or at interruption — for later -serve warm-start (batch mode)")
		topo     = flag.String("topology", "", "federation fabric for the PFDRL planes: all-to-all (default), sampled, or cluster")
		topoK    = flag.Int("topo-k", 8, "peers sampled per round (with -topology sampled)")
		clSize   = flag.Int("cluster-size", 8, "homes per cluster (with -topology cluster)")
		emsTopo  = flag.String("ems-topology", "", "override the EMS (γ) plane's fabric independently")
		drop     = flag.Float64("drop", 0, "per-message drop probability on the fabric")
		retries  = flag.Int("retries", 0, "delivery attempts per message (>1 enables the acked transport)")
		chaos    = flag.Bool("chaos", false, "inject an aggressive scripted fault plan (partition, straggler, corruption, crash)")
		telAddr  = flag.String("telemetry-addr", "", "serve /metrics, /healthz, /debug/trace, and pprof on this address (e.g. 127.0.0.1:8080; :0 picks a port)")
		telLing  = flag.Duration("telemetry-linger", 0, "keep the telemetry server alive this long after the run finishes")
		journal  = flag.String("journal", "", "stream a JSONL run journal (one record per simulated hour and federation round) to this file")
		rawTr    = flag.Bool("raw-traces", false, "keep load traces as eager raw slices instead of the compressed columnar store (bit-identical; for A/B memory timing)")
		scenPath = flag.String("scenario", "", "load a declarative scenario file (DER deployments, demand-response events, Byzantine peers; see scenarios/)")

		serveMode = flag.Bool("serve", false, "run as a long-lived daemon: step the fleet in the background and serve /v1/forecast, /v1/plan, /v1/fleet/status, /v1/config over HTTP")
		ckptPath  = flag.String("checkpoint", "", "serve mode: rotate full-fleet snapshots to this path and write a final one on shutdown")
		ckptEvery = flag.Int("checkpoint-every", 24, "serve mode: snapshot every N simulated hours")
		stepInt   = flag.Duration("step-interval", time.Second, "serve mode: wall-clock pace of one simulated hour")
	)
	flag.Parse()

	// Cross-flag validation: name the conflict and the fix, before any
	// work starts.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *serveMode {
		if set["days"] {
			log.Fatal("-days applies to batch runs; serve mode takes its horizon from the defaults or the loaded snapshot (drop -days)")
		}
		if set["save"] {
			log.Fatal("-save (models-only) is batch-only; serve mode checkpoints full-fleet snapshots via -checkpoint")
		}
		if set["snapshot"] {
			log.Fatal("-snapshot is batch-only; serve mode rotates snapshots continuously via -checkpoint")
		}
		if set["scenario"] && set["checkpoint"] {
			log.Fatal("-scenario runs cannot snapshot (scenario runtime state is not in the checkpoint format); drop -checkpoint")
		}
	} else {
		if set["scenario"] && set["snapshot"] {
			log.Fatal("-scenario runs cannot snapshot (scenario runtime state is not in the checkpoint format); drop -snapshot")
		}
		for _, f := range []string{"checkpoint", "checkpoint-every", "step-interval"} {
			if set[f] {
				log.Fatalf("-%s requires -serve (batch runs write a one-shot snapshot with -snapshot instead)", f)
			}
		}
	}

	cfg := core.DefaultConfig(core.Method(*method))
	cfg.Homes = *homes
	cfg.Days = *days
	cfg.DevicesPerHome = *devices
	cfg.Seed = *seed
	cfg.Alpha = *alpha
	cfg.BetaHours = *beta
	cfg.GammaHours = *gamma
	cfg.ForecastKind = forecast.Kind(*fcKind)
	cfg.RawTraces = *rawTr
	if *paper {
		cfg = cfg.PaperScale()
		cfg.Alpha = *alpha
	}
	// Kinds the spec doesn't know pass through so Config.Validate can name
	// them in its error.
	specFor := func(kind string) core.TopologySpec {
		switch kind {
		case core.TopoSampled:
			return core.TopologySpec{Kind: kind, K: *topoK}
		case core.TopoCluster:
			return core.TopologySpec{Kind: kind, ClusterSize: *clSize}
		case "":
			return core.TopologySpec{}
		}
		return core.TopologySpec{Kind: kind}
	}
	cfg.Topology = specFor(*topo)
	cfg.EMSTopology = specFor(*emsTopo)
	cfg.DropProb = *drop
	if *retries > 1 {
		cfg.Retry = fednet.RetryPolicy{MaxAttempts: *retries}
	}
	if *chaos {
		cfg.FaultPlan = core.ChaosFaultPlan(cfg.Homes, cfg.Days)
	}
	if *scenPath != "" {
		sc, err := scenario.Load(*scenPath)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Scenario = sc
	}

	// Telemetry is opt-in in batch mode: without these flags no sink exists
	// and the run takes the uninstrumented (bit-identical, allocation-free)
	// path. Serve mode always builds a sink — the HTTP API rides its mux.
	var sink *telemetry.Sink
	closeJournal := func() {}
	if *telAddr != "" || *journal != "" || *serveMode {
		sink = telemetry.NewSink()
		if *journal != "" {
			jf, err := os.Create(*journal)
			if err != nil {
				log.Fatal(err)
			}
			// The journal is buffered; closeJournal flushes and syncs it
			// exactly once, so both the normal exit path and the signal
			// path leave complete records on disk.
			bw := bufio.NewWriter(jf)
			sink.Journal = telemetry.NewJournal(bw)
			var once sync.Once
			closeJournal = func() {
				once.Do(func() {
					if err := sink.Journal.Err(); err != nil {
						log.Printf("journal: %v", err)
					}
					if err := bw.Flush(); err != nil {
						log.Printf("journal: %v", err)
					}
					if err := jf.Sync(); err != nil {
						log.Printf("journal: %v", err)
					}
					if err := jf.Close(); err != nil {
						log.Printf("journal: %v", err)
					}
				})
			}
			defer closeJournal()
		}
	}

	if *serveMode {
		runServe(cfg, sink, closeJournal, serveFlags{
			loadFrom:  *loadFrom,
			telAddr:   *telAddr,
			ckptPath:  *ckptPath,
			ckptEvery: *ckptEvery,
			stepInt:   *stepInt,
		})
		return
	}
	runBatch(cfg, sink, closeJournal, batchFlags{
		loadFrom: *loadFrom,
		saveTo:   *saveTo,
		snapTo:   *snapTo,
		telAddr:  *telAddr,
		telLing:  *telLing,
		chaosish: *chaos || *drop > 0 || *retries > 1 || !cfg.Scenario.AdversaryPlan().Empty(),
	})
}

type batchFlags struct {
	loadFrom, saveTo, snapTo string
	telAddr                  string
	telLing                  time.Duration
	chaosish                 bool
}

// runBatch is the classic one-shot simulation, now driven hour by hour
// through the stepwise engine so SIGINT/SIGTERM can land between steps:
// the loop stops cleanly, the journal flushes, and -snapshot (when set)
// captures the interrupted fleet for a later warm start.
func runBatch(cfg core.Config, sink *telemetry.Sink, closeJournal func(), fl batchFlags) {
	sys, err := core.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if sink != nil {
		if fl.telAddr != "" {
			srv, bound, err := sink.ListenAndServe(fl.telAddr)
			if err != nil {
				log.Fatal(err)
			}
			defer srv.Close()
			fmt.Printf("telemetry: serving on %s\n", bound)
		}
		sys.AttachTelemetry(sink)
	}
	if fl.loadFrom != "" {
		f, err := os.Open(fl.loadFrom)
		if err != nil {
			log.Fatal(err)
		}
		err = sys.LoadModels(f)
		f.Close()
		if errors.Is(err, core.ErrSnapshotCheckpoint) {
			log.Fatalf("%s is a full-fleet snapshot; warm-start it with -serve -load %s (batch -load takes models-only checkpoints from -save)",
				fl.loadFrom, fl.loadFrom)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("restored models from %s\n", fl.loadFrom)
	}
	fmt.Printf("method=%s homes=%d days=%d devices/home=%d α=%d β=%gh γ=%gh forecaster=%s\n",
		cfg.Method, cfg.Homes, cfg.Days, cfg.DevicesPerHome, cfg.Alpha, cfg.BetaHours, cfg.GammaHours, cfg.ForecastKind)
	if cfg.Scenario != nil {
		fmt.Printf("scenario: %s\n", cfg.Scenario.Name)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	eng := core.NewEngine(sys)
	for !eng.Done() && ctx.Err() == nil {
		if err := eng.StepHour(); err != nil {
			closeJournal()
			log.Fatal(err)
		}
	}
	if ctx.Err() != nil {
		stop() // restore default handling: a second signal kills immediately
		fmt.Printf("\ninterrupted at day %d hour %d; flushing\n", eng.Day(), eng.Hour())
		writeSnapshotFile(eng, fl.snapTo)
		closeJournal()
		os.Exit(130)
	}

	res, err := eng.Finish()
	if err != nil {
		closeJournal()
		log.Fatal(err)
	}

	fmt.Println("\nday  saved_kWh/home  saved_frac")
	for d := range res.DailySavedKWhPerHome {
		fmt.Printf("%3d  %14.4f  %10.3f\n", d+1, res.DailySavedKWhPerHome[d], res.DailySavedFrac[d])
	}
	fmt.Printf("\nforecast accuracy (eval window): %.3f\n", res.ForecastAccuracy)
	fmt.Printf("convergence day (90%% of plateau): %d\n", res.ConvergenceDay+1)
	fmt.Printf("time: fc-train %v, fc-test %v, ems-train %v, ems-test %v\n",
		res.ForecastTrainTime.Round(1e6), res.ForecastTestTime.Round(1e6),
		res.EMSTrainTime.Round(1e6), res.EMSTestTime.Round(1e6))
	for _, line := range res.CommsLines() {
		fmt.Println(line)
	}
	if line := res.DERLine(); line != "" {
		fmt.Println(line)
	}
	if fl.chaosish {
		fmt.Println(res.ResilienceLine())
	}
	if fl.saveTo != "" {
		f, err := os.Create(fl.saveTo)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.SaveModels(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved models to %s\n", fl.saveTo)
	}
	writeSnapshotFile(eng, fl.snapTo)
	// Flush the journal before lingering: scrapers read it while the
	// telemetry server stays up.
	closeJournal()
	if fl.telAddr != "" && fl.telLing > 0 {
		fmt.Printf("telemetry: lingering %v for scrapes\n", fl.telLing)
		time.Sleep(fl.telLing)
	}
}

// writeSnapshotFile writes a full-fleet snapshot to path (no-op when "").
func writeSnapshotFile(eng *core.Engine, path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.WriteSnapshot(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved full-fleet snapshot to %s (day %d hour %d)\n", path, eng.Day(), eng.Hour())
}

type serveFlags struct {
	loadFrom  string
	telAddr   string
	ckptPath  string
	ckptEvery int
	stepInt   time.Duration
}

// runServe boots the daemon: warm-start from a snapshot or a fresh fleet,
// mount the /v1 API beside the telemetry endpoints, step in the
// background, and shut down cleanly on SIGINT/SIGTERM — final snapshot,
// flushed journal, exit 0.
func runServe(cfg core.Config, sink *telemetry.Sink, closeJournal func(), fl serveFlags) {
	var eng *core.Engine
	if fl.loadFrom != "" {
		f, err := os.Open(fl.loadFrom)
		if err != nil {
			log.Fatal(err)
		}
		eng, err = core.ResumeEngine(f)
		f.Close()
		if errors.Is(err, core.ErrModelsOnlyCheckpoint) {
			log.Fatalf("%s is a models-only checkpoint (from -save); serve mode warm-starts from a full-fleet snapshot — produce one with a batch run's -snapshot, or start -serve without -load",
				fl.loadFrom)
		}
		if err != nil {
			log.Fatal(err)
		}
		rcfg := eng.System().Config()
		fmt.Printf("serve: resumed fleet from %s (method=%s homes=%d day %d hour %d of %d days)\n",
			fl.loadFrom, rcfg.Method, rcfg.Homes, eng.Day(), eng.Hour(), rcfg.Days)
	} else {
		sys, err := core.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		eng = core.NewEngine(sys)
		fmt.Printf("serve: fresh fleet (method=%s homes=%d days=%d)\n", cfg.Method, cfg.Homes, cfg.Days)
	}
	eng.System().AttachTelemetry(sink)

	daemon := serve.New(eng, sink, serve.Options{
		StepInterval:    fl.stepInt,
		CheckpointPath:  fl.ckptPath,
		CheckpointEvery: fl.ckptEvery,
	})
	addr := fl.telAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	mux := sink.Mux()
	daemon.Routes(mux)
	srv, bound, err := sink.ListenAndServeHandler(addr, mux)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("serve: listening on %s (step interval %v)\n", bound, fl.stepInt)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := daemon.Run(ctx); err != nil {
		closeJournal()
		log.Fatal(err)
	}
	fmt.Println("serve: shutting down")
	closeJournal()
}
