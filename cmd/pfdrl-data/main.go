// Command pfdrl-data generates a synthetic Pecan-Street-like corpus as CSV
// on stdout (or to a file), for inspection or for feeding external tools.
//
// Usage:
//
//	pfdrl-data -homes 4 -days 2 > corpus.csv
//	pfdrl-data -homes 10 -days 7 -devices 5 -o corpus.csv
package main

import (
	"bufio"
	"flag"
	"log"
	"os"

	"repro/internal/pecan"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pfdrl-data: ")

	var (
		homes   = flag.Int("homes", 4, "number of residences")
		days    = flag.Int("days", 2, "days per trace")
		devices = flag.Int("devices", 0, "devices per home (0 = full library)")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	ds := pecan.Generate(pecan.Config{
		Seed: *seed, Homes: *homes, Days: *days, DevicesPerHome: *devices,
	})

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	bw := bufio.NewWriter(w)
	if err := ds.WriteCSV(bw); err != nil {
		log.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		log.Fatal(err)
	}
}
