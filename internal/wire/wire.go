// Package wire implements the versioned compression codec the federation
// planes broadcast parameters with. The dense PFP1 format (fed.MarshalParams)
// ships every float64 raw — O(P) · 8 bytes per message, N·(N−1) messages per
// decentralized round. This package replaces the payload body with a
// delta-coded stream against the sender's previous broadcast:
//
//	magic "PFW2" | codec | flags | epoch | crc32 | body
//
// Three codec tiers share the envelope:
//
//   - CodecDense: raw little-endian float64 bits. Used for keyframes (a
//     sender's first broadcast of a kind, or any payload containing NaN/Inf,
//     which the delta tiers cannot represent compactly) and as the explicit
//     Dense level.
//   - CodecDelta (the lossless default): per-tensor, each element's IEEE-754
//     bits are mapped to a monotone total-order key, subtracted from the
//     previous broadcast's key, zig-zag coded, and varint packed. Runs of
//     zero deltas (untouched parameters, converged re-broadcasts) collapse
//     to a 2–3 byte token. Tensors are split into fixed-size segments with a
//     byte-length table so decode can proceed segment-parallel. Decoding
//     reproduces the sender's float64 bits exactly.
//   - CodecTopK (opt-in, lossy): value-domain top-k sparsification with
//     int16 quantization and sender-side error-feedback residuals. Receivers
//     reconstruct ref + scale·q at the selected indices and keep the
//     reference elsewhere.
//
// Delta decoding needs the sender's previous broadcast. Exchange keeps that
// reference per (sender, kind), double-buffered and epoch-tagged, shared
// between the encode and decode sides of the in-process fabric — the
// simulator's stand-in for each receiver's reference cache (a real
// deployment stores the same O(P) per peer it already receives; the epoch
// tag is what lets it detect staleness and reject instead of corrupting).
// Payload bytes, not reference distribution, are what the fabric accounts.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/tensor"
)

// Codec identifies the payload body encoding.
type Codec byte

const (
	// CodecDense is the raw float64 body (keyframes and the Dense level).
	CodecDense Codec = 0
	// CodecDelta is the lossless zig-zag varint delta body.
	CodecDelta Codec = 1
	// CodecTopK is the lossy sparsified, quantized body.
	CodecTopK Codec = 2
)

// Level selects the compression tier a fleet runs with.
type Level int

const (
	// Dense disables compression: every payload is a raw keyframe.
	Dense Level = iota
	// Delta is the lossless default: keyframe first, bit-exact deltas after.
	Delta
	// TopK is the lossy tier: top-k + int16 quantization with error
	// feedback. Not bit-stable against the dense run; opt-in only.
	TopK
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case Delta:
		return "delta"
	case TopK:
		return "topk"
	default:
		return "dense"
	}
}

// ParseLevel maps a level's String() form back to the Level — the inverse
// the CLI and the daemon's live-reconfiguration endpoint need.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "dense":
		return Dense, nil
	case "delta":
		return Delta, nil
	case "topk":
		return TopK, nil
	}
	return Dense, fmt.Errorf("wire: unknown codec level %q (want dense, delta, or topk)", s)
}

// Options configures an Exchange.
type Options struct {
	// Level picks the codec tier. The zero value is Dense (no compression,
	// the pre-PFW2 behavior byte-for-value).
	Level Level
	// TopKFrac is the fraction of elements CodecTopK transmits per tensor
	// (default 0.1, clamped to at least one element).
	TopKFrac float64
	// KahanFold enables compensated summation in FoldInto's accumulator.
	// Off by default: the plain fold replays the dense aggregation
	// arithmetic bit-for-bit, which is what keeps compressed rounds
	// bit-identical to dense rounds. Kahan is for large-N fleets that
	// prefer accuracy over dense-run equivalence.
	KahanFold bool
}

func (o Options) withDefaults() Options {
	if o.TopKFrac <= 0 || o.TopKFrac > 1 {
		o.TopKFrac = 0.1
	}
	return o
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.Level < Dense || o.Level > TopK {
		return fmt.Errorf("wire: unknown level %d", int(o.Level))
	}
	if o.TopKFrac < 0 || o.TopKFrac > 1 {
		return fmt.Errorf("wire: TopKFrac %v outside [0,1]", o.TopKFrac)
	}
	return nil
}

const (
	magic = "PFW2"
	// headerSize = magic + codec + flags + epoch(4) + crc32(4).
	headerSize = 4 + 1 + 1 + 4 + 4
	// crcOff is the checksum's offset; it covers everything after itself.
	crcOff = 4 + 1 + 1 + 4

	// flagDelta marks a body coded against the sender's previous epoch.
	flagDelta = 1 << 0

	// segElems is the delta codec's segment width: segments decode (and
	// fold) independently, so sched.ParallelFor can overlap decoding one
	// segment with accumulating another.
	segElems = 4096

	// maxWireDim bounds decoded tensor dimensions, mirroring tensor's
	// serialize guard against corrupt or adversarial headers.
	maxWireDim = 1 << 24
)

// ErrDiverged marks a payload whose decoded values contain NaN/Inf. It is
// the one decode failure that is not wire corruption: the sender's model
// diverged, and federation rounds count it separately.
var ErrDiverged = errors.New("NaN/Inf parameters")

// --- bit-level primitives -------------------------------------------------

// keyOf maps IEEE-754 bits onto a monotone total-order key: the key order
// equals the value order (negatives below positives, magnitude order within
// each sign), so two numerically close floats have numerically close keys
// and their difference zig-zag packs small.
func keyOf(bits uint64) uint64 {
	if bits>>63 == 1 {
		return ^bits
	}
	return bits | 1<<63
}

// bitsOf inverts keyOf.
func bitsOf(key uint64) uint64 {
	if key>>63 == 1 {
		return key &^ (1 << 63)
	}
	return ^key
}

// zigzag folds a signed delta into an unsigned varint-friendly value.
func zigzag(d int64) uint64 { return uint64((d << 1) ^ (d >> 63)) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendUvarint appends x in LEB128.
func appendUvarint(dst []byte, x uint64) []byte {
	return binary.AppendUvarint(dst, x)
}

// uvarintLen returns the encoded length of x.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// readUvarint decodes a varint from data, returning the value and bytes
// consumed, or an error on truncation/overflow.
func readUvarint(data []byte) (uint64, int, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, 0, errors.New("wire: truncated or overlong varint")
	}
	return v, n, nil
}

// isNaNInfBits reports whether bits encode NaN or ±Inf.
func isNaNInfBits(bits uint64) bool { return bits>>52&0x7FF == 0x7FF }

// --- header ---------------------------------------------------------------

// header is the decoded PFW2 envelope.
type header struct {
	codec Codec
	flags byte
	epoch uint32
	body  []byte
}

// parseHeader validates the envelope and checksum and returns the body.
func parseHeader(payload []byte) (header, error) {
	var h header
	if len(payload) < headerSize || string(payload[:4]) != magic {
		return h, errors.New("wire: payload missing PFW2 header")
	}
	h.codec = Codec(payload[4])
	h.flags = payload[5]
	h.epoch = binary.LittleEndian.Uint32(payload[6:10])
	want := binary.LittleEndian.Uint32(payload[crcOff : crcOff+4])
	body := payload[headerSize:]
	// The checksum covers codec/flags/epoch too: a bit flip in the envelope
	// must be caught, not just one in the body.
	got := crc32.ChecksumIEEE(payload[4:crcOff])
	got = crc32.Update(got, crc32.IEEETable, body)
	if got != want {
		return h, fmt.Errorf("wire: payload checksum mismatch (header %08x, body %08x)", want, got)
	}
	if h.codec > CodecTopK {
		return h, fmt.Errorf("wire: unknown codec %d", h.codec)
	}
	h.body = body
	return h, nil
}

// appendHeader appends the envelope with a zero checksum placeholder;
// finishHeader seals it once the body is in place.
func appendHeader(dst []byte, codec Codec, flags byte, epoch uint32) []byte {
	dst = append(dst, magic...)
	dst = append(dst, byte(codec), flags)
	dst = binary.LittleEndian.AppendUint32(dst, epoch)
	return binary.LittleEndian.AppendUint32(dst, 0)
}

// finishHeader computes the checksum over everything after it. start is the
// payload's offset in dst (the envelope began there).
func finishHeader(dst []byte, start int) {
	sum := crc32.ChecksumIEEE(dst[start+4 : start+crcOff])
	sum = crc32.Update(sum, crc32.IEEETable, dst[start+headerSize:])
	binary.LittleEndian.PutUint32(dst[start+crcOff:start+crcOff+4], sum)
}

// --- shape walking --------------------------------------------------------

// shapesMatch verifies a decoded (rows, cols) against the template.
func shapesMatch(i int, rows, cols uint64, tpl *tensor.Matrix) error {
	if rows > maxWireDim || cols > maxWireDim {
		return fmt.Errorf("wire: tensor %d header claims %dx%d, exceeds limit", i, rows, cols)
	}
	if int(rows) != tpl.Rows || int(cols) != tpl.Cols {
		return fmt.Errorf("wire: tensor %d is %dx%d, want %dx%d", i, rows, cols, tpl.Rows, tpl.Cols)
	}
	return nil
}

// DenseSize returns the PFP1 dense wire size of a parameter set — the
// baseline the compression ratio is measured against: fed's envelope (magic
// + crc32) plus each matrix's raw encoding.
func DenseSize(template []*tensor.Matrix) int {
	n := 8 // PFP1 magic + checksum
	for _, p := range template {
		n += 8 + 8*p.Size()
	}
	return n
}

// zeroRunSegSize returns the encoded size of one all-zero-delta segment of
// n elements: the zero token plus the run length.
func zeroRunSegSize(n int) int { return 1 + uvarintLen(uint64(n)) }

// ZeroDeltaSize returns the CodecDelta payload size for a broadcast whose
// parameters are unchanged since the previous one — every segment collapses
// to a single zero-run token. The simulation charges this for idempotent
// sub-period re-fires instead of the dense size.
func ZeroDeltaSize(template []*tensor.Matrix) int {
	n := headerSize + uvarintLen(uint64(len(template)))
	for _, p := range template {
		elems := p.Size()
		segs := (elems + segElems - 1) / segElems
		n += uvarintLen(uint64(p.Rows)) + uvarintLen(uint64(p.Cols)) + uvarintLen(uint64(segs))
		for s := 0; s < segs; s++ {
			cnt := segElems
			if s == segs-1 {
				cnt = elems - s*segElems
			}
			seg := zeroRunSegSize(cnt)
			n += uvarintLen(uint64(seg)) + seg
		}
	}
	return n
}

// RefireSize returns the bytes one idempotent re-broadcast costs under the
// given options: the dense size when compression is off, the all-zero delta
// (or empty top-k) payload when it is on.
func RefireSize(opts Options, template []*tensor.Matrix) int {
	switch opts.Level {
	case Delta:
		return ZeroDeltaSize(template)
	case TopK:
		n := headerSize + uvarintLen(uint64(len(template)))
		for _, p := range template {
			n += uvarintLen(uint64(p.Rows)) + uvarintLen(uint64(p.Cols)) + 8 + uvarintLen(0)
		}
		return n
	default:
		return DenseSize(template)
	}
}

// paramsHaveNaN reports whether any value in the set is NaN/Inf — the
// encoder's keyframe-fallback test (delta tiers assume finite values).
func paramsHaveNaN(params []*tensor.Matrix) bool {
	for _, p := range params {
		if p.HasNaN() {
			return true
		}
	}
	return false
}
