package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/tensor"
)

// This file holds the three body codecs. All bodies open with a varint
// tensor count, then per-tensor varint rows and cols; what follows depends
// on the codec:
//
//	dense:  size raw little-endian float64s
//	delta:  varint nsegs, then per segment varint byteLen + token stream
//	topk:   float64 scale, varint k, then k × (varint index-gap, int16 q)
//
// Delta token stream, per segment of up to segElems elements:
//
//	token == 0:  varint run-length of zero deltas (keys unchanged)
//	token  > 0:  one element; delta = unzigzag(token)
//
// zigzag(d) == 0 iff d == 0, so the zero token is unambiguous. Keys are the
// monotone order-preserving mapping of the float64 bits (keyOf), and deltas
// are wrapping int64 differences of consecutive epochs' keys — lossless for
// every bit pattern including NaN payloads (which the receiver then rejects
// by value, exactly like the dense path does).

// --- dense ----------------------------------------------------------------

// appendDenseBody appends the raw float64 body for params.
func appendDenseBody(dst []byte, params []*tensor.Matrix) []byte {
	dst = appendUvarint(dst, uint64(len(params)))
	for _, p := range params {
		dst = appendUvarint(dst, uint64(p.Rows))
		dst = appendUvarint(dst, uint64(p.Cols))
		for _, v := range p.Data {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	}
	return dst
}

// denseTensorBody returns the raw value bytes of tensor i in a dense body,
// validating shape headers as it walks. Returns the remaining buffer too.
func splitDenseTensor(i int, body []byte, tpl *tensor.Matrix) (vals, rest []byte, err error) {
	rows, n, err := readUvarint(body)
	if err != nil {
		return nil, nil, err
	}
	body = body[n:]
	cols, n, err := readUvarint(body)
	if err != nil {
		return nil, nil, err
	}
	body = body[n:]
	if err := shapesMatch(i, rows, cols, tpl); err != nil {
		return nil, nil, err
	}
	need := 8 * tpl.Size()
	if len(body) < need {
		return nil, nil, fmt.Errorf("wire: tensor %d dense body truncated (%d bytes, want %d)", i, len(body), need)
	}
	return body[:need], body[need:], nil
}

// --- delta ----------------------------------------------------------------

// appendDeltaBody appends the delta body for params against refKeys
// (previous epoch's keys), writing each element's new key into newKeys.
// scratch buffers the per-segment token stream so its varint length can be
// written first; the (possibly grown) scratch is returned for reuse.
func appendDeltaBody(dst []byte, params []*tensor.Matrix, refKeys, newKeys [][]uint64, scratch []byte) ([]byte, []byte) {
	dst = appendUvarint(dst, uint64(len(params)))
	for ti, p := range params {
		elems := p.Size()
		segs := (elems + segElems - 1) / segElems
		dst = appendUvarint(dst, uint64(p.Rows))
		dst = appendUvarint(dst, uint64(p.Cols))
		dst = appendUvarint(dst, uint64(segs))
		ref, keys := refKeys[ti], newKeys[ti]
		for s := 0; s < segs; s++ {
			lo, hi := s*segElems, min((s+1)*segElems, elems)
			scratch = scratch[:0]
			zeroRun := 0
			flush := func() {
				if zeroRun > 0 {
					scratch = append(scratch, 0)
					scratch = appendUvarint(scratch, uint64(zeroRun))
					zeroRun = 0
				}
			}
			for j := lo; j < hi; j++ {
				k := keyOf(math.Float64bits(p.Data[j]))
				keys[j] = k
				d := int64(k - ref[j])
				if d == 0 {
					zeroRun++
					continue
				}
				flush()
				scratch = appendUvarint(scratch, zigzag(d))
			}
			flush()
			dst = appendUvarint(dst, uint64(len(scratch)))
			dst = append(dst, scratch...)
		}
	}
	return dst, scratch
}

// deltaSegs describes one tensor's segment layout inside a delta body:
// offs[s]..offs[s]+lens[s] is segment s's token stream within raw.
type deltaTensor struct {
	raw  []byte
	offs []int
	lens []int
}

// splitDeltaTensor walks tensor i's header and segment length table,
// returning its layout and the remaining buffer.
func splitDeltaTensor(i int, body []byte, tpl *tensor.Matrix) (deltaTensor, []byte, error) {
	var dt deltaTensor
	rows, n, err := readUvarint(body)
	if err != nil {
		return dt, nil, err
	}
	body = body[n:]
	cols, n, err := readUvarint(body)
	if err != nil {
		return dt, nil, err
	}
	body = body[n:]
	if err := shapesMatch(i, rows, cols, tpl); err != nil {
		return dt, nil, err
	}
	elems := tpl.Size()
	wantSegs := (elems + segElems - 1) / segElems
	segs, n, err := readUvarint(body)
	if err != nil {
		return dt, nil, err
	}
	body = body[n:]
	if int(segs) != wantSegs {
		return dt, nil, fmt.Errorf("wire: tensor %d has %d segments, want %d", i, segs, wantSegs)
	}
	dt.offs = make([]int, wantSegs)
	dt.lens = make([]int, wantSegs)
	off := 0
	start := body
	for s := 0; s < wantSegs; s++ {
		segLen, n, err := readUvarint(body)
		if err != nil {
			return dt, nil, err
		}
		body = body[n:]
		off += n
		if uint64(len(body)) < segLen {
			return dt, nil, fmt.Errorf("wire: tensor %d segment %d truncated (%d bytes, want %d)", i, s, len(body), segLen)
		}
		dt.offs[s] = off
		dt.lens[s] = int(segLen)
		body = body[segLen:]
		off += int(segLen)
	}
	dt.raw = start[:off]
	return dt, body, nil
}

// walkDeltaSeg iterates one segment's token stream, calling emit with each
// element's reconstructed key. count is the segment's element count.
func walkDeltaSeg(tokens []byte, ref []uint64, count int, emit func(j int, key uint64)) error {
	j := 0
	for len(tokens) > 0 {
		t, n, err := readUvarint(tokens)
		if err != nil {
			return err
		}
		tokens = tokens[n:]
		if t == 0 {
			run, n, err := readUvarint(tokens)
			if err != nil {
				return err
			}
			tokens = tokens[n:]
			if run == 0 || run > uint64(count-j) {
				return fmt.Errorf("wire: zero run of %d exceeds segment remainder %d", run, count-j)
			}
			for r := 0; r < int(run); r++ {
				emit(j, ref[j])
				j++
			}
			continue
		}
		if j >= count {
			return fmt.Errorf("wire: segment token overruns %d elements", count)
		}
		emit(j, ref[j]+uint64(unzigzag(t)))
		j++
	}
	if j != count {
		return fmt.Errorf("wire: segment decoded %d of %d elements", j, count)
	}
	return nil
}

// --- top-k ----------------------------------------------------------------

// appendTopKBody appends the sparsified body. For each tensor it selects
// the k = ⌈frac·size⌉ largest |param − ref| corrections, quantizes them to
// int16 against a per-tensor scale, and advances ref exactly as the
// receiver will reconstruct it. The error-feedback residual is the tracked
// discrepancy param − ref itself: everything a round does not send — the
// unselected mass and what quantization rounds away — stays in the
// reference gap and feeds the next round's selection, so nothing is lost,
// and (unlike an explicitly accumulated residual on top of the gap) it is
// never counted twice. refVals is the previous epoch's reconstructed
// reference; newRef receives this epoch's. absScratch is reused across
// calls.
func appendTopKBody(dst []byte, params []*tensor.Matrix, refVals, newRef [][]float64, frac float64, absScratch []float64) ([]byte, []float64) {
	dst = appendUvarint(dst, uint64(len(params)))
	for ti, p := range params {
		elems := p.Size()
		dst = appendUvarint(dst, uint64(p.Rows))
		dst = appendUvarint(dst, uint64(p.Cols))
		ref, nref := refVals[ti], newRef[ti]

		k := 0
		if elems > 0 {
			k = int(math.Ceil(frac * float64(elems)))
			if k < 1 {
				k = 1
			}
			if k > elems {
				k = elems
			}
		}
		if cap(absScratch) < elems {
			absScratch = make([]float64, elems)
		}
		abs := absScratch[:elems]
		for j := 0; j < elems; j++ {
			abs[j] = math.Abs(p.Data[j] - ref[j])
		}
		thr, maxAbs := 0.0, 0.0
		if elems > 0 {
			sorted := append([]float64(nil), abs...)
			sort.Float64s(sorted)
			thr = sorted[elems-k]
			maxAbs = sorted[elems-1]
		}
		scale := maxAbs / math.MaxInt16
		if scale == 0 || math.IsInf(scale, 0) || math.IsNaN(scale) {
			// Nothing changed (or degenerate): send an empty correction.
			copy(nref, ref)
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(0))
			dst = appendUvarint(dst, 0)
			continue
		}
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(scale))
		// Selection in index order: strictly-above-threshold entries are
		// always in (there are at most k−1 of them, since thr is the k-th
		// largest magnitude); at-threshold ties fill the remaining quota
		// deterministically, earliest index first. Exactly k entries ship.
		above := 0
		for j := 0; j < elems; j++ {
			if abs[j] > thr {
				above++
			}
		}
		tieQuota := k - above
		dst = appendUvarint(dst, uint64(k))
		prev := 0
		for j := 0; j < elems; j++ {
			d := p.Data[j] - ref[j]
			pick := abs[j] > thr
			if !pick && abs[j] == thr && tieQuota > 0 {
				pick = true
				tieQuota--
			}
			if !pick {
				nref[j] = ref[j]
				continue
			}
			q := int64(math.Round(d / scale))
			if q > math.MaxInt16 {
				q = math.MaxInt16
			} else if q < -math.MaxInt16 {
				q = -math.MaxInt16
			}
			applied := scale * float64(q)
			nref[j] = ref[j] + applied
			dst = appendUvarint(dst, uint64(j-prev))
			dst = binary.LittleEndian.AppendUint16(dst, uint16(int16(q)))
			prev = j + 1
		}
	}
	return dst, absScratch
}

// topKTensor is the parsed view of one tensor's sparse correction.
type topKTensor struct {
	scale float64
	// idx/q are the selected indices and quantized corrections.
	idx []int
	q   []int16
}

// splitTopKTensor parses tensor i's sparse header and entries, validating
// index monotonicity and bounds, and returns the remaining buffer.
func splitTopKTensor(i int, body []byte, tpl *tensor.Matrix) (topKTensor, []byte, error) {
	var tk topKTensor
	rows, n, err := readUvarint(body)
	if err != nil {
		return tk, nil, err
	}
	body = body[n:]
	cols, n, err := readUvarint(body)
	if err != nil {
		return tk, nil, err
	}
	body = body[n:]
	if err := shapesMatch(i, rows, cols, tpl); err != nil {
		return tk, nil, err
	}
	if len(body) < 8 {
		return tk, nil, fmt.Errorf("wire: tensor %d top-k scale truncated", i)
	}
	tk.scale = math.Float64frombits(binary.LittleEndian.Uint64(body))
	body = body[8:]
	if math.IsNaN(tk.scale) || math.IsInf(tk.scale, 0) || tk.scale < 0 {
		return tk, nil, fmt.Errorf("wire: tensor %d top-k scale %v invalid", i, tk.scale)
	}
	k, n, err := readUvarint(body)
	if err != nil {
		return tk, nil, err
	}
	body = body[n:]
	elems := tpl.Size()
	if k > uint64(elems) {
		return tk, nil, fmt.Errorf("wire: tensor %d sends %d corrections for %d elements", i, k, elems)
	}
	tk.idx = make([]int, k)
	tk.q = make([]int16, k)
	at := -1
	for e := 0; e < int(k); e++ {
		gap, n, err := readUvarint(body)
		if err != nil {
			return tk, nil, err
		}
		body = body[n:]
		at += 1 + int(gap)
		if at >= elems {
			return tk, nil, fmt.Errorf("wire: tensor %d correction index %d out of range %d", i, at, elems)
		}
		if len(body) < 2 {
			return tk, nil, fmt.Errorf("wire: tensor %d correction %d truncated", i, e)
		}
		tk.idx[e] = at
		tk.q[e] = int16(binary.LittleEndian.Uint16(body))
		body = body[2:]
	}
	return tk, body, nil
}
