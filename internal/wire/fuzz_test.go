package wire

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// fuzzFixture builds an exchange with an established two-epoch stream so
// delta payloads have a live reference to decode against, and returns a
// genuine epoch-1 payload as seed material.
func fuzzFixture(level Level) (*Exchange, []*tensor.Matrix, []byte) {
	rng := rand.New(rand.NewSource(99))
	x := NewExchange(Options{Level: level})
	params := randParams(rng, [][2]int{{7, 23}, {1, 23}})
	payload, err := x.EncodeInto(nil, 0, "fc", params)
	if err != nil {
		panic(err)
	}
	perturb(rng, params, 0.4)
	payload, err = x.EncodeInto(payload[:0], 0, "fc", params)
	if err != nil {
		panic(err)
	}
	return x, params, append([]byte(nil), payload...)
}

// FuzzValidatePayload throws arbitrary bytes at the full decode surface —
// Validate, FoldInto, DecodeInto, across all three codec levels — and
// requires errors, never panics, for anything that is not the genuine
// payload. It also re-seals mutated bodies with a valid checksum so the
// structural validators underneath the CRC get exercised, not just the CRC.
func FuzzValidatePayload(f *testing.F) {
	_, _, deltaSeed := fuzzFixture(Delta)
	_, _, denseSeed := fuzzFixture(Dense)
	_, _, topkSeed := fuzzFixture(TopK)
	f.Add(deltaSeed)
	f.Add(denseSeed)
	f.Add(topkSeed)
	f.Add([]byte{})
	f.Add([]byte("PFW2"))
	f.Add(deltaSeed[:len(deltaSeed)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, level := range []Level{Dense, Delta, TopK} {
			x, params, _ := fuzzFixture(level)
			staged := likeSet(params)
			dst := likeSet(params)

			check := func(payload []byte) {
				err := x.Validate(0, "fc", params, payload)
				if err != nil && !errors.Is(err, ErrDiverged) {
					return // corrupt: rejected, as required
				}
				// Accepted (or merely diverged): folding and decoding the
				// same payload must then succeed.
				if err := x.FoldInto(staged, nil, 0, "fc", payload, 0.5); err != nil {
					t.Fatalf("Validate accepted but FoldInto failed: %v", err)
				}
				if err := x.DecodeInto(dst, 0, "fc", payload); err != nil {
					t.Fatalf("Validate accepted but DecodeInto failed: %v", err)
				}
			}

			check(data)
			// Re-seal the mutated bytes as a structurally addressed payload:
			// keep the fuzzed header fields and body, fix magic + checksum.
			if len(data) >= headerSize {
				sealed := append([]byte(nil), data...)
				copy(sealed, magic)
				if sealed[4] > byte(CodecTopK) {
					sealed[4] %= 3
				}
				finishHeader(sealed, 0)
				check(sealed)
			}
		}
	})
}

// FuzzDeltaRoundTrip fuzzes parameter values themselves (as raw bits) and
// checks encode→decode is identity on every bit pattern, including the
// NaN/Inf space.
func FuzzDeltaRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(1), uint64(math.MaxUint64))
	f.Add(math.Float64bits(1.5), math.Float64bits(math.Inf(-1)), math.Float64bits(math.NaN()))
	f.Fuzz(func(t *testing.T, a, b, c uint64) {
		x := NewExchange(Options{Level: Delta})
		params := []*tensor.Matrix{tensor.New(1, 3)}
		params[0].Data[0] = math.Float64frombits(a)
		params[0].Data[1] = math.Float64frombits(b)
		params[0].Data[2] = math.Float64frombits(c)
		var payload []byte
		for epoch := 0; epoch < 3; epoch++ {
			var err error
			payload, err = x.EncodeInto(payload[:0], 0, "fc", params)
			if err != nil {
				t.Fatal(err)
			}
			dst := likeSet(params)
			if err := x.DecodeInto(dst, 0, "fc", payload); err != nil {
				t.Fatal(err)
			}
			bitsEqual(t, dst, params, "fuzz round trip")
			// rotate the values so later epochs exercise non-zero deltas
			params[0].Data[0], params[0].Data[1], params[0].Data[2] = params[0].Data[1], params[0].Data[2], params[0].Data[0]
		}
	})
}
