package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/sched"
	"repro/internal/tensor"
)

// Exchange is one federation plane's codec state: per-(sender, kind)
// broadcast references plus encode/decode counters. A fleet shares one
// Exchange per fabric; the fed round machinery encodes every agent's
// broadcast through it and decodes (validates + folds) every received
// payload against it.
//
// Concurrency: different (sender, kind) streams may encode and decode
// concurrently — the reference map is lock-protected, and counters are
// atomic. Within one kind, the caller must not overlap a new encode with
// in-flight decodes of the previous round; fed's one-round-in-flight
// workspace contract provides exactly that ordering (a round is Joined
// before the next Begin on the same kind).
type Exchange struct {
	opts Options

	mu   sync.RWMutex
	refs map[refID]*refState

	// encMu serializes encoders so the segment and |delta| scratch buffers
	// can be reused across calls.
	encMu      sync.Mutex
	segScratch []byte
	absScratch []float64

	payloadsEncoded atomic.Uint64
	payloadsDecoded atomic.Uint64
	bytesEncoded    atomic.Uint64
	denseBytes      atomic.Uint64
}

// refID keys a broadcast stream: one sender agent on one logical plane
// ("fc/<device>", "drl", ...).
type refID struct {
	sender int
	kind   string
}

// refState is one stream's reference, double-buffered by epoch parity:
// buffer e%2 holds epoch e's broadcast. Two buffers suffice because at most
// one round per kind is in flight — while receivers decode epoch e against
// buffer (e−1)%2, the encoder has already written e's buffer, and the
// encode of e+1 (which reuses (e−1)%2) cannot start until e's round joins.
type refState struct {
	lastEpoch uint32
	have      [2]bool
	epochAt   [2]uint32
	// keys are the monotone bit keys (CodecDelta); vals the reconstructed
	// float values (CodecTopK, doubling as the error-feedback carry — the
	// gap param−val is exactly the unsent mass). Only the configured
	// tier's slices allocate.
	keys [2][][]uint64
	vals [2][][]float64
}

// NewExchange builds an Exchange for one fabric.
func NewExchange(opts Options) *Exchange {
	return &Exchange{opts: opts.withDefaults(), refs: map[refID]*refState{}}
}

// Options returns the exchange's (defaulted) options.
func (x *Exchange) Options() Options { return x.opts }

// Stats is a snapshot of an Exchange's codec counters.
type Stats struct {
	// PayloadsEncoded / PayloadsDecoded count EncodeInto and Validate calls.
	PayloadsEncoded uint64
	PayloadsDecoded uint64
	// BytesEncoded is the compressed payload bytes produced; DenseBytes is
	// what the same payloads would have cost in the dense PFP1 format.
	BytesEncoded uint64
	DenseBytes   uint64
}

// Ratio returns DenseBytes/BytesEncoded — the achieved compression ratio
// (1.0 when nothing was encoded).
func (s Stats) Ratio() float64 {
	if s.BytesEncoded == 0 {
		return 1
	}
	return float64(s.DenseBytes) / float64(s.BytesEncoded)
}

// Stats snapshots the counters.
func (x *Exchange) Stats() Stats {
	return Stats{
		PayloadsEncoded: x.payloadsEncoded.Load(),
		PayloadsDecoded: x.payloadsDecoded.Load(),
		BytesEncoded:    x.bytesEncoded.Load(),
		DenseBytes:      x.denseBytes.Load(),
	}
}

// ref returns the stream's state, creating it on first use.
func (x *Exchange) ref(sender int, kind string) *refState {
	id := refID{sender, kind}
	x.mu.RLock()
	rs := x.refs[id]
	x.mu.RUnlock()
	if rs != nil {
		return rs
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if rs = x.refs[id]; rs == nil {
		rs = &refState{}
		x.refs[id] = rs
	}
	return rs
}

// lookup returns the stream's state without creating it.
func (x *Exchange) lookup(sender int, kind string) *refState {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.refs[refID{sender, kind}]
}

// shapesAgree reports whether bufs (keyed per tensor by element count)
// still matches the parameter set — a shape change forces a re-keyframe.
func shapesAgree(sizes []int, params []*tensor.Matrix) bool {
	if len(sizes) != len(params) {
		return false
	}
	for i, p := range params {
		if sizes[i] != p.Size() {
			return false
		}
	}
	return true
}

func keyBufSizes(bufs [][]uint64) []int {
	s := make([]int, len(bufs))
	for i, b := range bufs {
		s[i] = len(b)
	}
	return s
}

func valBufSizes(bufs [][]float64) []int {
	s := make([]int, len(bufs))
	for i, b := range bufs {
		s[i] = len(b)
	}
	return s
}

// ensureKeyBufs sizes a key buffer set like params, reusing capacity.
func ensureKeyBufs(bufs [][]uint64, params []*tensor.Matrix) [][]uint64 {
	if cap(bufs) < len(params) {
		bufs = make([][]uint64, len(params))
	}
	bufs = bufs[:len(params)]
	for i, p := range params {
		n := p.Size()
		if cap(bufs[i]) < n {
			bufs[i] = make([]uint64, n)
		}
		bufs[i] = bufs[i][:n]
	}
	return bufs
}

// ensureValBufs sizes a value buffer set like params, reusing capacity.
func ensureValBufs(bufs [][]float64, params []*tensor.Matrix) [][]float64 {
	if cap(bufs) < len(params) {
		bufs = make([][]float64, len(params))
	}
	bufs = bufs[:len(params)]
	for i, p := range params {
		n := p.Size()
		if cap(bufs[i]) < n {
			bufs[i] = make([]float64, n)
		}
		bufs[i] = bufs[i][:n]
	}
	return bufs
}

// EncodeInto encodes params as sender's next broadcast on kind, appending
// the payload to dst[:0] and returning it. The first broadcast of a stream
// is a dense keyframe; later ones are coded against the previous epoch per
// the exchange's Level. Payloads with NaN/Inf values fall back to dense
// keyframes under TopK (the value-domain codec cannot carry them); the
// lossless Delta tier codes any bit pattern.
func (x *Exchange) EncodeInto(dst []byte, sender int, kind string, params []*tensor.Matrix) ([]byte, error) {
	rs := x.ref(sender, kind)
	x.encMu.Lock()
	defer x.encMu.Unlock()

	prev := rs.lastEpoch % 2
	keyframe := !rs.have[prev]
	epoch := uint32(0)
	if !keyframe {
		epoch = rs.lastEpoch + 1
	}
	cur := epoch % 2

	switch x.opts.Level {
	case Delta:
		if !keyframe && !shapesAgree(keyBufSizes(rs.keys[prev]), params) {
			keyframe, epoch, cur = true, 0, 0
			rs.have[0], rs.have[1] = false, false
		}
	case TopK:
		if !keyframe && !shapesAgree(valBufSizes(rs.vals[prev]), params) {
			keyframe, epoch, cur = true, 0, 0
			rs.have[0], rs.have[1] = false, false
		}
	}

	start := len(dst)
	switch {
	case x.opts.Level == Dense:
		dst = appendHeader(dst, CodecDense, 0, epoch)
		dst = appendDenseBody(dst, params)
	case x.opts.Level == Delta:
		rs.keys[cur] = ensureKeyBufs(rs.keys[cur], params)
		if keyframe {
			dst = appendHeader(dst, CodecDense, 0, epoch)
			dst = appendDenseBody(dst, params)
			for i, p := range params {
				for j, v := range p.Data {
					rs.keys[cur][i][j] = keyOf(math.Float64bits(v))
				}
			}
		} else {
			dst = appendHeader(dst, CodecDelta, flagDelta, epoch)
			dst, x.segScratch = appendDeltaBody(dst, params, rs.keys[prev], rs.keys[cur], x.segScratch)
		}
	default: // TopK
		rs.vals[cur] = ensureValBufs(rs.vals[cur], params)
		if keyframe || paramsHaveNaN(params) {
			// Keyframe, or a diverged payload the sparse codec cannot
			// carry: ship dense and reset the reference to the exact
			// values (which also zeroes the error-feedback gap).
			dst = appendHeader(dst, CodecDense, 0, epoch)
			dst = appendDenseBody(dst, params)
			for i, p := range params {
				copy(rs.vals[cur][i], p.Data)
			}
		} else {
			dst = appendHeader(dst, CodecTopK, flagDelta, epoch)
			dst, x.absScratch = appendTopKBody(dst, params, rs.vals[prev], rs.vals[cur], x.opts.TopKFrac, x.absScratch)
		}
	}
	finishHeader(dst, start)

	rs.lastEpoch = epoch
	rs.have[cur] = true
	rs.epochAt[cur] = epoch

	x.payloadsEncoded.Add(1)
	x.bytesEncoded.Add(uint64(len(dst) - start))
	x.denseBytes.Add(uint64(DenseSize(params)))
	return dst, nil
}

// refFor resolves the reference a flagDelta payload of the given epoch was
// coded against, or an error when the stream's state cannot decode it
// (unknown stream, stale or future epoch — a dropped-keyframe symptom in a
// real deployment; here it means the caller broke the round ordering).
func (rs *refState) refBuf(epoch uint32) (int, error) {
	if rs == nil {
		return 0, fmt.Errorf("wire: no reference state for delta payload")
	}
	if epoch == 0 {
		return 0, fmt.Errorf("wire: delta payload at epoch 0")
	}
	want := epoch - 1
	b := int(want % 2)
	if !rs.have[b] || rs.epochAt[b] != want {
		return 0, fmt.Errorf("wire: reference epoch %d unavailable (stale or out-of-order payload at epoch %d)", want, epoch)
	}
	return b, nil
}

// segSpan is one decodable unit of a delta body: tensor ti's elements
// [lo,hi) with its token bytes.
type segSpan struct {
	ti     int
	lo, hi int
	tokens []byte
}

// deltaSpans flattens a delta body into per-segment spans after validating
// all headers and length tables.
func deltaSpans(body []byte, template []*tensor.Matrix) ([]segSpan, error) {
	nt, n, err := readUvarint(body)
	if err != nil {
		return nil, err
	}
	body = body[n:]
	if int(nt) != len(template) {
		return nil, fmt.Errorf("wire: payload has %d tensors, want %d", nt, len(template))
	}
	var spans []segSpan
	for i, tpl := range template {
		dt, rest, err := splitDeltaTensor(i, body, tpl)
		if err != nil {
			return nil, err
		}
		body = rest
		elems := tpl.Size()
		for s := range dt.offs {
			lo, hi := s*segElems, min((s+1)*segElems, elems)
			spans = append(spans, segSpan{ti: i, lo: lo, hi: hi, tokens: dt.raw[dt.offs[s] : dt.offs[s]+dt.lens[s]]})
		}
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after last tensor", len(body))
	}
	return spans, nil
}

// denseSpans flattens a dense body into per-tensor raw value spans.
func denseSpans(body []byte, template []*tensor.Matrix) ([][]byte, error) {
	nt, n, err := readUvarint(body)
	if err != nil {
		return nil, err
	}
	body = body[n:]
	if int(nt) != len(template) {
		return nil, fmt.Errorf("wire: payload has %d tensors, want %d", nt, len(template))
	}
	vals := make([][]byte, len(template))
	for i, tpl := range template {
		v, rest, err := splitDenseTensor(i, body, tpl)
		if err != nil {
			return nil, err
		}
		vals[i], body = v, rest
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after last tensor", len(body))
	}
	return vals, nil
}

// topKSpans parses a top-k body into per-tensor corrections.
func topKSpans(body []byte, template []*tensor.Matrix) ([]topKTensor, error) {
	nt, n, err := readUvarint(body)
	if err != nil {
		return nil, err
	}
	body = body[n:]
	if int(nt) != len(template) {
		return nil, fmt.Errorf("wire: payload has %d tensors, want %d", nt, len(template))
	}
	tks := make([]topKTensor, len(template))
	for i, tpl := range template {
		tk, rest, err := splitTopKTensor(i, body, tpl)
		if err != nil {
			return nil, err
		}
		tks[i], body = tk, rest
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after last tensor", len(body))
	}
	return tks, nil
}

// errOnce collects the first error from parallel workers.
type errOnce struct {
	mu  sync.Mutex
	err error
}

func (e *errOnce) set(err error) {
	if err == nil {
		return
	}
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
}

// Validate checks a payload end to end — envelope, checksum, structure
// against the template shapes, reference availability, and value health —
// without materializing the parameters. It returns ErrDiverged when the
// decoded values contain NaN/Inf (the sender's model diverged; the payload
// itself is intact) and a descriptive error for any form of corruption.
// A nil return guarantees FoldInto will succeed on the same payload.
func (x *Exchange) Validate(sender int, kind string, template []*tensor.Matrix, payload []byte) error {
	x.payloadsDecoded.Add(1)
	h, err := parseHeader(payload)
	if err != nil {
		return err
	}
	switch h.codec {
	case CodecDense:
		vals, err := denseSpans(h.body, template)
		if err != nil {
			return err
		}
		for _, raw := range vals {
			for o := 0; o+8 <= len(raw); o += 8 {
				if isNaNInfBits(binary.LittleEndian.Uint64(raw[o:])) {
					return ErrDiverged
				}
			}
		}
		return nil

	case CodecDelta:
		rs := x.lookup(sender, kind)
		b, err := rs.refBuf(h.epoch)
		if err != nil {
			return err
		}
		if !shapesAgree(keyBufSizes(rs.keys[b]), template) {
			return fmt.Errorf("wire: reference shapes do not match template")
		}
		spans, err := deltaSpans(h.body, template)
		if err != nil {
			return err
		}
		var first errOnce
		var diverged atomic.Bool
		sched.Default().ParallelFor(len(spans), 1, func(lo, hi int) {
			for s := lo; s < hi; s++ {
				sp := spans[s]
				ref := rs.keys[b][sp.ti][sp.lo:sp.hi]
				nan := false
				err := walkDeltaSeg(sp.tokens, ref, sp.hi-sp.lo, func(j int, key uint64) {
					if isNaNInfBits(bitsOf(key)) {
						nan = true
					}
				})
				first.set(err)
				if nan {
					diverged.Store(true)
				}
			}
		})
		if first.err != nil {
			return first.err
		}
		if diverged.Load() {
			return ErrDiverged
		}
		return nil

	default: // CodecTopK
		rs := x.lookup(sender, kind)
		b, err := rs.refBuf(h.epoch)
		if err != nil {
			return err
		}
		if !shapesAgree(valBufSizes(rs.vals[b]), template) {
			return fmt.Errorf("wire: reference shapes do not match template")
		}
		tks, err := topKSpans(h.body, template)
		if err != nil {
			return err
		}
		for ti, tk := range tks {
			ref := rs.vals[b][ti]
			for e, idx := range tk.idx {
				v := ref[idx] + tk.scale*float64(tk.q[e])
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return ErrDiverged
				}
			}
		}
		return nil
	}
}

// FoldInto accumulates weight × the payload's decoded values into staged,
// segment-parallel: staged[i].Data[j] += v·weight, element for element the
// same arithmetic the dense aggregation path applies, so a fixed fold order
// reproduces its bits exactly. comp, when non-nil (shaped like staged),
// enables Kahan-compensated accumulation instead — more accurate for large
// fleets, but not bit-identical to the plain fold.
//
// The caller must Validate the payload first; FoldInto repeats only the
// structural checks it needs to walk safely.
func (x *Exchange) FoldInto(staged []*tensor.Matrix, comp [][]float64, sender int, kind string, payload []byte, weight float64) error {
	h, err := parseHeader(payload)
	if err != nil {
		return err
	}
	switch h.codec {
	case CodecDense:
		vals, err := denseSpans(h.body, staged)
		if err != nil {
			return err
		}
		for i, raw := range vals {
			dst := staged[i].Data
			var cmp []float64
			if comp != nil {
				cmp = comp[i]
			}
			sched.Default().ParallelFor(len(dst), segElems, func(lo, hi int) {
				foldDenseRange(dst, cmp, raw, lo, hi, weight)
			})
		}
		return nil

	case CodecDelta:
		rs := x.lookup(sender, kind)
		b, err := rs.refBuf(h.epoch)
		if err != nil {
			return err
		}
		if !shapesAgree(keyBufSizes(rs.keys[b]), staged) {
			return fmt.Errorf("wire: reference shapes do not match template")
		}
		spans, err := deltaSpans(h.body, staged)
		if err != nil {
			return err
		}
		var first errOnce
		sched.Default().ParallelFor(len(spans), 1, func(lo, hi int) {
			for s := lo; s < hi; s++ {
				sp := spans[s]
				ref := rs.keys[b][sp.ti][sp.lo:sp.hi]
				dst := staged[sp.ti].Data[sp.lo:sp.hi]
				var cmp []float64
				if comp != nil {
					cmp = comp[sp.ti][sp.lo:sp.hi]
				}
				first.set(foldDeltaSeg(sp.tokens, ref, dst, cmp, weight))
			}
		})
		return first.err

	default: // CodecTopK
		rs := x.lookup(sender, kind)
		b, err := rs.refBuf(h.epoch)
		if err != nil {
			return err
		}
		if !shapesAgree(valBufSizes(rs.vals[b]), staged) {
			return fmt.Errorf("wire: reference shapes do not match template")
		}
		tks, err := topKSpans(h.body, staged)
		if err != nil {
			return err
		}
		for ti, tk := range tks {
			ref := rs.vals[b][ti]
			dst := staged[ti].Data
			var cmp []float64
			if comp != nil {
				cmp = comp[ti]
			}
			sched.Default().ParallelFor(len(dst), segElems, func(lo, hi int) {
				for j := lo; j < hi; j++ {
					foldOne(dst, cmp, j, ref[j], weight)
				}
			})
			for e, idx := range tk.idx {
				foldOne(dst, cmp, idx, tk.scale*float64(tk.q[e]), weight)
			}
		}
		return nil
	}
}

// foldOne applies dst[j] += v·weight, Kahan-compensated when cmp != nil.
func foldOne(dst, cmp []float64, j int, v, weight float64) {
	if cmp == nil {
		dst[j] += v * weight
		return
	}
	y := v*weight - cmp[j]
	t := dst[j] + y
	cmp[j] = (t - dst[j]) - y
	dst[j] = t
}

// foldDenseRange folds raw little-endian float64s [lo,hi) into dst.
func foldDenseRange(dst, cmp []float64, raw []byte, lo, hi int, weight float64) {
	for j := lo; j < hi; j++ {
		v := math.Float64frombits(binary.LittleEndian.Uint64(raw[8*j:]))
		foldOne(dst, cmp, j, v, weight)
	}
}

// foldDeltaSeg decodes one segment's keys and folds the values into dst
// (both sliced to the segment).
func foldDeltaSeg(tokens []byte, ref []uint64, dst, cmp []float64, weight float64) error {
	return walkDeltaSeg(tokens, ref, len(dst), func(j int, key uint64) {
		foldOne(dst, cmp, j, math.Float64frombits(bitsOf(key)), weight)
	})
}

// FoldLocal folds an in-memory parameter set (an aggregator's own snapshot,
// which never crosses the wire) with the same arithmetic FoldInto applies
// to received payloads, so the streaming mean's fold order is uniform.
func FoldLocal(staged []*tensor.Matrix, comp [][]float64, src []*tensor.Matrix, weight float64) {
	for i, p := range src {
		dst := staged[i].Data
		var cmp []float64
		if comp != nil {
			cmp = comp[i]
		}
		sched.Default().ParallelFor(len(dst), segElems, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				foldOne(dst, cmp, j, p.Data[j], weight)
			}
		})
	}
}

// DecodeInto fully decodes a payload into dst, whose shapes are the
// template. Bit patterns are reproduced exactly for dense and delta
// payloads (including NaN payloads — DecodeInto does not reject them; that
// is Validate's job). Used by tests and by star-topology paths that need
// materialized parameters rather than a streaming fold.
func (x *Exchange) DecodeInto(dst []*tensor.Matrix, sender int, kind string, payload []byte) error {
	h, err := parseHeader(payload)
	if err != nil {
		return err
	}
	switch h.codec {
	case CodecDense:
		vals, err := denseSpans(h.body, dst)
		if err != nil {
			return err
		}
		for i, raw := range vals {
			d := dst[i].Data
			for j := range d {
				d[j] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*j:]))
			}
		}
		return nil

	case CodecDelta:
		rs := x.lookup(sender, kind)
		b, err := rs.refBuf(h.epoch)
		if err != nil {
			return err
		}
		if !shapesAgree(keyBufSizes(rs.keys[b]), dst) {
			return fmt.Errorf("wire: reference shapes do not match template")
		}
		spans, err := deltaSpans(h.body, dst)
		if err != nil {
			return err
		}
		var first errOnce
		sched.Default().ParallelFor(len(spans), 1, func(lo, hi int) {
			for s := lo; s < hi; s++ {
				sp := spans[s]
				ref := rs.keys[b][sp.ti][sp.lo:sp.hi]
				out := dst[sp.ti].Data[sp.lo:sp.hi]
				first.set(walkDeltaSeg(sp.tokens, ref, len(out), func(j int, key uint64) {
					out[j] = math.Float64frombits(bitsOf(key))
				}))
			}
		})
		return first.err

	default: // CodecTopK
		rs := x.lookup(sender, kind)
		b, err := rs.refBuf(h.epoch)
		if err != nil {
			return err
		}
		if !shapesAgree(valBufSizes(rs.vals[b]), dst) {
			return fmt.Errorf("wire: reference shapes do not match template")
		}
		tks, err := topKSpans(h.body, dst)
		if err != nil {
			return err
		}
		for ti, tk := range tks {
			copy(dst[ti].Data, rs.vals[b][ti])
			for e, idx := range tk.idx {
				dst[ti].Data[idx] += tk.scale * float64(tk.q[e])
			}
		}
		return nil
	}
}
