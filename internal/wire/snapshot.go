package wire

import (
	"fmt"
	"sort"
)

// StreamState is one broadcast stream's serializable reference: the latest
// epoch's reconstruction buffers. Only the current buffer is persisted —
// the next encode of epoch e+1 codes against buffer e%2, and every decoder
// of e+1 resolves its reference to the same buffer, so the stale parity
// slot never matters across a checkpoint boundary (checkpoints are taken
// between rounds, when no round is in flight).
type StreamState struct {
	Sender int
	Kind   string
	Epoch  uint32
	// Keys carries the Delta tier's bit-key reference; Vals the TopK
	// tier's value reference (doubling as the error-feedback carry).
	// Only the tier the exchange runs allocates.
	Keys [][]uint64
	Vals [][]float64
}

// ExchangeState is an Exchange's serializable codec state: every stream's
// current reference plus the cumulative codec counters.
type ExchangeState struct {
	Streams []StreamState
	Stats   Stats
}

// StateSnapshot captures the exchange's reference store as deep copies,
// streams sorted by (sender, kind) for deterministic serialization. The
// caller must not overlap it with in-flight encodes or decodes (the round
// machinery's join-before-begin contract provides that ordering).
func (x *Exchange) StateSnapshot() ExchangeState {
	x.mu.RLock()
	defer x.mu.RUnlock()
	st := ExchangeState{Stats: x.Stats()}
	for id, rs := range x.refs {
		cur := int(rs.lastEpoch % 2)
		if !rs.have[cur] || rs.epochAt[cur] != rs.lastEpoch {
			// A stream that never completed an encode has nothing to
			// reference; skip it (the next encode keyframes anyway).
			continue
		}
		s := StreamState{Sender: id.sender, Kind: id.kind, Epoch: rs.lastEpoch}
		for _, k := range rs.keys[cur] {
			s.Keys = append(s.Keys, append([]uint64(nil), k...))
		}
		for _, v := range rs.vals[cur] {
			s.Vals = append(s.Vals, append([]float64(nil), v...))
		}
		st.Streams = append(st.Streams, s)
	}
	sort.Slice(st.Streams, func(i, j int) bool {
		a, b := st.Streams[i], st.Streams[j]
		if a.Sender != b.Sender {
			return a.Sender < b.Sender
		}
		return a.Kind < b.Kind
	})
	return st
}

// RestoreState replaces the exchange's reference store with a snapshot's
// streams (deep copied in) and its counters. After a restore, the next
// encode on a stream produces the exact payload bytes the original
// exchange would have produced, and decoders resolve references
// identically — the property the snapshot round-trip tests pin.
func (x *Exchange) RestoreState(st ExchangeState) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	refs := make(map[refID]*refState, len(st.Streams))
	for _, s := range st.Streams {
		id := refID{s.Sender, s.Kind}
		if _, dup := refs[id]; dup {
			return fmt.Errorf("wire: duplicate snapshot stream (sender %d, kind %q)", s.Sender, s.Kind)
		}
		rs := &refState{lastEpoch: s.Epoch}
		cur := int(s.Epoch % 2)
		rs.have[cur] = true
		rs.epochAt[cur] = s.Epoch
		for _, k := range s.Keys {
			rs.keys[cur] = append(rs.keys[cur], append([]uint64(nil), k...))
		}
		for _, v := range s.Vals {
			rs.vals[cur] = append(rs.vals[cur], append([]float64(nil), v...))
		}
		refs[id] = rs
	}
	x.refs = refs
	x.payloadsEncoded.Store(st.Stats.PayloadsEncoded)
	x.payloadsDecoded.Store(st.Stats.PayloadsDecoded)
	x.bytesEncoded.Store(st.Stats.BytesEncoded)
	x.denseBytes.Store(st.Stats.DenseBytes)
	return nil
}
