package wire

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/tensor"
)

// randParams builds a deterministic parameter set with a mix of magnitudes,
// signs, zeros, and subnormals — the bit patterns a delta codec must carry.
func randParams(rng *rand.Rand, shapes [][2]int) []*tensor.Matrix {
	var params []*tensor.Matrix
	for _, sh := range shapes {
		m := tensor.New(sh[0], sh[1])
		for i := range m.Data {
			switch rng.Intn(8) {
			case 0:
				m.Data[i] = 0
			case 1:
				m.Data[i] = math.Copysign(0, -1)
			case 2:
				m.Data[i] = rng.NormFloat64() * 1e-310 // subnormal range
			default:
				m.Data[i] = rng.NormFloat64()
			}
		}
		params = append(params, m)
	}
	return params
}

// perturb nudges a fraction of elements the way SGD steps do, leaving the
// rest untouched (the zero-delta runs the codec exploits).
func perturb(rng *rand.Rand, params []*tensor.Matrix, frac float64) {
	for _, p := range params {
		for i := range p.Data {
			if rng.Float64() < frac {
				p.Data[i] += rng.NormFloat64() * 1e-3
			}
		}
	}
}

func cloneSet(params []*tensor.Matrix) []*tensor.Matrix {
	out := make([]*tensor.Matrix, len(params))
	for i, p := range params {
		out[i] = p.Clone()
	}
	return out
}

func likeSet(params []*tensor.Matrix) []*tensor.Matrix {
	out := make([]*tensor.Matrix, len(params))
	for i, p := range params {
		out[i] = tensor.New(p.Rows, p.Cols)
	}
	return out
}

func bitsEqual(t *testing.T, got, want []*tensor.Matrix, label string) {
	t.Helper()
	for i := range want {
		for j := range want[i].Data {
			gb, wb := math.Float64bits(got[i].Data[j]), math.Float64bits(want[i].Data[j])
			if gb != wb {
				t.Fatalf("%s: tensor %d elem %d bits %016x, want %016x", label, i, j, gb, wb)
			}
		}
	}
}

var testShapes = [][2]int{{6, 130}, {1, 130}, {130, 4}, {1, 4}, {0, 7}, {3, 0}}

// TestDeltaRoundTripBitExact drives a multi-epoch Delta stream, including a
// NaN/Inf epoch, and checks DecodeInto reproduces every bit.
func TestDeltaRoundTripBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := NewExchange(Options{Level: Delta})
	params := randParams(rng, testShapes)
	var payload []byte
	for epoch := 0; epoch < 6; epoch++ {
		if epoch == 3 {
			// Diverged epoch: delta must carry NaN and ±Inf bits too.
			params[0].Data[5] = math.NaN()
			params[0].Data[6] = math.Inf(1)
			params[0].Data[7] = math.Inf(-1)
		}
		var err error
		payload, err = x.EncodeInto(payload[:0], 1, "fc", params)
		if err != nil {
			t.Fatalf("encode epoch %d: %v", epoch, err)
		}
		dst := likeSet(params)
		if err := x.DecodeInto(dst, 1, "fc", payload); err != nil {
			t.Fatalf("decode epoch %d: %v", epoch, err)
		}
		bitsEqual(t, dst, params, "epoch")
		err = x.Validate(1, "fc", dst, payload)
		if epoch == 3 {
			if !errors.Is(err, ErrDiverged) {
				t.Fatalf("epoch %d: want ErrDiverged, got %v", epoch, err)
			}
			params[0].Data[5], params[0].Data[6], params[0].Data[7] = 0, 0, 0
		} else if err != nil {
			t.Fatalf("validate epoch %d: %v", epoch, err)
		}
		perturb(rng, params, 0.3)
	}
}

// TestDenseLevelRoundTrip checks the uncompressed tier end to end.
func TestDenseLevelRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := NewExchange(Options{Level: Dense})
	params := randParams(rng, testShapes)
	for epoch := 0; epoch < 3; epoch++ {
		payload, err := x.EncodeInto(nil, 0, "drl", params)
		if err != nil {
			t.Fatal(err)
		}
		if err := x.Validate(0, "drl", params, payload); err != nil {
			t.Fatal(err)
		}
		dst := likeSet(params)
		if err := x.DecodeInto(dst, 0, "drl", payload); err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, dst, params, "dense")
		perturb(rng, params, 0.5)
	}
}

// TestZeroDeltaCompression re-broadcasts unchanged parameters and checks
// the payload collapses to the closed-form ZeroDeltaSize, far below dense.
func TestZeroDeltaCompression(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := NewExchange(Options{Level: Delta})
	params := randParams(rng, [][2]int{{64, 100}, {1, 100}})
	if _, err := x.EncodeInto(nil, 0, "fc", params); err != nil {
		t.Fatal(err)
	}
	payload, err := x.EncodeInto(nil, 0, "fc", params)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(payload), ZeroDeltaSize(params); got != want {
		t.Fatalf("unchanged re-broadcast is %d bytes, ZeroDeltaSize says %d", got, want)
	}
	if dense := DenseSize(params); len(payload)*100 > dense {
		t.Fatalf("zero-delta payload %d bytes not ≪ dense %d", len(payload), dense)
	}
	if got, want := RefireSize(Options{Level: Delta}.withDefaults(), params), len(payload); got != want {
		t.Fatalf("RefireSize %d != observed %d", got, want)
	}
	if got, want := RefireSize(Options{Level: Dense}, params), DenseSize(params); got != want {
		t.Fatalf("dense RefireSize %d != DenseSize %d", got, want)
	}
}

// TestEmptyParamList checks the degenerate zero-tensor broadcast.
func TestEmptyParamList(t *testing.T) {
	x := NewExchange(Options{Level: Delta})
	for epoch := 0; epoch < 2; epoch++ {
		payload, err := x.EncodeInto(nil, 0, "fc", nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := x.Validate(0, "fc", nil, payload); err != nil {
			t.Fatal(err)
		}
		if err := x.DecodeInto(nil, 0, "fc", payload); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStreamingFoldMatchesDenseMean reproduces the dense aggregation
// arithmetic — d = 0; d += set_s[j]·inv for each set in order — through
// FoldLocal + FoldInto over encoded payloads, and demands bit equality.
func TestStreamingFoldMatchesDenseMean(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := NewExchange(Options{Level: Delta})
	const senders = 5
	sets := make([][]*tensor.Matrix, senders)
	payloads := make([][]byte, senders)
	for s := 0; s < senders; s++ {
		sets[s] = randParams(rng, [][2]int{{9, 41}, {1, 41}})
	}
	// Two epochs: keyframe then delta, folding the second.
	for epoch := 0; epoch < 2; epoch++ {
		for s := 0; s < senders; s++ {
			var err error
			payloads[s], err = x.EncodeInto(payloads[s][:0], s, "fc", sets[s])
			if err != nil {
				t.Fatal(err)
			}
			if epoch == 0 {
				perturb(rng, sets[s], 0.4)
			}
		}
	}

	// own snapshot (sender 0's set) first, then payloads 1..N in order.
	inv := 1.0 / float64(senders)
	want := likeSet(sets[0])
	for i := range want {
		for j := range want[i].Data {
			acc := 0.0
			for s := 0; s < senders; s++ {
				acc += sets[s][i].Data[j] * inv
			}
			want[i].Data[j] = acc
		}
	}

	staged := likeSet(sets[0])
	FoldLocal(staged, nil, sets[0], inv)
	for s := 1; s < senders; s++ {
		if err := x.FoldInto(staged, nil, s, "fc", payloads[s], inv); err != nil {
			t.Fatal(err)
		}
	}
	bitsEqual(t, staged, want, "streaming fold")

	// A second identical fold must be deterministic despite ParallelFor.
	again := likeSet(sets[0])
	FoldLocal(again, nil, sets[0], inv)
	for s := 1; s < senders; s++ {
		if err := x.FoldInto(again, nil, s, "fc", payloads[s], inv); err != nil {
			t.Fatal(err)
		}
	}
	bitsEqual(t, again, staged, "fold determinism")
}

// TestKahanFoldAccuracy checks the compensated fold beats the plain fold
// when many small addends would individually round away against a large
// running sum — the shape a wide federation mean takes.
func TestKahanFoldAccuracy(t *testing.T) {
	one := []*tensor.Matrix{tensor.New(1, 1)}
	plain, kahan := likeSet(one), likeSet(one)
	comp := [][]float64{make([]float64, 1)}
	first := []*tensor.Matrix{tensor.NewFromSlice(1, 1, []float64{1})}
	FoldLocal(plain, nil, first, 1)
	FoldLocal(kahan, comp, first, 1)
	small := []*tensor.Matrix{tensor.NewFromSlice(1, 1, []float64{1e-16})}
	for i := 0; i < 1000; i++ {
		FoldLocal(plain, nil, small, 1)
		FoldLocal(kahan, comp, small, 1)
	}
	exact := 1 + 1000e-16
	plainErr := math.Abs(plain[0].Data[0] - exact)
	kahanErr := math.Abs(kahan[0].Data[0] - exact)
	if plainErr == 0 {
		t.Fatal("test lost its cancellation: plain fold is exact")
	}
	if kahanErr >= plainErr {
		t.Fatalf("kahan err %g not below plain err %g", kahanErr, plainErr)
	}
}

// TestTopKErrorFeedback drives repeated broadcasts toward a fixed target
// and checks (a) payloads shrink well below dense, (b) the receiver-side
// reconstruction converges on the target thanks to the residual carry.
func TestTopKErrorFeedback(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := NewExchange(Options{Level: TopK, TopKFrac: 0.05})
	target := randParams(rng, [][2]int{{20, 60}})
	params := likeSet(target) // keyframe at zero, far from target
	var payload []byte
	dst := likeSet(target)
	for epoch := 0; epoch < 40; epoch++ {
		if epoch > 0 {
			copySet(params, target)
		}
		var err error
		payload, err = x.EncodeInto(payload[:0], 0, "fc", params)
		if err != nil {
			t.Fatal(err)
		}
		if epoch > 0 && len(payload)*4 > DenseSize(params) {
			t.Fatalf("epoch %d: top-k payload %d bytes, want < dense/4 = %d", epoch, len(payload), DenseSize(params)/4)
		}
		if err := x.Validate(0, "fc", dst, payload); err != nil {
			t.Fatal(err)
		}
		if err := x.DecodeInto(dst, 0, "fc", payload); err != nil {
			t.Fatal(err)
		}
	}
	worst := 0.0
	for i := range target {
		for j := range target[i].Data {
			if d := math.Abs(dst[i].Data[j] - target[i].Data[j]); d > worst {
				worst = d
			}
		}
	}
	if worst > 1e-3 {
		t.Fatalf("after 40 rounds of 5%% top-k, worst reconstruction error %g", worst)
	}
}

// TestTopKNaNFallsBackDense checks a diverged payload under the lossy tier
// ships as a dense keyframe that Validate then rejects as diverged.
func TestTopKNaNFallsBackDense(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := NewExchange(Options{Level: TopK})
	params := randParams(rng, [][2]int{{5, 30}})
	if _, err := x.EncodeInto(nil, 0, "fc", params); err != nil {
		t.Fatal(err)
	}
	params[0].Data[3] = math.NaN()
	payload, err := x.EncodeInto(nil, 0, "fc", params)
	if err != nil {
		t.Fatal(err)
	}
	if Codec(payload[4]) != CodecDense {
		t.Fatalf("NaN payload shipped as codec %d, want dense fallback", payload[4])
	}
	if err := x.Validate(0, "fc", params, payload); !errors.Is(err, ErrDiverged) {
		t.Fatalf("want ErrDiverged, got %v", err)
	}
	// The stream must keep working after the divergence.
	params[0].Data[3] = 0.5
	if _, err := x.EncodeInto(nil, 0, "fc", params); err != nil {
		t.Fatal(err)
	}
}

func copySet(dst, src []*tensor.Matrix) {
	for i := range src {
		copy(dst[i].Data, src[i].Data)
	}
}

// TestCorruptionDetected flips every byte position in turn and checks the
// payload is always rejected with an error, never accepted or panicking.
func TestCorruptionDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := NewExchange(Options{Level: Delta})
	params := randParams(rng, [][2]int{{3, 37}})
	if _, err := x.EncodeInto(nil, 0, "fc", params); err != nil {
		t.Fatal(err)
	}
	perturb(rng, params, 0.3)
	payload, err := x.EncodeInto(nil, 0, "fc", params)
	if err != nil {
		t.Fatal(err)
	}
	bad := make([]byte, len(payload))
	for pos := 0; pos < len(payload); pos++ {
		copy(bad, payload)
		bad[pos] ^= 1 << uint(pos%8)
		if err := x.Validate(0, "fc", params, bad); err == nil {
			t.Fatalf("flipped bit at byte %d accepted", pos)
		}
	}
	// Truncations at every length must error, never panic.
	for n := 0; n < len(payload); n++ {
		if err := x.Validate(0, "fc", params, payload[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

// TestStaleEpochRejected decodes a payload after its reference window has
// moved on and expects a loud error.
func TestStaleEpochRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	x := NewExchange(Options{Level: Delta})
	params := randParams(rng, [][2]int{{4, 25}})
	if _, err := x.EncodeInto(nil, 0, "fc", params); err != nil {
		t.Fatal(err)
	}
	perturb(rng, params, 0.5)
	old, err := x.EncodeInto(nil, 0, "fc", params) // epoch 1, ref = epoch 0
	if err != nil {
		t.Fatal(err)
	}
	old = append([]byte(nil), old...)
	perturb(rng, params, 0.5)
	if _, err := x.EncodeInto(nil, 0, "fc", params); err != nil { // epoch 2 overwrites buffer 0
		t.Fatal(err)
	}
	err = x.Validate(0, "fc", params, old)
	if err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("stale payload: got %v, want stale-reference error", err)
	}
	// Unknown stream: no reference state at all.
	if err := x.Validate(9, "fc", params, old); err == nil {
		t.Fatal("payload from unknown stream accepted")
	}
}

// TestShapeMismatchRejected decodes against a template of different shapes.
func TestShapeMismatchRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	x := NewExchange(Options{Level: Delta})
	params := randParams(rng, [][2]int{{4, 25}})
	payload, err := x.EncodeInto(nil, 0, "fc", params)
	if err != nil {
		t.Fatal(err)
	}
	other := randParams(rng, [][2]int{{5, 25}})
	if err := x.Validate(0, "fc", other, payload); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	if err := x.Validate(0, "fc", nil, payload); err == nil {
		t.Fatal("tensor count mismatch accepted")
	}
}

// TestShapeChangeRekeyframes checks an encoder whose parameter shapes
// change (a re-built model) falls back to a fresh keyframe stream.
func TestShapeChangeRekeyframes(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	x := NewExchange(Options{Level: Delta})
	a := randParams(rng, [][2]int{{4, 25}})
	if _, err := x.EncodeInto(nil, 0, "fc", a); err != nil {
		t.Fatal(err)
	}
	b := randParams(rng, [][2]int{{6, 11}})
	payload, err := x.EncodeInto(nil, 0, "fc", b)
	if err != nil {
		t.Fatal(err)
	}
	if Codec(payload[4]) != CodecDense {
		t.Fatalf("shape change did not re-keyframe (codec %d)", payload[4])
	}
	dst := likeSet(b)
	if err := x.DecodeInto(dst, 0, "fc", payload); err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, dst, b, "re-keyframe")
}

// TestStatsCounters checks the exchange's byte accounting.
func TestStatsCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	x := NewExchange(Options{Level: Delta})
	params := randParams(rng, [][2]int{{8, 16}})
	p1, err := x.EncodeInto(nil, 0, "fc", params)
	if err != nil {
		t.Fatal(err)
	}
	p1 = append([]byte(nil), p1...)
	p2, err := x.EncodeInto(nil, 0, "fc", params)
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Validate(0, "fc", params, p2); err != nil {
		t.Fatal(err)
	}
	st := x.Stats()
	if st.PayloadsEncoded != 2 || st.PayloadsDecoded != 1 {
		t.Fatalf("counters %+v", st)
	}
	if want := uint64(len(p1) + len(p2)); st.BytesEncoded != want {
		t.Fatalf("BytesEncoded %d, want %d", st.BytesEncoded, want)
	}
	if want := uint64(2 * DenseSize(params)); st.DenseBytes != want {
		t.Fatalf("DenseBytes %d, want %d", st.DenseBytes, want)
	}
	if st.Ratio() <= 1 {
		t.Fatalf("ratio %v not > 1 for an unchanged re-broadcast", st.Ratio())
	}
}

// TestOptionsValidate covers the config guard rails.
func TestOptionsValidate(t *testing.T) {
	if err := (Options{Level: Delta}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Options{Level: Level(9)}).Validate(); err == nil {
		t.Fatal("bad level accepted")
	}
	if err := (Options{TopKFrac: 1.5}).Validate(); err == nil {
		t.Fatal("bad TopKFrac accepted")
	}
	for l, want := range map[Level]string{Dense: "dense", Delta: "delta", TopK: "topk"} {
		if l.String() != want {
			t.Fatalf("Level(%d).String() = %q", l, l.String())
		}
	}
}

// TestMonotoneKeyMapping spot-checks keyOf/bitsOf as an order-preserving
// bijection over tricky boundaries.
func TestMonotoneKeyMapping(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -1, -5e-324, math.Copysign(0, -1), 0, 5e-324, 1, math.Nextafter(1, 2), 2, 1e300, math.Inf(1)}
	for i, v := range vals {
		b := math.Float64bits(v)
		if got := bitsOf(keyOf(b)); got != b {
			t.Fatalf("round trip of %v: %016x -> %016x", v, b, got)
		}
		if i > 0 {
			prev := keyOf(math.Float64bits(vals[i-1]))
			if keyOf(b) <= prev {
				t.Fatalf("key order broken between %v and %v", vals[i-1], v)
			}
		}
	}
	for _, d := range []int64{0, 1, -1, 63, -64, math.MaxInt64, math.MinInt64} {
		if got := unzigzag(zigzag(d)); got != d {
			t.Fatalf("zigzag round trip of %d -> %d", d, got)
		}
	}
}
