// Package benchmeta stamps benchmark artifacts with a shared schema and
// run-metadata header, so every BENCH_*.json records which schema revision,
// toolchain, host shape, and commit produced it. Without the stamp,
// artifacts from different machines or commits diff as if the code
// regressed when only the environment changed.
package benchmeta

import (
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"time"
)

// Meta is the header common to every benchmark artifact.
type Meta struct {
	// Schema names the artifact kind ("hotpath", "throughput", "comms");
	// SchemaVersion increments when that artifact's layout changes shape.
	Schema        string `json:"schema"`
	SchemaVersion int    `json:"schema_version"`

	GoVersion  string `json:"go_version"`
	Gomaxprocs int    `json:"gomaxprocs"`
	// NumCPU is the host's logical core count; on single-core hosts a
	// GOMAXPROCS sweep measures scheduling overhead, not parallel speedup.
	NumCPU int    `json:"num_cpu"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	// Commit is the producing commit (short hash), "unknown" when neither
	// build info nor a git checkout can supply one.
	Commit     string `json:"commit"`
	WrittenUTC string `json:"written_utc"`
}

// Collect builds the header for one artifact schema at version v.
func Collect(schema string, v int) Meta {
	return Meta{
		Schema:        schema,
		SchemaVersion: v,
		GoVersion:     runtime.Version(),
		Gomaxprocs:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		Commit:        commit(),
		WrittenUTC:    time.Now().UTC().Format(time.RFC3339),
	}
}

// commit resolves the producing commit: the binary's embedded VCS stamp
// when present (release builds), else the working tree's HEAD (the common
// `go run` path, which embeds no VCS info), else "unknown".
func commit() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 12 {
				return s.Value[:12]
			}
		}
	}
	if out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output(); err == nil {
		if h := strings.TrimSpace(string(out)); h != "" {
			return h
		}
	}
	return "unknown"
}
