// Package metrics provides the statistical helpers the experiment harness
// uses to turn raw simulation output into the series the paper plots:
// summary statistics, empirical CDFs (Fig 5), hour-of-day bucketing
// (Figs 6, 11), convergence detection (Fig 9), and wall-clock timing
// sections (Figs 13–14).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary holds basic distribution statistics.
type Summary struct {
	N               int
	Mean, Std       float64
	Min, Max        float64
	Median, P5, P95 float64
}

// Summarize computes a Summary of xs. It returns a zero Summary for empty
// input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		s.Mean += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean /= float64(len(xs))
	for _, x := range xs {
		d := x - s.Mean
		s.Std += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(s.Std / float64(len(xs)-1))
	} else {
		s.Std = 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.P5 = Quantile(sorted, 0.05)
	s.P95 = Quantile(sorted, 0.95)
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an ascending-sorted slice
// using linear interpolation. It panics on empty input or unsorted-looking
// q outside [0,1].
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("metrics: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("metrics: quantile %v outside [0,1]", q))
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo == len(sorted)-1 {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Rate returns hits/total as a fraction, or 0 when total is 0 — the guard
// every fabric-health ratio needs (a run with no traffic has no meaningful
// rate). The resilience reporting uses it for degraded-round and give-up
// fractions.
func Rate(hits, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// ByteFraction is Rate for int64 byte counters: part/total, 0 when total
// is 0. Used to express retry traffic as a share of all bytes moved.
func ByteFraction(part, total int64) float64 {
	if total == 0 {
		return 0
	}
	return float64(part) / float64(total)
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	// Xs are the ascending sample values; Ps[i] is P(X ≤ Xs[i]).
	Xs, Ps []float64
}

// NewCDF builds the empirical CDF of xs.
func NewCDF(xs []float64) CDF {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	ps := make([]float64, len(sorted))
	for i := range sorted {
		ps[i] = float64(i+1) / float64(len(sorted))
	}
	return CDF{Xs: sorted, Ps: ps}
}

// At returns P(X ≤ x).
func (c CDF) At(x float64) float64 {
	idx := sort.SearchFloat64s(c.Xs, x)
	// SearchFloat64s returns the first index with Xs[i] >= x; walk forward
	// over ties to include equal values.
	for idx < len(c.Xs) && c.Xs[idx] <= x {
		idx++
	}
	if idx == 0 {
		return 0
	}
	return c.Ps[idx-1]
}

// SampleAt evaluates the CDF on a fixed grid — the series the paper's
// Figure 5 plots (accuracy on the x-axis, cumulative probability on y).
func (c CDF) SampleAt(grid []float64) []float64 {
	out := make([]float64, len(grid))
	for i, x := range grid {
		out[i] = c.At(x)
	}
	return out
}

// HourBuckets accumulates per-minute values into 24 hour-of-day buckets.
type HourBuckets struct {
	Sum   [24]float64
	Count [24]int
}

// Add accumulates v at the given absolute minute (minute 0 = midnight of
// day 0; days wrap).
func (h *HourBuckets) Add(minute int, v float64) {
	hour := (minute / 60) % 24
	if hour < 0 {
		hour += 24
	}
	h.Sum[hour] += v
	h.Count[hour]++
}

// Means returns the per-hour averages (0 where a bucket is empty).
func (h *HourBuckets) Means() [24]float64 {
	var out [24]float64
	for i := range out {
		if h.Count[i] > 0 {
			out[i] = h.Sum[i] / float64(h.Count[i])
		}
	}
	return out
}

// ConvergenceDay returns the first index d such that series[d] has reached
// frac (e.g. 0.9) of the series' final plateau, where the plateau is the
// mean of the last `tail` entries. Returns len(series)-1 if never reached.
// This is the "time to achieve the best performance" measure of Fig 9.
func ConvergenceDay(series []float64, frac float64, tail int) int {
	if len(series) == 0 {
		return 0
	}
	if tail < 1 {
		tail = 1
	}
	if tail > len(series) {
		tail = len(series)
	}
	plateau := 0.0
	for _, v := range series[len(series)-tail:] {
		plateau += v
	}
	plateau /= float64(tail)
	threshold := frac * plateau
	for d, v := range series {
		if v >= threshold {
			return d
		}
	}
	return len(series) - 1
}

// Timer measures named wall-clock sections; the time-overhead figures sum
// train and test sections separately.
type Timer struct {
	sections map[string]time.Duration
	starts   map[string]time.Time
}

// NewTimer returns an empty timer.
func NewTimer() *Timer {
	return &Timer{sections: map[string]time.Duration{}, starts: map[string]time.Time{}}
}

// Start begins (or resumes) a named section.
func (t *Timer) Start(name string) {
	t.starts[name] = time.Now()
}

// Stop ends a named section, accumulating its elapsed time. Stopping a
// section that was never started panics.
func (t *Timer) Stop(name string) {
	start, ok := t.starts[name]
	if !ok {
		panic(fmt.Sprintf("metrics: Stop(%q) without Start", name))
	}
	delete(t.starts, name)
	t.sections[name] += time.Since(start)
}

// Add accumulates an externally measured duration (e.g. simulated
// communication time) into a section.
func (t *Timer) Add(name string, d time.Duration) {
	t.sections[name] += d
}

// Get returns a section's accumulated time.
func (t *Timer) Get(name string) time.Duration { return t.sections[name] }
