package metrics

import (
	"math"
	"testing"
)

// These tests pin the package's behavior on degenerate input — empty slices
// and NaN samples. The contracts asserted here are the ones the harness
// already relies on (a run with no samples summarizes to zeros, an empty CDF
// is identically 0); the NaN cases document propagation so a future "clean
// the input" change shows up as an explicit test edit, not a silent shift.

func TestSummarizeNaN(t *testing.T) {
	s := Summarize([]float64{1, math.NaN(), 3})
	if s.N != 3 {
		t.Fatalf("N = %d, want 3", s.N)
	}
	// NaN poisons the accumulated moments — Summarize does not filter.
	if !math.IsNaN(s.Mean) || !math.IsNaN(s.Std) {
		t.Fatalf("NaN input should propagate: mean=%v std=%v", s.Mean, s.Std)
	}
	// Min/Max track via < and > comparisons, which are false against NaN, so
	// a later NaN leaves the finite extremes in place.
	if s.Min != 1 || s.Max != 3 {
		t.Fatalf("finite extremes disturbed by NaN: min=%v max=%v", s.Min, s.Max)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if len(c.Xs) != 0 || len(c.Ps) != 0 {
		t.Fatalf("empty CDF holds data: %+v", c)
	}
	for _, x := range []float64{-1, 0, 1e9} {
		if got := c.At(x); got != 0 {
			t.Fatalf("empty CDF At(%v) = %v, want 0", x, got)
		}
	}
	grid := c.SampleAt([]float64{0, 1, 2})
	for i, p := range grid {
		if p != 0 {
			t.Fatalf("empty CDF SampleAt[%d] = %v, want 0", i, p)
		}
	}
}

func TestCDFNaN(t *testing.T) {
	// sort.Float64s orders NaN before all other values, so a NaN sample
	// lands at the front and shifts every finite probability up by 1/n.
	c := NewCDF([]float64{2, math.NaN(), 1})
	if !math.IsNaN(c.Xs[0]) {
		t.Fatalf("NaN sample not sorted first: %v", c.Xs)
	}
	if got := c.At(1); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("At(1) with a NaN sample = %v, want 2/3", got)
	}
	// Querying at NaN finds no bucket boundary (every comparison is false)
	// and falls through to the full mass.
	if got := c.At(math.NaN()); got != 1 {
		t.Fatalf("At(NaN) = %v, want 1 (documented fall-through)", got)
	}
}

func TestHourBucketsNegativeMinutes(t *testing.T) {
	var h HourBuckets
	// Go integer division truncates toward zero: minute -30 is still "hour
	// 0", a full negative hour wraps to 23.
	h.Add(-30, 2)
	h.Add(-61, 8)
	if h.Count[0] != 1 || h.Sum[0] != 2 {
		t.Fatalf("minute -30 landed in %v", h.Count)
	}
	if h.Count[23] != 1 || h.Sum[23] != 8 {
		t.Fatalf("minute -61 landed in %v", h.Count)
	}
}

func TestConvergenceDayDegenerate(t *testing.T) {
	// tail larger than the series clamps to the whole series.
	if got := ConvergenceDay([]float64{1, 2}, 0.5, 99); got != 0 {
		t.Fatalf("clamped tail: got day %d, want 0", got)
	}
	// tail < 1 clamps to 1 (plateau = last value).
	if got := ConvergenceDay([]float64{0, 10}, 0.9, 0); got != 1 {
		t.Fatalf("tail 0: got day %d, want 1", got)
	}
	// An all-NaN series never satisfies v >= threshold; the fallback is the
	// final index, matching the never-converged contract.
	nan := math.NaN()
	if got := ConvergenceDay([]float64{nan, nan, nan}, 0.9, 2); got != 2 {
		t.Fatalf("all-NaN series: got day %d, want 2", got)
	}
}
