package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestRateAndByteFraction(t *testing.T) {
	if got := Rate(3, 4); got != 0.75 {
		t.Fatalf("Rate(3,4) = %v", got)
	}
	if got := Rate(5, 0); got != 0 {
		t.Fatalf("Rate with zero total = %v, want 0", got)
	}
	if got := ByteFraction(250, 1000); got != 0.25 {
		t.Fatalf("ByteFraction(250,1000) = %v", got)
	}
	if got := ByteFraction(9, 0); got != 0 {
		t.Fatalf("ByteFraction with zero total = %v, want 0", got)
	}
	// A fraction of a non-empty whole stays in [0,1] when part ≤ total.
	f := func(part, total uint16) bool {
		p, tot := int64(part%(total|1)), int64(total|1)
		v := ByteFraction(p, tot)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("Summary wrong: %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("Std = %v", s.Std)
	}
	if (Summarize(nil) != Summary{}) {
		t.Fatal("empty Summarize should be zero")
	}
	one := Summarize([]float64{7})
	if one.Std != 0 || one.Mean != 7 {
		t.Fatalf("singleton summary: %+v", one)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if Quantile(sorted, 0) != 10 || Quantile(sorted, 1) != 40 {
		t.Fatal("extremes wrong")
	}
	if got := Quantile(sorted, 0.5); got != 25 {
		t.Fatalf("median = %v, want 25", got)
	}
	if got := Quantile([]float64{5}, 0.99); got != 5 {
		t.Fatalf("singleton quantile %v", got)
	}
	for _, bad := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad q accepted")
				}
			}()
			Quantile(sorted, bad)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("empty slice accepted")
			}
		}()
		Quantile(nil, 0.5)
	}()
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 2})
	if c.At(0.5) != 0 {
		t.Fatalf("At(0.5) = %v", c.At(0.5))
	}
	if got := c.At(2); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("At(2) = %v, want 0.75 (ties included)", got)
	}
	if c.At(3) != 1 || c.At(99) != 1 {
		t.Fatal("upper tail wrong")
	}
	grid := c.SampleAt([]float64{0, 1, 2, 3})
	want := []float64{0, 0.25, 0.75, 1}
	for i := range grid {
		if math.Abs(grid[i]-want[i]) > 1e-12 {
			t.Fatalf("SampleAt[%d] = %v, want %v", i, grid[i], want[i])
		}
	}
}

func TestPropCDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 20)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		c := NewCDF(xs)
		prev := -1.0
		for x := -3.0; x <= 3.0; x += 0.25 {
			p := c.At(x)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHourBuckets(t *testing.T) {
	var h HourBuckets
	h.Add(30, 2)      // hour 0
	h.Add(90, 4)      // hour 1
	h.Add(1440+30, 6) // hour 0 next day
	means := h.Means()
	if means[0] != 4 || means[1] != 4 {
		t.Fatalf("means = %v %v", means[0], means[1])
	}
	if means[5] != 0 {
		t.Fatal("empty bucket should be 0")
	}
}

func TestConvergenceDay(t *testing.T) {
	series := []float64{0.1, 0.3, 0.6, 0.85, 0.95, 1.0, 1.0, 1.0}
	if got := ConvergenceDay(series, 0.9, 3); got != 4 {
		t.Fatalf("ConvergenceDay = %d, want 4", got)
	}
	// Never reaching the threshold returns the last index.
	if got := ConvergenceDay([]float64{0.1, 0.2}, 0.9, 1); got != 1 {
		t.Fatalf("unreached ConvergenceDay = %d", got)
	}
	if ConvergenceDay(nil, 0.9, 3) != 0 {
		t.Fatal("empty series should return 0")
	}
}

func TestTimer(t *testing.T) {
	tm := NewTimer()
	tm.Start("train")
	time.Sleep(2 * time.Millisecond)
	tm.Stop("train")
	if tm.Get("train") < time.Millisecond {
		t.Fatalf("train = %v", tm.Get("train"))
	}
	tm.Add("comm", 5*time.Second)
	if tm.Get("comm") != 5*time.Second {
		t.Fatal("Add wrong")
	}
	if tm.Get("missing") != 0 {
		t.Fatal("missing section should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Stop without Start accepted")
		}
	}()
	tm.Stop("never")
}
