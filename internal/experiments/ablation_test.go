package experiments

import "testing"

func TestTopologyAblation(t *testing.T) {
	sc := Quick()
	sc.Days = 3
	sc.Homes = 5 // ring (2n msgs/round) only undercuts all-to-all (n(n-1)) for n > 3
	r, err := RunTopologyAblation(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Names) != 2 || r.Names[0] != "all-to-all" || r.Names[1] != "ring" {
		t.Fatalf("names %v", r.Names)
	}
	for i, a := range r.Accuracy {
		if a <= 0 || a > 1 {
			t.Fatalf("%s accuracy %v", r.Names[i], a)
		}
	}
	// Ring must move fewer messages per round schedule than all-to-all
	// (for >3 agents).
	if r.Messages[1] >= r.Messages[0] {
		t.Fatalf("ring messages %d should undercut all-to-all %d", r.Messages[1], r.Messages[0])
	}
	if len(r.Table().Rows) != 2 {
		t.Fatal("table rows wrong")
	}
}

func TestRunScaling(t *testing.T) {
	sc := Quick()
	r, err := RunScaling(sc, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Homes) != 2 || r.WallPerDay[0] <= 0 {
		t.Fatalf("scaling result wrong: %+v", r)
	}
	if len(r.Table().Rows) != 2 {
		t.Fatal("table rows wrong")
	}
}
