package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/fed"
	"repro/internal/fednet"
	"repro/internal/forecast"
	"repro/internal/nn"
	"repro/internal/pecan"
)

// TopologyAblation compares the paper's all-to-all broadcast against ring
// gossip for the DFL forecasting plane: final accuracy, messages, bytes,
// and simulated communication time at equal round schedules. Ring gossip
// halves neither — it trades per-round cost (O(n) vs O(n²) messages) for
// slower consensus; at residential scale the paper's choice is cheap
// enough, which is exactly what this table shows.
type TopologyAblation struct {
	Names    []string
	Accuracy []float64
	Messages []int
	MBytes   []float64
	CommSecs []float64
}

// RunTopologyAblation runs LSTM DFL twice at the given scale, once per
// topology, with β=12.
func RunTopologyAblation(sc Scale) (*TopologyAblation, error) {
	out := &TopologyAblation{}
	for _, topo := range []fednet.Topology{fednet.AllToAll, fednet.Ring} {
		acc, stats, err := runDFLWithTopology(sc, topo)
		if err != nil {
			return nil, err
		}
		out.Names = append(out.Names, topo.String())
		out.Accuracy = append(out.Accuracy, acc)
		out.Messages = append(out.Messages, stats.MessagesSent)
		out.MBytes = append(out.MBytes, float64(stats.BytesSent)/1e6)
		out.CommSecs = append(out.CommSecs, stats.SimulatedTime.Seconds())
	}
	return out, nil
}

// runDFLWithTopology is a compact DFL loop (train bouts + rounds) that
// supports both exchange primitives.
func runDFLWithTopology(sc Scale, topo fednet.Topology) (float64, fednet.Stats, error) {
	ds := pecan.Generate(pecan.Config{
		Seed: sc.Seed, Homes: sc.Homes, Days: sc.Days, DevicesPerHome: sc.DevicesPerHome,
	})
	net := fednet.New(sc.Homes, fednet.Config{Topology: topo, Seed: sc.Seed})
	fcs := make([]map[string]forecast.Forecaster, sc.Homes)
	for hi, home := range ds.Homes {
		fcs[hi] = map[string]forecast.Forecaster{}
		for _, tr := range home.Traces {
			cfg := forecast.DefaultConfig(tr.Device.OnKW)
			cfg.Window, cfg.Hidden, cfg.Horizon = sc.ForecastWindow, sc.ForecastHidden, 60
			cfg.Seed = sc.Seed + 7
			f, err := forecast.New(forecast.KindLSTM, cfg)
			if err != nil {
				return 0, fednet.Stats{}, err
			}
			fcs[hi][tr.Device.Type] = f
		}
	}
	round := func(dt string, models []*nn.Sequential) error {
		if topo == fednet.Ring {
			_, err := fed.GossipRound(net, models, "fc/"+dt, -1)
			return err
		}
		_, err := fed.DecentralizedRound(net, models, "fc/"+dt, -1)
		return err
	}
	evalStart := sc.Days - 1
	accSum, accN := 0.0, 0
	for day := 0; day < sc.Days; day++ {
		for hi, home := range ds.Homes {
			for _, tr := range home.Traces {
				if day >= evalStart {
					pred := predictDayNoTimer(fcs[hi][tr.Device.Type], tr, day)
					floor := forecast.FloorFor(tr.Device.OnKW)
					for _, a := range forecast.Accuracy(pred, tr.Day(day), floor) {
						accSum += a
						accN++
					}
				}
			}
		}
		for hour := 0; hour < 24; hour++ {
			hourEnd := day*pecan.MinutesPerDay + (hour+1)*60
			if (hour+1)%sc.TrainEveryHours == 0 {
				for hi, home := range ds.Homes {
					for _, tr := range home.Traces {
						start := hourEnd - sc.TrainLookbackHours*60
						if start < 0 {
							start = 0
						}
						fcs[hi][tr.Device.Type].TrainEpochs(tr.Window(start, hourEnd), 1)
					}
				}
			}
			if fires := firesInHour(12, hourEnd); fires > 0 {
				for _, dt := range ds.DeviceTypes() {
					models := make([]*nn.Sequential, sc.Homes)
					for hi := range fcs {
						models[hi] = fcs[hi][dt].Model()
					}
					if err := round(dt, models); err != nil {
						return 0, fednet.Stats{}, err
					}
				}
			}
		}
	}
	return accSum / float64(accN), net.Stats(), nil
}

func predictDayNoTimer(fc forecast.Forecaster, tr *pecan.Trace, day int) []float64 {
	w := fc.Config().Window
	pred := make([]float64, pecan.MinutesPerDay)
	for hour := 0; hour < 24; hour++ {
		t := day*pecan.MinutesPerDay + hour*60
		if t < w {
			for m := 0; m < 60; m++ {
				pred[hour*60+m] = tr.Device.StandbyKW
			}
			continue
		}
		series, off := tr.DayWithHistory(day, w)
		copy(pred[hour*60:(hour+1)*60], fc.Predict(series, t-off))
	}
	return pred
}

// Table renders the ablation.
func (r *TopologyAblation) Table() *Table {
	t := &Table{
		Title:  "Ablation: all-to-all broadcast vs ring gossip (DFL plane)",
		Header: []string{"topology", "accuracy", "messages", "MB", "comm_s"},
	}
	for i, name := range r.Names {
		t.Rows = append(t.Rows, []string{
			name, fmtF(r.Accuracy[i]),
			fmt.Sprintf("%d", r.Messages[i]),
			fmt.Sprintf("%.2f", r.MBytes[i]),
			fmt.Sprintf("%.1f", r.CommSecs[i]),
		})
	}
	return t
}

// ScalingResult measures wall-clock per simulated day as the fleet grows —
// the parallel-efficiency view of the simulator itself.
type ScalingResult struct {
	Homes      []int
	WallPerDay []time.Duration
	GoMaxProcs int
}

// RunScaling times a short PFDRL run at each fleet size.
func RunScaling(sc Scale, grid []int) (*ScalingResult, error) {
	if len(grid) == 0 {
		grid = []int{2, 4, 8}
	}
	out := &ScalingResult{GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, n := range grid {
		s := sc
		s.Homes = n
		s.Days = 2
		cfg := coreConfig(s, core.MethodPFDRL)
		start := time.Now()
		if _, err := runCore(cfg); err != nil {
			return nil, err
		}
		out.Homes = append(out.Homes, n)
		out.WallPerDay = append(out.WallPerDay, time.Since(start)/time.Duration(s.Days))
	}
	return out, nil
}

// Table renders the scaling measurement.
func (r *ScalingResult) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Scaling: wall-clock per simulated day (GOMAXPROCS=%d)", r.GoMaxProcs),
		Header: []string{"homes", "wall_per_day", "per_home"},
	}
	for i, n := range r.Homes {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			r.WallPerDay[i].Round(time.Millisecond).String(),
			(r.WallPerDay[i] / time.Duration(n)).Round(time.Millisecond).String(),
		})
	}
	return t
}
