package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/forecast"
)

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "bbbb"}, Rows: [][]string{{"1", "2"}, {"33", "4"}}}
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "== T ==") || !strings.Contains(out, "bbbb") {
		t.Fatalf("render output:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 4 {
		t.Fatalf("expected 4 lines:\n%s", out)
	}
}

func TestRunDFLBasics(t *testing.T) {
	sc := Quick()
	r, err := RunDFL(DFLOptions{Scale: sc, Kinds: []forecast.Kind{forecast.KindLR}, BetaHours: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.AccByDay[forecast.KindLR]) != sc.Days {
		t.Fatalf("AccByDay length %d, want %d", len(r.AccByDay[forecast.KindLR]), sc.Days)
	}
	if r.MeanAcc[forecast.KindLR] <= 0 || r.MeanAcc[forecast.KindLR] > 1 {
		t.Fatalf("MeanAcc %v out of range", r.MeanAcc[forecast.KindLR])
	}
	if len(r.AccSamples[forecast.KindLR]) == 0 {
		t.Fatal("no accuracy samples")
	}
	if r.TrainTime[forecast.KindLR] <= 0 || r.TestTime[forecast.KindLR] <= 0 {
		t.Fatal("timers empty")
	}
	if r.CommTime[forecast.KindLR] <= 0 {
		t.Fatal("no communication time despite β=12")
	}
	// Purely local run moves no bytes.
	local, err := RunDFL(DFLOptions{Scale: sc, Kinds: []forecast.Kind{forecast.KindLR}, BetaHours: 0})
	if err != nil {
		t.Fatal(err)
	}
	if local.CommTime[forecast.KindLR] != 0 {
		t.Fatal("local run communicated")
	}
}

func TestRunDFLDeterministic(t *testing.T) {
	sc := Quick()
	run := func() float64 {
		r, err := RunDFL(DFLOptions{Scale: sc, Kinds: []forecast.Kind{forecast.KindBP}, BetaHours: 6})
		if err != nil {
			t.Fatal(err)
		}
		return r.MeanAcc[forecast.KindBP]
	}
	if run() != run() {
		t.Fatal("DFL run not deterministic")
	}
}

func TestAlphaSweep(t *testing.T) {
	sc := Quick()
	sc.DQNHidden = []int{10, 10, 10} // 3-layer sweep for speed
	r, err := Alpha(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Alphas) != 3 || len(r.SavedFrac) != 3 {
		t.Fatalf("sweep sizes wrong: %+v", r)
	}
	if r.Best < 1 || r.Best > 3 {
		t.Fatalf("Best α = %d", r.Best)
	}
	for _, v := range r.SavedFrac {
		if v < 0 || v > 1 {
			t.Fatalf("saved fraction %v out of range", v)
		}
	}
	tab := r.Table()
	if len(tab.Rows) != 4 { // 3 alphas + best
		t.Fatalf("table rows %d", len(tab.Rows))
	}
}

func TestBetaSweepSubset(t *testing.T) {
	// Full grid is heavy; validate on a reduced grid by calling RunDFL
	// directly for two periods and checking the Beta plumbing on them.
	sc := Quick()
	r, err := Beta(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Betas) != len(BetaGrid) {
		t.Fatalf("betas %d", len(r.Betas))
	}
	for i, a := range r.Accuracy {
		if a <= 0 || a > 1 {
			t.Fatalf("beta %g accuracy %v", r.Betas[i], a)
		}
	}
	// Communication cost must decrease as the period grows.
	if r.CommSeconds[0] <= r.CommSeconds[len(r.CommSeconds)-1] {
		t.Fatalf("comm cost not decreasing: %v", r.CommSeconds)
	}
	if len(r.Table().Rows) != len(BetaGrid) {
		t.Fatal("table size wrong")
	}
}

func TestCompareForecastersShapes(t *testing.T) {
	sc := Quick()
	r, err := CompareForecasters(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range r.Kinds {
		cdf := r.CDF[k]
		if len(cdf) != len(CDFGrid) {
			t.Fatalf("%s: CDF length %d", k, len(cdf))
		}
		// CDF must be monotone with terminal value 1.
		for i := 1; i < len(cdf); i++ {
			if cdf[i] < cdf[i-1] {
				t.Fatalf("%s: CDF not monotone", k)
			}
		}
		if cdf[len(cdf)-1] != 1 {
			t.Fatalf("%s: CDF(100%%) = %v", k, cdf[len(cdf)-1])
		}
	}
	if len(r.CDFTable().Rows) != len(CDFGrid)+1 || len(r.HourlyTable().Rows) != 24 {
		t.Fatal("table shapes wrong")
	}
}

func TestMonetarySavings(t *testing.T) {
	sc := Quick()
	r, err := MonetarySavings(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Months) != 12 {
		t.Fatalf("months %d", len(r.Months))
	}
	for i := range r.Months {
		if r.FixedUSD[i] < 0 || r.VarUSD[i] < 0 {
			t.Fatalf("negative savings month %d", r.Months[i])
		}
	}
	if len(r.Table().Rows) != 12 {
		t.Fatal("table rows wrong")
	}
}

func TestPersonalizationDriver(t *testing.T) {
	sc := Quick()
	r, err := Personalization(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerHomePersonalized) != sc.Homes || len(r.PerHomeNot) != sc.Homes {
		t.Fatal("per-home vectors wrong size")
	}
	if r.PersonalizedMean < 0 || r.NotPersonalizedMean < 0 {
		t.Fatal("negative means")
	}
	if len(r.Table().Rows) != 2 {
		t.Fatal("table rows wrong")
	}
}

func TestForecastOverheadDriver(t *testing.T) {
	sc := Quick()
	r, err := ForecastOverhead(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range r.Kinds {
		if r.TrainTime[k] <= 0 {
			t.Fatalf("%s train time empty", k)
		}
	}
	if len(r.Table().Rows) != 4 {
		t.Fatal("table rows wrong")
	}
}

func TestCompareMethodsAndDerivedTables(t *testing.T) {
	sc := Quick()
	r, err := CompareMethods(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Results) != 5 {
		t.Fatalf("results for %d methods", len(r.Results))
	}
	st := r.SavingsTable()
	if len(st.Rows) != sc.Days+3 { // days + convergence + final + reward rows
		t.Fatalf("savings table rows %d", len(st.Rows))
	}
	if len(r.HourlySavingsTable().Rows) != 24 {
		t.Fatal("hourly table rows wrong")
	}
	ot := r.EMSOverheadTable()
	if len(ot.Rows) != 5 {
		t.Fatal("overhead table rows wrong")
	}
	// Only FRL and PFDRL have EMS communication.
	for _, m := range r.Methods {
		comm := r.Results[m].EMSCommTime > 0
		if comm != m.SharesEMS() {
			t.Fatalf("%s: EMS comm presence %v, want %v", m, comm, m.SharesEMS())
		}
	}
}

func TestAccuracyVsClientsSmallGrid(t *testing.T) {
	sc := Quick()
	sc.Days = 2
	r, err := AccuracyVsClients(sc, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Clients) != 2 {
		t.Fatal("grid size wrong")
	}
	for _, k := range r.Kinds {
		if len(r.Accuracy[k]) != 2 {
			t.Fatalf("%s accuracy points %d", k, len(r.Accuracy[k]))
		}
	}
	if len(r.Table().Rows) != 2 {
		t.Fatal("table rows wrong")
	}
}

func TestAccuracyVsDaysDriver(t *testing.T) {
	sc := Quick()
	sc.Days = 3
	r, err := AccuracyVsDays(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Days) != 3 {
		t.Fatal("days wrong")
	}
	for _, k := range r.Kinds {
		if len(r.Accuracy[k]) != 3 {
			t.Fatalf("%s: curve length %d", k, len(r.Accuracy[k]))
		}
	}
	if len(r.Table().Rows) != 3 {
		t.Fatal("table rows wrong")
	}
}

func TestGammaSweepReducedGrid(t *testing.T) {
	// Gamma over the full grid is the most expensive sweep; exercise the
	// driver logic through two direct core runs instead, then check the
	// table path with a stubbed result.
	sc := Quick()
	cfg := coreConfig(sc, core.MethodPFDRL)
	cfg.GammaHours = 6
	if _, err := runCore(cfg); err != nil {
		t.Fatal(err)
	}
	stub := &GammaResult{Gammas: []float64{6, 12}, SavedFrac: []float64{0.5, 0.6}, MeanReward: []float64{20, 21}}
	if len(stub.Table().Rows) != 2 {
		t.Fatal("gamma table wrong")
	}
}
