package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/forecast"
	"repro/internal/metrics"
	"repro/internal/pricing"
)

// coreConfig translates a Scale into a core.Config for a method.
func coreConfig(sc Scale, m core.Method) core.Config {
	cfg := core.DefaultConfig(m)
	cfg.Homes = sc.Homes
	cfg.Days = sc.Days
	cfg.DevicesPerHome = sc.DevicesPerHome
	cfg.Seed = sc.Seed
	cfg.ForecastWindow = sc.ForecastWindow
	cfg.ForecastHidden = sc.ForecastHidden
	cfg.TrainEveryHours = sc.TrainEveryHours
	cfg.TrainLookbackHours = sc.TrainLookbackHours
	if sc.BoutEpochs > 0 {
		cfg.TrainBoutEpochs = sc.BoutEpochs
	}
	cfg.DQNHidden = sc.DQNHidden
	cfg.LearnEveryMinutes = sc.LearnEveryMinutes
	cfg.ForecastKind = forecast.KindLSTM
	return cfg
}

// runCore builds and runs one simulation.
func runCore(cfg core.Config) (*core.Result, error) {
	s, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// evalWindowMean returns the mean of the trailing quarter of a daily series
// (the settled performance a sweep point reports).
func evalWindowMean(daily []float64) float64 {
	n := len(daily) / 4
	if n < 1 {
		n = 1
	}
	sum := 0.0
	for _, v := range daily[len(daily)-n:] {
		sum += v
	}
	return sum / float64(n)
}

// ---------------------------------------------------------------- Fig 2 —

// AlphaResult is the Fig 2 sweep: saved standby energy vs shared layers α.
type AlphaResult struct {
	Alphas    []int
	SavedFrac []float64
	// MeanReward is the settled per-step Table 1 reward — the comfort-aware
	// view of EMS quality. The saved fraction saturates quickly for every
	// competent policy (turning standby devices off is never penalized by
	// the savings metric), so the reward column carries the α signal.
	MeanReward []float64
	// Best is the α with the highest mean reward, breaking ties by saved
	// fraction.
	Best int
}

// Alpha reproduces Figure 2: run PFDRL for every α ∈ {1..len(DQNHidden)}
// and report the settled saved-standby-energy fraction.
func Alpha(sc Scale) (*AlphaResult, error) {
	res := &AlphaResult{}
	bestR := 0.0
	for a := 1; a <= len(sc.DQNHidden); a++ {
		cfg := coreConfig(sc, core.MethodPFDRL)
		cfg.Alpha = a
		r, err := runCore(cfg)
		if err != nil {
			return nil, err
		}
		v := evalWindowMean(r.DailySavedFrac)
		rew := evalWindowMean(r.DailyMeanReward)
		res.Alphas = append(res.Alphas, a)
		res.SavedFrac = append(res.SavedFrac, v)
		res.MeanReward = append(res.MeanReward, rew)
		if res.Best == 0 || rew > bestR {
			bestR, res.Best = rew, a
		}
	}
	return res, nil
}

// Table renders the sweep.
func (r *AlphaResult) Table() *Table {
	t := &Table{Title: "Fig 2: saved standby energy vs shared layers α", Header: []string{"alpha", "saved_frac", "mean_reward"}}
	for i, a := range r.Alphas {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", a), fmtF(r.SavedFrac[i]), fmtF(r.MeanReward[i])})
	}
	t.Rows = append(t.Rows, []string{"best", fmt.Sprintf("%d", r.Best), ""})
	return t
}

// ---------------------------------------------------------------- Fig 3 —

// BetaGrid is the paper's broadcast-frequency grid (hours).
var BetaGrid = []float64{0.1, 0.5, 1, 2, 6, 12, 24}

// BetaResult is the Fig 3 sweep: DFL accuracy vs broadcast period β.
// CommSeconds exposes the communication cost that makes the high-frequency
// end of the grid unattractive even where accuracy ties.
type BetaResult struct {
	Betas       []float64
	Accuracy    []float64
	CommSeconds []float64
}

// Beta reproduces Figure 3: decentralized federated LSTM forecasting
// accuracy for each broadcast period.
func Beta(sc Scale) (*BetaResult, error) {
	res := &BetaResult{}
	for _, b := range BetaGrid {
		r, err := RunDFL(DFLOptions{Scale: sc, Kinds: []forecast.Kind{forecast.KindLSTM}, BetaHours: b})
		if err != nil {
			return nil, err
		}
		res.Betas = append(res.Betas, b)
		res.Accuracy = append(res.Accuracy, r.MeanAcc[forecast.KindLSTM])
		res.CommSeconds = append(res.CommSeconds, r.CommTime[forecast.KindLSTM].Seconds())
	}
	return res, nil
}

// Table renders the sweep.
func (r *BetaResult) Table() *Table {
	t := &Table{Title: "Fig 3: DFL accuracy vs broadcast frequency β", Header: []string{"beta_hours", "accuracy", "comm_s"}}
	for i, b := range r.Betas {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%g", b), fmtF(r.Accuracy[i]), fmt.Sprintf("%.1f", r.CommSeconds[i])})
	}
	return t
}

// ---------------------------------------------------------------- Fig 4 —

// GammaGrid mirrors the paper's γ grid (hours).
var GammaGrid = []float64{0.1, 0.5, 1, 2, 6, 12, 24}

// GammaResult is the Fig 4 sweep: saved energy vs DRL broadcast period γ.
type GammaResult struct {
	Gammas     []float64
	SavedFrac  []float64
	MeanReward []float64
}

// Gamma reproduces Figure 4.
func Gamma(sc Scale) (*GammaResult, error) {
	res := &GammaResult{}
	for _, g := range GammaGrid {
		cfg := coreConfig(sc, core.MethodPFDRL)
		cfg.Alpha = 6
		cfg.GammaHours = g
		r, err := runCore(cfg)
		if err != nil {
			return nil, err
		}
		res.Gammas = append(res.Gammas, g)
		res.SavedFrac = append(res.SavedFrac, evalWindowMean(r.DailySavedFrac))
		res.MeanReward = append(res.MeanReward, evalWindowMean(r.DailyMeanReward))
	}
	return res, nil
}

// Table renders the sweep.
func (r *GammaResult) Table() *Table {
	t := &Table{Title: "Fig 4: saved standby energy vs broadcast frequency γ", Header: []string{"gamma_hours", "saved_frac", "mean_reward"}}
	for i, g := range r.Gammas {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%g", g), fmtF(r.SavedFrac[i]), fmtF(r.MeanReward[i])})
	}
	return t
}

// ------------------------------------------------------------- Fig 5/6 —

// CDFGrid is the accuracy grid (percent) of the paper's Figure 5 x-axis.
var CDFGrid = []float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}

// ForecastComparison covers Figs 5 and 6: per-algorithm accuracy CDFs and
// hour-of-day profiles from one shared DFL run.
type ForecastComparison struct {
	Kinds   []forecast.Kind
	MeanAcc map[forecast.Kind]float64
	CDF     map[forecast.Kind][]float64 // P(acc ≤ grid point), grid in %
	ByHour  map[forecast.Kind][24]float64
	DFL     *DFLResult
}

// CompareForecasters reproduces Figures 5 and 6 with a single DFL run over
// all four algorithms at β=12 (the paper's chosen frequency).
func CompareForecasters(sc Scale) (*ForecastComparison, error) {
	r, err := RunDFL(DFLOptions{Scale: sc, Kinds: allKinds, BetaHours: 12})
	if err != nil {
		return nil, err
	}
	out := &ForecastComparison{
		Kinds:   allKinds,
		MeanAcc: r.MeanAcc,
		CDF:     map[forecast.Kind][]float64{},
		ByHour:  r.AccByHour,
		DFL:     r,
	}
	for _, k := range allKinds {
		cdf := metrics.NewCDF(r.AccSamples[k])
		pts := make([]float64, len(CDFGrid))
		for i, g := range CDFGrid {
			pts[i] = cdf.At(g / 100)
		}
		out.CDF[k] = pts
	}
	return out, nil
}

// CDFTable renders Figure 5.
func (r *ForecastComparison) CDFTable() *Table {
	t := &Table{Title: "Fig 5: CDF of load forecasting accuracy", Header: []string{"accuracy_pct"}}
	for _, k := range r.Kinds {
		t.Header = append(t.Header, kindLabel(k))
	}
	for i, g := range CDFGrid {
		row := []string{fmt.Sprintf("%g", g)}
		for _, k := range r.Kinds {
			row = append(row, fmtF(r.CDF[k][i]))
		}
		t.Rows = append(t.Rows, row)
	}
	mean := []string{"mean_acc"}
	for _, k := range r.Kinds {
		mean = append(mean, fmtF(r.MeanAcc[k]))
	}
	t.Rows = append(t.Rows, mean)
	return t
}

// HourlyTable renders Figure 6.
func (r *ForecastComparison) HourlyTable() *Table {
	t := &Table{Title: "Fig 6: load forecasting accuracy in a day", Header: []string{"hour"}}
	for _, k := range r.Kinds {
		t.Header = append(t.Header, kindLabel(k))
	}
	for h := 0; h < 24; h++ {
		row := []string{fmt.Sprintf("%d", h)}
		for _, k := range r.Kinds {
			row = append(row, fmtF(r.ByHour[k][h]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// ---------------------------------------------------------------- Fig 7 —

// DaysResult is Fig 7: accuracy vs accumulated training days.
type DaysResult struct {
	Kinds    []forecast.Kind
	Days     []int
	Accuracy map[forecast.Kind][]float64
}

// AccuracyVsDays reproduces Figure 7: one DFL run per algorithm, recording
// every day's accuracy as training accumulates.
func AccuracyVsDays(sc Scale) (*DaysResult, error) {
	r, err := RunDFL(DFLOptions{Scale: sc, Kinds: allKinds, BetaHours: 12})
	if err != nil {
		return nil, err
	}
	out := &DaysResult{Kinds: allKinds, Accuracy: map[forecast.Kind][]float64{}}
	for d := 0; d < sc.Days; d++ {
		out.Days = append(out.Days, d+1)
	}
	for _, k := range allKinds {
		out.Accuracy[k] = r.AccByDay[k]
	}
	return out, nil
}

// Table renders the curve.
func (r *DaysResult) Table() *Table {
	t := &Table{Title: "Fig 7: prediction accuracy vs training days", Header: []string{"day"}}
	for _, k := range r.Kinds {
		t.Header = append(t.Header, kindLabel(k))
	}
	for i, d := range r.Days {
		row := []string{fmt.Sprintf("%d", d)}
		for _, k := range r.Kinds {
			row = append(row, fmtF(r.Accuracy[k][i]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// ---------------------------------------------------------------- Fig 8 —

// ClientsResult is Fig 8: accuracy vs number of participating residences.
type ClientsResult struct {
	Kinds    []forecast.Kind
	Clients  []int
	Accuracy map[forecast.Kind][]float64
}

// AccuracyVsClients reproduces Figure 8: DFL accuracy as the number of
// participating homes grows. ClientGrid entries scale off sc.Homes.
func AccuracyVsClients(sc Scale, grid []int) (*ClientsResult, error) {
	if len(grid) == 0 {
		grid = []int{2, 4, sc.Homes, sc.Homes * 2}
	}
	out := &ClientsResult{Kinds: allKinds, Clients: grid, Accuracy: map[forecast.Kind][]float64{}}
	for _, n := range grid {
		s := sc
		s.Homes = n
		r, err := RunDFL(DFLOptions{Scale: s, Kinds: allKinds, BetaHours: 12})
		if err != nil {
			return nil, err
		}
		for _, k := range allKinds {
			out.Accuracy[k] = append(out.Accuracy[k], r.MeanAcc[k])
		}
	}
	return out, nil
}

// Table renders the sweep.
func (r *ClientsResult) Table() *Table {
	t := &Table{Title: "Fig 8: prediction accuracy vs number of residences", Header: []string{"clients"}}
	for _, k := range r.Kinds {
		t.Header = append(t.Header, kindLabel(k))
	}
	for i, n := range r.Clients {
		row := []string{fmt.Sprintf("%d", n)}
		for _, k := range r.Kinds {
			row = append(row, fmtF(r.Accuracy[k][i]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// ---------------------------------------------------------------- Fig 9 —

// MethodsResult covers Figs 9, 11, 12 and 14: one full run per method.
type MethodsResult struct {
	Methods []core.Method
	Results map[core.Method]*core.Result
}

// CompareMethods runs all five methods at the same scale.
func CompareMethods(sc Scale) (*MethodsResult, error) {
	out := &MethodsResult{Methods: core.AllMethods(), Results: map[core.Method]*core.Result{}}
	for _, m := range out.Methods {
		cfg := coreConfig(sc, m)
		r, err := runCore(cfg)
		if err != nil {
			return nil, err
		}
		out.Results[m] = r
	}
	return out, nil
}

// SavingsTable renders Figure 9: daily saved kWh per client plus the
// convergence day per method.
func (r *MethodsResult) SavingsTable() *Table {
	t := &Table{Title: "Fig 9: saved energy per residence vs training days", Header: []string{"day"}}
	for _, m := range r.Methods {
		t.Header = append(t.Header, string(m))
	}
	days := len(r.Results[r.Methods[0]].DailySavedKWhPerHome)
	for d := 0; d < days; d++ {
		row := []string{fmt.Sprintf("%d", d+1)}
		for _, m := range r.Methods {
			row = append(row, fmtF(r.Results[m].DailySavedKWhPerHome[d]))
		}
		t.Rows = append(t.Rows, row)
	}
	conv := []string{"convergence_day"}
	final := []string{"final_saved_frac"}
	rew := []string{"final_mean_reward"}
	for _, m := range r.Methods {
		conv = append(conv, fmt.Sprintf("%d", r.Results[m].ConvergenceDay+1))
		final = append(final, fmtF(evalWindowMean(r.Results[m].DailySavedFrac)))
		rew = append(rew, fmtF(evalWindowMean(r.Results[m].DailyMeanReward)))
	}
	t.Rows = append(t.Rows, conv, final, rew)
	return t
}

// HourlySavingsTable renders Figure 11.
func (r *MethodsResult) HourlySavingsTable() *Table {
	t := &Table{Title: "Fig 11: saved energy per residence in a day", Header: []string{"hour"}}
	for _, m := range r.Methods {
		t.Header = append(t.Header, string(m))
	}
	for h := 0; h < 24; h++ {
		row := []string{fmt.Sprintf("%d", h)}
		for _, m := range r.Methods {
			row = append(row, fmt.Sprintf("%.4f", r.Results[m].SavedByHour[h]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// EMSOverheadTable renders Figure 14: per-method EMS train/test wall time
// plus simulated communication time.
func (r *MethodsResult) EMSOverheadTable() *Table {
	t := &Table{
		Title:  "Fig 14: energy management time overhead",
		Header: []string{"method", "train_s", "test_s", "comm_s", "total_s"},
	}
	for _, m := range r.Methods {
		res := r.Results[m]
		train := res.EMSTrainTime.Seconds()
		test := res.EMSTestTime.Seconds()
		comm := res.EMSCommTime.Seconds()
		t.Rows = append(t.Rows, []string{
			string(m),
			fmt.Sprintf("%.2f", train),
			fmt.Sprintf("%.2f", test),
			fmt.Sprintf("%.2f", comm),
			fmt.Sprintf("%.2f", train+test+comm),
		})
	}
	return t
}

// --------------------------------------------------------------- Fig 10 —

// MonetaryResult is Fig 10: saved dollars per client per month under the
// fixed and variable tariffs.
type MonetaryResult struct {
	Months   []int
	FixedUSD []float64
	VarUSD   []float64
}

// MonetarySavings reproduces Figure 10 from one PFDRL run: the settled
// hourly savings profile is priced across a calendar year under both plans.
func MonetarySavings(sc Scale) (*MonetaryResult, error) {
	cfg := coreConfig(sc, core.MethodPFDRL)
	r, err := runCore(cfg)
	if err != nil {
		return nil, err
	}
	out := &MonetaryResult{}
	for month := 1; month <= 12; month++ {
		days := float64(pricing.DaysInMonth(month))
		fixed := pricing.CostOfHourlyKWh(pricing.FixedRate{}, month, r.SavedByHour) * days
		variable := pricing.CostOfHourlyKWh(pricing.VariableRate{}, month, r.SavedByHour) * days
		out.Months = append(out.Months, month)
		out.FixedUSD = append(out.FixedUSD, fixed)
		out.VarUSD = append(out.VarUSD, variable)
	}
	return out, nil
}

// Table renders the per-month savings.
func (r *MonetaryResult) Table() *Table {
	t := &Table{Title: "Fig 10: saved monetary cost per residence", Header: []string{"month", "fixed_usd", "variable_usd"}}
	for i, m := range r.Months {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", m),
			fmt.Sprintf("%.2f", r.FixedUSD[i]),
			fmt.Sprintf("%.2f", r.VarUSD[i]),
		})
	}
	return t
}

// --------------------------------------------------------------- Fig 12 —

// PersonalizationResult is Fig 12: per-client savings with and without
// personalization layers.
type PersonalizationResult struct {
	PersonalizedMean, PersonalizedStd       float64
	NotPersonalizedMean, NotPersonalizedStd float64
	PerHomePersonalized, PerHomeNot         []float64
	// Reward view: the savings metric saturates for every competent policy
	// (see EXPERIMENTS.md), so the per-home mean Table 1 reward is where
	// the personalization benefit is measurable.
	PersonalizedReward, NotPersonalizedReward       float64
	PersonalizedRewardStd, NotPersonalizedRewardStd float64
}

// Personalization reproduces Figure 12: PFDRL at the best α versus PFDRL
// with every layer shared (α = len(hidden), i.e. no personalization).
func Personalization(sc Scale) (*PersonalizationResult, error) {
	pers := coreConfig(sc, core.MethodPFDRL)
	pers.Alpha = 6
	if pers.Alpha > len(sc.DQNHidden) {
		pers.Alpha = len(sc.DQNHidden) - 1
	}
	rp, err := runCore(pers)
	if err != nil {
		return nil, err
	}
	flat := coreConfig(sc, core.MethodPFDRL)
	flat.Alpha = len(sc.DQNHidden)
	rf, err := runCore(flat)
	if err != nil {
		return nil, err
	}
	sp := metrics.Summarize(rp.PerHomeSavedKWhFinal)
	sf := metrics.Summarize(rf.PerHomeSavedKWhFinal)
	rpr := metrics.Summarize(rp.PerHomeRewardFinal)
	rfr := metrics.Summarize(rf.PerHomeRewardFinal)
	return &PersonalizationResult{
		PersonalizedMean: sp.Mean, PersonalizedStd: sp.Std,
		NotPersonalizedMean: sf.Mean, NotPersonalizedStd: sf.Std,
		PerHomePersonalized: rp.PerHomeSavedKWhFinal,
		PerHomeNot:          rf.PerHomeSavedKWhFinal,
		PersonalizedReward:  rpr.Mean, PersonalizedRewardStd: rpr.Std,
		NotPersonalizedReward: rfr.Mean, NotPersonalizedRewardStd: rfr.Std,
	}, nil
}

// Table renders the comparison.
func (r *PersonalizationResult) Table() *Table {
	return &Table{
		Title:  "Fig 12: performance in personalization (per client, final day)",
		Header: []string{"variant", "mean_kwh", "std_kwh", "mean_reward", "std_reward"},
		Rows: [][]string{
			{"personalized", fmtF(r.PersonalizedMean), fmtF(r.PersonalizedStd),
				fmtF(r.PersonalizedReward), fmtF(r.PersonalizedRewardStd)},
			{"not_personalized", fmtF(r.NotPersonalizedMean), fmtF(r.NotPersonalizedStd),
				fmtF(r.NotPersonalizedReward), fmtF(r.NotPersonalizedRewardStd)},
		},
	}
}

// --------------------------------------------------------------- Fig 13 —

// ForecastOverheadResult is Fig 13: per-algorithm train/test time.
type ForecastOverheadResult struct {
	Kinds     []forecast.Kind
	TrainTime map[forecast.Kind]time.Duration
	TestTime  map[forecast.Kind]time.Duration
}

// ForecastOverhead reproduces Figure 13 from a DFL run over all four
// algorithms.
func ForecastOverhead(sc Scale) (*ForecastOverheadResult, error) {
	r, err := RunDFL(DFLOptions{Scale: sc, Kinds: allKinds, BetaHours: 12})
	if err != nil {
		return nil, err
	}
	return &ForecastOverheadResult{Kinds: allKinds, TrainTime: r.TrainTime, TestTime: r.TestTime}, nil
}

// Table renders the timings.
func (r *ForecastOverheadResult) Table() *Table {
	t := &Table{Title: "Fig 13: load forecasting time overhead", Header: []string{"method", "train_s", "test_s"}}
	for _, k := range r.Kinds {
		t.Rows = append(t.Rows, []string{
			kindLabel(k),
			fmt.Sprintf("%.2f", r.TrainTime[k].Seconds()),
			fmt.Sprintf("%.2f", r.TestTime[k].Seconds()),
		})
	}
	return t
}
