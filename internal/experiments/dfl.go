package experiments

import (
	"time"

	"repro/internal/fed"
	"repro/internal/fednet"
	"repro/internal/forecast"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/pecan"
)

// DFLOptions configures a forecasting-only simulation (no EMS): the
// workload behind Figs 3, 5, 6, 7, 8 and 13.
type DFLOptions struct {
	Scale Scale
	// Kinds lists the forecaster algorithms to run side by side.
	Kinds []forecast.Kind
	// BetaHours is the decentralized broadcast period (≤0 = purely local).
	BetaHours float64
	// EvalDays is the trailing evaluation window (default Days/4, ≥1).
	EvalDays int
}

// DFLResult aggregates per-algorithm forecasting outcomes.
type DFLResult struct {
	// AccSamples holds per-minute accuracies over the evaluation window.
	AccSamples map[forecast.Kind][]float64
	// MeanAcc is the evaluation-window mean accuracy.
	MeanAcc map[forecast.Kind]float64
	// AccByHour is evaluation accuracy bucketed by hour of day.
	AccByHour map[forecast.Kind][24]float64
	// AccByDay is the mean accuracy of every simulated day (Fig 7's curve).
	AccByDay map[forecast.Kind][]float64
	// TrainTime / TestTime are wall-clock totals; CommTime is simulated.
	TrainTime, TestTime map[forecast.Kind]time.Duration
	CommTime            map[forecast.Kind]time.Duration
}

// RunDFL simulates decentralized federated load forecasting: every home
// trains a local forecaster per device on its own trace, broadcasts
// parameters every β hours, and aggregates (Algorithm 1). Accuracy is
// measured causally: each day is predicted hour by hour before the day's
// data is trained on.
func RunDFL(opts DFLOptions) (*DFLResult, error) {
	sc := opts.Scale
	if len(opts.Kinds) == 0 {
		opts.Kinds = allKinds
	}
	ds := pecan.Generate(pecan.Config{
		Seed: sc.Seed, Homes: sc.Homes, Days: sc.Days, DevicesPerHome: sc.DevicesPerHome,
	})
	evalDays := opts.EvalDays
	if evalDays <= 0 {
		evalDays = sc.Days / 4
		if evalDays < 1 {
			evalDays = 1
		}
	}
	evalStart := sc.Days - evalDays

	res := &DFLResult{
		AccSamples: map[forecast.Kind][]float64{},
		MeanAcc:    map[forecast.Kind]float64{},
		AccByHour:  map[forecast.Kind][24]float64{},
		AccByDay:   map[forecast.Kind][]float64{},
		TrainTime:  map[forecast.Kind]time.Duration{},
		TestTime:   map[forecast.Kind]time.Duration{},
		CommTime:   map[forecast.Kind]time.Duration{},
	}

	for _, kind := range opts.Kinds {
		timer := metrics.NewTimer()
		var net *fednet.Network
		if opts.BetaHours > 0 && sc.Homes > 1 {
			net = fednet.New(sc.Homes, fednet.Config{Topology: fednet.AllToAll, Seed: sc.Seed})
		}
		// fcs[home][device type] — one model per device per home, all homes
		// starting from the same initialization.
		fcs := make([]map[string]forecast.Forecaster, sc.Homes)
		for hi, home := range ds.Homes {
			fcs[hi] = map[string]forecast.Forecaster{}
			for _, tr := range home.Traces {
				cfg := forecast.DefaultConfig(tr.Device.OnKW)
				cfg.Window = sc.ForecastWindow
				cfg.Hidden = sc.ForecastHidden
				cfg.Horizon = 60
				cfg.Seed = sc.Seed + 7
				f, err := forecast.New(kind, cfg)
				if err != nil {
					return nil, err
				}
				fcs[hi][tr.Device.Type] = f
			}
		}

		var hourBuckets metrics.HourBuckets
		for day := 0; day < sc.Days; day++ {
			inEval := day >= evalStart
			// Predict & score the day.
			daySum, dayN := 0.0, 0
			for hi, home := range ds.Homes {
				for _, tr := range home.Traces {
					fc := fcs[hi][tr.Device.Type]
					pred := predictDayWith(timer, fc, tr, day)
					floor := forecast.FloorFor(tr.Device.OnKW)
					acc := forecast.Accuracy(pred, tr.Day(day), floor)
					for m, a := range acc {
						daySum += a
						dayN++
						if inEval {
							hourBuckets.Add(m, a)
							if m%3 == 0 {
								res.AccSamples[kind] = append(res.AccSamples[kind], a)
							}
						}
					}
				}
			}
			res.AccByDay[kind] = append(res.AccByDay[kind], daySum/float64(dayN))

			// Train bouts + federation through the day.
			for hour := 0; hour < 24; hour++ {
				hourEnd := day*pecan.MinutesPerDay + (hour+1)*60
				if (hour+1)%sc.TrainEveryHours == 0 {
					timer.Start("train")
					for hi, home := range ds.Homes {
						for _, tr := range home.Traces {
							start := hourEnd - sc.TrainLookbackHours*60
							if start < 0 {
								start = 0
							}
							fcs[hi][tr.Device.Type].TrainEpochs(tr.Window(start, hourEnd), boutEpochs(sc))
						}
					}
					timer.Stop("train")
				}
				if net != nil {
					if fires := firesInHour(opts.BetaHours, hourEnd); fires > 0 {
						timer.Start("train")
						for _, dt := range ds.DeviceTypes() {
							models := make([]*nn.Sequential, sc.Homes)
							for hi := range fcs {
								models[hi] = fcs[hi][dt].Model()
							}
							if _, err := fed.DecentralizedRound(net, models, "fc/"+dt, -1); err != nil {
								timer.Stop("train")
								return nil, err
							}
							if fires > 1 {
								net.ChargeBroadcastRounds(models[0].WireSize(), fires-1)
							}
						}
						timer.Stop("train")
					}
				}
			}
		}

		res.AccByHour[kind] = hourBuckets.Means()
		res.MeanAcc[kind] = metrics.Summarize(res.AccSamples[kind]).Mean
		res.TrainTime[kind] = timer.Get("train")
		res.TestTime[kind] = timer.Get("test")
		if net != nil {
			res.CommTime[kind] = net.Stats().SimulatedTime
		}
	}
	return res, nil
}

// boutEpochs returns the per-bout epoch count (≥1).
func boutEpochs(sc Scale) int {
	if sc.BoutEpochs > 0 {
		return sc.BoutEpochs
	}
	return 1
}

// predictDayWith builds a causal day-ahead prediction hour by hour.
func predictDayWith(timer *metrics.Timer, fc forecast.Forecaster, tr *pecan.Trace, day int) []float64 {
	w := fc.Config().Window
	pred := make([]float64, pecan.MinutesPerDay)
	timer.Start("test")
	defer timer.Stop("test")
	for hour := 0; hour < 24; hour++ {
		t := day*pecan.MinutesPerDay + hour*60
		if t < w {
			for m := 0; m < 60; m++ {
				pred[hour*60+m] = tr.Device.StandbyKW
			}
			continue
		}
		series, off := tr.DayWithHistory(day, w)
		copy(pred[hour*60:(hour+1)*60], fc.Predict(series, t-off))
	}
	return pred
}

// firesInHour counts broadcast instants of a period (hours) inside the hour
// ending at absolute minute hourEnd (inclusive).
func firesInHour(periodHours float64, hourEnd int) int {
	sched := fed.Schedule{PeriodHours: periodHours}
	fires := 0
	for m := hourEnd - 59; m <= hourEnd; m++ {
		if sched.Due(m) {
			fires++
		}
	}
	return fires
}

// kindLabel formats a forecaster kind for table rows.
func kindLabel(k forecast.Kind) string { return string(k) }
