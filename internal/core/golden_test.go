package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/energy"
	"repro/internal/forecast"
)

// goldenConfig is the fixed-seed scenario the equivalence suite pins:
// 2 homes x 2 devices x 2 days, LR forecasters, a small DQN.
func goldenConfig(m Method) Config {
	cfg := DefaultConfig(m)
	cfg.Homes = 2
	cfg.Days = 2
	cfg.DevicesPerHome = 2
	cfg.ForecastKind = forecast.KindLR
	cfg.ForecastWindow = 16
	cfg.DQNHidden = []int{12, 12}
	cfg.Alpha = 1
	cfg.LookAhead, cfg.LookBack = 4, 4
	cfg.LearnEveryMinutes = 20
	cfg.DQNBatch = 8
	cfg.TrainEveryHours = 8
	cfg.BetaHours = 12
	cfg.GammaHours = 12
	return cfg
}

// TestGoldenEquivalence pins the bit-exact Result series of the golden
// scenario. The expected bits were captured from the pre-refactor
// (allocate-per-call) numeric stack; the buffer-reuse refactor must
// reproduce them exactly — same kernels, same accumulation order, same RNG
// call sequence. Any drift here means a kernel or call-order change altered
// the simulation, not just its performance.
//
// The values are IEEE-754 bit patterns, so this test assumes the default
// amd64/arm64 float64 semantics (no FMA contraction in the Go compiler for
// these expressions; gc does not fuse across the operations used here).
func TestGoldenEquivalence(t *testing.T) {
	golden := map[Method]map[string][]uint64{
		MethodLocal: {
			"DailySavedKWhPerHome": {0x3fb5b2937079cf4c, 0x3fbfa466d7c375cc},
			"DailySavedFrac":       {0x3fd25d7cc199b6cd, 0x3fddafce465b96e9},
			"DailyMeanReward":      {0x4016955555555555, 0x401be00000000000},
			"PerHomeSavedKWhFinal": {0x3fc2888628ab5244, 0x3fba37c15e304711},
			"PerHomeRewardFinal":   {0x4022ee38e38e38e4, 0x4011e38e38e38e39},
			"ForecastAccuracy":     {0x3fcf3c9e21272064},
		},
		MethodPFDRL: {
			"DailySavedKWhPerHome": {0x3fb5d5cea4a23ea7, 0x3fbc96b2bb5a7a1a},
			"DailySavedFrac":       {0x3fd27b4ec36adbdc, 0x3fdad2691ee4de33},
			"DailyMeanReward":      {0x4016c00000000000, 0x401ad8e38e38e38e},
			"PerHomeSavedKWhFinal": {0x3fc0ae07f60a5710, 0x3fb7d1558aa04615},
			"PerHomeRewardFinal":   {0x4021dc71c71c71c7, 0x4011f8e38e38e38e},
			"ForecastAccuracy":     {0x3fcf2714fd25795c},
		},
	}
	for _, m := range []Method{MethodLocal, MethodPFDRL} {
		sys, err := NewSystem(goldenConfig(m))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		series := map[string][]float64{
			"DailySavedKWhPerHome": res.DailySavedKWhPerHome,
			"DailySavedFrac":       res.DailySavedFrac,
			"DailyMeanReward":      res.DailyMeanReward,
			"PerHomeSavedKWhFinal": res.PerHomeSavedKWhFinal,
			"PerHomeRewardFinal":   res.PerHomeRewardFinal,
			"ForecastAccuracy":     {res.ForecastAccuracy},
		}
		for name, want := range golden[m] {
			got := series[name]
			if len(got) != len(want) {
				t.Errorf("%s %s: %d values, want %d", m, name, len(got), len(want))
				continue
			}
			for i, w := range want {
				if b := math.Float64bits(got[i]); b != w {
					t.Errorf("%s %s[%d] = 0x%016x (%v), want 0x%016x (%v)",
						m, name, i, b, got[i], w, math.Float64frombits(w))
				}
			}
		}
	}
}

// TestStateIntoTimeFeatures is the regression test for the old stateAt
// aliasing hazard: time features were appended to the slice Env.StateAt
// returned, so spare capacity could have let the append scribble into
// Env-owned backing. stateInto now writes into a caller buffer; this test
// drives it with a capacity-padded buffer (the shape that made append
// dangerous) and checks both content and Env isolation.
func TestStateIntoTimeFeatures(t *testing.T) {
	sys, err := NewSystem(goldenConfig(MethodLocal))
	if err != nil {
		t.Fatal(err)
	}
	tr := sys.homes[0].src.Traces[0]
	env, err := energy.NewEnv(tr.Device, tr.Day(0), tr.Day(0))
	if err != nil {
		t.Fatal(err)
	}
	env.LookAhead, env.LookBack = sys.cfg.LookAhead, sys.cfg.LookBack
	envDim := env.StateDim()
	want := envDim + 2 // goldenConfig keeps TimeFeatures on

	// Capacity-padded destination: len correct, spare capacity beyond it.
	backing := make([]float64, want+8)
	for i := range backing {
		backing[i] = -99
	}
	dst := backing[:want]
	got := sys.stateInto(dst, env, 30)

	envState := env.StateAt(30)
	for i := 0; i < envDim; i++ {
		if got[i] != envState[i] {
			t.Fatalf("stateInto[%d] = %v, want env state %v", i, got[i], envState[i])
		}
	}
	angle := 2 * math.Pi * float64(30) / float64(1440)
	if got[envDim] != math.Sin(angle) || got[envDim+1] != math.Cos(angle) {
		t.Fatal("stateInto time features wrong")
	}
	// The padding beyond len must be untouched: nothing appended past dst.
	for i := want; i < len(backing); i++ {
		if backing[i] != -99 {
			t.Fatalf("stateInto wrote past dst length at index %d", i)
		}
	}
	// And a second build into a different buffer must leave the first alone.
	other := make([]float64, want)
	sys.stateInto(other, env, 31)
	if got[0] != envState[0] {
		t.Fatal("second stateInto mutated the first observation buffer")
	}

	// Wrong-length destinations fail loudly.
	defer func() {
		if recover() == nil {
			t.Fatal("stateInto with short dst did not panic")
		}
	}()
	sys.stateInto(make([]float64, want-1), env, 0)
}

// TestRunErrorsOnZeroStepDay pins the daySteps guard: a system whose homes
// have no device environments must fail with a configuration diagnosis, not
// emit NaN into DailyMeanReward.
func TestRunErrorsOnZeroStepDay(t *testing.T) {
	sys, err := NewSystem(goldenConfig(MethodLocal))
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range sys.homes {
		h.src.Traces = nil // simulate a corpus that yielded no EMS work
	}
	_, err = sys.Run()
	if err == nil {
		t.Fatal("Run with zero EMS steps should error")
	}
	if !strings.Contains(err.Error(), "no EMS steps") {
		t.Fatalf("unhelpful zero-step error: %v", err)
	}
}
