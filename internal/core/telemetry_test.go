package core

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/telemetry"
)

// runGoldenWithSink runs the golden scenario with an optional telemetry sink
// attached and returns the result plus the serialized model checkpoint.
func runGoldenWithSink(t *testing.T, m Method, sink *telemetry.Sink) (*Result, []byte) {
	t.Helper()
	sys, err := NewSystem(goldenConfig(m))
	if err != nil {
		t.Fatal(err)
	}
	sys.AttachTelemetry(sink)
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.SaveModels(&buf); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestTelemetryRunBitIdentical is the observability purity gate: attaching a
// full sink (registry + tracer + journal) must not perturb the simulation.
// Every result series is compared at the IEEE-754 bit level, and the saved
// model checkpoints must be byte-identical — telemetry reads state, never
// feeds it.
func TestTelemetryRunBitIdentical(t *testing.T) {
	for _, m := range []Method{MethodLocal, MethodPFDRL} {
		plain, plainCkpt := runGoldenWithSink(t, m, nil)

		sink := telemetry.NewSink()
		var journal bytes.Buffer
		sink.Journal = telemetry.NewJournal(&journal)
		inst, instCkpt := runGoldenWithSink(t, m, sink)

		series := map[string][2][]float64{
			"DailySavedKWhPerHome":  {plain.DailySavedKWhPerHome, inst.DailySavedKWhPerHome},
			"DailySavedFrac":        {plain.DailySavedFrac, inst.DailySavedFrac},
			"DailyMeanReward":       {plain.DailyMeanReward, inst.DailyMeanReward},
			"PerHomeSavedKWhFinal":  {plain.PerHomeSavedKWhFinal, inst.PerHomeSavedKWhFinal},
			"PerHomeSavedFracFinal": {plain.PerHomeSavedFracFinal, inst.PerHomeSavedFracFinal},
			"PerHomeRewardFinal":    {plain.PerHomeRewardFinal, inst.PerHomeRewardFinal},
			"AccuracySamples":       {plain.AccuracySamples, inst.AccuracySamples},
			"ForecastAccuracy":      {{plain.ForecastAccuracy}, {inst.ForecastAccuracy}},
			"AccuracyByHour":        {plain.AccuracyByHour[:], inst.AccuracyByHour[:]},
			"SavedByHour":           {plain.SavedByHour[:], inst.SavedByHour[:]},
		}
		for name, pair := range series {
			want, got := pair[0], pair[1]
			if len(want) != len(got) {
				t.Errorf("%s %s: %d values with telemetry, %d without", m, name, len(got), len(want))
				continue
			}
			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
					t.Errorf("%s %s[%d]: telemetry run drifted: %v vs %v", m, name, i, got[i], want[i])
				}
			}
		}
		if plain.ConvergenceDay != inst.ConvergenceDay {
			t.Errorf("%s ConvergenceDay: %d vs %d", m, inst.ConvergenceDay, plain.ConvergenceDay)
		}
		// Checkpoint round-trip under telemetry: the trained weights — the
		// entire learned state — serialize to the exact same bytes.
		if !bytes.Equal(plainCkpt, instCkpt) {
			t.Errorf("%s: model checkpoint differs between instrumented and plain runs", m)
		}
		if err := sink.Journal.Err(); err != nil {
			t.Errorf("%s: journal error: %v", m, err)
		}
	}
}

// TestTelemetryJournalContent checks the JSONL journal a golden PFDRL run
// writes: one hour record per simulated home-hour-of-day, federation round
// records for both planes, and internally consistent fields.
func TestTelemetryJournalContent(t *testing.T) {
	sink := telemetry.NewSink()
	var journal bytes.Buffer
	sink.Journal = telemetry.NewJournal(&journal)
	res, _ := runGoldenWithSink(t, MethodPFDRL, sink)

	hours := 0
	rounds := map[string]int{}
	var lastMinute int
	dec := json.NewDecoder(&journal)
	for dec.More() {
		var rec struct {
			Type      string `json:"type"`
			Day       int    `json:"day"`
			Hour      int    `json:"hour"`
			SimMinute int    `json:"sim_minute"`
			Steps     int    `json:"steps"`
			Plane     string `json:"plane"`
			Agents    int    `json:"agents"`
		}
		if err := dec.Decode(&rec); err != nil {
			t.Fatalf("journal record %d: %v", hours+rounds["forecast"]+rounds["ems"], err)
		}
		switch rec.Type {
		case "hour":
			wantDay, wantHour := hours/24, hours%24
			if rec.Day != wantDay || rec.Hour != wantHour {
				t.Fatalf("hour record %d is day %d hour %d, want %d/%d",
					hours, rec.Day, rec.Hour, wantDay, wantHour)
			}
			if rec.SimMinute < lastMinute {
				t.Fatalf("hour record %d: sim_minute went backwards (%d after %d)",
					hours, rec.SimMinute, lastMinute)
			}
			lastMinute = rec.SimMinute
			hours++
		case "round":
			if rec.Agents != res.Config.Homes {
				t.Fatalf("round record has %d agents, want %d", rec.Agents, res.Config.Homes)
			}
			rounds[rec.Plane]++
		default:
			t.Fatalf("unknown journal record type %q", rec.Type)
		}
	}
	if want := res.Config.Days * 24; hours != want {
		t.Errorf("journal has %d hour records, want %d", hours, want)
	}
	if rounds["forecast"] == 0 || rounds["ems"] == 0 {
		t.Errorf("journal rounds by plane = %v, want both forecast and ems", rounds)
	}
}
