package core

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/scenario"
)

// loadShipped loads one of the repo's shipped scenario files.
func loadShipped(t *testing.T, name string) *scenario.Scenario {
	t.Helper()
	sc, err := scenario.Load(filepath.Join("..", "..", "scenarios", name))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// scenarioConfig is the golden config extended to a 4-home fleet so the
// shipped adversary plans (attackers at agents 1 and 2) fit.
func scenarioConfig(m Method, sc *scenario.Scenario) Config {
	cfg := goldenConfig(m)
	cfg.Homes = 4
	cfg.Scenario = sc
	return cfg
}

// runScenario builds and runs a fresh system for cfg.
func runScenario(t *testing.T, cfg Config) *Result {
	t.Helper()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestShippedScenariosValidate parses and validates every scenario file
// the repo ships against the CLI's default fleet shape, so a scenarios/
// edit that breaks loading fails here rather than at the first -scenario
// run.
func TestShippedScenariosValidate(t *testing.T) {
	dir := filepath.Join("..", "..", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".json" {
			continue
		}
		found++
		sc, err := scenario.Load(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		if err := sc.Validate(8, 12); err != nil {
			t.Errorf("%s: %v", e.Name(), err)
		}
	}
	if found < 4 {
		t.Fatalf("only %d shipped scenario files found", found)
	}
}

// TestScenarioDERDispatchGolden pins the der-dispatch scenario: two
// identical fresh runs must agree bit for bit (the DER plane is seeded and
// serial), and the report's structural counts must match the deployment
// exactly — units, steps, and the battery family's γ-period federation
// rounds.
func TestScenarioDERDispatchGolden(t *testing.T) {
	cfg := scenarioConfig(MethodPFDRL, loadShipped(t, "der_dispatch.json"))
	a := runScenario(t, cfg)
	b := runScenario(t, cfg)
	if !reflect.DeepEqual(a.DER, b.DER) {
		t.Fatalf("der-dispatch DER report not deterministic:\n%+v\n%+v", a.DER, b.DER)
	}
	if !reflect.DeepEqual(a.DailySavedKWhPerHome, b.DailySavedKWhPerHome) ||
		!reflect.DeepEqual(a.DailyMeanReward, b.DailyMeanReward) {
		t.Fatal("der-dispatch appliance series not deterministic")
	}
	der := a.DER
	if der == nil {
		t.Fatal("der-dispatch run produced no DER report")
	}
	// Fleet battery + fleet PV + one EV home.
	if want := 2*cfg.Homes + 1; der.Units != want {
		t.Fatalf("Units = %d, want %d", der.Units, want)
	}
	// One decision per minute per dispatchable (agent-backed) unit.
	if want := (cfg.Homes + 1) * cfg.Days * 1440; der.Steps != want {
		t.Fatalf("Steps = %d, want %d", der.Steps, want)
	}
	// The fleet-wide battery family federates twice a day (γ = 12h); the
	// partial EV deployment and passive PV do not.
	if want := 2 * cfg.Days; der.Rounds != want {
		t.Fatalf("DER Rounds = %d, want %d", der.Rounds, want)
	}
	if der.PVGeneratedKWh <= 0 || der.GridImportKWh <= 0 {
		t.Fatalf("energy flows missing: %+v", der)
	}
	if der.PVUsedKWh > der.PVGeneratedKWh {
		t.Fatalf("PV used %g exceeds generated %g", der.PVUsedKWh, der.PVGeneratedKWh)
	}
	if len(der.DailyCostCents) != cfg.Days {
		t.Fatalf("DailyCostCents has %d rows, want %d", len(der.DailyCostCents), cfg.Days)
	}
}

// TestScenarioApplianceInertness pins the composition boundary: adding a
// DER deployment must leave the appliance plane — EMS savings, rewards,
// forecaster accuracy — bit-identical to the same config without a
// scenario. DER agents draw from a disjoint seed block, dispatch runs
// outside the EMS wave, and with the default drop-free all-to-all fabric
// the extra DER-plane rounds consume no shared randomness.
func TestScenarioApplianceInertness(t *testing.T) {
	base := scenarioConfig(MethodPFDRL, nil)
	plain := runScenario(t, base)
	withDER := runScenario(t, scenarioConfig(MethodPFDRL, loadShipped(t, "der_dispatch.json")))
	for name, pair := range map[string][2][]float64{
		"DailySavedKWhPerHome": {plain.DailySavedKWhPerHome, withDER.DailySavedKWhPerHome},
		"DailySavedFrac":       {plain.DailySavedFrac, withDER.DailySavedFrac},
		"DailyMeanReward":      {plain.DailyMeanReward, withDER.DailyMeanReward},
		"PerHomeSavedKWhFinal": {plain.PerHomeSavedKWhFinal, withDER.PerHomeSavedKWhFinal},
		"AccuracySamples":      {plain.AccuracySamples, withDER.AccuracySamples},
	} {
		if !reflect.DeepEqual(pair[0], pair[1]) {
			t.Errorf("%s perturbed by the DER scenario", name)
		}
	}
}

// TestScenarioDREventDay pins the dr-event-day scenario: deterministic
// across runs, and the DR windows genuinely reprice dispatch — an
// event-free twin of the same deployment lands a different net cost.
func TestScenarioDREventDay(t *testing.T) {
	sc := loadShipped(t, "dr_event_day.json")
	cfg := scenarioConfig(MethodPFDRL, sc)
	a := runScenario(t, cfg)
	b := runScenario(t, cfg)
	if !reflect.DeepEqual(a.DER, b.DER) {
		t.Fatalf("dr-event-day not deterministic:\n%+v\n%+v", a.DER, b.DER)
	}
	twin := *sc
	twin.Events = nil
	quiet := runScenario(t, scenarioConfig(MethodPFDRL, &twin))
	if a.DER.CostCents == quiet.DER.CostCents {
		t.Fatalf("DR windows did not reprice dispatch (both %g cents)", a.DER.CostCents)
	}
	if len(a.DER.DailyCostCents) != cfg.Days {
		t.Fatalf("DailyCostCents rows = %d, want %d", len(a.DER.DailyCostCents), cfg.Days)
	}
}

// TestScenarioByzantineDetection pins the byzantine-quorum scenario's
// headline invariant: on a drop-free all-to-all fabric, the per-round
// detection count is exactly what the plan predicts — every honest (and
// attacking) receiver rejects each caught attacker's payload, every
// round, on every plane.
func TestScenarioByzantineDetection(t *testing.T) {
	cfg := scenarioConfig(MethodPFDRL, loadShipped(t, "byzantine_quorum.json"))
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Round schedule: β and γ both fire twice a day (12h periods), the
	// forecast plane once per device type, the EMS plane once.
	roundsPerKind := 2 * cfg.Days
	kinds := len(sys.deviceTypes) + 1
	plan := cfg.Scenario.AdversaryPlan()
	want := 0
	for r := 0; r < roundsPerKind; r++ {
		want += kinds * plan.DetectionsPerRound(cfg.Homes, r)
	}
	if want == 0 {
		t.Fatal("plan predicts no detections; scenario or Defense.Catches regressed")
	}
	if got := res.Resilience.ByzantineRejected; got != want {
		t.Fatalf("ByzantineRejected = %d, want exactly %d (%d kinds x %d rounds)",
			got, want, kinds, roundsPerKind)
	}
	if res.Resilience.DegradedRounds == 0 {
		t.Fatal("byzantine rejections should mark rounds degraded")
	}
	line := res.ResilienceLine()
	if !bytes.Contains([]byte(line), []byte("byzantine-rejects")) {
		t.Fatalf("resilience line omits byzantine tally: %s", line)
	}
	// Determinism: the attack and its detection replay bit-identically.
	res2 := runScenario(t, cfg)
	if res2.Resilience.ByzantineRejected != want {
		t.Fatal("byzantine detection count not deterministic")
	}
	if !reflect.DeepEqual(res.DailyMeanReward, res2.DailyMeanReward) {
		t.Fatal("byzantine run not deterministic")
	}
}

// TestScenarioSeasonalSweep pins the seasonal-sweep scenario: the Seasonal
// block must actually switch the corpus generator into calendar mode (the
// traces differ from the plain corpus) while staying deterministic.
func TestScenarioSeasonalSweep(t *testing.T) {
	sc := loadShipped(t, "seasonal_sweep.json")
	cfg := scenarioConfig(MethodPFDRL, sc)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plainSys, err := NewSystem(scenarioConfig(MethodPFDRL, nil))
	if err != nil {
		t.Fatal(err)
	}
	day0 := sys.homes[0].src.Traces[0].Day(0)
	plain0 := plainSys.homes[0].src.Traces[0].Day(0)
	if reflect.DeepEqual(day0, plain0) {
		t.Fatal("Seasonal block did not change the generated corpus")
	}
	a, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	b := runScenario(t, cfg)
	if !reflect.DeepEqual(a.DailyMeanReward, b.DailyMeanReward) || !reflect.DeepEqual(a.DER, b.DER) {
		t.Fatal("seasonal-sweep run not deterministic")
	}
}

// TestScenarioSnapshotRefused pins the typed error: scenario runtime state
// is not in the v3 checkpoint format, so WriteSnapshot must refuse rather
// than produce a snapshot that resumes into a different run.
func TestScenarioSnapshotRefused(t *testing.T) {
	cfg := scenarioConfig(MethodPFDRL, loadShipped(t, "der_dispatch.json"))
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(sys)
	if err := eng.StepHour(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.WriteSnapshot(&buf); !errors.Is(err, ErrScenarioSnapshot) {
		t.Fatalf("WriteSnapshot = %v, want ErrScenarioSnapshot", err)
	}
	if buf.Len() != 0 {
		t.Fatal("refused snapshot still wrote bytes")
	}
}

// TestScenarioConfigValidation pins the config-level gates: scenario
// validation errors surface through Config.Validate with their field
// paths, and adversary plans demand the decentralized method.
func TestScenarioConfigValidation(t *testing.T) {
	cfg := scenarioConfig(MethodPFDRL, &scenario.Scenario{})
	if err := cfg.Validate(); err == nil {
		t.Fatal("nameless scenario accepted")
	} else {
		var fe *scenario.FieldError
		if !errors.As(err, &fe) || fe.Field != "Name" {
			t.Fatalf("scenario error lost its field path: %v", err)
		}
	}
	byz := loadShipped(t, "byzantine_quorum.json")
	for _, m := range []Method{MethodLocal, MethodCloud, MethodFL, MethodFRL} {
		if err := scenarioConfig(m, byz).Validate(); err == nil {
			t.Fatalf("adversary plan accepted under %s", m)
		}
	}
	if err := scenarioConfig(MethodPFDRL, byz).Validate(); err != nil {
		t.Fatal(err)
	}
}
