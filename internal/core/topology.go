package core

import (
	"fmt"

	"repro/internal/fednet"
)

// Topology kind names accepted by TopologySpec (and the CLI's -topology
// flags). The empty string means "inherit": the plane keeps the method's
// native fabric (all-to-all for PFDRL).
const (
	TopoAllToAll = "all-to-all"
	TopoSampled  = "sampled"
	TopoCluster  = "cluster"
)

// TopologySpec selects a federation fabric for a decentralized plane.
// PFDRL's paper form is all-to-all broadcast (the zero value); sampled
// gossip and hierarchical cluster aggregation trade a slower per-round
// consensus for sub-quadratic message complexity at fleet scale (see
// DESIGN.md §12 for the cost table).
type TopologySpec struct {
	// Kind is one of "", TopoAllToAll, TopoSampled, TopoCluster.
	Kind string
	// K is the per-round peer sample size (sampled only).
	K int
	// ClusterSize groups homes into contiguous clusters of this size
	// (cluster only; the last cluster takes the remainder).
	ClusterSize int
}

// IsZero reports whether the spec inherits the method's native fabric.
func (t TopologySpec) IsZero() bool { return t == (TopologySpec{}) }

// apply overlays the spec onto a fednet config built for the all-to-all
// default. Call validate first; apply assumes a known Kind.
func (t TopologySpec) apply(nc *fednet.Config) {
	switch t.Kind {
	case TopoSampled:
		nc.Topology = fednet.Sampled
		nc.SampleK = t.K
	case TopoCluster:
		nc.Topology = fednet.Cluster
		nc.ClusterSize = t.ClusterSize
	}
}

// validate checks the spec against a fleet of n homes, delegating the
// numeric constraints (k bounds, cluster shapes) to fednet so the CLI,
// core, and fabric agree on one rule set.
func (t TopologySpec) validate(n int) error {
	switch t.Kind {
	case "", TopoAllToAll:
		if t.K != 0 || t.ClusterSize != 0 {
			return fmt.Errorf("core: topology %q takes no K/ClusterSize (have K=%d ClusterSize=%d)",
				TopoAllToAll, t.K, t.ClusterSize)
		}
		return nil
	case TopoSampled, TopoCluster:
		nc := fednet.Config{Topology: fednet.AllToAll}
		t.apply(&nc)
		if err := nc.ValidateTopology(n); err != nil {
			return fmt.Errorf("core: %w", err)
		}
		return nil
	}
	return fmt.Errorf("core: unknown topology kind %q (want %q, %q, or %q)",
		t.Kind, TopoAllToAll, TopoSampled, TopoCluster)
}

// emsTopology resolves the EMS (γ) plane's spec: EMSTopology when set,
// else the shared Topology.
func (c Config) emsTopology() TopologySpec {
	if !c.EMSTopology.IsZero() {
		return c.EMSTopology
	}
	return c.Topology
}

// validateTopologies checks both planes' specs for the configured method.
func (c Config) validateTopologies() error {
	if c.Topology.IsZero() && c.EMSTopology.IsZero() {
		return nil
	}
	if c.Method != MethodPFDRL {
		return fmt.Errorf("core: topology selection applies to the decentralized method %s, not %s",
			MethodPFDRL, c.Method)
	}
	if err := c.Topology.validate(c.Homes); err != nil {
		return fmt.Errorf("%w (forecast plane)", err)
	}
	if err := c.EMSTopology.validate(c.Homes); err != nil {
		return fmt.Errorf("%w (EMS plane)", err)
	}
	return nil
}
