package core

import (
	"bytes"
	"testing"

	"repro/internal/forecast"
)

// fleetBatchConfigs extends the methods × topology × codec equivalence
// matrix with the forecaster kinds that exercise every fleet layer kernel
// (recurrent LSTM/GRU fleets, the BP dense stack) and with TCN, whose
// Conv1D stack cannot fleet and must take the kind-wide per-pair fallback.
func fleetBatchConfigs() map[string]Config {
	cfgs := engineConfigs()
	kinds := map[string]forecast.Kind{
		"PFDRL-lstm": forecast.KindLSTM,
		"FRL-gru":    forecast.KindGRU,
		"Local-bp":   forecast.KindBP,
		"Local-tcn":  forecast.KindTCN,
	}
	methods := map[string]Method{
		"PFDRL-lstm": MethodPFDRL,
		"FRL-gru":    MethodFRL,
		"Local-bp":   MethodLocal,
		"Local-tcn":  MethodLocal,
	}
	for name, kind := range kinds {
		cfg := tinyConfig(methods[name])
		cfg.ForecastKind = kind
		cfg.ForecastHidden = 6
		cfg.Homes, cfg.Days = 2, 2
		cfgs[name] = cfg
	}
	return cfgs
}

// TestFleetBatchEquivalence is the tentpole's contract: the fleet-batched
// forecast plane and the per-home path produce bitwise identical Results
// across methods, topologies, codecs, and forecaster kinds. Config is
// normalized for the knob itself before comparison — it is the one field
// that legitimately differs between the twins.
func TestFleetBatchEquivalence(t *testing.T) {
	for name, cfg := range fleetBatchConfigs() {
		t.Run(name, func(t *testing.T) {
			batched := mustRun(t, cfg)

			solo := cfg
			solo.DisableFleetBatch = true
			want := mustRun(t, solo)

			batched.Config.DisableFleetBatch = true
			assertResultsEqual(t, name, want, batched)
		})
	}
}

// TestFleetBatchSnapshotResume proves v3 snapshots taken mid-run on the
// fleet-batched path resume bit-identically — both back onto the batched
// path and onto the per-home path. The snapshot carries only member state
// (forecaster parameters and counters); the fleet groups hold none of
// their own, so either compute path continues the same run.
func TestFleetBatchSnapshotResume(t *testing.T) {
	cfg := tinyConfig(MethodPFDRL)
	cfg.ForecastKind = forecast.KindLSTM
	cfg.ForecastHidden = 6
	cfg.Homes, cfg.Days = 2, 2
	// Off-period schedules so federation rounds are pending at odd hours.
	cfg.BetaHours, cfg.GammaHours = 5, 7
	want := mustRun(t, cfg)

	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	donor := NewEngine(s)
	stepTo(t, donor, 13) // mid-day, mid-training
	var buf bytes.Buffer
	if err := donor.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	snapshot := append([]byte(nil), buf.Bytes()...)
	assertResultsEqual(t, "donor", want, finishAll(t, donor))

	resumed, err := ResumeEngine(bytes.NewReader(snapshot))
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, "resumed-batched", want, finishAll(t, resumed))

	// Cross-path resume: the same snapshot continued on the per-home path
	// must land on the same bits (the batched run's checkpoints are not
	// tied to the batched kernels).
	crossed, err := ResumeEngine(bytes.NewReader(snapshot))
	if err != nil {
		t.Fatal(err)
	}
	crossed.sys.cfg.DisableFleetBatch = true
	assertResultsEqual(t, "resumed-per-home", want, finishAll(t, crossed))
}

// TestFleetBatchFallbackTriggers pins when the fleet cache must stay
// empty: the knob, an unfleetable kind, and duplicate device types within
// a home (simulated by marking the grain unsafe).
func TestFleetBatchFallbackTriggers(t *testing.T) {
	build := func(mut func(*Config)) *System {
		cfg := tinyConfig(MethodLocal)
		mut(&cfg)
		s, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := build(func(c *Config) {})
	s.ensureFcFleets()
	if len(s.fcFleets) == 0 {
		t.Fatal("LR fleet should batch")
	}
	if got := len(s.fcFleets[0].pairs); got != s.cfg.Homes {
		t.Fatalf("group spans %d homes, want %d", got, s.cfg.Homes)
	}

	s = build(func(c *Config) { c.DisableFleetBatch = true })
	s.ensureFcFleets()
	if len(s.fcFleets) != 0 {
		t.Fatal("DisableFleetBatch must keep the cache empty")
	}

	s = build(func(c *Config) { c.ForecastKind = forecast.KindTCN })
	s.ensureFcFleets()
	if len(s.fcFleets) != 0 {
		t.Fatal("TCN cannot fleet; cache must stay empty")
	}

	s = build(func(c *Config) {})
	s.ensureHomeDevs()
	s.homeDevGrainSafe = false // duplicate device types share a forecaster
	s.ensureFcFleets()
	if len(s.fcFleets) != 0 {
		t.Fatal("grain-unsafe corpus must keep the cache empty")
	}
}
