package core

import (
	"bytes"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	cfg := tinyConfig(MethodPFDRL)
	cfg.Days = 2
	trained, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trained.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trained.SaveModels(&buf); err != nil {
		t.Fatal(err)
	}

	fresh, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadModels(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Restored parameters match exactly, including the synced target nets.
	for hi := range trained.homes {
		tp := trained.homes[hi].agent.Online.Params()
		fp := fresh.homes[hi].agent.Online.Params()
		for j := range tp {
			if !tp[j].Equal(fp[j]) {
				t.Fatalf("home %d agent param %d differs after restore", hi, j)
			}
		}
		tt := fresh.homes[hi].agent.Target.Params()
		for j := range tp {
			if !tp[j].Equal(tt[j]) {
				t.Fatalf("home %d target net not synced on load", hi)
			}
		}
		for dt, fc := range trained.homes[hi].fcs {
			a := fc.Model().Params()
			b := fresh.homes[hi].fcs[dt].Model().Params()
			for j := range a {
				if !a[j].Equal(b[j]) {
					t.Fatalf("home %d %s forecaster param %d differs", hi, dt, j)
				}
			}
		}
	}
}

func TestCheckpointRejectsMismatch(t *testing.T) {
	cfg := tinyConfig(MethodPFDRL)
	a, _ := NewSystem(cfg)
	var buf bytes.Buffer
	if err := a.SaveModels(&buf); err != nil {
		t.Fatal(err)
	}
	// Different home count.
	cfg2 := cfg
	cfg2.Homes = cfg.Homes + 1
	b, _ := NewSystem(cfg2)
	if err := b.LoadModels(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("home-count mismatch accepted")
	}
	// Different architecture.
	cfg3 := cfg
	cfg3.DQNHidden = []int{7, 7}
	c, _ := NewSystem(cfg3)
	if err := c.LoadModels(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("architecture mismatch accepted")
	}
	// Garbage header.
	d, _ := NewSystem(cfg)
	if err := d.LoadModels(bytes.NewReader([]byte("not a checkpoint at all....."))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Truncated stream.
	e, _ := NewSystem(cfg)
	if err := e.LoadModels(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}
