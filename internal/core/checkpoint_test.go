package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/forecast"
)

func TestCheckpointRoundTrip(t *testing.T) {
	cfg := tinyConfig(MethodPFDRL)
	cfg.Days = 2
	trained, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trained.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trained.SaveModels(&buf); err != nil {
		t.Fatal(err)
	}

	fresh, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadModels(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Restored parameters match exactly, including the synced target nets.
	for hi := range trained.homes {
		tp := trained.homes[hi].agent.Online.Params()
		fp := fresh.homes[hi].agent.Online.Params()
		for j := range tp {
			if !tp[j].Equal(fp[j]) {
				t.Fatalf("home %d agent param %d differs after restore", hi, j)
			}
		}
		tt := fresh.homes[hi].agent.Target.Params()
		for j := range tp {
			if !tp[j].Equal(tt[j]) {
				t.Fatalf("home %d target net not synced on load", hi)
			}
		}
		for dt, fc := range trained.homes[hi].fcs {
			a := fc.Model().Params()
			b := fresh.homes[hi].fcs[dt].Model().Params()
			for j := range a {
				if !a[j].Equal(b[j]) {
					t.Fatalf("home %d %s forecaster param %d differs", hi, dt, j)
				}
			}
		}
	}
}

func TestCheckpointRejectsMismatch(t *testing.T) {
	cfg := tinyConfig(MethodPFDRL)
	a, _ := NewSystem(cfg)
	var buf bytes.Buffer
	if err := a.SaveModels(&buf); err != nil {
		t.Fatal(err)
	}
	// Different home count.
	cfg2 := cfg
	cfg2.Homes = cfg.Homes + 1
	b, _ := NewSystem(cfg2)
	if err := b.LoadModels(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("home-count mismatch accepted")
	}
	// Different architecture.
	cfg3 := cfg
	cfg3.DQNHidden = []int{7, 7}
	c, _ := NewSystem(cfg3)
	if err := c.LoadModels(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("architecture mismatch accepted")
	}
	// Garbage header.
	d, _ := NewSystem(cfg)
	if err := d.LoadModels(bytes.NewReader([]byte("not a checkpoint at all....."))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Truncated stream.
	e, _ := NewSystem(cfg)
	if err := e.LoadModels(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

// TestCheckpointConfigMismatchIsTyped pins the v2 format's diagnostic
// contract: a mismatched load fails up front with a ConfigMismatchError
// naming the exact field, before any parameter bytes are consumed.
func TestCheckpointConfigMismatchIsTyped(t *testing.T) {
	cfg := tinyConfig(MethodPFDRL)
	src, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.SaveModels(&buf); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		field  string
		mutate func(*Config)
	}{
		{"Homes", func(c *Config) { c.Homes++ }},
		{"DevicesPerHome", func(c *Config) { c.DevicesPerHome++ }},
		{"Alpha", func(c *Config) { c.Alpha++ }},
		{"ForecastKind", func(c *Config) { c.ForecastKind = forecast.KindBP }},
		{"DQNHidden", func(c *Config) { c.DQNHidden = []int{7, 7} }},
	}
	for _, tc := range cases {
		t.Run(tc.field, func(t *testing.T) {
			other := cfg
			tc.mutate(&other)
			sys, err := NewSystem(other)
			if err != nil {
				t.Fatal(err)
			}
			err = sys.LoadModels(bytes.NewReader(buf.Bytes()))
			var mm *ConfigMismatchError
			if !errors.As(err, &mm) {
				t.Fatalf("want ConfigMismatchError, got %v", err)
			}
			if mm.Field != tc.field {
				t.Fatalf("mismatch reported on %q, want %q (error: %v)", mm.Field, tc.field, mm)
			}
		})
	}
}

// TestCheckpointCorruptHeaders exercises the header parser's failure
// modes: truncation inside each header section and an implausible
// config length (the corrupt-header case).
func TestCheckpointCorruptHeaders(t *testing.T) {
	cfg := tinyConfig(MethodPFDRL)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.SaveModels(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	cuts := []struct {
		name string
		n    int
	}{
		{"empty", 0},
		{"mid-magic", 2},
		{"after-magic", 4},
		{"mid-version", 6},
		{"after-version", 8},
		{"mid-config-length", 10},
		{"mid-config", 20},
	}
	for _, c := range cuts {
		t.Run("truncated-"+c.name, func(t *testing.T) {
			fresh, _ := NewSystem(cfg)
			if err := fresh.LoadModels(bytes.NewReader(full[:c.n])); err == nil {
				t.Fatalf("truncation at byte %d accepted", c.n)
			}
		})
	}

	t.Run("implausible-config-length", func(t *testing.T) {
		corrupt := append([]byte(nil), full...)
		binary.LittleEndian.PutUint32(corrupt[8:12], 1<<30)
		fresh, _ := NewSystem(cfg)
		if err := fresh.LoadModels(bytes.NewReader(corrupt)); err == nil {
			t.Fatal("implausible config length accepted")
		}
	})

	t.Run("unknown-version", func(t *testing.T) {
		corrupt := append([]byte(nil), full...)
		binary.LittleEndian.PutUint32(corrupt[4:8], 99)
		fresh, _ := NewSystem(cfg)
		if err := fresh.LoadModels(bytes.NewReader(corrupt)); err == nil {
			t.Fatal("unknown version accepted")
		}
	})
}

// TestCheckpointKindSentinels pins the cross-kind sentinels: LoadModels
// refuses a full-fleet snapshot with ErrSnapshotCheckpoint, ResumeEngine
// refuses a models-only checkpoint with ErrModelsOnlyCheckpoint.
func TestCheckpointKindSentinels(t *testing.T) {
	cfg := tinyConfig(MethodPFDRL)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var models bytes.Buffer
	if err := sys.SaveModels(&models); err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeEngine(bytes.NewReader(models.Bytes())); !errors.Is(err, ErrModelsOnlyCheckpoint) {
		t.Fatalf("ResumeEngine on models checkpoint: %v, want ErrModelsOnlyCheckpoint", err)
	}

	eng := NewEngine(sys)
	if err := eng.StepHour(); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := eng.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	fresh, _ := NewSystem(cfg)
	if err := fresh.LoadModels(bytes.NewReader(snap.Bytes())); !errors.Is(err, ErrSnapshotCheckpoint) {
		t.Fatalf("LoadModels on snapshot: %v, want ErrSnapshotCheckpoint", err)
	}
}

// TestLegacyV1CheckpointStillLoads pins backward compatibility: a v1
// stream (count-only header) hand-assembled from a v2 body still loads.
func TestLegacyV1CheckpointStillLoads(t *testing.T) {
	cfg := tinyConfig(MethodPFDRL)
	src, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var v2 bytes.Buffer
	if err := src.SaveModels(&v2); err != nil {
		t.Fatal(err)
	}
	// Parse past the v2 header to find where the parameter stream starts.
	cfgLen := binary.LittleEndian.Uint32(v2.Bytes()[8:12])
	params := v2.Bytes()[12+cfgLen:]

	var v1 bytes.Buffer
	v1.WriteString(checkpointMagic)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], versionModelsLegacy)
	v1.Write(u32[:])
	binary.LittleEndian.PutUint32(u32[:], uint32(cfg.Homes))
	v1.Write(u32[:])
	binary.LittleEndian.PutUint32(u32[:], uint32(len(src.deviceTypes)))
	v1.Write(u32[:])
	v1.Write(params)

	fresh, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadModels(bytes.NewReader(v1.Bytes())); err != nil {
		t.Fatalf("legacy v1 checkpoint rejected: %v", err)
	}
	for j, p := range src.homes[0].agent.Online.Params() {
		if !p.Equal(fresh.homes[0].agent.Online.Params()[j]) {
			t.Fatalf("home 0 agent param %d differs after legacy load", j)
		}
	}
}
