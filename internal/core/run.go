package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/dqn"
	"repro/internal/energy"
	"repro/internal/fed"
	"repro/internal/fednet"
	"repro/internal/forecast"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/pecan"
	"repro/internal/sched"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// rawDayBytes is the wire size of one device-day of raw minute data — what
// the Cloud baseline uploads instead of model parameters.
const rawDayBytes = pecan.MinutesPerDay * 8

// firesInHour counts how many broadcast instants of a period (in hours)
// fall inside the hour ending at absolute minute hourEnd (exclusive).
func firesInHour(periodHours float64, hourEnd int) int {
	sched := fed.Schedule{PeriodHours: periodHours}
	fires := 0
	for m := hourEnd - 59; m <= hourEnd; m++ {
		if sched.Due(m) {
			fires++
		}
	}
	return fires
}

// Run simulates cfg.Days days and returns the collected Result. It is a
// thin driver over the stepwise Engine — NewEngine, StepDay until done,
// Finish — and the twin-run tests pin it bit-identical to manual stepping.
func (s *System) Run() (*Result, error) {
	eng := NewEngine(s)
	for !eng.Done() {
		if err := eng.StepDay(); err != nil {
			return nil, err
		}
	}
	return eng.Finish()
}

// setNetClock advances both fabric clocks to the given simulated minute.
func (s *System) setNetClock(minute int) {
	if s.fcNet != nil {
		s.fcNet.SetNow(minute)
	}
	if s.drlNet != nil {
		s.drlNet.SetNow(minute)
	}
}

// parallelHomes runs fn for every home on the shared persistent pool and
// waits. Homes are fully independent between federation rounds (private
// agents, forecasters, environments, RNG streams), so this preserves
// serial-run results exactly. Unlike a goroutine-per-home fan-out, idle
// workers steal remaining homes, so one slow home cannot strand the wave
// behind the scheduler.
func (s *System) parallelHomes(fn func(h *simHome)) {
	homes := s.homes
	sched.Default().ParallelForCost(&s.homeCost, len(homes), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(homes[i])
		}
	})
}

// homeDevice flattens the (home, device) grid into pool tasks for the
// forecast phases, where every pair is independent work.
type homeDevice struct {
	h  *simHome
	di int
}

// parallelHomeDevices runs fn for every (home, device) pair on the shared
// pool and waits; idx is the pair's stable flat index (home-major), usable
// for result and timing slots without synchronization. Pair-grained tasks
// shard finer than whole homes, so a home with an expensive device does not
// serialize its siblings behind it.
//
// Forecasters are keyed by device type within a home: when every home's
// traces carry distinct types (true for generated corpora) each pair owns
// its forecaster and single-pair grain is safe. A corpus with duplicate
// types in one home shares a forecaster between pairs, so the wave falls
// back to home-grained chunks, keeping each home's devices on one worker.
func (s *System) parallelHomeDevices(fn func(idx int, h *simHome, di int)) {
	s.ensureHomeDevs()
	if !s.homeDevGrainSafe {
		s.parallelHomes(func(h *simHome) {
			off := s.homeDevOff[h.id]
			for di := range h.src.Traces {
				fn(off+di, h, di)
			}
		})
		return
	}
	devs := s.homeDevs
	sched.Default().ParallelForCost(&s.homeDevCost, len(devs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i, devs[i].h, devs[i].di)
		}
	})
}

// ensureHomeDevs builds the flattened task grid on first use.
func (s *System) ensureHomeDevs() {
	if s.homeDevs != nil {
		return
	}
	s.homeDevGrainSafe = true
	s.homeDevOff = make([]int, len(s.homes)+1)
	for hi, h := range s.homes {
		s.homeDevOff[hi] = len(s.homeDevs)
		seen := map[string]bool{}
		for di, tr := range h.src.Traces {
			if seen[tr.Device.Type] {
				s.homeDevGrainSafe = false
			}
			seen[tr.Device.Type] = true
			s.homeDevs = append(s.homeDevs, homeDevice{h, di})
		}
	}
	s.homeDevOff[len(s.homes)] = len(s.homeDevs)
}

// fcFleetGroup is one device type's fleet-batched compute group: every
// home owning that type, in home order, behind one forecast.HomeBatch that
// trains and queries all of their forecasters through fleet kernels.
type fcFleetGroup struct {
	dt     string
	hb     *forecast.HomeBatch
	pairs  []homeDevice
	window int
	series [][]float64 // reusable per-wave member series list
}

// ensureFcFleets lazily builds the forecast plane's fleet-batched groups.
// Construction is all-or-nothing: HomeBatch refuses members only for
// kind-wide reasons (an architecture fleet kernels cannot express, e.g.
// TCN's Conv1D stack), so on any error the cache stays empty and every
// forecast wave takes the per-pair path. The cache also stays empty when
// DisableFleetBatch is set, or when a home repeats a device type — its
// pairs would share one forecaster, breaking member lockstep.
//
// The groups hold no model state of their own: HomeBatch gathers live
// member parameters before every batched op and scatters updates back, so
// federation rounds and snapshot restores that rewrite member parameters
// between waves are picked up automatically.
func (s *System) ensureFcFleets() {
	if s.fcFleetsBuilt {
		return
	}
	s.fcFleetsBuilt = true
	if s.cfg.DisableFleetBatch {
		return
	}
	s.ensureHomeDevs()
	if !s.homeDevGrainSafe {
		return
	}
	byType := map[string][]homeDevice{}
	for _, hd := range s.homeDevs {
		dt := hd.h.src.Traces[hd.di].Device.Type
		byType[dt] = append(byType[dt], hd)
	}
	var groups []*fcFleetGroup
	for _, dt := range s.deviceTypes {
		pairs := byType[dt]
		if len(pairs) == 0 {
			continue
		}
		fcs := make([]forecast.Forecaster, len(pairs))
		for i, p := range pairs {
			fcs[i] = p.h.fcs[dt]
		}
		hb, err := forecast.NewHomeBatch(fcs)
		if err != nil {
			return
		}
		groups = append(groups, &fcFleetGroup{
			dt: dt, hb: hb, pairs: pairs,
			window: fcs[0].Config().Window,
			series: make([][]float64, len(pairs)),
		})
	}
	s.fcFleets = groups
}

// predictDayWave fills every home's predDay for the given day, charging
// per-task compute to the timer's "fc-test" series (the caller times the
// wave's wall clock). With fleet batching available, each device type is
// one batched multi-home forward; otherwise every (home, device) pair
// predicts concurrently on the pool.
func (s *System) predictDayWave(timer *metrics.Timer, day int) {
	s.ensureFcFleets()
	if len(s.fcFleets) > 0 {
		for _, g := range s.fcFleets {
			t0 := time.Now()
			s.predictGroupDay(g, day)
			timer.Add("fc-test", time.Since(t0))
		}
		return
	}
	s.ensureHomeDevs()
	if s.pairDurs == nil {
		s.pairDurs = make([]time.Duration, len(s.homeDevs))
	}
	s.parallelHomeDevices(func(idx int, h *simHome, di int) {
		start := time.Now()
		h.predDay[di] = s.predictDay(h, h.src.Traces[di], day)
		s.pairDurs[idx] = time.Since(start)
	})
	for _, d := range s.pairDurs {
		timer.Add("fc-test", d)
	}
}

// predictGroupDay builds the day's per-minute forecasts for every member
// of one fleet group through a single batched model forward — the
// multi-home analogue of predictDay, bit-identical to it member by member
// (HomeBatch.PredictBatch item i matches member i's Predict exactly).
func (s *System) predictGroupDay(g *fcFleetGroup, day int) {
	var hours, ts []int
	for hour := 0; hour < 24; hour++ {
		if t := day*pecan.MinutesPerDay + hour*60; t >= g.window {
			hours = append(hours, hour)
			ts = append(ts, t)
		}
	}
	off := 0
	for i, p := range g.pairs {
		tr := p.h.src.Traces[p.di]
		pred := make([]float64, pecan.MinutesPerDay)
		for hour := 0; hour < 24; hour++ {
			if day*pecan.MinutesPerDay+hour*60 < g.window {
				// No history yet (first window of day 0): assume standby,
				// the dominant mode — same fallback as predictDay.
				for m := 0; m < 60; m++ {
					pred[hour*60+m] = tr.Device.StandbyKW
				}
			}
		}
		p.h.predDay[p.di] = pred
		// Day-aligned history window: the offset depends only on (day,
		// g.window) and the backing, both uniform across the group, so one
		// shared shift below serves every member.
		g.series[i], off = tr.DayWithHistory(day, g.window)
	}
	if len(hours) == 0 {
		return
	}
	if off != 0 {
		for i := range ts {
			ts[i] -= off
		}
	}
	rows := g.hb.PredictBatch(g.series, ts)
	for mi, p := range g.pairs {
		pred := p.h.predDay[p.di]
		item := rows.Item(mi)
		for i, hour := range hours {
			copy(pred[hour*60:(hour+1)*60], item.Row(i))
		}
	}
}

// predictDay builds the day's per-minute forecast for one device by
// chaining 24 next-hour predictions, each made causally from history. All
// predictable hours go through one batched model forward when the
// forecaster supports it; batch rows are processed independently by every
// model, so the output is bit-identical to 24 sequential Predict calls.
func (s *System) predictDay(h *simHome, tr *pecan.Trace, day int) []float64 {
	fc := h.fcs[tr.Device.Type]
	w := fc.Config().Window
	pred := make([]float64, pecan.MinutesPerDay)
	var hours, ts []int
	for hour := 0; hour < 24; hour++ {
		t := day*pecan.MinutesPerDay + hour*60
		if t < w {
			// No history yet (first window of day 0): assume standby, the
			// dominant mode.
			for m := 0; m < 60; m++ {
				pred[hour*60+m] = tr.Device.StandbyKW
			}
			continue
		}
		hours = append(hours, hour)
		ts = append(ts, t)
	}
	if len(hours) == 0 {
		return pred
	}
	// The day-aligned history window is bit-exact versus handing over the
	// whole series: the offset is a multiple of MinutesPerDay, so the
	// forecaster's minute-of-day phase features are unchanged, and (with t
	// already ≥ w) every lag read stays inside the window.
	series, off := tr.DayWithHistory(day, w)
	if off != 0 {
		for i := range ts {
			ts[i] -= off
		}
	}
	if bp, ok := fc.(forecast.BatchPredictor); ok {
		rows := bp.PredictBatch(series, ts)
		for i, hour := range hours {
			copy(pred[hour*60:(hour+1)*60], rows.Row(i))
		}
		return pred
	}
	for i, hour := range hours {
		copy(pred[hour*60:(hour+1)*60], fc.Predict(series, ts[i]))
	}
	return pred
}

// collectAccuracy appends the day's per-minute accuracies to the result.
func (s *System) collectAccuracy(res *Result, buckets *metrics.HourBuckets, h *simHome, day int) {
	for di, tr := range h.src.Traces {
		floor := forecast.FloorFor(tr.Device.OnKW)
		acc := forecast.Accuracy(h.predDay[di], tr.Day(day), floor)
		for m, a := range acc {
			buckets.Add(m, a)
			if m%3 == 0 { // subsample the CDF corpus
				res.AccuracySamples = append(res.AccuracySamples, a)
			}
		}
	}
}

// emsHourStats aggregates one home-hour of EMS activity.
type emsHourStats struct {
	// savedKWh counts standby energy the agent switched off; standbyKWh is
	// what was available to save.
	savedKWh, standbyKWh float64
	rewardSum            float64
	steps                int
	// testDur covers observation building and action selection; trainDur
	// covers replay writes and learning.
	testDur, trainDur time.Duration
}

// runEMSHour advances one home's agent through 60 minutes of all its
// device environments, learning on the configured cadence. It touches only
// home-local state and is safe to run concurrently across homes.
func (s *System) runEMSHour(h *simHome, envs []*energy.Env, hour int) emsHourStats {
	cfg := s.cfg
	var st emsHourStats
	for m := hour * 60; m < (hour+1)*60; m++ {
		// One decision batch per minute: every device's observation fills
		// its own row of h.stateRows (home-owned scratch; Observe's replay
		// buffer copies what it keeps, see DESIGN.md "Memory model & buffer
		// ownership"), then the agent resolves all ε-greedy decisions with a
		// single batched greedy forward — bit-identical to per-device
		// SelectAction calls (see dqn.Agent.SelectActions).
		t0 := time.Now()
		for ei, env := range envs {
			s.stateInto(h.stateRows.Row(ei), env, m)
		}
		h.agent.SelectActions(h.stateRows, h.actions)
		st.testDur += time.Since(t0)
		for ei, env := range envs {
			state := h.stateRows.Row(ei)
			action := energy.Mode(h.actions[ei])

			truth := env.TruthAt(m)
			r := energy.Reward(truth, action)
			st.rewardSum += r
			st.steps++
			done := m == pecan.MinutesPerDay-1
			var next []float64
			if !done {
				next = s.stateInto(h.obsNext, env, m+1)
			}
			t0 = time.Now()
			h.agent.Observe(dqn.Transition{State: state, Action: int(action), Reward: r, Next: next, Done: done})
			st.trainDur += time.Since(t0)

			if truth == energy.Standby {
				kwh := env.Device.StandbyKW / 60
				st.standbyKWh += kwh
				if action == energy.Off {
					st.savedKWh += kwh
				}
			}
		}
		if m%cfg.LearnEveryMinutes == 0 {
			t0 := time.Now()
			h.agent.Learn()
			st.trainDur += time.Since(t0)
		}
	}
	return st
}

// trainForecasters runs one local training bout per (home, device) on the
// recent history window ending at absolute minute end. Pairs train
// concurrently on the shared pool; the timer accumulates total compute
// across tasks ("fc-train", the quantity the overhead figures compare) and
// the wave's elapsed time ("fc-train.wall").
func (s *System) trainForecasters(timer *metrics.Timer, end int) error {
	// Pending β rounds write into the very models this bout trains.
	if err := s.joinForecastRounds(timer); err != nil {
		return err
	}
	cfg := s.cfg
	lookback := cfg.TrainLookbackHours * 60
	epochs := cfg.TrainBoutEpochs
	if epochs < 1 {
		epochs = 1
	}
	window := func(tr *pecan.Trace) []float64 {
		start := end - lookback
		if start < 0 {
			start = 0
		}
		stop := end
		if stop > tr.Len() {
			stop = tr.Len()
		}
		// Training reads the window with relative phases, so a materialized
		// copy is bit-equivalent to the old whole-series slice. Each trace
		// owns its Window scratch, so the fleet path can hold every member's
		// window at once and the home-parallel path stays race-free.
		return tr.Window(start, stop)
	}
	s.ensureHomeDevs()
	waveStart := time.Now()
	s.ensureFcFleets()
	if len(s.fcFleets) > 0 {
		// Fleet-batched bout: one lockstep TrainEpochs per device type,
		// every member's epochs riding the same batched kernel dispatches.
		for _, g := range s.fcFleets {
			t0 := time.Now()
			for i, p := range g.pairs {
				g.series[i] = window(p.h.src.Traces[p.di])
			}
			if _, ok := g.hb.TrainEpochs(g.series, epochs); !ok {
				// Ragged member windows (uneven trace lengths): the lockstep
				// path declined before mutating anything; train member by
				// member instead.
				for i, p := range g.pairs {
					p.h.fcs[g.dt].TrainEpochs(g.series[i], epochs)
				}
			}
			timer.Add("fc-train", time.Since(t0))
		}
		timer.Add("fc-train.wall", time.Since(waveStart))
		return nil
	}
	if s.pairDurs == nil {
		s.pairDurs = make([]time.Duration, len(s.homeDevs))
	}
	s.parallelHomeDevices(func(idx int, h *simHome, di int) {
		t0 := time.Now()
		tr := h.src.Traces[di]
		h.fcs[tr.Device.Type].TrainEpochs(window(tr), epochs)
		s.pairDurs[idx] = time.Since(t0)
	})
	timer.Add("fc-train.wall", time.Since(waveStart))
	for _, d := range s.pairDurs {
		timer.Add("fc-train", d)
	}
	return nil
}

// forecastRound performs one forecast-plane federation round (plus charges
// any extra sub-hourly fires). For the decentralized method only the
// transport half runs here; aggregation overlaps the EMS compute that
// follows, and the result installs at the next joinForecastRounds (before
// anything reads the forecaster models again).
func (s *System) forecastRound(timer *metrics.Timer, fires int) error {
	if err := s.joinForecastRounds(timer); err != nil {
		return err
	}
	t0 := time.Now()
	defer func() {
		d := time.Since(t0)
		timer.Add("fc-train", d)
		timer.Add("fc-train.wall", d)
	}()
	for _, dt := range s.deviceTypes {
		var models []*nn.Sequential
		if s.cfg.Method == MethodPFDRL {
			for _, h := range s.homes {
				models = append(models, h.fcs[dt].Model())
			}
			if s.fcRoundWS == nil {
				s.fcRoundWS = make(map[string]*fed.RoundWorkspace)
			}
			ws := s.fcRoundWS[dt]
			if ws == nil {
				ws = &fed.RoundWorkspace{Comms: s.fcComms, Tel: s.fcRoundTel, Adv: s.adversary()}
				s.fcRoundWS[dt] = ws
			}
			switch s.fcNet.Config().Topology {
			case fednet.Sampled:
				s.fcPending = append(s.fcPending, fed.BeginSampledGossipRound(s.fcNet, models, "fc/"+dt, -1, ws))
			case fednet.Cluster:
				// The cluster reduction is synchronous (members must hear
				// the download before training resumes), so it lands here
				// rather than through fcPending.
				rep, err := fed.ClusterRound(s.fcNet, models, "fc/"+dt, -1, ws)
				if err != nil {
					return err
				}
				s.resil.absorb(rep)
				s.fcCommsTot.Absorb(rep)
				s.noteRound("forecast", rep)
			default:
				s.fcPending = append(s.fcPending, fed.BeginDecentralizedRound(s.fcNet, models, "fc/"+dt, -1, ws))
			}
		} else { // FL, FRL: star with the hub as pure server
			models = append(models, s.hubFcs[dt].Model())
			for _, h := range s.homes {
				models = append(models, h.fcs[dt].Model())
			}
			rep, err := fed.CentralizedRound(s.fcNet, models, "fc/"+dt, -1, true)
			if err != nil && !errors.Is(err, fed.ErrRoundStarved) {
				return err
			}
			// A starved hub (every upload lost or corrupt) skips the
			// period; spokes keep their local models.
			s.resil.absorb(rep)
			s.fcCommsTot.Absorb(rep)
			s.noteRound("forecast", rep)
		}
		chargeRefires(s.fcNet, &s.fcCommsTot, s.fcComms, models[0].Params(), models[0].WireSize(), fires-1)
	}
	return nil
}

// chargeRefires accounts extra sub-period broadcast fires on one plane
// without re-running the exchange (averaging unchanged parameters is an
// idempotent no-op, but the fabric cost is real). With a wire codec
// attached, a refire payload is the closed-form re-broadcast size —
// wire.RefireSize, a few bytes of zero-run tokens under the delta codec —
// instead of the full dense blob; the dense baseline still accrues at
// wire.DenseSize so the savings show up in the plane's CompressionRatio.
func chargeRefires(net *fednet.Network, tot *fed.CommsTotals, x *wire.Exchange, params []*tensor.Matrix, denseSize, fires int) {
	if fires <= 0 {
		return
	}
	size := denseSize
	if x != nil {
		size = wire.RefireSize(x.Options(), params)
	}
	st0 := net.Stats()
	net.ChargeBroadcastRounds(size, fires)
	st := net.Stats()
	sent := st.BytesSent - st0.BytesSent
	dense := sent
	if x != nil {
		dense = int64(st.MessagesSent-st0.MessagesSent) * int64(wire.DenseSize(params))
	}
	tot.Add(sent, 0, dense)
}

// joinForecastRounds lands every in-flight forecast-plane round: waits for
// background aggregation, installs the staged means into the live
// forecaster models, and absorbs the round reports. Any code that reads or
// trains forecaster models joins first; the wait (usually zero — the
// aggregation finished under the EMS hours) is charged to both fc-train
// series.
func (s *System) joinForecastRounds(timer *metrics.Timer) error {
	if len(s.fcPending) == 0 {
		return nil
	}
	t0 := time.Now()
	for _, p := range s.fcPending {
		rep, err := p.Join()
		if err != nil {
			return err
		}
		s.resil.absorb(rep)
		s.fcCommsTot.Absorb(rep)
		s.noteRound("forecast", rep)
	}
	s.fcPending = s.fcPending[:0]
	d := time.Since(t0)
	timer.Add("fc-train", d)
	timer.Add("fc-train.wall", d)
	return nil
}

// emsRound performs one EMS-plane federation round: full FedAvg of the DQN
// through the cloud for FRL, FedPer base-layer averaging over the LAN for
// PFDRL. Target networks are re-synced to the aggregated online networks.
func (s *System) emsRound(timer *metrics.Timer, fires int) error {
	timer.Start("ems-train")
	defer timer.Stop("ems-train")
	var models []*nn.Sequential
	switch s.cfg.Method {
	case MethodPFDRL:
		for _, h := range s.homes {
			models = append(models, h.agent.Online)
		}
		alpha := s.cfg.sharedTrainableLayers()
		// Synchronous (the next minute's actions read the averaged DQN),
		// but routed through the workspace so repeated γ rounds reuse their
		// marshal, snapshot, and staging buffers.
		ws := s.emsWorkspace()
		var rep fed.RoundReport
		var err error
		switch s.drlNet.Config().Topology {
		case fednet.Sampled:
			rep, err = fed.BeginSampledGossipRound(s.drlNet, models, "drl", alpha, ws).Join()
		case fednet.Cluster:
			rep, err = fed.ClusterRound(s.drlNet, models, "drl", alpha, ws)
		default:
			rep, err = fed.BeginDecentralizedRound(s.drlNet, models, "drl", alpha, ws).Join()
		}
		if err != nil {
			return err
		}
		s.resil.absorb(rep)
		s.emsCommsTot.Absorb(rep)
		s.noteRound("ems", rep)
		if fires > 1 {
			shared := models[0].Params()
			if alpha >= 0 {
				shared = models[0].ParamsOfTrainableRange(0, alpha)
			}
			chargeRefires(s.drlNet, &s.emsCommsTot, s.drlComms, shared, nn.ParamsWireSize(shared), fires-1)
		}
	case MethodFRL:
		models = append(models, s.hubAgent.Online)
		for _, h := range s.homes {
			models = append(models, h.agent.Online)
		}
		rep, err := fed.CentralizedRound(s.drlNet, models, "drl", -1, true)
		if err != nil && !errors.Is(err, fed.ErrRoundStarved) {
			return err
		}
		s.resil.absorb(rep)
		s.emsCommsTot.Absorb(rep)
		s.noteRound("ems", rep)
		chargeRefires(s.drlNet, &s.emsCommsTot, nil, nil, models[0].WireSize(), fires-1)
	default:
		return fmt.Errorf("core: emsRound called for method %s", s.cfg.Method)
	}
	for _, h := range s.homes {
		h.agent.SyncTarget()
	}
	return nil
}

// cloudDay implements the Cloud baseline's nightly cycle: every home
// uploads its raw day of device data, the cloud trains one global
// forecaster per device type on the uploaded histories, and ships the
// refreshed model back to every home.
func (s *System) cloudDay(timer *metrics.Timer, day int) {
	timer.Start("fc-train")
	defer timer.Stop("fc-train")
	end := (day + 1) * pecan.MinutesPerDay
	lookback := s.cfg.TrainLookbackHours * 60

	// Raw uploads (payload contents are irrelevant to the simulation; the
	// fabric charges by size).
	blob := make([]byte, rawDayBytes)
	for hi, h := range s.homes {
		for range h.src.Traces {
			_ = s.fcNet.Send(hi+1, 0, "raw", blob)
		}
	}
	s.fcNet.Collect(0)

	// Cloud-side training: sequential SGD over a rotating subset of homes
	// (bounding cloud compute at a few homes per night).
	const cloudHomesPerNight = 3
	for _, dt := range s.deviceTypes {
		global := s.hubFcs[dt]
		for k := 0; k < cloudHomesPerNight && k < len(s.homes); k++ {
			h := s.homes[(day*cloudHomesPerNight+k)%len(s.homes)]
			tr := h.src.TraceByType(dt)
			if tr == nil {
				continue
			}
			start := end - lookback
			if start < 0 {
				start = 0
			}
			epochs := s.cfg.TrainBoutEpochs
			if epochs < 1 {
				epochs = 1
			}
			global.TrainEpochs(tr.Window(start, end), epochs)
		}
		// Model download to every home.
		payload := fed.MarshalParams(global.Model().Params())
		for hi, h := range s.homes {
			_ = s.fcNet.Send(0, hi+1, "model/"+dt, payload)
			h.fcs[dt].Model().CopyParamsFrom(global.Model())
		}
	}
	for hi := range s.homes {
		s.fcNet.Collect(hi + 1)
	}
}
