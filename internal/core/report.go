package core

import (
	"fmt"
	"time"

	"repro/internal/fed"
	"repro/internal/fednet"
)

// CommsLines summarizes each federation plane's traffic as one printable
// line per active plane: fabric totals (messages, megabytes, simulated wire
// time) plus, when the plane ran federation rounds, the per-round cost and
// compression ratio against the dense baseline. Planes with no traffic are
// omitted; Local runs return nil. Both CLI front-ends print these verbatim
// so the two reports cannot drift apart.
func (r *Result) CommsLines() []string {
	var lines []string
	for _, p := range []struct {
		name string
		st   fednet.Stats
		simT time.Duration
		tot  fed.CommsTotals
	}{
		{"forecast", r.ForecastNetStats, r.ForecastCommTime, r.ForecastComms},
		{"ems", r.EMSNetStats, r.EMSCommTime, r.EMSComms},
	} {
		if p.st.MessagesSent == 0 && p.tot.Rounds == 0 {
			continue
		}
		line := fmt.Sprintf("%s comm: %d msgs, %.2f MB, %v simulated",
			p.name, p.st.MessagesSent, float64(p.st.BytesSent)/1e6, p.simT.Round(time.Millisecond))
		if p.tot.Rounds > 0 {
			perRound := float64(p.tot.BytesSent) / float64(p.tot.Rounds) / 1024
			line += fmt.Sprintf("; %.1f KiB/round over %d rounds (%.2fx vs dense)",
				perRound, p.tot.Rounds, p.tot.CompressionRatio())
		}
		lines = append(lines, line)
	}
	return lines
}

// ResilienceLine renders the run's fault-tolerance tally as one line.
func (r *Result) ResilienceLine() string {
	return "resilience: " + r.Resilience.String()
}

// DERLine renders the scenario DER dispatch tally as one line, or "" when
// the run deployed no DER.
func (r *Result) DERLine() string {
	d := r.DER
	if d == nil {
		return ""
	}
	pvUsed := 0.0
	if d.PVGeneratedKWh > 0 {
		pvUsed = 100 * d.PVUsedKWh / d.PVGeneratedKWh
	}
	return fmt.Sprintf("der: %d units, %d steps, %d rounds; grid %.1f kWh in / %.1f kWh out, PV %.1f kWh (%.0f%% used on-site), net cost %.0f¢, %d EV deadline misses (%.1f kWh short)",
		d.Units, d.Steps, d.Rounds, d.GridImportKWh, d.GridExportKWh,
		d.PVGeneratedKWh, pvUsed, d.CostCents, d.EVDeadlineMisses, d.EVShortfallKWh)
}
