package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"repro/internal/dqn"
	"repro/internal/fed"
	"repro/internal/fednet"
	"repro/internal/forecast"
	"repro/internal/metrics"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// The v3 full-fleet snapshot captures everything a bit-identical resume
// needs: the engine clock and accumulators, every home's forecaster
// parameters and training counters, every agent's complete training state
// (networks, optimizer moments, replay memory, RNG stream positions), both
// federation fabrics (clocks, undelivered inboxes, fault-RNG positions),
// and both wire codecs' delta references. The container header (see
// checkpoint.go) embeds the Config, so ResumeEngine reconstructs the
// System from the snapshot alone — no separate configuration is required,
// and none can disagree.
//
// What is deliberately NOT serialized:
//   - Environments: core never calls Env.Step, so a day's environments are
//     a pure function of (predDay, dataset, day) and are rebuilt.
//   - Wall-clock timers: Result's *Time/*Wall fields measure host compute;
//     a resumed run restarts them at zero. All simulated-time and byte
//     accounting (NetStats, CommsTotals, Resilience) IS carried.
//   - In-flight β rounds: WriteSnapshot joins them first. Joining early is
//     value-identical — the aggregation result does not depend on when the
//     join happens, only the overlap timing does.

// forecasterSnap is one forecaster's serializable state: parameters plus
// the training-bout counter that drives its learning-rate decay. (The
// per-bout shuffle RNG is seeded fresh every TrainEpochs call, so the
// counter is the only persistent training state.)
type forecasterSnap struct {
	DeviceType string
	Params     []*tensor.Matrix
	EpochsSeen int
}

// homeSnap is one home's serializable state.
type homeSnap struct {
	Forecasters []forecasterSnap // sorted by device type
	Agent       dqn.AgentState
	// PredDay is the home's current-day forecast per device, present while
	// the snapshot was taken mid-day (DayPrepared).
	PredDay [][]float64
}

// snapshotBody is the gob-encoded payload of a v3 checkpoint.
type snapshotBody struct {
	// Engine clock and flags.
	Day, Hour   int
	DayPrepared bool
	Finished    bool

	// Engine accumulators.
	AccBuckets  metrics.HourBuckets
	SavedByHour [24]float64
	Result      *Result

	// Per-day accumulators, valid while DayPrepared.
	PerHomeSaved   []float64
	PerHomeStandby []float64
	PerHomeReward  []float64
	PerHomeSteps   []int
	DayReward      float64
	DaySteps       int

	// Fleet state.
	Homes    []homeSnap
	HubFcs   []forecasterSnap // sorted by device type; star methods only
	HubAgent *dqn.AgentState  // FRL only

	// Fabric and codec state.
	FcNet, DrlNet           *fednet.NetState
	FcExchange, DrlExchange *wire.ExchangeState

	// Accounting.
	FcCommsTot, EMSCommsTot fed.CommsTotals
	Resil                   ResilienceReport
}

// snapForecaster captures one forecaster's parameters and counters.
func snapForecaster(dt string, fc forecast.Forecaster) forecasterSnap {
	fs := forecasterSnap{DeviceType: dt}
	for _, p := range fc.Model().Params() {
		fs.Params = append(fs.Params, p.Clone())
	}
	if c, ok := fc.(forecast.TrainStateCarrier); ok {
		fs.EpochsSeen = c.EpochsSeen()
	}
	return fs
}

// restoreForecaster installs a forecasterSnap into a live forecaster.
func restoreForecaster(home int, fs forecasterSnap, fc forecast.Forecaster) error {
	params := fc.Model().Params()
	if len(fs.Params) != len(params) {
		return fmt.Errorf("core: home %d %s: snapshot has %d parameter tensors, forecaster has %d",
			home, fs.DeviceType, len(fs.Params), len(params))
	}
	for i, p := range fs.Params {
		if p.Rows != params[i].Rows || p.Cols != params[i].Cols {
			return fmt.Errorf("core: home %d %s: snapshot tensor %d is %dx%d, forecaster wants %dx%d",
				home, fs.DeviceType, i, p.Rows, p.Cols, params[i].Rows, params[i].Cols)
		}
	}
	for i, p := range fs.Params {
		params[i].CopyFrom(p)
	}
	if c, ok := fc.(forecast.TrainStateCarrier); ok {
		c.SetEpochsSeen(fs.EpochsSeen)
	}
	return nil
}

// sortedTypes returns the system's device types in the deterministic order
// every serialized form uses.
func (s *System) sortedTypes() []string {
	types := append([]string(nil), s.deviceTypes...)
	sort.Strings(types)
	return types
}

// WriteSnapshot serializes the complete engine and fleet state as a v3
// checkpoint. Any β round still aggregating is joined first (the staged
// means install into the forecaster models before they are captured), so
// a snapshot never carries an in-flight round.
func (e *Engine) WriteSnapshot(w io.Writer) error {
	s := e.sys
	if s.cfg.Scenario != nil {
		// Scenario runtime state (DER device SoCs, agent replay, the
		// adversary's round counters and stale-replay history) is not in the
		// v3 format; refusing up front beats resuming into a silently
		// different run.
		return ErrScenarioSnapshot
	}
	if err := s.joinForecastRounds(e.timer); err != nil {
		return fmt.Errorf("core: landing pending rounds before snapshot: %w", err)
	}
	body := snapshotBody{
		Day:         e.day,
		Hour:        e.hour,
		DayPrepared: e.dayPrepared,
		Finished:    e.finished,
		AccBuckets:  e.accBuckets,
		SavedByHour: e.savedByHour,
		Result:      e.res,
		FcCommsTot:  s.fcCommsTot,
		EMSCommsTot: s.emsCommsTot,
		Resil:       s.resil,
	}
	if e.dayPrepared {
		body.PerHomeSaved = append([]float64(nil), e.perHomeSaved...)
		body.PerHomeStandby = append([]float64(nil), e.perHomeStandby...)
		body.PerHomeReward = append([]float64(nil), e.perHomeReward...)
		body.PerHomeSteps = append([]int(nil), e.perHomeSteps...)
		body.DayReward = e.dayReward
		body.DaySteps = e.daySteps
	}
	types := s.sortedTypes()
	for _, h := range s.homes {
		hs := homeSnap{Agent: h.agent.StateSnapshot()}
		for _, dt := range types {
			fc, ok := h.fcs[dt]
			if !ok {
				return fmt.Errorf("core: home %d missing forecaster for %q", h.id, dt)
			}
			hs.Forecasters = append(hs.Forecasters, snapForecaster(dt, fc))
		}
		if e.dayPrepared {
			hs.PredDay = make([][]float64, len(h.predDay))
			for di, pd := range h.predDay {
				hs.PredDay[di] = append([]float64(nil), pd...)
			}
		}
		body.Homes = append(body.Homes, hs)
	}
	for _, dt := range types {
		if fc, ok := s.hubFcs[dt]; ok {
			body.HubFcs = append(body.HubFcs, snapForecaster(dt, fc))
		}
	}
	if s.hubAgent != nil {
		st := s.hubAgent.StateSnapshot()
		body.HubAgent = &st
	}
	if s.fcNet != nil {
		st := s.fcNet.StateSnapshot()
		body.FcNet = &st
	}
	if s.drlNet != nil {
		st := s.drlNet.StateSnapshot()
		body.DrlNet = &st
	}
	if s.fcComms != nil {
		st := s.fcComms.StateSnapshot()
		body.FcExchange = &st
	}
	if s.drlComms != nil {
		st := s.drlComms.StateSnapshot()
		body.DrlExchange = &st
	}

	if err := writeHeader(w, versionSnapshot, s.cfg); err != nil {
		return err
	}
	if err := gob.NewEncoder(w).Encode(&body); err != nil {
		return fmt.Errorf("core: encoding snapshot: %w", err)
	}
	return nil
}

// ResumeEngine reconstructs a stepwise engine from a v3 snapshot: it
// rebuilds the System from the embedded Config (same corpus, same
// architectures), then installs every piece of serialized state. The
// resumed engine continues the original run bit-for-bit — the round-trip
// tests in engine_test.go pin this. Handing it a models-only checkpoint
// fails with ErrModelsOnlyCheckpoint.
func ResumeEngine(r io.Reader) (*Engine, error) {
	hdr, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	switch hdr.version {
	case versionModelsLegacy, versionModels:
		return nil, ErrModelsOnlyCheckpoint
	case versionSnapshot:
	default:
		return nil, fmt.Errorf("core: checkpoint version %d cannot resume", hdr.version)
	}
	var body snapshotBody
	if err := gob.NewDecoder(r).Decode(&body); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	s, err := NewSystem(hdr.cfg)
	if err != nil {
		return nil, fmt.Errorf("core: rebuilding system from snapshot config: %w", err)
	}
	e := NewEngine(s)
	if len(body.Homes) != len(s.homes) {
		return nil, fmt.Errorf("core: snapshot has %d homes, rebuilt system has %d", len(body.Homes), len(s.homes))
	}

	types := s.sortedTypes()
	for hi, h := range s.homes {
		hs := body.Homes[hi]
		if len(hs.Forecasters) != len(types) {
			return nil, fmt.Errorf("core: home %d snapshot has %d forecasters, system has %d device types",
				hi, len(hs.Forecasters), len(types))
		}
		for i, dt := range types {
			fs := hs.Forecasters[i]
			if fs.DeviceType != dt {
				return nil, fmt.Errorf("core: home %d forecaster %d is %q, want %q", hi, i, fs.DeviceType, dt)
			}
			fc, ok := h.fcs[dt]
			if !ok {
				return nil, fmt.Errorf("core: home %d missing forecaster for %q", hi, dt)
			}
			if err := restoreForecaster(hi, fs, fc); err != nil {
				return nil, err
			}
		}
		if err := h.agent.RestoreState(hs.Agent); err != nil {
			return nil, fmt.Errorf("core: home %d: %w", hi, err)
		}
		if body.DayPrepared {
			if len(hs.PredDay) != len(h.predDay) {
				return nil, fmt.Errorf("core: home %d snapshot has %d device forecasts, system has %d devices",
					hi, len(hs.PredDay), len(h.predDay))
			}
			for di, pd := range hs.PredDay {
				h.predDay[di] = append([]float64(nil), pd...)
			}
		}
	}
	for _, fs := range body.HubFcs {
		fc, ok := s.hubFcs[fs.DeviceType]
		if !ok {
			return nil, fmt.Errorf("core: snapshot carries hub forecaster %q, system has none", fs.DeviceType)
		}
		if err := restoreForecaster(-1, fs, fc); err != nil {
			return nil, err
		}
	}
	if body.HubAgent != nil {
		if s.hubAgent == nil {
			return nil, fmt.Errorf("core: snapshot carries a hub agent, system has none")
		}
		if err := s.hubAgent.RestoreState(*body.HubAgent); err != nil {
			return nil, fmt.Errorf("core: hub agent: %w", err)
		}
	}
	if body.FcNet != nil {
		if s.fcNet == nil {
			return nil, fmt.Errorf("core: snapshot carries forecast-fabric state, system has no fabric")
		}
		if err := s.fcNet.RestoreState(*body.FcNet); err != nil {
			return nil, err
		}
	}
	if body.DrlNet != nil {
		if s.drlNet == nil {
			return nil, fmt.Errorf("core: snapshot carries EMS-fabric state, system has no fabric")
		}
		if err := s.drlNet.RestoreState(*body.DrlNet); err != nil {
			return nil, err
		}
	}
	if body.FcExchange != nil && s.fcComms != nil {
		if err := s.fcComms.RestoreState(*body.FcExchange); err != nil {
			return nil, err
		}
	}
	if body.DrlExchange != nil && s.drlComms != nil {
		if err := s.drlComms.RestoreState(*body.DrlExchange); err != nil {
			return nil, err
		}
	}
	s.fcCommsTot = body.FcCommsTot
	s.emsCommsTot = body.EMSCommsTot
	s.resil = body.Resil

	e.day, e.hour = body.Day, body.Hour
	e.dayPrepared = body.DayPrepared
	e.finished = body.Finished
	e.accBuckets = body.AccBuckets
	e.savedByHour = body.SavedByHour
	if body.Result != nil {
		e.res = body.Result
	}
	if body.DayPrepared {
		envs, err := s.buildDayEnvs(body.Day)
		if err != nil {
			return nil, fmt.Errorf("core: rebuilding day %d environments: %w", body.Day, err)
		}
		e.envs = envs
		e.perHomeSaved = append([]float64(nil), body.PerHomeSaved...)
		e.perHomeStandby = append([]float64(nil), body.PerHomeStandby...)
		e.perHomeReward = append([]float64(nil), body.PerHomeReward...)
		e.perHomeSteps = append([]int(nil), body.PerHomeSteps...)
		e.dayReward = body.DayReward
		e.daySteps = body.DaySteps
		e.hourStats = make([]emsHourStats, len(s.homes))
	}
	return e, nil
}
