package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/dqn"
	"repro/internal/energy"
	"repro/internal/fed"
	"repro/internal/fednet"
	"repro/internal/forecast"
	"repro/internal/pecan"
	"repro/internal/sched"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// simHome is one residence's runtime state: its traces, one forecaster per
// device type, and its DQN agent.
type simHome struct {
	id    int
	src   *pecan.Home
	fcs   map[string]forecast.Forecaster
	agent *dqn.Agent
	// predDay[devIdx] holds the current day's hour-by-hour forecast.
	predDay [][]float64
	// envDay[devIdx] is the home-owned stable copy of the current day's
	// true load that the device environments read all day. Store-backed
	// traces decode into it; Env retains the slice, so it cannot come from
	// the trace's shared day cache.
	envDay [][]float64
	// stateRows/actions are the home's per-minute decision batch: one
	// observation row and one action slot per device environment, filled in
	// device order each minute and resolved through the agent's batched
	// ε-greedy selection. obsNext is the next-state scratch (stateDim wide).
	// stateInto fills these each EMS minute; the agent's replay buffer
	// copies what it keeps, so reuse is safe. Each home owns its set, which
	// keeps the home-parallel simulation race-free.
	stateRows *tensor.Matrix
	actions   []int
	obsNext   []float64
}

// System is a constructed simulation ready to Run.
type System struct {
	cfg         Config
	ds          *pecan.Dataset
	homes       []*simHome
	deviceTypes []string
	// nominalKW maps device type to the fleet-nominal on-power used for
	// EMS state normalization (individual homes' units differ from it).
	nominalKW map[string]float64

	// fcNet carries forecaster traffic; drlNet carries EMS traffic. Either
	// may be nil when the method does not communicate on that plane.
	fcNet, drlNet *fednet.Network
	// hubFcs / hubAgent are the aggregation-server-side model templates for
	// star-topology methods (the hub participates in rounds as a pure
	// server: its parameters are never mixed in).
	hubFcs   map[string]forecast.Forecaster
	hubAgent *dqn.Agent

	// resil accumulates the run's fault-tolerance telemetry; Run resets
	// it and publishes the final tally in Result.Resilience.
	resil ResilienceReport

	// homeDevs caches the flattened (home, device) task grid for
	// parallelHomeDevices; homeDevOff[h] is home h's first flat index, and
	// homeDevGrainSafe records whether single-pair grain is legal (no home
	// repeats a device type).
	homeDevs         []homeDevice
	homeDevOff       []int
	homeDevGrainSafe bool

	// fcFleets caches the forecast plane's fleet-batched compute groups:
	// one forecast.HomeBatch per device type over every home owning that
	// type (see run.go ensureFcFleets). Built lazily on the first forecast
	// wave; empty when DisableFleetBatch is set, a home repeats a device
	// type, or the forecaster kind cannot fleet — the per-pair path runs
	// then. pairDurs is the per-pair wave timing scratch the fallback waves
	// reuse (predict and train waves never overlap).
	fcFleets      []*fcFleetGroup
	fcFleetsBuilt bool
	pairDurs      []time.Duration

	// homeCost / homeDevCost are the measured-cost models the parallel
	// waves use to pick chunk grain — and to skip pool hand-off entirely
	// when a wave is too small to amortize it (see sched.ParallelForCost).
	homeCost, homeDevCost sched.CostModel

	// fcPending holds forecast-plane federation rounds whose aggregation is
	// still overlapping EMS compute; fcRoundWS / drlWS are the per-plane
	// reusable round buffers (fcRoundWS keyed by device type, one round in
	// flight per key).
	fcPending []*fed.PendingRound
	fcRoundWS map[string]*fed.RoundWorkspace
	drlWS     *fed.RoundWorkspace

	// fcComms / drlComms are the decentralized planes' wire codecs (nil
	// for star methods, which speak dense PFP1). One Exchange per plane:
	// its reference store is keyed by (sender, kind), so all device-type
	// rounds share it safely. fcCommsTot / emsCommsTot accumulate each
	// plane's per-round byte accounting for Result.
	fcComms, drlComms       *wire.Exchange
	fcCommsTot, emsCommsTot fed.CommsTotals

	// tel is the simulation-level telemetry bound by AttachTelemetry (nil =
	// off); fcRoundTel / drlRoundTel are the per-plane round instruments the
	// lazily created workspaces pick up.
	tel                     *sysTel
	fcRoundTel, drlRoundTel *fed.RoundTelemetry

	// scn is the configured scenario's runtime (DER units, DR pricing,
	// the shared adversary); nil without a scenario, leaving every hook
	// inert and the run bit-identical to pre-scenario builds.
	scn *scenarioState
}

// NewSystem generates the corpus and builds all agents for cfg.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pc := pecan.Config{
		Seed:           cfg.Seed,
		Homes:          cfg.Homes,
		Days:           cfg.Days,
		DevicesPerHome: cfg.DevicesPerHome,
		RawTraces:      cfg.RawTraces,
	}
	// A scenario's Seasonal block switches the generator to calendar mode.
	if sc := cfg.Scenario; sc != nil && sc.Seasonal != nil {
		pc.StartMonth = sc.Seasonal.StartMonth
		pc.VacationProb = sc.Seasonal.VacationProb
		pc.MeterResolutionKW = sc.Seasonal.MeterResolutionKW
	}
	return buildSystem(cfg, pecan.Generate(pc))
}

// NewSystemFromDataset builds a simulation over an ingested corpus (e.g. a
// Dataport-shaped export read with pecan.ReadCSV or pecan.ReadJSONL)
// instead of generating one. The dataset's shape overrides cfg.Homes,
// cfg.Days (clamped to the shortest trace's whole days), and — when unset —
// cfg.DevicesPerHome; everything else in cfg applies as usual.
func NewSystemFromDataset(cfg Config, ds *pecan.Dataset) (*System, error) {
	if ds == nil || len(ds.Homes) == 0 {
		return nil, fmt.Errorf("core: dataset has no homes")
	}
	cfg.Homes = len(ds.Homes)
	days := -1
	for _, h := range ds.Homes {
		for _, tr := range h.Traces {
			if d := tr.Days(); days < 0 || d < days {
				days = d
			}
		}
	}
	if days <= 0 {
		return nil, fmt.Errorf("core: dataset traces shorter than one day")
	}
	cfg.Days = days
	if cfg.DevicesPerHome <= 0 {
		cfg.DevicesPerHome = len(ds.Homes[0].Traces)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return buildSystem(cfg, ds)
}

// buildSystem wires forecasters, agents, and fabrics over a ready corpus.
func buildSystem(cfg Config, ds *pecan.Dataset) (*System, error) {
	// First-seen union across homes: generated corpora share one library
	// subset (home 0 covers it), imported ones may be ragged.
	var deviceTypes []string
	seen := map[string]bool{}
	for _, h := range ds.Homes {
		for _, tr := range h.Traces {
			if !seen[tr.Device.Type] {
				seen[tr.Device.Type] = true
				deviceTypes = append(deviceTypes, tr.Device.Type)
			}
		}
	}
	s := &System{cfg: cfg, ds: ds, deviceTypes: deviceTypes, nominalKW: map[string]float64{}}
	for _, p := range pecan.StandardDevices() {
		s.nominalKW[p.Device.Type] = p.Device.OnKW
	}

	stateDim := cfg.LookAhead + cfg.LookBack
	if cfg.TimeFeatures {
		stateDim += 2
	}
	kind := cfg.ForecastKind
	if kind == "" {
		kind = forecast.KindLSTM
	}

	fcConfigFor := func(devType string, seed int64) (forecast.Config, error) {
		var dev *energy.Device
		for _, h := range ds.Homes {
			if tr := h.TraceByType(devType); tr != nil {
				dev = &tr.Device
				break
			}
		}
		if dev == nil {
			return forecast.Config{}, fmt.Errorf("core: no trace for device type %q", devType)
		}
		fc := forecast.DefaultConfig(dev.OnKW)
		fc.Window = cfg.ForecastWindow
		fc.Hidden = cfg.ForecastHidden
		fc.Horizon = 60
		fc.Seed = seed
		return fc, nil
	}

	for hi, ph := range ds.Homes {
		if len(ph.Traces) == 0 {
			return nil, fmt.Errorf("core: home %d has no device traces (DevicesPerHome=%d yields no EMS steps)",
				hi, cfg.DevicesPerHome)
		}
		home := &simHome{
			id:  hi,
			src: ph,
			fcs: map[string]forecast.Forecaster{},
			agent: dqn.New(dqn.Config{
				StateDim:  stateDim,
				Actions:   energy.NumModes,
				Hidden:    cfg.DQNHidden,
				BatchSize: cfg.DQNBatch,
				LearnRate: cfg.DQNLearnRate,
				Epsilon: dqn.EpsilonSchedule{
					Start: 1, End: 0.02,
					DecaySteps: epsilonDays(cfg) * pecan.MinutesPerDay * cfg.DevicesPerHome,
				},
				Seed:     cfg.Seed + int64(1000+hi),
				InitSeed: cfg.Seed + 500,
			}),
			predDay:   make([][]float64, len(ph.Traces)),
			envDay:    make([][]float64, len(ph.Traces)),
			stateRows: tensor.New(len(ph.Traces), stateDim),
			actions:   make([]int, len(ph.Traces)),
			obsNext:   make([]float64, stateDim),
		}
		for _, tr := range ph.Traces {
			// All homes share one initialization per device type (the
			// paper: "each agent A_n has the same default training model
			// initially"), so federated averages start aligned. The
			// normalization scale is the home's own device on-power —
			// devices of the same class draw differently across homes.
			fcCfg, err := fcConfigFor(tr.Device.Type, cfg.Seed+7)
			if err != nil {
				return nil, err
			}
			fcCfg.Scale = tr.Device.OnKW
			f, err := forecast.New(kind, fcCfg)
			if err != nil {
				return nil, err
			}
			home.fcs[tr.Device.Type] = f
		}
		s.homes = append(s.homes, home)
	}

	// Communication fabrics and hub-side templates. Both planes share the
	// configured fault plan and retry policy but keep independent drop and
	// corruption RNG streams (distinct seeds).
	netCfg := func(topo fednet.Topology, seed int64) fednet.Config {
		return fednet.Config{
			Topology: topo,
			DropProb: cfg.DropProb,
			Seed:     cfg.Seed + seed,
			Faults:   cfg.FaultPlan,
			Retry:    cfg.Retry,
		}
	}
	switch cfg.Method {
	case MethodPFDRL:
		fcCfg := netCfg(fednet.AllToAll, 2)
		cfg.Topology.apply(&fcCfg)
		drlCfg := netCfg(fednet.AllToAll, 3)
		cfg.emsTopology().apply(&drlCfg)
		s.fcNet = fednet.New(cfg.Homes, fcCfg)
		s.drlNet = fednet.New(cfg.Homes, drlCfg)
		s.fcComms = wire.NewExchange(cfg.Comms)
		s.drlComms = wire.NewExchange(cfg.Comms)
	case MethodCloud, MethodFL:
		s.fcNet = fednet.New(cfg.Homes+1, netCfg(fednet.Star, 2))
	case MethodFRL:
		s.fcNet = fednet.New(cfg.Homes+1, netCfg(fednet.Star, 2))
		s.drlNet = fednet.New(cfg.Homes+1, netCfg(fednet.Star, 3))
	case MethodLocal:
		// no fabric
	}
	if s.fcNet != nil && s.fcNet.Config().Topology == fednet.Star {
		s.hubFcs = map[string]forecast.Forecaster{}
		for _, dt := range s.deviceTypes {
			fcCfg, err := fcConfigFor(dt, cfg.Seed+7)
			if err != nil {
				return nil, err
			}
			f, err := forecast.New(kind, fcCfg)
			if err != nil {
				return nil, err
			}
			s.hubFcs[dt] = f
		}
	}
	if s.drlNet != nil && s.drlNet.Config().Topology == fednet.Star {
		s.hubAgent = dqn.New(dqn.Config{
			StateDim:  stateDim,
			Actions:   energy.NumModes,
			Hidden:    cfg.DQNHidden,
			BatchSize: cfg.DQNBatch,
			Seed:      cfg.Seed + 999,
		})
	}
	scn, err := buildScenario(cfg)
	if err != nil {
		return nil, err
	}
	s.scn = scn
	return s, nil
}

// epsilonDays returns the exploration anneal length in days.
func epsilonDays(cfg Config) int {
	if cfg.EpsilonDecayDays > 0 {
		return cfg.EpsilonDecayDays
	}
	return 2
}

// Dataset exposes the generated corpus (examples and tests inspect it).
func (s *System) Dataset() *pecan.Dataset { return s.ds }

// stateInto builds the DQN observation for one device environment at
// day-local minute m — the energy-window state plus optional time-of-day
// features — writing into dst (length = env.StateDim() [+2 with
// TimeFeatures]) and returning it.
//
// Ownership: dst is typically a simHome scratch buffer reused every minute.
// The time features are written into dst's tail rather than appended to the
// slice Env returns, which closes the old aliasing hazard: append on a
// spare-capacity state slice could have written into Env-owned backing.
// Consumers that retain the observation (the DQN replay buffer) copy it.
func (s *System) stateInto(dst []float64, env *energy.Env, minuteOfDay int) []float64 {
	envDim := env.StateDim()
	if want := envDim + s.timeFeatureDims(); len(dst) != want {
		panic(fmt.Sprintf("core: stateInto dst length %d, want %d", len(dst), want))
	}
	env.StateInto(dst[:envDim], minuteOfDay)
	if s.cfg.TimeFeatures {
		angle := 2 * math.Pi * float64(minuteOfDay) / float64(pecan.MinutesPerDay)
		dst[envDim] = math.Sin(angle)
		dst[envDim+1] = math.Cos(angle)
	}
	return dst
}

// timeFeatureDims returns the number of extra observation dimensions the
// time-of-day features occupy.
func (s *System) timeFeatureDims() int {
	if s.cfg.TimeFeatures {
		return 2
	}
	return 0
}
