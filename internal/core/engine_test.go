package core

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/wire"
)

// wallClockFields lists the Result fields measured in host wall-clock —
// the only fields legitimately different between two equivalent runs.
// Simulated time (ForecastCommTime, EMSCommTime, NetStats.SimulatedTime,
// Resilience.BackoffTime) is deterministic and IS compared.
var wallClockFields = map[string]bool{
	"ForecastTrainTime":     true,
	"ForecastTestTime":      true,
	"EMSTrainTime":          true,
	"EMSTestTime":           true,
	"ForecastTestWallTime":  true,
	"ForecastTrainWallTime": true,
	"EMSWallTime":           true,
}

// assertResultsEqual compares every deterministic Result field bitwise.
func assertResultsEqual(t *testing.T, label string, want, got *Result) {
	t.Helper()
	wv, gv := reflect.ValueOf(*want), reflect.ValueOf(*got)
	rt := wv.Type()
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if wallClockFields[f.Name] {
			continue
		}
		if !reflect.DeepEqual(wv.Field(i).Interface(), gv.Field(i).Interface()) {
			t.Errorf("%s: Result.%s differs:\n  want %v\n  got  %v",
				label, f.Name, wv.Field(i).Interface(), gv.Field(i).Interface())
		}
	}
}

// engineConfigs is the equivalence matrix: methods × topology × codec.
func engineConfigs() map[string]Config {
	sampled := tinyConfig(MethodPFDRL)
	sampled.Topology = TopologySpec{Kind: TopoSampled, K: 2}
	topk := tinyConfig(MethodPFDRL)
	topk.Comms = wire.Options{Level: wire.TopK, TopKFrac: 0.3}
	cluster := tinyConfig(MethodPFDRL)
	cluster.Topology = TopologySpec{Kind: TopoCluster, ClusterSize: 2}
	return map[string]Config{
		"Local":         tinyConfig(MethodLocal),
		"FRL":           tinyConfig(MethodFRL),
		"PFDRL":         tinyConfig(MethodPFDRL),
		"PFDRL-sampled": sampled,
		"PFDRL-cluster": cluster,
		"PFDRL-topk":    topk,
	}
}

// TestRunEqualsStepwise pins the tentpole refactor's contract: the batch
// Run() driver and a manual hour-by-hour StepHour loop produce bitwise
// identical Results across methods, topologies, and codecs.
func TestRunEqualsStepwise(t *testing.T) {
	for name, cfg := range engineConfigs() {
		t.Run(name, func(t *testing.T) {
			want := mustRun(t, cfg)

			s, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			eng := NewEngine(s)
			hours := 0
			for !eng.Done() {
				if err := eng.StepHour(); err != nil {
					t.Fatalf("hour %d: %v", hours, err)
				}
				hours++
			}
			if want := cfg.Days * 24; hours != want {
				t.Fatalf("stepped %d hours, want %d", hours, want)
			}
			got, err := eng.Finish()
			if err != nil {
				t.Fatal(err)
			}
			assertResultsEqual(t, name, want, got)
		})
	}
}

// TestEngineClockAndGuards covers the clock accessors and the terminal
// error states.
func TestEngineClockAndGuards(t *testing.T) {
	cfg := tinyConfig(MethodLocal)
	cfg.Days = 1
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(s)
	if _, err := eng.Finish(); err == nil {
		t.Fatal("Finish before stepping should fail")
	}
	if err := eng.StepHour(); err != nil {
		t.Fatal(err)
	}
	if eng.Day() != 0 || eng.Hour() != 1 || eng.Minute() != 60 {
		t.Fatalf("clock at day %d hour %d minute %d after one step", eng.Day(), eng.Hour(), eng.Minute())
	}
	if err := eng.StepDay(); err != nil {
		t.Fatal(err)
	}
	if !eng.Done() {
		t.Fatal("engine should be done after 1 day")
	}
	if err := eng.StepHour(); err != ErrEngineDone {
		t.Fatalf("StepHour past the end: %v, want ErrEngineDone", err)
	}
	if _, err := eng.Finish(); err != nil {
		t.Fatal(err)
	}
	if !eng.Finished() {
		t.Fatal("Finished() false after Finish")
	}
	if err := eng.StepDay(); err != ErrEngineFinished {
		t.Fatalf("StepDay after Finish: %v, want ErrEngineFinished", err)
	}
	if _, err := eng.Finish(); err != nil {
		t.Fatalf("Finish should be idempotent: %v", err)
	}
}

// stepTo advances the engine by n hours.
func stepTo(t *testing.T, eng *Engine, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := eng.StepHour(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

// finishAll steps the engine to the end and finishes it.
func finishAll(t *testing.T, eng *Engine) *Result {
	t.Helper()
	for !eng.Done() {
		if err := eng.StepHour(); err != nil {
			t.Fatal(err)
		}
	}
	res, err := eng.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSnapshotResumeRoundTrip is the warm-start proof: an engine
// snapshotted mid-run (both mid-day, with β rounds potentially in flight,
// and at a day boundary) resumes into a fresh process-equivalent engine
// that finishes bitwise identical to the uninterrupted run — and the
// snapshot itself does not perturb the donor run.
func TestSnapshotResumeRoundTrip(t *testing.T) {
	for name, cfg := range engineConfigs() {
		// Off-period schedules so rounds are pending at odd hours.
		cfg.BetaHours, cfg.GammaHours = 5, 7
		for _, cut := range []struct {
			name  string
			hours int
		}{
			{"mid-day", 24 + 13},
			{"day-boundary", 48},
		} {
			t.Run(name+"/"+cut.name, func(t *testing.T) {
				want := mustRun(t, cfg)

				s, err := NewSystem(cfg)
				if err != nil {
					t.Fatal(err)
				}
				donor := NewEngine(s)
				stepTo(t, donor, cut.hours)
				var buf bytes.Buffer
				if err := donor.WriteSnapshot(&buf); err != nil {
					t.Fatal(err)
				}
				snapshot := append([]byte(nil), buf.Bytes()...)

				// The donor continues unperturbed by having been snapshotted.
				assertResultsEqual(t, "donor", want, finishAll(t, donor))

				resumed, err := ResumeEngine(bytes.NewReader(snapshot))
				if err != nil {
					t.Fatal(err)
				}
				if resumed.Day()*24+resumed.Hour() != cut.hours {
					t.Fatalf("resumed clock at day %d hour %d, want %d hours in",
						resumed.Day(), resumed.Hour(), cut.hours)
				}
				assertResultsEqual(t, "resumed", want, finishAll(t, resumed))
			})
		}
	}
}

// TestSnapshotOfFinishedEngine round-trips a completed run: the restored
// engine reports Finished and returns the identical cached Result.
func TestSnapshotOfFinishedEngine(t *testing.T) {
	cfg := tinyConfig(MethodPFDRL)
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(s)
	want := finishAll(t, eng)
	var buf bytes.Buffer
	if err := eng.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Finished() {
		t.Fatal("resumed engine should be finished")
	}
	got, err := resumed.Finish()
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, "finished", want, got)
}

// TestServeQueriesDoNotPerturbRun pins the daemon's core guarantee:
// interleaving forecast and plan queries between steps leaves the
// simulation bit-identical (Greedy draws no RNG, prediction writes only
// scratch).
func TestServeQueriesDoNotPerturbRun(t *testing.T) {
	cfg := tinyConfig(MethodPFDRL)
	want := mustRun(t, cfg)

	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(s)
	hour := 0
	for !eng.Done() {
		if hour%5 == 0 {
			for home := 0; home < cfg.Homes; home++ {
				if _, err := eng.ForecastNextHour(home); err != nil {
					t.Fatalf("forecast home %d: %v", home, err)
				}
				if _, err := eng.PlanNextHour(home); err != nil {
					t.Fatalf("plan home %d: %v", home, err)
				}
			}
		}
		if err := eng.StepHour(); err != nil {
			t.Fatal(err)
		}
		hour++
	}
	got, err := eng.Finish()
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, "interleaved", want, got)

	// Queries keep answering after the run completes (clamped clock).
	fcs, err := eng.ForecastNextHour(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fcs) != cfg.DevicesPerHome {
		t.Fatalf("finished forecast returned %d devices, want %d", len(fcs), cfg.DevicesPerHome)
	}
	plans, err := eng.PlanNextHour(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		if len(p.Actions) != 60 {
			t.Fatalf("%s plan has %d actions, want 60", p.DeviceType, len(p.Actions))
		}
	}
	if _, err := eng.ForecastNextHour(cfg.Homes); err == nil {
		t.Fatal("out-of-range home accepted")
	}
}

// TestApplyLiveSettings covers the daemon's reconfiguration path:
// validation failures leave state untouched; period, fan-out, and codec
// changes land and are reflected by LiveSettings.
func TestApplyLiveSettings(t *testing.T) {
	cfg := tinyConfig(MethodPFDRL)
	cfg.Topology = TopologySpec{Kind: TopoSampled, K: 2}
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ls := s.LiveSettings()
	if ls.BetaHours != cfg.BetaHours || ls.TopologyK != 2 || ls.CommsLevel != "delta" {
		t.Fatalf("initial settings: %+v", ls)
	}

	bad := ls
	bad.BetaHours = 0
	if err := s.ApplyLiveSettings(bad); err == nil {
		t.Fatal("zero β accepted")
	}
	bad = ls
	bad.TopologyK = 99
	if err := s.ApplyLiveSettings(bad); err == nil {
		t.Fatal("out-of-range K accepted")
	}
	bad = ls
	bad.CommsLevel = "zstd"
	if err := s.ApplyLiveSettings(bad); err == nil {
		t.Fatal("unknown codec accepted")
	}
	if got := s.LiveSettings(); got != ls {
		t.Fatalf("failed applies mutated settings: %+v vs %+v", got, ls)
	}

	ls.BetaHours, ls.GammaHours = 6, 8
	ls.TopologyK = 1
	ls.CommsLevel = "topk"
	ls.TopKFrac = 0.25
	if err := s.ApplyLiveSettings(ls); err != nil {
		t.Fatal(err)
	}
	got := s.LiveSettings()
	if got.BetaHours != 6 || got.GammaHours != 8 || got.TopologyK != 1 ||
		got.CommsLevel != "topk" || got.TopKFrac != 0.25 {
		t.Fatalf("settings not applied: %+v", got)
	}
	// The retuned system still runs.
	eng := NewEngine(s)
	stepTo(t, eng, 24)

	// Local has no fabric or codec: those knobs must be rejected.
	local, err := NewSystem(tinyConfig(MethodLocal))
	if err != nil {
		t.Fatal(err)
	}
	lls := local.LiveSettings()
	lls.TopologyK = 2
	if err := local.ApplyLiveSettings(lls); err == nil {
		t.Fatal("topology_k accepted without a sampled fabric")
	}
	lls.TopologyK = 0
	lls.CommsLevel = "dense"
	if err := local.ApplyLiveSettings(lls); err == nil {
		t.Fatal("comms_level accepted without a codec")
	}
}
