package core

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/pecan"
)

// Config returns the configuration the system was built with.
func (s *System) Config() Config { return s.cfg }

// DeviceForecast is one device's next-hour load forecast as served by the
// daemon: 60 per-minute kW predictions starting at Minute.
type DeviceForecast struct {
	DeviceType string    `json:"device_type"`
	Minute     int       `json:"minute"`
	PredKW     []float64 `json:"pred_kw"`
}

// DevicePlan is one device's next-hour control plan: the greedy (ε-free)
// action the home's current policy would take each minute.
type DevicePlan struct {
	DeviceType string   `json:"device_type"`
	Minute     int      `json:"minute"`
	Actions    []string `json:"actions"`
}

// serveClock returns the (day, hour) the serve endpoints answer for: the
// engine clock while the run is in progress, clamped to the final
// simulated hour once every day has been stepped (a finished fleet keeps
// serving its trained policy against the last day it saw).
func (e *Engine) serveClock() (day, hour int) {
	day, hour = e.day, e.hour
	if days := e.sys.cfg.Days; day >= days {
		day, hour = days-1, 23
	}
	return day, hour
}

// ForecastNextHour predicts the next hour of load for every device of one
// home using the home's current forecaster models. It is read-only with
// respect to simulation state — prediction writes only forecaster scratch
// buffers — so interleaving it between StepHour calls cannot perturb the
// run (the twin-run tests pin this). The caller must serialize it against
// stepping; the daemon's mutex does.
func (e *Engine) ForecastNextHour(home int) ([]DeviceForecast, error) {
	s := e.sys
	if home < 0 || home >= len(s.homes) {
		return nil, fmt.Errorf("core: home %d outside [0,%d)", home, len(s.homes))
	}
	day, hour := e.serveClock()
	t := day*pecan.MinutesPerDay + hour*60
	h := s.homes[home]
	out := make([]DeviceForecast, 0, len(h.src.Traces))
	for _, tr := range h.src.Traces {
		fc := h.fcs[tr.Device.Type]
		pred := make([]float64, 60)
		if t < fc.Config().Window {
			// No history yet: assume standby, the dominant mode (the same
			// fallback predictDay uses for the first window of day 0).
			for m := range pred {
				pred[m] = tr.Device.StandbyKW
			}
		} else {
			// Day-aligned history window (bit-exact: the offset is a
			// multiple of MinutesPerDay, so phase features are unchanged).
			// Decoding writes only trace-local scratch, preserving the
			// perturbation-free guarantee — decode is deterministic and the
			// simulation never reads that scratch across calls.
			series, off := tr.DayWithHistory(day, fc.Config().Window)
			copy(pred, fc.Predict(series, t-off))
		}
		out = append(out, DeviceForecast{DeviceType: tr.Device.Type, Minute: t, PredKW: pred})
	}
	return out, nil
}

// PlanNextHour runs the home's current DQN policy greedily (no
// exploration, no learning, no RNG draws) over the next hour of every
// device environment and reports the minute-by-minute mode plan. Like
// ForecastNextHour it is perturbation-free between steps: Greedy does not
// advance the agent's counters or RNG stream, and observation building
// writes only scratch.
func (e *Engine) PlanNextHour(home int) ([]DevicePlan, error) {
	s := e.sys
	if home < 0 || home >= len(s.homes) {
		return nil, fmt.Errorf("core: home %d outside [0,%d)", home, len(s.homes))
	}
	day, hour := e.serveClock()
	h := s.homes[home]

	// Mid-day the engine's own environments are current; at a day boundary
	// (or once the run is done) build throwaway ones from a fresh forecast
	// of the planning day. h.predDay may be overwritten here — harmless,
	// because beginDay recomputes it from scratch before anything in the
	// simulation reads it again.
	var homeEnvs []*energy.Env
	if e.dayPrepared && home < len(e.envs) {
		homeEnvs = e.envs[home]
	} else {
		for di, tr := range h.src.Traces {
			h.predDay[di] = s.predictDay(h, tr, day)
		}
		built, err := s.buildHomeDayEnvs(h, day)
		if err != nil {
			return nil, err
		}
		homeEnvs = built
	}

	obs := make([]float64, len(h.obsNext))
	out := make([]DevicePlan, 0, len(h.src.Traces))
	for di, tr := range h.src.Traces {
		env := homeEnvs[di]
		plan := DevicePlan{
			DeviceType: tr.Device.Type,
			Minute:     day*pecan.MinutesPerDay + hour*60,
			Actions:    make([]string, 60),
		}
		for m := 0; m < 60; m++ {
			state := s.stateInto(obs, env, hour*60+m)
			plan.Actions[m] = energy.Mode(h.agent.Greedy(state)).String()
		}
		out = append(out, plan)
	}
	return out, nil
}
