package core

import (
	"fmt"
	"time"

	"repro/internal/fed"
	"repro/internal/fednet"
	"repro/internal/metrics"
	"repro/internal/pecan"
)

// ResilienceReport aggregates one run's fault-tolerance telemetry across
// both federation planes: how many rounds ran, how many fell short of full
// participation and why, and what the retry machinery cost. The
// communication figures already include retry traffic (it is charged to
// the ordinary byte counters); RetryBytes breaks out that share.
type ResilienceReport struct {
	// Rounds counts federation exchanges attempted (per device type per
	// fire); DegradedRounds those that averaged less than full
	// participation.
	Rounds         int
	DegradedRounds int
	// CorruptRejected counts payloads quarantined by wire validation;
	// NaNRejected sets dropped by the divergence filter;
	// ByzantineRejected well-formed payloads quarantined by the scenario
	// adversary defense gates; CrashSkips agent-rounds sat out inside
	// crash windows.
	CorruptRejected   int
	NaNRejected       int
	ByzantineRejected int
	CrashSkips        int

	// Retries / GaveUp / MessagesBlocked / MessagesCorrupted / InboxWiped
	// sum the fabric counters over both planes.
	Retries           int
	GaveUp            int
	MessagesBlocked   int
	MessagesCorrupted int
	InboxWiped        int
	// RetryBytes is the wire traffic spent on retry attempts; BackoffTime
	// the simulated time spent waiting between attempts.
	RetryBytes  int64
	BackoffTime time.Duration
	// AttemptBytes sums every transmission attempt across both planes
	// (fednet's BytesSent); UniqueBytes charges each logical message's
	// payload once, at its first non-blocked attempt. The gap is the
	// retransmission overhead the fabric actually paid — it can differ
	// from RetryBytes when a message's first attempt was blocked.
	AttemptBytes int64
	UniqueBytes  int64

	// PartitionSeconds is the total scripted link outage the run absorbed,
	// counted once per physical link (both logical planes share one
	// FaultPlan and one wire).
	PartitionSeconds float64
}

// absorb folds one federation round's participation stats into the tally.
func (r *ResilienceReport) absorb(rep fed.RoundReport) {
	r.Rounds++
	if rep.Degraded() {
		r.DegradedRounds++
	}
	r.CorruptRejected += rep.CorruptRejected
	r.NaNRejected += rep.NaNRejected
	r.ByzantineRejected += rep.ByzantineRejected
	r.CrashSkips += rep.Crashed
}

// absorbStats folds one fabric's final counters into the tally.
func (r *ResilienceReport) absorbStats(st fednet.Stats) {
	r.Retries += st.Retries
	r.GaveUp += st.GaveUp
	r.MessagesBlocked += st.MessagesBlocked
	r.MessagesCorrupted += st.MessagesCorrupted
	r.InboxWiped += st.InboxWiped
	r.RetryBytes += st.RetryBytes
	r.BackoffTime += st.BackoffTime
	r.AttemptBytes += st.BytesSent
	r.UniqueBytes += st.UniqueBytes
}

// RetransmissionBytes is the wire traffic spent re-sending payloads that
// had already been charged once (attempt bytes minus unique bytes).
func (r ResilienceReport) RetransmissionBytes() int64 {
	return r.AttemptBytes - r.UniqueBytes
}

// DegradedFrac is the fraction of federation rounds that averaged less
// than full participation (0 when no rounds ran).
func (r ResilienceReport) DegradedFrac() float64 {
	return metrics.Rate(r.DegradedRounds, r.Rounds)
}

// RetryByteFrac is the share of totalBytes spent on retry attempts (0 for
// an idle fabric). Callers pass the summed BytesSent of the planes the
// report covers.
func (r ResilienceReport) RetryByteFrac(totalBytes int64) float64 {
	return metrics.ByteFraction(r.RetryBytes, totalBytes)
}

// String renders the report as the one-line summary cmd/pfdrl and the
// resilience example print.
func (r ResilienceReport) String() string {
	return fmt.Sprintf("%d rounds (%.0f%% degraded), %d retries (%.1f KB), %d corrupt-rejects, %d NaN-rejects, %d byzantine-rejects, %d crash-skips, %d gave up, %d blocked, %.0fs partitioned",
		r.Rounds, 100*r.DegradedFrac(), r.Retries, float64(r.RetryBytes)/1e3,
		r.CorruptRejected, r.NaNRejected, r.ByzantineRejected, r.CrashSkips, r.GaveUp, r.MessagesBlocked, r.PartitionSeconds)
}

// ChaosFaultPlan builds an aggressive deterministic FaultPlan sized to a
// run of the given fleet and duration, for resilience demos and smoke
// tests: the 0–1 link partitioned across the middle third of the run, the
// last agent a 8× straggler, 8% payload corruption, and agent 1 crashed
// through most of the final third. Indices are network-agent indices —
// home i under PFDRL, home i−1 under star methods (0 is the hub).
func ChaosFaultPlan(agents, days int) fednet.FaultPlan {
	total := days * pecan.MinutesPerDay
	plan := fednet.FaultPlan{CorruptProb: 0.08}
	if agents >= 2 {
		plan.Partitions = []fednet.Partition{{A: 0, B: 1, StartMin: total / 3, EndMin: 2 * total / 3}}
		plan.Crashes = []fednet.CrashWindow{{Agent: 1, StartMin: 2 * total / 3, EndMin: total - total/12}}
	}
	if agents >= 3 {
		plan.Stragglers = []fednet.Straggler{{Agent: agents - 1, Factor: 8}}
	}
	return plan
}
