package core

import (
	"fmt"

	"repro/internal/fed"
	"repro/internal/sched"
	"repro/internal/telemetry"
)

// sysTel holds the simulation-level instruments. It exists only on systems
// that called AttachTelemetry; everywhere else s.tel is nil and every hook
// below returns immediately, leaving the run bit-identical to an
// uninstrumented one (telemetry reads simulation state, never feeds it).
type sysTel struct {
	sink *telemetry.Sink

	simDay    *telemetry.Gauge
	simHour   *telemetry.Gauge
	simMinute *telemetry.Gauge

	hours      *telemetry.Counter
	steps      *telemetry.Counter
	savedKWh   *telemetry.Gauge
	standbyKWh *telemetry.Gauge
	meanReward *telemetry.Gauge

	homeSaved   []*telemetry.Gauge
	homeStandby []*telemetry.Gauge

	// minute mirrors the fabric clock for journal records and spans.
	minute int
}

// AttachTelemetry binds the system — its scheduler pool, both federation
// fabrics, every DQN agent, and the round workspaces — to a telemetry sink.
// Call before Run; a nil sink is a no-op. Telemetry is strictly
// observational: an attached run produces bit-identical results.
func (s *System) AttachTelemetry(sink *telemetry.Sink) {
	if sink == nil {
		return
	}
	t := &sysTel{
		sink:       sink,
		simDay:     sink.Gauge("pfdrl_core_sim_day", "current simulated day (0-based)"),
		simHour:    sink.Gauge("pfdrl_core_sim_hour", "current simulated hour of day"),
		simMinute:  sink.Gauge("pfdrl_core_sim_minutes", "absolute simulated minutes elapsed"),
		hours:      sink.Counter("pfdrl_core_hours_total", "simulated home-hours completed"),
		steps:      sink.Counter("pfdrl_core_ems_steps_total", "EMS decisions taken across all homes"),
		savedKWh:   sink.Gauge("pfdrl_core_saved_kwh", "cumulative standby energy switched off, all homes"),
		standbyKWh: sink.Gauge("pfdrl_core_standby_kwh", "cumulative standby energy available to save, all homes"),
		meanReward: sink.Gauge("pfdrl_core_mean_reward", "mean EMS reward over the last simulated hour"),
	}
	for hi := range s.homes {
		t.homeSaved = append(t.homeSaved, sink.Gauge(
			fmt.Sprintf(`pfdrl_core_home_saved_kwh{home="%d"}`, hi),
			"cumulative standby energy switched off per home"))
		t.homeStandby = append(t.homeStandby, sink.Gauge(
			fmt.Sprintf(`pfdrl_core_home_standby_kwh{home="%d"}`, hi),
			"cumulative standby energy available to save per home"))
	}
	s.tel = t

	sched.Default().Instrument(sink)
	if s.fcNet != nil {
		s.fcNet.Instrument(sink, "forecast")
	}
	if s.drlNet != nil {
		s.drlNet.Instrument(sink, "ems")
	}
	// Round workspaces are created lazily by forecastRound/emsRound; they
	// pick these up at construction.
	s.fcRoundTel = fed.NewRoundTelemetry(sink, "forecast")
	s.drlRoundTel = fed.NewRoundTelemetry(sink, "ems")

	// One loss histogram and learn-step counter shared by the fleet (the
	// instruments are atomic, and home waves run concurrently); epsilon and
	// replay occupancy are deterministic per agent, so home 0 stands in.
	loss := sink.Histogram("pfdrl_dqn_loss", "per-minibatch Huber loss across all agents",
		telemetry.ExpBuckets(1e-5, 10, 10))
	steps := sink.Counter("pfdrl_dqn_learn_steps_total", "gradient updates across all agents")
	eps := sink.Gauge("pfdrl_dqn_epsilon", "exploration rate of agent 0")
	replay := sink.Gauge("pfdrl_dqn_replay_occupancy", "replay-buffer fill of agent 0")
	for hi, h := range s.homes {
		if hi == 0 {
			h.agent.Instrument(loss, steps, eps, replay)
		} else {
			h.agent.Instrument(loss, steps, nil, nil)
		}
	}
}

// hourRecord is the journal's per-simulated-hour line.
type hourRecord struct {
	Type       string  `json:"type"` // "hour"
	Day        int     `json:"day"`
	Hour       int     `json:"hour"`
	SimMinute  int     `json:"sim_minute"`
	Steps      int     `json:"steps"`
	SavedKWh   float64 `json:"saved_kwh"`
	StandbyKWh float64 `json:"standby_kwh"`
	MeanReward float64 `json:"mean_reward"`
}

// roundRecord is the journal's per-federation-round line.
type roundRecord struct {
	Type       string  `json:"type"` // "round"
	Plane      string  `json:"plane"`
	SimMinute  int     `json:"sim_minute"`
	Agents     int     `json:"agents"`
	Crashed    int     `json:"crashed"`
	Rejected   int     `json:"rejected"`
	BytesSent  int64   `json:"bytes_sent"`
	DenseBytes int64   `json:"dense_bytes"`
	Ratio      float64 `json:"compression_ratio"`
}

// noteClock mirrors the simulated clock into the gauges and the journal
// anchor.
func (s *System) noteClock(minute int) {
	if s.tel == nil {
		return
	}
	s.tel.minute = minute
	s.tel.simMinute.Set(float64(minute))
}

// noteHour publishes one completed simulated hour: progress gauges,
// cumulative energy (fleet and per home), and a journal line.
func (s *System) noteHour(day, hour int, st emsHourStats, perHomeSaved, perHomeStandby []float64) {
	t := s.tel
	if t == nil {
		return
	}
	t.simDay.Set(float64(day))
	t.simHour.Set(float64(hour))
	t.hours.Add(int64(len(s.homes)))
	t.steps.Add(int64(st.steps))
	t.savedKWh.Add(st.savedKWh)
	t.standbyKWh.Add(st.standbyKWh)
	mean := 0.0
	if st.steps > 0 {
		mean = st.rewardSum / float64(st.steps)
	}
	t.meanReward.Set(mean)
	for hi := range s.homes {
		t.homeSaved[hi].Set(perHomeSaved[hi])
		t.homeStandby[hi].Set(perHomeStandby[hi])
	}
	t.sink.Emit(hourRecord{
		Type:       "hour",
		Day:        day,
		Hour:       hour,
		SimMinute:  t.minute,
		Steps:      st.steps,
		SavedKWh:   st.savedKWh,
		StandbyKWh: st.standbyKWh,
		MeanReward: mean,
	})
}

// noteRound journals one absorbed federation round report (decentralized
// and centralized alike — the absorb sites in run.go call it).
func (s *System) noteRound(plane string, rep fed.RoundReport) {
	t := s.tel
	if t == nil {
		return
	}
	t.sink.Emit(roundRecord{
		Type:       "round",
		Plane:      plane,
		SimMinute:  t.minute,
		Agents:     rep.Agents,
		Crashed:    rep.Crashed,
		Rejected:   rep.CorruptRejected + rep.NaNRejected + rep.ByzantineRejected,
		BytesSent:  rep.BytesSent,
		DenseBytes: rep.DenseBytes,
		Ratio:      rep.CompressionRatio(),
	})
}
