package core

import (
	"math"
	"testing"

	"repro/internal/fednet"
	"repro/internal/wire"
)

// interplayConfig is a PFDRL scenario in which both federation planes are
// busy in the same hours: β fires twice per hour (exercising the refire
// charge), γ every two hours, under drops, corruption, a partition, and a
// crash window — the densest comms schedule the simulator supports.
func interplayConfig(level wire.Level) Config {
	cfg := goldenConfig(MethodPFDRL)
	cfg.BetaHours = 0.5
	cfg.GammaHours = 2
	cfg.DropProb = 0.1
	cfg.Retry = fednet.RetryPolicy{MaxAttempts: 3}
	cfg.FaultPlan = ChaosFaultPlan(cfg.Homes, cfg.Days)
	cfg.Comms = wire.Options{Level: level}
	return cfg
}

// TestBetaGammaInterplayBitExact is the end-to-end twin for the lossless
// tier: a full PFDRL run on the delta codec — compressed, overlapped
// forecast rounds and synchronous EMS rounds firing in the same hours,
// over a chaos fault plan — must be bit-identical to the same run on the
// dense codec, while paying fewer wire bytes against the same dense
// baseline.
func TestBetaGammaInterplayBitExact(t *testing.T) {
	run := func(level wire.Level) *Result {
		sys, err := NewSystem(interplayConfig(level))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	dense := run(wire.Dense)
	delta := run(wire.Delta)

	series := func(r *Result) map[string][]float64 {
		return map[string][]float64{
			"DailySavedKWhPerHome": r.DailySavedKWhPerHome,
			"DailySavedFrac":       r.DailySavedFrac,
			"DailyMeanReward":      r.DailyMeanReward,
			"PerHomeSavedKWhFinal": r.PerHomeSavedKWhFinal,
			"PerHomeRewardFinal":   r.PerHomeRewardFinal,
			"ForecastAccuracy":     {r.ForecastAccuracy},
		}
	}
	want, got := series(dense), series(delta)
	for name, w := range want {
		g := got[name]
		if len(g) != len(w) {
			t.Fatalf("%s: %d values vs %d", name, len(g), len(w))
		}
		for i := range w {
			if math.Float64bits(w[i]) != math.Float64bits(g[i]) {
				t.Errorf("%s[%d]: dense %x, delta %x", name, i, math.Float64bits(w[i]), math.Float64bits(g[i]))
			}
		}
	}
	// Identical fabric behavior: the codecs change payload bytes, never
	// message counts, retries, or rejects.
	if dense.Resilience.Rounds != delta.Resilience.Rounds ||
		dense.Resilience.DegradedRounds != delta.Resilience.DegradedRounds ||
		dense.Resilience.CorruptRejected != delta.Resilience.CorruptRejected ||
		dense.Resilience.Retries != delta.Resilience.Retries {
		t.Fatalf("resilience drift:\ndense %+v\ndelta %+v", dense.Resilience, delta.Resilience)
	}
	// Same dense baseline, smaller bill.
	for _, plane := range []struct {
		name         string
		dense, delta fednet.Stats
	}{
		{"forecast", dense.ForecastNetStats, delta.ForecastNetStats},
		{"ems", dense.EMSNetStats, delta.EMSNetStats},
	} {
		if plane.dense.MessagesSent != plane.delta.MessagesSent {
			t.Fatalf("%s plane message counts differ: %d vs %d", plane.name, plane.dense.MessagesSent, plane.delta.MessagesSent)
		}
		if plane.delta.BytesSent >= plane.dense.BytesSent {
			t.Errorf("%s plane: delta bytes %d not below dense bytes %d", plane.name, plane.delta.BytesSent, plane.dense.BytesSent)
		}
	}
	if delta.ForecastComms.CompressionRatio() <= 1 {
		t.Errorf("forecast plane delta ratio %.3f, want > 1", delta.ForecastComms.CompressionRatio())
	}
	if delta.EMSComms.CompressionRatio() <= 1 {
		t.Errorf("ems plane delta ratio %.3f, want > 1", delta.EMSComms.CompressionRatio())
	}
	// The dense-codec run's ratio sits at ~1: same float payload, only the
	// envelope differs (PFW2's varint tensor headers shave a few bytes off
	// the PFP1 baseline).
	if r := dense.ForecastComms.CompressionRatio(); math.Abs(r-1) > 0.01 {
		t.Errorf("dense forecast ratio %.6f, want ≈ 1", r)
	}
}

// TestResilienceByteSplit checks the per-attempt vs per-message accounting
// reaches the run-level report: attempts must dominate unique bytes under
// a lossy fabric with retries, and the gap is the retransmission bill.
func TestResilienceByteSplit(t *testing.T) {
	cfg := interplayConfig(wire.Delta)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	r := res.Resilience
	if r.AttemptBytes <= 0 || r.UniqueBytes <= 0 {
		t.Fatalf("byte split not populated: %+v", r)
	}
	if r.AttemptBytes < r.UniqueBytes {
		t.Fatalf("attempt bytes %d below unique bytes %d", r.AttemptBytes, r.UniqueBytes)
	}
	if r.RetransmissionBytes() != r.AttemptBytes-r.UniqueBytes {
		t.Fatal("RetransmissionBytes inconsistent")
	}
	if r.Retries > 0 && r.RetransmissionBytes() == 0 {
		t.Fatalf("%d retries but no retransmission bytes", r.Retries)
	}
	want := res.ForecastNetStats.BytesSent + res.EMSNetStats.BytesSent
	if r.AttemptBytes != want {
		t.Fatalf("AttemptBytes %d != plane sum %d", r.AttemptBytes, want)
	}
}

// TestTopKRunStaysFinite drives the lossy tier through a full PFDRL run:
// no bit-identity claim, but the run must complete, stay finite, and beat
// the 3× byte floor on the planes it compresses.
func TestTopKRunStaysFinite(t *testing.T) {
	cfg := goldenConfig(MethodPFDRL)
	cfg.Comms = wire.Options{Level: wire.TopK, TopKFrac: 0.1}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.DailyMeanReward {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("top-k run produced non-finite reward")
		}
	}
	if math.IsNaN(res.ForecastAccuracy) {
		t.Fatal("top-k run produced NaN accuracy")
	}
	if ratio := res.ForecastComms.CompressionRatio(); ratio < 3 {
		t.Errorf("top-k forecast plane ratio %.2f, want ≥ 3", ratio)
	}
}
