package core

import "testing"

// TestFRLEquivalentToFullySharedPFDRL encodes a structural invariant: FRL
// (full DQN FedAvg through a cloud hub) and PFDRL with α = len(hidden)
// (every layer shared over the LAN) perform identical aggregation math, so
// with the same seed they must produce identical savings trajectories —
// the transport differs, the learning does not.
func TestFRLEquivalentToFullySharedPFDRL(t *testing.T) {
	mk := func(m Method, alpha int) *Result {
		cfg := tinyConfig(m)
		cfg.Alpha = alpha
		cfg.Days = 2
		return mustRun(t, cfg)
	}
	frl := mk(MethodFRL, 1) // alpha ignored by FRL
	pfdrl := mk(MethodPFDRL, len(tinyConfig(MethodPFDRL).DQNHidden))
	for d := range frl.DailySavedFrac {
		if frl.DailySavedFrac[d] != pfdrl.DailySavedFrac[d] {
			t.Fatalf("day %d: FRL %.6f vs fully-shared PFDRL %.6f",
				d, frl.DailySavedFrac[d], pfdrl.DailySavedFrac[d])
		}
		if frl.DailyMeanReward[d] != pfdrl.DailyMeanReward[d] {
			t.Fatalf("day %d rewards differ", d)
		}
	}
}

// TestParallelHomesDeterminism guards the home-parallel simulation loop:
// concurrent execution must not change results run to run.
func TestParallelHomesDeterminism(t *testing.T) {
	cfg := tinyConfig(MethodPFDRL)
	cfg.Homes = 5
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	for d := range a.DailySavedFrac {
		if a.DailySavedFrac[d] != b.DailySavedFrac[d] || a.DailyMeanReward[d] != b.DailyMeanReward[d] {
			t.Fatalf("parallel run non-deterministic at day %d", d)
		}
	}
	if a.ForecastAccuracy != b.ForecastAccuracy {
		t.Fatal("accuracy non-deterministic")
	}
}
