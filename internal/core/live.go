package core

import (
	"fmt"

	"repro/internal/fednet"
	"repro/internal/wire"
)

// LiveSettings is the subset of Config a long-running daemon may retune
// between steps without rebuilding the system: the two federation periods,
// the sampled-gossip fan-out, and the wire codec. Everything else —
// corpus shape, model architectures, seeds — is fixed at construction.
type LiveSettings struct {
	// BetaHours / GammaHours are the forecast and DQN broadcast periods.
	// The engine reads them at each hour boundary, so a change takes
	// effect at the next simulated hour.
	BetaHours  float64 `json:"beta_hours"`
	GammaHours float64 `json:"gamma_hours"`
	// TopologyK is the per-round peer sample size; present only when a
	// plane runs the sampled-gossip fabric (0 otherwise, and 0 in a POST
	// leaves it unchanged).
	TopologyK int `json:"topology_k,omitempty"`
	// CommsLevel is the decentralized planes' codec tier ("dense",
	// "delta", "topk"); empty when the method has no codec, and empty in
	// a POST leaves the codec unchanged.
	CommsLevel string `json:"comms_level,omitempty"`
	// TopKFrac is the TopK tier's transmitted fraction (meaningful only
	// with CommsLevel "topk"; 0 keeps the codec default).
	TopKFrac float64 `json:"topk_frac,omitempty"`
}

// LiveSettings returns the current values of the retunable knobs.
func (s *System) LiveSettings() LiveSettings {
	ls := LiveSettings{
		BetaHours:  s.cfg.BetaHours,
		GammaHours: s.cfg.GammaHours,
	}
	if s.fcNet != nil && s.fcNet.Config().Topology == fednet.Sampled {
		ls.TopologyK = s.fcNet.Config().SampleK
	} else if s.drlNet != nil && s.drlNet.Config().Topology == fednet.Sampled {
		ls.TopologyK = s.drlNet.Config().SampleK
	}
	if s.fcComms != nil {
		ls.CommsLevel = s.fcComms.Options().Level.String()
		ls.TopKFrac = s.fcComms.Options().TopKFrac
	}
	return ls
}

// ApplyLiveSettings validates and installs new values for the retunable
// knobs. Period changes land in s.cfg (the engine reads them live); a
// fan-out change redraws the sampled planes' peer sets; a codec change
// swaps in fresh Exchanges on both decentralized planes — their first
// post-swap broadcast is a natural dense keyframe, so lossless tiers stay
// lossless across the transition. Errors leave all knobs unchanged.
func (s *System) ApplyLiveSettings(ls LiveSettings) error {
	if ls.BetaHours <= 0 || ls.GammaHours <= 0 {
		return fmt.Errorf("core: broadcast periods must be positive (β=%g γ=%g)", ls.BetaHours, ls.GammaHours)
	}
	sampledPlanes := 0
	if s.fcNet != nil && s.fcNet.Config().Topology == fednet.Sampled {
		sampledPlanes++
	}
	if s.drlNet != nil && s.drlNet.Config().Topology == fednet.Sampled {
		sampledPlanes++
	}
	if ls.TopologyK != 0 && sampledPlanes == 0 {
		return fmt.Errorf("core: topology_k applies only to the sampled-gossip fabric (method %s, topology %q)",
			s.cfg.Method, s.cfg.Topology.Kind)
	}
	var newOpts *wire.Options
	if ls.CommsLevel != "" {
		if s.fcComms == nil {
			return fmt.Errorf("core: comms_level applies only to the decentralized planes (method %s has no codec)", s.cfg.Method)
		}
		level, err := wire.ParseLevel(ls.CommsLevel)
		if err != nil {
			return fmt.Errorf("core: %w", err)
		}
		opts := s.fcComms.Options()
		opts.Level = level
		if ls.TopKFrac != 0 {
			opts.TopKFrac = ls.TopKFrac
		}
		if err := opts.Validate(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
		cur := s.fcComms.Options()
		if opts != cur {
			newOpts = &opts
		}
	} else if ls.TopKFrac != 0 {
		return fmt.Errorf("core: topk_frac requires comms_level")
	}

	// Validation done — install. Fan-out first (SetSampleK re-validates
	// the bound against each plane's size).
	if ls.TopologyK != 0 {
		if s.fcNet != nil && s.fcNet.Config().Topology == fednet.Sampled {
			if err := s.fcNet.SetSampleK(ls.TopologyK); err != nil {
				return fmt.Errorf("core: forecast plane: %w", err)
			}
			s.cfg.Topology.K = ls.TopologyK
		}
		if s.drlNet != nil && s.drlNet.Config().Topology == fednet.Sampled {
			if err := s.drlNet.SetSampleK(ls.TopologyK); err != nil {
				return fmt.Errorf("core: EMS plane: %w", err)
			}
			if !s.cfg.EMSTopology.IsZero() {
				s.cfg.EMSTopology.K = ls.TopologyK
			}
		}
	}
	s.cfg.BetaHours = ls.BetaHours
	s.cfg.GammaHours = ls.GammaHours
	if newOpts != nil {
		s.swapExchanges(*newOpts)
	}
	return nil
}

// swapExchanges replaces both decentralized planes' wire codecs with fresh
// Exchanges running opts, carrying the cumulative codec counters over and
// re-pointing every round workspace at the new exchanges. The fresh
// reference stores mean each stream's next broadcast is a dense keyframe —
// the codec's normal cold-start path, so decoders need no special casing.
func (s *System) swapExchanges(opts wire.Options) {
	carry := func(old *wire.Exchange) *wire.Exchange {
		x := wire.NewExchange(opts)
		if old != nil {
			_ = x.RestoreState(wire.ExchangeState{Stats: old.Stats()})
		}
		return x
	}
	s.fcComms = carry(s.fcComms)
	s.drlComms = carry(s.drlComms)
	for _, ws := range s.fcRoundWS {
		ws.Comms = s.fcComms
	}
	if s.drlWS != nil {
		s.drlWS.Comms = s.drlComms
	}
	s.cfg.Comms = opts
}
