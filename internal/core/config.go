// Package core assembles the full PFDRL system of the paper — synthetic
// Pecan-Street-like homes, decentralized federated load forecasting, and
// per-residence DQN energy management with FedPer personalization — plus
// the four baselines it is compared against (Local, Cloud, FL, FRL). One
// Config/System/Result triple drives every experiment figure.
package core

import (
	"fmt"
	"time"

	"repro/internal/fed"
	"repro/internal/fednet"
	"repro/internal/forecast"
	"repro/internal/scenario"
	"repro/internal/wire"
)

// Method selects one of the five EMS architectures of the paper's Table 2.
type Method string

// The compared methods.
const (
	// MethodLocal trains both forecaster and DQN purely locally.
	MethodLocal Method = "Local"
	// MethodCloud uploads raw energy data to a cloud that trains a global
	// forecaster; the DQN stays local.
	MethodCloud Method = "Cloud"
	// MethodFL federates the forecaster through a cloud aggregation server
	// (parameters only); the DQN stays local.
	MethodFL Method = "FL"
	// MethodFRL federates both forecaster and the full DQN through a cloud
	// server (Lee et al.'s federated reinforcement learning).
	MethodFRL Method = "FRL"
	// MethodPFDRL is the paper's contribution: decentralized (serverless)
	// federation for the forecaster and for the first α base layers of the
	// DQN, with the remaining layers personalized per home.
	MethodPFDRL Method = "PFDRL"
)

// AllMethods lists the methods in the paper's order.
func AllMethods() []Method {
	return []Method{MethodLocal, MethodCloud, MethodFL, MethodFRL, MethodPFDRL}
}

// Valid reports whether m names a known method.
func (m Method) Valid() bool {
	switch m {
	case MethodLocal, MethodCloud, MethodFL, MethodFRL, MethodPFDRL:
		return true
	}
	return false
}

// SharesForecast reports whether the method trains forecasters
// collaboratively.
func (m Method) SharesForecast() bool { return m != MethodLocal }

// SharesEMS reports whether the method shares the EMS (DQN) plan.
func (m Method) SharesEMS() bool { return m == MethodFRL || m == MethodPFDRL }

// Decentralized reports whether the method avoids a cloud server.
func (m Method) Decentralized() bool { return m == MethodLocal || m == MethodPFDRL }

// Config parameterizes a simulation run. The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	// Method selects the EMS architecture.
	Method Method
	// Homes, Days, DevicesPerHome size the corpus.
	Homes, Days, DevicesPerHome int
	// Seed drives everything: corpus, model init, exploration.
	Seed int64

	// Alpha is the number of base (shared) DQN hidden layers, the paper's
	// α ∈ {1..8}. Alpha ≥ len(DQNHidden) shares the whole network
	// (no personalization). Only meaningful for PFDRL.
	Alpha int
	// BetaHours is the forecaster broadcast period β.
	BetaHours float64
	// GammaHours is the DQN broadcast period γ.
	GammaHours float64

	// ForecastKind picks the forecasting algorithm (default LSTM, the
	// paper's choice after Fig 5).
	ForecastKind forecast.Kind
	// ForecastWindow and ForecastHidden size the forecaster (experiment-
	// scale defaults are below paper scale for CPU tractability; see
	// EXPERIMENTS.md).
	ForecastWindow, ForecastHidden int
	// TrainEveryHours is how often (in simulated hours) each forecaster
	// takes a local training bout.
	TrainEveryHours int
	// TrainLookbackHours is how much recent history each bout trains on.
	TrainLookbackHours int
	// TrainBoutEpochs is how many SGD epochs each bout runs (default 1).
	TrainBoutEpochs int

	// DQNHidden lists the DQN hidden-layer widths (paper: eight 100s).
	DQNHidden []int
	// LookAhead/LookBack size the EMS state window (paper: full hour both).
	LookAhead, LookBack int
	// TimeFeatures appends sin/cos of the minute of day to the DQN state,
	// letting personalization layers express home-specific schedules.
	TimeFeatures bool
	// LearnEveryMinutes is the DQN learning cadence (1 = paper's every
	// minute; larger values trade fidelity for speed).
	LearnEveryMinutes int
	// DQNBatch is the replay minibatch size.
	DQNBatch int
	// DQNLearnRate is the agent's optimizer step (paper: 0.001).
	DQNLearnRate float64
	// EpsilonDecayDays spreads the exploration anneal over this many days.
	EpsilonDecayDays int

	// SensorDelayMinutes is the real-time feed's reporting lag: the EMS
	// state sees readings only up to t−delay, so the load forecast carries
	// genuine decision value. 0 = the paper's literal instant-feed state.
	SensorDelayMinutes int

	// DropProb injects message loss into both federation fabrics.
	DropProb float64
	// FaultPlan scripts deterministic faults (partitions, stragglers,
	// corruption, crashes) into both federation fabrics. Agent indices
	// are network indices: home i under PFDRL, home i+1 under star
	// methods (0 is the hub).
	FaultPlan fednet.FaultPlan
	// Retry configures send-side retry with backoff on both fabrics.
	// The zero value is fire-and-forget, the pre-retry behavior.
	Retry fednet.RetryPolicy

	// Comms selects the wire codec the decentralized federation planes
	// broadcast parameters with (see internal/wire). The default Delta
	// level is lossless — runs stay bit-identical to the dense format
	// while payloads shrink — and wire.TopK opts into lossy sparsified
	// payloads. Star-topology planes always speak the dense PFP1 format.
	Comms wire.Options

	// RawTraces opts the generated corpus out of the compressed columnar
	// trace store (internal/store): every trace keeps its samples as one
	// eager []float64 instead of lazily-decoded per-day blocks. The two
	// backings are bit-identical sample for sample and run for run (the
	// storage equivalence tests pin it); the knob exists for those twin
	// tests and for A/B memory measurements.
	RawTraces bool

	// DisableFleetBatch forces the per-home forecaster compute path,
	// bypassing the fleet-batched kernels that train and query every home's
	// same-type forecaster through one multi-home dispatch. The two paths
	// are bit-identical (the fleet-batch equivalence tests pin it); the knob
	// exists for those twin tests and for A/B timing.
	DisableFleetBatch bool

	// Topology selects the decentralized planes' federation fabric
	// (PFDRL only): the zero value keeps the paper's all-to-all
	// broadcast; sampled gossip and cluster aggregation scale to large
	// fleets with sub-quadratic message counts. EMSTopology, when set,
	// overrides the EMS (γ) plane independently — e.g. cluster the slow
	// forecaster plane while the DQN plane keeps sampled gossip.
	Topology, EMSTopology TopologySpec

	// Scenario layers a declarative workload onto the run (see
	// internal/scenario): DER deployments, demand-response events,
	// seasonal corpus knobs, and Byzantine peers. Nil — the default —
	// reproduces the paper's plain workload bit for bit.
	Scenario *scenario.Scenario
}

// DefaultConfig returns an experiment-scale configuration: faithful
// structure (all five methods, per-minute EMS decisions, the paper's
// reward/discount/memory settings) with model sizes reduced to pure-Go CPU
// scale. Paper-scale sizes are documented next to each field.
func DefaultConfig(method Method) Config {
	return Config{
		Method:             method,
		Homes:              8,
		Days:               12,
		DevicesPerHome:     3,
		Seed:               1,
		Alpha:              6,  // paper's best (Fig 2)
		BetaHours:          12, // paper's best (Fig 3)
		GammaHours:         12, // paper's best (Fig 4)
		ForecastKind:       forecast.KindLSTM,
		ForecastWindow:     24, // paper: 60
		ForecastHidden:     12, // paper-scale LSTM hidden: 32+
		TrainEveryHours:    4,
		TrainLookbackHours: 48,
		TrainBoutEpochs:    1,
		DQNHidden:          []int{24, 24, 24, 24, 24, 24, 24, 24}, // paper: 8×100
		LookAhead:          8,                                     // paper: 60
		LookBack:           8,                                     // paper: 60
		TimeFeatures:       true,
		LearnEveryMinutes:  10, // paper: 1
		DQNBatch:           16, // 32 at paper scale
		DQNLearnRate:       0.001,
		EpsilonDecayDays:   2,
		SensorDelayMinutes: 15,
		Comms:              wire.Options{Level: wire.Delta},
	}
}

// PaperScale returns cfg with the paper's full model sizes (8×100 DQN,
// 60-minute windows, per-minute learning). Orders of magnitude slower in
// pure Go; used by the quickstart example and headline benchmarks.
func (c Config) PaperScale() Config {
	c.ForecastWindow = 60
	c.ForecastHidden = 32
	c.DQNHidden = []int{100, 100, 100, 100, 100, 100, 100, 100}
	c.LookAhead = 60
	c.LookBack = 60
	c.LearnEveryMinutes = 1
	c.DQNBatch = 32
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if !c.Method.Valid() {
		return fmt.Errorf("core: unknown method %q", c.Method)
	}
	if c.Homes < 1 || c.Days < 1 || c.DevicesPerHome < 1 {
		return fmt.Errorf("core: need at least 1 home, day, and device (have %d/%d/%d)",
			c.Homes, c.Days, c.DevicesPerHome)
	}
	if len(c.DQNHidden) == 0 {
		return fmt.Errorf("core: DQNHidden must not be empty")
	}
	if c.Alpha < 0 || c.Alpha > len(c.DQNHidden) {
		return fmt.Errorf("core: Alpha %d outside [0,%d]", c.Alpha, len(c.DQNHidden))
	}
	if c.LookAhead < 1 || c.LookBack < 1 {
		return fmt.Errorf("core: state windows must be positive")
	}
	if c.LearnEveryMinutes < 1 {
		return fmt.Errorf("core: LearnEveryMinutes must be ≥ 1")
	}
	if c.SensorDelayMinutes < 0 {
		return fmt.Errorf("core: SensorDelayMinutes must be ≥ 0")
	}
	if c.DropProb < 0 || c.DropProb > 1 {
		return fmt.Errorf("core: DropProb %v outside [0,1]", c.DropProb)
	}
	if c.Method == MethodPFDRL && c.Alpha == 0 {
		return fmt.Errorf("core: PFDRL needs Alpha ≥ 1")
	}
	netSize := c.Homes
	if !c.Method.Decentralized() {
		netSize = c.Homes + 1 // hub
	}
	if err := c.FaultPlan.Validate(netSize); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := c.Comms.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := c.validateTopologies(); err != nil {
		return err
	}
	if err := c.Scenario.Validate(c.Homes, c.Days); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if c.Scenario != nil && !c.Scenario.AdversaryPlan().Empty() && c.Method != MethodPFDRL {
		return fmt.Errorf("core: scenario %q scripts an adversary; Byzantine rounds need the decentralized method (PFDRL, have %s)",
			c.Scenario.Name, c.Method)
	}
	return nil
}

// sharedTrainableLayers maps the paper's α (over hidden layers) onto the
// count of trainable layers DecentralizedRound shares. Sharing all hidden
// layers (α = len(hidden)) means no personalization: the output layer is
// shared too (full FedAvg, encoded as -1).
func (c Config) sharedTrainableLayers() int {
	if c.Alpha >= len(c.DQNHidden) {
		return -1
	}
	return c.Alpha
}

// Result is the outcome of one simulated run.
type Result struct {
	Method Method
	Config Config

	// DailySavedKWhPerHome[d] is the standby energy saved on day d,
	// averaged over homes (Fig 9's y-axis).
	DailySavedKWhPerHome []float64
	// DailySavedFrac[d] is saved standby energy as a fraction of available
	// standby energy on day d, averaged over homes.
	DailySavedFrac []float64
	// DailyMeanReward[d] is the mean per-step Table 1 reward on day d across
	// all homes and devices — the reward-level view of EMS plan quality
	// (savings alone saturate once the easy standby→off rule is learned;
	// reward still separates methods through comfort violations).
	DailyMeanReward []float64
	// PerHomeSavedKWhFinal is each home's saved kWh on the final day
	// (Fig 12's per-client view).
	PerHomeSavedKWhFinal []float64
	// PerHomeSavedFracFinal is each home's final-day saved fraction.
	PerHomeSavedFracFinal []float64
	// PerHomeRewardFinal is each home's final-day mean per-step reward.
	PerHomeRewardFinal []float64

	// AccuracySamples are per-minute forecast accuracies collected over the
	// final evaluation window (Fig 5's CDF input).
	AccuracySamples []float64
	// ForecastAccuracy is their mean (the paper's "92%" headline).
	ForecastAccuracy float64
	// AccuracyByHour is mean forecast accuracy per hour of day (Fig 6).
	AccuracyByHour [24]float64
	// SavedByHour is mean saved kWh per home per day, by hour (Fig 11),
	// over the final evaluation window.
	SavedByHour [24]float64

	// ConvergenceDay is the first day reaching 90% of the final savings
	// plateau (Fig 9's "time to best performance").
	ConvergenceDay int

	// Compute split by phase, plus simulated communication time.
	//
	// The four *Time fields are CPU-time sums: each parallel wave of homes
	// contributes the SUM of its per-home durations, so with H homes running
	// concurrently these can exceed elapsed wall-clock by up to H×. They are
	// the quantity the paper's overhead figures compare (total compute per
	// architecture). The *Wall fields are elapsed-time sums instead: each
	// wave contributes the duration of its critical path (the slowest home),
	// plus any non-overlapped federation round time on the orchestrator.
	ForecastTrainTime, ForecastTestTime time.Duration
	EMSTrainTime, EMSTestTime           time.Duration
	// ForecastTestWallTime covers the daily prediction waves;
	// ForecastTrainWallTime covers training-bout waves plus the
	// non-overlapped share of forecast-plane federation; EMSWallTime covers
	// the hourly EMS waves (test+train interleave within a wave) plus the
	// non-overlapped share of EMS-plane federation.
	ForecastTestWallTime, ForecastTrainWallTime time.Duration
	EMSWallTime                                 time.Duration
	ForecastCommTime, EMSCommTime               time.Duration
	// ForecastNetStats / EMSNetStats are the fabric counters.
	ForecastNetStats, EMSNetStats fednet.Stats
	// ForecastComms / EMSComms aggregate each plane's per-round byte
	// accounting: actual wire bytes vs the dense-format baseline
	// (CompressionRatio), including sub-period refire charges.
	ForecastComms, EMSComms fed.CommsTotals
	// Resilience tallies fault-tolerance telemetry: round participation,
	// retries, corrupt rejects, partition outage absorbed.
	Resilience ResilienceReport

	// DER aggregates the scenario's DER dispatch (nil when the run
	// deployed none).
	DER *DERReport
}
