package core

import (
	"fmt"

	"repro/internal/dqn"
	"repro/internal/energy"
	"repro/internal/fed"
	"repro/internal/fednet"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/pecan"
	"repro/internal/pricing"
	"repro/internal/scenario"
)

// defaultScenarioMonth anchors DER pricing and PV output when the scenario
// sets no Seasonal block (the plain corpus has no calendar): high-summer,
// where both the TOU peak spread and PV yield are at their widest.
const defaultScenarioMonth = 6

// DERReport aggregates one run's scenario DER dispatch: energy flows,
// reward, EV deadline performance, and the DER plane's federation rounds.
// Result.DER carries it (nil when the run deployed no DER).
type DERReport struct {
	// Units is the number of dispatchable units built (battery + EV agents
	// plus passive PV installations, summed over homes).
	Units int
	// Steps counts DER dispatch decisions; RewardSum their summed reward
	// (cents, negative = net cost).
	Steps     int
	RewardSum float64
	// GridImportKWh / GridExportKWh split the DER grid exchange by
	// direction; exports include battery discharge and unconsumed PV.
	GridImportKWh, GridExportKWh float64
	// PVGeneratedKWh is total PV production; PVUsedKWh the share consumed
	// on-site by battery charging and EV sessions.
	PVGeneratedKWh, PVUsedKWh float64
	// EVDeadlineMisses / EVShortfallKWh tally departure deadlines missed
	// and the energy short of target at those departures.
	EVDeadlineMisses int
	EVShortfallKWh   float64
	// CostCents is the net TOU cost of the DER grid exchange (imports
	// charged, exports credited; deadline penalties are excluded — they are
	// reward shaping, not money). DailyCostCents is its per-day series.
	CostCents      float64
	DailyCostCents []float64
	// Rounds counts DER-plane federation rounds (fleet-wide families under
	// PFDRL only).
	Rounds int
}

// derUnit is one home's dispatchable DER device and its DQN policy.
type derUnit struct {
	specIdx int
	kind    string
	bat     *energy.Battery
	ev      *energy.EVCharger
	agent   *dqn.Agent
	// state/next are the unit-owned observation scratch buffers (the
	// replay buffer copies what it keeps).
	state, next []float64
}

// derFamily is one fleet-wide DER spec's per-home agent set — the unit of
// DER-plane federation (partial deployments train locally only).
type derFamily struct {
	specIdx int
	// kind is the federation round kind, e.g. "der/battery.0".
	kind   string
	agents []*dqn.Agent
}

// scenarioState is the runtime the configured scenario adds to a System:
// DER units and their policies, the demand-response pricing overlay, and
// the shared adversary. A nil *scenarioState (no scenario) leaves every
// hook inert and the run bit-identical to pre-scenario builds.
type scenarioState struct {
	spec       *scenario.Scenario
	adv        *fed.Adversary
	tariff     pricing.Tariff
	overlay    *pricing.Overlay // nil without DR events
	startMonth int

	units [][]*derUnit     // [home][unit], spec order
	pv    [][]energy.PVSpec // [home] passive PV installations
	fams  []derFamily

	report  DERReport
	dayCost float64
}

// buildScenario constructs the runtime for cfg.Scenario (nil when the
// config carries none). cfg is already validated.
func buildScenario(cfg Config) (*scenarioState, error) {
	sc := cfg.Scenario
	if sc == nil {
		return nil, nil
	}
	st := &scenarioState{spec: sc, tariff: pricing.VariableRate{}}
	if sc.Seasonal != nil {
		st.startMonth = sc.Seasonal.StartMonth
	}
	st.overlay = sc.Overlay(st.tariff)
	if plan := sc.AdversaryPlan(); !plan.Empty() {
		st.adv = fed.NewAdversary(plan)
	}

	st.units = make([][]*derUnit, cfg.Homes)
	st.pv = make([][]energy.PVSpec, cfg.Homes)
	for si := range sc.DER {
		spec := &sc.DER[si]
		var fam *derFamily
		if spec.FleetWide() && spec.Kind() != "pv" && cfg.Method == MethodPFDRL {
			st.fams = append(st.fams, derFamily{
				specIdx: si,
				kind:    fmt.Sprintf("der/%s.%d", spec.Kind(), si),
			})
			fam = &st.fams[len(st.fams)-1]
		}
		for hi := 0; hi < cfg.Homes; hi++ {
			if !spec.AppliesTo(hi) {
				continue
			}
			if spec.PV != nil {
				st.pv[hi] = append(st.pv[hi], *spec.PV)
				st.report.Units++
				continue
			}
			u := &derUnit{specIdx: si, kind: spec.Kind()}
			var stateDim, actions int
			switch {
			case spec.Battery != nil:
				bat, err := energy.NewBattery(*spec.Battery)
				if err != nil {
					return nil, fmt.Errorf("core: scenario DER[%d] home %d: %w", si, hi, err)
				}
				u.bat = bat
				stateDim, actions = bat.StateDim(), bat.Actions()
			default:
				ev, err := energy.NewEVCharger(*spec.EV)
				if err != nil {
					return nil, fmt.Errorf("core: scenario DER[%d] home %d: %w", si, hi, err)
				}
				u.ev = ev
				stateDim, actions = ev.StateDim(), ev.Actions()
			}
			// DER policy nets mirror the EMS agents' shape and cadence. The
			// seed block (9000+) is disjoint from every appliance-plane
			// stream, and InitSeed is shared per spec so fleet-wide families
			// start aligned for parameter averaging.
			u.agent = dqn.New(dqn.Config{
				StateDim:  stateDim,
				Actions:   actions,
				Hidden:    cfg.DQNHidden,
				BatchSize: cfg.DQNBatch,
				LearnRate: cfg.DQNLearnRate,
				Epsilon: dqn.EpsilonSchedule{
					Start: 1, End: 0.02,
					DecaySteps: epsilonDays(cfg) * pecan.MinutesPerDay,
				},
				Seed:     cfg.Seed + int64(9000+hi*64+si),
				InitSeed: cfg.Seed + int64(600+si),
			})
			u.state = make([]float64, stateDim)
			u.next = make([]float64, stateDim)
			st.units[hi] = append(st.units[hi], u)
			st.report.Units++
			if fam != nil {
				fam.agents = append(fam.agents, u.agent)
			}
		}
	}
	return st, nil
}

// hasDER reports whether any dispatch work exists (nil-receiver safe).
func (st *scenarioState) hasDER() bool {
	if st == nil {
		return false
	}
	return st.report.Units > 0
}

// adversary returns the shared adversary runtime, nil without a plan.
func (s *System) adversary() *fed.Adversary {
	if s.scn == nil {
		return nil
	}
	return s.scn.adv
}

// monthAt maps a simulated day to a calendar month for pricing and PV:
// anchored at the scenario's StartMonth (default high summer) and
// advancing every 30 days, matching pecan's ~30.4-day seasonal phase.
func (st *scenarioState) monthAt(day int) int {
	m := st.startMonth
	if m < 1 {
		m = defaultScenarioMonth
	}
	return (m-1+day/30)%12 + 1
}

// priceAt is the effective TOU price with any DR window applied.
func (st *scenarioState) priceAt(day, month, minuteOfDay int) float64 {
	if st.overlay != nil {
		return st.overlay.PriceAt(day, month, minuteOfDay)
	}
	return st.tariff.PricePerKWh(month, minuteOfDay)
}

// beginDay resets the per-day accumulators.
func (st *scenarioState) beginDay() {
	if st == nil {
		return
	}
	st.dayCost = 0
}

// endDay closes the day's cost row.
func (st *scenarioState) endDay() {
	if st == nil {
		return
	}
	st.report.DailyCostCents = append(st.report.DailyCostCents, st.dayCost)
}

// runDERHour dispatches every home's DER units through one simulated hour:
// per minute, each unit observes (price, PV headroom, device state), acts
// ε-greedily, steps its device, and learns on the EMS cadence. Homes run
// serially in index order — the fleet is a handful of small nets and the
// serial schedule keeps float accumulation deterministic.
func (st *scenarioState) runDERHour(s *System, day, hour int) {
	month := st.monthAt(day)
	priceRef := pricing.MeanPrice(st.tariff, month)
	learnEvery := s.cfg.LearnEveryMinutes
	for m := hour * 60; m < (hour+1)*60; m++ {
		price := st.priceAt(day, month, m)
		curtail := st.spec.CurtailAt(day, m)
		done := m == pecan.MinutesPerDay-1
		var nextPrice float64
		if !done {
			nextPrice = st.priceAt(day, month, m+1)
		}
		for hi := range st.units {
			pvAvail := 0.0
			for _, pv := range st.pv[hi] {
				pvAvail += pv.OutputKW(month, m)
			}
			st.report.PVGeneratedKWh += pvAvail / 60
			// Next-minute PV headroom is quoted pre-consumption: the units'
			// next-state observations share it without re-running dispatch.
			nextPV := 0.0
			if !done {
				for _, pv := range st.pv[hi] {
					nextPV += pv.OutputKW(month, m+1)
				}
			}
			for _, u := range st.units[hi] {
				var step energy.DERStep
				var action int
				if u.bat != nil {
					state := u.bat.StateInto(u.state, price, priceRef, pvAvail, m)
					action = u.agent.SelectAction(state)
					step = u.bat.Step(action, pvAvail, price)
				} else {
					state := u.ev.StateInto(u.state, price, priceRef, m)
					action = u.agent.SelectAction(state)
					step = u.ev.Step(action, pvAvail, price, curtail, m)
				}
				pvAvail -= step.PVUsedKW
				st.report.Steps++
				st.report.RewardSum += step.Reward
				st.report.PVUsedKWh += step.PVUsedKW / 60
				if step.GridKW > 0 {
					st.report.GridImportKWh += step.GridKW / 60
				} else {
					st.report.GridExportKWh += -step.GridKW / 60
				}
				cost := step.GridKW / 60 * price * 100
				st.report.CostCents += cost
				st.dayCost += cost
				if step.DeadlineMiss {
					st.report.EVDeadlineMisses++
					st.report.EVShortfallKWh += step.ShortfallKWh
				}
				var next []float64
				if !done {
					if u.bat != nil {
						next = u.bat.StateInto(u.next, nextPrice, priceRef, nextPV, m+1)
					} else {
						next = u.ev.StateInto(u.next, nextPrice, priceRef, m+1)
					}
				}
				u.agent.Observe(dqn.Transition{
					State: u.state, Action: action, Reward: step.Reward, Next: next, Done: done,
				})
				if m%learnEvery == 0 {
					u.agent.Learn()
				}
			}
			// Whatever PV the units left unconsumed exports to the grid.
			st.report.GridExportKWh += pvAvail / 60
			dayCredit := pvAvail / 60 * price * 100
			st.report.CostCents -= dayCredit
			st.dayCost -= dayCredit
		}
	}
}

// derRounds runs one γ-period federation round per fleet-wide DER family
// over the EMS plane (PFDRL only), reusing the EMS round workspace — the
// rounds are synchronous and sequential, so the shared buffers are free.
func (s *System) derRounds(timer *metrics.Timer, fires int) error {
	timer.Start("ems-train")
	defer timer.Stop("ems-train")
	st := s.scn
	alpha := s.cfg.sharedTrainableLayers()
	ws := s.emsWorkspace()
	for fi := range st.fams {
		fam := &st.fams[fi]
		models := make([]*nn.Sequential, len(fam.agents))
		for i, a := range fam.agents {
			models[i] = a.Online
		}
		var rep fed.RoundReport
		var err error
		switch s.drlNet.Config().Topology {
		case fednet.Sampled:
			rep, err = fed.BeginSampledGossipRound(s.drlNet, models, fam.kind, alpha, ws).Join()
		case fednet.Cluster:
			rep, err = fed.ClusterRound(s.drlNet, models, fam.kind, alpha, ws)
		default:
			rep, err = fed.BeginDecentralizedRound(s.drlNet, models, fam.kind, alpha, ws).Join()
		}
		if err != nil {
			return err
		}
		s.resil.absorb(rep)
		s.emsCommsTot.Absorb(rep)
		s.noteRound("ems", rep)
		st.report.Rounds++
		for _, a := range fam.agents {
			a.SyncTarget()
		}
		if fires > 1 {
			shared := models[0].Params()
			if alpha >= 0 {
				shared = models[0].ParamsOfTrainableRange(0, alpha)
			}
			chargeRefires(s.drlNet, &s.emsCommsTot, s.drlComms, shared, nn.ParamsWireSize(shared), fires-1)
		}
	}
	return nil
}

// emsWorkspace returns the (lazily created) EMS-plane round workspace,
// shared by the γ round and the DER family rounds.
func (s *System) emsWorkspace() *fed.RoundWorkspace {
	if s.drlWS == nil {
		s.drlWS = &fed.RoundWorkspace{Comms: s.drlComms, Tel: s.drlRoundTel, Adv: s.adversary()}
	}
	return s.drlWS
}
