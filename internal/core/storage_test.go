package core

import (
	"bytes"
	"testing"

	"repro/internal/pecan"
)

// TestStorageBackingEquivalence is the trace-store tentpole's contract at
// the system level: a full simulation over store-backed traces (the
// default) is bitwise identical to one over eager raw slices, across every
// method × topology × codec configuration the engine equivalence matrix
// covers. Config is normalized for the knob itself before comparison — it
// is the one field that legitimately differs between the twins.
func TestStorageBackingEquivalence(t *testing.T) {
	for name, cfg := range engineConfigs() {
		t.Run(name, func(t *testing.T) {
			stored := mustRun(t, cfg)

			raw := cfg
			raw.RawTraces = true
			want := mustRun(t, raw)

			stored.Config.RawTraces = true
			assertResultsEqual(t, name, want, stored)
		})
	}
}

// TestStorageCompressesCorpus sanity-checks the memory story end to end:
// the system's resident trace storage under the default backing must be a
// fraction of the raw representation's.
func TestStorageCompressesCorpus(t *testing.T) {
	cfg := tinyConfig(MethodLocal)
	cfg.Homes, cfg.Days = 4, 4
	stored, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	raw := cfg
	raw.RawTraces = true
	eager, err := NewSystem(raw)
	if err != nil {
		t.Fatal(err)
	}
	sb, rb := stored.ds.StorageBytes(), eager.ds.StorageBytes()
	if sb*2 >= rb {
		t.Fatalf("store backing %d bytes vs raw %d: expected at least 2x smaller", sb, rb)
	}
}

// TestSimulateFromImportedCSV is the importer's end-to-end fixture: a
// Dataport-shaped CSV export ingested into compressed blocks must drive a
// full simulation. (Bit-equality with the originating run is out of reach
// by design — the CSV format carries readings, not each home's perturbed
// device signature — so the fixture pins viability plus determinism: two
// simulations over the same imported corpus are bitwise identical.)
func TestSimulateFromImportedCSV(t *testing.T) {
	cfg := tinyConfig(MethodPFDRL)
	direct, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var export bytes.Buffer
	if err := direct.Dataset().WriteCSV(&export); err != nil {
		t.Fatal(err)
	}
	imported, err := pecan.ReadCSV(bytes.NewReader(export.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range imported.Homes {
		for _, tr := range h.Traces {
			if tr.Series().StorageBytes() >= 8*tr.Len() {
				t.Fatalf("imported trace not compressed: %d bytes for %d samples",
					tr.Series().StorageBytes(), tr.Len())
			}
		}
	}

	runImported := func() *Result {
		t.Helper()
		sys, err := NewSystemFromDataset(cfg, imported)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	got := runImported()
	if got.Config.Homes != cfg.Homes || got.Config.Days != cfg.Days {
		t.Fatalf("imported run shape %d homes × %d days, want %d × %d",
			got.Config.Homes, got.Config.Days, cfg.Homes, cfg.Days)
	}
	if len(got.DailySavedKWhPerHome) != cfg.Days || len(got.AccuracySamples) == 0 {
		t.Fatalf("imported run degenerate: %d daily rows, %d accuracy samples",
			len(got.DailySavedKWhPerHome), len(got.AccuracySamples))
	}

	imported2, err := pecan.ReadCSV(bytes.NewReader(export.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	imported = imported2
	assertResultsEqual(t, "imported-csv determinism", got, runImported())
}

func TestNewSystemFromDatasetRejectsEmpty(t *testing.T) {
	if _, err := NewSystemFromDataset(tinyConfig(MethodLocal), &pecan.Dataset{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}
