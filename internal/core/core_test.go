package core

import (
	"math"
	"testing"

	"repro/internal/fed"
	"repro/internal/forecast"
)

// tinyConfig is a minimal-but-complete configuration for fast tests.
func tinyConfig(m Method) Config {
	cfg := DefaultConfig(m)
	cfg.Homes = 3
	cfg.Days = 3
	cfg.DevicesPerHome = 2
	cfg.ForecastKind = forecast.KindLR // cheapest
	cfg.ForecastWindow = 16
	cfg.DQNHidden = []int{12, 12}
	cfg.Alpha = 1
	cfg.LookAhead, cfg.LookBack = 4, 4
	cfg.LearnEveryMinutes = 20
	cfg.DQNBatch = 8
	cfg.TrainEveryHours = 8
	cfg.BetaHours = 12
	cfg.GammaHours = 12
	return cfg
}

func TestConfigValidate(t *testing.T) {
	good := tinyConfig(MethodPFDRL)
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Method = "Quantum" },
		func(c *Config) { c.Homes = 0 },
		func(c *Config) { c.Days = 0 },
		func(c *Config) { c.DevicesPerHome = 0 },
		func(c *Config) { c.DQNHidden = nil },
		func(c *Config) { c.Alpha = 99 },
		func(c *Config) { c.Alpha = -1 },
		func(c *Config) { c.LookAhead = 0 },
		func(c *Config) { c.DropProb = 1.5 },
		func(c *Config) { c.DropProb = -0.1 },
		func(c *Config) { c.LearnEveryMinutes = 0 },
		func(c *Config) { c.Method = MethodPFDRL; c.Alpha = 0 },
	}
	for i, mut := range cases {
		c := tinyConfig(MethodPFDRL)
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: bad config accepted", i)
		}
	}
}

func TestMethodPredicates(t *testing.T) {
	if len(AllMethods()) != 5 {
		t.Fatal("expected 5 methods")
	}
	if MethodLocal.SharesForecast() || !MethodCloud.SharesForecast() {
		t.Fatal("SharesForecast wrong")
	}
	if MethodFL.SharesEMS() || !MethodFRL.SharesEMS() || !MethodPFDRL.SharesEMS() {
		t.Fatal("SharesEMS wrong")
	}
	if !MethodLocal.Decentralized() || !MethodPFDRL.Decentralized() || MethodCloud.Decentralized() {
		t.Fatal("Decentralized wrong")
	}
	if Method("bogus").Valid() {
		t.Fatal("bogus method valid")
	}
}

func TestSharedTrainableLayersMapping(t *testing.T) {
	c := tinyConfig(MethodPFDRL)
	c.DQNHidden = []int{10, 10, 10}
	c.Alpha = 2
	if got := c.sharedTrainableLayers(); got != 2 {
		t.Fatalf("alpha 2 of 3 → %d, want 2", got)
	}
	c.Alpha = 3 // all hidden layers shared → full FedAvg
	if got := c.sharedTrainableLayers(); got != -1 {
		t.Fatalf("alpha = len(hidden) → %d, want -1", got)
	}
}

func TestNewSystemRejectsBadConfig(t *testing.T) {
	c := tinyConfig(MethodPFDRL)
	c.Homes = 0
	if _, err := NewSystem(c); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestRunAllMethodsSmoke(t *testing.T) {
	for _, m := range AllMethods() {
		s, err := NewSystem(tinyConfig(m))
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if len(res.DailySavedKWhPerHome) != 3 || len(res.DailySavedFrac) != 3 {
			t.Fatalf("%s: daily series length wrong", m)
		}
		for d, f := range res.DailySavedFrac {
			if f < 0 || f > 1 || math.IsNaN(f) {
				t.Fatalf("%s day %d: saved fraction %v out of range", m, d, f)
			}
		}
		if len(res.PerHomeSavedKWhFinal) != 3 || len(res.PerHomeSavedFracFinal) != 3 {
			t.Fatalf("%s: per-home results missing", m)
		}
		if res.ForecastAccuracy <= 0 || res.ForecastAccuracy > 1 {
			t.Fatalf("%s: forecast accuracy %v implausible", m, res.ForecastAccuracy)
		}
		if len(res.AccuracySamples) == 0 {
			t.Fatalf("%s: no accuracy samples", m)
		}
		if res.EMSTestTime <= 0 || res.EMSTrainTime <= 0 {
			t.Fatalf("%s: EMS timers empty", m)
		}
		// Communication planes must match the method.
		fcComm := res.ForecastNetStats.MessagesSent > 0
		emsComm := res.EMSNetStats.MessagesSent > 0
		if fcComm != m.SharesForecast() {
			t.Fatalf("%s: forecast comm = %v, want %v", m, fcComm, m.SharesForecast())
		}
		if emsComm != m.SharesEMS() {
			t.Fatalf("%s: EMS comm = %v, want %v", m, emsComm, m.SharesEMS())
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() *Result {
		s, err := NewSystem(tinyConfig(MethodPFDRL))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for d := range a.DailySavedFrac {
		if a.DailySavedFrac[d] != b.DailySavedFrac[d] {
			t.Fatalf("day %d: %v vs %v", d, a.DailySavedFrac[d], b.DailySavedFrac[d])
		}
	}
	if a.ForecastAccuracy != b.ForecastAccuracy {
		t.Fatal("accuracy not deterministic")
	}
}

func TestSavingsImproveWithTraining(t *testing.T) {
	cfg := tinyConfig(MethodPFDRL)
	cfg.Days = 6
	cfg.LearnEveryMinutes = 5
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	early := res.DailySavedFrac[0]
	late := res.DailySavedFrac[len(res.DailySavedFrac)-1]
	if late <= early {
		t.Fatalf("savings did not improve: day0=%.3f dayN=%.3f", early, late)
	}
	if late < 0.3 {
		t.Fatalf("final saved fraction %.3f implausibly low", late)
	}
}

func TestPFDRLPersonalizationKeepsModelsDistinct(t *testing.T) {
	cfg := tinyConfig(MethodPFDRL)
	cfg.DQNHidden = []int{12, 12, 12}
	cfg.Alpha = 1
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Base layers identical across homes; later layers distinct.
	a := s.homes[0].agent.Online
	b := s.homes[1].agent.Online
	basesA := a.ParamsOfTrainableRange(0, 1)
	basesB := b.ParamsOfTrainableRange(0, 1)
	for i := range basesA {
		if !basesA[i].AlmostEqual(basesB[i], 1e-9) {
			t.Fatal("base layers diverged despite federation")
		}
	}
	persA := a.ParamsOfTrainableRange(1, a.NumTrainableLayers())
	persB := b.ParamsOfTrainableRange(1, b.NumTrainableLayers())
	distinct := false
	for i := range persA {
		if !persA[i].AlmostEqual(persB[i], 1e-9) {
			distinct = true
			break
		}
	}
	if !distinct {
		t.Fatal("personalization layers identical — split not applied")
	}
}

func TestFRLFullySynchronizesAgents(t *testing.T) {
	cfg := tinyConfig(MethodFRL)
	cfg.GammaHours = 24 // final round at end of last day
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	a := s.homes[0].agent.Online.Params()
	b := s.homes[1].agent.Online.Params()
	for i := range a {
		if !a[i].AlmostEqual(b[i], 1e-9) {
			t.Fatal("FRL agents not synchronized after final round")
		}
	}
}

func TestCloudUploadsRawData(t *testing.T) {
	cfg := tinyConfig(MethodCloud)
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 3 homes × 2 devices × 3 days of raw uploads, plus model downloads.
	minRaw := int64(3 * 2 * 3 * rawDayBytes)
	if res.ForecastNetStats.BytesSent < minRaw {
		t.Fatalf("cloud bytes %d below raw-data floor %d", res.ForecastNetStats.BytesSent, minRaw)
	}
	// FL moves parameters only — no raw-data uploads on its fabric.
	flRes := mustRun(t, tinyConfig(MethodFL))
	if flRes.ForecastNetStats.BytesSent == 0 {
		t.Fatal("FL moved no bytes")
	}
}

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFiresInHour(t *testing.T) {
	// β = 2h: fires once at even-hour boundaries.
	if got := firesInHour(2, 120); got != 1 {
		t.Fatalf("2h period at minute 120: %d fires", got)
	}
	if got := firesInHour(2, 60); got != 0 {
		t.Fatalf("2h period at minute 60: %d fires", got)
	}
	// β = 0.1h = 6 minutes: 10 fires per hour.
	if got := firesInHour(0.1, 120); got != 10 {
		t.Fatalf("0.1h period: %d fires, want 10", got)
	}
	// Disabled.
	if got := firesInHour(0, 60); got != 0 {
		t.Fatal("disabled schedule fired")
	}
}

func TestFiresInHourFractionalPeriods(t *testing.T) {
	// β = 0.5h: two fires every hour. The first hour of day 0 spans minutes
	// 1..60 — minute 0 never fires, but minutes 30 and 60 do, so even the
	// boundary hour bills two rounds.
	for hourEnd := 60; hourEnd <= 1440; hourEnd += 60 {
		if got := firesInHour(0.5, hourEnd); got != 2 {
			t.Fatalf("0.5h period, hour ending %d: %d fires, want 2", hourEnd, got)
		}
	}
	// β = 1.5h: fire instants (90, 180, 270, ...) drift across hours, giving
	// a repeating 0,1,1 per-hour pattern starting from the first hour.
	wantPattern := []int{0, 1, 1}
	for h := 0; h < 24; h++ {
		hourEnd := (h + 1) * 60
		if got := firesInHour(1.5, hourEnd); got != wantPattern[h%3] {
			t.Fatalf("1.5h period, hour ending %d: %d fires, want %d",
				hourEnd, got, wantPattern[h%3])
		}
	}
	// Hour-by-hour billing must add up to the schedule's own daily total.
	for _, period := range []float64{0.5, 1.5} {
		total := 0
		for hourEnd := 60; hourEnd <= 1440; hourEnd += 60 {
			total += firesInHour(period, hourEnd)
		}
		want := (fed.Schedule{PeriodHours: period}).RoundsPerDay()
		if total != want {
			t.Fatalf("period %.1fh: hourly fires sum to %d, RoundsPerDay = %d",
				period, total, want)
		}
	}
}

func TestDropTolerance(t *testing.T) {
	cfg := tinyConfig(MethodPFDRL)
	cfg.DropProb = 0.4
	res := mustRun(t, cfg)
	for _, f := range res.DailySavedFrac {
		if math.IsNaN(f) {
			t.Fatal("drops produced NaN savings")
		}
	}
	if res.ForecastNetStats.MessagesDropped == 0 {
		t.Fatal("drop injection did not drop anything")
	}
}
