package core

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/fednet"
)

// topoConfig is tinyConfig at a fleet size where sampled gossip and
// clustering are both legal.
func topoConfig() Config {
	cfg := tinyConfig(MethodPFDRL)
	cfg.Homes = 6
	return cfg
}

func TestTopologySpecValidation(t *testing.T) {
	cases := []struct {
		name  string
		mut   func(*Config)
		ok    bool
		typed bool // invalid specs surface fednet.ErrTopology
	}{
		{name: "default all-to-all", mut: func(c *Config) {}, ok: true},
		{name: "explicit all-to-all", mut: func(c *Config) { c.Topology = TopologySpec{Kind: TopoAllToAll} }, ok: true},
		{name: "sampled k=2", mut: func(c *Config) { c.Topology = TopologySpec{Kind: TopoSampled, K: 2} }, ok: true},
		{name: "cluster size 3", mut: func(c *Config) { c.Topology = TopologySpec{Kind: TopoCluster, ClusterSize: 3} }, ok: true},
		{name: "ems override", mut: func(c *Config) {
			c.Topology = TopologySpec{Kind: TopoSampled, K: 2}
			c.EMSTopology = TopologySpec{Kind: TopoCluster, ClusterSize: 2}
		}, ok: true},
		{name: "unknown kind", mut: func(c *Config) { c.Topology = TopologySpec{Kind: "mesh"} }},
		{name: "sampled k=0", mut: func(c *Config) { c.Topology = TopologySpec{Kind: TopoSampled} }, typed: true},
		{name: "sampled k=homes", mut: func(c *Config) { c.Topology = TopologySpec{Kind: TopoSampled, K: 6} }, typed: true},
		{name: "cluster no size", mut: func(c *Config) { c.Topology = TopologySpec{Kind: TopoCluster} }, typed: true},
		{name: "all-to-all with k", mut: func(c *Config) { c.Topology = TopologySpec{Kind: TopoAllToAll, K: 3} }},
		{name: "ems override bad", mut: func(c *Config) {
			c.EMSTopology = TopologySpec{Kind: TopoSampled, K: 9}
		}, typed: true},
		{name: "non-decentralized method", mut: func(c *Config) {
			c.Method = MethodFL
			c.Topology = TopologySpec{Kind: TopoSampled, K: 2}
		}},
	}
	for _, tc := range cases {
		c := topoConfig()
		tc.mut(&c)
		err := c.Validate()
		if tc.ok {
			if err != nil {
				t.Fatalf("%s: rejected: %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if tc.typed && !errors.Is(err, fednet.ErrTopology) {
			t.Fatalf("%s: error not fednet.ErrTopology: %v", tc.name, err)
		}
		if _, nerr := NewSystem(c); nerr == nil {
			t.Fatalf("%s: NewSystem accepted invalid config", tc.name)
		}
	}
}

func TestSystemAppliesTopologySpecs(t *testing.T) {
	cfg := topoConfig()
	cfg.Topology = TopologySpec{Kind: TopoSampled, K: 2}
	cfg.EMSTopology = TopologySpec{Kind: TopoCluster, ClusterSize: 3}
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.fcNet.Config(); got.Topology != fednet.Sampled || got.SampleK != 2 {
		t.Fatalf("forecast fabric %v k=%d, want sampled k=2", got.Topology, got.SampleK)
	}
	if got := s.drlNet.Config(); got.Topology != fednet.Cluster || got.ClusterSize != 3 {
		t.Fatalf("EMS fabric %v size=%d, want cluster size=3", got.Topology, got.ClusterSize)
	}

	// Without the override, the EMS plane inherits the shared spec.
	cfg.EMSTopology = TopologySpec{}
	s, err = NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.drlNet.Config(); got.Topology != fednet.Sampled || got.SampleK != 2 {
		t.Fatalf("EMS fabric %v, want inherited sampled k=2", got.Topology)
	}
}

// TestTopologyRunsDeterministic runs the full simulation twice per
// topology and demands identical Results — the topology layer must not
// leak nondeterminism (map iteration, shared RNGs) into the pipeline.
// It also checks the fabrics actually carried the expected traffic shape.
func TestTopologyRunsDeterministic(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec TopologySpec
	}{
		{"sampled", TopologySpec{Kind: TopoSampled, K: 2}},
		{"cluster", TopologySpec{Kind: TopoCluster, ClusterSize: 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := topoConfig()
			cfg.Topology = tc.spec
			a, b := mustRun(t, cfg), mustRun(t, cfg)
			// Durations are wall clock; everything simulated must match.
			if !reflect.DeepEqual(a.DailySavedKWhPerHome, b.DailySavedKWhPerHome) ||
				!reflect.DeepEqual(a.PerHomeSavedKWhFinal, b.PerHomeSavedKWhFinal) ||
				!reflect.DeepEqual(a.AccuracySamples, b.AccuracySamples) {
				t.Fatal("twin runs diverged on simulated outcomes")
			}
			if a.ForecastNetStats != b.ForecastNetStats || a.EMSNetStats != b.EMSNetStats {
				t.Fatal("twin runs diverged on fabric stats")
			}
			if a.Resilience != b.Resilience || a.ForecastComms != b.ForecastComms || a.EMSComms != b.EMSComms {
				t.Fatal("twin runs diverged on round accounting")
			}
			if a.ForecastNetStats.MessagesSent == 0 || a.EMSNetStats.MessagesSent == 0 {
				t.Fatal("topology run moved no messages")
			}
			// Both fabrics must undercut all-to-all's n(n−1) per round.
			allToAll := mustRun(t, topoConfig())
			if a.ForecastNetStats.MessagesSent >= allToAll.ForecastNetStats.MessagesSent {
				t.Fatalf("%s sent %d forecast messages, all-to-all %d",
					tc.name, a.ForecastNetStats.MessagesSent, allToAll.ForecastNetStats.MessagesSent)
			}
			if a.Resilience.DegradedRounds != 0 {
				t.Fatalf("clean %s run reported %d degraded rounds", tc.name, a.Resilience.DegradedRounds)
			}
		})
	}
}
