package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/energy"
	"repro/internal/metrics"
	"repro/internal/pecan"
)

// ErrEngineDone is returned by StepHour/StepDay once every configured day
// has been stepped; the only legal next call is Finish.
var ErrEngineDone = errors.New("core: engine has stepped all configured days")

// ErrEngineFinished is returned when stepping an engine whose Finish has
// already run.
var ErrEngineFinished = errors.New("core: engine already finished")

// ErrScenarioSnapshot is returned by WriteSnapshot when the run carries a
// scenario: the v3 checkpoint format does not serialize scenario runtime
// state (DER devices and policies, adversary counters).
var ErrScenarioSnapshot = errors.New("core: snapshots of scenario runs are not supported")

// Engine is the stepwise form of the simulation loop. Where Run drives all
// cfg.Days days to completion in one call, an Engine exposes the loop's
// clock: StepHour advances exactly one simulated hour (lazily preparing the
// day's forecasts and environments at hour 0, closing the day's accounting
// after hour 23), StepDay advances to the next day boundary, and Finish
// lands in-flight federation rounds and assembles the Result. Run() is a
// thin driver over this type, and the twin-run tests in engine_test.go pin
// the two paths bit-identical.
//
// The split exists for the service mode: a daemon can hold an Engine
// mid-stream, serve forecasts and device plans between steps, snapshot the
// full fleet to disk, and resume later — none of which a monolithic Run
// can offer. All mutating methods must be externally serialized (the
// daemon holds one mutex across step/serve/snapshot).
type Engine struct {
	sys   *System
	timer *metrics.Timer
	res   *Result

	// day/hour is the engine clock: the NEXT hour StepHour will simulate.
	// dayPrepared records whether beginDay has run for the current day
	// (forecasts predicted, environments built, per-day accumulators
	// reset); it goes false again once endDay closes the day.
	day, hour   int
	dayPrepared bool
	finished    bool

	evalDays, evalStart int

	accBuckets  metrics.HourBuckets
	savedByHour [24]float64

	// Per-day state, valid while dayPrepared.
	envs           [][]*energy.Env
	perHomeSaved   []float64
	perHomeStandby []float64
	perHomeReward  []float64
	perHomeSteps   []int
	dayReward      float64
	daySteps       int
	hourStats      []emsHourStats
}

// NewEngine builds a stepwise engine over the system, resetting the
// system's per-run accumulators exactly as Run's prologue does.
func NewEngine(s *System) *Engine {
	cfg := s.cfg
	e := &Engine{
		sys:   s,
		timer: metrics.NewTimer(),
		res:   &Result{Method: cfg.Method, Config: cfg},
	}
	s.resil = ResilienceReport{}
	e.evalDays = cfg.Days / 4
	if e.evalDays < 1 {
		e.evalDays = 1
	}
	e.evalStart = cfg.Days - e.evalDays
	return e
}

// Day returns the engine clock's current day (the day StepHour is inside,
// or about to enter).
func (e *Engine) Day() int { return e.day }

// Hour returns the engine clock's current hour within Day.
func (e *Engine) Hour() int { return e.hour }

// Minute returns the absolute simulated minute the clock stands at.
func (e *Engine) Minute() int { return e.day*pecan.MinutesPerDay + e.hour*60 }

// Done reports whether every configured day has been stepped. A Done
// engine accepts only Finish.
func (e *Engine) Done() bool { return e.day >= e.sys.cfg.Days }

// Finished reports whether Finish has run.
func (e *Engine) Finished() bool { return e.finished }

// System exposes the underlying system (the daemon reads live settings and
// serves model queries through it).
func (e *Engine) System() *System { return e.sys }

// StepHour simulates exactly one hour: EMS minute loop with local DRL
// training across all homes, then the hour-boundary work (fabric clock,
// forecaster training bouts, β/γ federation rounds). At hour 0 it first
// prepares the day (joins pending forecast rounds, predicts the day's
// forecasts, builds environments); after hour 23 it closes the day's
// accounting and advances to the next day.
func (e *Engine) StepHour() error {
	if e.finished {
		return ErrEngineFinished
	}
	if e.Done() {
		return ErrEngineDone
	}
	if !e.dayPrepared {
		if err := e.beginDay(); err != nil {
			return err
		}
	}
	if err := e.runHour(); err != nil {
		return err
	}
	e.hour++
	if e.hour == 24 {
		if err := e.endDay(); err != nil {
			return err
		}
		e.hour = 0
		e.day++
		e.dayPrepared = false
	}
	return nil
}

// StepDay advances the clock to the next day boundary: a full day when the
// clock stands at hour 0, the remainder of the current day otherwise.
func (e *Engine) StepDay() error {
	if e.finished {
		return ErrEngineFinished
	}
	if e.Done() {
		return ErrEngineDone
	}
	target := e.day + 1
	for !e.Done() && e.day < target {
		if err := e.StepHour(); err != nil {
			return err
		}
	}
	return nil
}

// inEval reports whether the engine's current day falls in the evaluation
// window (the trailing quarter of the run).
func (e *Engine) inEval() bool { return e.day >= e.evalStart }

// beginDay runs the day's forecast phase and builds its EMS state: joins
// any β round still aggregating (prediction reads the very models it
// installs), predicts every (home, device) day concurrently, collects
// accuracy inside the eval window, constructs the day's environments, and
// resets the per-day accumulators.
func (e *Engine) beginDay() error {
	s := e.sys
	day := e.day

	if err := s.joinForecastRounds(e.timer); err != nil {
		return err
	}
	// The prediction wave runs fleet-batched when the forecaster kind
	// supports it (one multi-home forward per device type) and falls back
	// to concurrent per-pair prediction otherwise; accuracy collection
	// stays serial for deterministic aggregation order. The timer keeps two
	// series: the per-task sum (CPU time) and the wave's elapsed time
	// (wall).
	waveStart := time.Now()
	s.predictDayWave(e.timer, day)
	e.timer.Add("fc-test.wall", time.Since(waveStart))
	if e.inEval() {
		for _, h := range s.homes {
			s.collectAccuracy(e.res, &e.accBuckets, h, day)
		}
	}

	envs, err := s.buildDayEnvs(day)
	if err != nil {
		return err
	}
	e.envs = envs
	e.perHomeSaved = make([]float64, len(s.homes))
	e.perHomeStandby = make([]float64, len(s.homes))
	e.perHomeReward = make([]float64, len(s.homes))
	e.perHomeSteps = make([]int, len(s.homes))
	e.dayReward, e.daySteps = 0.0, 0
	e.hourStats = make([]emsHourStats, len(s.homes))
	s.scn.beginDay()
	e.dayPrepared = true
	return nil
}

// buildDayEnvs constructs every home's device environments for one day
// from the already-predicted forecasts (h.predDay) and the trace truth.
// It is a pure function of (predDay, dataset, cfg), which is what lets a
// snapshot restore rebuild mid-day environments instead of serializing
// them: core never calls Env.Step, so an Env holds no mutable state.
func (s *System) buildDayEnvs(day int) ([][]*energy.Env, error) {
	envs := make([][]*energy.Env, len(s.homes))
	for hi, h := range s.homes {
		he, err := s.buildHomeDayEnvs(h, day)
		if err != nil {
			return nil, err
		}
		envs[hi] = he
	}
	return envs, nil
}

// buildHomeDayEnvs builds one home's device environments for one day from
// its current predDay forecasts.
func (s *System) buildHomeDayEnvs(h *simHome, day int) ([]*energy.Env, error) {
	cfg := s.cfg
	envs := make([]*energy.Env, len(h.src.Traces))
	for di, tr := range h.src.Traces {
		// Env retains the truth slice for the whole day, so it gets the
		// home-owned stable copy, not the trace's shared decoded-day cache.
		h.envDay[di] = tr.DayInto(day, h.envDay[di])
		env, err := energy.NewEnv(tr.Device, h.predDay[di], h.envDay[di])
		if err != nil {
			return nil, fmt.Errorf("core: home %d %s: %w", h.id, tr.Device.Type, err)
		}
		env.LookAhead, env.LookBack = cfg.LookAhead, cfg.LookBack
		env.SensorDelay = cfg.SensorDelayMinutes
		if nom := s.nominalKW[tr.Device.Type]; nom > 0 {
			env.NormKW = nom
		}
		envs[di] = env
	}
	return envs, nil
}

// runHour simulates the current hour across all homes and runs the
// hour-boundary work: clock advance, forecaster training bouts, and the
// β/γ federation rounds the schedules fire.
func (e *Engine) runHour() error {
	s := e.sys
	cfg := s.cfg
	day, hour := e.day, e.hour

	// Homes run their EMS hour concurrently: each home's agent,
	// environments, and RNGs are private, so results are identical
	// to the serial schedule; aggregation below follows home order
	// so float summation stays deterministic.
	emsWave := time.Now()
	s.parallelHomes(func(h *simHome) {
		e.hourStats[h.id] = s.runEMSHour(h, e.envs[h.id], hour)
	})
	e.timer.Add("ems.wall", time.Since(emsWave))
	var hourTot emsHourStats
	for hi := range s.homes {
		st := e.hourStats[hi]
		e.perHomeSaved[hi] += st.savedKWh
		e.perHomeStandby[hi] += st.standbyKWh
		e.perHomeReward[hi] += st.rewardSum
		e.perHomeSteps[hi] += st.steps
		e.dayReward += st.rewardSum
		e.daySteps += st.steps
		hourTot.savedKWh += st.savedKWh
		hourTot.standbyKWh += st.standbyKWh
		hourTot.rewardSum += st.rewardSum
		hourTot.steps += st.steps
		if e.inEval() {
			e.savedByHour[hour] += st.savedKWh
		}
		e.timer.Add("ems-test", st.testDur)
		e.timer.Add("ems-train", st.trainDur)
	}
	// Scenario DER dispatch rides the same simulated hour: batteries, EV
	// sessions, and PV allocation step minute by minute under the (possibly
	// DR-overlaid) TOU price.
	if s.scn.hasDER() {
		derWave := time.Now()
		s.scn.runDERHour(s, day, hour)
		e.timer.Add("ems.wall", time.Since(derWave))
	}
	hourEnd := day*pecan.MinutesPerDay + (hour+1)*60
	// Advance the fabric clocks so FaultPlan windows (partitions,
	// crashes) track simulated time.
	s.setNetClock(hourEnd)
	s.noteClock(hourEnd)
	s.noteHour(day, hour, hourTot, e.perHomeSaved, e.perHomeStandby)

	// Local forecaster training bouts.
	if (hour+1)%cfg.TrainEveryHours == 0 {
		if err := s.trainForecasters(e.timer, hourEnd); err != nil {
			return err
		}
	}
	// Forecast-plane federation (β). Period knobs are read live from
	// s.cfg so the daemon's reconfiguration path takes effect at the
	// next hour boundary.
	if fires := firesInHour(s.cfg.BetaHours, hourEnd); fires > 0 && cfg.Method.SharesForecast() && cfg.Method != MethodCloud {
		if err := s.forecastRound(e.timer, fires); err != nil {
			return err
		}
	}
	// EMS-plane federation (γ). The round stays synchronous — the
	// next minute's action selection reads the averaged DQN — so its
	// elapsed time is wall time too.
	if fires := firesInHour(s.cfg.GammaHours, hourEnd); fires > 0 && cfg.Method.SharesEMS() {
		t0 := time.Now()
		if err := s.emsRound(e.timer, fires); err != nil {
			return err
		}
		e.timer.Add("ems.wall", time.Since(t0))
	}
	// Fleet-wide DER families federate on the same γ period over the EMS
	// plane (PFDRL only — partial deployments train locally).
	if fires := firesInHour(s.cfg.GammaHours, hourEnd); fires > 0 && cfg.Method == MethodPFDRL && s.scn != nil && len(s.scn.fams) > 0 {
		t0 := time.Now()
		if err := s.derRounds(e.timer, fires); err != nil {
			return err
		}
		e.timer.Add("ems.wall", time.Since(t0))
	}
	return nil
}

// endDay closes the current day's accounting: the Cloud baseline's nightly
// raw-upload cycle, the daily result rows, and — on the final day — the
// per-home summary fields.
func (e *Engine) endDay() error {
	s := e.sys
	cfg := s.cfg
	day, res := e.day, e.res

	// Cloud raw-data training happens nightly.
	if cfg.Method == MethodCloud {
		s.cloudDay(e.timer, day)
	}
	s.scn.endDay()

	daySaved, dayStandby := 0.0, 0.0
	for hi := range s.homes {
		daySaved += e.perHomeSaved[hi]
		dayStandby += e.perHomeStandby[hi]
	}
	res.DailySavedKWhPerHome = append(res.DailySavedKWhPerHome, daySaved/float64(len(s.homes)))
	frac := 0.0
	if dayStandby > 0 {
		frac = daySaved / dayStandby
	}
	res.DailySavedFrac = append(res.DailySavedFrac, frac)
	if e.daySteps == 0 {
		// Guarded here rather than silently emitting NaN: a zero-step day
		// means the configuration yielded no EMS decisions at all.
		return fmt.Errorf("core: day %d produced no EMS steps; check Homes (%d) and DevicesPerHome (%d)",
			day, cfg.Homes, cfg.DevicesPerHome)
	}
	res.DailyMeanReward = append(res.DailyMeanReward, e.dayReward/float64(e.daySteps))
	if day == cfg.Days-1 {
		res.PerHomeSavedKWhFinal = e.perHomeSaved
		for hi := range s.homes {
			f := 0.0
			if e.perHomeStandby[hi] > 0 {
				f = e.perHomeSaved[hi] / e.perHomeStandby[hi]
			}
			res.PerHomeSavedFracFinal = append(res.PerHomeSavedFracFinal, f)
			rw := 0.0
			if e.perHomeSteps[hi] > 0 {
				rw = e.perHomeReward[hi] / float64(e.perHomeSteps[hi])
			}
			res.PerHomeRewardFinal = append(res.PerHomeRewardFinal, rw)
		}
	}
	return nil
}

// Finish lands any β round still aggregating from the final hour and
// assembles the Result. It is legal only once every day has been stepped,
// and idempotent afterwards (the assembled Result is cached).
func (e *Engine) Finish() (*Result, error) {
	if e.finished {
		return e.res, nil
	}
	if !e.Done() {
		return nil, fmt.Errorf("core: Finish at day %d of %d; step the remaining days first", e.day, e.sys.cfg.Days)
	}
	s := e.sys
	cfg := s.cfg
	res := e.res

	// A β round begun on the final hour may still be aggregating.
	if err := s.joinForecastRounds(e.timer); err != nil {
		return nil, err
	}

	res.AccuracyByHour = e.accBuckets.Means()
	if len(res.AccuracySamples) > 0 {
		sum := 0.0
		for _, a := range res.AccuracySamples {
			sum += a
		}
		res.ForecastAccuracy = sum / float64(len(res.AccuracySamples))
	}
	norm := float64(len(s.homes) * e.evalDays)
	for i := range e.savedByHour {
		res.SavedByHour[i] = e.savedByHour[i] / norm
	}
	tail := cfg.Days / 5
	if tail < 1 {
		tail = 1
	}
	res.ConvergenceDay = metrics.ConvergenceDay(res.DailySavedFrac, 0.9, tail)

	res.ForecastTrainTime = e.timer.Get("fc-train")
	res.ForecastTestTime = e.timer.Get("fc-test")
	res.EMSTrainTime = e.timer.Get("ems-train")
	res.EMSTestTime = e.timer.Get("ems-test")
	res.ForecastTestWallTime = e.timer.Get("fc-test.wall")
	res.ForecastTrainWallTime = e.timer.Get("fc-train.wall")
	res.EMSWallTime = e.timer.Get("ems.wall")
	if s.fcNet != nil {
		res.ForecastNetStats = s.fcNet.Stats()
		res.ForecastCommTime = res.ForecastNetStats.SimulatedTime
		s.resil.absorbStats(res.ForecastNetStats)
	}
	if s.drlNet != nil {
		res.EMSNetStats = s.drlNet.Stats()
		res.EMSCommTime = res.EMSNetStats.SimulatedTime
		s.resil.absorbStats(res.EMSNetStats)
	}
	// Partition outage is a property of the physical link, not of the two
	// logical planes riding it: count the severed wall-clock once.
	s.resil.PartitionSeconds = cfg.FaultPlan.PartitionSeconds(cfg.Days * pecan.MinutesPerDay)
	res.ForecastComms = s.fcCommsTot
	res.EMSComms = s.emsCommsTot
	res.Resilience = s.resil
	if s.scn.hasDER() {
		der := s.scn.report
		res.DER = &der
	}
	e.finished = true
	return res, nil
}
