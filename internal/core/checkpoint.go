package core

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"reflect"
	"sort"
)

// Checkpointing comes in two kinds, sharing one self-describing container:
//
//	magic "PFDR" | u32 version | version-specific header | body
//
// Versions:
//
//	v1 (legacy, read-only): u32 homes | u32 deviceTypes, then model
//	   parameters. Written by older builds; still loadable.
//	v2 (models): u32 cfgLen | cfgJSON, then model parameters — each home's
//	   per-device forecasters and its DQN online network. The embedded
//	   Config lets LoadModels explain exactly which knob differs instead
//	   of failing mid-stream on a shape mismatch.
//	v3 (full-fleet snapshot, see snapshot.go): u32 cfgLen | cfgJSON, then
//	   a gob-encoded snapshot of the complete engine/system state —
//	   clock, RNG stream positions, replay memories, optimizer moments,
//	   fabric state, codec references. A v3 checkpoint resumes a run
//	   bit-identically; a v2 checkpoint ships a trained policy.
//
// LoadModels accepts v1/v2 and rejects v3 with ErrSnapshotCheckpoint;
// ResumeEngine accepts only v3 and rejects v1/v2 with
// ErrModelsOnlyCheckpoint. The CLI maps both sentinels to actionable
// messages.

const (
	checkpointMagic = "PFDR"

	versionModelsLegacy = 1
	versionModels       = 2
	versionSnapshot     = 3

	// maxConfigJSON bounds the embedded-config length a reader will trust,
	// so a corrupt or truncated header fails with a clear error instead of
	// a giant allocation.
	maxConfigJSON = 1 << 20
)

// ErrSnapshotCheckpoint is returned by LoadModels when handed a v3
// full-fleet snapshot (use ResumeEngine for those).
var ErrSnapshotCheckpoint = errors.New("core: checkpoint is a full-fleet snapshot, not a models-only checkpoint")

// ErrModelsOnlyCheckpoint is returned by ResumeEngine when handed a v1/v2
// models-only checkpoint (use LoadModels for those).
var ErrModelsOnlyCheckpoint = errors.New("core: checkpoint is models-only, not a full-fleet snapshot")

// ConfigMismatchError reports the first configuration field on which a
// checkpoint and the receiving system disagree.
type ConfigMismatchError struct {
	Field      string
	Checkpoint any
	System     any
}

func (e *ConfigMismatchError) Error() string {
	return fmt.Sprintf("core: checkpoint %s is %v, system has %v", e.Field, e.Checkpoint, e.System)
}

// writeHeader writes the v2/v3 container header: magic, version, and the
// JSON-encoded configuration.
func writeHeader(w io.Writer, version uint32, cfg Config) error {
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		return fmt.Errorf("core: encoding checkpoint config: %w", err)
	}
	var hdr [12]byte
	copy(hdr[:4], checkpointMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], version)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(cfgJSON)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("core: writing checkpoint header: %w", err)
	}
	if _, err := w.Write(cfgJSON); err != nil {
		return fmt.Errorf("core: writing checkpoint config: %w", err)
	}
	return nil
}

// checkpointHeader is the parsed container header of any version.
type checkpointHeader struct {
	version uint32
	// cfg/haveCfg carry the embedded configuration (v2/v3 only).
	cfg     Config
	haveCfg bool
	// homes/deviceTypes carry the v1 legacy counts.
	homes, deviceTypes int
}

// readHeader parses the container header of any supported version.
func readHeader(r io.Reader) (checkpointHeader, error) {
	var h checkpointHeader
	var fixed [8]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return h, fmt.Errorf("core: reading checkpoint header: %w", err)
	}
	if string(fixed[:4]) != checkpointMagic {
		return h, fmt.Errorf("core: not a PFDRL checkpoint (magic %q)", fixed[:4])
	}
	h.version = binary.LittleEndian.Uint32(fixed[4:8])
	switch h.version {
	case versionModelsLegacy:
		var counts [8]byte
		if _, err := io.ReadFull(r, counts[:]); err != nil {
			return h, fmt.Errorf("core: reading legacy checkpoint header: %w", err)
		}
		h.homes = int(binary.LittleEndian.Uint32(counts[0:4]))
		h.deviceTypes = int(binary.LittleEndian.Uint32(counts[4:8]))
	case versionModels, versionSnapshot:
		var lenBuf [4]byte
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return h, fmt.Errorf("core: reading checkpoint config length: %w", err)
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxConfigJSON {
			return h, fmt.Errorf("core: checkpoint config length %d is implausible (corrupt header?)", n)
		}
		cfgJSON := make([]byte, n)
		if _, err := io.ReadFull(r, cfgJSON); err != nil {
			return h, fmt.Errorf("core: reading checkpoint config: %w", err)
		}
		if err := json.Unmarshal(cfgJSON, &h.cfg); err != nil {
			return h, fmt.Errorf("core: decoding checkpoint config: %w", err)
		}
		h.haveCfg = true
	default:
		return h, fmt.Errorf("core: checkpoint version %d, want %d–%d", h.version, versionModelsLegacy, versionSnapshot)
	}
	return h, nil
}

// modelCompatErr returns the first model-affecting field on which the
// checkpoint's configuration and the system's disagree, or nil. Knobs that
// do not change model shapes or identities (periods, fault plans, comms
// codecs, day counts) are deliberately not compared: a policy trained
// under one schedule is loadable under another.
func modelCompatErr(ck, sys Config) error {
	type field struct {
		name     string
		ck, sys  any
		mismatch bool
	}
	kind := func(c Config) any {
		if c.ForecastKind == "" {
			return "LSTM(default)"
		}
		return c.ForecastKind
	}
	fields := []field{
		{"Homes", ck.Homes, sys.Homes, ck.Homes != sys.Homes},
		{"DevicesPerHome", ck.DevicesPerHome, sys.DevicesPerHome, ck.DevicesPerHome != sys.DevicesPerHome},
		{"Alpha", ck.Alpha, sys.Alpha, ck.Alpha != sys.Alpha},
		{"ForecastKind", kind(ck), kind(sys), ck.ForecastKind != sys.ForecastKind},
		{"ForecastWindow", ck.ForecastWindow, sys.ForecastWindow, ck.ForecastWindow != sys.ForecastWindow},
		{"ForecastHidden", ck.ForecastHidden, sys.ForecastHidden, ck.ForecastHidden != sys.ForecastHidden},
		{"DQNHidden", ck.DQNHidden, sys.DQNHidden, !reflect.DeepEqual(ck.DQNHidden, sys.DQNHidden)},
		{"LookAhead", ck.LookAhead, sys.LookAhead, ck.LookAhead != sys.LookAhead},
		{"LookBack", ck.LookBack, sys.LookBack, ck.LookBack != sys.LookBack},
		{"TimeFeatures", ck.TimeFeatures, sys.TimeFeatures, ck.TimeFeatures != sys.TimeFeatures},
	}
	for _, f := range fields {
		if f.mismatch {
			return &ConfigMismatchError{Field: f.name, Checkpoint: f.ck, System: f.sys}
		}
	}
	return nil
}

// SaveModels writes all model parameters to w in the v2 format.
func (s *System) SaveModels(w io.Writer) error {
	if err := writeHeader(w, versionModels, s.cfg); err != nil {
		return err
	}
	return s.writeModelParams(w)
}

// writeModelParams streams every home's forecaster and DQN parameters in
// the deterministic (home, sorted device type) order both model formats
// share.
func (s *System) writeModelParams(w io.Writer) error {
	types := append([]string(nil), s.deviceTypes...)
	sort.Strings(types)
	for _, h := range s.homes {
		for _, dt := range types {
			fc, ok := h.fcs[dt]
			if !ok {
				return fmt.Errorf("core: home %d missing forecaster for %q", h.id, dt)
			}
			if _, err := fc.Model().WriteTo(w); err != nil {
				return fmt.Errorf("core: home %d %s forecaster: %w", h.id, dt, err)
			}
		}
		if _, err := h.agent.Online.WriteTo(w); err != nil {
			return fmt.Errorf("core: home %d agent: %w", h.id, err)
		}
	}
	return nil
}

// LoadModels restores model parameters written by SaveModels into this
// system. v2 checkpoints carry their configuration, so a mismatched load
// fails up front with a ConfigMismatchError naming the offending field;
// legacy v1 checkpoints are still accepted with the old count checks.
// Handing it a full-fleet snapshot fails with ErrSnapshotCheckpoint.
// Target networks are synced to the restored online networks.
func (s *System) LoadModels(r io.Reader) error {
	hdr, err := readHeader(r)
	if err != nil {
		return err
	}
	switch hdr.version {
	case versionModelsLegacy:
		if hdr.homes != len(s.homes) {
			return fmt.Errorf("core: checkpoint has %d homes, system has %d", hdr.homes, len(s.homes))
		}
		if hdr.deviceTypes != len(s.deviceTypes) {
			return fmt.Errorf("core: checkpoint has %d device types, system has %d", hdr.deviceTypes, len(s.deviceTypes))
		}
	case versionModels:
		if err := modelCompatErr(hdr.cfg, s.cfg); err != nil {
			return err
		}
	case versionSnapshot:
		return ErrSnapshotCheckpoint
	}
	types := append([]string(nil), s.deviceTypes...)
	sort.Strings(types)
	for _, h := range s.homes {
		for _, dt := range types {
			fc, ok := h.fcs[dt]
			if !ok {
				return fmt.Errorf("core: home %d missing forecaster for %q", h.id, dt)
			}
			if _, err := fc.Model().ReadFrom(r); err != nil {
				return fmt.Errorf("core: home %d %s forecaster: %w", h.id, dt, err)
			}
		}
		if _, err := h.agent.Online.ReadFrom(r); err != nil {
			return fmt.Errorf("core: home %d agent: %w", h.id, err)
		}
		h.agent.SyncTarget()
	}
	return nil
}
