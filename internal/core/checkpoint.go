package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Checkpointing serializes every trained model in the system — each home's
// per-device forecasters and its DQN online network — so a simulation can
// be resumed or a trained fleet shipped. The format is versioned and
// self-describing enough to reject mismatched systems:
//
//	magic "PFDR" | u32 version | u32 homes | u32 deviceTypes
//	per home: per device type (sorted): forecaster params
//	          DQN online params
//
// Replay memories and exploration state are deliberately not serialized:
// a checkpoint captures the learned policy/forecast state, not the
// transient training state.

const (
	checkpointMagic   = "PFDR"
	checkpointVersion = 1
)

// SaveModels writes all model parameters to w.
func (s *System) SaveModels(w io.Writer) error {
	var hdr [16]byte
	copy(hdr[:4], checkpointMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], checkpointVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(s.homes)))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(s.deviceTypes)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("core: writing checkpoint header: %w", err)
	}
	types := append([]string(nil), s.deviceTypes...)
	sort.Strings(types)
	for _, h := range s.homes {
		for _, dt := range types {
			fc, ok := h.fcs[dt]
			if !ok {
				return fmt.Errorf("core: home %d missing forecaster for %q", h.id, dt)
			}
			if _, err := fc.Model().WriteTo(w); err != nil {
				return fmt.Errorf("core: home %d %s forecaster: %w", h.id, dt, err)
			}
		}
		if _, err := h.agent.Online.WriteTo(w); err != nil {
			return fmt.Errorf("core: home %d agent: %w", h.id, err)
		}
	}
	return nil
}

// LoadModels restores model parameters written by SaveModels into this
// system. The receiving system must have the same home count, device
// types, and architectures. Target networks are synced to the restored
// online networks.
func (s *System) LoadModels(r io.Reader) error {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("core: reading checkpoint header: %w", err)
	}
	if string(hdr[:4]) != checkpointMagic {
		return fmt.Errorf("core: not a PFDRL checkpoint (magic %q)", hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != checkpointVersion {
		return fmt.Errorf("core: checkpoint version %d, want %d", v, checkpointVersion)
	}
	if n := binary.LittleEndian.Uint32(hdr[8:12]); int(n) != len(s.homes) {
		return fmt.Errorf("core: checkpoint has %d homes, system has %d", n, len(s.homes))
	}
	if n := binary.LittleEndian.Uint32(hdr[12:16]); int(n) != len(s.deviceTypes) {
		return fmt.Errorf("core: checkpoint has %d device types, system has %d", n, len(s.deviceTypes))
	}
	types := append([]string(nil), s.deviceTypes...)
	sort.Strings(types)
	for _, h := range s.homes {
		for _, dt := range types {
			fc, ok := h.fcs[dt]
			if !ok {
				return fmt.Errorf("core: home %d missing forecaster for %q", h.id, dt)
			}
			if _, err := fc.Model().ReadFrom(r); err != nil {
				return fmt.Errorf("core: home %d %s forecaster: %w", h.id, dt, err)
			}
		}
		if _, err := h.agent.Online.ReadFrom(r); err != nil {
			return fmt.Errorf("core: home %d agent: %w", h.id, err)
		}
		h.agent.SyncTarget()
	}
	return nil
}
