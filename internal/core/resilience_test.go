package core

import (
	"testing"
	"time"

	"repro/internal/fednet"
	"repro/internal/pecan"
)

// chaosConfig is tinyConfig plus an aggressive fault plan and retry
// policy: drops, corruption, a partition, a straggler, and a crash window
// all active inside a 2-day, 3-home run.
func chaosConfig() Config {
	cfg := tinyConfig(MethodPFDRL)
	cfg.Days = 2
	cfg.DevicesPerHome = 1
	cfg.BetaHours = 2 // more federation rounds for the faults to bite
	cfg.GammaHours = 2
	cfg.DropProb = 0.3
	cfg.Retry = fednet.RetryPolicy{
		MaxAttempts: 3,
		Backoff:     2 * time.Millisecond,
		RoundBudget: 200 * time.Millisecond,
	}
	cfg.FaultPlan = ChaosFaultPlan(cfg.Homes, cfg.Days)
	return cfg
}

// TestRunSurvivesChaos is the end-to-end smoke test: a full PFDRL run
// under the aggressive fault plan must complete and the resilience report
// must show the fault machinery actually fired.
func TestRunSurvivesChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("full run")
	}
	cfg := chaosConfig()
	res := mustRun(t, cfg)
	r := res.Resilience
	if r.Retries == 0 {
		t.Fatalf("no retries recorded under DropProb=%v: %+v", cfg.DropProb, r)
	}
	if r.CorruptRejected == 0 {
		t.Fatalf("no corrupt payloads rejected under CorruptProb=%v: %+v",
			cfg.FaultPlan.CorruptProb, r)
	}
	if r.Rounds == 0 || r.DegradedRounds == 0 {
		t.Fatalf("no degraded rounds recorded: %+v", r)
	}
	if r.CrashSkips == 0 {
		t.Fatalf("crash window never skipped an agent: %+v", r)
	}
	want := cfg.FaultPlan.PartitionSeconds(cfg.Days * pecan.MinutesPerDay)
	if r.PartitionSeconds != want {
		t.Fatalf("PartitionSeconds = %v, want %v", r.PartitionSeconds, want)
	}
	// The EMS must still produce finite savings for every home.
	if len(res.PerHomeSavedKWhFinal) != cfg.Homes {
		t.Fatalf("%d per-home results, want %d", len(res.PerHomeSavedKWhFinal), cfg.Homes)
	}
	for hi, kwh := range res.PerHomeSavedKWhFinal {
		if kwh != kwh {
			t.Fatalf("home %d saved kWh is NaN after chaos run", hi)
		}
	}
}

// TestChaosRunDeterministic runs the chaos configuration twice with the
// same seed and requires identical resilience reports and fabric stats —
// the byte-exact reproducibility acceptance criterion.
func TestChaosRunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full runs")
	}
	cfg := chaosConfig()
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if a.Resilience != b.Resilience {
		t.Fatalf("resilience reports differ across identical runs:\n  %+v\nvs %+v",
			a.Resilience, b.Resilience)
	}
	if a.ForecastNetStats != b.ForecastNetStats || a.EMSNetStats != b.EMSNetStats {
		t.Fatalf("fabric stats differ across identical runs:\n  fc %+v vs %+v\n  ems %+v vs %+v",
			a.ForecastNetStats, b.ForecastNetStats, a.EMSNetStats, b.EMSNetStats)
	}
}

// TestChaosFaultPlanShape pins the generated plan's invariants.
func TestChaosFaultPlanShape(t *testing.T) {
	for _, homes := range []int{1, 2, 3, 8} {
		plan := ChaosFaultPlan(homes, 2)
		if err := plan.Validate(homes); err != nil {
			t.Fatalf("homes=%d: generated plan invalid: %v", homes, err)
		}
		if plan.CorruptProb <= 0 {
			t.Fatalf("homes=%d: plan has no corruption", homes)
		}
		if homes >= 2 && (len(plan.Partitions) == 0 || len(plan.Crashes) == 0) {
			t.Fatalf("homes=%d: plan missing partition or crash window", homes)
		}
		if homes >= 3 && len(plan.Stragglers) == 0 {
			t.Fatalf("homes=%d: plan missing straggler", homes)
		}
	}
	// Star methods index the hub as agent 0, homes as 1..n: the same plan
	// must stay valid on the larger star fabric.
	plan := ChaosFaultPlan(3, 2)
	if err := plan.Validate(4); err != nil {
		t.Fatalf("plan invalid on star-sized network: %v", err)
	}
}
