package store

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// TestOpenBlobFileBitIdentity pins the mmap path against the in-memory
// one: every series opened from disk must decode to the exact bit
// patterns ReadBlob produces from the same bytes, and the structural
// accessors must agree.
func TestOpenBlobFileBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var series []*Series
	for i := 0; i < 3; i++ {
		s := NewSeries(96)
		for j := 0; j < 96*4+i*17; j++ {
			if err := s.Append(math.Round(rng.NormFloat64()*100) / 100); err != nil {
				t.Fatal(err)
			}
		}
		s.Seal()
		series = append(series, s)
	}
	var buf bytes.Buffer
	if err := WriteBlob(&buf, series); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "corpus.pfs1")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	mem, err := ReadBlob(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	bf, err := OpenBlobFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	got := bf.Series()
	if len(got) != len(mem) {
		t.Fatalf("opened %d series, want %d", len(got), len(mem))
	}
	for i := range mem {
		m, g := mem[i], got[i]
		if g.Len() != m.Len() || g.NumBlocks() != m.NumBlocks() || g.BlockLen() != m.BlockLen() {
			t.Fatalf("series %d shape: file (%d,%d,%d) vs memory (%d,%d,%d)",
				i, g.Len(), g.NumBlocks(), g.BlockLen(), m.Len(), m.NumBlocks(), m.BlockLen())
		}
		for b := 0; b < m.NumBlocks(); b++ {
			if !bytes.Equal(g.Block(b), m.Block(b)) {
				t.Fatalf("series %d block %d payload bytes differ", i, b)
			}
			mv, err := m.DecodeBlockInto(b, nil)
			if err != nil {
				t.Fatal(err)
			}
			gv, err := g.DecodeBlockInto(b, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(mv) != len(gv) {
				t.Fatalf("series %d block %d: %d vs %d samples", i, b, len(gv), len(mv))
			}
			for j := range mv {
				if math.Float64bits(mv[j]) != math.Float64bits(gv[j]) {
					t.Fatalf("series %d block %d sample %d: file %x vs memory %x",
						i, b, j, math.Float64bits(gv[j]), math.Float64bits(mv[j]))
				}
			}
		}
	}
	if err := bf.Close(); err != nil {
		t.Fatal(err)
	}
	if err := bf.Close(); err != nil {
		t.Fatal("Close not idempotent:", err)
	}
	if bf.Series() != nil {
		t.Fatal("Series should be nil after Close")
	}
}

// TestOpenBlobFileErrors pins the failure paths: missing files surface the
// os error, and corrupt contents fail with ErrCorrupt before any series
// is handed out.
func TestOpenBlobFileErrors(t *testing.T) {
	if _, err := OpenBlobFile(filepath.Join(t.TempDir(), "absent.pfs1")); err == nil {
		t.Fatal("missing file accepted")
	}
	for name, contents := range map[string][]byte{
		"empty":     {},
		"truncated": []byte("PFS"),
		"bad-magic": []byte("NOPEaaaaaaaaaaaaaaaaaaaa"),
	} {
		path := filepath.Join(t.TempDir(), name)
		if err := os.WriteFile(path, contents, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenBlobFile(path); err == nil {
			t.Errorf("%s: corrupt blob accepted", name)
		}
	}
}
