package store

import (
	"fmt"
	"os"
)

// BlobFile is a PFS1 corpus opened directly from disk. On platforms with
// mmap support the block payloads alias the page cache — opening a
// multi-gigabyte corpus costs no heap and pages in lazily as series are
// decoded; elsewhere the file is read into memory once. Either way the
// series returned by Series share the mapping, so they must not be used
// after Close.
type BlobFile struct {
	series []*Series
	data   []byte
	mapped bool
}

// OpenBlobFile opens and parses a PFS1 blob written by WriteBlob. The
// whole file is validated up front (same checks as ReadBlob); block
// payload decode stays lazy. Close the BlobFile when the series are no
// longer needed.
func OpenBlobFile(path string) (*BlobFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size > int64(^uint(0)>>1) {
		return nil, fmt.Errorf("store: blob %s too large to map (%d bytes)", path, size)
	}
	data, mapped, err := mapFile(f, int(size))
	if err != nil {
		return nil, fmt.Errorf("store: map %s: %w", path, err)
	}
	series, err := ReadBlob(data)
	if err != nil {
		if mapped {
			unmapFile(data)
		}
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	return &BlobFile{series: series, data: data, mapped: mapped}, nil
}

// Series returns the corpus. The series alias the file mapping and are
// invalidated by Close.
func (b *BlobFile) Series() []*Series { return b.series }

// Close releases the file mapping. Any Series obtained from this BlobFile
// must not be touched afterwards — their block payloads point into the
// unmapped region. Close is idempotent.
func (b *BlobFile) Close() error {
	if b.data == nil {
		return nil
	}
	data, mapped := b.data, b.mapped
	b.data, b.series = nil, nil
	if !mapped {
		return nil
	}
	return unmapFile(data)
}
