package store

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// roundTrip encodes samples through a Series and decodes every block back.
func roundTrip(t *testing.T, samples []float64, blockLen int) *Series {
	t.Helper()
	s := NewSeries(blockLen)
	if err := s.AppendSlice(samples); err != nil {
		t.Fatal(err)
	}
	s.Seal()
	if s.Len() != len(samples) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(samples))
	}
	var dst []float64
	got := make([]float64, 0, len(samples))
	for b := 0; b < s.NumBlocks(); b++ {
		out, err := s.DecodeBlockInto(b, dst)
		if err != nil {
			t.Fatalf("block %d: %v", b, err)
		}
		got = append(got, out...)
	}
	if len(got) != len(samples) {
		t.Fatalf("decoded %d samples, want %d", len(got), len(samples))
	}
	for i := range samples {
		if math.Float64bits(got[i]) != math.Float64bits(samples[i]) {
			t.Fatalf("sample %d: decoded %v (%x), want %v (%x)",
				i, got[i], math.Float64bits(got[i]), samples[i], math.Float64bits(samples[i]))
		}
	}
	return s
}

// TestRoundTripRandom pins losslessness on full-entropy mantissas — the
// worst case for the XOR codec (no compression, but still bit-exact).
func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	samples := make([]float64, 3*DefaultBlockLen+17)
	for i := range samples {
		samples[i] = rng.NormFloat64() * 3
	}
	roundTrip(t, samples, 0)
}

// TestRoundTripMeterLike pins losslessness and a useful ratio on the shape
// real quantized meter data takes: long plateaus of repeated readings with
// occasional level changes.
func TestRoundTripMeterLike(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	samples := make([]float64, 4*DefaultBlockLen)
	level := 0.005
	for i := range samples {
		if rng.Float64() < 0.01 {
			level = math.Round(rng.Float64()*1000) / 1000
		}
		samples[i] = level
	}
	s := roundTrip(t, samples, 0)
	if bpp := s.BytesPerPoint(); bpp > 2.0 {
		t.Fatalf("meter-like corpus compresses to %.2f bytes/point, want ≤ 2.0", bpp)
	}
}

// TestRoundTripShortBlocks exercises odd block lengths and partial tails.
func TestRoundTripShortBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 6, 7, 13} {
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = rng.Float64()
		}
		roundTrip(t, samples, 7)
	}
}

// TestEmptySeries pins the degenerate cases: no samples, and blob
// round-trips of empty series.
func TestEmptySeries(t *testing.T) {
	s := NewSeries(0)
	s.Seal() // no-op
	if s.Len() != 0 || s.NumBlocks() != 0 || s.BytesPerPoint() != 0 {
		t.Fatalf("empty series: Len=%d NumBlocks=%d bpp=%v", s.Len(), s.NumBlocks(), s.BytesPerPoint())
	}
	var buf bytes.Buffer
	if err := WriteBlob(&buf, []*Series{s}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBlob(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Len() != 0 || back[0].NumBlocks() != 0 {
		t.Fatalf("empty series did not survive blob round-trip: %+v", back[0])
	}
}

// TestSingleSampleDay pins a one-sample sealed block.
func TestSingleSampleDay(t *testing.T) {
	s := roundTrip(t, []float64{0.042}, DefaultBlockLen)
	if s.NumBlocks() != 1 || s.BlockSamples(0) != 1 {
		t.Fatalf("single sample: %d blocks, first holds %d", s.NumBlocks(), s.BlockSamples(0))
	}
	if err := s.Append(1); err == nil {
		t.Fatal("append after sealing a partial block should fail")
	}
}

// TestAllZeroDayHitsRunToken pins the vacation-day case: 1440 identical
// zeros must collapse into the 12-bit run token, not 1439 repeat bits.
func TestAllZeroDayHitsRunToken(t *testing.T) {
	day := make([]float64, DefaultBlockLen)
	s := roundTrip(t, day, 0)
	// varint count (2B) + first value (8B) + '111' run token (15 bits) ≈ 12B.
	if got := s.CompressedBytes(); got > 16 {
		t.Fatalf("all-zero day compressed to %d bytes, want ≤ 16 (run token not taken?)", got)
	}
	// A run exactly at the single-bit threshold must still round-trip.
	roundTrip(t, make([]float64, runTokenMin), 0)
	roundTrip(t, make([]float64, runTokenMin+1), 0)
	// And runs longer than one token's 12-bit capacity chain tokens.
	roundTrip(t, make([]float64, runTokenMax+runTokenMin+3), runTokenMax+runTokenMin+3)
}

// TestNonFiniteRejected pins typed NaN/Inf rejection without state damage.
func TestNonFiniteRejected(t *testing.T) {
	s := NewSeries(4)
	if err := s.Append(1.5); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		err := s.Append(bad)
		if !errors.Is(err, ErrNonFinite) {
			t.Fatalf("Append(%v) = %v, want ErrNonFinite", bad, err)
		}
	}
	if s.Len() != 1 {
		t.Fatalf("rejected samples changed Len to %d", s.Len())
	}
	// The series stays usable after a rejection.
	if err := s.AppendSlice([]float64{2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	got, err := s.DecodeBlockInto(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after rejection, block decodes %v, want %v", got, want)
		}
	}
}

// TestCorruptBlocks drives the decoder through truncations and impossible
// headers; every failure must be a typed ErrCorrupt, never a panic.
func TestCorruptBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	samples := make([]float64, 64)
	for i := range samples {
		samples[i] = rng.NormFloat64()
	}
	block, err := EncodeBlock(nil, samples)
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation point must fail cleanly (prefixes that still hold a
	// whole smaller value count could in principle decode; with 64 random
	// values the bit stream always runs short first).
	for cut := 0; cut < len(block); cut++ {
		if _, err := DecodeBlock(block[:cut], len(samples), nil); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated block [:%d] decoded: %v", cut, err)
		}
	}
	// A count beyond maxCount must be rejected before allocation.
	huge := append([]byte{0xff, 0xff, 0xff, 0x7f}, block...)
	if _, err := DecodeBlock(huge, 1440, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized count decoded: %v", err)
	}
	// Zero-count blocks are impossible.
	if _, err := DecodeBlock([]byte{0x00, 0x01, 0x02}, 1440, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatal("zero-count block decoded")
	}
	// Empty input.
	if _, err := DecodeBlock(nil, 1440, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatal("empty block decoded")
	}
}

// TestBlobRoundTrip pins the container format end to end, including
// zero-copy reads and bytes-per-point accounting surviving serialization.
func TestBlobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var series []*Series
	for k := 0; k < 3; k++ {
		s := NewSeries(96)
		n := 96 * (k + 1)
		if k == 2 {
			n += 17 // partial tail block
		}
		for i := 0; i < n; i++ {
			s.Append(math.Round(rng.Float64()*100) / 100)
		}
		s.Seal()
		series = append(series, s)
	}
	var buf bytes.Buffer
	if err := WriteBlob(&buf, series); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBlob(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(series) {
		t.Fatalf("blob holds %d series, want %d", len(back), len(series))
	}
	for i, s := range series {
		b := back[i]
		if b.Len() != s.Len() || b.NumBlocks() != s.NumBlocks() || b.CompressedBytes() != s.CompressedBytes() {
			t.Fatalf("series %d metadata drifted: %d/%d/%d vs %d/%d/%d",
				i, b.Len(), b.NumBlocks(), b.CompressedBytes(), s.Len(), s.NumBlocks(), s.CompressedBytes())
		}
		for blk := 0; blk < s.NumBlocks(); blk++ {
			want, err := s.DecodeBlockInto(blk, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := b.DecodeBlockInto(blk, nil)
			if err != nil {
				t.Fatal(err)
			}
			for j := range want {
				if math.Float64bits(want[j]) != math.Float64bits(got[j]) {
					t.Fatalf("series %d block %d sample %d drifted through blob", i, blk, j)
				}
			}
		}
	}
}

// TestBlobCorrupt drives ReadBlob through hostile headers.
func TestBlobCorrupt(t *testing.T) {
	s := NewSeries(8)
	for i := 0; i < 20; i++ {
		s.Append(float64(i))
	}
	s.Seal()
	var buf bytes.Buffer
	if err := WriteBlob(&buf, []*Series{s}); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := ReadBlob(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatal("nil blob parsed")
	}
	for cut := 0; cut < len(good); cut++ {
		if _, err := ReadBlob(good[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated blob [:%d] parsed: %v", cut, err)
		}
	}
	bad := append([]byte(nil), good...)
	copy(bad, "XXXX")
	if _, err := ReadBlob(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatal("bad magic parsed")
	}
	bad = append([]byte(nil), good...)
	bad[4] = 99 // version
	if _, err := ReadBlob(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatal("bad version parsed")
	}
	bad = append([]byte(nil), good...)
	bad[12] = 0xff // absurd series count with no matching table
	if _, err := ReadBlob(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatal("oversized series count parsed")
	}
	// Unsealed series must be refused at write time.
	u := NewSeries(8)
	u.Append(1)
	if err := WriteBlob(&bytes.Buffer{}, []*Series{u}); err == nil {
		t.Fatal("WriteBlob accepted an unsealed partial block")
	}
}

// gridRoundTrip mirrors roundTrip for a resolution-hinted series.
func gridRoundTrip(t *testing.T, samples []float64, blockLen int, res float64) *Series {
	t.Helper()
	s := NewSeriesQuantized(blockLen, res)
	if err := s.AppendSlice(samples); err != nil {
		t.Fatal(err)
	}
	s.Seal()
	got := make([]float64, 0, len(samples))
	for b := 0; b < s.NumBlocks(); b++ {
		out, err := s.DecodeBlockInto(b, nil)
		if err != nil {
			t.Fatalf("block %d: %v", b, err)
		}
		got = append(got, out...)
	}
	if len(got) != len(samples) {
		t.Fatalf("decoded %d samples, want %d", len(got), len(samples))
	}
	for i := range samples {
		if math.Float64bits(got[i]) != math.Float64bits(samples[i]) {
			t.Fatalf("sample %d: decoded %v, want %v", i, got[i], samples[i])
		}
	}
	return s
}

// TestGridRoundTrip pins the grid encoding on its target shape: every-minute
// noise on a 1 W grid, where XOR-of-floats pays most of the mantissa but
// bitpacked grid indices stay under 2 bytes/point.
func TestGridRoundTrip(t *testing.T) {
	const res = 0.001
	rng := rand.New(rand.NewSource(17))
	samples := make([]float64, 3*DefaultBlockLen+100)
	for i := range samples {
		samples[i] = math.Round(rng.Float64()*2000) * res // 0..2 kW on the grid
	}
	s := gridRoundTrip(t, samples, 0, res)
	if bpp := s.BytesPerPoint(); bpp > 2.0 {
		t.Fatalf("on-grid noise compressed to %.3f bytes/point, want ≤ 2.0", bpp)
	}
}

// TestGridNegativeAndConstant pins zigzag base indices (negative grids, e.g.
// net-metered export) and the width-0 constant-block case.
func TestGridNegativeAndConstant(t *testing.T) {
	const res = 0.25
	neg := []float64{-3.25, -3.5, -2.75, 0, 1.25, -8.0}
	gridRoundTrip(t, neg, len(neg), res)

	flat := make([]float64, DefaultBlockLen)
	for i := range flat {
		flat[i] = 1.75
	}
	s := gridRoundTrip(t, flat, 0, res)
	// res (8B) + base varint + width byte + count varint + tag ≈ 14B.
	if got := s.CompressedBytes(); got > 16 {
		t.Fatalf("constant grid day compressed to %d bytes, want ≤ 16", got)
	}
}

// TestGridFallback pins that a wrong resolution hint costs compression but
// never correctness: off-grid samples must fall back to XOR bit-exactly.
func TestGridFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	samples := make([]float64, DefaultBlockLen+13)
	for i := range samples {
		samples[i] = rng.NormFloat64() // full-entropy mantissas, not on any grid
	}
	gridRoundTrip(t, samples, 0, 0.001)

	// A hinted series with mixed blocks: one on-grid day, one off-grid day.
	mixed := make([]float64, 2*DefaultBlockLen)
	for i := 0; i < DefaultBlockLen; i++ {
		mixed[i] = math.Round(rng.Float64()*500) * 0.001
	}
	for i := DefaultBlockLen; i < len(mixed); i++ {
		mixed[i] = rng.NormFloat64()
	}
	gridRoundTrip(t, mixed, 0, 0.001)
}

// TestGridCorrupt drives the grid decoder through truncations and hostile
// headers; every failure must be a typed ErrCorrupt, never a panic.
func TestGridCorrupt(t *testing.T) {
	const res = 0.001
	rng := rand.New(rand.NewSource(23))
	samples := make([]float64, 64)
	for i := range samples {
		samples[i] = math.Round(rng.Float64()*1000) * res
	}
	block, err := EncodeBlockQuantized(nil, samples, res)
	if err != nil {
		t.Fatal(err)
	}
	if block[1] != blockTagGrid {
		t.Fatalf("on-grid block took tag %d, want grid", block[1])
	}
	for cut := 0; cut < len(block); cut++ {
		if _, err := DecodeBlock(block[:cut], len(samples), nil); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated grid block [:%d] decoded: %v", cut, err)
		}
	}
	// Unknown encoding tag.
	bad := append([]byte(nil), block...)
	bad[1] = 0x7e
	if _, err := DecodeBlock(bad, len(samples), nil); !errors.Is(err, ErrCorrupt) {
		t.Fatal("unknown tag decoded")
	}
	// Non-positive / non-finite resolution bits (bytes 2..9 after 1-byte
	// count varint and tag).
	for _, rb := range []uint64{0, math.Float64bits(math.Inf(1)), math.Float64bits(math.NaN()), math.Float64bits(-res)} {
		bad = append([]byte(nil), block...)
		for i := 0; i < 8; i++ {
			bad[2+i] = byte(rb >> (8 * i))
		}
		if _, err := DecodeBlock(bad, len(samples), nil); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("resolution bits %x decoded: %v", rb, err)
		}
	}
	// Absurd bit width (byte after res + 2-byte zigzag base for this corpus
	// is found by scanning: width byte is the last header byte before the
	// packed payload; force it past gridMaxWidth via re-encoding a tiny
	// block whose layout is fixed).
	tiny, err := EncodeBlockQuantized(nil, []float64{res, 2 * res}, res)
	if err != nil {
		t.Fatal(err)
	}
	// Layout: count(1) tag(1) res(8) base-varint(1, zigzag(1)=2) width(1) ...
	bad = append([]byte(nil), tiny...)
	bad[11] = gridMaxWidth + 1
	if _, err := DecodeBlock(bad, 2, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatal("oversized grid width decoded")
	}
}

// TestQuantizedBlobRoundTrip pins that grid-encoded blocks survive the blob
// container unchanged.
func TestQuantizedBlobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	s := NewSeriesQuantized(96, 0.01)
	for i := 0; i < 96*3+10; i++ {
		s.Append(math.Round(rng.Float64()*300) * 0.01)
	}
	s.Seal()
	var buf bytes.Buffer
	if err := WriteBlob(&buf, []*Series{s}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBlob(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for blk := 0; blk < s.NumBlocks(); blk++ {
		want, err := s.DecodeBlockInto(blk, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := back[0].DecodeBlockInto(blk, nil)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if math.Float64bits(want[j]) != math.Float64bits(got[j]) {
				t.Fatalf("block %d sample %d drifted through blob", blk, j)
			}
		}
	}
}

// TestWindowReuse pins that consecutive same-shaped XORs take the cheap
// window-reuse token: a slowly wandering mantissa must beat 8 bytes/point.
func TestWindowReuse(t *testing.T) {
	samples := make([]float64, DefaultBlockLen)
	v := 1.0
	rng := rand.New(rand.NewSource(13))
	for i := range samples {
		// Perturb only low mantissa bits so leading-zero structure repeats.
		v = math.Float64frombits(math.Float64bits(v)&^uint64(0xfff) | uint64(rng.Intn(4096)))
		samples[i] = v
	}
	s := roundTrip(t, samples, 0)
	if bpp := s.BytesPerPoint(); bpp > 4 {
		t.Fatalf("low-entropy mantissa stream compressed to %.2f bytes/point, want ≤ 4", bpp)
	}
}
