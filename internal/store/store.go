// Package store is a block-oriented columnar store for minute-resolution
// load series. Each (trace, day) becomes one independently decodable
// compressed block in one of two encodings, chosen per block:
//
//   - XOR: Gorilla-style float encoding (leading/trailing-zero windows)
//     extended with a run token for the long stretches of repeated readings
//     real meters produce (standby plateaus, vacation days, overnight off
//     periods). Works on arbitrary float64 series.
//   - Grid: frame-of-reference bitpacked integers for quantized meter
//     feeds. When every sample sits on an n·res grid (a 1 W meter reports
//     multiples of 0.001 kW), the block stores res once plus each sample's
//     offset from the block minimum in ceil(log2(span)) bits — a noisy
//     standby plateau costs ~4 bits/sample where XOR-of-floats pays tens
//     (neighboring grid points differ across most of the mantissa).
//
// A quantized series (NewSeriesQuantized) attempts grid first and falls
// back to XOR unless every sample reconstructs bit-exactly, so both
// encodings are lossless: decode returns the exact IEEE-754 bit patterns
// that were appended, which is what lets the simulation run bit-identically
// on raw slices and on store-backed traces. Timestamps are never stored —
// the series is fixed-stride (one sample per minute), so a block is fully
// addressed by its index. Blob serialization (blob.go) adds a versioned
// header and block directory so a whole corpus can be written once and
// lazily decoded from an mmap-style byte slice.
package store

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// DefaultBlockLen is the natural block size: one day of minute samples.
const DefaultBlockLen = 1440

// ErrNonFinite rejects NaN/Inf samples at append time. The XOR codec could
// represent them, but a non-finite kW reading is always an upstream data
// error and admitting one would poison every downstream consumer.
var ErrNonFinite = errors.New("store: non-finite sample")

// ErrCorrupt is the sentinel wrapped by every decode-side failure:
// truncated headers, impossible sample counts, bit streams that end
// mid-token. errors.Is(err, ErrCorrupt) catches them all.
var ErrCorrupt = errors.New("store: corrupt block")

// corruptf wraps ErrCorrupt with detail.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("store: %s: %w", fmt.Sprintf(format, args...), ErrCorrupt)
}

// Value-token control codes (prefix-free, MSB-first):
//
//	0                              XOR with previous value is zero (repeat)
//	10  + S bits                   meaningful XOR bits, reusing the current
//	                               (leading, S) window
//	110 + 6b leading + 6b S-1 + S  meaningful XOR bits under a new window
//	111 + 12b run                  `run` consecutive repeats of the previous
//	                               value (run ∈ [1, 4095])
//
// The run token is the store's addition to classic Gorilla: a vacation day
// (1440 identical samples) costs one 15-bit token instead of 1439 single
// bits, and quantized meter feeds spend most of their life in such runs.
const (
	runTokenMin = 8    // shorter runs use single '0' bits
	runTokenMax = 4095 // 12-bit run field
)

// Block encoding tags: one byte after the sample-count header.
const (
	blockTagXOR  = 0
	blockTagGrid = 1
)

// gridMaxWidth caps the per-sample bit width a grid block may use; spans
// wider than this compress better under XOR anyway.
const gridMaxWidth = 32

// blockEncoder compresses one block's samples as they stream in.
type blockEncoder struct {
	bw      bitWriter
	prev    uint64
	leading uint // current window: leading zeros
	sigbits uint // current window: meaningful bits (0 = no window yet)
	count   int
	run     int // pending repeats not yet flushed
}

// add appends one sample to the block.
func (e *blockEncoder) add(v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("%w (%v)", ErrNonFinite, v)
	}
	b := math.Float64bits(v)
	if e.count == 0 {
		e.bw.writeBits(b, 64)
		e.prev = b
		e.count++
		return nil
	}
	xor := b ^ e.prev
	e.prev = b
	e.count++
	if xor == 0 {
		e.run++
		return nil
	}
	e.flushRun()
	lead := uint(bits.LeadingZeros64(xor))
	trail := uint(bits.TrailingZeros64(xor))
	if lead > 63 {
		lead = 63
	}
	if e.sigbits != 0 && lead >= e.leading && trail >= 64-e.leading-e.sigbits {
		// The meaningful bits fit the established window: short token.
		e.bw.writeBits(0b10, 2)
		e.bw.writeBits(xor>>(64-e.leading-e.sigbits), e.sigbits)
		return nil
	}
	sig := 64 - lead - trail // ≥ 1 since xor != 0
	e.bw.writeBits(0b110, 3)
	e.bw.writeBits(uint64(lead), 6)
	e.bw.writeBits(uint64(sig-1), 6)
	e.bw.writeBits(xor>>trail, sig)
	e.leading, e.sigbits = lead, sig
	return nil
}

// flushRun emits any pending repeat run: long runs as 12-bit run tokens,
// short remainders as single '0' bits.
func (e *blockEncoder) flushRun() {
	for e.run >= runTokenMin {
		n := e.run
		if n > runTokenMax {
			n = runTokenMax
		}
		e.bw.writeBits(0b111, 3)
		e.bw.writeBits(uint64(n), 12)
		e.run -= n
	}
	for ; e.run > 0; e.run-- {
		e.bw.writeBit(0)
	}
}

// finish seals the block and returns its encoded bytes (valid until the
// next reset). A finished empty encoder returns nil.
func (e *blockEncoder) finish() []byte {
	if e.count == 0 {
		return nil
	}
	e.flushRun()
	return e.bw.buf
}

// appendBlockBytes assembles one self-contained block: uvarint sample
// count, encoding tag byte, then the encoding's payload.
func appendBlockBytes(dst []byte, count int, tag byte, payload []byte) []byte {
	var hdr [10]byte
	n := putUvarint(hdr[:], uint64(count))
	dst = append(dst, hdr[:n]...)
	dst = append(dst, tag)
	return append(dst, payload...)
}

// EncodeBlock compresses one complete block of samples into a
// self-contained XOR-encoded byte block (sample-count header + tag + bit
// stream). For meter-quantized series prefer EncodeBlockQuantized.
func EncodeBlock(dst []byte, samples []float64) ([]byte, error) {
	var e blockEncoder
	for _, v := range samples {
		if err := e.add(v); err != nil {
			return nil, err
		}
	}
	stream := e.finish()
	if stream == nil {
		return nil, fmt.Errorf("store: cannot encode an empty block")
	}
	return appendBlockBytes(dst, e.count, blockTagXOR, stream), nil
}

// EncodeBlockQuantized compresses one complete block of samples expected to
// sit on an n·res value grid, using the bitpacked grid encoding when every
// sample reconstructs bit-exactly from its grid index and falling back to
// the XOR encoding otherwise (including res <= 0). The result therefore
// always decodes to the exact input bit patterns, grid hint or not.
func EncodeBlockQuantized(dst []byte, samples []float64, res float64) ([]byte, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("store: cannot encode an empty block")
	}
	if res > 0 && !math.IsInf(res, 0) {
		mark := len(dst)
		var hdr [10]byte
		n := putUvarint(hdr[:], uint64(len(samples)))
		dst = append(dst, hdr[:n]...)
		dst = append(dst, blockTagGrid)
		if out, ok := gridEncode(dst, samples, res); ok {
			return out, nil
		}
		dst = dst[:mark]
	}
	return EncodeBlock(dst, samples)
}

// zigzag / unzigzag fold signed grid offsets into uvarint-friendly space.
func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// gridEncode appends the grid payload (resolution bits, zigzag base index,
// bit width, bitpacked offsets) for samples on the res grid. It reports
// false — leaving dst semantically untouched past its input length — if any
// sample fails bitwise round-trip through its grid index, the index span
// needs more than gridMaxWidth bits, or an index exceeds exact-integer
// float64 range; callers then fall back to the XOR encoding.
func gridEncode(dst []byte, samples []float64, res float64) ([]byte, bool) {
	ns := make([]int64, len(samples))
	var minN, maxN int64
	for i, v := range samples {
		n := math.Round(v / res)
		if !(math.Abs(n) < 1<<52) { // also rejects NaN
			return dst, false
		}
		ni := int64(n)
		if math.Float64bits(float64(ni)*res) != math.Float64bits(v) {
			return dst, false
		}
		ns[i] = ni
		if i == 0 || ni < minN {
			minN = ni
		}
		if i == 0 || ni > maxN {
			maxN = ni
		}
	}
	width := uint(bits.Len64(uint64(maxN - minN)))
	if width > gridMaxWidth {
		return dst, false
	}
	rb := math.Float64bits(res)
	for i := 0; i < 8; i++ {
		dst = append(dst, byte(rb>>(8*i)))
	}
	var hdr [10]byte
	n := putUvarint(hdr[:], zigzag(minN))
	dst = append(dst, hdr[:n]...)
	dst = append(dst, byte(width))
	if width > 0 {
		var bw bitWriter
		for _, ni := range ns {
			bw.writeBits(uint64(ni-minN), width)
		}
		dst = append(dst, bw.buf...)
	}
	return dst, true
}

// decodeGridBlock decodes a grid payload into dst (already sized to the
// block's sample count).
func decodeGridBlock(payload []byte, dst []float64) error {
	if len(payload) < 8 {
		return corruptf("grid block truncated before resolution (%d bytes)", len(payload))
	}
	var rb uint64
	for i := 0; i < 8; i++ {
		rb |= uint64(payload[i]) << (8 * i)
	}
	res := math.Float64frombits(rb)
	if !(res > 0) || math.IsInf(res, 0) {
		return corruptf("grid block resolution %v not positive finite", res)
	}
	zz, n := uvarint(payload[8:])
	if n <= 0 {
		return corruptf("grid block truncated in base index")
	}
	minN := unzigzag(zz)
	payload = payload[8+n:]
	if len(payload) < 1 {
		return corruptf("grid block truncated before bit width")
	}
	width := uint(payload[0])
	if width > gridMaxWidth {
		return corruptf("grid block width %d exceeds %d", width, gridMaxWidth)
	}
	lo := float64(minN) * res
	hi := (float64(minN) + float64(uint64(1)<<width)) * res
	if math.IsInf(lo, 0) || math.IsNaN(lo) || math.IsInf(hi, 0) || math.IsNaN(hi) {
		return corruptf("grid block value range not finite")
	}
	if width == 0 {
		for i := range dst {
			dst[i] = lo
		}
		return nil
	}
	r := bitReader{buf: payload[1:]}
	for i := range dst {
		u, ok := r.readBits(width)
		if !ok {
			return corruptf("grid block truncated at sample %d of %d", i, len(dst))
		}
		dst[i] = float64(minN+int64(u)) * res
	}
	return nil
}

// DecodeBlock decompresses one block into dst (reused if it has capacity)
// and returns the sample slice. maxCount bounds the block's declared sample
// count — a corrupt header cannot force a huge allocation.
func DecodeBlock(block []byte, maxCount int, dst []float64) ([]float64, error) {
	count, n := uvarint(block)
	if n <= 0 {
		return nil, corruptf("block header truncated (%d bytes)", len(block))
	}
	if count == 0 || (maxCount > 0 && count > uint64(maxCount)) {
		return nil, corruptf("block declares %d samples (max %d)", count, maxCount)
	}
	if cap(dst) < int(count) {
		dst = make([]float64, count)
	}
	dst = dst[:count]
	if len(block) <= n {
		return nil, corruptf("block truncated before encoding tag")
	}
	tag := block[n]
	n++
	switch tag {
	case blockTagXOR:
		// fall through to the token loop below
	case blockTagGrid:
		if err := decodeGridBlock(block[n:], dst); err != nil {
			return nil, err
		}
		return dst, nil
	default:
		return nil, corruptf("unknown block encoding tag %d", tag)
	}
	r := bitReader{buf: block[n:]}
	first, ok := r.readBits(64)
	if !ok {
		return nil, corruptf("block truncated before first value")
	}
	if math.IsNaN(math.Float64frombits(first)) || math.IsInf(math.Float64frombits(first), 0) {
		return nil, corruptf("block carries non-finite first value")
	}
	dst[0] = math.Float64frombits(first)
	prev := first
	var leading, sigbits uint
	for i := 1; i < int(count); {
		b, ok := r.readBit()
		if !ok {
			return nil, corruptf("block truncated at sample %d of %d", i, count)
		}
		if b == 0 { // repeat
			dst[i] = math.Float64frombits(prev)
			i++
			continue
		}
		b, ok = r.readBit()
		if !ok {
			return nil, corruptf("block truncated mid-token at sample %d", i)
		}
		if b == 0 { // '10': window reuse
			if sigbits == 0 {
				return nil, corruptf("window-reuse token before any window at sample %d", i)
			}
			sig, ok := r.readBits(sigbits)
			if !ok {
				return nil, corruptf("block truncated in value bits at sample %d", i)
			}
			prev ^= sig << (64 - leading - sigbits)
			dst[i] = math.Float64frombits(prev)
			i++
			continue
		}
		b, ok = r.readBit()
		if !ok {
			return nil, corruptf("block truncated mid-token at sample %d", i)
		}
		if b == 0 { // '110': new window
			hdr, ok := r.readBits(12)
			if !ok {
				return nil, corruptf("block truncated in window header at sample %d", i)
			}
			leading = uint(hdr >> 6)
			sigbits = uint(hdr&0x3f) + 1
			if leading+sigbits > 64 {
				return nil, corruptf("window %d+%d exceeds 64 bits at sample %d", leading, sigbits, i)
			}
			sig, ok := r.readBits(sigbits)
			if !ok {
				return nil, corruptf("block truncated in value bits at sample %d", i)
			}
			trail := 64 - leading - sigbits
			prev ^= sig << trail
			dst[i] = math.Float64frombits(prev)
			i++
			continue
		}
		// '111': run of repeats
		run, ok := r.readBits(12)
		if !ok {
			return nil, corruptf("block truncated in run length at sample %d", i)
		}
		if run == 0 || i+int(run) > int(count) {
			return nil, corruptf("run of %d at sample %d overflows block of %d", run, i, count)
		}
		v := math.Float64frombits(prev)
		for j := 0; j < int(run); j++ {
			dst[i+j] = v
		}
		i += int(run)
	}
	return dst, nil
}

// blockSamples returns a block's declared sample count without decoding it.
func blockSamples(block []byte) (int, error) {
	count, n := uvarint(block)
	if n <= 0 {
		return 0, corruptf("block header truncated (%d bytes)", len(block))
	}
	return int(count), nil
}

// Series is one compressed, append-only fixed-stride series: consecutive
// samples sealed into one compressed block per blockLen samples (the final
// block may be shorter after Seal). Pending samples buffer in a small
// scratch slice until their block seals, so each seal sees the whole block
// and can choose the grid encoding when the series carries a resolution
// hint. The zero value is not usable; use NewSeries or NewSeriesQuantized.
type Series struct {
	blockLen int
	res      float64 // grid resolution hint (0 = XOR only)
	blocks   [][]byte
	counts   []int     // per-block sample counts (header-free fast path)
	n        int       // total sealed + pending samples
	bytes    int       // total compressed bytes across sealed blocks
	cur      []float64 // pending samples of the open block
	sealed   bool      // Seal was called with a pending partial block
}

// NewSeries returns an empty series with the given block length
// (0 = DefaultBlockLen, one day of minutes).
func NewSeries(blockLen int) *Series {
	return NewSeriesQuantized(blockLen, 0)
}

// NewSeriesQuantized returns an empty series whose samples are expected to
// sit on an n·res value grid (res in the series' own unit, e.g. 0.001 for a
// 1 W meter feed in kW). The hint selects the bitpacked grid encoding for
// blocks where it reproduces every sample bit-exactly; other blocks fall
// back to XOR, so a wrong hint costs compression, never correctness.
// res <= 0 disables the hint.
func NewSeriesQuantized(blockLen int, res float64) *Series {
	if blockLen <= 0 {
		blockLen = DefaultBlockLen
	}
	if !(res > 0) || math.IsInf(res, 0) {
		res = 0
	}
	return &Series{blockLen: blockLen, res: res}
}

// BlockLen returns the samples-per-block stride.
func (s *Series) BlockLen() int { return s.blockLen }

// Len returns the total number of samples appended (sealed + pending).
func (s *Series) Len() int { return s.n }

// NumBlocks returns the number of sealed blocks.
func (s *Series) NumBlocks() int { return len(s.blocks) }

// BlockSamples returns the sample count of sealed block i.
func (s *Series) BlockSamples(i int) int { return s.counts[i] }

// Block returns the encoded bytes of sealed block i (aliased, do not
// mutate).
func (s *Series) Block(i int) []byte { return s.blocks[i] }

// Append adds one sample, sealing a block every blockLen samples. It
// returns ErrNonFinite for NaN/Inf without consuming the sample.
func (s *Series) Append(v float64) error {
	if s.sealed {
		return fmt.Errorf("store: append after Seal on a partial block")
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("%w (%v)", ErrNonFinite, v)
	}
	if s.cur == nil {
		s.cur = make([]float64, 0, s.blockLen)
	}
	s.cur = append(s.cur, v)
	s.n++
	if len(s.cur) == s.blockLen {
		s.sealBlock()
	}
	return nil
}

// AppendSlice appends a batch of samples.
func (s *Series) AppendSlice(vs []float64) error {
	for _, v := range vs {
		if err := s.Append(v); err != nil {
			return err
		}
	}
	return nil
}

// Seal flushes a pending partial block (if any) so every sample becomes
// decodable. Required before WriteBlob when Len is not a multiple of
// BlockLen; a no-op otherwise. After sealing a partial block the series
// rejects further appends (blocks after a short block would break the
// fixed-stride index math).
func (s *Series) Seal() {
	if len(s.cur) > 0 {
		s.sealBlock()
		s.sealed = true
	}
	s.cur = nil // release the open-block scratch
}

func (s *Series) sealBlock() {
	block, err := EncodeBlockQuantized(nil, s.cur, s.res)
	if err != nil {
		// Samples were validated finite at Append; encoding cannot fail.
		panic(fmt.Sprintf("store: seal of validated block failed: %v", err))
	}
	s.blocks = append(s.blocks, block)
	s.counts = append(s.counts, len(s.cur))
	s.bytes += len(block)
	s.cur = s.cur[:0]
}

// DecodeBlockInto decodes sealed block i into dst (reused if it has
// capacity) and returns the samples.
func (s *Series) DecodeBlockInto(i int, dst []float64) ([]float64, error) {
	if i < 0 || i >= len(s.blocks) {
		return nil, fmt.Errorf("store: block %d outside [0,%d)", i, len(s.blocks))
	}
	out, err := DecodeBlock(s.blocks[i], s.blockLen, dst)
	if err != nil {
		return nil, err
	}
	if len(out) != s.counts[i] {
		return nil, corruptf("block %d decodes %d samples, directory says %d", i, len(out), s.counts[i])
	}
	return out, nil
}

// CompressedBytes returns the total sealed block payload size. Pending
// unsealed samples are excluded (their encoding is not final).
func (s *Series) CompressedBytes() int { return s.bytes }

// RawBytes returns the size the sealed samples would occupy as raw
// float64s — the bytes-per-point baseline.
func (s *Series) RawBytes() int { return (s.n - len(s.cur)) * 8 }

// BytesPerPoint returns the compressed bytes per sealed sample.
func (s *Series) BytesPerPoint() float64 {
	sealedSamples := s.n - len(s.cur)
	if sealedSamples == 0 {
		return 0
	}
	return float64(s.bytes) / float64(sealedSamples)
}

// putUvarint / uvarint are encoding/binary's varint layout, duplicated here
// so the block format is self-contained (and so decode can fail with
// ErrCorrupt instead of a generic error).
func putUvarint(buf []byte, x uint64) int {
	i := 0
	for x >= 0x80 {
		buf[i] = byte(x) | 0x80
		x >>= 7
		i++
	}
	buf[i] = byte(x)
	return i + 1
}

func uvarint(buf []byte) (uint64, int) {
	var x uint64
	var s uint
	for i, b := range buf {
		if i == 10 {
			return 0, -(i + 1)
		}
		if b < 0x80 {
			if i == 9 && b > 1 {
				return 0, -(i + 1)
			}
			return x | uint64(b)<<s, i + 1
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, 0
}
