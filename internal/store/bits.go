package store

// Bit-stream primitives for the block codec. internal/wire's streams are
// byte-granular (varints, zero-run bytes); the Gorilla-style value codec
// needs sub-byte tokens, so the store carries its own minimal pair. Both
// sides address bits MSB-first within each byte, which keeps the encoded
// stream independent of host endianness.

// bitWriter appends bits to a growing byte buffer, MSB-first.
type bitWriter struct {
	buf []byte
	// free is the number of unwritten low-order bits in buf's last byte;
	// 0 means the last byte is full (or buf is empty).
	free uint
}

// writeBits appends the low n bits of v (n ≤ 64), most significant first.
func (w *bitWriter) writeBits(v uint64, n uint) {
	if n == 0 {
		return
	}
	v <<= 64 - n // left-align the payload
	for n > 0 {
		if w.free == 0 {
			w.buf = append(w.buf, 0)
			w.free = 8
		}
		take := n
		if take > w.free {
			take = w.free
		}
		w.buf[len(w.buf)-1] |= byte(v>>(64-take)) << (w.free - take)
		v <<= take
		n -= take
		w.free -= take
	}
}

// writeBit appends a single bit.
func (w *bitWriter) writeBit(b uint64) { w.writeBits(b&1, 1) }

// bitLen returns the number of bits written so far.
func (w *bitWriter) bitLen() int { return len(w.buf)*8 - int(w.free) }

// reset clears the writer for reuse, keeping the buffer capacity.
func (w *bitWriter) reset() {
	w.buf = w.buf[:0]
	w.free = 0
}

// bitReader consumes bits from a byte slice, MSB-first. Reads past the end
// fail with errShort rather than panicking — truncated blocks are a data
// error, not a programming error.
type bitReader struct {
	buf []byte
	pos uint64 // bit cursor
}

// readBits returns the next n bits (n ≤ 64) as the low bits of a uint64.
func (r *bitReader) readBits(n uint) (uint64, bool) {
	if r.pos+uint64(n) > uint64(len(r.buf))*8 {
		return 0, false
	}
	var v uint64
	for n > 0 {
		byteIdx := r.pos >> 3
		bitOff := uint(r.pos & 7) // bits already consumed in this byte
		avail := 8 - bitOff
		take := n
		if take > avail {
			take = avail
		}
		chunk := uint64(r.buf[byteIdx]>>(avail-take)) & ((1 << take) - 1)
		v = v<<take | chunk
		r.pos += uint64(take)
		n -= take
	}
	return v, true
}

// readBit returns the next single bit.
func (r *bitReader) readBit() (uint64, bool) { return r.readBits(1) }
