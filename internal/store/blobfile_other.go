//go:build !(linux || darwin || freebsd || netbsd || openbsd || dragonfly)

package store

import "os"

// mapFile on platforms without a wired-up mmap path reads the whole file;
// the BlobFile API is identical, just not lazy.
func mapFile(f *os.File, size int) ([]byte, bool, error) {
	data, err := os.ReadFile(f.Name())
	return data, false, err
}

func unmapFile(data []byte) error { return nil }
