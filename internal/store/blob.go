package store

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Blob format ("PFS1"): a whole corpus of compressed series in one
// mmap-friendly byte stream. The header and block directory are
// fixed-layout little-endian so a reader can locate any (series, block)
// payload by arithmetic alone, and ReadBlob slices block payloads directly
// out of the input buffer — no payload copies, decode stays lazy.
//
//	magic    "PFS1"                       4 bytes
//	version  u16 (= 1)                    2
//	reserved u16 (= 0)                    2
//	blockLen u32                          4
//	nSeries  u32                          4
//	per series:  nSamples u64, nBlocks u32
//	directory:   byteLen u32 per block (series-major order)
//	payload:     the blocks, concatenated in directory order
const (
	blobMagic   = "PFS1"
	blobVersion = 1
)

// maxBlobSeries bounds the header's declared series count so a corrupt
// header cannot force a huge directory allocation before validation.
const maxBlobSeries = 1 << 24

// WriteBlob serializes the series set. Every series must be fully sealed
// (Seal any partial tail first) and share the same block length.
func WriteBlob(w io.Writer, series []*Series) error {
	if len(series) == 0 {
		return fmt.Errorf("store: blob needs at least one series")
	}
	blockLen := series[0].blockLen
	var hdr [16]byte
	copy(hdr[:4], blobMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], blobVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(blockLen))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(series)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var buf [12]byte
	for i, s := range series {
		if s.blockLen != blockLen {
			return fmt.Errorf("store: series %d block length %d, blob uses %d", i, s.blockLen, blockLen)
		}
		if pending := len(s.cur); pending != 0 {
			return fmt.Errorf("store: series %d has %d unsealed samples; Seal before WriteBlob", i, pending)
		}
		binary.LittleEndian.PutUint64(buf[0:8], uint64(s.n))
		binary.LittleEndian.PutUint32(buf[8:12], uint32(len(s.blocks)))
		if _, err := w.Write(buf[:12]); err != nil {
			return err
		}
	}
	for _, s := range series {
		for _, b := range s.blocks {
			binary.LittleEndian.PutUint32(buf[0:4], uint32(len(b)))
			if _, err := w.Write(buf[:4]); err != nil {
				return err
			}
		}
	}
	for _, s := range series {
		for _, b := range s.blocks {
			if _, err := w.Write(b); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadBlob parses a blob, slicing every block payload out of data without
// copying — data must stay alive (and unmodified) as long as the returned
// series are in use. Sample counts are revalidated against each block's own
// header, so a truncated or bit-flipped directory fails here with
// ErrCorrupt rather than at first decode.
func ReadBlob(data []byte) ([]*Series, error) {
	if len(data) < 16 {
		return nil, corruptf("blob header truncated (%d bytes)", len(data))
	}
	if string(data[:4]) != blobMagic {
		return nil, corruptf("blob magic %q, want %q", data[:4], blobMagic)
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != blobVersion {
		return nil, corruptf("blob version %d, want %d", v, blobVersion)
	}
	blockLen := int(binary.LittleEndian.Uint32(data[8:12]))
	nSeries := int(binary.LittleEndian.Uint32(data[12:16]))
	if blockLen <= 0 {
		return nil, corruptf("blob block length %d", blockLen)
	}
	if nSeries <= 0 || nSeries > maxBlobSeries {
		return nil, corruptf("blob declares %d series", nSeries)
	}
	off := 16
	need := nSeries * 12
	if off+need > len(data) {
		return nil, corruptf("blob series table truncated")
	}
	out := make([]*Series, nSeries)
	totalBlocks := 0
	for i := range out {
		n := binary.LittleEndian.Uint64(data[off : off+8])
		nb := int(binary.LittleEndian.Uint32(data[off+8 : off+12]))
		off += 12
		if n > uint64(nb)*uint64(blockLen) {
			return nil, corruptf("blob series %d declares %d samples in %d blocks of %d", i, n, nb, blockLen)
		}
		out[i] = &Series{blockLen: blockLen, n: int(n), sealed: int(n)%blockLen != 0}
		totalBlocks += nb
		if totalBlocks > len(data) { // each block costs ≥1 directory+payload byte
			return nil, corruptf("blob declares %d blocks in %d bytes", totalBlocks, len(data))
		}
		out[i].blocks = make([][]byte, 0, nb)
		out[i].counts = make([]int, 0, nb)
	}
	dirOff, payOff := off, off+4*totalBlocks
	if payOff > len(data) {
		return nil, corruptf("blob directory truncated")
	}
	for i, s := range out {
		samples := 0
		for b := 0; b < cap(s.blocks); b++ {
			bl := int(binary.LittleEndian.Uint32(data[dirOff : dirOff+4]))
			dirOff += 4
			if bl <= 0 || payOff+bl > len(data) {
				return nil, corruptf("blob series %d block %d payload (%d bytes) truncated", i, b, bl)
			}
			block := data[payOff : payOff+bl : payOff+bl]
			payOff += bl
			count, err := blockSamples(block)
			if err != nil {
				return nil, err
			}
			if count <= 0 || count > blockLen {
				return nil, corruptf("blob series %d block %d declares %d samples (block length %d)", i, b, count, blockLen)
			}
			s.blocks = append(s.blocks, block)
			s.counts = append(s.counts, count)
			s.bytes += bl
			samples += count
		}
		if samples != s.n {
			return nil, corruptf("blob series %d blocks hold %d samples, header says %d", i, samples, s.n)
		}
	}
	return out, nil
}
