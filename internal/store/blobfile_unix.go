//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package store

import (
	"os"
	"syscall"
)

// mapFile maps f read-only. A zero-length file cannot be mapped (mmap
// rejects length 0), so it degrades to an empty slice — ReadBlob then
// reports the truncated header like any other short input.
func mapFile(f *os.File, size int) ([]byte, bool, error) {
	if size == 0 {
		return nil, false, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Some filesystems refuse mmap; fall back to a plain read
		// rather than failing the open.
		data, rerr := os.ReadFile(f.Name())
		if rerr != nil {
			return nil, false, err
		}
		return data, false, nil
	}
	return data, true, nil
}

func unmapFile(data []byte) error { return syscall.Munmap(data) }
