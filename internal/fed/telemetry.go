package fed

import (
	"fmt"
	"time"

	"repro/internal/telemetry"
)

// RoundTelemetry observes the lifecycle of overlapped federation rounds on
// one plane: how long a full round takes from transport start to staged
// aggregate, how much of that the background fold consumed, and how long
// Join had to block for aggregation that had not finished when the caller
// came back. A nil *RoundTelemetry (the default on a zero workspace) makes
// every hook a no-op.
type RoundTelemetry struct {
	sink     *telemetry.Sink
	spanName string

	rounds     *telemetry.Counter
	agents     *telemetry.Counter
	crashed    *telemetry.Counter
	rejected   *telemetry.Counter
	bytesSent  *telemetry.Counter
	denseBytes *telemetry.Counter

	roundDur *telemetry.Histogram
	foldDur  *telemetry.Histogram
	joinWait *telemetry.Histogram
}

// NewRoundTelemetry builds the per-plane round instruments on sink
// (nil sink → nil telemetry, all hooks no-ops). Attach the result to a
// RoundWorkspace.Tel so the rounds it carries report themselves.
func NewRoundTelemetry(sink *telemetry.Sink, plane string) *RoundTelemetry {
	if sink == nil {
		return nil
	}
	name := func(base string) string {
		return fmt.Sprintf(`%s{plane=%q}`, base, plane)
	}
	return &RoundTelemetry{
		sink:       sink,
		spanName:   "fed.round." + plane,
		rounds:     sink.Counter(name("pfdrl_fed_rounds_total"), "federation rounds completed"),
		agents:     sink.Counter(name("pfdrl_fed_round_agents_total"), "live agents summed over rounds"),
		crashed:    sink.Counter(name("pfdrl_fed_round_crashed_total"), "agents skipped while inside a crash window, summed over rounds"),
		rejected:   sink.Counter(name("pfdrl_fed_round_rejected_total"), "parameter sets rejected by validation (corruption or NaN/Inf)"),
		bytesSent:  sink.Counter(name("pfdrl_fed_round_bytes_sent_total"), "wire bytes charged to completed rounds"),
		denseBytes: sink.Counter(name("pfdrl_fed_round_dense_bytes_total"), "bytes the same rounds would have cost on the dense PFP1 plane"),
		roundDur:   sink.Histogram(name("pfdrl_fed_round_seconds"), "wall-clock from transport start to joined aggregate", telemetry.DurationBuckets()),
		foldDur:    sink.Histogram(name("pfdrl_fed_fold_seconds"), "wall-clock of the background aggregation fold", telemetry.DurationBuckets()),
		joinWait:   sink.Histogram(name("pfdrl_fed_join_wait_seconds"), "time Join blocked waiting for aggregation", telemetry.DurationBuckets()),
	}
}

// observeFold records the background aggregation's duration.
func (t *RoundTelemetry) observeFold(d time.Duration) {
	if t == nil {
		return
	}
	t.foldDur.Observe(d.Seconds())
}

// observeJoin records one completed round: the join wait, the full round
// duration, and the report's counters.
func (t *RoundTelemetry) observeJoin(begin time.Time, wait time.Duration, rep RoundReport) {
	if t == nil {
		return
	}
	t.joinWait.Observe(wait.Seconds())
	dur := time.Since(begin)
	t.roundDur.Observe(dur.Seconds())
	t.rounds.Inc()
	t.agents.Add(int64(rep.Agents))
	t.crashed.Add(int64(rep.Crashed))
	t.rejected.Add(int64(rep.CorruptRejected + rep.NaNRejected + rep.ByzantineRejected))
	t.bytesSent.Add(rep.BytesSent)
	t.denseBytes.Add(rep.DenseBytes)
	t.sink.Record(telemetry.Span{
		Name:      t.spanName,
		Start:     begin,
		Dur:       dur,
		SimMinute: -1,
		N:         rep.BytesSent,
	})
}
