package fed

// Byzantine / poisoned-update adversaries for the decentralized
// federation planes (scenario capability c, after the fednet.FaultPlan
// pattern): an AdversaryPlan scripts which agents poison their outgoing
// parameter broadcasts, how (sign-flip, scaled noise, stale replay), and
// when (per-kind round windows); a Defense configures the receiver-side
// screening gates that quarantine suspicious payloads before they join
// an aggregate.
//
// The attack model is parameter poisoning, not wire corruption: the
// fabric's CRC32 checksum (and the PFW2 codec's validation) would catch
// any byte-level tampering, so a Byzantine peer perturbs its parameters
// *before* marshaling and ships a perfectly well-formed payload. The
// attacker's own aggregation still folds its true snapshot — a poisoner
// lies to its peers, not to itself.
//
// All perturbations are deterministic functions of (plan seed, kind,
// round, agent, element), so adversarial runs are bit-reproducible and
// the scenario golden tests can pin per-round detection counts exactly.

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// AttackKind names a poisoning strategy.
type AttackKind string

// The supported poisoning strategies.
const (
	// AttackSignFlip broadcasts the negated parameters — the classic
	// gradient-inversion Byzantine attack. Flagrant: cosine ≈ −1
	// against any honest reference.
	AttackSignFlip AttackKind = "sign-flip"
	// AttackNoise adds deterministic zero-mean noise with RMS amplitude
	// Scale × the parameter RMS. Flagrant for large Scale: the payload
	// norm grows by √(1+Scale²).
	AttackNoise AttackKind = "noise"
	// AttackStale replays the attacker's own parameters from Lag rounds
	// ago — a freshness attack that realistically passes norm and
	// cosine screening (replayed parameters are old *honest* ones); it
	// slows convergence rather than destroying it.
	AttackStale AttackKind = "stale"
)

// Valid reports whether k names a known attack.
func (k AttackKind) Valid() bool {
	switch k {
	case AttackSignFlip, AttackNoise, AttackStale:
		return true
	}
	return false
}

// Attacker scripts one Byzantine agent. Rounds are counted per message
// kind from 0 in the order the plane runs them; [StartRound, EndRound)
// is the active window, EndRound 0 meaning "until the run ends".
type Attacker struct {
	// Agent is the network agent index of the compromised peer.
	Agent int
	// Attack selects the poisoning strategy.
	Attack AttackKind
	// Scale is the noise amplitude multiplier (AttackNoise only).
	Scale float64
	// Lag is the replay depth in rounds (AttackStale only; ≥ 1). The
	// attack silently no-ops until Lag rounds of history exist.
	Lag int
	// StartRound / EndRound window the attack per kind.
	StartRound, EndRound int
}

// activeAt reports whether the attacker poisons round r.
func (a Attacker) activeAt(r int) bool {
	return r >= a.StartRound && (a.EndRound == 0 || r < a.EndRound)
}

// Defense configures receiver-side update screening. The reference for
// every gate is the receiving agent's own current base parameters —
// always available, and close to consensus under federation, so honest
// payloads sit at norm ratio ≈ 1 and cosine ≈ 1.
type Defense struct {
	// NormRatio, when > 1, rejects payloads whose L2-norm ratio against
	// the reference (taken symmetric: max(r, 1/r)) exceeds it. Catches
	// scaled-noise attacks. 0 disables the gate.
	NormRatio float64
	// CosineGate, when true, rejects payloads whose cosine similarity
	// to the reference falls below CosineMin. Catches sign-flip
	// (cosine ≈ −1). CosineMin 0 is a real threshold (honest payloads
	// sit near +1), not "unset".
	CosineGate bool
	CosineMin  float64
}

// Enabled reports whether any screening gate is active.
func (d Defense) Enabled() bool { return d.NormRatio > 0 || d.CosineGate }

// Validate checks the defense thresholds.
func (d Defense) Validate() error {
	if d.NormRatio != 0 && d.NormRatio <= 1 {
		return fmt.Errorf("fed: Defense.NormRatio %g must be > 1 (or 0 to disable)", d.NormRatio)
	}
	if d.CosineMin < -1 || d.CosineMin > 1 {
		return fmt.Errorf("fed: Defense.CosineMin %g outside [-1,1]", d.CosineMin)
	}
	return nil
}

// Catches predicts whether the defense flags an attacker's payloads.
// Sign-flip is caught by the cosine gate; noise by either gate when its
// norm growth (or the matching cosine shrink) clears the threshold.
// PayloadFor's noise stream is uniform on [-1,1] (RMS 1/√3), so a noise
// payload's expected norm grows by √(1+Scale²/3) relative to the clean
// snapshot. The prediction is exact when thresholds are set with margin,
// which the shipped scenarios and their golden tests do; stale replay
// passes both gates by construction.
func (d Defense) Catches(a Attacker) bool {
	if !d.Enabled() {
		return false
	}
	switch a.Attack {
	case AttackSignFlip:
		return d.CosineGate && d.CosineMin > -1
	case AttackNoise:
		growth := math.Sqrt(1 + a.Scale*a.Scale/3)
		if d.NormRatio > 0 && growth > d.NormRatio {
			return true
		}
		return d.CosineGate && 1/growth < d.CosineMin
	default:
		return false
	}
}

// AdversaryPlan scripts deterministic Byzantine behavior for a run. The
// zero value injects nothing and screens nothing.
type AdversaryPlan struct {
	// Seed drives the noise attack's deterministic perturbation stream.
	Seed int64
	// Attackers lists the compromised agents (at most one entry per
	// agent).
	Attackers []Attacker
	// Defense configures receiver-side screening (applies to every
	// aggregating agent, attackers included — a poisoner still defends
	// its own aggregate).
	Defense Defense
}

// Empty reports whether the plan neither attacks nor defends.
func (p AdversaryPlan) Empty() bool {
	return len(p.Attackers) == 0 && !p.Defense.Enabled()
}

// Validate checks attacker references and ranges against a network of n
// agents.
func (p AdversaryPlan) Validate(n int) error {
	seen := make(map[int]bool, len(p.Attackers))
	for _, a := range p.Attackers {
		if a.Agent < 0 || a.Agent >= n {
			return fmt.Errorf("fed: attacker agent %d outside range [0,%d)", a.Agent, n)
		}
		if seen[a.Agent] {
			return fmt.Errorf("fed: duplicate attacker entry for agent %d", a.Agent)
		}
		seen[a.Agent] = true
		if !a.Attack.Valid() {
			return fmt.Errorf("fed: unknown attack kind %q for agent %d", a.Attack, a.Agent)
		}
		if a.Attack == AttackNoise && (a.Scale <= 0 || math.IsNaN(a.Scale) || math.IsInf(a.Scale, 0)) {
			return fmt.Errorf("fed: noise attacker %d needs a positive finite Scale (have %g)", a.Agent, a.Scale)
		}
		if a.Attack == AttackStale && a.Lag < 1 {
			return fmt.Errorf("fed: stale attacker %d needs Lag ≥ 1 (have %d)", a.Agent, a.Lag)
		}
		if a.StartRound < 0 {
			return fmt.Errorf("fed: attacker %d StartRound %d must be ≥ 0", a.Agent, a.StartRound)
		}
		if a.EndRound != 0 && a.EndRound <= a.StartRound {
			return fmt.Errorf("fed: attacker %d EndRound %d must exceed StartRound %d (or be 0)",
				a.Agent, a.EndRound, a.StartRound)
		}
	}
	return p.Defense.Validate()
}

// MaxAgent returns the highest agent index the plan references, or -1
// for a plan touching no specific agent.
func (p AdversaryPlan) MaxAgent() int {
	max := -1
	for _, a := range p.Attackers {
		if a.Agent > max {
			max = a.Agent
		}
	}
	return max
}

// DetectionsPerRound predicts the ByzantineRejected count one drop-free
// all-to-all round at per-kind round index r records over n live
// agents: each active attacker the defense catches poisons the payloads
// received by its n−1 peers (the attacker's own aggregate folds its
// true snapshot, so it contributes no self-detection). The byzantine
// golden test pins the run total against a sum of these.
func (p AdversaryPlan) DetectionsPerRound(n, r int) int {
	d := 0
	for _, a := range p.Attackers {
		if a.activeAt(r) && p.Defense.Catches(a) {
			d += n - 1
		}
	}
	return d
}

// Adversary is the runtime an AdversaryPlan drives: per-kind round
// counters, the stale-replay history rings, and the perturbation
// scratch. Attach one to every RoundWorkspace of the planes it targets
// (one instance may serve several workspaces as long as their rounds
// begin on one goroutine — true for the engine loop; Suspect is
// read-only and safe from aggregation goroutines).
type Adversary struct {
	plan     AdversaryPlan
	byAgent  map[int]*Attacker
	rounds   map[string]int
	hist     map[histKey][][]*tensor.Matrix
	freelist [][]*tensor.Matrix
	buf      []*tensor.Matrix
}

type histKey struct {
	agent int
	kind  string
}

// NewAdversary builds the runtime for a plan. Callers should Validate
// the plan first; NewAdversary does not re-check it.
func NewAdversary(plan AdversaryPlan) *Adversary {
	a := &Adversary{
		plan:    plan,
		byAgent: make(map[int]*Attacker, len(plan.Attackers)),
		rounds:  make(map[string]int),
	}
	for i := range plan.Attackers {
		at := &plan.Attackers[i]
		a.byAgent[at.Agent] = at
	}
	return a
}

// Plan returns the plan the runtime was built from.
func (a *Adversary) Plan() AdversaryPlan { return a.plan }

// DefenseEnabled reports whether receiver-side screening is on.
func (a *Adversary) DefenseEnabled() bool { return a.plan.Defense.Enabled() }

// BeginRound returns the per-kind round index for the round now
// starting and advances the counter. Called once per federation round
// by the round entry points, on the round-starting goroutine.
func (a *Adversary) BeginRound(kind string) int {
	r := a.rounds[kind]
	a.rounds[kind] = r + 1
	return r
}

// RoundsRun returns how many rounds of a kind have begun — the
// byzantine golden test sums DetectionsPerRound over these.
func (a *Adversary) RoundsRun(kind string) int { return a.rounds[kind] }

// PayloadFor returns the parameter set agent broadcasts in round r of
// kind: snap itself for honest agents and inactive attackers, or an
// adversary-owned perturbed buffer. The returned set is only valid
// until the next PayloadFor call — marshal or encode it immediately
// (the round entry points do).
func (a *Adversary) PayloadFor(agent int, kind string, r int, snap []*tensor.Matrix) []*tensor.Matrix {
	at := a.byAgent[agent]
	if at == nil {
		return snap
	}
	if at.Attack == AttackStale {
		// History records every round (active or not) so a window
		// opening later still has Lag rounds behind it.
		replay := a.pushHistory(agent, kind, at.Lag, snap)
		if !at.activeAt(r) || replay == nil {
			return snap
		}
		return replay
	}
	if !at.activeAt(r) {
		return snap
	}
	a.buf = ensureParamsLike(a.buf, snap)
	switch at.Attack {
	case AttackSignFlip:
		for i, m := range snap {
			dst, src := a.buf[i].Data, m.Data
			for j := range src {
				dst[j] = -src[j]
			}
		}
	case AttackNoise:
		amp := at.Scale * paramsRMS(snap)
		// Deterministic per-element noise stream keyed on (seed, kind,
		// round, agent, element) — reruns are bit-identical and the
		// stream is independent of every simulation RNG.
		base := splitmix(uint64(a.plan.Seed) ^ hashKind(kind) ^ uint64(r)*0x9e3779b97f4a7c15 ^ uint64(agent)<<32)
		e := uint64(0)
		for i, m := range snap {
			dst, src := a.buf[i].Data, m.Data
			for j := range src {
				u := unitFloat(splitmix(base + e))
				dst[j] = src[j] + amp*u
				e++
			}
		}
	}
	return a.buf
}

// pushHistory records snap in the agent's per-kind replay ring and
// returns the snapshot from lag rounds ago, or nil while the ring is
// still filling.
func (a *Adversary) pushHistory(agent int, kind string, lag int, snap []*tensor.Matrix) []*tensor.Matrix {
	if a.hist == nil {
		a.hist = make(map[histKey][][]*tensor.Matrix)
	}
	k := histKey{agent, kind}
	var set []*tensor.Matrix
	if n := len(a.freelist); n > 0 {
		set = a.freelist[n-1]
		a.freelist = a.freelist[:n-1]
	}
	set = ensureParamsLike(set, snap)
	nn.CopyParams(set, snap)
	ring := append(a.hist[k], set)
	if len(ring) == lag+1 {
		old := ring[0]
		copy(ring, ring[1:])
		ring = ring[:lag]
		a.hist[k] = ring
		// old stays valid until the next PayloadFor (the freelist hands
		// it out again only after reshaping), matching the contract.
		a.freelist = append(a.freelist, old)
		return old
	}
	a.hist[k] = ring
	return nil
}

// Suspect screens a decoded payload against the aggregating agent's
// reference parameters, returning the rejection reason and true when a
// gate fires. With the defense disabled (or a degenerate zero-norm
// side) it always passes.
func (a *Adversary) Suspect(payload, template []*tensor.Matrix) (string, bool) {
	d := a.plan.Defense
	if !d.Enabled() {
		return "", false
	}
	var dot, pp, tt float64
	for i, m := range payload {
		pd, td := m.Data, template[i].Data
		for j := range pd {
			dot += pd[j] * td[j]
			pp += pd[j] * pd[j]
			tt += td[j] * td[j]
		}
	}
	if pp == 0 || tt == 0 {
		return "", false
	}
	pn, tn := math.Sqrt(pp), math.Sqrt(tt)
	if d.NormRatio > 0 {
		r := pn / tn
		if r < 1 {
			r = 1 / r
		}
		if r > d.NormRatio {
			return fmt.Sprintf("byzantine: norm ratio %.2f exceeds %g", r, d.NormRatio), true
		}
	}
	if d.CosineGate {
		if cos := dot / (pn * tn); cos < d.CosineMin {
			return fmt.Sprintf("byzantine: cosine %.3f below %g", cos, d.CosineMin), true
		}
	}
	return "", false
}

// paramsRMS returns the root-mean-square over every element of a set
// (0 for an empty set).
func paramsRMS(set []*tensor.Matrix) float64 {
	var sum float64
	n := 0
	for _, m := range set {
		for _, v := range m.Data {
			sum += v * v
		}
		n += len(m.Data)
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(n))
}

// splitmix is the SplitMix64 finalizer — a stateless bijective hash
// turning any counter into well-distributed bits.
func splitmix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unitFloat maps 64 random bits onto [-1, 1).
func unitFloat(z uint64) float64 {
	return float64(z>>11)/(1<<52) - 1
}

// hashKind is a tiny FNV-1a over the kind string, mixing it into the
// noise stream key.
func hashKind(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
