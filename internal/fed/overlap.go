package fed

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/fednet"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// This file implements overlapped federation rounds: the transport half of a
// decentralized round (snapshot, marshal, broadcast, inbox drain) runs
// synchronously on the caller — every fednet interaction stays on the
// simulation's deterministic clock and RNG — while the aggregation half
// (unmarshal, validation, averaging) runs in one background goroutine that
// writes into staged double buffers. Join blocks until aggregation finishes
// and installs the staged means into the live base layers in agent order.
//
// Because the aggregate is computed from immutable snapshots and drained
// messages, the round's result is bit-identical to the synchronous
// DecentralizedRound no matter what compute the caller overlaps with it.
// The one semantic shift is *when* the mean lands in the live model: at
// Join instead of inside the round call. Callers therefore only overlap a
// round with work that does not read or train the very models in the round
// (e.g. forecaster rounds over EMS compute), joining before the next use.

// RoundWorkspace holds the buffers a repeated federation round reuses:
// per-agent marshal buffers, parameter snapshots, staged aggregation
// targets, and a pool of decode sets for received payloads. A workspace
// serves one round at a time — BeginDecentralizedRound panics if the
// previous round it carries has not been joined, because in-flight message
// payloads alias the marshal buffers.
type RoundWorkspace struct {
	// Comms, when non-nil, switches the workspace's rounds onto the
	// compressed wire plane: snapshots encode through the Exchange
	// (delta/top-k coding against each sender's last broadcast) instead
	// of the dense PFP1 marshal, and aggregation streams each accepted
	// payload straight into the staged sum — O(P) scratch per agent
	// instead of decoding every set before averaging. All rounds sharing
	// one Exchange must share one workspace (or otherwise serialize),
	// because the Exchange's reference store advances with every encode.
	// Nil keeps the legacy dense path, bit-for-bit.
	Comms *wire.Exchange

	// Tel, when non-nil, reports every round this workspace carries —
	// duration, fold time, join wait, and the report counters — to its
	// telemetry sink. Nil is free.
	Tel *RoundTelemetry

	// Adv, when non-nil, drives the scenario adversary: attackers listed
	// in its plan broadcast deterministically poisoned payloads, and when
	// its defense is enabled every aggregating agent screens received
	// payloads (norm-ratio / cosine gates) before they join the mean,
	// rejected ones landing in RoundReport.ByzantineRejected. Nil — the
	// only state for every pre-scenario config — leaves both the
	// transport and aggregation halves byte-identical to before.
	Adv *Adversary

	marshal [][]byte
	snaps   [][]*tensor.Matrix
	staged  [][]*tensor.Matrix

	decode     [][]*tensor.Matrix
	decodeUsed int

	// foldComp is the Kahan compensation scratch for the streaming fold
	// (one O(P) buffer — aggregation is sequential per agent, so it is
	// reused across the fleet). Allocated only when Comms opts in.
	foldComp [][]float64

	inFlight bool
}

// ensureAgents sizes the per-agent buffer tables for n agents.
func (ws *RoundWorkspace) ensureAgents(n int) {
	if len(ws.marshal) < n {
		ws.marshal = append(ws.marshal, make([][]byte, n-len(ws.marshal))...)
		ws.snaps = append(ws.snaps, make([][]*tensor.Matrix, n-len(ws.snaps))...)
		ws.staged = append(ws.staged, make([][]*tensor.Matrix, n-len(ws.staged))...)
	}
}

// nextDecodeSet hands out the next pooled decode set, shaped by the decoder
// itself (DecodeInto resizes in place). The pool is positional: reset
// decodeUsed to recycle every set once its consumers are done.
func (ws *RoundWorkspace) nextDecodeSet(n int) []*tensor.Matrix {
	if ws.decodeUsed == len(ws.decode) {
		ws.decode = append(ws.decode, nil)
	}
	set := ws.decode[ws.decodeUsed]
	for len(set) < n {
		set = append(set, &tensor.Matrix{})
	}
	set = set[:n]
	ws.decode[ws.decodeUsed] = set
	ws.decodeUsed++
	return set
}

// ensureComp shapes the Kahan compensation scratch like the given set and
// zeroes it for a fresh aggregation.
func (ws *RoundWorkspace) ensureComp(like []*tensor.Matrix) [][]float64 {
	if cap(ws.foldComp) < len(like) {
		ws.foldComp = make([][]float64, len(like))
	}
	ws.foldComp = ws.foldComp[:len(like)]
	for i, m := range like {
		if cap(ws.foldComp[i]) < m.Size() {
			ws.foldComp[i] = make([]float64, m.Size())
		}
		ws.foldComp[i] = ws.foldComp[i][:m.Size()]
		clear(ws.foldComp[i])
	}
	return ws.foldComp
}

// ensureParamsLike shapes dst as a reusable deep buffer matching the shapes
// of like, reusing backing storage whenever capacity allows.
func ensureParamsLike(dst, like []*tensor.Matrix) []*tensor.Matrix {
	if cap(dst) < len(like) {
		dst = make([]*tensor.Matrix, len(like))
	} else {
		dst = dst[:len(like)]
	}
	for i, p := range like {
		dst[i] = tensor.EnsureShape(dst[i], p.Rows, p.Cols)
	}
	return dst
}

// PendingRound is a decentralized round whose transport half has completed
// and whose aggregation half may still be running. Join must be called
// exactly once per round before the workspace (or the round's models) are
// used again; it is cheap when aggregation already finished.
type PendingRound struct {
	rep  RoundReport
	err  error
	done chan struct{}
	ws   *RoundWorkspace

	agents []int              // live agent indices, ascending
	bases  [][]*tensor.Matrix // live base-layer params, parallel to agents
	staged [][]*tensor.Matrix // staged aggregates, parallel to agents
	used   []int              // sets averaged per agent, parallel to agents
	joined bool

	tel   *RoundTelemetry
	begin time.Time
}

// BeginDecentralizedRound starts one DFL exchange (see DecentralizedRound
// for the protocol and degradation semantics) and returns without waiting
// for aggregation. All network traffic — snapshot broadcast and inbox
// drain — happens before it returns, so fednet's byte/time accounting and
// fault RNG advance exactly as in the synchronous round. Averaging then
// proceeds in the background against staged buffers; the caller may overlap
// any compute that does not touch the round's models, and must call Join on
// the result before reading or training them again.
//
// ws may be nil for a one-shot round (fresh buffers); passing a workspace
// across rounds removes the per-round marshal and snapshot allocations.
func BeginDecentralizedRound(net *fednet.Network, models []*nn.Sequential, kind string, alpha int, ws *RoundWorkspace) *PendingRound {
	p := &PendingRound{done: make(chan struct{})}
	if ws != nil && ws.Tel != nil {
		p.tel = ws.Tel
		p.begin = time.Now()
	}
	if net.N() != len(models) {
		p.err = fmt.Errorf("fed: %d models for %d network agents", len(models), net.N())
		close(p.done)
		return p
	}
	n := len(models)
	if n == 1 {
		p.rep = RoundReport{Agents: 1, MinSets: 1, MaxSets: 1}
		close(p.done)
		return p
	}
	if ws == nil {
		ws = &RoundWorkspace{}
	} else if ws.inFlight {
		panic("fed: BeginDecentralizedRound: workspace round still pending (Join it first)")
	}
	ws.ensureAgents(n)
	advRound := -1
	if ws.Adv != nil {
		advRound = ws.Adv.BeginRound(kind)
	}
	topo := net.Config().Topology
	p.rep.PartialExchange = topo == fednet.Ring || topo == fednet.Sampled
	live := make([]bool, n)
	for i := range models {
		if net.AgentDown(i) {
			p.rep.Crashed++
			continue
		}
		live[i] = true
		p.rep.Agents++
	}
	// Snapshot & broadcast. Snapshots isolate in-flight payloads from any
	// continued local mutation; they live in the workspace so steady-state
	// rounds allocate nothing here. The fednet.Stats delta around this
	// transport phase is the round's byte bill.
	st0 := net.Stats()
	for i, m := range models {
		if !live[i] {
			continue
		}
		base := baseParams(m, alpha)
		ws.snaps[i] = ensureParamsLike(ws.snaps[i], base)
		nn.CopyParams(ws.snaps[i], base)
		// A Byzantine agent broadcasts a poisoned set while ws.snaps[i]
		// stays true — its own aggregation folds honest parameters. The
		// adversary buffer is marshaled before the next PayloadFor call,
		// so one shared buffer serves the whole loop.
		payload := ws.snaps[i]
		if ws.Adv != nil {
			payload = ws.Adv.PayloadFor(i, kind, advRound, ws.snaps[i])
		}
		if ws.Comms != nil {
			var err error
			ws.marshal[i], err = ws.Comms.EncodeInto(ws.marshal[i][:0], i, kind, payload)
			if err != nil {
				p.err = fmt.Errorf("fed: encoding agent %d params: %w", i, err)
				close(p.done)
				return p
			}
		} else {
			ws.marshal[i] = MarshalParamsInto(ws.marshal[i], payload)
		}
		if err := net.Broadcast(i, kind, ws.marshal[i]); err != nil {
			p.err = err
			close(p.done)
			return p
		}
	}
	// Drain every inbox now: Collect is the last fednet interaction, so the
	// network is back to a quiescent state when Begin returns.
	msgs := make([][]fednet.Message, n)
	for i := range models {
		if !live[i] {
			continue
		}
		msgs[i] = net.Collect(i)
		for _, msg := range msgs[i] {
			if msg.Kind == kind {
				p.rep.BytesReceived += int64(len(msg.Payload))
			}
		}
		base := baseParams(models[i], alpha)
		p.agents = append(p.agents, i)
		p.bases = append(p.bases, base)
		ws.staged[i] = ensureParamsLike(ws.staged[i], base)
		p.staged = append(p.staged, ws.staged[i])
	}
	st := net.Stats()
	p.rep.BytesSent = st.BytesSent - st0.BytesSent
	p.rep.Messages = st.MessagesSent - st0.MessagesSent
	if ws.Comms != nil && len(p.bases) > 0 {
		// Dense baseline: the same attempts carrying PFP1 payloads. The
		// attempt count is unchanged by payload size (drop/corruption RNG
		// draws are per attempt), so this is exact, not an estimate.
		p.rep.DenseBytes = int64(st.MessagesSent-st0.MessagesSent) * int64(wire.DenseSize(p.bases[0]))
	} else {
		p.rep.DenseBytes = p.rep.BytesSent
	}
	p.used = make([]int, len(p.agents))
	p.ws = ws
	ws.inFlight = true
	// Aggregate in the background: one goroutine, agents in ascending order,
	// so rejects and set counts land in the report in the same order the
	// synchronous round produces.
	go func() {
		var foldStart time.Time
		if p.tel != nil {
			foldStart = time.Now()
		}
		if ws.Comms != nil {
			if ws.Adv != nil && ws.Adv.DefenseEnabled() {
				p.aggregateScreened(msgs, kind, ws)
			} else {
				p.aggregateStreaming(msgs, kind, ws)
			}
		} else {
			for idx, i := range p.agents {
				ws.decodeUsed = 0 // agent idx's sets are consumed before idx+1 decodes
				sets := p.rep.collectFrom(msgs[i], i, p.bases[idx], kind, ws.snaps[i], ws)
				p.used[idx] = nn.AverageParamSets(p.staged[idx], sets...)
			}
		}
		if p.tel != nil {
			p.tel.observeFold(time.Since(foldStart))
		}
		close(p.done)
	}()
	return p
}

// aggregateStreaming is the compressed-plane aggregation half. Instead of
// decoding every payload into its own parameter set and averaging the pile
// (O(N·P) scratch at the aggregator), each accepted payload folds straight
// into the staged sum, so scratch stays O(P) no matter how many peers
// contributed. Two passes keep the mean exact: pass 1 validates payloads
// and fixes the divisor, pass 2 folds the agent's own snapshot first and
// then the messages in arrival order — exactly the element-order
// nn.AverageParamSets applies to decoded sets, so the plain fold is
// bit-identical to the dense path. The opt-in Kahan fold trades that
// equality for compensated summation.
func (p *PendingRound) aggregateStreaming(msgs [][]fednet.Message, kind string, ws *RoundWorkspace) {
	x := ws.Comms
	kahan := x.Options().KahanFold
	var accepted []fednet.Message
	for idx, i := range p.agents {
		base := p.bases[idx]
		ownClean := paramsClean(ws.snaps[i])
		if !ownClean {
			p.rep.reject(i, i, kind, "NaN/Inf parameters", false)
		}
		accepted = accepted[:0]
		for _, msg := range msgs[i] {
			if msg.Kind != kind {
				continue
			}
			if err := x.Validate(msg.From, kind, base, msg.Payload); err != nil {
				p.rep.reject(i, msg.From, msg.Kind, err.Error(), !errors.Is(err, wire.ErrDiverged))
				continue
			}
			accepted = append(accepted, msg)
		}
		total := len(accepted)
		if ownClean {
			total++
		}
		p.used[idx] = total
		if total == 0 {
			continue
		}
		inv := 1.0 / float64(total)
		staged := p.staged[idx]
		for _, m := range staged {
			m.Zero()
		}
		var comp [][]float64
		if kahan {
			comp = ws.ensureComp(base)
		}
		if ownClean {
			wire.FoldLocal(staged, comp, ws.snaps[i], inv)
		}
		for _, msg := range accepted {
			if err := x.FoldInto(staged, comp, msg.From, kind, msg.Payload, inv); err != nil {
				// Validate guaranteed this fold would succeed; failing here
				// is a codec bug, not a fabric fault — fail the round loudly
				// rather than install a half-folded aggregate.
				p.err = fmt.Errorf("fed: folding payload from agent %d: %w", msg.From, err)
				return
			}
		}
	}
}

// aggregateScreened is the compressed-plane aggregation half with the
// adversary defense enabled. Streaming folds can't screen a payload they
// never materialize, so this path decodes every accepted payload into a
// pooled set, runs the Suspect gates against the receiver's own
// snapshot, and averages survivors dense-style — the same element order
// as the streaming fold, at the cost of O(N·P) transient scratch. It
// runs only when a scenario turns the defense on; plain runs keep the
// untouched streaming path.
func (p *PendingRound) aggregateScreened(msgs [][]fednet.Message, kind string, ws *RoundWorkspace) {
	x := ws.Comms
	var sets [][]*tensor.Matrix
	for idx, i := range p.agents {
		base := p.bases[idx]
		ws.decodeUsed = 0 // agent idx's sets are consumed before idx+1 decodes
		sets = sets[:0]
		if paramsClean(ws.snaps[i]) {
			sets = append(sets, ws.snaps[i])
		} else {
			p.rep.reject(i, i, kind, "NaN/Inf parameters", false)
		}
		for _, msg := range msgs[i] {
			if msg.Kind != kind {
				continue
			}
			if err := x.Validate(msg.From, kind, base, msg.Payload); err != nil {
				p.rep.reject(i, msg.From, msg.Kind, err.Error(), !errors.Is(err, wire.ErrDiverged))
				continue
			}
			got := ensureParamsLike(ws.nextDecodeSet(len(base)), base)
			if err := x.DecodeInto(got, msg.From, kind, msg.Payload); err != nil {
				p.rep.reject(i, msg.From, msg.Kind, err.Error(), true)
				continue
			}
			if reason, bad := ws.Adv.Suspect(got, ws.snaps[i]); bad {
				p.rep.rejectByzantine(i, msg.From, msg.Kind, reason)
				continue
			}
			sets = append(sets, got)
		}
		p.used[idx] = nn.AverageParamSets(p.staged[idx], sets...)
	}
}

// Join waits for the round's aggregation to finish, installs each staged
// mean into its agent's live base layers (agents whose aggregate ended up
// empty keep their parameters, mirroring the synchronous round), and
// returns the completed report. Calling Join again returns the same result
// without reinstalling.
func (p *PendingRound) Join() (RoundReport, error) {
	var waitStart time.Time
	if p.tel != nil {
		waitStart = time.Now()
	}
	<-p.done
	if p.joined {
		return p.rep, p.err
	}
	p.joined = true
	if p.tel != nil {
		p.tel.observeJoin(p.begin, time.Since(waitStart), p.rep)
	}
	if p.err == nil {
		for idx, base := range p.bases {
			if p.used[idx] > 0 {
				nn.CopyParams(base, p.staged[idx])
			}
			p.rep.countSets(p.used[idx])
		}
	}
	if p.ws != nil {
		p.ws.inFlight = false
	}
	return p.rep, p.err
}
