package fed

import (
	"fmt"

	"repro/internal/fednet"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// This file implements overlapped federation rounds: the transport half of a
// decentralized round (snapshot, marshal, broadcast, inbox drain) runs
// synchronously on the caller — every fednet interaction stays on the
// simulation's deterministic clock and RNG — while the aggregation half
// (unmarshal, validation, averaging) runs in one background goroutine that
// writes into staged double buffers. Join blocks until aggregation finishes
// and installs the staged means into the live base layers in agent order.
//
// Because the aggregate is computed from immutable snapshots and drained
// messages, the round's result is bit-identical to the synchronous
// DecentralizedRound no matter what compute the caller overlaps with it.
// The one semantic shift is *when* the mean lands in the live model: at
// Join instead of inside the round call. Callers therefore only overlap a
// round with work that does not read or train the very models in the round
// (e.g. forecaster rounds over EMS compute), joining before the next use.

// RoundWorkspace holds the buffers a repeated federation round reuses:
// per-agent marshal buffers, parameter snapshots, staged aggregation
// targets, and a pool of decode sets for received payloads. A workspace
// serves one round at a time — BeginDecentralizedRound panics if the
// previous round it carries has not been joined, because in-flight message
// payloads alias the marshal buffers.
type RoundWorkspace struct {
	marshal [][]byte
	snaps   [][]*tensor.Matrix
	staged  [][]*tensor.Matrix

	decode     [][]*tensor.Matrix
	decodeUsed int

	inFlight bool
}

// ensureAgents sizes the per-agent buffer tables for n agents.
func (ws *RoundWorkspace) ensureAgents(n int) {
	if len(ws.marshal) < n {
		ws.marshal = append(ws.marshal, make([][]byte, n-len(ws.marshal))...)
		ws.snaps = append(ws.snaps, make([][]*tensor.Matrix, n-len(ws.snaps))...)
		ws.staged = append(ws.staged, make([][]*tensor.Matrix, n-len(ws.staged))...)
	}
}

// nextDecodeSet hands out the next pooled decode set, shaped by the decoder
// itself (DecodeInto resizes in place). The pool is positional: reset
// decodeUsed to recycle every set once its consumers are done.
func (ws *RoundWorkspace) nextDecodeSet(n int) []*tensor.Matrix {
	if ws.decodeUsed == len(ws.decode) {
		ws.decode = append(ws.decode, nil)
	}
	set := ws.decode[ws.decodeUsed]
	for len(set) < n {
		set = append(set, &tensor.Matrix{})
	}
	set = set[:n]
	ws.decode[ws.decodeUsed] = set
	ws.decodeUsed++
	return set
}

// ensureParamsLike shapes dst as a reusable deep buffer matching the shapes
// of like, reusing backing storage whenever capacity allows.
func ensureParamsLike(dst, like []*tensor.Matrix) []*tensor.Matrix {
	if cap(dst) < len(like) {
		dst = make([]*tensor.Matrix, len(like))
	} else {
		dst = dst[:len(like)]
	}
	for i, p := range like {
		dst[i] = tensor.EnsureShape(dst[i], p.Rows, p.Cols)
	}
	return dst
}

// PendingRound is a decentralized round whose transport half has completed
// and whose aggregation half may still be running. Join must be called
// exactly once per round before the workspace (or the round's models) are
// used again; it is cheap when aggregation already finished.
type PendingRound struct {
	rep  RoundReport
	err  error
	done chan struct{}
	ws   *RoundWorkspace

	agents []int              // live agent indices, ascending
	bases  [][]*tensor.Matrix // live base-layer params, parallel to agents
	staged [][]*tensor.Matrix // staged aggregates, parallel to agents
	used   []int              // sets averaged per agent, parallel to agents
	joined bool
}

// BeginDecentralizedRound starts one DFL exchange (see DecentralizedRound
// for the protocol and degradation semantics) and returns without waiting
// for aggregation. All network traffic — snapshot broadcast and inbox
// drain — happens before it returns, so fednet's byte/time accounting and
// fault RNG advance exactly as in the synchronous round. Averaging then
// proceeds in the background against staged buffers; the caller may overlap
// any compute that does not touch the round's models, and must call Join on
// the result before reading or training them again.
//
// ws may be nil for a one-shot round (fresh buffers); passing a workspace
// across rounds removes the per-round marshal and snapshot allocations.
func BeginDecentralizedRound(net *fednet.Network, models []*nn.Sequential, kind string, alpha int, ws *RoundWorkspace) *PendingRound {
	p := &PendingRound{done: make(chan struct{})}
	if net.N() != len(models) {
		p.err = fmt.Errorf("fed: %d models for %d network agents", len(models), net.N())
		close(p.done)
		return p
	}
	n := len(models)
	if n == 1 {
		p.rep = RoundReport{Agents: 1, MinSets: 1, MaxSets: 1}
		close(p.done)
		return p
	}
	if ws == nil {
		ws = &RoundWorkspace{}
	} else if ws.inFlight {
		panic("fed: BeginDecentralizedRound: workspace round still pending (Join it first)")
	}
	ws.ensureAgents(n)
	live := make([]bool, n)
	for i := range models {
		if net.AgentDown(i) {
			p.rep.Crashed++
			continue
		}
		live[i] = true
		p.rep.Agents++
	}
	// Snapshot & broadcast. Snapshots isolate in-flight payloads from any
	// continued local mutation; they live in the workspace so steady-state
	// rounds allocate nothing here.
	for i, m := range models {
		if !live[i] {
			continue
		}
		base := baseParams(m, alpha)
		ws.snaps[i] = ensureParamsLike(ws.snaps[i], base)
		nn.CopyParams(ws.snaps[i], base)
		ws.marshal[i] = MarshalParamsInto(ws.marshal[i], ws.snaps[i])
		if err := net.Broadcast(i, kind, ws.marshal[i]); err != nil {
			p.err = err
			close(p.done)
			return p
		}
	}
	// Drain every inbox now: Collect is the last fednet interaction, so the
	// network is back to a quiescent state when Begin returns.
	msgs := make([][]fednet.Message, n)
	for i := range models {
		if !live[i] {
			continue
		}
		msgs[i] = net.Collect(i)
		base := baseParams(models[i], alpha)
		p.agents = append(p.agents, i)
		p.bases = append(p.bases, base)
		ws.staged[i] = ensureParamsLike(ws.staged[i], base)
		p.staged = append(p.staged, ws.staged[i])
	}
	p.used = make([]int, len(p.agents))
	p.ws = ws
	ws.inFlight = true
	// Aggregate in the background: one goroutine, agents in ascending order,
	// so rejects and set counts land in the report in the same order the
	// synchronous round produces.
	go func() {
		for idx, i := range p.agents {
			ws.decodeUsed = 0 // agent idx's sets are consumed before idx+1 decodes
			sets := p.rep.collectFrom(msgs[i], i, p.bases[idx], kind, ws.snaps[i], ws)
			p.used[idx] = nn.AverageParamSets(p.staged[idx], sets...)
		}
		close(p.done)
	}()
	return p
}

// Join waits for the round's aggregation to finish, installs each staged
// mean into its agent's live base layers (agents whose aggregate ended up
// empty keep their parameters, mirroring the synchronous round), and
// returns the completed report. Calling Join again returns the same result
// without reinstalling.
func (p *PendingRound) Join() (RoundReport, error) {
	<-p.done
	if p.joined {
		return p.rep, p.err
	}
	p.joined = true
	if p.err == nil {
		for idx, base := range p.bases {
			if p.used[idx] > 0 {
				nn.CopyParams(base, p.staged[idx])
			}
			p.rep.countSets(p.used[idx])
		}
	}
	if p.ws != nil {
		p.ws.inFlight = false
	}
	return p.rep, p.err
}
