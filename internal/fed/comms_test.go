package fed

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/fednet"
	"repro/internal/nn"
	"repro/internal/wire"
)

// stripVolatile zeroes the fields that legitimately differ between a dense
// and a compressed twin round — byte accounting and reject reason strings
// (the wire codec phrases corruption differently than PFP1) — leaving the
// participation semantics for exact comparison.
func stripVolatile(rep RoundReport) RoundReport {
	rep.BytesSent, rep.BytesReceived, rep.DenseBytes = 0, 0, 0
	if len(rep.Rejects) == 0 {
		rep.Rejects = nil
		return rep
	}
	rejects := make([]Reject, len(rep.Rejects))
	for i, r := range rep.Rejects {
		r.Reason = ""
		rejects[i] = r
	}
	rep.Rejects = rejects
	return rep
}

// requireBitEqual asserts two fleets hold bit-identical parameters
// (Float64bits comparison, so NaN payloads and signed zeros count too).
func requireBitEqual(t *testing.T, want, got []*nn.Sequential, ctx string) {
	t.Helper()
	for i := range want {
		pa, pb := want[i].Params(), got[i].Params()
		for j := range pa {
			for k := range pa[j].Data {
				wb := math.Float64bits(pa[j].Data[k])
				gb := math.Float64bits(pb[j].Data[k])
				if wb != gb {
					t.Fatalf("%s: agent %d param %d elem %d: dense %x, compressed %x", ctx, i, j, k, wb, gb)
				}
			}
		}
	}
}

// TestCompressedRoundMatchesDense is the twin-fleet equivalence suite for
// the tentpole claim: a fleet running the lossless compressed plane
// (delta-coded payloads, streaming O(P) aggregation, overlapped rounds)
// stays bit-identical to a dense synchronous fleet across multiple rounds,
// under clean fabric, drops, corruption, partition, crash, and a diverged
// peer. Reports must agree on every participation stat, and the compressed
// round's DenseBytes baseline must equal what the dense twin actually paid.
func TestCompressedRoundMatchesDense(t *testing.T) {
	for _, tc := range []struct {
		name  string
		cfg   fednet.Config
		alpha int
		level wire.Level
		nan   bool // poison one agent before the final round
	}{
		{name: "clean-delta", cfg: fednet.Config{}, alpha: -1, level: wire.Delta},
		{name: "clean-dense-codec", cfg: fednet.Config{}, alpha: -1, level: wire.Dense},
		{name: "personalized", cfg: fednet.Config{}, alpha: 2, level: wire.Delta},
		{name: "drops", cfg: fednet.Config{DropProb: 0.3, Seed: 5}, alpha: -1, level: wire.Delta},
		{name: "corruption", cfg: fednet.Config{Seed: 6, Faults: fednet.FaultPlan{CorruptProb: 0.4}}, alpha: -1, level: wire.Delta},
		{name: "partition", cfg: fednet.Config{Faults: fednet.FaultPlan{Partitions: []fednet.Partition{{A: 0, B: 2, EndMin: 9999}}}}, alpha: -1, level: wire.Delta},
		{name: "crash", cfg: fednet.Config{Faults: fednet.FaultPlan{Crashes: []fednet.CrashWindow{{Agent: 1, EndMin: 9999}}}}, alpha: -1, level: wire.Delta},
		{name: "diverged-peer", cfg: fednet.Config{}, alpha: -1, level: wire.Delta, nan: true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const n, rounds = 4, 3
			denseModels, wireModels := mlps(n, 40), mlps(n, 40)
			denseNet, wireNet := fednet.New(n, tc.cfg), fednet.New(n, tc.cfg)
			ws := &RoundWorkspace{Comms: wire.NewExchange(wire.Options{Level: tc.level})}
			rng := rand.New(rand.NewSource(99))
			for r := 0; r < rounds; r++ {
				if tc.nan && r == rounds-1 {
					denseModels[2].Params()[0].Data[0] = math.NaN()
					wireModels[2].Params()[0].Data[0] = math.NaN()
				}
				wantRep, err := DecentralizedRound(denseNet, denseModels, "m", tc.alpha)
				if err != nil {
					t.Fatal(err)
				}
				gotRep, err := BeginDecentralizedRound(wireNet, wireModels, "m", tc.alpha, ws).Join()
				if err != nil {
					t.Fatal(err)
				}
				requireBitEqual(t, denseModels, wireModels, tc.name)
				if want, got := stripVolatile(wantRep), stripVolatile(gotRep); !reflect.DeepEqual(want, got) {
					t.Fatalf("round %d report mismatch:\ndense      %+v\ncompressed %+v", r, want, got)
				}
				// The compressed round's dense baseline is exact: identical
				// attempt counts (fault RNG draws are per attempt, blind to
				// payload size) times the PFP1 payload size the dense twin
				// actually shipped.
				if gotRep.DenseBytes != wantRep.BytesSent {
					t.Fatalf("round %d: DenseBytes %d != dense twin BytesSent %d", r, gotRep.DenseBytes, wantRep.BytesSent)
				}
				if wantRep.CompressionRatio() != 1 {
					t.Fatalf("dense round reports ratio %v, want 1", wantRep.CompressionRatio())
				}
				// Drift the fleets identically so later rounds exercise
				// non-trivial deltas against the reference store.
				for i := range denseModels {
					pd, pw := denseModels[i].Params(), wireModels[i].Params()
					for j := range pd {
						for k := range pd[j].Data {
							d := rng.NormFloat64() * 0.05
							pd[j].Data[k] += d
							pw[j].Data[k] += d
						}
					}
				}
			}
		})
	}
}

// TestDeltaSteadyStateBytes pins the converged-fleet economics: once every
// agent re-broadcasts unchanged parameters, a delta payload collapses to
// the closed-form all-zero-run size, and the round's byte bill is exactly
// messages × ZeroDeltaSize.
func TestDeltaSteadyStateBytes(t *testing.T) {
	// n = 2 so the mean is exact arithmetic (x·0.5 + x·0.5 == x): after
	// round 2 the fleet sits at a bit-exact fixed point, and round 3
	// re-broadcasts it unchanged. Larger fleets approach the fixed point
	// but 1/n folding rounds the last bits, keeping deltas tiny, not zero.
	const n = 2
	models := mlps(n, 77)
	net := fednet.New(n, fednet.Config{})
	ws := &RoundWorkspace{Comms: wire.NewExchange(wire.Options{Level: wire.Delta})}
	var rep RoundReport
	for r := 0; r < 3; r++ {
		var err error
		rep, err = BeginDecentralizedRound(net, models, "m", -1, ws).Join()
		if err != nil {
			t.Fatal(err)
		}
	}
	// Round 1 keyframes, round 2 carries the snapshot→mean delta, round 3
	// re-broadcasts the fixed point: every agent already holds the mean.
	zero := int64(wire.ZeroDeltaSize(models[0].Params()))
	if want := int64(n * (n - 1) * int(zero)); rep.BytesSent != want {
		t.Fatalf("steady-state round sent %d bytes, want %d (%d msgs × %d)", rep.BytesSent, want, n*(n-1), zero)
	}
	if ratio := rep.CompressionRatio(); ratio < 10 {
		t.Fatalf("steady-state compression ratio %.1f, want ≥ 10", ratio)
	}
	if rep.BytesReceived != rep.BytesSent {
		t.Fatalf("clean fabric: received %d != sent %d", rep.BytesReceived, rep.BytesSent)
	}
}

// TestTopKRoundCompression exercises the lossy tier end to end through
// federation rounds: bytes must beat the dense baseline by well over the
// 3× acceptance floor, and the models must stay finite and move toward
// consensus (lossy, so no bit-identity claim).
func TestTopKRoundCompression(t *testing.T) {
	const n = 4
	models := mlps(n, 120)
	net := fednet.New(n, fednet.Config{})
	ws := &RoundWorkspace{Comms: wire.NewExchange(wire.Options{Level: wire.TopK, TopKFrac: 0.05})}
	rng := rand.New(rand.NewSource(7))
	var sent, dense int64
	for r := 0; r < 6; r++ {
		rep, err := BeginDecentralizedRound(net, models, "m", -1, ws).Join()
		if err != nil {
			t.Fatal(err)
		}
		if rep.MinSets != n {
			t.Fatalf("round %d degraded: %+v", r, rep)
		}
		if r > 0 { // skip the keyframe round; steady state is what we charge for
			sent += rep.BytesSent
			dense += rep.DenseBytes
		}
		for i := range models {
			for _, p := range models[i].Params() {
				if p.HasNaN() {
					t.Fatalf("round %d: top-k aggregation produced NaN/Inf", r)
				}
			}
			for _, p := range models[i].Params() {
				for k := range p.Data {
					p.Data[k] += rng.NormFloat64() * 0.01
				}
			}
		}
	}
	if ratio := float64(dense) / float64(sent); ratio < 3 {
		t.Fatalf("top-k steady-state ratio %.2f, want ≥ 3", ratio)
	}
}

// TestKahanFoldRoundClose checks the opt-in compensated fold stays within
// numerical-noise distance of the dense aggregate (it deliberately trades
// bit-identity for better summation).
func TestKahanFoldRoundClose(t *testing.T) {
	const n = 4
	denseModels, wireModels := mlps(n, 200), mlps(n, 200)
	denseNet, wireNet := fednet.New(n, fednet.Config{}), fednet.New(n, fednet.Config{})
	ws := &RoundWorkspace{Comms: wire.NewExchange(wire.Options{Level: wire.Delta, KahanFold: true})}
	if _, err := DecentralizedRound(denseNet, denseModels, "m", -1); err != nil {
		t.Fatal(err)
	}
	if _, err := BeginDecentralizedRound(wireNet, wireModels, "m", -1, ws).Join(); err != nil {
		t.Fatal(err)
	}
	for i := range denseModels {
		pa, pb := denseModels[i].Params(), wireModels[i].Params()
		for j := range pa {
			for k := range pa[j].Data {
				if diff := math.Abs(pa[j].Data[k] - pb[j].Data[k]); diff > 1e-12 {
					t.Fatalf("agent %d param %d elem %d: kahan fold off by %g", i, j, k, diff)
				}
			}
		}
	}
}

// TestCentralizedRoundAccounting pins the star-topology byte fields: the
// round's bill is a fednet.Stats delta, the hub's and spokes' deliveries
// are counted, and the dense format reports ratio 1.
func TestCentralizedRoundAccounting(t *testing.T) {
	const n = 4
	models := mlps(n, 300)
	net := fednet.New(n, fednet.Config{Topology: fednet.Star})
	rep, err := CentralizedRound(net, models, "m", -1, false)
	if err != nil {
		t.Fatal(err)
	}
	blob := int64(len(MarshalParams(models[0].Params())))
	// 3 uploads + 3 downloads (hub broadcast), all dense PFP1.
	if want := 6 * blob; rep.BytesSent != want {
		t.Fatalf("BytesSent %d, want %d", rep.BytesSent, want)
	}
	if rep.BytesReceived != rep.BytesSent {
		t.Fatalf("clean star: received %d != sent %d", rep.BytesReceived, rep.BytesSent)
	}
	if rep.DenseBytes != rep.BytesSent || rep.CompressionRatio() != 1 {
		t.Fatalf("centralized round: DenseBytes %d ratio %v, want bill/1", rep.DenseBytes, rep.CompressionRatio())
	}
}
