package fed

// Scalable federation rounds over the fednet topology layer (DESIGN.md
// §12): sampled gossip reuses the overlapped decentralized round machinery
// over a per-epoch random-k graph, and hierarchical cluster aggregation
// adds a two-level reduce — members → aggregator → aggregator mesh →
// members — that moves (n−C) + C·(C−1) + C′ messages per round instead of
// n·(n−1). Both degrade gracefully under the fault plan exactly like the
// flat rounds, and both speak either dense PFP1 or the PFW2 compressed
// plane through a RoundWorkspace's Exchange.

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/fednet"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// BeginSampledGossipRound starts one random-k gossip exchange: the network
// advances to a fresh topology epoch (each agent draws k new peers,
// deterministically from the fabric seed), then the standard overlapped
// decentralized round runs over that graph — each agent broadcasts to its
// k sampled peers and averages its own snapshot with whatever arrives.
// One round moves n·k messages; resampling every round makes the union of
// successive graphs well connected, so the fleet still contracts to
// consensus geometrically (the convergence suite pins the rate).
//
// Everything else — FedPer alpha split, graceful degradation, compressed
// comms via ws.Comms, byte/message accounting — is inherited from
// BeginDecentralizedRound. The caller must Join the result before touching
// the models.
func BeginSampledGossipRound(net *fednet.Network, models []*nn.Sequential, kind string, alpha int, ws *RoundWorkspace) *PendingRound {
	if net.Config().Topology != fednet.Sampled {
		p := &PendingRound{done: make(chan struct{})}
		p.err = fmt.Errorf("fed: SampledGossipRound requires a sampled network, have %v", net.Config().Topology)
		close(p.done)
		return p
	}
	net.AdvanceRoundEpoch()
	return BeginDecentralizedRound(net, models, kind, alpha, ws)
}

// SampledGossipRound is the synchronous form of BeginSampledGossipRound:
// it starts the round and immediately joins it.
func SampledGossipRound(net *fednet.Network, models []*nn.Sequential, kind string, alpha int) (RoundReport, error) {
	return BeginSampledGossipRound(net, models, kind, alpha, nil).Join()
}

// ClusterRound performs one hierarchical aggregation exchange over a
// Cluster network (Briggs-style clustered FL):
//
//  1. upload — every live member ships its base-parameter snapshot to its
//     cluster's aggregator (kind);
//  2. cluster reduce — each aggregator averages its own snapshot with the
//     valid uploads into a cluster mean;
//  3. summary exchange — aggregators with a non-empty cluster mean unicast
//     it to every other aggregator (kind+"/sum");
//  4. global reduce — each aggregator averages its cluster mean with the
//     valid summaries (a mean of cluster means: exactly the global mean
//     when clusters are equal-sized, and a cluster-uniform estimator
//     otherwise) and installs the result;
//  5. download — each aggregator multicasts the global estimate once onto
//     its cluster's shared segment (kind+"/dl"); live members validate and
//     install it.
//
// Degradation mirrors the flat rounds: crashed members sit the round out;
// a crashed aggregator idles its whole cluster (members keep their
// parameters and count zero sets); corrupt or diverged payloads are
// quarantined into the report at every hop; an aggregator left with
// nothing to average keeps its parameters and sends no download. The
// error is reserved for structural misuse (wrong topology, model-count
// mismatch, codec failure).
//
// With ws.Comms set, every hop runs the PFW2 codec — per-(sender,kind)
// delta references, so uploads, summaries, and downloads each form their
// own reference chain — and the lossless Delta level is bit-identical to
// the dense path. In the report, MinSets/MaxSets bound each agent's
// effective participation: the number of original member sets its
// installed estimate represents (the fleet size on a clean fabric, like
// the centralized hub count; 0 for an agent the round never reached).
func ClusterRound(net *fednet.Network, models []*nn.Sequential, kind string, alpha int, ws *RoundWorkspace) (rep RoundReport, err error) {
	if net.Config().Topology != fednet.Cluster {
		return rep, fmt.Errorf("fed: ClusterRound requires a cluster network, have %v", net.Config().Topology)
	}
	if net.N() != len(models) {
		return rep, fmt.Errorf("fed: %d models for %d network agents", len(models), net.N())
	}
	n := len(models)
	if n == 1 {
		return RoundReport{Agents: 1, MinSets: 1, MaxSets: 1}, nil
	}
	if ws == nil {
		ws = &RoundWorkspace{}
	} else if ws.inFlight {
		panic("fed: ClusterRound: workspace round still pending (Join it first)")
	}
	var begin time.Time
	if ws.Tel != nil {
		begin = time.Now()
	}
	ws.ensureAgents(n)
	advRound := -1
	if ws.Adv != nil {
		advRound = ws.Adv.BeginRound(kind)
	}
	clusters := net.Clusters()
	sumKind, dlKind := kind+"/sum", kind+"/dl"

	live := make([]bool, n)
	for i := range models {
		if net.AgentDown(i) {
			rep.Crashed++
			continue
		}
		live[i] = true
		rep.Agents++
	}
	st0 := net.Stats()
	defer func() {
		st := net.Stats()
		rep.BytesSent = st.BytesSent - st0.BytesSent
		rep.Messages = st.MessagesSent - st0.MessagesSent
		if ws.Comms != nil && rep.Messages > 0 {
			rep.DenseBytes = int64(rep.Messages) * int64(wire.DenseSize(baseParams(models[0], alpha)))
		} else {
			rep.DenseBytes = rep.BytesSent
		}
		if ws.Tel != nil {
			ws.Tel.observeJoin(begin, 0, rep)
		}
	}()

	// Phase 1: snapshot everyone, members upload to their aggregator. A
	// member with diverged parameters withholds its upload (mirroring the
	// centralized round); a member whose aggregator is crashed has nowhere
	// to send and idles this round.
	for _, members := range clusters {
		agg := members[0]
		for _, i := range members {
			if !live[i] {
				continue
			}
			base := baseParams(models[i], alpha)
			ws.snaps[i] = ensureParamsLike(ws.snaps[i], base)
			nn.CopyParams(ws.snaps[i], base)
			if i == agg {
				continue // the aggregator's snapshot joins the reduce locally
			}
			if !live[agg] {
				continue
			}
			if !paramsClean(ws.snaps[i]) {
				rep.reject(agg, i, kind, "NaN/Inf parameters (upload withheld)", false)
				continue
			}
			// A Byzantine member poisons only its upload; compromised
			// aggregators (phases 2–5) are out of scope — the plan's
			// Validate does not forbid listing one, but its summary and
			// download hops ship honest aggregates.
			payload := ws.snaps[i]
			if ws.Adv != nil {
				payload = ws.Adv.PayloadFor(i, kind, advRound, ws.snaps[i])
			}
			var err error
			if ws.Comms != nil {
				ws.marshal[i], err = ws.Comms.EncodeInto(ws.marshal[i][:0], i, kind, payload)
				if err != nil {
					return rep, fmt.Errorf("fed: encoding agent %d upload: %w", i, err)
				}
			} else {
				ws.marshal[i] = MarshalParamsInto(ws.marshal[i], payload)
			}
			if _, err := net.SendReliable(i, agg, kind, ws.marshal[i]); err != nil {
				return rep, err
			}
		}
	}

	// Phase 2: each live aggregator reduces its cluster — own snapshot
	// plus the uploads that arrived and validated — into ws.staged[agg].
	// meanSets[c] is the reduce's set count; 0 marks a starved cluster
	// (no summary to offer, but it still listens for others').
	meanSets := make([]int, len(clusters))
	for c, members := range clusters {
		agg := members[0]
		if !live[agg] {
			continue
		}
		base := baseParams(models[agg], alpha)
		ws.staged[agg] = ensureParamsLike(ws.staged[agg], base)
		inbox := net.Collect(agg)
		for _, msg := range inbox {
			if msg.Kind == kind {
				rep.BytesReceived += int64(len(msg.Payload))
			}
		}
		meanSets[c], _ = foldRound(&rep, ws, agg, kind, base, ws.snaps[agg], inbox, ws.staged[agg])
	}

	// Phase 3: summary exchange over the aggregator mesh.
	for c, members := range clusters {
		agg := members[0]
		if !live[agg] || meanSets[c] == 0 {
			continue
		}
		var err error
		if ws.Comms != nil {
			ws.marshal[agg], err = ws.Comms.EncodeInto(ws.marshal[agg][:0], agg, sumKind, ws.staged[agg])
			if err != nil {
				return rep, fmt.Errorf("fed: encoding cluster %d summary: %w", c, err)
			}
		} else {
			ws.marshal[agg] = MarshalParamsInto(ws.marshal[agg], ws.staged[agg])
		}
		for c2, peers := range clusters {
			if c2 == c || !live[peers[0]] {
				continue
			}
			if _, err := net.SendReliable(agg, peers[0], sumKind, ws.marshal[agg]); err != nil {
				return rep, err
			}
		}
	}

	// Phase 4: global reduce. Each live aggregator averages its own cluster
	// mean with the summaries that arrived; the result (folded into the
	// freed snapshot buffer) is its global estimate. Zero inputs — starved
	// cluster and no summaries — leaves the aggregator untouched.
	//
	// effective[c] is the participation the estimate represents: the sum of
	// the member-set counts behind every cluster mean folded. On a clean
	// fabric it equals the live fleet size for every cluster, mirroring the
	// centralized round's hub count, so MinSets == Agents and the round
	// does not read as degraded.
	globalSets := make([]int, len(clusters))
	effective := make([]int, len(clusters))
	for c, members := range clusters {
		agg := members[0]
		if !live[agg] {
			continue
		}
		base := baseParams(models[agg], alpha)
		inbox := net.Collect(agg)
		for _, msg := range inbox {
			if msg.Kind == sumKind {
				rep.BytesReceived += int64(len(msg.Payload))
			}
		}
		var own []*tensor.Matrix
		if meanSets[c] > 0 {
			own = ws.staged[agg]
		}
		var froms []int
		globalSets[c], froms = foldRound(&rep, ws, agg, sumKind, base, own, inbox, ws.snaps[agg])
		if globalSets[c] > 0 {
			nn.CopyParams(base, ws.snaps[agg])
		}
		effective[c] = meanSets[c]
		for _, from := range froms {
			effective[c] += meanSets[net.ClusterOf(from)]
		}
		rep.countSets(effective[c])
	}

	// Phase 5: download. One multicast per multi-member cluster puts the
	// global estimate on the shared segment; live members validate and
	// install. Members of a crashed or starved aggregator keep their
	// parameters and count zero sets.
	for c, members := range clusters {
		agg := members[0]
		var tos []int
		for _, i := range members {
			if i != agg && live[i] {
				tos = append(tos, i)
			}
		}
		if len(tos) == 0 {
			continue
		}
		if !live[agg] || globalSets[c] == 0 {
			for range tos {
				rep.countSets(0)
			}
			continue
		}
		var err error
		if ws.Comms != nil {
			ws.marshal[agg], err = ws.Comms.EncodeInto(ws.marshal[agg][:0], agg, dlKind, baseParams(models[agg], alpha))
			if err != nil {
				return rep, fmt.Errorf("fed: encoding cluster %d download: %w", c, err)
			}
		} else {
			ws.marshal[agg] = MarshalParamsInto(ws.marshal[agg], baseParams(models[agg], alpha))
		}
		if _, err := net.Multicast(agg, tos, dlKind, ws.marshal[agg]); err != nil {
			return rep, err
		}
		for _, i := range tos {
			base := baseParams(models[i], alpha)
			installed := 0
			ws.decodeUsed = 0
			for _, msg := range net.Collect(i) {
				if msg.Kind != dlKind {
					continue
				}
				rep.BytesReceived += int64(len(msg.Payload))
				// wire.DecodeInto requires dst pre-shaped to the template
				// (the PFP1 decoder resizes in place; the codec does not).
				got := ensureParamsLike(ws.nextDecodeSet(len(base)), base)
				var err error
				if ws.Comms != nil {
					if err = ws.Comms.Validate(msg.From, dlKind, base, msg.Payload); err == nil {
						err = ws.Comms.DecodeInto(got, msg.From, dlKind, msg.Payload)
					}
				} else {
					err = UnmarshalParamsInto(got, base, msg.Payload)
				}
				if err != nil {
					// Download corrupted in transit: the member keeps its
					// local model until the next round.
					rep.reject(i, msg.From, msg.Kind, err.Error(), !errors.Is(err, wire.ErrDiverged))
					continue
				}
				nn.CopyParams(base, got)
				installed = effective[c]
			}
			rep.countSets(installed)
		}
	}
	return rep, nil
}

// foldRound averages one aggregation hop into dst: the optional own set
// (nil to skip, e.g. a starved participant) plus every inbox payload of
// the right kind that passes validation and the divergence filter, each
// weighted 1/total. Exclusions land in the report against the aggregating
// agent. It returns the number of sets folded (zero leaves dst untouched)
// and the senders whose payloads were accepted, in arrival order — the
// cluster round's participation accounting needs to know *whose* summary
// made it in, not just how many.
//
// Both planes apply the exact element order of nn.AverageParamSets — own
// set first, then payloads in arrival order — so the compressed lossless
// path stays bit-identical to dense.
func foldRound(rep *RoundReport, ws *RoundWorkspace, agent int, kind string, template []*tensor.Matrix, own []*tensor.Matrix, inbox []fednet.Message, dst []*tensor.Matrix) (int, []int) {
	x := ws.Comms
	if own != nil && !paramsClean(own) {
		rep.reject(agent, agent, kind, "NaN/Inf parameters", false)
		own = nil
	}
	var froms []int
	var sets [][]*tensor.Matrix // dense path only
	var accepted []fednet.Message
	// Adversary screening references the hop's template (the aggregating
	// agent's live base / cluster mean) — always present, unlike own.
	screen := ws.Adv != nil && ws.Adv.DefenseEnabled()
	if x == nil || screen {
		ws.decodeUsed = 0
	}
	if x == nil && own != nil {
		sets = append(sets, own)
	}
	for _, msg := range inbox {
		if msg.Kind != kind {
			continue
		}
		if x != nil {
			if err := x.Validate(msg.From, kind, template, msg.Payload); err != nil {
				rep.reject(agent, msg.From, msg.Kind, err.Error(), !errors.Is(err, wire.ErrDiverged))
				continue
			}
			if screen && msg.From != agent {
				got := ensureParamsLike(ws.nextDecodeSet(len(template)), template)
				if err := x.DecodeInto(got, msg.From, kind, msg.Payload); err != nil {
					rep.reject(agent, msg.From, msg.Kind, err.Error(), true)
					continue
				}
				if reason, bad := ws.Adv.Suspect(got, template); bad {
					rep.rejectByzantine(agent, msg.From, msg.Kind, reason)
					continue
				}
			}
			accepted = append(accepted, msg)
		} else {
			got := ws.nextDecodeSet(len(template))
			if err := UnmarshalParamsInto(got, template, msg.Payload); err != nil {
				rep.reject(agent, msg.From, msg.Kind, err.Error(), true)
				continue
			}
			if !paramsClean(got) {
				rep.reject(agent, msg.From, msg.Kind, "NaN/Inf parameters", false)
				continue
			}
			if ws.Adv != nil && msg.From != agent {
				if reason, bad := ws.Adv.Suspect(got, template); bad {
					rep.rejectByzantine(agent, msg.From, msg.Kind, reason)
					continue
				}
			}
			sets = append(sets, got)
		}
		froms = append(froms, msg.From)
	}
	if x == nil {
		return nn.AverageParamSets(dst, sets...), froms
	}
	total := len(accepted)
	if own != nil {
		total++
	}
	if total == 0 {
		return 0, nil
	}
	inv := 1.0 / float64(total)
	for _, m := range dst {
		m.Zero()
	}
	var comp [][]float64
	if x.Options().KahanFold {
		comp = ws.ensureComp(template)
	}
	if own != nil {
		wire.FoldLocal(dst, comp, own, inv)
	}
	for _, msg := range accepted {
		if err := x.FoldInto(dst, comp, msg.From, kind, msg.Payload, inv); err != nil {
			// Validate guaranteed this fold would succeed; failing here is a
			// codec bug — surface it as a reject so the report says what
			// happened, and leave the remaining folds consistent.
			rep.reject(agent, msg.From, msg.Kind, err.Error(), true)
		}
	}
	return total, froms
}
