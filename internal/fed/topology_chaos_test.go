package fed

// Chaos-interaction suite for the topology layer (extends the
// resilience_test pattern): sampled and cluster rounds under FaultPlan
// partitions, crashes, corruption, and stragglers must degrade through
// the existing graceful paths — quarantined payloads, kept parameters,
// sat-out agents — with RoundReport outcomes that are exactly predictable
// from the deterministic topology and fault script.

import (
	"math"
	"testing"

	"repro/internal/fednet"
	"repro/internal/nn"
)

// cloneFleetParams deep-copies every model's full parameter set for
// before/after comparisons.
func cloneFleetParams(models []*nn.Sequential) [][]float64 {
	out := make([][]float64, len(models))
	for i, m := range models {
		for _, p := range m.Params() {
			out[i] = append(out[i], p.Data...)
		}
	}
	return out
}

// requireUnchanged asserts the listed agents hold bit-identical parameters
// to the snapshot taken before the round.
func requireUnchanged(t *testing.T, models []*nn.Sequential, before [][]float64, agents []int, ctx string) {
	t.Helper()
	for _, i := range agents {
		k := 0
		for j, p := range models[i].Params() {
			for e := range p.Data {
				if math.Float64bits(p.Data[e]) != math.Float64bits(before[i][k]) {
					t.Fatalf("%s: agent %d param %d elem %d changed", ctx, i, j, e)
				}
				k++
			}
		}
	}
}

// TestSampledRoundPartitionDeterministic predicts a partitioned sampled
// round exactly: the expected per-agent aggregate sizes and the message
// count follow from the deterministically sampled peer graph minus the
// severed link, and a twin fleet under the same script stays
// bit-identical.
func TestSampledRoundPartitionDeterministic(t *testing.T) {
	const n, k = 8, 3
	cfg := fednet.Config{
		Topology: fednet.Sampled, SampleK: k, Seed: 3,
		Faults: fednet.FaultPlan{Partitions: []fednet.Partition{{A: 0, B: 2, EndMin: 9999}}},
	}
	// Scout the epoch-1 graph (the round advances the epoch before
	// broadcasting) on a scratch network with the same seed.
	scout := fednet.New(n, fednet.Config{Topology: fednet.Sampled, SampleK: k, Seed: 3})
	scout.AdvanceRoundEpoch()
	indegree := make([]int, n)
	blockedSends := 0
	for s := 0; s < n; s++ {
		for _, to := range scout.SampledPeers(s) {
			cut := (s == 0 && to == 2) || (s == 2 && to == 0)
			if cut {
				blockedSends++
				continue
			}
			indegree[to]++
		}
	}
	wantMin, wantMax := n, 0
	for i := 0; i < n; i++ {
		sets := 1 + indegree[i] // own snapshot + what the graph delivers
		if sets < wantMin {
			wantMin = sets
		}
		if sets > wantMax {
			wantMax = sets
		}
	}
	if blockedSends == 0 {
		t.Fatal("seed 3 epoch 1 never crosses the 0–2 link; pick a different seed")
	}

	modelsA, modelsB := mlps(n, 80), mlps(n, 80)
	netA, netB := fednet.New(n, cfg), fednet.New(n, cfg)
	repA, err := SampledGossipRound(netA, modelsA, "m", -1)
	if err != nil {
		t.Fatal(err)
	}
	repB, err := SampledGossipRound(netB, modelsB, "m", -1)
	if err != nil {
		t.Fatal(err)
	}
	requireBitEqual(t, modelsA, modelsB, "partitioned sampled twins")
	if repA.MinSets != repB.MinSets || repA.Messages != repB.Messages {
		t.Fatalf("twin reports diverged: %+v vs %+v", repA, repB)
	}
	if repA.MinSets != wantMin || repA.MaxSets != wantMax {
		t.Fatalf("sets [%d,%d], predicted [%d,%d]", repA.MinSets, repA.MaxSets, wantMin, wantMax)
	}
	// Blocked sends fail fast: they are counted in Stats.MessagesBlocked,
	// not in the round's wire messages.
	if want := n*k - blockedSends; repA.Messages != want {
		t.Fatalf("messages %d, want n·k − blocked = %d", repA.Messages, want)
	}
	if st := netA.Stats(); st.MessagesBlocked != blockedSends {
		t.Fatalf("MessagesBlocked %d, want %d", st.MessagesBlocked, blockedSends)
	}
	if repA.Crashed != 0 || repA.Agents != n || len(repA.Rejects) != 0 {
		t.Fatalf("partition produced unexpected report %+v", repA)
	}
}

// TestClusterRoundCrashedAggregator pins the blast radius of losing a
// cluster head: its members sit the round out bit-untouched (counting
// zero sets), while the surviving cluster still completes a local
// aggregation, and the message count shrinks to that cluster's traffic.
func TestClusterRoundCrashedAggregator(t *testing.T) {
	const n = 8
	models := mlps(n, 81)
	net := fednet.New(n, fednet.Config{
		Topology: fednet.Cluster, ClusterSize: 4,
		Faults: fednet.FaultPlan{Crashes: []fednet.CrashWindow{{Agent: 0, EndMin: 9999}}},
	})
	before := cloneFleetParams(models)
	rep, err := ClusterRound(net, models, "m", -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Cluster {0,1,2,3} is headless: members 1–3 keep their parameters.
	requireUnchanged(t, models, before, []int{1, 2, 3}, "headless cluster")
	if rep.Crashed != 1 || rep.Agents != n-1 {
		t.Fatalf("participation %d live / %d crashed, want %d / 1", rep.Agents, rep.Crashed, n-1)
	}
	// Headless members count zero; cluster {4..7} aggregates its 4 members
	// (no other summaries exist).
	if rep.MinSets != 0 || rep.MaxSets != 4 {
		t.Fatalf("sets [%d,%d], want [0,4]", rep.MinSets, rep.MaxSets)
	}
	// Traffic: 3 uploads in the live cluster + 0 summaries (no live peer
	// aggregator) + 1 multicast download.
	if rep.Messages != 4 {
		t.Fatalf("messages %d, want 4", rep.Messages)
	}
	if !rep.Degraded() {
		t.Fatal("headless-cluster round must read as degraded")
	}
	// The live cluster agreed on its local mean.
	for i := 5; i < 8; i++ {
		pa, pb := models[4].Params(), models[i].Params()
		for j := range pa {
			for e := range pa[j].Data {
				if math.Float64bits(pa[j].Data[e]) != math.Float64bits(pb[j].Data[e]) {
					t.Fatalf("live cluster disagrees: agents 4 and %d", i)
				}
			}
		}
	}
}

// TestClusterRoundCorruptionQuarantine runs a cluster round through a
// fabric corrupting every payload: the CRC/codec gates must quarantine
// every hop — uploads, summaries, downloads — leaving the entire fleet
// bit-untouched, with the rejects itemized per receiving agent.
func TestClusterRoundCorruptionQuarantine(t *testing.T) {
	const n = 8
	models := mlps(n, 82)
	net := fednet.New(n, fednet.Config{
		Topology: fednet.Cluster, ClusterSize: 4, Seed: 9,
		Faults: fednet.FaultPlan{CorruptProb: 1},
	})
	before := cloneFleetParams(models)
	rep, err := ClusterRound(net, models, "m", -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	// Aggregators fold only their own clean snapshot (a 1-set mean is the
	// identity), members reject the corrupted download: nobody moves.
	requireUnchanged(t, models, before, all, "all-corrupt cluster round")
	// Every hop rejected: 6 uploads + 2 summaries + 2 multicast downloads
	// heard by 3 members each.
	if want := 6 + 2 + 6; rep.CorruptRejected != want || len(rep.Rejects) != want {
		t.Fatalf("corrupt-rejected %d (%d records), want %d", rep.CorruptRejected, len(rep.Rejects), want)
	}
	if rep.MinSets != 0 || rep.MaxSets != 1 {
		t.Fatalf("sets [%d,%d], want [0,1]", rep.MinSets, rep.MaxSets)
	}
	if !rep.Degraded() {
		t.Fatal("fully corrupted round must read as degraded")
	}
	if rep.NaNRejected != 0 {
		t.Fatalf("NaN rejects %d on a corruption-only fabric", rep.NaNRejected)
	}
}

// TestClusterRoundMemberPartition severs one member↔aggregator link: the
// member's upload is blocked and it misses the download, keeping its
// parameters, while both clusters otherwise aggregate; the global
// estimates simply under-represent the cut member.
func TestClusterRoundMemberPartition(t *testing.T) {
	const n = 8
	models := mlps(n, 83)
	net := fednet.New(n, fednet.Config{
		Topology: fednet.Cluster, ClusterSize: 4,
		Faults: fednet.FaultPlan{Partitions: []fednet.Partition{{A: 0, B: 1, EndMin: 9999}}},
	})
	before := cloneFleetParams(models)
	rep, err := ClusterRound(net, models, "m", -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireUnchanged(t, models, before, []int{1}, "partitioned member")
	// Cluster 0 reduces 3 sets (agg + members 2,3), cluster 1 all 4; both
	// fold both summaries, so every reached agent represents 7 originals.
	if rep.MinSets != 0 || rep.MaxSets != 7 {
		t.Fatalf("sets [%d,%d], want [0,7]", rep.MinSets, rep.MaxSets)
	}
	// Traffic: 5 uploads (one blocked) + 2 summaries + 2 downloads.
	if rep.Messages != 9 {
		t.Fatalf("messages %d, want 9", rep.Messages)
	}
	if rep.Crashed != 0 || len(rep.Rejects) != 0 {
		t.Fatalf("partition produced rejects or crash counts: %+v", rep)
	}
	if !rep.Degraded() {
		t.Fatal("member cut from its aggregator must read as degraded")
	}
}

// TestClusterRoundDivergedMember poisons one member's parameters: the
// upload is withheld at the source (divergence filter), the cluster mean
// excludes it, and the download still reaches and repairs the diverged
// member — the aggregation hierarchy doubles as NaN containment.
func TestClusterRoundDivergedMember(t *testing.T) {
	const n = 8
	models := mlps(n, 84)
	models[1].Params()[0].Data[0] = nan()
	net := fednet.New(n, fednet.Config{Topology: fednet.Cluster, ClusterSize: 4})
	rep, err := ClusterRound(net, models, "m", -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NaNRejected != 1 || rep.CorruptRejected != 0 {
		t.Fatalf("rejects %d NaN / %d corrupt, want 1 / 0", rep.NaNRejected, rep.CorruptRejected)
	}
	// The poisoned member installed the clean global estimate: 7 originals
	// represented everywhere, and no NaN survives anywhere in the fleet.
	if rep.MinSets != 7 || rep.MaxSets != 7 {
		t.Fatalf("sets [%d,%d], want [7,7]", rep.MinSets, rep.MaxSets)
	}
	for i, m := range models {
		for _, p := range m.Params() {
			if p.HasNaN() {
				t.Fatalf("agent %d still carries NaN after the round", i)
			}
		}
	}
}

// TestSampledRoundStragglerDeterministic checks stragglers cost only
// simulated time: a fleet with an 8× straggler produces bit-identical
// parameters and an identical report to a fault-free twin, while the
// fabric clock shows the inflation.
func TestSampledRoundStragglerDeterministic(t *testing.T) {
	const n, k = 8, 3
	base := fednet.Config{Topology: fednet.Sampled, SampleK: k, Seed: 4}
	slow := base
	slow.Faults = fednet.FaultPlan{Stragglers: []fednet.Straggler{{Agent: 7, Factor: 8}}}
	fastModels, slowModels := mlps(n, 85), mlps(n, 85)
	fastNet, slowNet := fednet.New(n, base), fednet.New(n, slow)
	fastRep, err := SampledGossipRound(fastNet, fastModels, "m", -1)
	if err != nil {
		t.Fatal(err)
	}
	slowRep, err := SampledGossipRound(slowNet, slowModels, "m", -1)
	if err != nil {
		t.Fatal(err)
	}
	requireBitEqual(t, fastModels, slowModels, "straggler twin")
	if fastRep.Messages != slowRep.Messages || fastRep.MinSets != slowRep.MinSets || fastRep.MaxSets != slowRep.MaxSets {
		t.Fatalf("straggler changed participation: %+v vs %+v", fastRep, slowRep)
	}
	if fastNet.Stats().SimulatedTime >= slowNet.Stats().SimulatedTime {
		t.Fatalf("straggler fabric not slower: %v vs %v",
			fastNet.Stats().SimulatedTime, slowNet.Stats().SimulatedTime)
	}
}
