package fed

import (
	"fmt"
	"math/rand"

	"repro/internal/fednet"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Secure aggregation (pairwise additive masking, after Bonawitz et al.).
//
// The paper's privacy argument is that only model parameters leave a home —
// but parameters themselves leak training data through inversion attacks
// (its own citation, Geiping et al.). Pairwise masking closes that gap for
// the *aggregate*: every pair of agents (i, j) derives a shared mask m_ij;
// agent i adds +m_ij and agent j adds −m_ij to their broadcast payloads, so
// every individual payload is statistically noise while the sum — and hence
// the FedAvg mean — is exact.
//
// This implementation simulates the protocol arithmetic: masks come from a
// deterministic PRG seeded by (round nonce, i, j) rather than a
// Diffie–Hellman key agreement, and there is no dropout-recovery secret
// sharing — a lost message fails the round loudly instead of silently
// corrupting the average (masks would no longer cancel).

// maskStd is the mask amplitude. It only needs to dominate parameter
// magnitudes (O(1) after normalized training) to hide them.
const maskStd = 100.0

// pairMask fills out with the deterministic mask shared by agents i and j
// for the given round nonce. Both endpoints generate identical values.
func pairMask(nonce int64, i, j int, out []float64) {
	lo, hi := i, j
	if lo > hi {
		lo, hi = hi, lo
	}
	seed := nonce ^ int64((uint64(lo)+1)*0x9e3779b97f4a7c15) ^ int64((uint64(hi)+1)*0xbf58476d1ce4e5b9)
	rng := rand.New(rand.NewSource(seed))
	for k := range out {
		out[k] = rng.NormFloat64() * maskStd
	}
}

// maskSign returns +1 for the lower-indexed endpoint of a pair and −1 for
// the higher one, so paired masks cancel in the sum.
func maskSign(self, peer int) float64 {
	if self < peer {
		return 1
	}
	return -1
}

// SecureDecentralizedRound performs one DFL FedAvg exchange in which every
// broadcast parameter set is pairwise-masked: no agent (or eavesdropper)
// sees another agent's raw parameters, yet every agent recovers the exact
// unmasked mean. Requires full participation — it returns an error if any
// expected payload is missing (e.g. the network dropped it), because a
// partial sum no longer cancels the masks.
//
// alpha selects the shared trainable-layer prefix exactly as in
// DecentralizedRound. nonce must be distinct per round (reusing it reuses
// masks, which weakens nothing here but would in a real deployment).
func SecureDecentralizedRound(net *fednet.Network, models []*nn.Sequential, kind string, alpha int, nonce int64) error {
	if net.N() != len(models) {
		return fmt.Errorf("fed: %d models for %d network agents", len(models), net.N())
	}
	n := len(models)
	if n == 1 {
		return nil
	}

	// Build and broadcast masked payloads.
	masked := make([][]*tensor.Matrix, n)
	scratch := make([]float64, 0)
	for i, m := range models {
		base := baseParams(m, alpha)
		snap := nn.CloneParams(base)
		flat := nn.FlattenParams(snap)
		if cap(scratch) < len(flat) {
			scratch = make([]float64, len(flat))
		}
		mask := scratch[:len(flat)]
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			pairMask(nonce, i, j, mask)
			s := maskSign(i, j)
			for k := range flat {
				flat[k] += s * mask[k]
			}
		}
		nn.UnflattenParams(snap, flat)
		masked[i] = snap
		if err := net.Broadcast(i, kind, MarshalParams(snap)); err != nil {
			return err
		}
	}

	// Every agent sums its own masked payload with all received ones; the
	// masks cancel and the mean is exact.
	for i, m := range models {
		base := baseParams(m, alpha)
		sum := nn.CloneParams(masked[i])
		received := 0
		for _, msg := range net.Collect(i) {
			if msg.Kind != kind {
				continue
			}
			got, err := UnmarshalParamsLike(base, msg.Payload)
			if err != nil {
				return fmt.Errorf("fed: agent %d from %d: %w", i, msg.From, err)
			}
			for pi := range sum {
				tensor.AddInto(sum[pi], sum[pi], got[pi])
			}
			received++
		}
		if received != n-1 {
			return fmt.Errorf("fed: secure round needs full participation: agent %d received %d/%d payloads",
				i, received, n-1)
		}
		inv := 1.0 / float64(n)
		for pi, p := range base {
			for k := range p.Data {
				p.Data[k] = sum[pi].Data[k] * inv
			}
		}
	}
	return nil
}
