package fed

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fednet"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func mlps(n int, seed int64) []*nn.Sequential {
	out := make([]*nn.Sequential, n)
	for i := range out {
		rng := rand.New(rand.NewSource(seed + int64(i)))
		out[i] = nn.NewMLP(rng, 4, 6, 6, 2)
	}
	return out
}

func TestMarshalUnmarshalParams(t *testing.T) {
	m := mlps(1, 1)[0]
	blob := MarshalParams(m.Params())
	got, err := UnmarshalParamsLike(m.Params(), blob)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range m.Params() {
		if !p.Equal(got[i]) {
			t.Fatalf("param %d mismatch", i)
		}
	}
}

func TestUnmarshalParamsErrors(t *testing.T) {
	m := mlps(1, 1)[0]
	blob := MarshalParams(m.Params())
	if _, err := UnmarshalParamsLike(m.Params(), blob[:len(blob)-4]); err == nil {
		t.Fatal("truncated blob accepted")
	}
	if _, err := UnmarshalParamsLike(m.Params(), append(blob, 0, 0, 0, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	other := nn.NewMLP(rand.New(rand.NewSource(9)), 5, 6, 6, 2)
	if _, err := UnmarshalParamsLike(other.Params(), blob); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func modelsIdentical(a, b *nn.Sequential) bool {
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		if !pa[i].AlmostEqual(pb[i], 1e-12) {
			return false
		}
	}
	return true
}

func TestDecentralizedRoundFullAverage(t *testing.T) {
	n := 4
	models := mlps(n, 10)
	// Expected mean of all params.
	want := nn.CloneParams(models[0].Params())
	sets := make([][]*tensor.Matrix, n)
	for i, m := range models {
		sets[i] = nn.CloneParams(m.Params())
	}
	nn.AverageParamSets(want, sets...)

	net := fednet.New(n, fednet.Config{})
	rep, err := DecentralizedRound(net, models, "m", -1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MinSets != n || rep.MaxSets != n || rep.Agents != n || rep.Degraded() {
		t.Fatalf("clean round report %+v, want %d sets everywhere", rep, n)
	}
	for i, m := range models {
		for j, p := range m.Params() {
			if !p.AlmostEqual(want[j], 1e-12) {
				t.Fatalf("agent %d param %d not at global mean", i, j)
			}
		}
		if i > 0 && !modelsIdentical(models[0], m) {
			t.Fatalf("agents diverged after full round")
		}
	}
	st := net.Stats()
	if st.MessagesSent != n*(n-1) {
		t.Fatalf("messages %d, want %d", st.MessagesSent, n*(n-1))
	}
}

func TestDecentralizedRoundPersonalizationSplit(t *testing.T) {
	n := 3
	alpha := 2 // share first 2 of 3 trainable layers
	models := mlps(n, 20)
	personalBefore := make([][]*tensor.Matrix, n)
	for i, m := range models {
		personalBefore[i] = nn.CloneParams(m.ParamsOfTrainableRange(alpha, m.NumTrainableLayers()))
	}
	net := fednet.New(n, fednet.Config{})
	if _, err := DecentralizedRound(net, models, "drl", alpha); err != nil {
		t.Fatal(err)
	}
	// Base layers converge across agents...
	for i := 1; i < n; i++ {
		a := models[0].ParamsOfTrainableRange(0, alpha)
		b := models[i].ParamsOfTrainableRange(0, alpha)
		for j := range a {
			if !a[j].AlmostEqual(b[j], 1e-12) {
				t.Fatalf("base layers differ between agents 0 and %d", i)
			}
		}
	}
	// ...personalization layers are untouched and still distinct.
	for i, m := range models {
		after := m.ParamsOfTrainableRange(alpha, m.NumTrainableLayers())
		for j := range after {
			if !after[j].Equal(personalBefore[i][j]) {
				t.Fatalf("agent %d personal layer %d mutated", i, j)
			}
		}
	}
	if modelsIdentical(models[0], models[1]) {
		t.Fatal("personalization should keep full models distinct")
	}
	// Fewer bytes than a full-model round.
	full := models[0].WireSize()
	base := nn.ParamsWireSize(models[0].ParamsOfTrainableRange(0, alpha))
	if base >= full {
		t.Fatal("base payload should be smaller than full model")
	}
	perMsg := int(net.Stats().BytesSent) / net.Stats().MessagesSent
	if perMsg != base+WireOverhead {
		t.Fatalf("per-message bytes %d, want %d payload + %d header", perMsg, base, WireOverhead)
	}
}

func TestDecentralizedRoundSingleAgent(t *testing.T) {
	models := mlps(1, 30)
	net := fednet.New(1, fednet.Config{})
	rep, err := DecentralizedRound(net, models, "m", -1)
	if err != nil || rep.MinSets != 1 {
		t.Fatalf("single-agent round: rep=%+v err=%v", rep, err)
	}
}

func TestDecentralizedRoundModelCountMismatch(t *testing.T) {
	net := fednet.New(3, fednet.Config{})
	if _, err := DecentralizedRound(net, mlps(2, 1), "m", -1); err == nil {
		t.Fatal("mismatch accepted")
	}
}

func TestDecentralizedRoundWithDrops(t *testing.T) {
	n := 5
	models := mlps(n, 40)
	net := fednet.New(n, fednet.Config{DropProb: 0.5, Seed: 3})
	rep, err := DecentralizedRound(net, models, "m", -1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MinSets < 1 || rep.MaxSets > n {
		t.Fatalf("set bounds %d..%d out of range", rep.MinSets, rep.MaxSets)
	}
	if !rep.Degraded() {
		t.Fatal("50% drops should degrade the round")
	}
	for _, m := range models {
		for _, p := range m.Params() {
			if p.HasNaN() {
				t.Fatal("drops corrupted parameters")
			}
		}
	}
}

func TestDecentralizedRoundRejectsNaNPeers(t *testing.T) {
	n := 3
	models := mlps(n, 50)
	// Poison agent 2's model.
	models[2].Params()[0].Data[0] = math.NaN()
	net := fednet.New(n, fednet.Config{})
	rep, err := DecentralizedRound(net, models, "m", -1)
	if err != nil {
		t.Fatal(err)
	}
	// Agents 0 and 1 aggregate 2 clean sets; agent 2 aggregates 2 clean
	// peers (its own is rejected). One NaN set per agent is filtered.
	if rep.MinSets != 2 || rep.MaxSets != 2 {
		t.Fatalf("set bounds %d..%d, want 2..2", rep.MinSets, rep.MaxSets)
	}
	if rep.NaNRejected != n {
		t.Fatalf("NaN rejects %d, want %d", rep.NaNRejected, n)
	}
	for i := 0; i < 2; i++ {
		for _, p := range models[i].Params() {
			if p.HasNaN() {
				t.Fatalf("agent %d contaminated by NaN peer", i)
			}
		}
	}
}

func TestCentralizedRoundConvergesAgents(t *testing.T) {
	n := 4
	models := mlps(n, 60)
	net := fednet.New(n, fednet.Config{Topology: fednet.Star})
	if _, err := CentralizedRound(net, models, "m", -1, false); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if !modelsIdentical(models[0], models[i]) {
			t.Fatalf("agent %d differs from global model", i)
		}
	}
}

func TestCentralizedRoundHubAsPureServer(t *testing.T) {
	n := 3
	models := mlps(n, 70)
	// Expected: mean of spokes 1..2 only.
	want := nn.CloneParams(models[1].Params())
	nn.AverageParamSets(want, nn.CloneParams(models[1].Params()), nn.CloneParams(models[2].Params()))
	net := fednet.New(n, fednet.Config{Topology: fednet.Star})
	if _, err := CentralizedRound(net, models, "m", -1, true); err != nil {
		t.Fatal(err)
	}
	for j, p := range models[1].Params() {
		if !p.AlmostEqual(want[j], 1e-12) {
			t.Fatalf("spoke param %d not at spoke mean", j)
		}
	}
}

func TestCentralizedRoundRequiresStar(t *testing.T) {
	net := fednet.New(2, fednet.Config{})
	if _, err := CentralizedRound(net, mlps(2, 80), "m", -1, false); err == nil {
		t.Fatal("all-to-all network accepted")
	}
}

func TestScheduleDue(t *testing.T) {
	s := Schedule{PeriodHours: 2}
	if s.Due(0) {
		t.Fatal("minute 0 should not fire")
	}
	if !s.Due(120) || !s.Due(240) {
		t.Fatal("period boundaries should fire")
	}
	if s.Due(60) || s.Due(121) {
		t.Fatal("off-period minutes fired")
	}
	if got := s.RoundsPerDay(); got != 12 {
		t.Fatalf("RoundsPerDay = %d, want 12", got)
	}
	frac := Schedule{PeriodHours: 0.1} // 6 minutes
	if !frac.Due(6) || frac.Due(5) {
		t.Fatal("fractional-hour schedule wrong")
	}
	if got := frac.RoundsPerDay(); got != 240 {
		t.Fatalf("fractional RoundsPerDay = %d", got)
	}
	off := Schedule{}
	if off.Due(60) || off.RoundsPerDay() != 0 {
		t.Fatal("disabled schedule fired")
	}
}

func TestScheduleFractionalPeriods(t *testing.T) {
	// β = 0.5h: every 30 minutes, except the simulation's first instant.
	half := Schedule{PeriodHours: 0.5}
	if half.Due(0) {
		t.Fatal("minute 0 fired for 0.5h period")
	}
	for _, m := range []int{30, 60, 90, 1440} {
		if !half.Due(m) {
			t.Fatalf("0.5h period missed minute %d", m)
		}
	}
	for _, m := range []int{1, 29, 31, 59, 61, 89} {
		if half.Due(m) {
			t.Fatalf("0.5h period fired off-boundary at minute %d", m)
		}
	}
	if got := half.RoundsPerDay(); got != 48 {
		t.Fatalf("0.5h RoundsPerDay = %d, want 48", got)
	}

	// β = 1.5h: every 90 minutes — the fire instants drift across hour
	// boundaries (90, 180, 270, ...), which is what the per-hour billing
	// in core must handle.
	sesqui := Schedule{PeriodHours: 1.5}
	if sesqui.Due(0) {
		t.Fatal("minute 0 fired for 1.5h period")
	}
	for _, m := range []int{90, 180, 270, 1440} {
		if !sesqui.Due(m) {
			t.Fatalf("1.5h period missed minute %d", m)
		}
	}
	for _, m := range []int{60, 89, 91, 120, 179, 181} {
		if sesqui.Due(m) {
			t.Fatalf("1.5h period fired off-boundary at minute %d", m)
		}
	}
	if got := sesqui.RoundsPerDay(); got != 16 {
		t.Fatalf("1.5h RoundsPerDay = %d, want 16", got)
	}

	// A full simulated day's worth of Due checks agrees with RoundsPerDay
	// for both fractional periods.
	for _, s := range []Schedule{half, sesqui} {
		fires := 0
		for m := 1; m <= 1440; m++ {
			if s.Due(m) {
				fires++
			}
		}
		if fires != s.RoundsPerDay() {
			t.Fatalf("period %.1fh: %d fires over a day, RoundsPerDay says %d",
				s.PeriodHours, fires, s.RoundsPerDay())
		}
	}
}

func TestPropDecentralizedPreservesMean(t *testing.T) {
	// Invariant: full FedAvg leaves the *mean* of all agents' parameters
	// unchanged (conservation), for any agent count.
	for _, n := range []int{2, 3, 5, 8} {
		models := mlps(n, int64(100+n))
		meanBefore := nn.CloneParams(models[0].Params())
		sets := make([][]*tensor.Matrix, n)
		for i, m := range models {
			sets[i] = nn.CloneParams(m.Params())
		}
		nn.AverageParamSets(meanBefore, sets...)

		net := fednet.New(n, fednet.Config{})
		if _, err := DecentralizedRound(net, models, "m", -1); err != nil {
			t.Fatal(err)
		}
		for j, p := range models[0].Params() {
			if !p.AlmostEqual(meanBefore[j], 1e-9) {
				t.Fatalf("n=%d: mean not conserved at param %d", n, j)
			}
		}
	}
}

func TestCentralizedRoundErrorPaths(t *testing.T) {
	// Model-count mismatch.
	star := fednet.New(3, fednet.Config{Topology: fednet.Star})
	if _, err := CentralizedRound(star, mlps(2, 1), "m", -1, false); err == nil {
		t.Fatal("count mismatch accepted")
	}
	// Single agent is a no-op.
	one := fednet.New(1, fednet.Config{Topology: fednet.Star})
	if _, err := CentralizedRound(one, mlps(1, 1), "m", -1, false); err != nil {
		t.Fatalf("single-agent round: %v", err)
	}
	// Hub-as-server with every upload dropped: no sets to average.
	lossy := fednet.New(3, fednet.Config{Topology: fednet.Star, DropProb: 1, Seed: 1})
	if _, err := CentralizedRound(lossy, mlps(3, 2), "m", -1, true); err == nil {
		t.Fatal("hub with zero uploads should error")
	}
	// Hub participating with all uploads dropped still averages itself.
	lossy2 := fednet.New(3, fednet.Config{Topology: fednet.Star, DropProb: 1, Seed: 1})
	if _, err := CentralizedRound(lossy2, mlps(3, 3), "m", -1, false); err != nil {
		t.Fatalf("participating hub should tolerate dropped uploads: %v", err)
	}
}

func TestCentralizedRoundPersonalizationSplit(t *testing.T) {
	n := 3
	alpha := 1
	models := mlps(n, 900)
	net := fednet.New(n, fednet.Config{Topology: fednet.Star})
	if _, err := CentralizedRound(net, models, "m", alpha, true); err != nil {
		t.Fatal(err)
	}
	// Spokes' base layers converge; deeper layers stay distinct.
	a := models[1].ParamsOfTrainableRange(0, alpha)
	b := models[2].ParamsOfTrainableRange(0, alpha)
	for j := range a {
		if !a[j].AlmostEqual(b[j], 1e-12) {
			t.Fatal("spoke base layers differ after centralized round")
		}
	}
	if modelsIdentical(models[1], models[2]) {
		t.Fatal("personal layers should remain distinct")
	}
}

func TestScheduleSubMinutePeriodClamps(t *testing.T) {
	s := Schedule{PeriodHours: 0.001} // 0.06 min → clamps to 1 minute
	if !s.Due(1) || !s.Due(2) {
		t.Fatal("sub-minute period should fire every minute")
	}
	if got := s.RoundsPerDay(); got != 1440 {
		t.Fatalf("RoundsPerDay = %d, want 1440", got)
	}
}
