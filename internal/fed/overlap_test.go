package fed

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/fednet"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestMarshalParamsIntoReusesBuffer(t *testing.T) {
	m := mlps(1, 31)[0]
	want := MarshalParams(m.Params())
	buf := make([]byte, 0, len(want))
	got := MarshalParamsInto(buf, m.Params())
	if !bytes.Equal(got, want) {
		t.Fatal("MarshalParamsInto bytes differ from MarshalParams")
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("MarshalParamsInto reallocated despite sufficient capacity")
	}
	// Reuse after mutating the params: same buffer, fresh contents.
	m.Params()[0].Data[0] += 1
	got2 := MarshalParamsInto(got, m.Params())
	if bytes.Equal(got2, want) {
		t.Fatal("reused buffer did not pick up parameter change")
	}
	dec, err := UnmarshalParamsLike(m.Params(), got2)
	if err != nil {
		t.Fatal(err)
	}
	if !dec[0].Equal(m.Params()[0]) {
		t.Fatal("round trip through reused buffer corrupted params")
	}
}

func TestUnmarshalParamsIntoMatchesLike(t *testing.T) {
	m := mlps(1, 32)[0]
	blob := MarshalParams(m.Params())
	pooled := (&RoundWorkspace{}).nextDecodeSet(len(m.Params()))
	if err := UnmarshalParamsInto(pooled, m.Params(), blob); err != nil {
		t.Fatal(err)
	}
	for i, p := range m.Params() {
		if !p.Equal(pooled[i]) {
			t.Fatalf("param %d mismatch", i)
		}
	}
	// The same pooled set decodes a second payload in place.
	m.Params()[1].Data[2] = 7
	blob2 := MarshalParams(m.Params())
	if err := UnmarshalParamsInto(pooled, m.Params(), blob2); err != nil {
		t.Fatal(err)
	}
	if pooled[1].Data[2] != 7 {
		t.Fatal("pooled decode did not refresh contents")
	}
	// Corruption still rejected.
	blob2[len(blob2)-1] ^= 1
	if err := UnmarshalParamsInto(pooled, m.Params(), blob2); err == nil {
		t.Fatal("corrupt payload accepted")
	}
}

// runTwinRounds runs the synchronous round on one fleet and the overlapped
// round on an identically-seeded twin fleet over identically-configured
// networks, returning both reports for comparison. Both fleets must end up
// bit-identical.
func runTwinRounds(t *testing.T, cfg fednet.Config, n int, alpha int, ws *RoundWorkspace) (RoundReport, RoundReport) {
	t.Helper()
	syncModels, overlapModels := mlps(n, 40), mlps(n, 40)
	syncNet := fednet.New(n, cfg)
	overlapNet := fednet.New(n, cfg)
	wantRep, err := DecentralizedRound(syncNet, syncModels, "m", alpha)
	if err != nil {
		t.Fatal(err)
	}
	pending := BeginDecentralizedRound(overlapNet, overlapModels, "m", alpha, ws)
	gotRep, err := pending.Join()
	if err != nil {
		t.Fatal(err)
	}
	for i := range syncModels {
		pa, pb := syncModels[i].Params(), overlapModels[i].Params()
		for j := range pa {
			if !pa[j].Equal(pb[j]) {
				t.Fatalf("agent %d param %d differs between sync and overlapped round", i, j)
			}
		}
	}
	return wantRep, gotRep
}

func TestOverlappedRoundMatchesSync(t *testing.T) {
	for _, tc := range []struct {
		name  string
		cfg   fednet.Config
		alpha int
	}{
		{"clean", fednet.Config{}, -1},
		{"personalized", fednet.Config{}, 2},
		{"drops", fednet.Config{DropProb: 0.3, Seed: 5}, -1},
		{"corruption", fednet.Config{Seed: 6, Faults: fednet.FaultPlan{CorruptProb: 0.4}}, -1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want, got := runTwinRounds(t, tc.cfg, 4, tc.alpha, nil)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("report mismatch:\nsync      %+v\noverlapped %+v", want, got)
			}
		})
	}
}

func TestOverlappedRoundWorkspaceReuse(t *testing.T) {
	ws := &RoundWorkspace{}
	for round := 0; round < 3; round++ {
		want, got := runTwinRounds(t, fednet.Config{}, 3, -1, ws)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("round %d report mismatch with reused workspace", round)
		}
	}
}

func TestOverlappedRoundRejectsNaNPeers(t *testing.T) {
	n := 3
	models := mlps(n, 50)
	models[2].Params()[0].Data[0] = math.NaN()
	net := fednet.New(n, fednet.Config{})
	rep, err := BeginDecentralizedRound(net, models, "m", -1, nil).Join()
	if err != nil {
		t.Fatal(err)
	}
	// Agent 2's set is NaN: rejected everywhere, including its own aggregate.
	if rep.NaNRejected != n || rep.MinSets != n-1 || rep.MaxSets != n-1 {
		t.Fatalf("report %+v, want %d NaN rejects and %d-set aggregates", rep, n, n-1)
	}
	for _, m := range models {
		if m.Params()[0].HasNaN() {
			t.Fatal("NaN leaked into an aggregate")
		}
	}
}

func TestOverlappedRoundOverlapsCompute(t *testing.T) {
	// The round's models must stay untouched between Begin and Join, but
	// unrelated compute may proceed. Train a second, unrelated fleet inside
	// the overlap window; under -race this also proves the aggregation
	// goroutine shares nothing with caller compute.
	n := 4
	roundModels := mlps(n, 60)
	twin := mlps(n, 60)
	other := mlps(1, 61)[0]
	net := fednet.New(n, fednet.Config{})
	twinNet := fednet.New(n, fednet.Config{})

	pending := BeginDecentralizedRound(net, roundModels, "m", -1, nil)
	rng := rand.New(rand.NewSource(62))
	x := tensor.RandNormal(rng, 8, 4, 0, 1)
	y := tensor.RandNormal(rng, 8, 2, 0, 1)
	opt := &nn.SGD{LR: 0.01}
	for i := 0; i < 50; i++ {
		nn.FitBatch(other, nn.MSE{}, opt, x, y)
	}
	if _, err := pending.Join(); err != nil {
		t.Fatal(err)
	}

	if _, err := DecentralizedRound(twinNet, twin, "m", -1); err != nil {
		t.Fatal(err)
	}
	for i := range twin {
		pa, pb := twin[i].Params(), roundModels[i].Params()
		for j := range pa {
			if !pa[j].Equal(pb[j]) {
				t.Fatalf("overlapped compute changed round result (agent %d param %d)", i, j)
			}
		}
	}
}

func TestBeginPanicsOnUnjoinedWorkspace(t *testing.T) {
	n := 3
	models := mlps(n, 70)
	net := fednet.New(n, fednet.Config{})
	ws := &RoundWorkspace{}
	pending := BeginDecentralizedRound(net, models, "m", -1, ws)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("second Begin on in-flight workspace did not panic")
			}
		}()
		BeginDecentralizedRound(net, models, "m", -1, ws)
	}()
	if _, err := pending.Join(); err != nil {
		t.Fatal(err)
	}
	// After Join the workspace is free again.
	if _, err := BeginDecentralizedRound(net, models, "m", -1, ws).Join(); err != nil {
		t.Fatal(err)
	}
}

func TestOverlappedRoundErrorPaths(t *testing.T) {
	models := mlps(3, 80)
	net := fednet.New(2, fednet.Config{})
	if _, err := BeginDecentralizedRound(net, models, "m", -1, nil).Join(); err == nil {
		t.Fatal("model-count mismatch accepted")
	}
	// Single agent short-circuits.
	one := fednet.New(1, fednet.Config{})
	rep, err := BeginDecentralizedRound(one, models[:1], "m", -1, nil).Join()
	if err != nil || rep.Agents != 1 || rep.MinSets != 1 {
		t.Fatalf("single-agent round rep %+v err %v", rep, err)
	}
}
