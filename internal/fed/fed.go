// Package fed implements the federated-learning machinery of the paper:
//
//   - decentralized FedAvg rounds (Algorithm 1): every agent broadcasts its
//     model parameters to every peer over the simulated LAN and averages
//     what arrives with its own — no aggregation server exists;
//   - centralized (cloud) rounds for the Cloud/FL/FRL baselines: spokes
//     upload to a hub which averages and redistributes;
//   - the FedPer personalization split (Section 3.3.2, Eqs. 7–8): only the
//     first α trainable layers of a model (the "base layers") participate
//     in federation, the remaining layers stay local forever.
//
// All transports run through fednet so byte counts, message counts, and
// simulated time are accounted.
package fed

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/fednet"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// ErrRoundStarved marks a round (or an agent within one) left with no
// valid parameter sets to average — every input was lost, corrupt, or
// diverged. The aggregate state is left unchanged in that case, so callers
// preferring degradation over failure can errors.Is-match this and carry
// on to the next period.
var ErrRoundStarved = errors.New("no valid parameter sets to average")

// wireMagic opens every parameter blob; the 4 bytes after it hold a CRC32
// (IEEE) of the body. The checksum lets receivers reject payloads that
// were corrupted on the wire instead of averaging garbage — CRC32 catches
// every single-bit flip, the fault plan's corruption model.
const wireMagic = "PFP1"

// WireOverhead is the byte overhead MarshalParams adds on top of the raw
// matrix encoding (magic + checksum). Communication accounting that
// predicts payload sizes from nn.ParamsWireSize must add it.
const WireOverhead = len(wireMagic) + 4

// MarshalParams serializes a parameter set in wire format: a checksummed
// header followed by the matrices back to back.
func MarshalParams(ps []*tensor.Matrix) []byte {
	return MarshalParamsInto(nil, ps)
}

// MarshalParamsInto is MarshalParams appending into a reused buffer: dst is
// truncated and overwritten, growing only when its capacity is exceeded, and
// the (possibly re-backed) slice is returned. Callers own the reuse
// discipline — the buffer must stay untouched while any message carrying it
// is still in flight (fednet shares payloads, it does not copy them).
func MarshalParamsInto(dst []byte, ps []*tensor.Matrix) []byte {
	dst = append(dst[:0], wireMagic...)
	dst = append(dst, 0, 0, 0, 0) // checksum placeholder
	for _, p := range ps {
		dst = p.AppendWire(dst)
	}
	binary.LittleEndian.PutUint32(dst[len(wireMagic):WireOverhead], crc32.ChecksumIEEE(dst[WireOverhead:]))
	return dst
}

// UnmarshalParamsLike decodes a wire blob into fresh matrices shaped like
// the given template set. It errors on a missing header, checksum
// mismatch, or shape/length mismatch — the validation gate federation
// rounds use to quarantine corrupt payloads.
func UnmarshalParamsLike(template []*tensor.Matrix, data []byte) ([]*tensor.Matrix, error) {
	out := make([]*tensor.Matrix, len(template))
	for i := range out {
		out[i] = &tensor.Matrix{}
	}
	if err := UnmarshalParamsInto(out, template, data); err != nil {
		return nil, err
	}
	return out, nil
}

// UnmarshalParamsInto is UnmarshalParamsLike decoding into a caller-owned
// set (reusing each matrix's backing storage when capacity allows) instead
// of allocating fresh matrices. dst must have the template's length; on
// error the contents of dst are unspecified and the caller must discard the
// set.
func UnmarshalParamsInto(dst, template []*tensor.Matrix, data []byte) error {
	if len(dst) != len(template) {
		panic(fmt.Sprintf("fed: UnmarshalParamsInto dst length %d, want %d", len(dst), len(template)))
	}
	if len(data) < WireOverhead || string(data[:len(wireMagic)]) != wireMagic {
		return fmt.Errorf("fed: payload missing wire header")
	}
	want := binary.LittleEndian.Uint32(data[len(wireMagic):WireOverhead])
	if got := crc32.ChecksumIEEE(data[WireOverhead:]); got != want {
		return fmt.Errorf("fed: payload checksum mismatch (header %08x, body %08x)", want, got)
	}
	rest := data[WireOverhead:]
	for i, tpl := range template {
		n, err := dst[i].DecodeInto(rest)
		if err != nil {
			return fmt.Errorf("fed: decoding param %d: %w", i, err)
		}
		if dst[i].Rows != tpl.Rows || dst[i].Cols != tpl.Cols {
			return fmt.Errorf("fed: param %d is %dx%d, want %dx%d", i, dst[i].Rows, dst[i].Cols, tpl.Rows, tpl.Cols)
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return fmt.Errorf("fed: %d trailing bytes after params", len(rest))
	}
	return nil
}

// paramsClean reports whether a set is free of NaN/Inf — the divergence
// filter applied before any set joins an aggregate.
func paramsClean(set []*tensor.Matrix) bool {
	for _, m := range set {
		if m.HasNaN() {
			return false
		}
	}
	return true
}

// baseParams returns the federated slice of a model's parameters: those of
// the first alpha trainable layers. alpha < 0 or ≥ the trainable-layer
// count selects all parameters (plain FedAvg, no personalization).
func baseParams(m *nn.Sequential, alpha int) []*tensor.Matrix {
	n := m.NumTrainableLayers()
	if alpha < 0 || alpha > n {
		alpha = n
	}
	return m.ParamsOfTrainableRange(0, alpha)
}

// DecentralizedRound performs one synchronous DFL exchange (Algorithm 1
// lines "Broadcast / Receive / aggregate") for one model per agent:
//
//  1. agent i snapshots its base parameters (first alpha trainable layers;
//     alpha<0 = all) and broadcasts them to every peer;
//  2. agent i averages its own snapshot with every set it received, and
//     installs the mean into its base layers.
//
// Personalization layers (trainable layers ≥ alpha) are never transmitted
// or modified — they realize W(DRLP) of Eq. 8; the installed mean realizes
// W(DRLB) of Eq. 7 and the model's Forward then computes their combination.
//
// models[i] belongs to network agent i; all models must share one
// architecture. The round degrades gracefully under every fabric fault:
// drops and partitions shrink the aggregate to whatever arrived, payloads
// failing wire validation (checksum, framing, shape) are quarantined and
// counted instead of aborting the round, NaN/Inf sets are filtered, and
// agents inside a crash window sit the round out untouched. The returned
// RoundReport carries the participation stats; the error is reserved for
// structural misuse (model-count mismatch, topology violation).
//
// DecentralizedRound is the synchronous form of BeginDecentralizedRound: it
// starts the round and immediately joins it.
func DecentralizedRound(net *fednet.Network, models []*nn.Sequential, kind string, alpha int) (RoundReport, error) {
	return BeginDecentralizedRound(net, models, kind, alpha, nil).Join()
}

// collectSets gathers one agent's aggregate inputs: its own snapshot plus
// every received payload of the right kind, each gated through wire
// validation and the divergence filter. Exclusions land in the report.
func (rep *RoundReport) collectSets(net *fednet.Network, agent int, template []*tensor.Matrix, kind string, own []*tensor.Matrix) [][]*tensor.Matrix {
	return rep.collectFrom(net.Collect(agent), agent, template, kind, own, nil)
}

// collectFrom is collectSets over an already-drained inbox. With a non-nil
// workspace each payload decodes into a pooled set (reset the pool between
// aggregating agents); with nil it allocates fresh matrices per payload.
func (rep *RoundReport) collectFrom(msgs []fednet.Message, agent int, template []*tensor.Matrix, kind string, own []*tensor.Matrix, ws *RoundWorkspace) [][]*tensor.Matrix {
	var sets [][]*tensor.Matrix
	if own != nil {
		if paramsClean(own) {
			sets = append(sets, own)
		} else {
			rep.reject(agent, agent, kind, "NaN/Inf parameters", false)
		}
	}
	for _, msg := range msgs {
		if msg.Kind != kind {
			continue
		}
		var got []*tensor.Matrix
		var err error
		if ws != nil {
			got = ws.nextDecodeSet(len(template))
			err = UnmarshalParamsInto(got, template, msg.Payload)
		} else {
			got, err = UnmarshalParamsLike(template, msg.Payload)
		}
		if err != nil {
			rep.reject(agent, msg.From, msg.Kind, err.Error(), true)
			continue
		}
		if !paramsClean(got) {
			rep.reject(agent, msg.From, msg.Kind, "NaN/Inf parameters", false)
			continue
		}
		// Adversary screening runs after structural validation: the gates
		// compare a well-formed payload against the receiver's own
		// snapshot. Never self-screen — own folds without gating.
		if ws != nil && ws.Adv != nil && msg.From != agent && own != nil {
			if reason, bad := ws.Adv.Suspect(got, own); bad {
				rep.rejectByzantine(agent, msg.From, msg.Kind, reason)
				continue
			}
		}
		sets = append(sets, got)
	}
	return sets
}

// CentralizedRound performs one cloud-FL exchange over a Star network:
// every spoke uploads its base parameters to the hub (agent 0), the hub
// averages them together with its own and broadcasts the global model back,
// and every agent installs it. This is the Cloud/FL/FRL baseline transport.
//
// The hub is a real participant (agent 0 owns models[0]); with hubIsServer
// true the hub contributes no parameters of its own — it is a pure
// aggregation server, the paper's "malicious cloud" role.
//
// Like DecentralizedRound, the exchange degrades gracefully: corrupt or
// diverged uploads are quarantined and counted, crashed spokes sit the
// round out, and a spoke that never receives (or cannot validate) the
// global model simply keeps its current parameters. The one hard fault
// left is a server hub whose every upload was rejected — there is nothing
// to average, and the error says exactly what was lost and why.
func CentralizedRound(net *fednet.Network, models []*nn.Sequential, kind string, alpha int, hubIsServer bool) (rep RoundReport, err error) {
	if net.N() != len(models) {
		return rep, fmt.Errorf("fed: %d models for %d network agents", len(models), net.N())
	}
	if net.Config().Topology != fednet.Star {
		return rep, fmt.Errorf("fed: CentralizedRound requires a star network, have %v", net.Config().Topology)
	}
	n := len(models)
	if n == 1 {
		return RoundReport{Agents: 1, MinSets: 1, MaxSets: 1}, nil
	}
	if net.AgentDown(0) {
		// A crashed hub takes the whole round with it; every spoke keeps
		// its local model. Not an error: the fleet retries next period.
		rep.Crashed = 1
		return rep, nil
	}
	rep.Agents = 1
	// Byte accounting: fednet.Stats delta around the round's transport.
	// Centralized rounds always speak dense PFP1, so the dense baseline is
	// the bill itself (ratio 1).
	st0 := net.Stats()
	defer func() {
		st := net.Stats()
		rep.BytesSent = st.BytesSent - st0.BytesSent
		rep.Messages = st.MessagesSent - st0.MessagesSent
		rep.DenseBytes = rep.BytesSent
	}()
	// Upload.
	for i := 1; i < n; i++ {
		if net.AgentDown(i) {
			rep.Crashed++
			continue
		}
		rep.Agents++
		snap := nn.CloneParams(baseParams(models[i], alpha))
		if !paramsClean(snap) {
			rep.reject(0, i, kind, "NaN/Inf parameters (upload withheld)", false)
			continue
		}
		if err := net.Send(i, 0, kind, MarshalParams(snap)); err != nil {
			return rep, err
		}
	}
	// Hub aggregates.
	hubBase := baseParams(models[0], alpha)
	var own []*tensor.Matrix
	if !hubIsServer {
		own = nn.CloneParams(hubBase)
	}
	inbox := net.Collect(0)
	for _, msg := range inbox {
		if msg.Kind == kind {
			rep.BytesReceived += int64(len(msg.Payload))
		}
	}
	sets := rep.collectFrom(inbox, 0, hubBase, kind, own, nil)
	rep.countSets(len(sets))
	if len(sets) == 0 {
		return rep, fmt.Errorf("fed: hub (kind %q, %d corrupt-rejected, %d NaN-rejected, %d spokes crashed — %s): %w",
			kind, rep.CorruptRejected, rep.NaNRejected, rep.Crashed, rep.rejectsFor(0), ErrRoundStarved)
	}
	global := nn.CloneParams(hubBase)
	nn.AverageParamSets(global, sets...)
	// Distribute and install.
	blob := MarshalParams(global)
	if err := net.Broadcast(0, kind, blob); err != nil {
		return rep, err
	}
	nn.CopyParams(hubBase, global)
	for i := 1; i < n; i++ {
		if net.AgentDown(i) {
			continue
		}
		base := baseParams(models[i], alpha)
		for _, msg := range net.Collect(i) {
			if msg.Kind != kind {
				continue
			}
			rep.BytesReceived += int64(len(msg.Payload))
			got, err := UnmarshalParamsLike(base, msg.Payload)
			if err != nil {
				// The download was corrupted in transit; the spoke keeps
				// its local model until the next round.
				rep.reject(i, msg.From, msg.Kind, err.Error(), true)
				continue
			}
			nn.CopyParams(base, got)
		}
	}
	return rep, nil
}

// Schedule decides when periodic broadcasts fire. The paper's β and γ are
// broadcast periods in hours; the simulation advances in minutes.
type Schedule struct {
	// PeriodHours is the broadcast period (β or γ). Non-positive disables.
	PeriodHours float64
}

// Due reports whether a broadcast fires at the given simulation minute.
// Minute 0 does not fire (there is nothing trained yet).
func (s Schedule) Due(minute int) bool {
	if s.PeriodHours <= 0 || minute == 0 {
		return false
	}
	period := int(s.PeriodHours * 60)
	if period < 1 {
		period = 1
	}
	return minute%period == 0
}

// RoundsPerDay returns how many broadcasts fire in a 24h day.
func (s Schedule) RoundsPerDay() int {
	if s.PeriodHours <= 0 {
		return 0
	}
	period := int(s.PeriodHours * 60)
	if period < 1 {
		period = 1
	}
	return (24 * 60) / period
}
