// Package fed implements the federated-learning machinery of the paper:
//
//   - decentralized FedAvg rounds (Algorithm 1): every agent broadcasts its
//     model parameters to every peer over the simulated LAN and averages
//     what arrives with its own — no aggregation server exists;
//   - centralized (cloud) rounds for the Cloud/FL/FRL baselines: spokes
//     upload to a hub which averages and redistributes;
//   - the FedPer personalization split (Section 3.3.2, Eqs. 7–8): only the
//     first α trainable layers of a model (the "base layers") participate
//     in federation, the remaining layers stay local forever.
//
// All transports run through fednet so byte counts, message counts, and
// simulated time are accounted.
package fed

import (
	"bytes"
	"fmt"

	"repro/internal/fednet"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// MarshalParams serializes a parameter set in wire format (matrices back to
// back).
func MarshalParams(ps []*tensor.Matrix) []byte {
	var buf bytes.Buffer
	for _, p := range ps {
		if _, err := p.WriteTo(&buf); err != nil {
			// bytes.Buffer writes cannot fail.
			panic(fmt.Sprintf("fed: marshal: %v", err))
		}
	}
	return buf.Bytes()
}

// UnmarshalParamsLike decodes a wire blob into fresh matrices shaped like
// the given template set. It errors on shape or length mismatch.
func UnmarshalParamsLike(template []*tensor.Matrix, data []byte) ([]*tensor.Matrix, error) {
	r := bytes.NewReader(data)
	out := make([]*tensor.Matrix, len(template))
	for i, tpl := range template {
		var m tensor.Matrix
		if _, err := m.ReadFrom(r); err != nil {
			return nil, fmt.Errorf("fed: decoding param %d: %w", i, err)
		}
		if m.Rows != tpl.Rows || m.Cols != tpl.Cols {
			return nil, fmt.Errorf("fed: param %d is %dx%d, want %dx%d", i, m.Rows, m.Cols, tpl.Rows, tpl.Cols)
		}
		out[i] = &m
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("fed: %d trailing bytes after params", r.Len())
	}
	return out, nil
}

// baseParams returns the federated slice of a model's parameters: those of
// the first alpha trainable layers. alpha < 0 or ≥ the trainable-layer
// count selects all parameters (plain FedAvg, no personalization).
func baseParams(m *nn.Sequential, alpha int) []*tensor.Matrix {
	n := m.NumTrainableLayers()
	if alpha < 0 || alpha > n {
		alpha = n
	}
	return m.ParamsOfTrainableRange(0, alpha)
}

// DecentralizedRound performs one synchronous DFL exchange (Algorithm 1
// lines "Broadcast / Receive / aggregate") for one model per agent:
//
//  1. agent i snapshots its base parameters (first alpha trainable layers;
//     alpha<0 = all) and broadcasts them to every peer;
//  2. agent i averages its own snapshot with every set it received, and
//     installs the mean into its base layers.
//
// Personalization layers (trainable layers ≥ alpha) are never transmitted
// or modified — they realize W(DRLP) of Eq. 8; the installed mean realizes
// W(DRLB) of Eq. 7 and the model's Forward then computes their combination.
//
// models[i] belongs to network agent i; all models must share one
// architecture. Message drops (if configured on the network) degrade the
// average gracefully — an agent aggregates whatever arrived plus its own
// snapshot. Returns the number of parameter sets each agent averaged
// (minimum across agents).
func DecentralizedRound(net *fednet.Network, models []*nn.Sequential, kind string, alpha int) (int, error) {
	if net.N() != len(models) {
		return 0, fmt.Errorf("fed: %d models for %d network agents", len(models), net.N())
	}
	n := len(models)
	if n == 1 {
		return 1, nil
	}
	// Snapshot & broadcast. Snapshots isolate in-flight payloads from any
	// continued local mutation.
	snaps := make([][]*tensor.Matrix, n)
	for i, m := range models {
		snaps[i] = nn.CloneParams(baseParams(m, alpha))
		if err := net.Broadcast(i, kind, MarshalParams(snaps[i])); err != nil {
			return 0, err
		}
	}
	// Collect & aggregate.
	minSets := n + 1
	for i, m := range models {
		base := baseParams(m, alpha)
		sets := [][]*tensor.Matrix{snaps[i]}
		for _, msg := range net.Collect(i) {
			if msg.Kind != kind {
				continue
			}
			got, err := UnmarshalParamsLike(base, msg.Payload)
			if err != nil {
				return 0, fmt.Errorf("fed: agent %d from %d: %w", i, msg.From, err)
			}
			sets = append(sets, got)
		}
		used := nn.AverageParamSets(base, sets...)
		if used < minSets {
			minSets = used
		}
	}
	return minSets, nil
}

// CentralizedRound performs one cloud-FL exchange over a Star network:
// every spoke uploads its base parameters to the hub (agent 0), the hub
// averages them together with its own and broadcasts the global model back,
// and every agent installs it. This is the Cloud/FL/FRL baseline transport.
//
// The hub is a real participant (agent 0 owns models[0]); with hubIsServer
// true the hub contributes no parameters of its own — it is a pure
// aggregation server, the paper's "malicious cloud" role.
func CentralizedRound(net *fednet.Network, models []*nn.Sequential, kind string, alpha int, hubIsServer bool) error {
	if net.N() != len(models) {
		return fmt.Errorf("fed: %d models for %d network agents", len(models), net.N())
	}
	if net.Config().Topology != fednet.Star {
		return fmt.Errorf("fed: CentralizedRound requires a star network, have %v", net.Config().Topology)
	}
	n := len(models)
	if n == 1 {
		return nil
	}
	// Upload.
	for i := 1; i < n; i++ {
		snap := nn.CloneParams(baseParams(models[i], alpha))
		if err := net.Send(i, 0, kind, MarshalParams(snap)); err != nil {
			return err
		}
	}
	// Hub aggregates.
	hubBase := baseParams(models[0], alpha)
	var sets [][]*tensor.Matrix
	if !hubIsServer {
		sets = append(sets, nn.CloneParams(hubBase))
	}
	for _, msg := range net.Collect(0) {
		if msg.Kind != kind {
			continue
		}
		got, err := UnmarshalParamsLike(hubBase, msg.Payload)
		if err != nil {
			return fmt.Errorf("fed: hub decoding from %d: %w", msg.From, err)
		}
		sets = append(sets, got)
	}
	if len(sets) == 0 {
		return fmt.Errorf("fed: hub received no parameter sets")
	}
	global := nn.CloneParams(hubBase)
	if nn.AverageParamSets(global, sets...) == 0 {
		return fmt.Errorf("fed: every uploaded parameter set was rejected")
	}
	// Distribute and install.
	blob := MarshalParams(global)
	if err := net.Broadcast(0, kind, blob); err != nil {
		return err
	}
	nn.CopyParams(hubBase, global)
	for i := 1; i < n; i++ {
		base := baseParams(models[i], alpha)
		for _, msg := range net.Collect(i) {
			if msg.Kind != kind {
				continue
			}
			got, err := UnmarshalParamsLike(base, msg.Payload)
			if err != nil {
				return fmt.Errorf("fed: spoke %d decoding: %w", i, err)
			}
			nn.CopyParams(base, got)
		}
	}
	return nil
}

// Schedule decides when periodic broadcasts fire. The paper's β and γ are
// broadcast periods in hours; the simulation advances in minutes.
type Schedule struct {
	// PeriodHours is the broadcast period (β or γ). Non-positive disables.
	PeriodHours float64
}

// Due reports whether a broadcast fires at the given simulation minute.
// Minute 0 does not fire (there is nothing trained yet).
func (s Schedule) Due(minute int) bool {
	if s.PeriodHours <= 0 || minute == 0 {
		return false
	}
	period := int(s.PeriodHours * 60)
	if period < 1 {
		period = 1
	}
	return minute%period == 0
}

// RoundsPerDay returns how many broadcasts fire in a 24h day.
func (s Schedule) RoundsPerDay() int {
	if s.PeriodHours <= 0 {
		return 0
	}
	period := int(s.PeriodHours * 60)
	if period < 1 {
		period = 1
	}
	return (24 * 60) / period
}
