package fed

import (
	"fmt"
	"strings"
)

// Reject records one parameter set excluded from a round's aggregate: who
// was aggregating, whose payload was thrown out, on which kind, and why.
// Rounds collect these so failures carry participation context instead of
// an opaque error.
type Reject struct {
	// Agent is the aggregating agent; From the sender of the rejected
	// set. From == Agent means the agent's own snapshot was rejected
	// (diverged to NaN/Inf).
	Agent, From int
	Kind        string
	Reason      string
}

func (r Reject) String() string {
	if r.Agent == r.From {
		return fmt.Sprintf("agent %d own snapshot (kind %q): %s", r.Agent, r.Kind, r.Reason)
	}
	return fmt.Sprintf("agent %d from %d (kind %q): %s", r.Agent, r.From, r.Kind, r.Reason)
}

// RoundReport describes how one federation round actually went — the
// participation stats that replace hard errors when the fabric degrades.
// A round over a clean fabric has Agents == MinSets == MaxSets and no
// rejects; anything less means the round averaged over a subset.
type RoundReport struct {
	// Agents counts live participants; Crashed counts agents skipped
	// because they were inside a crash window when the round ran.
	Agents  int
	Crashed int
	// MinSets/MaxSets bound the number of parameter sets any live agent
	// averaged (own snapshot included). For a centralized round both
	// equal the hub's aggregate size.
	MinSets, MaxSets int
	// CorruptRejected counts payloads thrown out by wire validation
	// (checksum mismatch, framing, shape); NaNRejected counts sets
	// thrown out by the divergence filter; ByzantineRejected counts
	// well-formed payloads quarantined by the adversary defense gates
	// (norm-ratio / cosine screening against the receiver's snapshot).
	CorruptRejected   int
	NaNRejected       int
	ByzantineRejected int
	// Rejects details every exclusion.
	Rejects []Reject

	// PartialExchange marks a round whose protocol never promises full
	// participation — ring and sampled gossip, where each agent averages
	// only its (sampled) neighborhood by design. Degraded then means an
	// agent folded *zero* sets, not fewer than the fleet.
	PartialExchange bool

	// Messages counts the wire attempts the round's transport phase made
	// (retries included), taken as a fednet.Stats delta like the byte
	// fields. The topology suites pin it against the closed forms —
	// N·(N−1) all-to-all, N·k sampled, (N−C)+C·(C−1)+C′ cluster — on a
	// drop-free fabric.
	Messages int

	// BytesSent is what the round's transport phase actually put on the
	// wire (every attempt, retries included), taken as a fednet.Stats
	// delta around the broadcast/drain. BytesReceived counts the payload
	// bytes that reached aggregating agents on this round's kind.
	// DenseBytes is what the same attempts would have cost in the dense
	// PFP1 format — the compression baseline. With no wire.Exchange
	// attached, DenseBytes == BytesSent and the ratio is 1.
	BytesSent     int64
	BytesReceived int64
	DenseBytes    int64

	// counted marks that MinSets/MaxSets have been seeded (0 is a valid
	// aggregate size, so the zero value cannot serve as the sentinel).
	counted bool
}

// CompressionRatio is DenseBytes / BytesSent: how many times cheaper the
// round's transport was than the dense baseline. A round that moved no
// bytes (single agent, everyone crashed) reports 1.
func (r RoundReport) CompressionRatio() float64 {
	if r.BytesSent <= 0 {
		return 1
	}
	return float64(r.DenseBytes) / float64(r.BytesSent)
}

// CommsTotals accumulates the byte accounting of many rounds — one plane's
// (forecaster or EMS) communication bill over a whole run.
type CommsTotals struct {
	Rounds        int
	BytesSent     int64
	BytesReceived int64
	DenseBytes    int64
}

// Absorb folds one round's byte accounting into the totals.
func (c *CommsTotals) Absorb(rep RoundReport) {
	c.Rounds++
	c.BytesSent += rep.BytesSent
	c.BytesReceived += rep.BytesReceived
	c.DenseBytes += rep.DenseBytes
}

// Add folds pre-aggregated byte counts (e.g. refire charges accounted
// outside a round call) into the totals without counting a round.
func (c *CommsTotals) Add(sent, received, dense int64) {
	c.BytesSent += sent
	c.BytesReceived += received
	c.DenseBytes += dense
}

// CompressionRatio is the run-level DenseBytes / BytesSent (1 when no
// bytes moved).
func (c CommsTotals) CompressionRatio() float64 {
	if c.BytesSent <= 0 {
		return 1
	}
	return float64(c.DenseBytes) / float64(c.BytesSent)
}

// Degraded reports whether the round fell short of the participation its
// protocol promises: the full fleet for broadcast and cluster rounds, at
// least each agent's own set for partial exchanges (ring/sampled gossip).
func (r RoundReport) Degraded() bool {
	if r.Crashed > 0 || r.CorruptRejected > 0 || r.NaNRejected > 0 || r.ByzantineRejected > 0 {
		return true
	}
	if r.PartialExchange {
		return r.Agents > 0 && r.MinSets < 1
	}
	return r.Agents > 0 && r.MinSets < r.Agents
}

// rejectsFor formats the rejects concerning one aggregating agent, for
// error messages.
func (r RoundReport) rejectsFor(agent int) string {
	var parts []string
	for _, rej := range r.Rejects {
		if rej.Agent == agent {
			parts = append(parts, rej.String())
		}
	}
	if len(parts) == 0 {
		return "no payloads arrived"
	}
	return strings.Join(parts, "; ")
}

// countSets tracks the min/max aggregate sizes across agents.
func (r *RoundReport) countSets(n int) {
	if !r.counted {
		r.counted = true
		r.MinSets, r.MaxSets = n, n
		return
	}
	if n < r.MinSets {
		r.MinSets = n
	}
	if n > r.MaxSets {
		r.MaxSets = n
	}
}

// reject records one exclusion, classifying it as corrupt (wire-level) or
// NaN (divergence filter).
func (r *RoundReport) reject(agent, from int, kind, reason string, corrupt bool) {
	if corrupt {
		r.CorruptRejected++
	} else {
		r.NaNRejected++
	}
	r.Rejects = append(r.Rejects, Reject{Agent: agent, From: from, Kind: kind, Reason: reason})
}

// rejectByzantine records one exclusion made by the adversary defense
// gates.
func (r *RoundReport) rejectByzantine(agent, from int, kind, reason string) {
	r.ByzantineRejected++
	r.Rejects = append(r.Rejects, Reject{Agent: agent, From: from, Kind: kind, Reason: reason})
}
