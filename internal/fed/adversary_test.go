package fed

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fednet"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// TestAdversaryPlanValidate covers the plan validation edge cases,
// mirroring fednet's TestFaultPlanValidate.
func TestAdversaryPlanValidate(t *testing.T) {
	bad := []AdversaryPlan{
		{Attackers: []Attacker{{Agent: 5, Attack: AttackSignFlip}}},
		{Attackers: []Attacker{{Agent: -1, Attack: AttackSignFlip}}},
		{Attackers: []Attacker{{Agent: 0, Attack: "gradient-cook"}}},
		{Attackers: []Attacker{{Agent: 0, Attack: AttackNoise}}}, // Scale unset
		{Attackers: []Attacker{{Agent: 0, Attack: AttackNoise, Scale: math.NaN()}}},
		{Attackers: []Attacker{{Agent: 0, Attack: AttackNoise, Scale: math.Inf(1)}}},
		{Attackers: []Attacker{{Agent: 0, Attack: AttackStale}}}, // Lag unset
		{Attackers: []Attacker{{Agent: 0, Attack: AttackSignFlip, StartRound: -1}}},
		{Attackers: []Attacker{{Agent: 0, Attack: AttackSignFlip, StartRound: 5, EndRound: 5}}},
		{Attackers: []Attacker{
			{Agent: 1, Attack: AttackSignFlip},
			{Agent: 1, Attack: AttackStale, Lag: 2},
		}},
		{Defense: Defense{NormRatio: 0.5}},
		{Defense: Defense{NormRatio: 1}},
		{Defense: Defense{CosineGate: true, CosineMin: 1.5}},
		{Defense: Defense{CosineGate: true, CosineMin: -2}},
	}
	for i, plan := range bad {
		if err := plan.Validate(3); err == nil {
			t.Fatalf("bad plan %d accepted", i)
		}
	}
	good := AdversaryPlan{
		Seed: 42,
		Attackers: []Attacker{
			{Agent: 0, Attack: AttackSignFlip, StartRound: 1, EndRound: 3},
			{Agent: 2, Attack: AttackNoise, Scale: 8},
		},
		Defense: Defense{NormRatio: 4, CosineGate: true},
	}
	if err := good.Validate(3); err != nil {
		t.Fatal(err)
	}
	if got := good.MaxAgent(); got != 2 {
		t.Fatalf("MaxAgent = %d, want 2", got)
	}
	if (AdversaryPlan{}).MaxAgent() != -1 {
		t.Fatal("empty plan MaxAgent should be -1")
	}
	if !(AdversaryPlan{}).Empty() || good.Empty() {
		t.Fatal("Empty misclassifies")
	}
	if (AdversaryPlan{Defense: Defense{CosineGate: true}}).Empty() {
		t.Fatal("defense-only plan should not be Empty")
	}
}

// TestDefenseCatches pins the attack-vs-gate prediction matrix that
// DetectionsPerRound (and the core byzantine golden test) relies on.
func TestDefenseCatches(t *testing.T) {
	both := Defense{NormRatio: 4, CosineGate: true}
	cases := []struct {
		name string
		d    Defense
		a    Attacker
		want bool
	}{
		{"sign-flip vs cosine", both, Attacker{Attack: AttackSignFlip}, true},
		{"sign-flip vs norm-only", Defense{NormRatio: 4}, Attacker{Attack: AttackSignFlip}, false},
		{"big noise vs norm", both, Attacker{Attack: AttackNoise, Scale: 8}, true},
		{"small noise passes", both, Attacker{Attack: AttackNoise, Scale: 0.1}, false},
		{"stale passes", both, Attacker{Attack: AttackStale, Lag: 1}, false},
		{"no defense", Defense{}, Attacker{Attack: AttackSignFlip}, false},
	}
	for _, tc := range cases {
		if got := tc.d.Catches(tc.a); got != tc.want {
			t.Errorf("%s: Catches = %v, want %v", tc.name, got, tc.want)
		}
	}
	plan := AdversaryPlan{
		Attackers: []Attacker{
			{Agent: 0, Attack: AttackSignFlip, StartRound: 2},
			{Agent: 1, Attack: AttackNoise, Scale: 8},
			{Agent: 2, Attack: AttackStale, Lag: 1},
		},
		Defense: both,
	}
	if got := plan.DetectionsPerRound(4, 0); got != 3 {
		t.Fatalf("round 0 detections = %d, want 3 (noise only)", got)
	}
	if got := plan.DetectionsPerRound(4, 2); got != 6 {
		t.Fatalf("round 2 detections = %d, want 6 (sign-flip active too)", got)
	}
}

// TestSuspectGates exercises the screening math directly.
func TestSuspectGates(t *testing.T) {
	tpl := []*tensor.Matrix{tensor.New(2, 2)}
	copy(tpl[0].Data, []float64{1, -2, 3, 0.5})
	mk := func(scale float64) []*tensor.Matrix {
		p := []*tensor.Matrix{tensor.New(2, 2)}
		for i, v := range tpl[0].Data {
			p[0].Data[i] = v * scale
		}
		return p
	}
	adv := NewAdversary(AdversaryPlan{Defense: Defense{NormRatio: 4, CosineGate: true}})
	if reason, bad := adv.Suspect(mk(1), tpl); bad {
		t.Fatalf("identical payload rejected: %s", reason)
	}
	if reason, bad := adv.Suspect(mk(1.5), tpl); bad {
		t.Fatalf("mildly scaled payload rejected: %s", reason)
	}
	if _, bad := adv.Suspect(mk(-1), tpl); !bad {
		t.Fatal("sign-flipped payload passed the cosine gate")
	}
	if _, bad := adv.Suspect(mk(9), tpl); !bad {
		t.Fatal("9x-scaled payload passed the norm gate")
	}
	if _, bad := adv.Suspect(mk(1.0/9), tpl); !bad {
		t.Fatal("shrunk payload passed the symmetric norm gate")
	}
	zero := []*tensor.Matrix{tensor.New(2, 2)}
	if _, bad := adv.Suspect(zero, tpl); bad {
		t.Fatal("zero-norm payload should pass (gates undefined)")
	}
	if _, bad := adv.Suspect(mk(-1), zero); bad {
		t.Fatal("zero-norm template should pass (gates undefined)")
	}
	off := NewAdversary(AdversaryPlan{Attackers: []Attacker{{Agent: 0, Attack: AttackSignFlip}}})
	if _, bad := off.Suspect(mk(-1), tpl); bad {
		t.Fatal("disabled defense rejected a payload")
	}
}

// TestAdversaryPayloads covers the perturbation engine: determinism,
// the active window, the sign-flip map, the noise amplitude, and the
// stale ring's fill/replay behavior.
func TestAdversaryPayloads(t *testing.T) {
	snapAt := func(v float64) []*tensor.Matrix {
		s := []*tensor.Matrix{tensor.New(1, 4)}
		for i := range s[0].Data {
			s[0].Data[i] = v + float64(i)
		}
		return s
	}
	plan := AdversaryPlan{
		Seed: 7,
		Attackers: []Attacker{
			{Agent: 0, Attack: AttackSignFlip, StartRound: 1, EndRound: 2},
			{Agent: 1, Attack: AttackNoise, Scale: 2},
			{Agent: 2, Attack: AttackStale, Lag: 1},
		},
	}
	adv := NewAdversary(plan)
	snap := snapAt(1)

	// Honest agent: payload is the snapshot itself, no copy.
	if got := adv.PayloadFor(3, "k", 0, snap); &got[0].Data[0] != &snap[0].Data[0] {
		t.Fatal("honest agent's payload should alias the snapshot")
	}
	// Windowed sign-flip: inactive at round 0 and 2, negated at round 1.
	if got := adv.PayloadFor(0, "k", 0, snap); &got[0].Data[0] != &snap[0].Data[0] {
		t.Fatal("attacker outside window should broadcast its snapshot")
	}
	got := adv.PayloadFor(0, "k", 1, snap)
	for i, v := range snap[0].Data {
		if got[0].Data[i] != -v {
			t.Fatalf("sign-flip element %d: %g, want %g", i, got[0].Data[i], -v)
		}
	}
	if got := adv.PayloadFor(0, "k", 2, snap); &got[0].Data[0] != &snap[0].Data[0] {
		t.Fatal("attacker past EndRound should broadcast its snapshot")
	}

	// Noise: deterministic across independent runtimes, varies by round,
	// and the snapshot itself is never touched.
	n1 := nn.CloneParams(adv.PayloadFor(1, "k", 3, snap))
	n2 := NewAdversary(plan).PayloadFor(1, "k", 3, snap)
	for i := range n1[0].Data {
		if n1[0].Data[i] != n2[0].Data[i] {
			t.Fatal("noise stream not deterministic across runtimes")
		}
	}
	n3 := adv.PayloadFor(1, "k", 4, snap)
	same := true
	for i := range n1[0].Data {
		if n1[0].Data[i] != n3[0].Data[i] {
			same = false
		}
	}
	if same {
		t.Fatal("noise identical across rounds")
	}
	for i, v := range snap[0].Data {
		if v != 1+float64(i) {
			t.Fatal("PayloadFor mutated the snapshot")
		}
	}

	// Stale: ring fills on round 0 (payload = snapshot), replays the
	// previous round's parameters from round 1 on.
	s0, s1, s2 := snapAt(10), snapAt(20), snapAt(30)
	if got := adv.PayloadFor(2, "k", 0, s0); got[0].Data[0] != 10 {
		t.Fatalf("stale round 0 should pass through, got %g", got[0].Data[0])
	}
	if got := adv.PayloadFor(2, "k", 1, s1); got[0].Data[0] != 10 {
		t.Fatalf("stale round 1 should replay round 0, got %g", got[0].Data[0])
	}
	if got := adv.PayloadFor(2, "k", 2, s2); got[0].Data[0] != 20 {
		t.Fatalf("stale round 2 should replay round 1, got %g", got[0].Data[0])
	}
	// Kinds keep independent rings.
	if got := adv.PayloadFor(2, "other", 0, s2); got[0].Data[0] != 30 {
		t.Fatal("fresh kind should still be filling its ring")
	}
}

// alignedMLPs builds a fleet the way real runs do — one shared init
// (core's InitSeed) plus small per-agent drift — so honest payloads sit
// at cosine ≈ 1 / norm ratio ≈ 1 against any receiver's reference and
// only the scripted attacks trip the gates.
func alignedMLPs(n int, seed int64) []*nn.Sequential {
	out := make([]*nn.Sequential, n)
	for i := range out {
		out[i] = nn.NewMLP(rand.New(rand.NewSource(seed)), 4, 6, 6, 2)
		drift := rand.New(rand.NewSource(seed + 100 + int64(i)))
		for _, p := range out[i].Params() {
			for k := range p.Data {
				p.Data[k] *= 1 + 0.02*drift.NormFloat64()
			}
		}
	}
	return out
}

// advRound runs one all-to-all round over a clean fabric with the given
// adversary attached and returns the report.
func advRound(t *testing.T, models []*nn.Sequential, adv *Adversary, x *wire.Exchange) RoundReport {
	t.Helper()
	net := fednet.New(len(models), fednet.Config{})
	ws := &RoundWorkspace{Adv: adv, Comms: x}
	rep, err := BeginDecentralizedRound(net, models, "w", -1, ws).Join()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestAdversaryRoundDetection runs poisoned rounds end to end on both
// wire planes and checks the per-round ByzantineRejected count lands
// exactly as DetectionsPerRound predicts, with honest aggregation
// continuing over the surviving payloads.
func TestAdversaryRoundDetection(t *testing.T) {
	const n = 4
	plan := AdversaryPlan{
		Seed: 11,
		Attackers: []Attacker{
			{Agent: 1, Attack: AttackSignFlip},
			{Agent: 2, Attack: AttackNoise, Scale: 8},
		},
		Defense: Defense{NormRatio: 4, CosineGate: true},
	}
	if err := plan.Validate(n); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		comms func() *wire.Exchange
	}{
		{"dense", func() *wire.Exchange { return nil }},
		{"compressed", func() *wire.Exchange { return wire.NewExchange(wire.Options{Level: wire.Delta}) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			models := alignedMLPs(n, 33)
			// Expected survivor mean per receiver: own snapshot + honest
			// peers' payloads (agents 1 and 2 rejected everywhere).
			snaps := make([][]*tensor.Matrix, n)
			for i, m := range models {
				snaps[i] = nn.CloneParams(m.Params())
			}
			want := make([][]*tensor.Matrix, n)
			for i := range models {
				want[i] = nn.CloneParams(snaps[i])
				sets := [][]*tensor.Matrix{snaps[i]}
				for j := range models {
					if j != i && j != 1 && j != 2 {
						sets = append(sets, snaps[j])
					}
				}
				nn.AverageParamSets(want[i], sets...)
			}
			rep := advRound(t, models, NewAdversary(plan), tc.comms())
			pred := plan.DetectionsPerRound(n, 0)
			if pred != 2*(n-1) {
				t.Fatalf("prediction sanity: %d, want %d", pred, 2*(n-1))
			}
			if rep.ByzantineRejected != pred {
				t.Fatalf("ByzantineRejected = %d, want %d", rep.ByzantineRejected, pred)
			}
			if !rep.Degraded() {
				t.Fatal("poisoned round should read as degraded")
			}
			// Honest receivers fold own + 1 honest peer; the attackers
			// additionally fold both honest peers (their own snapshots
			// are true, and they only reject each other).
			if rep.MinSets != 2 || rep.MaxSets != 3 {
				t.Fatalf("sets = [%d,%d], want [2,3]", rep.MinSets, rep.MaxSets)
			}
			for i, m := range models {
				for j, p := range m.Params() {
					for k := range p.Data {
						if math.Float64bits(p.Data[k]) != math.Float64bits(want[i][j].Data[k]) {
							t.Fatalf("agent %d param %d: aggregate differs from survivor mean", i, j)
						}
					}
				}
			}
		})
	}
}

// TestAdversaryNilIsInert pins the gating invariant behind the golden
// suite: a workspace with no adversary attached produces a bit-identical
// round to one with a plan that neither attacks nor defends.
func TestAdversaryNilIsInert(t *testing.T) {
	a, b := mlps(3, 5), mlps(3, 5)
	netA, netB := fednet.New(3, fednet.Config{}), fednet.New(3, fednet.Config{})
	repA, err := BeginDecentralizedRound(netA, a, "w", -1, &RoundWorkspace{}).Join()
	if err != nil {
		t.Fatal(err)
	}
	repB, err := BeginDecentralizedRound(netB, b, "w", -1, &RoundWorkspace{Adv: NewAdversary(AdversaryPlan{})}).Join()
	if err != nil {
		t.Fatal(err)
	}
	requireBitEqual(t, a, b, "empty-plan adversary")
	if repA.ByzantineRejected != 0 || repB.ByzantineRejected != 0 {
		t.Fatal("clean rounds recorded byzantine rejects")
	}
}

// TestAdversaryClusterUpload checks the cluster round screens poisoned
// member uploads at the aggregator.
func TestAdversaryClusterUpload(t *testing.T) {
	const n = 4
	models := alignedMLPs(n, 77)
	net := fednet.New(n, fednet.Config{Topology: fednet.Cluster, ClusterSize: 2})
	plan := AdversaryPlan{
		Attackers: []Attacker{{Agent: 1, Attack: AttackSignFlip}},
		Defense:   Defense{CosineGate: true},
	}
	if err := plan.Validate(n); err != nil {
		t.Fatal(err)
	}
	rep, err := ClusterRound(net, models, "w", -1, &RoundWorkspace{Adv: NewAdversary(plan)})
	if err != nil {
		t.Fatal(err)
	}
	// Agent 1 is a member (aggregators lead each cluster); only its own
	// aggregator sees — and rejects — the poisoned upload.
	if rep.ByzantineRejected != 1 {
		t.Fatalf("ByzantineRejected = %d, want 1", rep.ByzantineRejected)
	}
	if !rep.Degraded() {
		t.Fatal("poisoned cluster round should read as degraded")
	}
}

// TestAdversaryStaleSlipsThrough confirms the taxonomy's blind spot is
// real: a stale-replay attacker defeats both gates, so its (old, honest)
// parameters poison the mean silently.
func TestAdversaryStaleSlipsThrough(t *testing.T) {
	const n = 3
	models := alignedMLPs(n, 9)
	adv := NewAdversary(AdversaryPlan{
		Attackers: []Attacker{{Agent: 0, Attack: AttackStale, Lag: 1}},
		Defense:   Defense{NormRatio: 4, CosineGate: true},
	})
	rng := rand.New(rand.NewSource(4))
	for round := 0; round < 3; round++ {
		rep := advRound(t, models, adv, nil)
		if rep.ByzantineRejected != 0 {
			t.Fatalf("round %d: stale replay was detected (%d rejects)", round, rep.ByzantineRejected)
		}
		if rep.MinSets != n {
			t.Fatalf("round %d: MinSets = %d, want %d (nothing rejected)", round, rep.MinSets, n)
		}
		// Drift the fleet so successive snapshots differ and the replay
		// is genuinely stale.
		for _, m := range models {
			for _, p := range m.Params() {
				for i := range p.Data {
					p.Data[i] += 0.01 * rng.NormFloat64()
				}
			}
		}
	}
	if got := adv.RoundsRun("w"); got != 3 {
		t.Fatalf("RoundsRun = %d, want 3", got)
	}
}
