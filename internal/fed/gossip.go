package fed

import (
	"fmt"
	"strings"

	"repro/internal/fednet"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// GossipRound performs one neighborhood-averaging step over a Ring
// network: every agent broadcasts its base parameters to its two ring
// neighbors and replaces them with the mean of {own, received}. One round
// moves O(n) messages (vs O(n²) for DecentralizedRound); information
// diffuses around the ring, so repeated rounds converge geometrically to
// the global mean while each round leaves agents *locally* smoothed.
//
// This is the standard gossip-averaging alternative to the paper's
// all-to-all broadcast; the topology ablation bench compares the two.
// alpha selects the shared trainable-layer prefix as in DecentralizedRound.
//
// The round degrades the same way DecentralizedRound does: corrupt or
// diverged neighbor sets are quarantined into the report, crashed agents
// sit the round out, and an agent averaging zero sets keeps its current
// parameters. The round still completes for every other agent in that
// case; the returned error then names each starved agent and itemizes
// exactly which senders and kinds were rejected and why.
func GossipRound(net *fednet.Network, models []*nn.Sequential, kind string, alpha int) (RoundReport, error) {
	var rep RoundReport
	if net.Config().Topology != fednet.Ring {
		return rep, fmt.Errorf("fed: GossipRound requires a ring network, have %v", net.Config().Topology)
	}
	if net.N() != len(models) {
		return rep, fmt.Errorf("fed: %d models for %d network agents", len(models), net.N())
	}
	n := len(models)
	if n == 1 {
		return RoundReport{Agents: 1, MinSets: 1, MaxSets: 1}, nil
	}
	rep.PartialExchange = true
	live := make([]bool, n)
	for i := range models {
		if net.AgentDown(i) {
			rep.Crashed++
			continue
		}
		live[i] = true
		rep.Agents++
	}
	st0 := net.Stats()
	snaps := make([][]*tensor.Matrix, n)
	for i, m := range models {
		if !live[i] {
			continue
		}
		snaps[i] = nn.CloneParams(baseParams(m, alpha))
		if err := net.Broadcast(i, kind, MarshalParams(snaps[i])); err != nil {
			return rep, err
		}
	}
	st := net.Stats()
	rep.BytesSent = st.BytesSent - st0.BytesSent
	rep.Messages = st.MessagesSent - st0.MessagesSent
	rep.DenseBytes = rep.BytesSent
	var starved []int
	for i, m := range models {
		if !live[i] {
			continue
		}
		base := baseParams(m, alpha)
		inbox := net.Collect(i)
		for _, msg := range inbox {
			if msg.Kind == kind {
				rep.BytesReceived += int64(len(msg.Payload))
			}
		}
		sets := rep.collectFrom(inbox, i, base, kind, snaps[i], nil)
		rep.countSets(nn.AverageParamSets(base, sets...))
		if len(sets) == 0 {
			starved = append(starved, i)
		}
	}
	if len(starved) > 0 {
		msgs := make([]string, len(starved))
		for si, i := range starved {
			msgs[si] = fmt.Sprintf("agent %d averaged zero sets — %s", i, rep.rejectsFor(i))
		}
		return rep, fmt.Errorf("fed: gossip round (kind %q) starved %d of %d agents (%s): %w",
			kind, len(starved), rep.Agents, strings.Join(msgs, " | "), ErrRoundStarved)
	}
	return rep, nil
}

// GossipDisagreement measures how far a model fleet is from consensus: the
// maximum over agents of the L2 distance between an agent's base parameters
// and the fleet mean, normalized by the mean's norm. Tests and ablations
// use it to track gossip convergence.
func GossipDisagreement(models []*nn.Sequential, alpha int) float64 {
	n := len(models)
	if n == 0 {
		return 0
	}
	mean := nn.CloneParams(baseParams(models[0], alpha))
	sets := make([][]*tensor.Matrix, n)
	for i, m := range models {
		sets[i] = nn.CloneParams(baseParams(m, alpha))
	}
	nn.AverageParamSets(mean, sets...)
	meanNorm := 0.0
	for _, p := range mean {
		v := p.Norm2()
		meanNorm += v * v
	}
	if meanNorm == 0 {
		meanNorm = 1
	}
	worst := 0.0
	for _, set := range sets {
		d := 0.0
		for pi, p := range set {
			diff := tensor.Sub(p, mean[pi])
			v := diff.Norm2()
			d += v * v
		}
		if d > worst {
			worst = d
		}
	}
	return worst / meanNorm
}
