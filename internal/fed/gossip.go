package fed

import (
	"fmt"

	"repro/internal/fednet"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// GossipRound performs one neighborhood-averaging step over a Ring
// network: every agent broadcasts its base parameters to its two ring
// neighbors and replaces them with the mean of {own, received}. One round
// moves O(n) messages (vs O(n²) for DecentralizedRound); information
// diffuses around the ring, so repeated rounds converge geometrically to
// the global mean while each round leaves agents *locally* smoothed.
//
// This is the standard gossip-averaging alternative to the paper's
// all-to-all broadcast; the topology ablation bench compares the two.
// alpha selects the shared trainable-layer prefix as in DecentralizedRound.
func GossipRound(net *fednet.Network, models []*nn.Sequential, kind string, alpha int) error {
	if net.Config().Topology != fednet.Ring {
		return fmt.Errorf("fed: GossipRound requires a ring network, have %v", net.Config().Topology)
	}
	if net.N() != len(models) {
		return fmt.Errorf("fed: %d models for %d network agents", len(models), net.N())
	}
	n := len(models)
	if n == 1 {
		return nil
	}
	snaps := make([][]*tensor.Matrix, n)
	for i, m := range models {
		snaps[i] = nn.CloneParams(baseParams(m, alpha))
		if err := net.Broadcast(i, kind, MarshalParams(snaps[i])); err != nil {
			return err
		}
	}
	for i, m := range models {
		base := baseParams(m, alpha)
		sets := [][]*tensor.Matrix{snaps[i]}
		for _, msg := range net.Collect(i) {
			if msg.Kind != kind {
				continue
			}
			got, err := UnmarshalParamsLike(base, msg.Payload)
			if err != nil {
				return fmt.Errorf("fed: gossip agent %d from %d: %w", i, msg.From, err)
			}
			sets = append(sets, got)
		}
		if nn.AverageParamSets(base, sets...) == 0 {
			return fmt.Errorf("fed: gossip agent %d had every set rejected", i)
		}
	}
	return nil
}

// GossipDisagreement measures how far a model fleet is from consensus: the
// maximum over agents of the L2 distance between an agent's base parameters
// and the fleet mean, normalized by the mean's norm. Tests and ablations
// use it to track gossip convergence.
func GossipDisagreement(models []*nn.Sequential, alpha int) float64 {
	n := len(models)
	if n == 0 {
		return 0
	}
	mean := nn.CloneParams(baseParams(models[0], alpha))
	sets := make([][]*tensor.Matrix, n)
	for i, m := range models {
		sets[i] = nn.CloneParams(baseParams(m, alpha))
	}
	nn.AverageParamSets(mean, sets...)
	meanNorm := 0.0
	for _, p := range mean {
		v := p.Norm2()
		meanNorm += v * v
	}
	if meanNorm == 0 {
		meanNorm = 1
	}
	worst := 0.0
	for _, set := range sets {
		d := 0.0
		for pi, p := range set {
			diff := tensor.Sub(p, mean[pi])
			v := diff.Norm2()
			d += v * v
		}
		if d > worst {
			worst = d
		}
	}
	return worst / meanNorm
}
