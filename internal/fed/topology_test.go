package fed

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/fednet"
	"repro/internal/nn"
	"repro/internal/wire"
)

// driftFleets applies one identical Gaussian perturbation to every twin
// fleet, keeping twins bit-aligned while giving successive rounds
// non-trivial parameters to exchange.
func driftFleets(rng *rand.Rand, fleets ...[]*nn.Sequential) {
	n := len(fleets[0])
	for i := 0; i < n; i++ {
		first := fleets[0][i].Params()
		for j := range first {
			for k := range first[j].Data {
				d := rng.NormFloat64() * 0.05
				for _, fleet := range fleets {
					fleet[i].Params()[j].Data[k] += d
				}
			}
		}
	}
}

// TestTopologyTwinFleetBitIdentity is the determinism suite the issue
// pins: two independently constructed fleets with the same seed must
// produce bit-identical post-round parameters and identical reports,
// round after round, for both new topologies and on every comms plane
// (dense PFP1, lossless Delta, lossy TopK). Sampling, routing, and the
// codec reference chains are all functions of the seed, so nothing may
// diverge.
func TestTopologyTwinFleetBitIdentity(t *testing.T) {
	topologies := []struct {
		name string
		cfg  fednet.Config
		run  func(net *fednet.Network, models []*nn.Sequential, ws *RoundWorkspace) (RoundReport, error)
	}{
		{
			name: "sampled",
			cfg:  fednet.Config{Topology: fednet.Sampled, SampleK: 3, Seed: 1},
			run: func(net *fednet.Network, models []*nn.Sequential, ws *RoundWorkspace) (RoundReport, error) {
				return BeginSampledGossipRound(net, models, "m", -1, ws).Join()
			},
		},
		{
			name: "cluster",
			cfg:  fednet.Config{Topology: fednet.Cluster, ClusterSize: 3, Seed: 1},
			run: func(net *fednet.Network, models []*nn.Sequential, ws *RoundWorkspace) (RoundReport, error) {
				return ClusterRound(net, models, "m", -1, ws)
			},
		},
	}
	planes := []struct {
		name string
		opts *wire.Options
	}{
		{name: "pfp1-dense", opts: nil},
		{name: "delta", opts: &wire.Options{Level: wire.Delta}},
		{name: "topk", opts: &wire.Options{Level: wire.TopK, TopKFrac: 0.2}},
	}
	for _, topo := range topologies {
		for _, plane := range planes {
			t.Run(topo.name+"/"+plane.name, func(t *testing.T) {
				const n, rounds = 9, 3
				modelsA, modelsB := mlps(n, 40), mlps(n, 40)
				netA, netB := fednet.New(n, topo.cfg), fednet.New(n, topo.cfg)
				wsA, wsB := &RoundWorkspace{}, &RoundWorkspace{}
				if plane.opts != nil {
					wsA.Comms = wire.NewExchange(*plane.opts)
					wsB.Comms = wire.NewExchange(*plane.opts)
				}
				rng := rand.New(rand.NewSource(99))
				for r := 0; r < rounds; r++ {
					repA, errA := topo.run(netA, modelsA, wsA)
					repB, errB := topo.run(netB, modelsB, wsB)
					if errA != nil || errB != nil {
						t.Fatalf("round %d: errors %v / %v", r, errA, errB)
					}
					requireBitEqual(t, modelsA, modelsB, topo.name+"/"+plane.name)
					if !reflect.DeepEqual(repA, repB) {
						t.Fatalf("round %d report mismatch:\nA %+v\nB %+v", r, repA, repB)
					}
					if repA.Degraded() {
						t.Fatalf("round %d degraded on a clean fabric: %+v", r, repA)
					}
					driftFleets(rng, modelsA, modelsB)
				}
			})
		}
	}
}

// TestTopologyCompressedMatchesDense extends the comms twin-fleet pattern
// to the new topologies: the lossless Delta plane must stay bit-identical
// to the dense PFP1 plane round after round — sampled gossip through the
// streaming fold, cluster aggregation through every hop's codec chain —
// and the compressed round's DenseBytes baseline must equal what the
// dense twin actually paid.
func TestTopologyCompressedMatchesDense(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  fednet.Config
		run  func(net *fednet.Network, models []*nn.Sequential, ws *RoundWorkspace) (RoundReport, error)
	}{
		{
			name: "sampled",
			cfg:  fednet.Config{Topology: fednet.Sampled, SampleK: 2, Seed: 7},
			run: func(net *fednet.Network, models []*nn.Sequential, ws *RoundWorkspace) (RoundReport, error) {
				return BeginSampledGossipRound(net, models, "m", -1, ws).Join()
			},
		},
		{
			name: "cluster",
			cfg:  fednet.Config{Topology: fednet.Cluster, ClusterSize: 2, Seed: 7},
			run: func(net *fednet.Network, models []*nn.Sequential, ws *RoundWorkspace) (RoundReport, error) {
				return ClusterRound(net, models, "m", -1, ws)
			},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const n, rounds = 6, 3
			denseModels, wireModels := mlps(n, 41), mlps(n, 41)
			denseNet, wireNet := fednet.New(n, tc.cfg), fednet.New(n, tc.cfg)
			denseWS := &RoundWorkspace{}
			wireWS := &RoundWorkspace{Comms: wire.NewExchange(wire.Options{Level: wire.Delta})}
			rng := rand.New(rand.NewSource(98))
			for r := 0; r < rounds; r++ {
				wantRep, err := tc.run(denseNet, denseModels, denseWS)
				if err != nil {
					t.Fatal(err)
				}
				gotRep, err := tc.run(wireNet, wireModels, wireWS)
				if err != nil {
					t.Fatal(err)
				}
				requireBitEqual(t, denseModels, wireModels, tc.name)
				if want, got := stripVolatile(wantRep), stripVolatile(gotRep); !reflect.DeepEqual(want, got) {
					t.Fatalf("round %d report mismatch:\ndense      %+v\ncompressed %+v", r, want, got)
				}
				if gotRep.DenseBytes != wantRep.BytesSent {
					t.Fatalf("round %d: DenseBytes %d != dense twin BytesSent %d", r, gotRep.DenseBytes, wantRep.BytesSent)
				}
				driftFleets(rng, denseModels, wireModels)
			}
		})
	}
}

// TestTopologyMessageComplexity pins the per-round message counts the
// whole tentpole exists to change, swept over fleet sizes: N·k for
// sampled gossip and N + C·(C−1) for cluster aggregation (every cluster
// multi-member, so the C′ downloads and N−C uploads recombine to N),
// against the all-to-all N·(N−1) baseline. The RoundReport counts must
// also agree with fednet's closed-form RoundMessages.
func TestTopologyMessageComplexity(t *testing.T) {
	const k, clusterSize = 3, 4
	for _, n := range []int{4, 16, 64} {
		models := mlps(n, int64(50+n))

		sampledNet := fednet.New(n, fednet.Config{Topology: fednet.Sampled, SampleK: k, Seed: 1})
		rep, err := SampledGossipRound(sampledNet, models, "m", -1)
		if err != nil {
			t.Fatal(err)
		}
		if want := n * k; rep.Messages != want || sampledNet.RoundMessages() != want {
			t.Fatalf("n=%d sampled: %d messages (closed form %d), want N·k = %d",
				n, rep.Messages, sampledNet.RoundMessages(), want)
		}

		clusterNet := fednet.New(n, fednet.Config{Topology: fednet.Cluster, ClusterSize: clusterSize, Seed: 1})
		rep, err = ClusterRound(clusterNet, models, "m", -1, nil)
		if err != nil {
			t.Fatal(err)
		}
		c := (n + clusterSize - 1) / clusterSize
		if want := n + c*(c-1); rep.Messages != want || clusterNet.RoundMessages() != want {
			t.Fatalf("n=%d cluster: %d messages (closed form %d), want N + C(C−1) = %d",
				n, rep.Messages, clusterNet.RoundMessages(), want)
		}

		flatNet := fednet.New(n, fednet.Config{Seed: 1})
		rep, err = DecentralizedRound(flatNet, models, "m", -1)
		if err != nil {
			t.Fatal(err)
		}
		if want := n * (n - 1); rep.Messages != want {
			t.Fatalf("n=%d all-to-all: %d messages, want N(N−1) = %d", n, rep.Messages, want)
		}
	}
}

// TestTopologyConvergence is the convergence regression: per-layer
// parameter spread (the gossip disagreement metric) must shrink
// monotonically within tolerance under repeated rounds and cross a fixed
// threshold within a pinned number of rounds for seed 1. Cluster
// aggregation with equal-size clusters installs the exact global mean
// everywhere, so it is pinned to converge in a single round; sampled
// gossip contracts geometrically through changing random graphs.
func TestTopologyConvergence(t *testing.T) {
	const n, threshold, tolerance = 16, 1e-3, 1.05
	for _, tc := range []struct {
		name   string
		cfg    fednet.Config
		run    func(net *fednet.Network, models []*nn.Sequential) (RoundReport, error)
		pinned int // golden: first round (1-based) with spread < threshold, seed 1
	}{
		{
			name: "sampled",
			cfg:  fednet.Config{Topology: fednet.Sampled, SampleK: 4, Seed: 1},
			run: func(net *fednet.Network, models []*nn.Sequential) (RoundReport, error) {
				return SampledGossipRound(net, models, "m", -1)
			},
			pinned: 7,
		},
		{
			name: "cluster",
			cfg:  fednet.Config{Topology: fednet.Cluster, ClusterSize: 4, Seed: 1},
			run: func(net *fednet.Network, models []*nn.Sequential) (RoundReport, error) {
				return ClusterRound(net, models, "m", -1, nil)
			},
			pinned: 1,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			models := mlps(n, 1)
			net := fednet.New(n, tc.cfg)
			prev := GossipDisagreement(models, -1)
			if prev < threshold {
				t.Fatalf("fleet starts converged (spread %g); test is vacuous", prev)
			}
			crossed := 0
			for r := 1; r <= tc.pinned+3; r++ {
				if _, err := tc.run(net, models); err != nil {
					t.Fatal(err)
				}
				spread := GossipDisagreement(models, -1)
				// Monotonicity is only meaningful above the numerical floor:
				// once the fleet agrees to rounding error, the metric jitters.
				if prev >= threshold && spread > prev*tolerance {
					t.Fatalf("round %d: spread rose %g -> %g (tolerance ×%v)", r, prev, spread, tolerance)
				}
				if crossed == 0 && spread < threshold {
					crossed = r
				}
				prev = spread
			}
			if crossed != tc.pinned {
				t.Fatalf("spread crossed %g at round %d, golden-pinned %d for seed 1", threshold, crossed, tc.pinned)
			}
		})
	}
}

// TestClusterRoundExactMean pins the estimator: with equal-size clusters
// on a clean fabric, the mean of cluster means is the global mean, so a
// single cluster round must land every agent (members via the download,
// aggregators via the global reduce) on the same parameters the flat
// all-to-all round computes — up to the reduction-order rounding of the
// two-level fold.
func TestClusterRoundExactMean(t *testing.T) {
	const n = 8
	clusterModels, flatModels := mlps(n, 60), mlps(n, 60)
	clusterNet := fednet.New(n, fednet.Config{Topology: fednet.Cluster, ClusterSize: 4})
	flatNet := fednet.New(n, fednet.Config{})
	if _, err := ClusterRound(clusterNet, clusterModels, "m", -1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := DecentralizedRound(flatNet, flatModels, "m", -1); err != nil {
		t.Fatal(err)
	}
	// All agents agree exactly after one cluster round...
	for i := 1; i < n; i++ {
		pa, pb := clusterModels[0].Params(), clusterModels[i].Params()
		for j := range pa {
			for k := range pa[j].Data {
				if math.Float64bits(pa[j].Data[k]) != math.Float64bits(pb[j].Data[k]) {
					t.Fatalf("agents 0 and %d disagree after one cluster round", i)
				}
			}
		}
	}
	// ...and sit within fold-order rounding of the flat global mean.
	for j, p := range clusterModels[0].Params() {
		for k := range p.Data {
			want := flatModels[0].Params()[j].Data[k]
			if diff := math.Abs(p.Data[k] - want); diff > 1e-12*math.Max(1, math.Abs(want)) {
				t.Fatalf("param %d elem %d: cluster mean %g vs flat mean %g", j, k, p.Data[k], want)
			}
		}
	}
}

// TestSampledGossipRequiresTopology checks the structural guard: running
// the sampled round against a non-sampled fabric is misuse, reported as
// an error, not degradation.
func TestSampledGossipRequiresTopology(t *testing.T) {
	models := mlps(4, 70)
	net := fednet.New(4, fednet.Config{})
	if _, err := SampledGossipRound(net, models, "m", -1); err == nil {
		t.Fatal("sampled round over all-to-all fabric did not error")
	}
	clusterNet := fednet.New(4, fednet.Config{Topology: fednet.Cluster, ClusterSize: 2})
	if _, err := BeginSampledGossipRound(clusterNet, models, "m", -1, nil).Join(); err == nil {
		t.Fatal("sampled round over cluster fabric did not error")
	}
	if _, err := ClusterRound(net, models, "m", -1, nil); err == nil {
		t.Fatal("cluster round over all-to-all fabric did not error")
	}
	if _, err := ClusterRound(net, models[:3], "m", -1, nil); err == nil {
		t.Fatal("cluster round with model-count mismatch did not error")
	}
}
