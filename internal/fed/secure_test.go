package fed

import (
	"math"
	"testing"

	"repro/internal/fednet"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestSecureRoundMatchesPlainAverage(t *testing.T) {
	n := 4
	plain := mlps(n, 200)
	secure := mlps(n, 200) // identical initialization

	netA := fednet.New(n, fednet.Config{})
	if _, err := DecentralizedRound(netA, plain, "m", -1); err != nil {
		t.Fatal(err)
	}
	netB := fednet.New(n, fednet.Config{})
	if err := SecureDecentralizedRound(netB, secure, "m", -1, 12345); err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		pp, ps := plain[i].Params(), secure[i].Params()
		for j := range pp {
			if !pp[j].AlmostEqual(ps[j], 1e-9) {
				t.Fatalf("agent %d param %d: secure mean diverges from plain mean", i, j)
			}
		}
	}
}

// TestSecurePayloadsHideParameters verifies the privacy property the
// protocol exists for: what travels on the wire is statistically unrelated
// to the sender's raw parameters.
func TestSecurePayloadsHideParameters(t *testing.T) {
	n := 3
	models := mlps(n, 300)
	raw := nn.CloneParams(models[1].Params())

	net := fednet.New(n, fednet.Config{})
	if err := SecureDecentralizedRound(net, models, "m", -1, 777); err != nil {
		t.Fatal(err)
	}
	// Reconstruct what agent 1 broadcast by replaying the masking, and
	// check it is far from the raw parameters (masks are ~N(0, 100²)).
	flatRaw := nn.FlattenParams(raw)
	// The wire payload was consumed; instead verify indirectly: masks have
	// magnitude ~maskStd, so a masked payload differs from raw by a large
	// norm. We regenerate one pair mask and check its scale.
	mask := make([]float64, len(flatRaw))
	pairMask(777, 1, 2, mask)
	var norm float64
	for _, v := range mask {
		norm += v * v
	}
	norm = math.Sqrt(norm / float64(len(mask)))
	if norm < maskStd/2 {
		t.Fatalf("mask RMS %v too small to hide O(1) parameters", norm)
	}
}

func TestPairMaskSymmetricAndSigned(t *testing.T) {
	a := make([]float64, 16)
	b := make([]float64, 16)
	pairMask(9, 2, 5, a)
	pairMask(9, 5, 2, b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("pair mask not symmetric in endpoints")
		}
	}
	if maskSign(2, 5) != 1 || maskSign(5, 2) != -1 {
		t.Fatal("mask signs wrong")
	}
	// Different nonce, different mask.
	c := make([]float64, 16)
	pairMask(10, 2, 5, c)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("nonce does not vary the mask")
	}
}

func TestSecureRoundFailsOnDrops(t *testing.T) {
	n := 4
	models := mlps(n, 400)
	net := fednet.New(n, fednet.Config{DropProb: 0.5, Seed: 2})
	if err := SecureDecentralizedRound(net, models, "m", -1, 1); err == nil {
		t.Fatal("secure round must fail loudly under message loss")
	}
}

func TestSecureRoundSingleAgentAndMismatch(t *testing.T) {
	if err := SecureDecentralizedRound(fednet.New(1, fednet.Config{}), mlps(1, 1), "m", -1, 1); err != nil {
		t.Fatalf("single agent: %v", err)
	}
	if err := SecureDecentralizedRound(fednet.New(3, fednet.Config{}), mlps(2, 1), "m", -1, 1); err == nil {
		t.Fatal("model-count mismatch accepted")
	}
}

func TestSecureRoundWithAlphaSplit(t *testing.T) {
	n := 3
	alpha := 1
	models := mlps(n, 500)
	personalBefore := make([][]*tensor.Matrix, n)
	for i, m := range models {
		personalBefore[i] = nn.CloneParams(m.ParamsOfTrainableRange(alpha, m.NumTrainableLayers()))
	}
	net := fednet.New(n, fednet.Config{})
	if err := SecureDecentralizedRound(net, models, "drl", alpha, 42); err != nil {
		t.Fatal(err)
	}
	// Base layers converged, personal layers untouched.
	a := models[0].ParamsOfTrainableRange(0, alpha)
	b := models[1].ParamsOfTrainableRange(0, alpha)
	for j := range a {
		if !a[j].AlmostEqual(b[j], 1e-9) {
			t.Fatal("secure base layers did not converge")
		}
	}
	for i, m := range models {
		after := m.ParamsOfTrainableRange(alpha, m.NumTrainableLayers())
		for j := range after {
			if !after[j].Equal(personalBefore[i][j]) {
				t.Fatal("secure round touched personalization layers")
			}
		}
	}
}
