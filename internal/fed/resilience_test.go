package fed

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/fednet"
	"repro/internal/nn"
)

func TestChecksumTamperRejected(t *testing.T) {
	m := mlps(1, 3)[0]
	blob := MarshalParams(m.Params())
	if len(blob) <= WireOverhead {
		t.Fatal("blob too small")
	}
	// Flip one bit in the body: the CRC must catch it.
	tampered := append([]byte(nil), blob...)
	tampered[WireOverhead+5] ^= 0x10
	if _, err := UnmarshalParamsLike(m.Params(), tampered); err == nil ||
		!strings.Contains(err.Error(), "checksum") {
		t.Fatalf("tampered body not rejected as checksum failure: %v", err)
	}
	// Damage the magic: rejected as a framing error.
	tampered = append([]byte(nil), blob...)
	tampered[0] ^= 0xFF
	if _, err := UnmarshalParamsLike(m.Params(), tampered); err == nil {
		t.Fatal("damaged magic accepted")
	}
}

func TestDecentralizedRoundCorruptRejected(t *testing.T) {
	n := 3
	models := mlps(n, 20)
	before := make([][]float64, 0)
	for _, m := range models {
		for _, p := range m.Params() {
			before = append(before, append([]float64(nil), p.Data...))
		}
	}
	net := fednet.New(n, fednet.Config{Faults: fednet.FaultPlan{CorruptProb: 1, Seed: 5}})
	rep, err := DecentralizedRound(net, models, "m", -1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CorruptRejected != n*(n-1) {
		t.Fatalf("CorruptRejected = %d, want %d", rep.CorruptRejected, n*(n-1))
	}
	if rep.MinSets != 1 || rep.MaxSets != 1 || !rep.Degraded() {
		t.Fatalf("report %+v, want every agent reduced to its own snapshot", rep)
	}
	if len(rep.Rejects) != n*(n-1) {
		t.Fatalf("%d reject records, want %d", len(rep.Rejects), n*(n-1))
	}
	// Averaging only your own snapshot is the identity: no model moves.
	i := 0
	for _, m := range models {
		for _, p := range m.Params() {
			for k, v := range p.Data {
				if v != before[i][k] {
					t.Fatal("model changed despite all peer sets rejected")
				}
			}
			i++
		}
	}
}

func TestDecentralizedRoundCrashSkip(t *testing.T) {
	n := 3
	models := mlps(n, 30)
	crashedBefore := nn.CloneParams(models[1].Params())
	net := fednet.New(n, fednet.Config{
		Faults: fednet.FaultPlan{Crashes: []fednet.CrashWindow{{Agent: 1, StartMin: 0, EndMin: 60}}},
	})
	rep, err := DecentralizedRound(net, models, "m", -1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashed != 1 || rep.Agents != n-1 {
		t.Fatalf("report %+v, want 1 crashed of %d", rep, n)
	}
	// Live agents average over the live subset only.
	if rep.MinSets != n-1 || rep.MaxSets != n-1 {
		t.Fatalf("live agents saw [%d,%d] sets, want %d", rep.MinSets, rep.MaxSets, n-1)
	}
	for i, p := range models[1].Params() {
		if !p.Equal(crashedBefore[i]) {
			t.Fatal("crashed agent's model was modified")
		}
	}
}

func TestCentralizedRoundCrashedHub(t *testing.T) {
	n := 3
	models := mlps(n, 40)
	before := nn.CloneParams(models[0].Params())
	net := fednet.New(n, fednet.Config{
		Topology: fednet.Star,
		Faults:   fednet.FaultPlan{Crashes: []fednet.CrashWindow{{Agent: 0, StartMin: 0, EndMin: 60}}},
	})
	rep, err := CentralizedRound(net, models, "m", -1, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashed != 1 {
		t.Fatalf("report %+v, want crashed hub recorded", rep)
	}
	for i, p := range models[0].Params() {
		if !p.Equal(before[i]) {
			t.Fatal("crashed hub's model was modified")
		}
	}
}

// TestGossipStarvedErrorNamesAgents pins the (previously opaque) starved-
// round error: it must name each starved agent, itemize the rejected
// senders/kinds with reasons, and wrap ErrRoundStarved for errors.Is.
func TestGossipStarvedErrorNamesAgents(t *testing.T) {
	n := 3
	models := mlps(n, 50)
	// Agent 0's own snapshot is poisoned with NaN and every received
	// payload is corrupted: agent 0 ends the round with zero valid sets.
	models[0].Params()[0].Data[0] = nan()
	net := fednet.New(n, fednet.Config{
		Topology: fednet.Ring,
		Faults:   fednet.FaultPlan{CorruptProb: 1, Seed: 6},
	})
	rep, err := GossipRound(net, models, "drl", -1)
	if err == nil {
		t.Fatal("starved round returned nil error")
	}
	if !errors.Is(err, ErrRoundStarved) {
		t.Fatalf("error does not wrap ErrRoundStarved: %v", err)
	}
	msg := err.Error()
	for _, want := range []string{"agent 0", "drl", "checksum"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("starved error %q missing %q", msg, want)
		}
	}
	if rep.NaNRejected == 0 || rep.CorruptRejected == 0 {
		t.Fatalf("report %+v, want NaN and corrupt rejects recorded", rep)
	}
}

func nan() float64 {
	zero := 0.0
	return zero / zero
}

// TestGossipConvergesUnderFaults is the convergence-under-faults property
// test: ring gossip with 20% message drops, a 2-attempt retry policy, and
// one agent fully partitioned for a window must still drive the fleet
// disagreement monotonically (modulo bounded noise) toward zero.
func TestGossipConvergesUnderFaults(t *testing.T) {
	n := 6
	models := mlps(n, 60)
	net := fednet.New(n, fednet.Config{
		Topology: fednet.Ring,
		DropProb: 0.2,
		Seed:     7,
		Retry:    fednet.RetryPolicy{MaxAttempts: 2},
		Faults: fednet.FaultPlan{
			Seed: 8,
			// Sever both ring links of agent 0 for rounds [10, 30): a
			// fully isolated agent that must re-join consensus afterward.
			Partitions: []fednet.Partition{
				{A: 0, B: 1, StartMin: 10, EndMin: 30},
				{A: 0, B: n - 1, StartMin: 10, EndMin: 30},
			},
		},
	})
	start := GossipDisagreement(models, -1)
	if start == 0 {
		t.Fatal("fleet starts in consensus; test is vacuous")
	}
	prev := start
	const rounds = 80
	for round := 0; round < rounds; round++ {
		net.SetNow(round) // one simulated minute per round
		if _, err := GossipRound(net, models, "m", -1); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		cur := GossipDisagreement(models, -1)
		// Drops and the partition may stall progress for a round, but
		// disagreement must never blow up.
		if cur > prev*1.35 && cur > start/100 {
			t.Fatalf("round %d: disagreement jumped %.3g -> %.3g", round, prev, cur)
		}
		prev = cur
	}
	final := GossipDisagreement(models, -1)
	if final > start/20 {
		t.Fatalf("after %d faulty rounds disagreement %.3g (start %.3g): not converging", rounds, final, start)
	}
}
