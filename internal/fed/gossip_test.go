package fed

import (
	"testing"

	"repro/internal/fednet"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestGossipRoundRequiresRing(t *testing.T) {
	if _, err := GossipRound(fednet.New(3, fednet.Config{}), mlps(3, 1), "m", -1); err == nil {
		t.Fatal("non-ring network accepted")
	}
	if _, err := GossipRound(fednet.New(3, fednet.Config{Topology: fednet.Ring}), mlps(2, 1), "m", -1); err == nil {
		t.Fatal("model-count mismatch accepted")
	}
}

func TestGossipConvergesToGlobalMean(t *testing.T) {
	n := 6
	models := mlps(n, 600)
	// Global mean before gossip.
	want := nn.CloneParams(models[0].Params())
	sets := make([][]*tensor.Matrix, n)
	for i, m := range models {
		sets[i] = nn.CloneParams(m.Params())
	}
	nn.AverageParamSets(want, sets...)

	net := fednet.New(n, fednet.Config{Topology: fednet.Ring})
	before := GossipDisagreement(models, -1)
	var prev float64 = before
	for round := 0; round < 40; round++ {
		if _, err := GossipRound(net, models, "m", -1); err != nil {
			t.Fatal(err)
		}
		cur := GossipDisagreement(models, -1)
		if cur > prev*1.3 {
			t.Fatalf("round %d: disagreement rose %v -> %v", round, prev, cur)
		}
		prev = cur
	}
	if prev > before/100 {
		t.Fatalf("gossip did not converge: disagreement %v -> %v", before, prev)
	}
	// Gossip averaging conserves the mean, so consensus == global mean.
	for i, m := range models {
		for j, p := range m.Params() {
			if !p.AlmostEqual(want[j], 1e-3) {
				t.Fatalf("agent %d param %d far from global mean after gossip", i, j)
			}
		}
	}
}

func TestGossipCheaperPerRoundThanBroadcast(t *testing.T) {
	n := 8
	ring := fednet.New(n, fednet.Config{Topology: fednet.Ring})
	full := fednet.New(n, fednet.Config{})
	mr := mlps(n, 700)
	mf := mlps(n, 700)
	if _, err := GossipRound(ring, mr, "m", -1); err != nil {
		t.Fatal(err)
	}
	if _, err := DecentralizedRound(full, mf, "m", -1); err != nil {
		t.Fatal(err)
	}
	if ring.Stats().MessagesSent >= full.Stats().MessagesSent {
		t.Fatalf("ring round %d msgs should undercut all-to-all %d",
			ring.Stats().MessagesSent, full.Stats().MessagesSent)
	}
	if ring.Stats().MessagesSent != 2*n {
		t.Fatalf("ring round sent %d msgs, want %d", ring.Stats().MessagesSent, 2*n)
	}
}

func TestRingTopologyRules(t *testing.T) {
	nw := fednet.New(5, fednet.Config{Topology: fednet.Ring})
	if err := nw.Send(0, 2, "k", nil); err == nil {
		t.Fatal("non-adjacent send accepted")
	}
	if err := nw.Send(0, 1, "k", nil); err != nil {
		t.Fatalf("adjacent send rejected: %v", err)
	}
	if err := nw.Send(0, 4, "k", nil); err != nil {
		t.Fatalf("wrap-around send rejected: %v", err)
	}
	if err := nw.Broadcast(2, "k", nil); err != nil {
		t.Fatal(err)
	}
	// Agent 1 holds the earlier 0→1 send plus 2's broadcast; agent 3 holds
	// only the broadcast; agents 0 and 4 are untouched by it.
	if nw.Pending(1) != 2 || nw.Pending(3) != 1 || nw.Pending(0) != 0 {
		t.Fatalf("ring broadcast delivery wrong: %d/%d/%d",
			nw.Pending(1), nw.Pending(3), nw.Pending(0))
	}
	if nw.Pending(4) != 1 { // from the earlier wrap-around send
		t.Fatal("wrap-around delivery missing")
	}
	two := fednet.New(2, fednet.Config{Topology: fednet.Ring})
	if err := two.Send(0, 1, "k", nil); err != nil {
		t.Fatalf("2-ring adjacency wrong: %v", err)
	}
}

func TestGossipDisagreementZeroForIdenticalFleet(t *testing.T) {
	models := mlps(3, 800)
	for i := 1; i < 3; i++ {
		models[i].CopyParamsFrom(models[0])
	}
	if d := GossipDisagreement(models, -1); d > 1e-20 {
		t.Fatalf("identical fleet disagreement %v", d)
	}
	if GossipDisagreement(nil, -1) != 0 {
		t.Fatal("empty fleet should be 0")
	}
}
