//go:build serve_smoke

// Package smoke boots the real pfdrl binary in service mode and drives
// its lifecycle end to end — the `make serve-smoke` gate: interrupt a
// batch run to produce a resumable seed snapshot, warm-start the daemon
// from it, hit every /v1 endpoint, retune a live knob, wait for a
// checkpoint rotation, SIGTERM it, and prove the final checkpoint
// resumes. Build-tagged out of the ordinary test run because it compiles
// and execs the binary.
package smoke

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
)

// repoRoot walks up from the working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above working directory")
		}
		dir = parent
	}
}

// buildBinary compiles cmd/pfdrl into dir and returns its path.
func buildBinary(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "pfdrl")
	build := exec.Command("go", "build", "-o", bin, "./cmd/pfdrl")
	build.Dir = repoRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building pfdrl: %v\n%s", err, out)
	}
	return bin
}

// lineWatcher scans a process's stdout, fanning matched lines to channels.
type lineWatcher struct {
	matches chan string
	re      *regexp.Regexp
}

func watchLines(r io.Reader, re *regexp.Regexp, echo *strings.Builder) *lineWatcher {
	w := &lineWatcher{matches: make(chan string, 16), re: re}
	sc := bufio.NewScanner(r)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if echo != nil {
				echo.WriteString(line + "\n")
			}
			if m := re.FindStringSubmatch(line); m != nil {
				w.matches <- m[len(m)-1]
			}
		}
		close(w.matches)
	}()
	return w
}

func (w *lineWatcher) wait(t *testing.T, what string) string {
	t.Helper()
	select {
	case m, ok := <-w.matches:
		if !ok {
			t.Fatalf("stdout closed before %s", what)
		}
		return m
	case <-time.After(2 * time.Minute):
		t.Fatalf("timed out waiting for %s", what)
	}
	return ""
}

// interruptBatchRun starts a long batch run and SIGINTs it once stepping
// has begun, returning the seed snapshot path. This is also the e2e check
// of the batch graceful-shutdown path: exit code 130, flushed journal,
// resumable snapshot.
func interruptBatchRun(t *testing.T, bin, dir string) string {
	t.Helper()
	seed := filepath.Join(dir, "seed.ckpt")
	journal := filepath.Join(dir, "run.jsonl")
	cmd := exec.Command(bin,
		"-homes", "2", "-devices", "2", "-days", "30", "-forecast", "LR",
		"-snapshot", seed, "-journal", journal,
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cmd.Process.Kill() }()

	// The banner prints before stepping starts; give the engine a moment
	// to get into the run (30 LR days take seconds), then interrupt.
	var echo strings.Builder
	w := watchLines(stdout, regexp.MustCompile(`^method=`), &echo)
	w.wait(t, "the batch run banner")
	time.Sleep(500 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	err = cmd.Wait()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 130 {
		t.Fatalf("interrupted batch run: err=%v, want exit code 130\nstdout:\n%s", err, echo.String())
	}
	if !strings.Contains(echo.String(), "interrupted at day") {
		t.Fatalf("no interruption banner in stdout:\n%s", echo.String())
	}

	// The journal flushed whole records despite the interruption.
	blob, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(blob)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("interrupted run flushed an empty journal")
	}
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("journal line %q: %v", line, err)
		}
	}

	// The seed snapshot resumes and is mid-run.
	eng := resumeFile(t, seed)
	if eng.Done() {
		t.Fatal("seed snapshot is already done; interruption landed too late")
	}
	t.Logf("seed snapshot at day %d hour %d, journal %d records", eng.Day(), eng.Hour(), len(lines))
	return seed
}

func resumeFile(t *testing.T, path string) *core.Engine {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	eng, err := core.ResumeEngine(f)
	if err != nil {
		t.Fatalf("resuming %s: %v", path, err)
	}
	return eng
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	var lastErr error
	for i := 0; i < 20; i++ {
		resp, err := http.Get(url)
		if err == nil {
			if resp.StatusCode == http.StatusOK {
				err = json.NewDecoder(resp.Body).Decode(into)
				resp.Body.Close()
				if err == nil {
					return
				}
				lastErr = err
			} else {
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				lastErr = fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, body)
			}
		} else {
			lastErr = err
		}
		time.Sleep(250 * time.Millisecond)
	}
	t.Fatalf("GET %s never succeeded: %v", url, lastErr)
}

func TestServeSmoke(t *testing.T) {
	dir := t.TempDir()
	bin := buildBinary(t, dir)
	seed := interruptBatchRun(t, bin, dir)
	live := filepath.Join(dir, "live.ckpt")

	cmd := exec.Command(bin,
		"-serve", "-load", seed,
		"-telemetry-addr", "127.0.0.1:0",
		"-checkpoint", live, "-checkpoint-every", "1",
		"-step-interval", "50ms",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	}()

	var echo strings.Builder
	w := watchLines(stdout, regexp.MustCompile(`serve: listening on (\S+)`), &echo)
	addr := w.wait(t, "the daemon to announce its address")
	base := "http://" + addr

	// Status reflects the warm start: the clock picks up where the seed
	// snapshot left off, not at zero.
	seedEng := resumeFile(t, seed)
	var st struct {
		Method      string `json:"method"`
		Homes       int    `json:"homes"`
		Minute      int    `json:"minute"`
		Done        bool   `json:"done"`
		Checkpoints int    `json:"checkpoints_written"`
		Settings    struct {
			BetaHours float64 `json:"beta_hours"`
		} `json:"settings"`
	}
	getJSON(t, base+"/v1/fleet/status", &st)
	if st.Method != "PFDRL" || st.Homes != 2 {
		t.Fatalf("status: %+v", st)
	}
	if st.Minute < seedEng.Minute() {
		t.Fatalf("daemon clock %d behind seed snapshot %d — warm start failed", st.Minute, seedEng.Minute())
	}

	// Forecast and plan for every home; bad homes rejected.
	for home := 0; home < 2; home++ {
		var fc struct {
			Forecasts []core.DeviceForecast `json:"forecasts"`
		}
		getJSON(t, fmt.Sprintf("%s/v1/forecast/%d", base, home), &fc)
		if len(fc.Forecasts) != 2 || len(fc.Forecasts[0].PredKW) != 60 {
			t.Fatalf("home %d forecast: %+v", home, fc)
		}
		var plan struct {
			Plans []core.DevicePlan `json:"plans"`
		}
		getJSON(t, fmt.Sprintf("%s/v1/plan/%d", base, home), &plan)
		if len(plan.Plans) != 2 || len(plan.Plans[0].Actions) != 60 {
			t.Fatalf("home %d plan: %+v", home, plan)
		}
	}
	if resp, err := http.Get(base + "/v1/forecast/99"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("out-of-range home: %v %v", resp.Status, err)
	} else {
		resp.Body.Close()
	}

	// Telemetry rides the same server.
	var health struct {
		Status string `json:"status"`
	}
	getJSON(t, base+"/healthz", &health)
	if health.Status != "ok" {
		t.Fatalf("healthz: %+v", health)
	}

	// Live reconfiguration round-trips.
	var ls core.LiveSettings
	getJSON(t, base+"/v1/config", &ls)
	ls.BetaHours = 6
	body, _ := json.Marshal(ls)
	resp, err := http.Post(base+"/v1/config", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("config POST: %d", resp.StatusCode)
	}
	getJSON(t, base+"/v1/fleet/status", &st)
	if st.Settings.BetaHours != 6 {
		t.Fatalf("retuned β not visible in status: %+v", st)
	}

	// With -checkpoint-every 1 at a 50ms pace, a rotation lands quickly.
	deadline := time.Now().Add(time.Minute)
	for st.Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint rotation observed")
		}
		time.Sleep(100 * time.Millisecond)
		getJSON(t, base+"/v1/fleet/status", &st)
	}

	// Graceful shutdown: SIGTERM → final checkpoint → exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitCh := make(chan error, 1)
	go func() { waitCh <- cmd.Wait() }()
	select {
	case err := <-waitCh:
		if err != nil {
			t.Fatalf("daemon exit: %v\nstdout:\n%s", err, echo.String())
		}
	case <-time.After(time.Minute):
		t.Fatalf("daemon did not exit on SIGTERM\nstdout:\n%s", echo.String())
	}

	// The final checkpoint resumes, at or past the seed's clock.
	finalEng := resumeFile(t, live)
	if finalEng.Minute() < seedEng.Minute() {
		t.Fatalf("final checkpoint clock %d behind seed %d", finalEng.Minute(), seedEng.Minute())
	}
	t.Logf("daemon stepped %d→%d minutes, %d checkpoints", seedEng.Minute(), finalEng.Minute(), st.Checkpoints)
}

// TestServeFlagValidation pins the CLI's cross-flag diagnostics: every
// conflicting combination fails fast with an actionable message instead
// of a surprising run.
func TestServeFlagValidation(t *testing.T) {
	dir := t.TempDir()
	bin := buildBinary(t, dir)

	// A models-only checkpoint for the -serve -load mismatch case.
	models := filepath.Join(dir, "models.ckpt")
	save := exec.Command(bin,
		"-homes", "2", "-devices", "2", "-days", "1", "-forecast", "LR",
		"-save", models,
	)
	if out, err := save.CombinedOutput(); err != nil {
		t.Fatalf("producing models checkpoint: %v\n%s", err, out)
	}

	cases := []struct {
		name string
		args []string
		want string
	}{
		{"serve-days", []string{"-serve", "-days", "4"}, "-days applies to batch runs"},
		{"serve-save", []string{"-serve", "-save", "x.ckpt"}, "-save (models-only) is batch-only"},
		{"serve-snapshot", []string{"-serve", "-snapshot", "x.ckpt"}, "-snapshot is batch-only"},
		{"batch-checkpoint", []string{"-checkpoint", "x.ckpt"}, "-checkpoint requires -serve"},
		{"batch-step-interval", []string{"-step-interval", "1s"}, "-step-interval requires -serve"},
		{"serve-load-models", []string{"-serve", "-load", models}, "models-only checkpoint"},
		{"batch-load-snapshot", nil, "full-fleet snapshot"}, // args filled below
	}

	// A tiny full snapshot for the batch -load mismatch case.
	snap := filepath.Join(dir, "snap.ckpt")
	snapCmd := exec.Command(bin,
		"-homes", "2", "-devices", "2", "-days", "1", "-forecast", "LR",
		"-snapshot", snap,
	)
	if out, err := snapCmd.CombinedOutput(); err != nil {
		t.Fatalf("producing snapshot: %v\n%s", err, out)
	}
	cases[len(cases)-1].args = []string{
		"-homes", "2", "-devices", "2", "-days", "1", "-forecast", "LR",
		"-load", snap,
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmd := exec.Command(bin, tc.args...)
			out, err := cmd.CombinedOutput()
			if err == nil {
				t.Fatalf("conflicting flags accepted\n%s", out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Fatalf("diagnostic missing %q:\n%s", tc.want, out)
			}
		})
	}
}
