package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/forecast"
)

// tinyEngine builds a small fast fleet for daemon tests.
func tinyEngine(t *testing.T) *core.Engine {
	t.Helper()
	cfg := core.DefaultConfig(core.MethodPFDRL)
	cfg.Homes = 3
	cfg.Days = 2
	cfg.DevicesPerHome = 2
	cfg.ForecastKind = forecast.KindLR
	cfg.ForecastWindow = 16
	cfg.DQNHidden = []int{12, 12}
	cfg.Alpha = 1
	cfg.LookAhead, cfg.LookBack = 4, 4
	cfg.LearnEveryMinutes = 20
	cfg.DQNBatch = 8
	cfg.TrainEveryHours = 8
	s, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return core.NewEngine(s)
}

// newTestDaemon wires a daemon and its API into an httptest server.
func newTestDaemon(t *testing.T, opts Options) (*Daemon, *httptest.Server) {
	t.Helper()
	opts.Log = log.New(io.Discard, "", 0)
	d := New(tinyEngine(t), nil, opts)
	mux := http.NewServeMux()
	d.Routes(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return d, srv
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

func TestDaemonEndpoints(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "fleet.ckpt")
	d, srv := newTestDaemon(t, Options{CheckpointPath: ckpt, CheckpointEvery: 5, StepInterval: time.Millisecond})

	var st FleetStatus
	getJSON(t, srv.URL+"/v1/fleet/status", &st)
	if st.Method != "PFDRL" || st.Homes != 3 || st.Day != 0 || st.Done {
		t.Fatalf("fresh status: %+v", st)
	}
	if st.Settings.CommsLevel != "delta" {
		t.Fatalf("settings not surfaced: %+v", st.Settings)
	}

	// Step a few hours directly, then query forecasts and plans.
	for i := 0; i < 3; i++ {
		if err := d.stepOnce(); err != nil {
			t.Fatal(err)
		}
	}
	var fc struct {
		Home      int                   `json:"home"`
		Forecasts []core.DeviceForecast `json:"forecasts"`
	}
	getJSON(t, srv.URL+"/v1/forecast/1", &fc)
	if fc.Home != 1 || len(fc.Forecasts) != 2 {
		t.Fatalf("forecast payload: %+v", fc)
	}
	for _, f := range fc.Forecasts {
		if len(f.PredKW) != 60 || f.Minute != 3*60 {
			t.Fatalf("forecast device %s: minute %d, %d preds", f.DeviceType, f.Minute, len(f.PredKW))
		}
	}
	var plan struct {
		Plans []core.DevicePlan `json:"plans"`
	}
	getJSON(t, srv.URL+"/v1/plan/0", &plan)
	if len(plan.Plans) != 2 || len(plan.Plans[0].Actions) != 60 {
		t.Fatalf("plan payload: %+v", plan)
	}

	// Bad home values.
	if resp := getJSON(t, srv.URL+"/v1/forecast/99", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("out-of-range home: %d", resp.StatusCode)
	}
	if resp := getJSON(t, srv.URL+"/v1/plan/abc", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-integer home: %d", resp.StatusCode)
	}
}

func TestDaemonConfigRoundTrip(t *testing.T) {
	_, srv := newTestDaemon(t, Options{StepInterval: time.Millisecond})

	var ls core.LiveSettings
	getJSON(t, srv.URL+"/v1/config", &ls)
	ls.BetaHours, ls.GammaHours = 6, 9
	body, _ := json.Marshal(ls)
	resp, err := http.Post(srv.URL+"/v1/config", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var applied core.LiveSettings
	if err := json.NewDecoder(resp.Body).Decode(&applied); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || applied.BetaHours != 6 || applied.GammaHours != 9 {
		t.Fatalf("apply: status %d, %+v", resp.StatusCode, applied)
	}

	// Invalid settings are rejected with 422 and leave state unchanged.
	bad := applied
	bad.BetaHours = -1
	body, _ = json.Marshal(bad)
	resp, err = http.Post(srv.URL+"/v1/config", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("invalid settings: status %d", resp.StatusCode)
	}
	getJSON(t, srv.URL+"/v1/config", &ls)
	if ls.BetaHours != 6 {
		t.Fatalf("rejected apply mutated settings: %+v", ls)
	}
}

func TestDaemonCheckpointRotationAndResume(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "fleet.ckpt")
	d, srv := newTestDaemon(t, Options{CheckpointPath: ckpt, CheckpointEvery: 4, StepInterval: time.Millisecond})

	// 9 hours → two rotations (hours 4 and 8).
	for i := 0; i < 9; i++ {
		if err := d.stepOnce(); err != nil {
			t.Fatal(err)
		}
	}
	var st FleetStatus
	getJSON(t, srv.URL+"/v1/fleet/status", &st)
	if st.Checkpoints != 2 {
		t.Fatalf("checkpoints written: %d, want 2", st.Checkpoints)
	}

	// On-demand checkpoint, then resume it and verify the clock.
	resp, err := http.Post(srv.URL+"/v1/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint POST: %d", resp.StatusCode)
	}
	f, err := os.Open(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	eng, err := core.ResumeEngine(f)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Day() != 0 || eng.Hour() != 9 {
		t.Fatalf("resumed clock: day %d hour %d, want 0/9", eng.Day(), eng.Hour())
	}
}

func TestDaemonRunStepsAndShutsDown(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "fleet.ckpt")
	d, srv := newTestDaemon(t, Options{CheckpointPath: ckpt, CheckpointEvery: 100, StepInterval: time.Millisecond})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx) }()

	// Wait for background stepping to make progress.
	deadline := time.Now().Add(10 * time.Second)
	var st FleetStatus
	for {
		getJSON(t, srv.URL+"/v1/fleet/status", &st)
		if st.Minute >= 2*60 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no stepping progress: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
	// Shutdown wrote a final checkpoint that resumes cleanly.
	f, err := os.Open(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := core.ResumeEngine(f); err != nil {
		t.Fatal(err)
	}
}

func TestDaemonServesFinishedFleet(t *testing.T) {
	d, srv := newTestDaemon(t, Options{StepInterval: time.Millisecond})
	for !d.eng.Done() {
		if err := d.stepOnce(); err != nil {
			t.Fatal(err)
		}
	}
	// One more step finishes the run; further steps are no-ops.
	for i := 0; i < 2; i++ {
		if err := d.stepOnce(); err != nil {
			t.Fatal(err)
		}
	}
	var st FleetStatus
	getJSON(t, srv.URL+"/v1/fleet/status", &st)
	if !st.Done || !st.Finished {
		t.Fatalf("finished status: %+v", st)
	}
	var fc struct {
		Forecasts []core.DeviceForecast `json:"forecasts"`
	}
	getJSON(t, srv.URL+"/v1/forecast/0", &fc)
	if len(fc.Forecasts) == 0 {
		t.Fatal("finished fleet stopped serving forecasts")
	}
	var plan struct {
		Plans []core.DevicePlan `json:"plans"`
	}
	getJSON(t, srv.URL+"/v1/plan/2", &plan)
	if len(plan.Plans) == 0 {
		t.Fatal("finished fleet stopped serving plans")
	}
}
