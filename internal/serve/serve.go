// Package serve hosts a simulation fleet as a long-running daemon: the
// stepwise core.Engine advances in the background on a configurable pace
// while an HTTP API serves per-home forecasts and device plans, exposes
// and retunes the live federation knobs, and rotates full-fleet
// checkpoints for crash recovery and warm starts.
//
// Concurrency model: one mutex serializes everything that touches the
// engine — background stepping, query endpoints, reconfiguration, and
// checkpointing. Queries are perturbation-free by construction (greedy
// policy reads, scratch-only forecasts; see core's inspect tests), so
// holding the lock briefly between steps is all the isolation needed.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// Options configures a Daemon.
type Options struct {
	// StepInterval is the wall-clock pace of background stepping: one
	// simulated hour per interval. 0 defaults to one second.
	StepInterval time.Duration
	// CheckpointPath, when set, receives a full-fleet snapshot every
	// CheckpointEvery simulated hours and once more on shutdown. Writes
	// are atomic (tmp + rename), so a crash never leaves a torn file.
	CheckpointPath string
	// CheckpointEvery is the rotation period in simulated hours
	// (default 24 — nightly at the default pace).
	CheckpointEvery int
	// Log receives daemon progress lines; nil uses the standard logger.
	Log *log.Logger
}

// Daemon is a running service instance over one engine.
type Daemon struct {
	mu   sync.Mutex
	eng  *core.Engine
	sink *telemetry.Sink
	opts Options
	log  *log.Logger

	hoursSinceCkpt int
	checkpoints    int
	lastCkptAt     time.Time
}

// New builds a daemon over an engine — freshly constructed or resumed
// from a snapshot. sink may be nil.
func New(eng *core.Engine, sink *telemetry.Sink, opts Options) *Daemon {
	if opts.StepInterval <= 0 {
		opts.StepInterval = time.Second
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 24
	}
	lg := opts.Log
	if lg == nil {
		lg = log.Default()
	}
	return &Daemon{eng: eng, sink: sink, opts: opts, log: lg}
}

// FleetStatus is the /v1/fleet/status payload.
type FleetStatus struct {
	Method   string `json:"method"`
	Scenario string `json:"scenario,omitempty"`
	Homes    int    `json:"homes"`
	Days     int    `json:"days"`
	Day      int    `json:"day"`
	Hour     int    `json:"hour"`
	Minute   int    `json:"minute"`
	Done     bool   `json:"done"`
	Finished bool   `json:"finished"`

	StepIntervalMS int `json:"step_interval_ms"`

	CheckpointPath  string    `json:"checkpoint_path,omitempty"`
	CheckpointEvery int       `json:"checkpoint_every_hours,omitempty"`
	Checkpoints     int       `json:"checkpoints_written"`
	LastCheckpoint  time.Time `json:"last_checkpoint,omitempty"`

	Settings core.LiveSettings `json:"settings"`
}

// Routes registers the daemon's API on mux:
//
//	GET  /v1/fleet/status   clock, progress, checkpoint state, live knobs
//	GET  /v1/forecast/{home} next-hour per-device load forecast
//	GET  /v1/plan/{home}     next-hour per-device greedy control plan
//	GET  /v1/config          current live-retunable settings
//	POST /v1/config          apply new settings (JSON LiveSettings body)
//	POST /v1/checkpoint      write a full-fleet snapshot now
func (d *Daemon) Routes(mux *http.ServeMux) {
	mux.HandleFunc("GET /v1/fleet/status", d.handleStatus)
	mux.HandleFunc("GET /v1/forecast/{home}", d.handleForecast)
	mux.HandleFunc("GET /v1/plan/{home}", d.handlePlan)
	mux.HandleFunc("GET /v1/config", d.handleConfigGet)
	mux.HandleFunc("POST /v1/config", d.handleConfigPost)
	mux.HandleFunc("POST /v1/checkpoint", d.handleCheckpoint)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (d *Daemon) handleStatus(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	cfg := d.eng.System().Config()
	st := FleetStatus{
		Method:          string(cfg.Method),
		Scenario:        cfg.Scenario.DisplayName(),
		Homes:           cfg.Homes,
		Days:            cfg.Days,
		Day:             d.eng.Day(),
		Hour:            d.eng.Hour(),
		Minute:          d.eng.Minute(),
		Done:            d.eng.Done(),
		Finished:        d.eng.Finished(),
		StepIntervalMS:  int(d.opts.StepInterval / time.Millisecond),
		CheckpointPath:  d.opts.CheckpointPath,
		CheckpointEvery: d.opts.CheckpointEvery,
		Checkpoints:     d.checkpoints,
		LastCheckpoint:  d.lastCkptAt,
		Settings:        d.eng.System().LiveSettings(),
	}
	d.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// homeParam parses the {home} path segment.
func homeParam(r *http.Request) (int, error) {
	home, err := strconv.Atoi(r.PathValue("home"))
	if err != nil {
		return 0, fmt.Errorf("serve: home %q is not an integer", r.PathValue("home"))
	}
	return home, nil
}

func (d *Daemon) handleForecast(w http.ResponseWriter, r *http.Request) {
	home, err := homeParam(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	d.mu.Lock()
	fcs, err := d.eng.ForecastNextHour(home)
	d.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"home": home, "forecasts": fcs})
}

func (d *Daemon) handlePlan(w http.ResponseWriter, r *http.Request) {
	home, err := homeParam(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	d.mu.Lock()
	plans, err := d.eng.PlanNextHour(home)
	d.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"home": home, "plans": plans})
}

func (d *Daemon) handleConfigGet(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	ls := d.eng.System().LiveSettings()
	d.mu.Unlock()
	writeJSON(w, http.StatusOK, ls)
}

func (d *Daemon) handleConfigPost(w http.ResponseWriter, r *http.Request) {
	var ls core.LiveSettings
	if err := json.NewDecoder(r.Body).Decode(&ls); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: decoding settings: %w", err))
		return
	}
	d.mu.Lock()
	err := d.eng.System().ApplyLiveSettings(ls)
	applied := d.eng.System().LiveSettings()
	d.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	d.log.Printf("serve: settings applied: β=%gh γ=%gh k=%d codec=%s",
		applied.BetaHours, applied.GammaHours, applied.TopologyK, applied.CommsLevel)
	writeJSON(w, http.StatusOK, applied)
}

func (d *Daemon) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if d.opts.CheckpointPath == "" {
		writeError(w, http.StatusConflict, errors.New("serve: no checkpoint path configured"))
		return
	}
	d.mu.Lock()
	err := d.writeCheckpointLocked()
	n := d.checkpoints
	d.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"path": d.opts.CheckpointPath, "checkpoints_written": n})
}

// writeCheckpointLocked snapshots the fleet atomically: the snapshot is
// written to a sibling temp file and renamed over the target, so readers
// never observe a torn checkpoint. Caller holds d.mu.
func (d *Daemon) writeCheckpointLocked() error {
	path := d.opts.CheckpointPath
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("serve: checkpoint temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := d.eng.WriteSnapshot(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: syncing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("serve: installing checkpoint: %w", err)
	}
	d.checkpoints++
	d.hoursSinceCkpt = 0
	d.lastCkptAt = time.Now()
	return nil
}

// Run steps the engine one simulated hour per StepInterval until the
// context is cancelled, checkpointing every CheckpointEvery hours. When
// the run completes it assembles the Result, logs the headline numbers,
// and keeps serving the trained fleet. On cancellation it writes a final
// checkpoint (if configured) and returns nil; any engine error is
// returned after a best-effort final checkpoint.
func (d *Daemon) Run(ctx context.Context) error {
	ticker := time.NewTicker(d.opts.StepInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return d.finalCheckpoint(nil)
		case <-ticker.C:
			if err := d.stepOnce(); err != nil {
				return d.finalCheckpoint(err)
			}
		}
	}
}

// stepOnce advances one simulated hour (or finishes the run) under the
// daemon lock.
func (d *Daemon) stepOnce() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.eng.Done() {
		if !d.eng.Finished() {
			res, err := d.eng.Finish()
			if err != nil {
				return err
			}
			d.log.Printf("serve: run complete: %d days, forecast accuracy %.3f, convergence day %d; serving trained fleet",
				len(res.DailySavedKWhPerHome), res.ForecastAccuracy, res.ConvergenceDay+1)
		}
		return nil
	}
	if err := d.eng.StepHour(); err != nil {
		return err
	}
	d.hoursSinceCkpt++
	if d.opts.CheckpointPath != "" && d.hoursSinceCkpt >= d.opts.CheckpointEvery {
		if err := d.writeCheckpointLocked(); err != nil {
			// A failed rotation should not kill the run; the next period
			// retries and the shutdown path writes a final snapshot.
			d.log.Printf("serve: checkpoint rotation failed: %v", err)
		}
	}
	return nil
}

// finalCheckpoint writes the shutdown snapshot and flushes telemetry,
// preferring the step error (if any) over a checkpoint error.
func (d *Daemon) finalCheckpoint(stepErr error) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.opts.CheckpointPath != "" {
		if err := d.writeCheckpointLocked(); err != nil {
			d.log.Printf("serve: final checkpoint failed: %v", err)
			if stepErr == nil {
				stepErr = err
			}
		} else {
			d.log.Printf("serve: final checkpoint written to %s (day %d hour %d)",
				d.opts.CheckpointPath, d.eng.Day(), d.eng.Hour())
		}
	}
	return stepErr
}
