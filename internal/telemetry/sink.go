package telemetry

// Sink bundles the three telemetry outputs — instrument registry, span
// tracer, run journal — behind one nil-safe handle. A nil *Sink is the
// "telemetry off" state: every accessor returns a nil instrument (whose
// methods are no-ops) and Record/Emit do nothing, so instrumented code
// never branches on configuration.
type Sink struct {
	Registry *Registry
	Tracer   *Tracer
	// Journal is optional even on a live sink (metrics without a journal
	// file). Attach with AttachJournal or set directly before use.
	Journal *Journal
}

// DefaultTraceSpans is the ring capacity NewSink gives its tracer.
const DefaultTraceSpans = 512

// NewSink returns a live sink with an empty registry and a
// DefaultTraceSpans-deep tracer.
func NewSink() *Sink {
	return &Sink{Registry: NewRegistry(), Tracer: NewTracer(DefaultTraceSpans)}
}

// Counter registers/fetches a counter (nil on a nil sink).
func (s *Sink) Counter(name, help string) *Counter {
	if s == nil || s.Registry == nil {
		return nil
	}
	return s.Registry.Counter(name, help)
}

// Gauge registers/fetches a gauge (nil on a nil sink).
func (s *Sink) Gauge(name, help string) *Gauge {
	if s == nil || s.Registry == nil {
		return nil
	}
	return s.Registry.Gauge(name, help)
}

// Histogram registers/fetches a histogram (nil on a nil sink).
func (s *Sink) Histogram(name, help string, bounds []float64) *Histogram {
	if s == nil || s.Registry == nil {
		return nil
	}
	return s.Registry.Histogram(name, help, bounds)
}

// Record traces a span (no-op on a nil sink).
func (s *Sink) Record(span Span) {
	if s == nil {
		return
	}
	s.Tracer.Record(span)
}

// Emit writes one journal record (no-op on a nil sink or absent journal).
func (s *Sink) Emit(record any) {
	if s == nil {
		return
	}
	s.Journal.Emit(record)
}

// Active reports whether the sink traces spans — instrumented sites use it
// to skip the time.Now() bracketing a span needs when telemetry is off.
func (s *Sink) Active() bool { return s != nil }
