package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// Every instrument and sink method must no-op on nil receivers: this is
	// the contract that lets hot paths hold possibly-nil handles.
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	var j *Journal
	var s *Sink
	c.Add(3)
	c.Inc()
	g.Set(1)
	g.Add(2)
	h.Observe(5)
	tr.Record(Span{Name: "x"})
	j.Emit(map[string]int{"a": 1})
	s.Record(Span{Name: "y"})
	s.Emit("z")
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if tr.Total() != 0 || tr.Snapshot() != nil || j.Err() != nil {
		t.Fatal("nil tracer/journal must read as empty")
	}
	if s.Counter("a", "") != nil || s.Gauge("b", "") != nil || s.Histogram("c", "", []float64{1}) != nil {
		t.Fatal("nil sink must hand out nil instruments")
	}
	if s.Active() {
		t.Fatal("nil sink must report inactive")
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "a counter")
	c.Add(2)
	c.Inc()
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	g := r.Gauge("x_gauge", "a gauge")
	g.Set(1.5)
	g.Add(0.25)
	if g.Value() != 1.75 {
		t.Fatalf("gauge = %v, want 1.75", g.Value())
	}
	// Same name returns the same instrument.
	if r.Counter("x_total", "") != c {
		t.Fatal("re-registration must return the existing counter")
	}
	// Same name as a different kind panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("kind conflict must panic")
			}
		}()
		r.Gauge("x_total", "")
	}()
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50, math.NaN()} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5 (NaN discarded)", h.Count())
	}
	if got := h.Sum(); got != 56.05 {
		t.Fatalf("sum = %v, want 56.05", got)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_sum 56.05",
		"lat_seconds_count 5",
		"# TYPE lat_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1e-4, 10, 3)
	want := []float64{1e-4, 1e-3, 1e-2}
	for i := range want {
		if math.Abs(exp[i]-want[i]) > 1e-15 {
			t.Fatalf("ExpBuckets[%d] = %v, want %v", i, exp[i], want[i])
		}
	}
	lin := LinearBuckets(0, 5, 3)
	if lin[0] != 0 || lin[1] != 5 || lin[2] != 10 {
		t.Fatalf("LinearBuckets = %v", lin)
	}
	db := DurationBuckets()
	if len(db) == 0 || db[0] != 1e-4 {
		t.Fatalf("DurationBuckets = %v", db)
	}
}

func TestPrometheusLabels(t *testing.T) {
	r := NewRegistry()
	r.Counter(`bytes_total{plane="fc"}`, "bytes").Add(10)
	r.Counter(`bytes_total{plane="ems"}`, "bytes").Add(20)
	r.Histogram(`round_seconds{plane="fc"}`, "round dur", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "# TYPE bytes_total counter") != 1 {
		t.Errorf("family header must be emitted once:\n%s", out)
	}
	for _, want := range []string{
		`bytes_total{plane="fc"} 10`,
		`bytes_total{plane="ems"} 20`,
		`round_seconds_bucket{plane="fc",le="1"} 1`,
		`round_seconds_sum{plane="fc"} 0.5`,
		`round_seconds_count{plane="fc"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		tr.Record(Span{Name: "s", N: int64(i)})
	}
	spans := tr.Snapshot()
	if len(spans) != 4 || tr.Total() != 6 {
		t.Fatalf("retained %d (total %d), want 4 (6)", len(spans), tr.Total())
	}
	for i, s := range spans {
		if s.N != int64(i+2) {
			t.Fatalf("span %d has N=%d, want %d (oldest-first order)", i, s.N, i+2)
		}
	}
	// Partially filled ring snapshots only what was recorded.
	tr2 := NewTracer(8)
	tr2.Record(Span{N: 42})
	if got := tr2.Snapshot(); len(got) != 1 || got[0].N != 42 {
		t.Fatalf("partial snapshot = %v", got)
	}
}

func TestJournal(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	j.Emit(map[string]any{"type": "hour", "day": 0, "hour": 3})
	j.Emit(map[string]any{"type": "round", "plane": "fc"})
	if j.Err() != nil {
		t.Fatal(j.Err())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("journal has %d lines, want 2", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["type"] != "hour" || rec["hour"] != float64(3) {
		t.Fatalf("record = %v", rec)
	}
}

// failWriter fails after the first write.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	if f.n > 1 {
		return 0, &json.UnsupportedValueError{}
	}
	return len(p), nil
}

func TestJournalSticksOnError(t *testing.T) {
	j := NewJournal(&failWriter{})
	j.Emit("a")
	j.Emit("b")
	if j.Err() == nil {
		t.Fatal("journal must retain the first write error")
	}
	j.Emit("c") // must not panic or overwrite the error
}

func TestConcurrentUpdatesAndExposition(t *testing.T) {
	// Race-clean contract: many writers on one instrument set while the
	// exposition path reads. Run under -race (make ci does).
	s := NewSink()
	c := s.Counter("conc_total", "")
	g := s.Gauge("conc_gauge", "")
	h := s.Histogram("conc_hist", "", []float64{1, 10, 100})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 200))
				s.Record(Span{Name: "w", N: int64(w)})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			_ = s.Registry.WritePrometheus(&buf)
			_ = s.Tracer.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge = %v, want 8000 (CAS accumulation must not lose adds)", g.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

func TestObserveAllocFree(t *testing.T) {
	s := NewSink()
	c := s.Counter("alloc_total", "")
	g := s.Gauge("alloc_gauge", "")
	h := s.Histogram("alloc_hist", "", DurationBuckets())
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(3.14)
		h.Observe(0.01)
	}); n != 0 {
		t.Errorf("instrument updates allocate %v per run, want 0", n)
	}
	tr := NewTracer(16)
	span := Span{Name: "s", Start: time.Now(), Dur: time.Millisecond}
	if n := testing.AllocsPerRun(100, func() { tr.Record(span) }); n != 0 {
		t.Errorf("Tracer.Record allocates %v per run, want 0", n)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	s := NewSink()
	s.Counter("pfdrl_test_total", "help text").Add(7)
	s.Record(Span{Name: "round", SimMinute: 60, Dur: 2 * time.Millisecond})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, buf.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "pfdrl_test_total 7") {
		t.Errorf("/metrics = %d:\n%s", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, `"status":"ok"`) {
		t.Errorf("/healthz = %d: %s", code, body)
	}
	code, body := get("/debug/trace")
	if code != 200 {
		t.Fatalf("/debug/trace = %d", code)
	}
	var trace struct {
		TotalRecorded uint64 `json:"total_recorded"`
		Spans         []Span `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &trace); err != nil {
		t.Fatal(err)
	}
	if trace.TotalRecorded != 1 || len(trace.Spans) != 1 || trace.Spans[0].Name != "round" {
		t.Errorf("trace payload = %s", body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
}

func TestListenAndServe(t *testing.T) {
	s := NewSink()
	s.Counter("up_total", "").Inc()
	srv, addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "up_total 1") {
		t.Errorf("served metrics missing series:\n%s", buf.String())
	}
}
