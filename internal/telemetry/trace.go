package telemetry

import (
	"sync"
	"time"
)

// Span is one traced unit of work: a federation round, a scheduler wave, a
// simulated hour. Start is wall-clock; SimMinute anchors the span on the
// simulation's own timeline (-1 when not applicable); N carries one
// span-kind-specific magnitude (bytes for rounds, tasks for waves, steps
// for hours).
type Span struct {
	Name      string        `json:"name"`
	Start     time.Time     `json:"start"`
	Dur       time.Duration `json:"dur_ns"`
	SimMinute int           `json:"sim_minute"`
	N         int64         `json:"n,omitempty"`
}

// Tracer keeps the most recent spans in a fixed-capacity ring buffer.
// Record copies the span into a pre-allocated slot under a short mutex —
// no allocation, bounded memory no matter how long the run.
type Tracer struct {
	mu    sync.Mutex
	ring  []Span
	total uint64
}

// NewTracer returns a tracer retaining the last capacity spans (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]Span, capacity)}
}

// Record stores a span, overwriting the oldest once the ring is full.
// No-op on a nil receiver.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring[t.total%uint64(len(t.ring))] = s
	t.total++
	t.mu.Unlock()
}

// Total returns the number of spans ever recorded (0 on a nil receiver).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Snapshot returns the retained spans oldest-first. The slice is freshly
// allocated and owned by the caller (nil on a nil receiver).
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.total
	capacity := uint64(len(t.ring))
	if n > capacity {
		out := make([]Span, capacity)
		first := n % capacity // oldest slot
		copy(out, t.ring[first:])
		copy(out[capacity-first:], t.ring[:first])
		return out
	}
	return append([]Span(nil), t.ring[:n]...)
}
