// Package telemetry is the simulator's observability plane: a lock-cheap
// instrument registry (counters, gauges, fixed-bucket histograms), a
// span-style tracer with a bounded ring-buffer journal, a JSONL run-journal
// writer, and an HTTP server exposing all of it live (/metrics in
// Prometheus text format, /healthz, /debug/trace, net/http/pprof).
//
// The design contract every instrumented hot path relies on:
//
//   - Nil safety. Every instrument method — Counter.Add, Gauge.Set,
//     Histogram.Observe, Tracer.Record, Journal.Emit, and every Sink
//     accessor — is a no-op on a nil receiver. Instrumented code holds
//     possibly-nil handles and calls them unconditionally; with telemetry
//     off the whole path costs one nil check per call and allocates
//     nothing, so the simulation stays bit-identical to an uninstrumented
//     build (the golden suite and the AllocsPerRun gates still pass).
//   - Race cleanliness. Updates are single atomic operations (CAS loops
//     for float accumulation); reads for exposition take consistent
//     snapshots. Homes training in parallel may hit one shared histogram.
//   - Zero-alloc updates. No instrument update allocates: counters and
//     gauges are one atomic word, histogram buckets are pre-sized at
//     registration, spans copy into a pre-allocated ring.
//
// Registration (cold path) goes through a Registry keyed by the full
// Prometheus-style name, labels included: registering the same name twice
// returns the same instrument, so independent subsystems can share series.
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 instrument.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 instrument that can be set or accumulated.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add accumulates d with a CAS loop (safe from concurrent adders).
// No-op on a nil receiver.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket-layout histogram: bounds are ascending bucket
// upper limits, with an implicit +Inf overflow bucket. The layout is fixed
// at registration so Observe is a bounded linear scan over a handful of
// bounds plus three atomic updates — no allocation, no lock.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one sample. NaN samples are discarded (a NaN would poison
// the running sum and serve no diagnostic purpose). No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	idx := len(h.bounds)
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of recorded samples (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of recorded samples (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// ExpBuckets returns n ascending bounds starting at start, each factor times
// the previous — the standard layout for latencies and byte sizes.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExpBuckets needs start > 0, factor > 1, n ≥ 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n ascending bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic("telemetry: LinearBuckets needs width > 0, n ≥ 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// DurationBuckets is the default seconds layout for span-ish durations:
// 100µs to ~100s, exponential.
func DurationBuckets() []float64 { return ExpBuckets(1e-4, 4, 11) }

// instrument kinds, for registration conflict detection and TYPE lines.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// entry is one registered instrument.
type entry struct {
	name string // full series name, labels included
	base string // name up to any '{' — the metric family
	help string
	kind string
	inst any
}

// Registry holds named instruments and renders them in Prometheus text
// exposition format. Registration is mutex-guarded (cold path); instrument
// updates never touch the registry.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
	byName  map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*entry{}}
}

// splitName separates a full series name into its family base and label
// block ({...}, possibly empty).
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// register returns the existing instrument for name or records a new one.
// It panics when the same name is re-registered as a different kind — that
// is a wiring bug, not a runtime condition.
func (r *Registry) register(name, help, kind string, mk func() any) any {
	base, _ := splitName(name)
	if base == "" {
		panic("telemetry: empty instrument name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byName[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("telemetry: %q already registered as %s, not %s", name, e.kind, kind))
		}
		return e.inst
	}
	e := &entry{name: name, base: base, help: help, kind: kind, inst: mk()}
	r.entries = append(r.entries, e)
	r.byName[name] = e
	return e.inst
}

// Counter registers (or returns the existing) counter under name. The name
// may carry a Prometheus label block: `pfdrl_x_total{plane="fc"}`.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, func() any { return &Counter{} }).(*Counter)
}

// Gauge registers (or returns the existing) gauge under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram registers (or returns the existing) histogram under name with
// the given ascending bucket bounds (the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("telemetry: histogram %q bounds not ascending", name))
	}
	return r.register(name, help, kindHistogram, func() any {
		h := &Histogram{bounds: append([]float64(nil), bounds...)}
		h.buckets = make([]atomic.Int64, len(h.bounds)+1)
		return h
	}).(*Histogram)
}

// withLabel splices an extra label (e.g. le="0.5") into a full series name.
func withLabel(name, label string) string {
	base, labels := splitName(name)
	if labels == "" {
		return base + "{" + label + "}"
	}
	return base + "{" + labels[1:len(labels)-1] + "," + label + "}"
}

// WritePrometheus renders every registered instrument in Prometheus text
// exposition format, in registration order, with one HELP/TYPE header per
// metric family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	entries := append([]*entry(nil), r.entries...)
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	seen := map[string]bool{}
	for _, e := range entries {
		if !seen[e.base] {
			seen[e.base] = true
			if e.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", e.base, e.help)
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", e.base, e.kind)
		}
		switch inst := e.inst.(type) {
		case *Counter:
			fmt.Fprintf(bw, "%s %d\n", e.name, inst.Value())
		case *Gauge:
			fmt.Fprintf(bw, "%s %g\n", e.name, inst.Value())
		case *Histogram:
			cum := int64(0)
			for i, b := range inst.bounds {
				cum += inst.buckets[i].Load()
				fmt.Fprintf(bw, "%s %d\n", withLabel(e.base+"_bucket"+e.name[len(e.base):], fmt.Sprintf("le=%q", formatBound(b))), cum)
			}
			cum += inst.buckets[len(inst.bounds)].Load()
			fmt.Fprintf(bw, "%s %d\n", withLabel(e.base+"_bucket"+e.name[len(e.base):], `le="+Inf"`), cum)
			fmt.Fprintf(bw, "%s_sum%s %g\n", e.base, e.name[len(e.base):], inst.Sum())
			fmt.Fprintf(bw, "%s_count%s %d\n", e.base, e.name[len(e.base):], inst.Count())
		}
	}
	return bw.Flush()
}

// formatBound renders a bucket bound the way Prometheus clients do.
func formatBound(b float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.9f", b), "0"), ".")
}
