//go:build telemetry_smoke

// Package smoke boots the real pfdrl binary with telemetry enabled and
// scrapes its live endpoints — the `make telemetry-smoke` gate. It is
// build-tagged out of the ordinary test run because it shells out to
// `go run` and takes seconds, not milliseconds.
package smoke

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// repoRoot walks up from the working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above working directory")
		}
		dir = parent
	}
}

func TestTelemetrySmoke(t *testing.T) {
	root := repoRoot(t)
	tmp := t.TempDir()
	journal := filepath.Join(tmp, "run.jsonl")

	// Build and exec the binary directly (not `go run`): killing the
	// process at teardown must reach pfdrl itself, not a wrapper that
	// leaves it lingering with our stderr.
	bin := filepath.Join(tmp, "pfdrl")
	build := exec.Command("go", "build", "-o", bin, "./cmd/pfdrl")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building pfdrl: %v\n%s", err, out)
	}

	cmd := exec.Command(bin,
		"-homes", "2", "-devices", "2", "-days", "1", "-forecast", "LR",
		"-telemetry-addr", "127.0.0.1:0",
		"-telemetry-linger", "30s",
		"-journal", journal,
	)
	cmd.Dir = root
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	}()

	// The bound address is printed before the simulation starts; the linger
	// line marks the run (and the journal) complete while the server stays
	// up for scraping.
	addrRe := regexp.MustCompile(`telemetry: serving on (\S+)`)
	var addr string
	sc := bufio.NewScanner(stdout)
	addrCh := make(chan string, 1)
	lingerCh := make(chan struct{})
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if m := addrRe.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
			if strings.Contains(line, "telemetry: lingering") {
				close(lingerCh)
			}
		}
		_, _ = io.Copy(io.Discard, stdout)
	}()
	select {
	case addr = <-addrCh:
	case <-time.After(2 * time.Minute):
		t.Fatal("timed out waiting for the telemetry server to announce its address")
	}

	get := func(path string) string {
		t.Helper()
		var lastErr error
		for i := 0; i < 20; i++ {
			resp, err := http.Get("http://" + addr + path)
			if err == nil {
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr == nil && resp.StatusCode == 200 {
					return string(body)
				}
				lastErr = fmt.Errorf("%s: status %d (%v)", path, resp.StatusCode, rerr)
			} else {
				lastErr = err
			}
			time.Sleep(500 * time.Millisecond)
		}
		t.Fatalf("GET %s never succeeded: %v", path, lastErr)
		return ""
	}

	if body := get("/healthz"); !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("/healthz = %s", body)
	}

	// Wait for the short run to finish (the linger keeps the server up), so
	// the scrape sees every plane's series populated and the journal is
	// fully written.
	select {
	case <-lingerCh:
	case <-time.After(3 * time.Minute):
		t.Fatal("timed out waiting for the run to finish")
	}
	metrics := get("/metrics")
	for _, series := range []string{
		"pfdrl_sched_", // scheduler plane (waves or inline)
		`pfdrl_fednet_bytes_sent_total{plane="forecast"}`,
		`pfdrl_fednet_bytes_sent_total{plane="ems"}`,
		`pfdrl_fed_rounds_total{plane="forecast"}`,
		`pfdrl_fed_rounds_total{plane="ems"}`,
		"pfdrl_dqn_learn_steps_total",
		"pfdrl_dqn_loss_bucket",
		"pfdrl_core_ems_steps_total",
		"pfdrl_core_saved_kwh",
	} {
		if !strings.Contains(metrics, series) {
			t.Errorf("/metrics missing %q", series)
		}
	}

	var trace struct {
		TotalRecorded uint64 `json:"total_recorded"`
	}
	if err := json.Unmarshal([]byte(get("/debug/trace")), &trace); err != nil {
		t.Fatalf("/debug/trace: %v", err)
	}
	if trace.TotalRecorded == 0 {
		t.Error("/debug/trace recorded no spans")
	}

	// The journal flushes per record; after a full day it must hold 24 hour
	// records and at least one round record.
	blob, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	hours, rounds := 0, 0
	for _, line := range strings.Split(strings.TrimSpace(string(blob)), "\n") {
		var rec struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("journal line %q: %v", line, err)
		}
		switch rec.Type {
		case "hour":
			hours++
		case "round":
			rounds++
		}
	}
	if hours != 24 || rounds == 0 {
		t.Errorf("journal has %d hour and %d round records, want 24 and ≥1", hours, rounds)
	}
}
