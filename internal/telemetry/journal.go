package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// Journal streams one JSON record per line to a writer — the run journal
// that replays a simulation's per-hour/per-round timeline offline. Records
// are flushed as they are emitted (the cadence is one record per simulated
// hour or federation round, so the syscall cost is negligible and a killed
// process loses at most the record in flight).
type Journal struct {
	mu  sync.Mutex
	w   io.Writer
	enc *json.Encoder
	err error
}

// NewJournal wraps w as a JSONL journal.
func NewJournal(w io.Writer) *Journal {
	return &Journal{w: w, enc: json.NewEncoder(w)}
}

// Emit appends one record as a JSON line. After the first write error the
// journal goes quiet and holds the error for Err — telemetry must never
// abort a simulation. No-op on a nil receiver.
func (j *Journal) Emit(record any) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(record)
}

// Err returns the first write error, if any (nil on a nil receiver).
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}
