package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// Handler returns the introspection endpoints for a sink:
//
//	/metrics      Prometheus text exposition of every registered instrument
//	/healthz      liveness JSON (status, uptime, runtime facts)
//	/debug/trace  the tracer's retained spans, oldest first, as JSON
//	/debug/pprof  the standard net/http/pprof family
//
// The handler is safe to serve while the simulation runs: every read takes
// a consistent snapshot without blocking instrument updates.
func (s *Sink) Handler() http.Handler { return s.Mux() }

// Mux returns the introspection endpoints as a concrete *http.ServeMux so
// hosts can register additional routes on the same server — the serve
// daemon mounts its /v1/* API beside /metrics and /debug this way.
func (s *Sink) Mux() *http.ServeMux {
	started := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if s != nil && s.Registry != nil {
			_ = s.Registry.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status":         "ok",
			"uptime_seconds": time.Since(started).Seconds(),
			"go_version":     runtime.Version(),
			"gomaxprocs":     runtime.GOMAXPROCS(0),
			"num_goroutine":  runtime.NumGoroutine(),
		})
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var spans []Span
		var total uint64
		if s != nil {
			spans = s.Tracer.Snapshot()
			total = s.Tracer.Total()
		}
		_ = json.NewEncoder(w).Encode(map[string]any{
			"total_recorded": total,
			"retained":       len(spans),
			"spans":          spans,
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ListenAndServe binds addr (":0" picks a free port), serves the sink's
// Handler in a background goroutine, and returns the server plus the bound
// address. Callers own shutdown (srv.Close or srv.Shutdown).
func (s *Sink) ListenAndServe(addr string) (*http.Server, string, error) {
	return s.ListenAndServeHandler(addr, s.Handler())
}

// ListenAndServeHandler is ListenAndServe with a caller-supplied handler —
// typically the sink's Mux extended with extra routes.
func (s *Sink) ListenAndServeHandler(addr string, h http.Handler) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
