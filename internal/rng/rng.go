// Package rng provides a draw-counting wrapper around math/rand's default
// source, making PRNG streams checkpointable without changing a single
// drawn bit.
//
// The simulation pins golden results down to IEEE-754 bit patterns, so a
// resumable engine cannot swap the generator for one with an exportable
// state. Instead, Source passes every draw through to the standard
// rand.NewSource generator unchanged and merely counts them. A stream's
// persistent state is then just (seed, draws): restoring re-seeds the
// generator and discards the counted number of draws. The standard
// generator advances its internal state exactly one step per Int63 or
// Uint64 call (Int63 is Uint64 masked to 63 bits), so the fast-forward
// lands on the identical state no matter which mix of methods produced the
// original draw count — a property the package test pins.
package rng

import "math/rand"

// Source is a counting rand.Source64. It is not safe for concurrent use,
// matching the contract of the source it wraps; every consumer in this
// repo owns its stream (per-agent exploration, per-fabric drop processes).
type Source struct {
	seed  int64
	draws uint64
	src   rand.Source64
}

// NewSource returns a counting source seeded like rand.NewSource(seed).
func NewSource(seed int64) *Source {
	return &Source{seed: seed, src: rand.NewSource(seed).(rand.Source64)}
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

// Uint64 implements rand.Source64.
func (s *Source) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

// Seed implements rand.Source, resetting the draw count.
func (s *Source) Seed(seed int64) {
	s.seed = seed
	s.draws = 0
	s.src.Seed(seed)
}

// SeedValue returns the seed the stream was (re)initialized with.
func (s *Source) SeedValue() int64 { return s.seed }

// Draws returns the number of values drawn since the last (re)seed.
func (s *Source) Draws() uint64 { return s.draws }

// SeekTo rewinds the stream to its seed and fast-forwards past draws
// values, leaving the source in the exact state it had after that many
// draws. Restoring a checkpointed stream is SeekTo(savedDraws).
func (s *Source) SeekTo(draws uint64) {
	s.src.Seed(s.seed)
	for i := uint64(0); i < draws; i++ {
		s.src.Uint64()
	}
	s.draws = draws
}
