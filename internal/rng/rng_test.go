package rng

import (
	"math/rand"
	"testing"
)

// TestPassthroughBitIdentical pins the core contract: a counting source
// drives rand.Rand to the exact values a plain rand.NewSource produces.
func TestPassthroughBitIdentical(t *testing.T) {
	a := rand.New(rand.NewSource(42))
	b := rand.New(NewSource(42))
	for i := 0; i < 1000; i++ {
		if x, y := a.Float64(), b.Float64(); x != y {
			t.Fatalf("draw %d: Float64 %v != %v", i, x, y)
		}
		if x, y := a.Intn(17), b.Intn(17); x != y {
			t.Fatalf("draw %d: Intn %v != %v", i, x, y)
		}
		if x, y := a.Int63(), b.Int63(); x != y {
			t.Fatalf("draw %d: Int63 %v != %v", i, x, y)
		}
	}
}

// TestSeekToResumesStream pins the restore contract: after an arbitrary mix
// of high-level draws, a fresh source SeekTo'd to the recorded count
// continues the stream bit-for-bit. This is what makes (seed, draws) a
// sufficient checkpoint of the stream.
func TestSeekToResumesStream(t *testing.T) {
	src := NewSource(7)
	r := rand.New(src)
	// A deliberately mixed draw pattern: Float64, Intn, Uint64, Shuffle.
	perm := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for i := 0; i < 257; i++ {
		_ = r.Float64()
		_ = r.Intn(9)
		_ = r.Uint64()
		r.Shuffle(len(perm), func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
	}
	draws := src.Draws()

	resumed := NewSource(7)
	resumed.SeekTo(draws)
	r2 := rand.New(resumed)
	for i := 0; i < 100; i++ {
		if x, y := r.Float64(), r2.Float64(); x != y {
			t.Fatalf("resumed draw %d: %v != %v", i, x, y)
		}
		if x, y := r.Intn(1000), r2.Intn(1000); x != y {
			t.Fatalf("resumed draw %d: Intn %v != %v", i, x, y)
		}
	}
	if resumed.Draws() <= draws {
		t.Fatalf("draw counter did not advance past %d", draws)
	}
}

// TestSeedResets verifies Seed zeroes the counter and restarts the stream.
func TestSeedResets(t *testing.T) {
	s := NewSource(3)
	r := rand.New(s)
	first := r.Int63()
	for i := 0; i < 10; i++ {
		r.Int63()
	}
	s.Seed(3)
	if s.Draws() != 0 {
		t.Fatalf("Draws after Seed = %d, want 0", s.Draws())
	}
	if got := rand.New(s).Int63(); got != first {
		t.Fatalf("reseeded first draw %d, want %d", got, first)
	}
}
