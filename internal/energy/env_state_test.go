package energy

import (
	"testing"
)

func stateTestEnv(t *testing.T) *Env {
	t.Helper()
	dev := Device{Type: "tv", OnKW: 0.1, StandbyKW: 0.01}
	pred := make([]float64, 120)
	real := make([]float64, 120)
	for i := range pred {
		pred[i] = 0.01 * float64(i%7)
		real[i] = 0.01 * float64(i%5)
	}
	env, err := NewEnv(dev, pred, real)
	if err != nil {
		t.Fatal(err)
	}
	env.LookAhead, env.LookBack = 6, 4
	return env
}

// TestStateAtZeroSpareCapacity pins the StateAt ownership contract: the
// returned slice is clamped to zero spare capacity, so appending to it (as
// core's time-feature path once did) must reallocate rather than scribble
// into Env-owned or shared memory.
func TestStateAtZeroSpareCapacity(t *testing.T) {
	env := stateTestEnv(t)
	s := env.StateAt(10)
	if cap(s) != len(s) {
		t.Fatalf("StateAt spare capacity %d, want 0", cap(s)-len(s))
	}
	orig := append([]float64(nil), s...)
	grown := append(s, 7, 8)
	grown[0] = -1 // must not alias s after the forced reallocation
	if s[0] != orig[0] {
		t.Fatal("append to StateAt result aliased the original slice")
	}
	if s2 := env.StateAt(10); len(s2) != len(orig) {
		t.Fatal("StateAt length changed")
	}
}

func TestStateIntoMatchesStateAt(t *testing.T) {
	env := stateTestEnv(t)
	dst := make([]float64, env.StateDim())
	for _, at := range []int{0, 3, 10, 60, 119} {
		want := env.StateAt(at)
		// Dirty the buffer so stale values would show if any element were
		// skipped (the zero-padding branches must write explicitly).
		for i := range dst {
			dst[i] = -42
		}
		got := env.StateInto(dst, at)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("StateInto(t=%d)[%d] = %v, want %v", at, i, got[i], want[i])
			}
		}
	}
}

func TestStateIntoAllocFree(t *testing.T) {
	env := stateTestEnv(t)
	dst := make([]float64, env.StateDim())
	if n := testing.AllocsPerRun(50, func() { env.StateInto(dst, 30) }); n != 0 {
		t.Errorf("StateInto allocates %v per run, want 0", n)
	}
}

func TestStateIntoWrongLengthPanics(t *testing.T) {
	env := stateTestEnv(t)
	defer func() {
		if recover() == nil {
			t.Fatal("StateInto with wrong-length dst did not panic")
		}
	}()
	env.StateInto(make([]float64, env.StateDim()+1), 0)
}
