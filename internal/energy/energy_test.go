package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func testDevice() Device {
	return Device{Type: "tv", OffKW: 0, StandbyKW: 0.005, OnKW: 0.1}
}

func TestModeString(t *testing.T) {
	if Off.String() != "off" || Standby.String() != "standby" || On.String() != "on" {
		t.Fatal("mode strings wrong")
	}
	if Mode(9).String() == "" {
		t.Fatal("invalid mode should still render")
	}
}

func TestModeValidAndDistance(t *testing.T) {
	if !Off.Valid() || !Standby.Valid() || !On.Valid() || Mode(-1).Valid() || Mode(3).Valid() {
		t.Fatal("Valid wrong")
	}
	if Distance(Off, On) != 2 || Distance(On, Off) != 2 || Distance(Standby, On) != 1 || Distance(On, On) != 0 {
		t.Fatal("Distance wrong")
	}
}

func TestDeviceValidate(t *testing.T) {
	if err := testDevice().Validate(); err != nil {
		t.Fatalf("valid device rejected: %v", err)
	}
	bad := []Device{
		{Type: "", StandbyKW: 1, OnKW: 2},
		{Type: "x", StandbyKW: 0, OnKW: 2},
		{Type: "x", StandbyKW: -1, OnKW: 2},
		{Type: "x", StandbyKW: 1.9, OnKW: 2}, // overlapping bands
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Fatalf("bad device %d accepted", i)
		}
	}
}

func TestPowerKW(t *testing.T) {
	d := testDevice()
	if d.PowerKW(Off) != 0 || d.PowerKW(Standby) != 0.005 || d.PowerKW(On) != 0.1 {
		t.Fatal("PowerKW wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PowerKW(invalid) did not panic")
		}
	}()
	d.PowerKW(Mode(5))
}

func TestClassifyModeBands(t *testing.T) {
	d := testDevice()
	cases := []struct {
		kw   float64
		want Mode
	}{
		{0, Off},
		{0.002, Off},      // below half the standby band
		{0.0045, Standby}, // 0.9*Vs
		{0.005, Standby},  // nominal standby
		{0.0055, Standby}, // 1.1*Vs
		{0.09, On},        // 0.9*Von
		{0.1, On},         // nominal on
		{0.11, On},        // 1.1*Von
		{0.06, On},        // between bands, nearer On
		{0.02, Standby},   // between bands, nearer standby
		{0.25, On},        // way above: nearest is On
	}
	for _, c := range cases {
		if got := d.ClassifyMode(c.kw); got != c.want {
			t.Fatalf("ClassifyMode(%v) = %v, want %v", c.kw, got, c.want)
		}
	}
}

func TestClassifySeries(t *testing.T) {
	d := testDevice()
	got := d.ClassifySeries([]float64{0, 0.005, 0.1})
	if got[0] != Off || got[1] != Standby || got[2] != On {
		t.Fatalf("ClassifySeries = %v", got)
	}
}

// TestRewardTable1Exhaustive checks every cell of the paper's Table 1.
func TestRewardTable1Exhaustive(t *testing.T) {
	want := map[[2]Mode]float64{
		{On, On}: 10, {On, Standby}: -10, {On, Off}: -30,
		{Standby, On}: -10, {Standby, Standby}: 10, {Standby, Off}: 30,
		{Off, On}: -30, {Off, Standby}: -10, {Off, Off}: 10,
	}
	for k, w := range want {
		if got := Reward(k[0], k[1]); got != w {
			t.Fatalf("Reward(%v, %v) = %v, want %v", k[0], k[1], got, w)
		}
	}
}

func TestRewardPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Reward with invalid mode did not panic")
		}
	}()
	Reward(Mode(7), On)
}

func TestPropRewardBounded(t *testing.T) {
	f := func(a, b uint8) bool {
		truth := Mode(int(a) % 3)
		action := Mode(int(b) % 3)
		r := Reward(truth, action)
		return math.Abs(r) <= MaxAbsReward
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func makeEnv(t *testing.T, n int) *Env {
	t.Helper()
	d := testDevice()
	pred := make([]float64, n)
	real := make([]float64, n)
	for i := range real {
		switch i % 3 {
		case 0:
			real[i] = 0 // off
		case 1:
			real[i] = d.StandbyKW
		case 2:
			real[i] = d.OnKW
		}
		pred[i] = real[i]
	}
	e, err := NewEnv(d, pred, real)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEnvErrors(t *testing.T) {
	d := testDevice()
	if _, err := NewEnv(d, []float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := NewEnv(d, nil, nil); err == nil {
		t.Fatal("empty traces accepted")
	}
	if _, err := NewEnv(Device{}, []float64{1}, []float64{1}); err == nil {
		t.Fatal("invalid device accepted")
	}
}

func TestEnvStateShapeAndPadding(t *testing.T) {
	e := makeEnv(t, 100)
	e.LookAhead, e.LookBack = 5, 4
	s := e.Reset()
	if len(s) != 9 || e.StateDim() != 9 {
		t.Fatalf("state dim %d, want 9", len(s))
	}
	// At t=0 the real-window should be all padding except the last slot.
	for i := 5; i < 8; i++ {
		if s[i] != 0 {
			t.Fatalf("expected zero padding at slot %d, got %v", i, s[i])
		}
	}
	if s[8] != e.Real[0]/e.Device.OnKW {
		t.Fatalf("newest real slot = %v", s[8])
	}
	// Predicted window should hold normalized pred[0..5).
	for i := 0; i < 5; i++ {
		if s[i] != e.Pred[i]/e.Device.OnKW {
			t.Fatalf("pred slot %d = %v", i, s[i])
		}
	}
}

func TestEnvStepAdvancesAndEnds(t *testing.T) {
	e := makeEnv(t, 5)
	e.Reset()
	steps := 0
	for {
		_, _, done := e.Step(Off)
		steps++
		if done {
			break
		}
	}
	if steps != 5 {
		t.Fatalf("episode length %d, want 5", steps)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Step after done did not panic")
		}
	}()
	e.Step(Off)
}

func TestEnvStepInvalidActionPanics(t *testing.T) {
	e := makeEnv(t, 5)
	e.Reset()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid action did not panic")
		}
	}()
	e.Step(Mode(3))
}

func TestRunPolicyOracleSavesEverything(t *testing.T) {
	e := makeEnv(t, 300)
	// Oracle: off when truth is standby or off, on when on.
	oracle := PolicyFunc(func(_ []float64) Mode {
		truth := e.TruthAt(e.T())
		if truth == On {
			return On
		}
		return Off
	})
	sv := e.RunPolicy(oracle)
	if sv.SavedFraction() != 1 {
		t.Fatalf("oracle saved fraction = %v, want 1", sv.SavedFraction())
	}
	if sv.ComfortViolations != 0 {
		t.Fatalf("oracle comfort violations = %d", sv.ComfortViolations)
	}
	if sv.Steps != 300 {
		t.Fatalf("steps = %d", sv.Steps)
	}
	// 100 standby minutes at 0.005 kW = 100/60*0.005 kWh.
	wantStandby := 100.0 / 60.0 * 0.005
	if math.Abs(sv.StandbyKWh-wantStandby) > 1e-12 {
		t.Fatalf("standby kWh = %v, want %v", sv.StandbyKWh, wantStandby)
	}
}

func TestRunPolicyWorstCase(t *testing.T) {
	e := makeEnv(t, 300)
	alwaysOn := PolicyFunc(func(_ []float64) Mode { return On })
	sv := e.RunPolicy(alwaysOn)
	if sv.SavedKWh != 0 {
		t.Fatalf("always-on saved %v kWh, want 0", sv.SavedKWh)
	}
	if sv.SavedFraction() != 0 {
		t.Fatal("saved fraction should be 0")
	}
}

func TestSavingsAdd(t *testing.T) {
	a := Savings{SavedKWh: 1, StandbyKWh: 2, ComfortViolations: 3, TotalReward: 4, Steps: 5}
	b := a
	a.Add(b)
	if a.SavedKWh != 2 || a.StandbyKWh != 4 || a.ComfortViolations != 6 || a.TotalReward != 8 || a.Steps != 10 {
		t.Fatalf("Add wrong: %+v", a)
	}
	var empty Savings
	if empty.SavedFraction() != 0 {
		t.Fatal("empty SavedFraction should be 0")
	}
}

func TestSavingsByHour(t *testing.T) {
	d := testDevice()
	// 24h trace: standby during hours 0-11, on during 12-23.
	n := 24 * 60
	real := make([]float64, n)
	for i := range real {
		if i < 12*60 {
			real[i] = d.StandbyKW
		} else {
			real[i] = d.OnKW
		}
	}
	e, err := NewEnv(d, real, real)
	if err != nil {
		t.Fatal(err)
	}
	alwaysOff := PolicyFunc(func(_ []float64) Mode { return Off })
	buckets := e.SavingsByHour(alwaysOff)
	for h := 0; h < 12; h++ {
		want := 60 * d.StandbyKW / 60
		if math.Abs(buckets[h]-want) > 1e-12 {
			t.Fatalf("hour %d saved %v, want %v", h, buckets[h], want)
		}
	}
	for h := 12; h < 24; h++ {
		if buckets[h] != 0 {
			t.Fatalf("hour %d saved %v, want 0", h, buckets[h])
		}
	}
}

func TestPropStateNormalizedBounded(t *testing.T) {
	e := makeEnv(t, 200)
	f := func(tRaw uint16) bool {
		tt := int(tRaw) % 200
		for _, v := range e.StateAt(tt) {
			if v < 0 || v > 1.2 { // OnKW-normalized plus band tolerance
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
