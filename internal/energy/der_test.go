package energy

import (
	"math"
	"testing"
)

func TestDERSpecValidate(t *testing.T) {
	badBatteries := []BatterySpec{
		{CapacityKWh: 0, MaxChargeKW: 3, MaxDischargeKW: 3},
		{CapacityKWh: 10, MaxChargeKW: 0, MaxDischargeKW: 3},
		{CapacityKWh: 10, MaxChargeKW: 3, MaxDischargeKW: -1},
		{CapacityKWh: 10, MaxChargeKW: 3, MaxDischargeKW: 3, RoundTripEfficiency: 1.2},
		{CapacityKWh: 10, MaxChargeKW: 3, MaxDischargeKW: 3, InitSoC: 1.5},
	}
	for i, s := range badBatteries {
		if _, err := NewBattery(s); err == nil {
			t.Errorf("bad battery spec %d accepted", i)
		}
	}
	badEVs := []EVSpec{
		{CapacityKWh: 0, RateKW: []float64{3}, DepartMin: 60},
		{CapacityKWh: 40, RateKW: nil, DepartMin: 60},
		{CapacityKWh: 40, RateKW: []float64{3, -1}, DepartMin: 60},
		{CapacityKWh: 40, RateKW: []float64{math.NaN()}, DepartMin: 60},
		{CapacityKWh: 40, RateKW: []float64{3}, ArrivalMin: -5, DepartMin: 60},
		{CapacityKWh: 40, RateKW: []float64{3}, ArrivalMin: 120, DepartMin: 60},
		{CapacityKWh: 40, RateKW: []float64{3}, DepartMin: 2000},
		{CapacityKWh: 40, RateKW: []float64{3}, DepartMin: 60, TargetSoC: 2},
		{CapacityKWh: 40, RateKW: []float64{3}, DepartMin: 60, MissPenaltyPerKWh: -1},
	}
	for i, s := range badEVs {
		if _, err := NewEVCharger(s); err == nil {
			t.Errorf("bad EV spec %d accepted", i)
		}
	}
	for i, s := range []PVSpec{{PeakKW: 0}, {PeakKW: -3}, {PeakKW: math.Inf(1)}} {
		if err := s.Validate(); err == nil {
			t.Errorf("bad PV spec %d accepted", i)
		}
	}
}

func TestBatteryDefaults(t *testing.T) {
	b, err := NewBattery(BatterySpec{CapacityKWh: 10, MaxChargeKW: 3, MaxDischargeKW: 3})
	if err != nil {
		t.Fatal(err)
	}
	if b.Spec.RoundTripEfficiency != 0.9 || b.Spec.InitSoC != 0.5 || b.SoC != 0.5 {
		t.Fatalf("defaults not applied: %+v SoC=%g", b.Spec, b.SoC)
	}
}

func TestBatteryStep(t *testing.T) {
	b, err := NewBattery(BatterySpec{
		CapacityKWh: 10, MaxChargeKW: 6, MaxDischargeKW: 6,
		RoundTripEfficiency: 0.9, InitSoC: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Charge with 2 kW PV on offer at $0.30/kWh: 6 kW total, 2 from PV,
	// 4 from grid → cost 4/60·0.30·100 = 2 cents; SoC gains 6/60·0.9/10.
	st := b.Step(BatteryCharge, 2, 0.30)
	if st.PVUsedKW != 2 || st.GridKW != 4 {
		t.Fatalf("charge split: PV %g grid %g, want 2 and 4", st.PVUsedKW, st.GridKW)
	}
	if want := -4.0 / 60 * 0.30 * 100; math.Abs(st.Reward-want) > 1e-12 {
		t.Fatalf("charge reward %g, want %g", st.Reward, want)
	}
	if want := 0.5 + 6.0/60*0.9/10; math.Abs(b.SoC-want) > 1e-12 {
		t.Fatalf("SoC %g, want %g", b.SoC, want)
	}
	// Idle is free and stateless.
	soc := b.SoC
	if st := b.Step(BatteryIdle, 5, 0.30); st.Reward != 0 || st.GridKW != 0 || b.SoC != soc {
		t.Fatal("idle step changed state or paid")
	}
	// Discharge credits at the import rate.
	st = b.Step(BatteryDischarge, 0, 0.20)
	if st.GridKW != -6 {
		t.Fatalf("discharge GridKW %g, want -6", st.GridKW)
	}
	if want := 6.0 / 60 * 0.20 * 100; math.Abs(st.Reward-want) > 1e-12 {
		t.Fatalf("discharge reward %g, want %g", st.Reward, want)
	}
	// Full battery: charge saturates at zero power.
	b.SoC = 1
	if st := b.Step(BatteryCharge, 5, 0.30); st.GridKW != 0 || st.Reward != 0 {
		t.Fatal("full battery still drew power")
	}
	// Empty battery: discharge is a no-op.
	b.SoC = 0
	if st := b.Step(BatteryDischarge, 0, 0.30); st.GridKW != 0 || st.Reward != 0 {
		t.Fatal("empty battery still discharged")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("invalid action did not panic")
			}
		}()
		b.Step(7, 0, 0.1)
	}()
}

func TestEVChargerSession(t *testing.T) {
	ev, err := NewEVCharger(EVSpec{
		CapacityKWh: 60, RateKW: []float64{3, 6},
		ArrivalMin: 0, DepartMin: 3,
		InitSoC: 0.5, TargetSoC: 0.9, MissPenaltyPerKWh: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Actions() != 3 {
		t.Fatalf("Actions = %d, want 3", ev.Actions())
	}
	// Minute 0: arrival resets SoC, rate level 2 = 6 kW from grid.
	st := ev.Step(2, 0, 0.10, 0, 0)
	if want := -6.0 / 60 * 0.10 * 100; math.Abs(st.Reward-want) > 1e-12 {
		t.Fatalf("charge reward %g, want %g", st.Reward, want)
	}
	if want := 0.5 + 6.0/60/60; math.Abs(ev.SoC-want) > 1e-12 {
		t.Fatalf("SoC %g, want %g", ev.SoC, want)
	}
	// Minute 1: 50% curtailment halves the rate.
	st = ev.Step(2, 0, 0.10, 0.5, 1)
	if math.Abs(st.GridKW-3) > 1e-12 {
		t.Fatalf("curtailed rate %g, want 3", st.GridKW)
	}
	// Minute 2 (DepartMin-1): idle → deadline miss, penalty = shortfall
	// kWh × 50 cents on top of the (zero) charge cost.
	st = ev.Step(0, 0, 0.10, 0, 2)
	if !st.DeadlineMiss {
		t.Fatal("deadline miss not flagged")
	}
	wantShort := (0.9 - ev.SoC) * 60
	if math.Abs(st.ShortfallKWh-wantShort) > 1e-12 {
		t.Fatalf("shortfall %g, want %g", st.ShortfallKWh, wantShort)
	}
	if math.Abs(st.Reward+wantShort*50) > 1e-12 {
		t.Fatalf("penalty reward %g, want %g", st.Reward, -wantShort*50)
	}
	// Outside the session everything is inert, even a charge action.
	st = ev.Step(2, 5, 0.10, 0, 100)
	if st.Reward != 0 || st.GridKW != 0 {
		t.Fatal("unplugged step moved power")
	}
	// Next arrival resets the session.
	ev.SoC = 0.97
	ev.Step(0, 0, 0.10, 0, 0)
	if ev.SoC != 0.5 {
		t.Fatalf("arrival did not reset SoC: %g", ev.SoC)
	}
}

func TestEVChargerPVFirst(t *testing.T) {
	ev, err := NewEVCharger(EVSpec{
		CapacityKWh: 60, RateKW: []float64{6},
		ArrivalMin: 0, DepartMin: 1440, InitSoC: 0.2, TargetSoC: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := ev.Step(1, 10, 0.10, 0, 600)
	if st.PVUsedKW != 6 || st.GridKW != 0 || st.Reward != 0 {
		t.Fatalf("surplus PV should cover the whole rate: %+v", st)
	}
}

func TestPVOutputCurve(t *testing.T) {
	pv := PVSpec{PeakKW: 4}
	if pv.OutputKW(6, 0) != 0 || pv.OutputKW(6, 23*60) != 0 {
		t.Fatal("PV produced outside daylight")
	}
	noon := pv.OutputKW(6, 12*60)
	if math.Abs(noon-4) > 1e-9 {
		t.Fatalf("June noon output %g, want 4 (peak × 1.0)", noon)
	}
	dec := pv.OutputKW(12, 12*60)
	if math.Abs(dec-4*0.55) > 1e-9 {
		t.Fatalf("December noon output %g, want %g", dec, 4*0.55)
	}
	morning, afternoon := pv.OutputKW(6, 9*60), pv.OutputKW(6, 15*60)
	if math.Abs(morning-afternoon) > 1e-9 {
		t.Fatal("bell should be symmetric around noon")
	}
	if morning <= 0 || morning >= noon {
		t.Fatalf("mid-morning output %g outside (0, %g)", morning, noon)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("month 0 did not panic")
			}
		}()
		pv.OutputKW(0, 600)
	}()
}

func TestDERStateInto(t *testing.T) {
	b, _ := NewBattery(BatterySpec{CapacityKWh: 10, MaxChargeKW: 4, MaxDischargeKW: 4})
	st := b.StateInto(make([]float64, BatteryStateDim), 0.2, 0.1, 2, 360)
	if st[0] != 0.5 || st[1] != 2 || st[2] != 0.5 {
		t.Fatalf("battery state %v", st)
	}
	if math.Abs(st[3]-1) > 1e-12 { // sin at 06:00 = 1
		t.Fatalf("battery time feature %g, want 1", st[3])
	}
	ev, _ := NewEVCharger(EVSpec{
		CapacityKWh: 60, RateKW: []float64{6}, ArrivalMin: 600, DepartMin: 1200, InitSoC: 0.3, TargetSoC: 0.8,
	})
	in := ev.StateInto(make([]float64, EVStateDim), 0.1, 0.1, 900)
	if in[2] != 1 || math.Abs(in[3]-float64(1200-900)/1440) > 1e-12 {
		t.Fatalf("plugged state %v", in)
	}
	out := ev.StateInto(make([]float64, EVStateDim), 0.1, 0.1, 60)
	if out[2] != 0 || out[3] != 0 {
		t.Fatalf("unplugged state %v", out)
	}
	// Zero price reference guards division.
	if s := b.StateInto(make([]float64, BatteryStateDim), 0.2, 0, 0, 0); s[1] != 0 {
		t.Fatal("zero priceRef should normalize to 0")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("short dst did not panic")
			}
		}()
		b.StateInto(make([]float64, 2), 0.1, 0.1, 0, 0)
	}()
}
