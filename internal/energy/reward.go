package energy

import "fmt"

// Reward values from Table 1 of the paper.
const (
	// RewardMatch is paid when the agent's action equals the ground-truth
	// mode.
	RewardMatch = 10.0
	// RewardOneOff is paid when the action is one mode step away from the
	// truth.
	RewardOneOff = -10.0
	// RewardTwoOff is paid when the action is two mode steps away.
	RewardTwoOff = -30.0
	// RewardStandbyToOff is the exception row: the system *wants* standby
	// devices switched off, so truth=standby & action=off earns the largest
	// positive reward instead of the one-step penalty.
	RewardStandbyToOff = 30.0
)

// Reward implements the paper's Table 1 exactly:
//
//	truth \ action |  On    Standby  Off
//	On             | +10     -10     -30
//	Standby        | -10     +10     +30  ← exception
//	Off            | -30     -10     +10
//
// It panics on invalid modes; the action space is closed.
func Reward(truth, action Mode) float64 {
	if !truth.Valid() || !action.Valid() {
		panic(fmt.Sprintf("energy: Reward(%d, %d) with invalid mode", int(truth), int(action)))
	}
	if truth == Standby && action == Off {
		return RewardStandbyToOff
	}
	switch Distance(truth, action) {
	case 0:
		return RewardMatch
	case 1:
		return RewardOneOff
	default:
		return RewardTwoOff
	}
}

// MaxAbsReward is the largest reward magnitude; used to normalize targets.
const MaxAbsReward = 30.0
