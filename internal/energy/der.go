// Distributed energy resources (DERs): the scenario layer's device
// extensions beyond the paper's standby-trimming appliances. Three
// families, after Rezazadeh & Bartzoudis's FDRL micro-grid formulation:
//
//   - Battery: a stationary storage unit with a 3-action dispatch space
//     (discharge / idle / charge) arbitraging the TOU price curve;
//   - EVCharger: a deadline-constrained EV charging session with a
//     multi-level charge-rate action space and a terminal shortfall
//     penalty at departure;
//   - PVSpec: a passive rooftop PV source whose deterministic output
//     curve feeds the dispatchable units (no agent of its own).
//
// Rewards are in cents (dollars × 100) so their magnitudes sit in the
// range the DQN's default RewardScale was tuned for. Prices reach the
// units as plain $/kWh numbers supplied by the caller each minute —
// this package stays independent of the pricing package.
package energy

import (
	"fmt"
	"math"
)

// Battery action indices (the dispatch action space of a storage unit).
const (
	BatteryDischarge = 0
	BatteryIdle      = 1
	BatteryCharge    = 2
	// BatteryActions is the battery's action-space size.
	BatteryActions = 3
)

// BatterySpec declares a stationary battery.
type BatterySpec struct {
	// CapacityKWh is the usable storage capacity.
	CapacityKWh float64
	// MaxChargeKW / MaxDischargeKW bound the unit's power in each
	// direction.
	MaxChargeKW    float64
	MaxDischargeKW float64
	// RoundTripEfficiency is the charge→discharge energy ratio, applied
	// on the charge leg. 0 selects the default 0.9.
	RoundTripEfficiency float64
	// InitSoC is the state of charge at day 0 (fraction). 0 selects the
	// default 0.5; SoC then persists across days.
	InitSoC float64
}

// withDefaults fills the zero-value knobs.
func (s BatterySpec) withDefaults() BatterySpec {
	if s.RoundTripEfficiency == 0 {
		s.RoundTripEfficiency = 0.9
	}
	if s.InitSoC == 0 {
		s.InitSoC = 0.5
	}
	return s
}

// Validate checks the spec's ranges.
func (s BatterySpec) Validate() error {
	if s.CapacityKWh <= 0 {
		return fmt.Errorf("energy: battery CapacityKWh %g must be positive", s.CapacityKWh)
	}
	if s.MaxChargeKW <= 0 || s.MaxDischargeKW <= 0 {
		return fmt.Errorf("energy: battery power limits must be positive (charge=%g discharge=%g)",
			s.MaxChargeKW, s.MaxDischargeKW)
	}
	if s.RoundTripEfficiency < 0 || s.RoundTripEfficiency > 1 {
		return fmt.Errorf("energy: battery RoundTripEfficiency %g outside [0,1]", s.RoundTripEfficiency)
	}
	if s.InitSoC < 0 || s.InitSoC > 1 {
		return fmt.Errorf("energy: battery InitSoC %g outside [0,1]", s.InitSoC)
	}
	return nil
}

// EVSpec declares a daily EV charging session: the vehicle arrives at
// ArrivalMin with InitSoC, must reach TargetSoC by DepartMin, and charges
// at one of the configured rate levels (action 0 is idle).
type EVSpec struct {
	// CapacityKWh is the vehicle battery capacity.
	CapacityKWh float64
	// RateKW lists the selectable charge rates; the action space is
	// len(RateKW)+1 (action 0 = idle, action i = RateKW[i-1]).
	RateKW []float64
	// ArrivalMin / DepartMin bound the daily plug-in window
	// [ArrivalMin, DepartMin) in minutes of day. A window wrapping
	// midnight is not supported.
	ArrivalMin, DepartMin int
	// InitSoC is the state of charge at each arrival; TargetSoC the
	// deadline requirement at departure.
	InitSoC, TargetSoC float64
	// MissPenaltyPerKWh is the terminal penalty in cents per kWh of
	// shortfall below TargetSoC at departure. 0 selects the default 50
	// (steeper than any charging cost, so deadlines dominate price).
	MissPenaltyPerKWh float64
}

// withDefaults fills the zero-value knobs.
func (s EVSpec) withDefaults() EVSpec {
	if s.MissPenaltyPerKWh == 0 {
		s.MissPenaltyPerKWh = 50
	}
	return s
}

// Actions returns the spec's action-space size.
func (s EVSpec) Actions() int { return len(s.RateKW) + 1 }

// Validate checks the spec's ranges.
func (s EVSpec) Validate() error {
	if s.CapacityKWh <= 0 {
		return fmt.Errorf("energy: EV CapacityKWh %g must be positive", s.CapacityKWh)
	}
	if len(s.RateKW) == 0 {
		return fmt.Errorf("energy: EV needs at least one charge rate")
	}
	for i, r := range s.RateKW {
		if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("energy: EV RateKW[%d] = %g must be positive and finite", i, r)
		}
	}
	if s.ArrivalMin < 0 || s.ArrivalMin >= 24*60 {
		return fmt.Errorf("energy: EV ArrivalMin %d outside [0,1440)", s.ArrivalMin)
	}
	if s.DepartMin <= s.ArrivalMin || s.DepartMin > 24*60 {
		return fmt.Errorf("energy: EV DepartMin %d outside (%d,1440]", s.DepartMin, s.ArrivalMin)
	}
	if s.InitSoC < 0 || s.InitSoC > 1 || s.TargetSoC < 0 || s.TargetSoC > 1 {
		return fmt.Errorf("energy: EV SoC bounds outside [0,1] (init=%g target=%g)", s.InitSoC, s.TargetSoC)
	}
	if s.MissPenaltyPerKWh < 0 {
		return fmt.Errorf("energy: EV MissPenaltyPerKWh %g must be ≥ 0", s.MissPenaltyPerKWh)
	}
	return nil
}

// PVSpec declares a rooftop PV source. PV is passive: its deterministic
// output curve offsets the dispatchable units' grid draw (allocation
// order is the scenario's spec order) and any leftover exports.
type PVSpec struct {
	// PeakKW is the array's peak AC output.
	PeakKW float64
}

// Validate checks the spec's ranges.
func (s PVSpec) Validate() error {
	if s.PeakKW <= 0 || math.IsNaN(s.PeakKW) || math.IsInf(s.PeakKW, 0) {
		return fmt.Errorf("energy: PV PeakKW %g must be positive and finite", s.PeakKW)
	}
	return nil
}

// pvSeasonal scales PV output per month (1-based index): long clear
// summer days at ~1.0, short winter days near 0.55.
var pvSeasonal = [13]float64{0,
	0.58, // Jan
	0.66, // Feb
	0.78, // Mar
	0.88, // Apr
	0.96, // May
	1.00, // Jun
	1.00, // Jul
	0.95, // Aug
	0.85, // Sep
	0.72, // Oct
	0.60, // Nov
	0.55, // Dec
}

// PV daylight window (minutes of day) for the output bell.
const (
	pvSunriseMin = 6 * 60
	pvSunsetMin  = 18 * 60
)

// OutputKW returns the deterministic PV output for a month (1–12) and
// minute of day: a half-sine bell over the 06:00–18:00 daylight window,
// scaled by the monthly seasonal factor. Deterministic by design — the
// scenario golden tests pin runs bit-exactly.
func (s PVSpec) OutputKW(month, minuteOfDay int) float64 {
	if month < 1 || month > 12 {
		panic(fmt.Sprintf("energy: PV month %d outside 1..12", month))
	}
	if minuteOfDay < pvSunriseMin || minuteOfDay >= pvSunsetMin {
		return 0
	}
	frac := float64(minuteOfDay-pvSunriseMin) / float64(pvSunsetMin-pvSunriseMin)
	return s.PeakKW * pvSeasonal[month] * math.Sin(math.Pi*frac)
}

// DERStep is the outcome of one dispatch minute.
type DERStep struct {
	// Reward is the step's reward in cents: grid cost negated, discharge
	// credit positive, plus any terminal deadline penalty.
	Reward float64
	// GridKW is the unit's grid draw this minute (negative = export/
	// discharge credit back to the home bus).
	GridKW float64
	// PVUsedKW is the share of the offered PV power the unit absorbed.
	PVUsedKW float64
	// DeadlineMiss marks an EV departure with SoC below target;
	// ShortfallKWh is the missing energy.
	DeadlineMiss bool
	ShortfallKWh float64
}

// Battery is the runtime state of one storage unit. SoC persists across
// days; only the scenario's day-0 construction sets it.
type Battery struct {
	Spec BatterySpec
	// SoC is the current state of charge (fraction of capacity).
	SoC float64
}

// NewBattery builds a unit from a validated spec.
func NewBattery(spec BatterySpec) (*Battery, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Battery{Spec: spec, SoC: spec.InitSoC}, nil
}

// Actions returns the battery's action-space size.
func (b *Battery) Actions() int { return BatteryActions }

// BatteryStateDim is the battery observation width: SoC, normalized
// price, normalized PV offer, and sin/cos time of day.
const BatteryStateDim = 5

// StateDim returns the observation width.
func (b *Battery) StateDim() int { return BatteryStateDim }

// StateInto writes the dispatch observation into dst (length StateDim):
// state of charge, the current price normalized by priceRef, the PV
// power on offer normalized by the charge limit, and time of day.
func (b *Battery) StateInto(dst []float64, price, priceRef, pvAvailKW float64, minuteOfDay int) []float64 {
	if len(dst) != BatteryStateDim {
		panic(fmt.Sprintf("energy: battery StateInto dst length %d, want %d", len(dst), BatteryStateDim))
	}
	dst[0] = b.SoC
	dst[1] = normPrice(price, priceRef)
	dst[2] = clamp01(pvAvailKW / b.Spec.MaxChargeKW)
	angle := 2 * math.Pi * float64(minuteOfDay) / float64(24*60)
	dst[3] = math.Sin(angle)
	dst[4] = math.Cos(angle)
	return dst
}

// Step applies one dispatch minute. pvAvailKW is free PV power on offer;
// price is the import rate in $/kWh (discharge credits at the same rate —
// behind-the-meter load shifting). Charging draws PV first, then grid.
func (b *Battery) Step(action int, pvAvailKW, price float64) DERStep {
	var st DERStep
	sp := b.Spec
	switch action {
	case BatteryCharge:
		// Power limited by the charger and by the headroom left this
		// minute (headroom is in stored kWh; the charge leg pays the
		// round-trip loss, so grid/PV energy in = stored/efficiency).
		headroomKWh := (1 - b.SoC) * sp.CapacityKWh
		maxKW := sp.MaxChargeKW
		if need := headroomKWh / sp.RoundTripEfficiency * 60; need < maxKW {
			maxKW = need
		}
		if maxKW <= 0 {
			break
		}
		st.PVUsedKW = math.Min(pvAvailKW, maxKW)
		st.GridKW = maxKW - st.PVUsedKW
		b.SoC += maxKW / 60 * sp.RoundTripEfficiency / sp.CapacityKWh
		if b.SoC > 1 {
			b.SoC = 1
		}
		st.Reward = -st.GridKW / 60 * price * 100
	case BatteryDischarge:
		storedKWh := b.SoC * sp.CapacityKWh
		maxKW := math.Min(sp.MaxDischargeKW, storedKWh*60)
		if maxKW <= 0 {
			break
		}
		b.SoC -= maxKW / 60 / sp.CapacityKWh
		if b.SoC < 0 {
			b.SoC = 0
		}
		st.GridKW = -maxKW
		st.Reward = maxKW / 60 * price * 100
	case BatteryIdle:
		// no-op
	default:
		panic(fmt.Sprintf("energy: battery Step with invalid action %d", action))
	}
	return st
}

// EVCharger is the runtime state of one EV charging point. Sessions are
// daily: SoC resets to InitSoC at ArrivalMin and the deadline penalty
// lands on the DepartMin−1 step.
type EVCharger struct {
	Spec EVSpec
	// SoC is the vehicle's current state of charge (fraction).
	SoC float64
}

// NewEVCharger builds a charging point from a validated spec.
func NewEVCharger(spec EVSpec) (*EVCharger, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &EVCharger{Spec: spec, SoC: spec.InitSoC}, nil
}

// Actions returns the charger's action-space size.
func (c *EVCharger) Actions() int { return c.Spec.Actions() }

// EVStateDim is the EV observation width: SoC, normalized price,
// plugged flag, normalized time to departure, and sin/cos time of day.
const EVStateDim = 6

// StateDim returns the observation width.
func (c *EVCharger) StateDim() int { return EVStateDim }

// Plugged reports whether the vehicle is on the charger at a minute of
// day.
func (c *EVCharger) Plugged(minuteOfDay int) bool {
	return minuteOfDay >= c.Spec.ArrivalMin && minuteOfDay < c.Spec.DepartMin
}

// StateInto writes the charging observation into dst (length StateDim).
func (c *EVCharger) StateInto(dst []float64, price, priceRef float64, minuteOfDay int) []float64 {
	if len(dst) != EVStateDim {
		panic(fmt.Sprintf("energy: EV StateInto dst length %d, want %d", len(dst), EVStateDim))
	}
	dst[0] = c.SoC
	dst[1] = normPrice(price, priceRef)
	if c.Plugged(minuteOfDay) {
		dst[2] = 1
		dst[3] = float64(c.Spec.DepartMin-minuteOfDay) / float64(24*60)
	} else {
		dst[2] = 0
		dst[3] = 0
	}
	angle := 2 * math.Pi * float64(minuteOfDay) / float64(24*60)
	dst[4] = math.Sin(angle)
	dst[5] = math.Cos(angle)
	return dst
}

// Step applies one charging minute. Outside the session window the
// action is forced idle with zero reward. curtail ∈ [0,1] is the DR
// event's direct-load-control fraction: the selected rate is scaled by
// (1−curtail). The deadline penalty lands on the DepartMin−1 step.
func (c *EVCharger) Step(action int, pvAvailKW, price, curtail float64, minuteOfDay int) DERStep {
	var st DERStep
	sp := c.Spec
	if action < 0 || action >= sp.Actions() {
		panic(fmt.Sprintf("energy: EV Step with invalid action %d", action))
	}
	if minuteOfDay == sp.ArrivalMin {
		c.SoC = sp.InitSoC
	}
	if !c.Plugged(minuteOfDay) {
		return st
	}
	if action > 0 {
		rate := sp.RateKW[action-1] * (1 - curtail)
		headroomKWh := (1 - c.SoC) * sp.CapacityKWh
		if need := headroomKWh * 60; need < rate {
			rate = need
		}
		if rate > 0 {
			st.PVUsedKW = math.Min(pvAvailKW, rate)
			st.GridKW = rate - st.PVUsedKW
			c.SoC += rate / 60 / sp.CapacityKWh
			if c.SoC > 1 {
				c.SoC = 1
			}
			st.Reward = -st.GridKW / 60 * price * 100
		}
	}
	if minuteOfDay == sp.DepartMin-1 && c.SoC < sp.TargetSoC {
		st.ShortfallKWh = (sp.TargetSoC - c.SoC) * sp.CapacityKWh
		st.DeadlineMiss = true
		st.Reward -= st.ShortfallKWh * sp.MissPenaltyPerKWh
	}
	return st
}

// normPrice maps a price onto a reference-relative scale, guarding a
// zero reference.
func normPrice(price, ref float64) float64 {
	if ref <= 0 {
		return 0
	}
	return price / ref
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
