// Package energy models the residential device fleet and the energy-
// management MDP from the PFDRL paper: device operation modes with the
// paper's tolerance-band classification, the Table 1 reward function
// (including the +30 standby→off bonus), the minute-resolution RL
// environment whose state combines load-forecast output with real-time
// readings, and the saved-standby-energy accounting every figure reports.
package energy

import (
	"fmt"
)

// Mode is a device operation mode. The paper's action space (Eq. 5) maps
// actions 0/1/2 onto these modes directly.
type Mode int

// The three operation modes of every IoT device in the system.
const (
	Off Mode = iota
	Standby
	On
)

// NumModes is the size of the action space.
const NumModes = 3

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Off:
		return "off"
	case Standby:
		return "standby"
	case On:
		return "on"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Valid reports whether m is one of the three defined modes.
func (m Mode) Valid() bool { return m >= Off && m <= On }

// Distance returns the number of mode steps between a and b (0, 1, or 2),
// the quantity the paper's reward function penalizes.
func Distance(a, b Mode) int {
	d := int(a) - int(b)
	if d < 0 {
		d = -d
	}
	return d
}

// Device describes one IoT appliance's electrical signature: its draw in kW
// for each operation mode. Voff is normally 0 but kept explicit so vampire
// loads below the standby band can be modeled.
type Device struct {
	// Type names the appliance kind, e.g. "tv", "hvac". Devices of the same
	// Type in different residences share one federated forecasting model
	// (the paper's D_TV1, D_TV2 ... all aggregate into the TV model).
	Type string
	// OffKW, StandbyKW, OnKW are the nominal draws per mode.
	OffKW, StandbyKW, OnKW float64
}

// Validate returns an error unless the mode levels are sane and separated
// enough for the paper's 0.9–1.1 tolerance bands to be disjoint.
func (d Device) Validate() error {
	if d.Type == "" {
		return fmt.Errorf("energy: device has empty type")
	}
	if d.OffKW < 0 || d.StandbyKW <= 0 || d.OnKW <= 0 {
		return fmt.Errorf("energy: device %q has non-positive mode levels (off=%g standby=%g on=%g)",
			d.Type, d.OffKW, d.StandbyKW, d.OnKW)
	}
	if 1.1*d.StandbyKW >= 0.9*d.OnKW {
		return fmt.Errorf("energy: device %q standby band [%.4g,%.4g] overlaps on band [%.4g,%.4g]",
			d.Type, 0.9*d.StandbyKW, 1.1*d.StandbyKW, 0.9*d.OnKW, 1.1*d.OnKW)
	}
	return nil
}

// PowerKW returns the nominal draw for mode m.
func (d Device) PowerKW(m Mode) float64 {
	switch m {
	case Off:
		return d.OffKW
	case Standby:
		return d.StandbyKW
	case On:
		return d.OnKW
	default:
		panic(fmt.Sprintf("energy: PowerKW of invalid mode %d", int(m)))
	}
}

// ClassifyMode maps an instantaneous reading in kW onto a mode using the
// paper's rule: 0 ⇒ off; within [0.9·Vs, 1.1·Vs] ⇒ standby; within
// [0.9·Von, 1.1·Von] ⇒ on. Readings between bands snap to the nearest band
// edge (real traces are noisy; the paper's rule alone would leave gaps).
func (d Device) ClassifyMode(kw float64) Mode {
	if kw <= 0.5*0.9*d.StandbyKW {
		return Off
	}
	if kw >= 0.9*d.StandbyKW && kw <= 1.1*d.StandbyKW {
		return Standby
	}
	if kw >= 0.9*d.OnKW && kw <= 1.1*d.OnKW {
		return On
	}
	// Between bands: nearest nominal level wins.
	dOff := abs(kw - d.OffKW)
	dStandby := abs(kw - d.StandbyKW)
	dOn := abs(kw - d.OnKW)
	switch {
	case dOff <= dStandby && dOff <= dOn:
		return Off
	case dStandby <= dOn:
		return Standby
	default:
		return On
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ClassifySeries maps a per-minute kW series onto modes.
func (d Device) ClassifySeries(kw []float64) []Mode {
	out := make([]Mode, len(kw))
	for i, v := range kw {
		out[i] = d.ClassifyMode(v)
	}
	return out
}
