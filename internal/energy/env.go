package energy

import (
	"fmt"
)

// Env is the per-device energy-management MDP of Section 3.3.1.
//
// At every minute t the agent observes a state built from the DFL load
// forecast V (predicted per-minute kW for the horizon) and the real-time
// readings RV, picks an action (a target mode for the device), and receives
// the Table 1 reward against the ground-truth mode derived from RV. The
// transition function is deterministic (the paper sets P≡1): time simply
// advances one minute.
//
// State encoding. The paper feeds "the load forecasting result together
// with the real-time energy value" to the agent; we realize that as a
// sliding window: LookAhead predicted values starting at t and LookBack
// real values ending at t, each normalized by the device's OnKW so state
// magnitudes are device-independent. Positions before the start of data are
// zero-padded. With the defaults (LookAhead=LookBack=30) the state has 60
// dimensions; set both to 60 to reproduce the paper's full-hour state.
type Env struct {
	Device Device
	// Pred is V: per-minute predicted consumption in kW.
	Pred []float64
	// Real is RV: per-minute measured consumption in kW.
	Real []float64
	// LookAhead / LookBack set the state window sizes.
	LookAhead, LookBack int
	// SensorDelay is the reporting lag of the real-time feed in minutes:
	// the observation at minute t sees real readings only up to t−Delay.
	// Zero reproduces the paper's literal formulation (the current reading
	// is in the state); a small positive delay models realistic smart-plug
	// reporting and makes the load forecast V genuinely decision-relevant.
	SensorDelay int
	// NormKW is the state normalization scale. It defaults to the device's
	// own OnKW, but federated deployments should set it to the device
	// *type's* nominal on-power: individual homes don't have calibrated
	// per-unit power ratings, and using the fleet nominal preserves the
	// real inter-home heterogeneity (the same appliance class sits at
	// different normalized levels in different homes) that personalization
	// layers exist to absorb.
	NormKW float64

	truth []Mode
	t     int
}

// DefaultLookAhead and DefaultLookBack give a 60-dimensional state.
const (
	DefaultLookAhead = 30
	DefaultLookBack  = 30
)

// NewEnv builds an environment over aligned predicted and real traces.
// pred and real must have equal, non-zero length.
func NewEnv(dev Device, pred, real []float64) (*Env, error) {
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	if len(pred) != len(real) {
		return nil, fmt.Errorf("energy: pred length %d != real length %d", len(pred), len(real))
	}
	if len(pred) == 0 {
		return nil, fmt.Errorf("energy: empty traces")
	}
	e := &Env{
		Device:    dev,
		Pred:      pred,
		Real:      real,
		LookAhead: DefaultLookAhead,
		LookBack:  DefaultLookBack,
		truth:     dev.ClassifySeries(real),
	}
	return e, nil
}

// StateDim returns the dimension of the observation vector.
func (e *Env) StateDim() int { return e.LookAhead + e.LookBack }

// Len returns the number of decision steps in the episode.
func (e *Env) Len() int { return len(e.Real) }

// Reset rewinds the episode and returns the initial state.
func (e *Env) Reset() []float64 {
	e.t = 0
	return e.State()
}

// T returns the current minute index.
func (e *Env) T() int { return e.t }

// State returns the observation at the current minute.
func (e *Env) State() []float64 {
	return e.StateAt(e.t)
}

// StateAt returns the observation for minute t without advancing time.
//
// Ownership: the returned slice is freshly allocated, owned by the caller,
// and clamped to zero spare capacity — appending to it (as core does for
// time features) always reallocates and can never write into Env-owned
// memory. Hot loops should preallocate once and use StateInto instead.
func (e *Env) StateAt(t int) []float64 {
	s := e.StateInto(make([]float64, e.StateDim()), t)
	return s[:len(s):len(s)]
}

// StateInto writes the observation for minute t into dst, which must have
// length e.StateDim(), and returns dst. Every element is overwritten. It
// allocates nothing, so a caller-owned scratch buffer can be recycled
// across the ~homes×devices×1440 state builds of a simulated day.
func (e *Env) StateInto(dst []float64, t int) []float64 {
	if len(dst) != e.StateDim() {
		panic(fmt.Sprintf("energy: StateInto dst length %d, want %d", len(dst), e.StateDim()))
	}
	norm := e.NormKW
	if norm <= 0 {
		norm = e.Device.OnKW
	}
	// Predicted window: minutes [t, t+LookAhead).
	for i := 0; i < e.LookAhead; i++ {
		if idx := t + i; idx < len(e.Pred) {
			dst[i] = e.Pred[idx] / norm
		} else {
			dst[i] = 0
		}
	}
	// Real window: minutes (t-Delay-LookBack, t-Delay], newest last.
	latest := t - e.SensorDelay
	for i := 0; i < e.LookBack; i++ {
		if idx := latest - e.LookBack + 1 + i; idx >= 0 && idx <= latest && idx < len(e.Real) {
			dst[e.LookAhead+i] = e.Real[idx] / norm
		} else {
			dst[e.LookAhead+i] = 0
		}
	}
	return dst
}

// TruthAt returns the ground-truth mode at minute t.
func (e *Env) TruthAt(t int) Mode { return e.truth[t] }

// Step applies the action for the current minute, returning the Table 1
// reward, the next state, and whether the episode has ended. Calling Step
// after done panics.
func (e *Env) Step(action Mode) (reward float64, next []float64, done bool) {
	if e.t >= len(e.Real) {
		panic("energy: Step called on finished episode")
	}
	if !action.Valid() {
		panic(fmt.Sprintf("energy: Step with invalid action %d", int(action)))
	}
	reward = Reward(e.truth[e.t], action)
	e.t++
	done = e.t >= len(e.Real)
	if !done {
		next = e.State()
	}
	return reward, next, done
}

// Savings tallies the energy outcome of running a policy over an episode.
type Savings struct {
	// SavedKWh is standby energy eliminated: minutes where truth was
	// Standby and the agent chose Off, at the device's standby draw.
	SavedKWh float64
	// StandbyKWh is total standby energy that was available to save.
	StandbyKWh float64
	// ComfortViolations counts minutes where the agent powered down a
	// device that was actually in use (truth=On, action≠On).
	ComfortViolations int
	// TotalReward is the episode's cumulative Table 1 reward.
	TotalReward float64
	// Steps is the episode length in minutes.
	Steps int
}

// SavedFraction returns saved standby energy as a fraction of available
// standby energy (the paper's headline "saved standby energy" axis),
// or 0 when no standby energy existed.
func (s Savings) SavedFraction() float64 {
	if s.StandbyKWh == 0 {
		return 0
	}
	return s.SavedKWh / s.StandbyKWh
}

// Add accumulates another savings record (e.g. across devices or days).
func (s *Savings) Add(o Savings) {
	s.SavedKWh += o.SavedKWh
	s.StandbyKWh += o.StandbyKWh
	s.ComfortViolations += o.ComfortViolations
	s.TotalReward += o.TotalReward
	s.Steps += o.Steps
}

// Policy selects an action for an observation.
type Policy interface {
	// Act maps a state observation to an action mode.
	Act(state []float64) Mode
}

// PolicyFunc adapts a function to the Policy interface.
type PolicyFunc func(state []float64) Mode

// Act implements Policy.
func (f PolicyFunc) Act(state []float64) Mode { return f(state) }

// RunPolicy executes one full episode under policy p and returns the
// savings accounting. The environment is reset first.
func (e *Env) RunPolicy(p Policy) Savings {
	var sv Savings
	state := e.Reset()
	minutesPerHour := 60.0
	for {
		t := e.t
		action := p.Act(state)
		truth := e.truth[t]
		r, next, done := e.Step(action)
		sv.TotalReward += r
		sv.Steps++
		if truth == Standby {
			sv.StandbyKWh += e.Device.StandbyKW / minutesPerHour
			if action == Off {
				sv.SavedKWh += e.Device.StandbyKW / minutesPerHour
			}
		}
		if truth == On && action != On {
			sv.ComfortViolations++
		}
		if done {
			return sv
		}
		state = next
	}
}

// SavingsByHour runs policy p and buckets saved standby kWh by hour of day
// (assuming the trace starts at midnight). Used by the Fig 11 reproduction.
func (e *Env) SavingsByHour(p Policy) [24]float64 {
	var buckets [24]float64
	state := e.Reset()
	for {
		t := e.t
		action := p.Act(state)
		truth := e.truth[t]
		_, next, done := e.Step(action)
		if truth == Standby && action == Off {
			hour := (t / 60) % 24
			buckets[hour] += e.Device.StandbyKW / 60.0
		}
		if done {
			return buckets
		}
		state = next
	}
}
