package scenario

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/energy"
	"repro/internal/fed"
	"repro/internal/pricing"
)

// valid returns a scenario exercising every block, for mutation tests.
func valid() *Scenario {
	return &Scenario{
		Name:     "kitchen-sink",
		Seasonal: &Seasonal{StartMonth: 6, VacationProb: 0.05, MeterResolutionKW: 0.05},
		DER: []DERSpec{
			{Battery: &energy.BatterySpec{CapacityKWh: 10, MaxChargeKW: 3, MaxDischargeKW: 3}},
			{Homes: []int{0}, EV: &energy.EVSpec{
				CapacityKWh: 40, RateKW: []float64{3, 6}, ArrivalMin: 18 * 60, DepartMin: 23 * 60,
				InitSoC: 0.3, TargetSoC: 0.8,
			}},
			{PV: &energy.PVSpec{PeakKW: 4}},
		},
		Events: []DREvent{
			{Day: 1, StartMin: 17 * 60, EndMin: 20 * 60, PriceFactor: 3, EVCurtail: 0.5},
			{Day: 1, StartMin: 2 * 60, EndMin: 4 * 60, PriceFactor: 0.5},
		},
		Adversary: &fed.AdversaryPlan{
			Seed:      7,
			Attackers: []fed.Attacker{{Agent: 1, Attack: fed.AttackSignFlip}},
			Defense:   fed.Defense{NormRatio: 4, CosineGate: true},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := valid().Validate(2, 3); err != nil {
		t.Fatal(err)
	}
	if err := (*Scenario)(nil).Validate(2, 3); err != nil {
		t.Fatal("nil scenario should validate")
	}
}

// TestValidateFieldErrors mutates the valid scenario one field at a time
// and checks each failure is a *FieldError naming the right path.
func TestValidateFieldErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Scenario)
		field  string
	}{
		{"empty name", func(s *Scenario) { s.Name = "" }, "Name"},
		{"bad month", func(s *Scenario) { s.Seasonal.StartMonth = 13 }, "Seasonal"},
		{"bad vacation prob", func(s *Scenario) { s.Seasonal.VacationProb = 2 }, "Seasonal"},
		{"two families", func(s *Scenario) { s.DER[0].PV = &energy.PVSpec{PeakKW: 1} }, "DER[0]"},
		{"no family", func(s *Scenario) { s.DER[2].PV = nil }, "DER[2]"},
		{"home out of range", func(s *Scenario) { s.DER[1].Homes = []int{5} }, "DER[1].Homes"},
		{"duplicate home", func(s *Scenario) { s.DER[1].Homes = []int{0, 0} }, "DER[1].Homes"},
		{"bad battery", func(s *Scenario) { s.DER[0].Battery.CapacityKWh = -1 }, "DER[0].Battery"},
		{"bad EV rate", func(s *Scenario) { s.DER[1].EV.RateKW = nil }, "DER[1].EV"},
		{"bad PV", func(s *Scenario) { s.DER[2].PV.PeakKW = 0 }, "DER[2].PV"},
		{"event day out of range", func(s *Scenario) { s.Events[0].Day = 9 }, "Events[0]"},
		{"event inverted window", func(s *Scenario) { s.Events[1].EndMin = s.Events[1].StartMin }, "Events[1]"},
		{"bad curtail", func(s *Scenario) { s.Events[0].EVCurtail = 1.5 }, "Events[0].EVCurtail"},
		{"overlapping events", func(s *Scenario) { s.Events[1].StartMin, s.Events[1].EndMin = 18*60, 21*60 }, "Events[1]"},
		{"adversary agent range", func(s *Scenario) { s.Adversary.Attackers[0].Agent = 7 }, "Adversary"},
		{"adversary defense", func(s *Scenario) { s.Adversary.Defense.NormRatio = 0.5 }, "Adversary"},
	}
	for _, tc := range cases {
		s := valid()
		tc.mutate(s)
		err := s.Validate(2, 3)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		var fe *FieldError
		if !errors.As(err, &fe) {
			t.Errorf("%s: error %v is not a FieldError", tc.name, err)
			continue
		}
		if fe.Field != tc.field {
			t.Errorf("%s: error names field %q, want %q (%v)", tc.name, fe.Field, tc.field, err)
		}
	}
}

func TestParseRejectsHostileDocuments(t *testing.T) {
	bad := []string{
		`{"Name": "x", "Turbo": true}`,          // unknown field
		`{"Name": "x"} {"Name": "y"}`,           // trailing document
		`{"Name": "x", "Events": [{"Day": []}]}`, // wrong type
		`{"Name": "x", "Events": [{"PriceFactor": 1e999}]}`, // overflow
		`{"Name":`, // truncated
		`[1,2,3]`,  // wrong top-level shape
	}
	for i, doc := range bad {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("hostile document %d accepted: %s", i, doc)
		}
	}
}

func TestLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.json")
	doc := `{
		"Name": "dr-day",
		"Events": [{"Day": 0, "StartMin": 1020, "EndMin": 1200, "PriceFactor": 3, "EVCurtail": 0.5}]
	}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(4, 1); err != nil {
		t.Fatal(err)
	}
	if s.Name != "dr-day" || len(s.Events) != 1 {
		t.Fatalf("loaded %+v", s)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := os.WriteFile(path, []byte(`{"Nope": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), path) {
		t.Fatalf("load error should name the file: %v", err)
	}
}

func TestDerivedViews(t *testing.T) {
	s := valid()
	o := s.Overlay(pricing.FixedRate{})
	if o == nil || len(o.Windows) != 2 {
		t.Fatalf("overlay %+v", o)
	}
	base := pricing.FixedRate{}.PricePerKWh(6, 18*60)
	if got := o.PriceAt(1, 6, 18*60); got != base*3 {
		t.Fatalf("overlay spike price %g, want %g", got, base*3)
	}
	if got := s.CurtailAt(1, 18*60); got != 0.5 {
		t.Fatalf("CurtailAt spike = %g, want 0.5", got)
	}
	if got := s.CurtailAt(0, 18*60); got != 0 {
		t.Fatalf("CurtailAt other day = %g, want 0", got)
	}
	if !s.HasDER() || (&Scenario{Name: "x"}).HasDER() {
		t.Fatal("HasDER misclassifies")
	}
	if (*Scenario)(nil).Overlay(pricing.FixedRate{}) != nil {
		t.Fatal("nil scenario overlay should be nil")
	}
	if (*Scenario)(nil).CurtailAt(0, 0) != 0 || (*Scenario)(nil).HasDER() {
		t.Fatal("nil scenario views should be inert")
	}
	if !(*Scenario)(nil).AdversaryPlan().Empty() {
		t.Fatal("nil scenario adversary plan should be empty")
	}
	if (&Scenario{Name: "x"}).Overlay(pricing.FixedRate{}) != nil {
		t.Fatal("event-free scenario overlay should be nil")
	}
	// Spec coverage helpers.
	if k := s.DER[0].Kind(); k != "battery" {
		t.Fatalf("Kind = %q", k)
	}
	if !s.DER[0].FleetWide() || s.DER[1].FleetWide() {
		t.Fatal("FleetWide misclassifies")
	}
	if !s.DER[1].AppliesTo(0) || s.DER[1].AppliesTo(1) {
		t.Fatal("AppliesTo misclassifies")
	}
}
