// Package scenario is the declarative workload layer (DESIGN.md §16): a
// JSON-loadable description that composes the repo's capability families
// — DER devices (internal/energy), demand-response pricing events
// (internal/pricing), Byzantine peers (internal/fed), and the seasonal
// corpus knobs (internal/pecan) — onto a core run without hand-coded
// wiring. core.Config carries a *Scenario; cmd/pfdrl loads one with
// -scenario <file>.
//
// Field names double as the JSON keys (the repo's checkpoint convention:
// core.Config marshals the same way), and parsing rejects unknown
// fields, so a typo in a scenario file is a load error rather than a
// silently ignored knob. Validation is two-stage: Parse catches
// structural JSON problems, Validate(homes, days) checks every range
// against the concrete fleet it will run on and returns a *FieldError
// naming the offending field.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/energy"
	"repro/internal/fed"
	"repro/internal/pricing"
)

// FieldError locates a validation failure in the scenario document.
type FieldError struct {
	// Field is a dotted path into the document (e.g. "DER[1].Battery").
	Field string
	Err   error
}

func (e *FieldError) Error() string { return fmt.Sprintf("scenario: %s: %v", e.Field, e.Err) }
func (e *FieldError) Unwrap() error { return e.Err }

// fieldErr wraps an error with its document location.
func fieldErr(field string, err error) error {
	if err == nil {
		return nil
	}
	return &FieldError{Field: field, Err: err}
}

// Seasonal selects the trace generator's seasonal/occupancy modeling —
// the knobs a multi-month sweep needs (pecan.Config mirrors).
type Seasonal struct {
	// StartMonth (1–12) anchors day 0 of the run; the simulated calendar
	// advances through month boundaries from there.
	StartMonth int
	// VacationProb is the per-home weekly probability of a low-usage
	// vacation week.
	VacationProb float64
	// MeterResolutionKW, when > 0, quantizes generated traces to a meter
	// grid (enables the store's cheap grid codec).
	MeterResolutionKW float64
}

// Validate checks the seasonal knobs.
func (s *Seasonal) Validate() error {
	if s.StartMonth < 1 || s.StartMonth > 12 {
		return fmt.Errorf("StartMonth %d outside 1..12", s.StartMonth)
	}
	if s.VacationProb < 0 || s.VacationProb > 1 {
		return fmt.Errorf("VacationProb %g outside [0,1]", s.VacationProb)
	}
	if s.MeterResolutionKW < 0 {
		return fmt.Errorf("MeterResolutionKW %g must be ≥ 0", s.MeterResolutionKW)
	}
	return nil
}

// DERSpec attaches one DER unit family to a set of homes. Exactly one
// of Battery, EV, PV must be set; empty Homes means the whole fleet
// (which also makes the family's dispatch agents eligible for their own
// federation rounds — a partial deployment trains locally only).
type DERSpec struct {
	// Homes lists the receiving home indices; empty = every home.
	Homes []int
	// Exactly one unit family per spec.
	Battery *energy.BatterySpec
	EV      *energy.EVSpec
	PV      *energy.PVSpec
}

// Kind returns a short family label ("battery", "ev", "pv") for round
// kinds and reports, or "" for a malformed spec.
func (d *DERSpec) Kind() string {
	switch {
	case d.Battery != nil && d.EV == nil && d.PV == nil:
		return "battery"
	case d.EV != nil && d.Battery == nil && d.PV == nil:
		return "ev"
	case d.PV != nil && d.Battery == nil && d.EV == nil:
		return "pv"
	}
	return ""
}

// AppliesTo reports whether the spec covers a home index.
func (d *DERSpec) AppliesTo(home int) bool {
	if len(d.Homes) == 0 {
		return true
	}
	for _, h := range d.Homes {
		if h == home {
			return true
		}
	}
	return false
}

// FleetWide reports whether the spec covers every home.
func (d *DERSpec) FleetWide() bool { return len(d.Homes) == 0 }

// validate checks the spec against a fleet of `homes` homes; field is
// the spec's document path.
func (d *DERSpec) validate(field string, homes int) error {
	if d.Kind() == "" {
		return fieldErr(field, fmt.Errorf("exactly one of Battery, EV, PV must be set"))
	}
	seen := make(map[int]bool, len(d.Homes))
	for _, h := range d.Homes {
		if h < 0 || (homes > 0 && h >= homes) {
			return fieldErr(field+".Homes", fmt.Errorf("home %d outside [0,%d)", h, homes))
		}
		if seen[h] {
			return fieldErr(field+".Homes", fmt.Errorf("duplicate home %d", h))
		}
		seen[h] = true
	}
	switch {
	case d.Battery != nil:
		return fieldErr(field+".Battery", d.Battery.Validate())
	case d.EV != nil:
		return fieldErr(field+".EV", d.EV.Validate())
	default:
		return fieldErr(field+".PV", d.PV.Validate())
	}
}

// DREvent schedules one demand-response window: a price factor layered
// on the TOU tariff and, optionally, a direct-load-control curtailment
// of EV charging. Same-day events must not overlap.
type DREvent struct {
	// Day / StartMin / EndMin locate the window ([StartMin, EndMin) on
	// simulated day Day).
	Day              int
	StartMin, EndMin int
	// PriceFactor scales the base tariff inside the window (> 1 spike,
	// (0,1) rebate, 1 curtailment-only).
	PriceFactor float64
	// EVCurtail ∈ [0,1] scales EV charge rates down by (1−EVCurtail)
	// inside the window (0 = no curtailment).
	EVCurtail float64
}

// window converts the event to its pricing overlay window.
func (e DREvent) window() pricing.Window {
	return pricing.Window{Day: e.Day, StartMin: e.StartMin, EndMin: e.EndMin, PriceFactor: e.PriceFactor}
}

// Scenario is the loadable workload description. The zero value (and a
// nil *Scenario) reproduces the paper's plain workload exactly.
type Scenario struct {
	// Name identifies the scenario in reports and the serve API.
	Name string
	// Description is free-form documentation.
	Description string `json:",omitempty"`
	// Seasonal, when set, switches the trace generator to calendar mode.
	Seasonal *Seasonal `json:",omitempty"`
	// DER lists the device deployments.
	DER []DERSpec `json:",omitempty"`
	// Events lists the demand-response windows.
	Events []DREvent `json:",omitempty"`
	// Adversary scripts Byzantine peers and the aggregation defense.
	// Requires the decentralized method (PFDRL) — the star baselines'
	// rounds do not speak the adversary protocol.
	Adversary *fed.AdversaryPlan `json:",omitempty"`
}

// Parse decodes a scenario document, rejecting unknown fields. It does
// not range-check — call Validate once the fleet shape is known.
func Parse(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parsing: %w", err)
	}
	// A second document in the same file is a config error, not data.
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after document")
	}
	return &s, nil
}

// Load reads and parses a scenario file.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return s, nil
}

// Validate checks every range against the fleet it will run on: `homes`
// simulated homes over `days` days (either ≤ 0 to skip its range
// checks). Errors are *FieldError naming the offending field.
func (s *Scenario) Validate(homes, days int) error {
	if s == nil {
		return nil
	}
	if s.Name == "" {
		return fieldErr("Name", fmt.Errorf("must be set"))
	}
	if s.Seasonal != nil {
		if err := s.Seasonal.Validate(); err != nil {
			return fieldErr("Seasonal", err)
		}
	}
	for i := range s.DER {
		if err := s.DER[i].validate(fmt.Sprintf("DER[%d]", i), homes); err != nil {
			return err
		}
	}
	for i, e := range s.Events {
		if err := e.window().Validate(days); err != nil {
			return fieldErr(fmt.Sprintf("Events[%d]", i), err)
		}
		if e.EVCurtail < 0 || e.EVCurtail > 1 {
			return fieldErr(fmt.Sprintf("Events[%d].EVCurtail", i),
				fmt.Errorf("%g outside [0,1]", e.EVCurtail))
		}
		for j, prev := range s.Events[:i] {
			if prev.Day == e.Day && e.StartMin < prev.EndMin && prev.StartMin < e.EndMin {
				return fieldErr(fmt.Sprintf("Events[%d]", i),
					fmt.Errorf("overlaps Events[%d] on day %d", j, e.Day))
			}
		}
	}
	if s.Adversary != nil {
		if err := s.Adversary.Validate(homes); err != nil {
			return fieldErr("Adversary", err)
		}
	}
	return nil
}

// Overlay builds the pricing overlay the scenario's events impose on a
// base tariff. Returns nil when the scenario schedules no events — the
// caller keeps the plain tariff path.
func (s *Scenario) Overlay(base pricing.Tariff) *pricing.Overlay {
	if s == nil || len(s.Events) == 0 {
		return nil
	}
	o := &pricing.Overlay{Base: base, Windows: make([]pricing.Window, len(s.Events))}
	for i, e := range s.Events {
		o.Windows[i] = e.window()
	}
	return o
}

// CurtailAt returns the EV curtailment fraction in force at a
// day-minute (0 when no event covers it).
func (s *Scenario) CurtailAt(day, minuteOfDay int) float64 {
	if s == nil {
		return 0
	}
	for _, e := range s.Events {
		if e.Day == day && minuteOfDay >= e.StartMin && minuteOfDay < e.EndMin {
			return e.EVCurtail
		}
	}
	return 0
}

// HasDER reports whether any DER deployment is configured.
func (s *Scenario) HasDER() bool { return s != nil && len(s.DER) > 0 }

// DisplayName returns the scenario's name, "" for nil (status payloads
// read it off a possibly-unset config field).
func (s *Scenario) DisplayName() string {
	if s == nil {
		return ""
	}
	return s.Name
}

// AdversaryPlan returns the adversary plan, or the empty plan when none
// is configured.
func (s *Scenario) AdversaryPlan() fed.AdversaryPlan {
	if s == nil || s.Adversary == nil {
		return fed.AdversaryPlan{}
	}
	return *s.Adversary
}
