package scenario

import (
	"testing"

	"repro/internal/pricing"
)

// FuzzParse feeds hostile documents through the full load pipeline:
// Parse must never panic, and any document that survives Parse AND
// Validate must yield internally consistent derived views (a valid
// pricing overlay, curtailments in range, a validated adversary plan) —
// the invariant core relies on when it wires a scenario without
// re-checking.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"Name": "x"}`,
		`{"Name": "x", "Events": [{"Day": 0, "StartMin": 0, "EndMin": 60, "PriceFactor": 2}]}`,
		`{"Name": "x", "Events": [{"PriceFactor": 1e999}]}`,
		`{"Name": "x", "Events": [{"Day": 0, "StartMin": 0, "EndMin": 60, "PriceFactor": 2},
		   {"Day": 0, "StartMin": 30, "EndMin": 90, "PriceFactor": 3}]}`, // overlap
		`{"Name": "x", "Events": [{"Day": 0, "StartMin": 60, "EndMin": 30, "PriceFactor": 2}]}`,
		`{"Name": "x", "DER": [{"Battery": {"CapacityKWh": 10, "MaxChargeKW": 3, "MaxDischargeKW": 3}}]}`,
		`{"Name": "x", "DER": [{"Homes": [99], "PV": {"PeakKW": 4}}]}`,
		`{"Name": "x", "DER": [{"EV": {"CapacityKWh": 40, "RateKW": [3, -1], "DepartMin": 60}}]}`,
		`{"Name": "x", "Adversary": {"Attackers": [{"Agent": -3, "Attack": "sign-flip"}]}}`,
		`{"Name": "x", "Adversary": {"Attackers": [{"Agent": 0, "Attack": "noise", "Scale": 1e999}]}}`,
		`{"Name": "x", "Adversary": {"Defense": {"NormRatio": 0.1}}}`,
		`{"Name": "x", "Seasonal": {"StartMonth": 99}}`,
		`{"Name": "x", "Unknown": 1}`,
		`null`,
		"{\"Name\": \"\u0000\", \"Events\": null, \"DER\": null}",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		const homes, days = 4, 3
		if err := s.Validate(homes, days); err != nil {
			// Rejections must be located FieldErrors, never bare panics
			// (the deferred-recover default would have failed the run).
			return
		}
		// Survivors must compose cleanly.
		if o := s.Overlay(pricing.FixedRate{}); o != nil {
			if err := o.Validate(days); err != nil {
				t.Fatalf("validated scenario produced invalid overlay: %v", err)
			}
			for day := 0; day < days; day++ {
				for _, min := range []int{0, 6 * 60, 12 * 60, 23*60 + 59} {
					if p := o.PriceAt(day, 6, min); p <= 0 {
						t.Fatalf("overlay price %g at day %d min %d", p, day, min)
					}
				}
			}
		}
		for day := 0; day < days; day++ {
			for _, min := range []int{0, 17 * 60, 23*60 + 59} {
				if c := s.CurtailAt(day, min); c < 0 || c > 1 {
					t.Fatalf("curtail %g out of range", c)
				}
			}
		}
		for i := range s.DER {
			if s.DER[i].Kind() == "" {
				t.Fatalf("validated DER spec %d has no kind", i)
			}
		}
		if plan := s.AdversaryPlan(); plan.Validate(homes) != nil {
			t.Fatal("validated scenario carries invalid adversary plan")
		}
	})
}
