package forecast

import (
	"math"

	"repro/internal/nn"
)

// KindNaive is the persistence baseline: predict that the next hour repeats
// the most recent reading. It has no parameters and does not participate in
// federation; experiments use it to sanity-check that the learned models
// add value over "nothing changes".
const KindNaive Kind = "Naive"

// naiveForecaster implements Forecaster with zero parameters.
type naiveForecaster struct {
	cfg   Config
	model *nn.Sequential // empty; keeps the interface total
	// predBuf is Predict's reusable output scratch (same ownership contract
	// as sgdForecaster.Predict: valid until the next Predict call).
	predBuf []float64
}

// NewNaive returns the persistence forecaster.
func NewNaive(cfg Config) Forecaster {
	return &naiveForecaster{cfg: cfg.withDefaults(), model: nn.NewSequential()}
}

// TrainEpochs implements Forecaster (training is a no-op).
func (f *naiveForecaster) TrainEpochs(series []float64, n int) float64 {
	if len(series) < f.cfg.Window+f.cfg.Horizon {
		return math.NaN()
	}
	return 0
}

// Fit implements Forecaster.
func (f *naiveForecaster) Fit(series []float64) float64 { return f.TrainEpochs(series, 1) }

// Predict implements Forecaster: the last observed value persists across
// the whole horizon.
func (f *naiveForecaster) Predict(series []float64, t int) []float64 {
	if t < 1 || t > len(series) {
		panic("forecast: naive Predict needs at least one history sample within the series")
	}
	if f.predBuf == nil {
		f.predBuf = make([]float64, f.cfg.Horizon)
	}
	out := f.predBuf
	last := series[t-1]
	if last < 0 {
		last = 0
	}
	for i := range out {
		out[i] = last
	}
	return out
}

// Model implements Forecaster (an empty model: nothing to federate).
func (f *naiveForecaster) Model() *nn.Sequential { return f.model }

// Config implements Forecaster.
func (f *naiveForecaster) Config() Config { return f.cfg }

// Name implements Forecaster.
func (f *naiveForecaster) Name() string { return string(KindNaive) }
