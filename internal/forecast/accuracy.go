package forecast

// The paper's prediction-accuracy metric (Section 4.1):
//
//	Ac_n = 1 − |V_n − RV_n| / RV_n
//
// RV_n can be zero (a device that is off draws nothing), so a literal
// reading of the formula divides by zero. We use the standard fix of
// flooring the denominator: accuracy is computed against max(RV_n, floor),
// with the floor set to a small fraction of the device's on-power. A
// prediction of ~0 against a true 0 then scores ~1, and wild predictions
// against a true 0 score 0. Accuracies are clamped into [0, 1].

// Accuracy returns the paper's per-sample prediction accuracy for aligned
// predicted and real series, with the given denominator floor (in the same
// unit as the series; must be > 0).
func Accuracy(pred, real []float64, floor float64) []float64 {
	if len(pred) != len(real) {
		panic("forecast: Accuracy length mismatch")
	}
	if floor <= 0 {
		panic("forecast: Accuracy floor must be positive")
	}
	out := make([]float64, len(pred))
	for i := range pred {
		den := real[i]
		if den < floor {
			den = floor
		}
		diff := pred[i] - real[i]
		if diff < 0 {
			diff = -diff
		}
		ac := 1 - diff/den
		if ac < 0 {
			ac = 0
		} else if ac > 1 {
			ac = 1
		}
		out[i] = ac
	}
	return out
}

// MeanAccuracy returns the mean of Accuracy over the series, or 0 for
// empty input.
func MeanAccuracy(pred, real []float64, floor float64) float64 {
	if len(pred) == 0 {
		return 0
	}
	acc := Accuracy(pred, real, floor)
	sum := 0.0
	for _, a := range acc {
		sum += a
	}
	return sum / float64(len(acc))
}

// EvaluateOnSeries walks the test series hour by hour, predicting each next
// hour from the history before it, and returns the concatenated per-minute
// accuracies plus the aligned (pred, real) pairs. The first prediction is
// made at t = Window (the earliest minute with a full lag window).
func EvaluateOnSeries(f Forecaster, series []float64, floor float64) (acc, pred, real []float64) {
	cfg := f.Config()
	for t := cfg.Window; t+cfg.Horizon <= len(series); t += cfg.Horizon {
		p := f.Predict(series, t)
		r := series[t : t+cfg.Horizon]
		pred = append(pred, p...)
		real = append(real, r...)
	}
	if len(pred) == 0 {
		return nil, nil, nil
	}
	return Accuracy(pred, real, floor), pred, real
}

// DefaultFloorFraction is the denominator floor as a fraction of the
// device's on-power.
const DefaultFloorFraction = 0.05

// FloorFor returns the accuracy denominator floor for a device on-power.
func FloorFor(onKW float64) float64 { return DefaultFloorFraction * onKW }
