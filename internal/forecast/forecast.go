// Package forecast implements the four per-device load-forecasting models
// the paper compares (Section 4 "Compared Methods"): linear regression (LR),
// linear support-vector regression (SVM), a back-propagation network (BP),
// and an LSTM — all trained by stochastic gradient descent on sliding lag
// windows of the minute-resolution consumption trace, predicting the next
// hour of per-minute consumption.
//
// Every model exposes its parameters as nn matrices, which is what the
// decentralized federated learning layer broadcasts and averages: the same
// forecaster type for the same device type in different residences shares
// one federated model.
package forecast

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Config holds the forecaster hyperparameters shared by all four models.
type Config struct {
	// Window is the number of lagged minutes fed to the model.
	Window int
	// Horizon is the number of future minutes predicted per call; the paper
	// predicts the next hour minute by minute (60).
	Horizon int
	// Scale normalizes readings into ~[0,1]; use the device's OnKW.
	Scale float64
	// LearnRate is the SGD step size (paper: 0.001 for the DRL; the
	// forecasters default to 0.05 which suits normalized regression).
	LearnRate float64
	// Epochs is the number of passes over the training windows per Fit.
	Epochs int
	// Batch is the minibatch size.
	Batch int
	// Stride subsamples window start positions to decorrelate examples.
	Stride int
	// Hidden is the hidden width for BP and LSTM.
	Hidden int
	// Seed initializes model weights deterministically.
	Seed int64
}

// DefaultConfig returns the configuration used across the experiments.
func DefaultConfig(scale float64) Config {
	return Config{
		Window:    60,
		Horizon:   60,
		Scale:     scale,
		LearnRate: 0.05,
		Epochs:    4,
		Batch:     16,
		Stride:    7,
		Hidden:    32,
		Seed:      1,
	}
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 60
	}
	if c.Horizon <= 0 {
		c.Horizon = 60
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.LearnRate <= 0 {
		c.LearnRate = 0.05
	}
	if c.Epochs <= 0 {
		c.Epochs = 4
	}
	if c.Batch <= 0 {
		c.Batch = 16
	}
	if c.Stride <= 0 {
		c.Stride = 7
	}
	if c.Hidden <= 0 {
		c.Hidden = 32
	}
	return c
}

// Forecaster is a trainable per-device load predictor.
type Forecaster interface {
	// TrainEpochs runs n SGD epochs over sliding windows of series.
	// It returns the mean training loss of the final epoch.
	TrainEpochs(series []float64, n int) float64
	// Fit trains for the configured number of epochs.
	Fit(series []float64) float64
	// Predict returns the predicted kW for minutes [t, t+Horizon) given
	// series[:t] as history. t must be at least Window.
	Predict(series []float64, t int) []float64
	// Model exposes the underlying network for federation.
	Model() *nn.Sequential
	// Config returns the hyperparameters.
	Config() Config
	// Name identifies the algorithm ("LR", "SVM", "BP", "LSTM").
	Name() string
}

// TrainStateCarrier is an optional Forecaster extension exposing the only
// cross-call training state the SGD forecasters keep: the completed-epoch
// counter driving the hyperbolic learning-rate decay. (TrainEpochs seeds a
// fresh shuffle RNG per call, so there is no PRNG position to persist.)
// Checkpoints save and restore it so a resumed forecaster continues the
// exact decay schedule.
type TrainStateCarrier interface {
	// EpochsSeen returns the number of completed training epochs.
	EpochsSeen() int
	// SetEpochsSeen overwrites the completed-epoch counter.
	SetEpochsSeen(n int)
}

// BatchPredictor is an optional Forecaster extension: predict several
// windows of the same series in one model forward. Rows of the result align
// with ts. Since every model here processes batch rows independently, the
// returned values are bit-identical to len(ts) separate Predict calls — the
// batching only amortizes per-call overhead (a big win for the recurrent
// models, whose per-timestep loop otherwise runs at batch 1).
type BatchPredictor interface {
	// PredictBatch returns a len(ts) x Horizon matrix whose r-th row is the
	// prediction for minutes [ts[r], ts[r]+Horizon). The matrix is
	// forecaster-owned scratch, valid until the next call.
	PredictBatch(series []float64, ts []int) *tensor.Matrix
}

// Kind selects a forecaster algorithm.
type Kind string

// The four algorithms compared in the paper, plus extensions.
const (
	KindLR   Kind = "LR"
	KindSVM  Kind = "SVM"
	KindBP   Kind = "BP"
	KindLSTM Kind = "LSTM"
	// KindGRU is an extension: a gated-recurrent-unit forecaster with ~25%
	// fewer parameters than the LSTM at equal hidden width.
	KindGRU Kind = "GRU"
	// KindTCN is an extension: a two-block dilated temporal-convolutional
	// forecaster — parallelizable across the window, unlike the RNNs.
	KindTCN Kind = "TCN"
)

// AllKinds lists the algorithms in the paper's order.
func AllKinds() []Kind { return []Kind{KindLR, KindSVM, KindBP, KindLSTM} }

// New builds a forecaster of the given kind.
func New(kind Kind, cfg Config) (Forecaster, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	switch kind {
	case KindNaive:
		return NewNaive(cfg), nil
	case KindLR:
		model := nn.NewSequential(nn.NewDenseXavier(rng, cfg.Window+2, cfg.Horizon))
		return &sgdForecaster{
			kind: kind, cfg: cfg, model: model, loss: nn.MSE{},
			layout: layoutFlat, lrDecay: 0.1,
		}, nil
	case KindSVM:
		model := nn.NewSequential(nn.NewDenseXavier(rng, cfg.Window+2, cfg.Horizon))
		return &sgdForecaster{
			kind: kind, cfg: cfg, model: model,
			loss:   epsilonInsensitive{Epsilon: 0.025},
			decay:  1e-4,
			layout: layoutFlat, lrDecay: 0.3,
		}, nil
	case KindBP:
		model := nn.NewSequential(
			nn.NewDenseXavier(rng, cfg.Window+2, cfg.Hidden),
			nn.NewSigmoid(),
			nn.NewDenseXavier(rng, cfg.Hidden, cfg.Horizon),
		)
		// Huber with a small δ is median-seeking: the sporadic ON spikes are
		// inherently unpredictable, and a mean-seeking loss would bias the
		// plateau prediction out of the paper's ±10% accuracy band.
		return &sgdForecaster{kind: kind, cfg: cfg, model: model, loss: nn.Huber{Delta: 0.05}, layout: layoutFlat, lrDecay: 0.06}, nil
	case KindLSTM:
		model := nn.NewSequential(
			nn.NewLSTM(rng, 3, cfg.Hidden, cfg.Window),
			nn.NewDenseXavier(rng, cfg.Hidden, cfg.Horizon),
		)
		return &sgdForecaster{kind: kind, cfg: cfg, model: model, loss: nn.Huber{Delta: 0.05}, layout: layoutSeq, lrDecay: 0.06}, nil
	case KindGRU:
		model := nn.NewSequential(
			nn.NewGRU(rng, 3, cfg.Hidden, cfg.Window),
			nn.NewDenseXavier(rng, cfg.Hidden, cfg.Horizon),
		)
		return &sgdForecaster{kind: kind, cfg: cfg, model: model, loss: nn.Huber{Delta: 0.05}, layout: layoutSeq, lrDecay: 0.06}, nil
	case KindTCN:
		// Two dilated blocks (k=3 d=1, then k=3 d=2) need ≥ 2+4+1 steps.
		if cfg.Window < 7 {
			return nil, fmt.Errorf("forecast: TCN needs Window ≥ 7, have %d", cfg.Window)
		}
		ch := cfg.Hidden / 2
		if ch < 4 {
			ch = 4
		}
		c1 := nn.NewConv1D(rng, 3, ch, 3, cfg.Window, 1)
		c2 := nn.NewConv1D(rng, ch, ch, 3, c1.OutLen(), 2)
		model := nn.NewSequential(
			c1, nn.NewReLU(),
			c2, nn.NewReLU(),
			nn.NewDenseXavier(rng, c2.OutWidth(), cfg.Horizon),
		)
		return &sgdForecaster{kind: kind, cfg: cfg, model: model, loss: nn.Huber{Delta: 0.05}, layout: layoutSeq, lrDecay: 0.06}, nil
	default:
		return nil, fmt.Errorf("forecast: unknown kind %q", kind)
	}
}

// MustNew is New but panics on error; for tests and internal construction.
func MustNew(kind Kind, cfg Config) Forecaster {
	f, err := New(kind, cfg)
	if err != nil {
		panic(err)
	}
	return f
}

// featureLayout selects how a lag window is encoded for the model.
type featureLayout int

const (
	// layoutFlat: [w lags..., sin, cos] — for the feed-forward models.
	layoutFlat featureLayout = iota
	// layoutSeq: per-timestep triples (lag, sin_t, cos_t) — for the LSTM.
	layoutSeq
)

// sgdForecaster implements Forecaster for all four algorithms; the model
// architecture, loss, and feature layout are the only differences.
type sgdForecaster struct {
	kind   Kind
	cfg    Config
	model  *nn.Sequential
	loss   nn.Loss
	layout featureLayout
	// decay is an L2 weight-decay coefficient (the SVM margin term for the
	// SVR model), applied multiplicatively after each SGD step.
	decay float64
	// epochsSeen counts completed epochs across TrainEpochs calls so the
	// learning-rate schedule keeps decaying over federated rounds.
	epochsSeen int
	// lrDecay is the hyperbolic learning-rate decay coefficient: the
	// effective rate in epoch e is LearnRate/(1+lrDecay·e). Losses with
	// constant-magnitude gradients (ε-insensitive, Huber's linear zone)
	// need it to settle; quadratic losses self-decay and use a gentler
	// schedule.
	lrDecay float64

	// xRow/predBuf are Predict's reusable scratch: the encoded feature row
	// and the returned prediction slice. xBatch/predMat are PredictBatch's
	// equivalents; bx/by are TrainEpochs' minibatch workspaces. See
	// DESIGN.md "Memory model & buffer ownership".
	xRow            *tensor.Matrix
	predBuf         []float64
	xBatch, predMat *tensor.Matrix
	bx, by          *tensor.Matrix
}

func (f *sgdForecaster) Name() string          { return string(f.kind) }
func (f *sgdForecaster) Config() Config        { return f.cfg }
func (f *sgdForecaster) Model() *nn.Sequential { return f.model }

// EpochsSeen implements TrainStateCarrier.
func (f *sgdForecaster) EpochsSeen() int { return f.epochsSeen }

// SetEpochsSeen implements TrainStateCarrier.
func (f *sgdForecaster) SetEpochsSeen(n int) { f.epochsSeen = n }

// featureDim returns the model input width.
func (f *sgdForecaster) featureDim() int {
	if f.layout == layoutSeq {
		return 3 * f.cfg.Window
	}
	return f.cfg.Window + 2
}

// encode fills dst (one row, featureDim wide) from series lags ending at t
// (exclusive), with time-of-day features for minute t.
func (f *sgdForecaster) encode(dst []float64, series []float64, t int) {
	w := f.cfg.Window
	angle := 2 * math.Pi * float64(t%1440) / 1440
	sin, cos := math.Sin(angle), math.Cos(angle)
	switch f.layout {
	case layoutFlat:
		for i := 0; i < w; i++ {
			dst[i] = series[t-w+i] / f.cfg.Scale
		}
		dst[w] = sin
		dst[w+1] = cos
	case layoutSeq:
		for i := 0; i < w; i++ {
			lagMin := t - w + i
			a := 2 * math.Pi * float64(lagMin%1440) / 1440
			dst[3*i] = series[lagMin] / f.cfg.Scale
			dst[3*i+1] = math.Sin(a)
			dst[3*i+2] = math.Cos(a)
		}
	}
}

// windows builds the training design matrices from series.
func (f *sgdForecaster) windows(series []float64) (x, y *tensor.Matrix) {
	w, h, stride := f.cfg.Window, f.cfg.Horizon, f.cfg.Stride
	var starts []int
	for t := w; t+h <= len(series); t += stride {
		starts = append(starts, t)
	}
	if len(starts) == 0 {
		return nil, nil
	}
	x = tensor.New(len(starts), f.featureDim())
	y = tensor.New(len(starts), h)
	for r, t := range starts {
		f.encode(x.Row(r), series, t)
		for j := 0; j < h; j++ {
			y.Row(r)[j] = series[t+j] / f.cfg.Scale
		}
	}
	return x, y
}

// TrainEpochs implements Forecaster.
func (f *sgdForecaster) TrainEpochs(series []float64, n int) float64 {
	x, y := f.windows(series)
	if x == nil {
		return math.NaN()
	}
	opt := &nn.SGD{Clip: 1}
	rng := rand.New(rand.NewSource(f.cfg.Seed ^ 0x5eed))
	rows := x.Rows
	order := make([]int, rows)
	for i := range order {
		order[i] = i
	}
	var epochLoss float64
	for e := 0; e < n; e++ {
		opt.LR = f.cfg.LearnRate / (1 + f.lrDecay*float64(f.epochsSeen))
		f.epochsSeen++
		rng.Shuffle(rows, func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss = 0
		batches := 0
		for lo := 0; lo < rows; lo += f.cfg.Batch {
			hi := lo + f.cfg.Batch
			if hi > rows {
				hi = rows
			}
			f.bx = tensor.EnsureShape(f.bx, hi-lo, x.Cols)
			f.by = tensor.EnsureShape(f.by, hi-lo, y.Cols)
			for i := lo; i < hi; i++ {
				copy(f.bx.Row(i-lo), x.Row(order[i]))
				copy(f.by.Row(i-lo), y.Row(order[i]))
			}
			epochLoss += nn.FitBatch(f.model, f.loss, opt, f.bx, f.by)
			if f.decay > 0 {
				shrink := 1 - f.cfg.LearnRate*f.decay
				for _, p := range f.model.Params() {
					p.ScaleInPlace(shrink)
				}
			}
			batches++
		}
		epochLoss /= float64(batches)
	}
	return epochLoss
}

// Fit implements Forecaster.
func (f *sgdForecaster) Fit(series []float64) float64 {
	return f.TrainEpochs(series, f.cfg.Epochs)
}

// Predict implements Forecaster. The returned slice is forecaster-owned
// scratch, valid until the next Predict call on this forecaster; callers
// that retain it must copy (every caller in this repo copies immediately).
func (f *sgdForecaster) Predict(series []float64, t int) []float64 {
	if t < f.cfg.Window {
		panic(fmt.Sprintf("forecast: Predict at t=%d needs at least %d history minutes", t, f.cfg.Window))
	}
	if t > len(series) {
		panic(fmt.Sprintf("forecast: Predict at t=%d beyond series length %d", t, len(series)))
	}
	f.xRow = tensor.EnsureShape(f.xRow, 1, f.featureDim())
	f.encode(f.xRow.Row(0), series, t)
	out := f.model.Forward(f.xRow)
	if f.predBuf == nil {
		f.predBuf = make([]float64, f.cfg.Horizon)
	}
	pred := f.predBuf
	for j := range pred {
		v := out.Data[j] * f.cfg.Scale
		if v < 0 {
			v = 0
		}
		pred[j] = v
	}
	return pred
}

// PredictBatch implements BatchPredictor: one model forward for all of ts.
// Scaling and clamping apply the exact per-element operations of Predict,
// and batch rows flow through every layer independently, so row r equals
// Predict(series, ts[r]) bit for bit.
func (f *sgdForecaster) PredictBatch(series []float64, ts []int) *tensor.Matrix {
	for _, t := range ts {
		if t < f.cfg.Window {
			panic(fmt.Sprintf("forecast: PredictBatch at t=%d needs at least %d history minutes", t, f.cfg.Window))
		}
		if t > len(series) {
			panic(fmt.Sprintf("forecast: PredictBatch at t=%d beyond series length %d", t, len(series)))
		}
	}
	f.xBatch = tensor.EnsureShape(f.xBatch, len(ts), f.featureDim())
	for r, t := range ts {
		f.encode(f.xBatch.Row(r), series, t)
	}
	out := f.model.Forward(f.xBatch)
	f.predMat = tensor.EnsureShape(f.predMat, len(ts), f.cfg.Horizon)
	for i, v := range out.Data {
		v *= f.cfg.Scale
		if v < 0 {
			v = 0
		}
		f.predMat.Data[i] = v
	}
	return f.predMat
}

// epsilonInsensitive is the linear-SVR loss: max(0, |r|−ε), optimized by
// SGD. Together with the weight decay applied by the training loop it is
// the standard primal formulation of support-vector regression.
type epsilonInsensitive struct {
	Epsilon float64
}

// Loss implements nn.Loss.
func (l epsilonInsensitive) Loss(pred, target *tensor.Matrix) (float64, *tensor.Matrix) {
	n := float64(pred.Rows)
	grad := tensor.New(pred.Rows, pred.Cols)
	sum := 0.0
	for i, p := range pred.Data {
		r := p - target.Data[i]
		a := math.Abs(r)
		if a <= l.Epsilon {
			continue
		}
		sum += a - l.Epsilon
		if r > 0 {
			grad.Data[i] = 1 / n
		} else {
			grad.Data[i] = -1 / n
		}
	}
	return sum / n, grad
}

// Name implements nn.Loss.
func (l epsilonInsensitive) Name() string { return fmt.Sprintf("ε-insensitive(ε=%g)", l.Epsilon) }
