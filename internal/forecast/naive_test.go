package forecast

import (
	"math"
	"testing"
)

func TestNaiveForecaster(t *testing.T) {
	f, err := New(KindNaive, Config{Window: 10, Horizon: 5, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "Naive" {
		t.Fatalf("Name = %q", f.Name())
	}
	series := []float64{1, 2, 3, 4, 5}
	pred := f.Predict(series, 3)
	if len(pred) != 5 {
		t.Fatalf("horizon %d", len(pred))
	}
	for _, v := range pred {
		if v != 3 { // series[2], the last value before t=3
			t.Fatalf("persistence pred %v, want 3", v)
		}
	}
	if f.Model().NumParams() != 0 {
		t.Fatal("naive model should have no parameters")
	}
	if l := f.Fit(series); !math.IsNaN(l) {
		t.Fatalf("fit on short series = %v, want NaN", l)
	}
	long := make([]float64, 100)
	if l := f.Fit(long); l != 0 {
		t.Fatalf("fit = %v, want 0", l)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Predict at t=0 should panic")
		}
	}()
	f.Predict(series, 0)
}

func TestNaiveNeverNegative(t *testing.T) {
	f := NewNaive(Config{Horizon: 3})
	pred := f.Predict([]float64{-1}, 1)
	for _, v := range pred {
		if v < 0 {
			t.Fatal("naive prediction negative")
		}
	}
}

func TestTCNForecaster(t *testing.T) {
	f, err := New(KindTCN, Config{Window: 24, Horizon: 10, Scale: 0.12, Epochs: 2, Hidden: 12, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	series := testSeries(3)
	first := f.TrainEpochs(series, 1)
	var last float64
	for i := 0; i < 4; i++ {
		last = f.TrainEpochs(series, 1)
	}
	if math.IsNaN(first) || last > first*1.05 {
		t.Fatalf("TCN loss did not decrease: %v -> %v", first, last)
	}
	p := f.Predict(series, 100)
	if len(p) != 10 {
		t.Fatalf("TCN horizon %d", len(p))
	}
	for _, v := range p {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("TCN invalid prediction %v", v)
		}
	}
	// A window too small for the dilated stack must fail loudly at New.
	if _, err := New(KindTCN, Config{Window: 4, Horizon: 5, Scale: 1}); err == nil {
		t.Fatal("TCN with unfittable window accepted")
	}
}
