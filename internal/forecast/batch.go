package forecast

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// HomeBatch trains and queries N per-home forecasters of the same kind and
// architecture through one nn.Fleet: every forward/backward becomes a
// fleet-batched kernel dispatch over all homes instead of N tiny per-home
// passes. This is the forecast-plane compute shape the federation implies —
// the same device type in different residences runs structurally identical
// models in lockstep, differing only in parameters, normalization scale,
// and local data.
//
// Everything observable is bit-identical to running the member forecasters
// one by one: per-member RNG streams, shuffle orders, learning-rate decay
// schedules, loss values, SVM weight-decay shrinks, and parameter updates
// are all computed per member in the member's own order, on fleet slab
// views. The fleet Gathers live member parameters before every batched op
// (federation rounds install averaged weights into the members between
// bouts) and Scatters updates back afterwards.
//
// Members whose architectures cannot fleet (TCN's Conv1D stacks, the Naive
// baseline) fail NewHomeBatch with an error; callers keep the per-home
// path as fallback.
type HomeBatch struct {
	members []*sgdForecaster
	fleet   *nn.Fleet
	kind    Kind

	// Per-member optimizers persist across TrainEpochs calls like the
	// member path's per-call SGD values (stateless, so a fresh value per
	// call is equivalent; kept here to avoid re-allocating).
	opts []*nn.SGD

	// Training scratch, regrown only when shapes change.
	xAll, yAll *tensor.Batched // full design matrices, one item per member
	bx, by     *tensor.Batched // minibatch slabs
	grad       *tensor.Batched // loss gradients
	orders     [][]int
	rngs       []*rand.Rand
	losses     []float64

	// Prediction scratch.
	predX, predOut *tensor.Batched
}

// NewHomeBatch builds a batched trainer over the given forecasters. All
// members must be SGD forecasters of the same kind with identical Window,
// Horizon, Batch, and Stride (per-member Scale, learning schedule state,
// and parameters may differ). Returns an error when the members cannot
// share fleet kernels — the caller falls back to the per-home path.
func NewHomeBatch(fcs []Forecaster) (*HomeBatch, error) {
	if len(fcs) == 0 {
		return nil, fmt.Errorf("forecast: HomeBatch needs at least one member")
	}
	hb := &HomeBatch{}
	for i, fc := range fcs {
		sf, ok := fc.(*sgdForecaster)
		if !ok {
			return nil, fmt.Errorf("forecast: HomeBatch member %d (%s) is not an SGD forecaster", i, fc.Name())
		}
		if i == 0 {
			hb.kind = sf.kind
		} else {
			ref := hb.members[0]
			if sf.kind != ref.kind {
				return nil, fmt.Errorf("forecast: HomeBatch member %d kind %s, want %s", i, sf.kind, ref.kind)
			}
			if sf.cfg.Window != ref.cfg.Window || sf.cfg.Horizon != ref.cfg.Horizon ||
				sf.cfg.Batch != ref.cfg.Batch || sf.cfg.Stride != ref.cfg.Stride {
				return nil, fmt.Errorf("forecast: HomeBatch member %d window/horizon/batch/stride mismatch", i)
			}
		}
		hb.members = append(hb.members, sf)
	}
	models := make([]*nn.Sequential, len(hb.members))
	for i, m := range hb.members {
		models[i] = m.model
	}
	fleet, err := nn.NewFleet(models)
	if err != nil {
		return nil, err
	}
	hb.fleet = fleet
	n := len(hb.members)
	hb.opts = make([]*nn.SGD, n)
	for i := range hb.opts {
		hb.opts[i] = &nn.SGD{Clip: 1}
	}
	hb.orders = make([][]int, n)
	hb.rngs = make([]*rand.Rand, n)
	hb.losses = make([]float64, n)
	return hb, nil
}

// Len returns the number of member forecasters.
func (hb *HomeBatch) Len() int { return len(hb.members) }

// Kind returns the members' shared algorithm kind.
func (hb *HomeBatch) Kind() Kind { return hb.kind }

// PredictBatch predicts minutes [t, t+Horizon) for every member and every
// t in ts, in one fleet forward: the returned batch's item i row r is
// bit-identical to member i's Predict(seriesList[i], ts[r]). The batch is
// HomeBatch-owned scratch, valid until the next PredictBatch call.
func (hb *HomeBatch) PredictBatch(seriesList [][]float64, ts []int) *tensor.Batched {
	if len(seriesList) != len(hb.members) {
		panic(fmt.Sprintf("forecast: HomeBatch PredictBatch got %d series for %d members", len(seriesList), len(hb.members)))
	}
	n := len(hb.members)
	ref := hb.members[0]
	feat, horizon := ref.featureDim(), ref.cfg.Horizon
	for i, m := range hb.members {
		for _, t := range ts {
			if t < m.cfg.Window {
				panic(fmt.Sprintf("forecast: PredictBatch at t=%d needs at least %d history minutes", t, m.cfg.Window))
			}
			if t > len(seriesList[i]) {
				panic(fmt.Sprintf("forecast: PredictBatch at t=%d beyond series length %d", t, len(seriesList[i])))
			}
		}
	}
	hb.predX = tensor.EnsureBatched(hb.predX, n, len(ts), feat)
	for i, m := range hb.members {
		item := hb.predX.Item(i)
		for r, t := range ts {
			m.encode(item.Row(r), seriesList[i], t)
		}
	}
	hb.fleet.Gather()
	out := hb.fleet.Forward(hb.predX)
	hb.predOut = tensor.EnsureBatched(hb.predOut, n, len(ts), horizon)
	for i, m := range hb.members {
		src := out.Item(i).Data
		dst := hb.predOut.Item(i).Data
		scale := m.cfg.Scale
		for j, v := range src {
			v *= scale
			if v < 0 {
				v = 0
			}
			dst[j] = v
		}
	}
	return hb.predOut
}

// TrainEpochs runs n SGD epochs for every member on its own series,
// batching all members' forward/backward passes through the fleet. The
// returned slice holds each member's final-epoch mean loss, exactly what
// member i's own TrainEpochs(seriesList[i], n) would return (bit-identical
// losses and parameters).
//
// ok is false when the members' window counts diverge (different series
// lengths): minibatch boundaries would differ and the members cannot run
// in lockstep. Nothing has been mutated in that case — the caller must run
// the per-member fallback.
func (hb *HomeBatch) TrainEpochs(seriesList [][]float64, n int) (losses []float64, ok bool) {
	if len(seriesList) != len(hb.members) {
		panic(fmt.Sprintf("forecast: HomeBatch TrainEpochs got %d series for %d members", len(seriesList), len(hb.members)))
	}
	N := len(hb.members)
	ref := hb.members[0]
	feat, horizon, batchSize := ref.featureDim(), ref.cfg.Horizon, ref.cfg.Batch

	// Window starts must agree across members before anything mutates.
	rows := -1
	startsPer := make([][]int, N)
	for i, m := range hb.members {
		w, h, stride := m.cfg.Window, m.cfg.Horizon, m.cfg.Stride
		var starts []int
		for t := w; t+h <= len(seriesList[i]); t += stride {
			starts = append(starts, t)
		}
		startsPer[i] = starts
		if i == 0 {
			rows = len(starts)
		} else if len(starts) != rows {
			return nil, false
		}
	}
	if rows == 0 {
		// Matches the per-member path: no training, NaN loss.
		for i := range hb.losses {
			hb.losses[i] = math.NaN()
		}
		return hb.losses, true
	}

	// Encode the design matrices straight into the fleet slabs, one item
	// per member — the same encode/target fills as sgdForecaster.windows.
	hb.xAll = tensor.EnsureBatched(hb.xAll, N, rows, feat)
	hb.yAll = tensor.EnsureBatched(hb.yAll, N, rows, horizon)
	for i, m := range hb.members {
		xi, yi := hb.xAll.Item(i), hb.yAll.Item(i)
		for r, t := range startsPer[i] {
			m.encode(xi.Row(r), seriesList[i], t)
			yRow := yi.Row(r)
			for j := 0; j < horizon; j++ {
				yRow[j] = seriesList[i][t+j] / m.cfg.Scale
			}
		}
		hb.rngs[i] = rand.New(rand.NewSource(m.cfg.Seed ^ 0x5eed))
		if hb.orders[i] == nil || len(hb.orders[i]) != rows {
			hb.orders[i] = make([]int, rows)
		}
		for r := range hb.orders[i] {
			hb.orders[i][r] = r
		}
	}

	hb.fleet.Gather()
	for e := 0; e < n; e++ {
		for i, m := range hb.members {
			hb.opts[i].LR = m.cfg.LearnRate / (1 + m.lrDecay*float64(m.epochsSeen))
			m.epochsSeen++
			order := hb.orders[i]
			hb.rngs[i].Shuffle(rows, func(a, b int) { order[a], order[b] = order[b], order[a] })
			hb.losses[i] = 0
		}
		batches := 0
		for lo := 0; lo < rows; lo += batchSize {
			hi := lo + batchSize
			if hi > rows {
				hi = rows
			}
			b := hi - lo
			hb.bx = tensor.EnsureBatched(hb.bx, N, b, feat)
			hb.by = tensor.EnsureBatched(hb.by, N, b, horizon)
			for i := 0; i < N; i++ {
				xi, yi := hb.xAll.Item(i), hb.yAll.Item(i)
				bxi, byi := hb.bx.Item(i), hb.by.Item(i)
				order := hb.orders[i]
				for r := lo; r < hi; r++ {
					copy(bxi.Row(r-lo), xi.Row(order[r]))
					copy(byi.Row(r-lo), yi.Row(order[r]))
				}
			}
			// FitBatch, fleet-wide: zero grads, batched forward, per-member
			// loss, batched backward, per-member optimizer step on slab views.
			hb.fleet.ZeroGrads()
			pred := hb.fleet.Forward(hb.bx)
			hb.grad = tensor.EnsureBatched(hb.grad, N, b, horizon)
			for i, m := range hb.members {
				l, g := m.loss.Loss(pred.Item(i), hb.by.Item(i))
				hb.losses[i] += l
				hb.grad.Item(i).CopyFrom(g)
			}
			hb.fleet.Backward(hb.grad)
			for i, m := range hb.members {
				hb.opts[i].Step(hb.fleet.SlabParams(i), hb.fleet.SlabGrads(i))
				if m.decay > 0 {
					shrink := 1 - m.cfg.LearnRate*m.decay
					for _, p := range hb.fleet.SlabParams(i) {
						p.ScaleInPlace(shrink)
					}
				}
			}
			batches++
		}
		for i := range hb.losses {
			hb.losses[i] /= float64(batches)
		}
	}
	hb.fleet.Scatter()
	return hb.losses, true
}
