package forecast

import (
	"math"
	"testing"

	"repro/internal/pecan"
)

func smallConfig() Config {
	return Config{
		Window:    30,
		Horizon:   15,
		Scale:     0.12,
		LearnRate: 0.05,
		Epochs:    2,
		Batch:     8,
		Stride:    11,
		Hidden:    12,
		Seed:      3,
	}
}

func testSeries(days int) []float64 {
	ds := pecan.Generate(pecan.Config{Seed: 21, Homes: 1, Days: days, DevicesPerHome: 1})
	return ds.Homes[0].Traces[0].MaterializeKW()
}

func TestNewAllKinds(t *testing.T) {
	for _, k := range AllKinds() {
		f, err := New(k, smallConfig())
		if err != nil {
			t.Fatalf("New(%s): %v", k, err)
		}
		if f.Name() != string(k) {
			t.Fatalf("Name = %q, want %q", f.Name(), k)
		}
		if f.Model() == nil || f.Model().NumParams() == 0 {
			t.Fatalf("%s has no parameters", k)
		}
	}
	if _, err := New(Kind("nope"), smallConfig()); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	f := MustNew(KindLR, Config{})
	cfg := f.Config()
	if cfg.Window != 60 || cfg.Horizon != 60 || cfg.Batch != 16 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	def := DefaultConfig(0.5)
	if def.Scale != 0.5 || def.Window != 60 {
		t.Fatalf("DefaultConfig wrong: %+v", def)
	}
}

func TestPredictShapeAndNonNegative(t *testing.T) {
	series := testSeries(2)
	for _, k := range AllKinds() {
		f := MustNew(k, smallConfig())
		f.TrainEpochs(series[:1440], 1)
		p := f.Predict(series, 100)
		if len(p) != 15 {
			t.Fatalf("%s Predict length %d, want 15", k, len(p))
		}
		for _, v := range p {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("%s predicted invalid value %v", k, v)
			}
		}
	}
}

func TestPredictPanicsOnShortHistory(t *testing.T) {
	f := MustNew(KindLR, smallConfig())
	series := testSeries(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Predict with t < Window did not panic")
		}
	}()
	f.Predict(series, 5)
}

func TestPredictPanicsBeyondSeries(t *testing.T) {
	f := MustNew(KindLR, smallConfig())
	series := testSeries(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Predict beyond series did not panic")
		}
	}()
	f.Predict(series, len(series)+1)
}

func TestTrainingReducesLoss(t *testing.T) {
	series := testSeries(3)
	for _, k := range AllKinds() {
		f := MustNew(k, smallConfig())
		first := f.TrainEpochs(series, 1)
		var last float64
		for i := 0; i < 4; i++ {
			last = f.TrainEpochs(series, 1)
		}
		if math.IsNaN(first) || math.IsNaN(last) {
			t.Fatalf("%s produced NaN loss", k)
		}
		if last > first*1.05 {
			t.Fatalf("%s loss did not decrease: %v -> %v", k, first, last)
		}
	}
}

func TestTrainOnTooShortSeries(t *testing.T) {
	f := MustNew(KindLR, smallConfig())
	if l := f.TrainEpochs(make([]float64, 10), 1); !math.IsNaN(l) {
		t.Fatalf("training on too-short series returned %v, want NaN", l)
	}
}

func TestForecasterAccuracyOrdering(t *testing.T) {
	// After enough training on two weeks of data, held-out accuracy should
	// be solidly high for the LSTM and respect the paper's LR < LSTM gap.
	series := testSeries(16)
	train, test := series[:14*1440], series[14*1440:]
	cfg := smallConfig()
	cfg.Epochs = 18
	floor := FloorFor(0.12)
	score := func(k Kind) float64 {
		f := MustNew(k, cfg)
		f.Fit(train)
		_, pred, real := EvaluateOnSeries(f, test, floor)
		if len(pred) == 0 {
			t.Fatalf("%s: evaluation produced no samples", k)
		}
		return MeanAccuracy(pred, real, floor)
	}
	lr := score(KindLR)
	lstm := score(KindLSTM)
	if lstm < 0.7 {
		t.Fatalf("LSTM accuracy %.3f implausibly low", lstm)
	}
	if lstm <= lr {
		t.Fatalf("LSTM accuracy %.3f should exceed LR %.3f", lstm, lr)
	}
}

func TestAccuracyMetric(t *testing.T) {
	// Exact match = 1.
	acc := Accuracy([]float64{1, 2}, []float64{1, 2}, 0.01)
	if acc[0] != 1 || acc[1] != 1 {
		t.Fatalf("exact-match accuracy = %v", acc)
	}
	// 10% error = 0.9.
	acc = Accuracy([]float64{0.9}, []float64{1}, 0.01)
	if math.Abs(acc[0]-0.9) > 1e-12 {
		t.Fatalf("10%% error accuracy = %v", acc[0])
	}
	// Gross error clamps to 0.
	acc = Accuracy([]float64{10}, []float64{1}, 0.01)
	if acc[0] != 0 {
		t.Fatalf("gross error accuracy = %v", acc[0])
	}
	// True zero with near-zero prediction scores high via the floor.
	acc = Accuracy([]float64{0.001}, []float64{0}, 0.01)
	if acc[0] < 0.89 {
		t.Fatalf("near-zero-vs-zero accuracy = %v", acc[0])
	}
}

func TestAccuracyPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Accuracy([]float64{1}, []float64{1, 2}, 0.1) },
		func() { Accuracy([]float64{1}, []float64{1}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMeanAccuracyEmpty(t *testing.T) {
	if MeanAccuracy(nil, nil, 0.1) != 0 {
		t.Fatal("empty MeanAccuracy should be 0")
	}
}

func TestEvaluateOnSeriesTooShort(t *testing.T) {
	f := MustNew(KindLR, smallConfig())
	acc, pred, real := EvaluateOnSeries(f, make([]float64, 10), 0.01)
	if acc != nil || pred != nil || real != nil {
		t.Fatal("too-short evaluation should return nil slices")
	}
}

func TestFederationParamsRoundTrip(t *testing.T) {
	// Two forecasters of the same kind must be parameter-compatible:
	// copying params transfers behaviour exactly.
	series := testSeries(2)
	cfg := smallConfig()
	a := MustNew(KindBP, cfg)
	a.Fit(series)
	cfg2 := cfg
	cfg2.Seed = 99
	b := MustNew(KindBP, cfg2)
	b.Model().CopyParamsFrom(a.Model())
	pa := a.Predict(series, 200)
	pb := b.Predict(series, 200)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("copied params did not transfer behaviour")
		}
	}
}

func TestGRUForecaster(t *testing.T) {
	series := testSeries(3)
	f := MustNew(KindGRU, smallConfig())
	first := f.TrainEpochs(series, 1)
	var last float64
	for i := 0; i < 4; i++ {
		last = f.TrainEpochs(series, 1)
	}
	if math.IsNaN(first) || last > first*1.05 {
		t.Fatalf("GRU loss did not decrease: %v -> %v", first, last)
	}
	p := f.Predict(series, 200)
	if len(p) != smallConfig().Horizon {
		t.Fatalf("GRU horizon %d", len(p))
	}
	for _, v := range p {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("GRU invalid prediction %v", v)
		}
	}
	// Parameter-compatible across instances for federation.
	g2 := MustNew(KindGRU, smallConfig())
	g2.Model().CopyParamsFrom(f.Model())
	pa, pb := f.Predict(series, 300), g2.Predict(series, 300)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("GRU param copy did not transfer behaviour")
		}
	}
}
