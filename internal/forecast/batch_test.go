package forecast

import (
	"math"
	"math/rand"
	"testing"
)

// batchKinds are the fleet-capable forecaster kinds (TCN's Conv1D stack
// and the Naive baseline fall back to the per-home path).
var batchKinds = []Kind{KindLR, KindSVM, KindBP, KindLSTM, KindGRU}

func batchCfg(scale float64) Config {
	return Config{
		Window:    24,
		Horizon:   30,
		Scale:     scale,
		LearnRate: 0.05,
		Epochs:    2,
		Batch:     8,
		Stride:    5,
		Hidden:    6,
		Seed:      11,
	}
}

// syntheticSeries builds a deterministic per-member load trace.
func syntheticSeries(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	s := make([]float64, n)
	for i := range s {
		base := 0.8 + 0.6*math.Sin(2*math.Pi*float64(i%1440)/1440)
		s[i] = base + 0.2*rng.Float64()
		if rng.Intn(17) == 0 {
			s[i] = 0 // exact zeros exercise the kernels' zero-skip
		}
	}
	return s
}

func buildPair(t *testing.T, kind Kind, n int) (batch []Forecaster, solo []Forecaster) {
	t.Helper()
	for i := 0; i < n; i++ {
		cfg := batchCfg(1.0 + 0.5*float64(i)) // per-member Scale differs, like per-home OnKW
		batch = append(batch, MustNew(kind, cfg))
		solo = append(solo, MustNew(kind, cfg))
	}
	return batch, solo
}

// TestHomeBatchTrainMatchesPerMember trains twin fleets — one through
// HomeBatch, one member by member — and pins losses, parameters, and
// subsequent predictions bitwise, across kinds and fleet sizes 1/3/8.
func TestHomeBatchTrainMatchesPerMember(t *testing.T) {
	for _, kind := range batchKinds {
		for _, n := range []int{1, 3, 8} {
			batchFcs, soloFcs := buildPair(t, kind, n)
			hb, err := NewHomeBatch(batchFcs)
			if err != nil {
				t.Fatalf("%s × %d: NewHomeBatch: %v", kind, n, err)
			}
			series := make([][]float64, n)
			for i := range series {
				series[i] = syntheticSeries(400, int64(1000+i))
			}

			// Two bouts, like the engine's repeated train-every-4h bouts, so
			// the epochsSeen-driven LR decay schedule is exercised across calls.
			for bout := 0; bout < 2; bout++ {
				losses, ok := hb.TrainEpochs(series, 2)
				if !ok {
					t.Fatalf("%s × %d: TrainEpochs fell back unexpectedly", kind, n)
				}
				for i, fc := range soloFcs {
					want := fc.TrainEpochs(series[i], 2)
					if math.Float64bits(losses[i]) != math.Float64bits(want) {
						t.Fatalf("%s × %d bout %d member %d: loss %v vs %v", kind, n, bout, i, losses[i], want)
					}
				}
			}
			for i := range batchFcs {
				bp := batchFcs[i].Model().Params()
				sp := soloFcs[i].Model().Params()
				for pi := range bp {
					for j := range bp[pi].Data {
						if math.Float64bits(bp[pi].Data[j]) != math.Float64bits(sp[pi].Data[j]) {
							t.Fatalf("%s × %d member %d param %d[%d]: %v vs %v", kind, n, i, pi, j, bp[pi].Data[j], sp[pi].Data[j])
						}
					}
				}
				// Training state carried identically.
				if batchFcs[i].(TrainStateCarrier).EpochsSeen() != soloFcs[i].(TrainStateCarrier).EpochsSeen() {
					t.Fatalf("%s member %d: epochsSeen diverged", kind, i)
				}
			}

			// Predictions after training match per-member PredictBatch.
			ts := []int{100, 160, 220}
			got := hb.PredictBatch(series, ts)
			for i, fc := range soloFcs {
				want := fc.(BatchPredictor).PredictBatch(series[i], ts)
				for j := range want.Data {
					if math.Float64bits(got.Item(i).Data[j]) != math.Float64bits(want.Data[j]) {
						t.Fatalf("%s × %d member %d pred[%d]: %v vs %v", kind, n, i, j, got.Item(i).Data[j], want.Data[j])
					}
				}
			}
		}
	}
}

// TestHomeBatchShortSeries checks the no-windows path returns NaN losses
// without touching training state, like the per-member path.
func TestHomeBatchShortSeries(t *testing.T) {
	fcs, _ := buildPair(t, KindLR, 2)
	hb, err := NewHomeBatch(fcs)
	if err != nil {
		t.Fatal(err)
	}
	short := [][]float64{make([]float64, 10), make([]float64, 10)}
	losses, ok := hb.TrainEpochs(short, 3)
	if !ok {
		t.Fatal("equal-length short series should not fall back")
	}
	for i, l := range losses {
		if !math.IsNaN(l) {
			t.Fatalf("member %d loss = %v, want NaN", i, l)
		}
	}
	if fcs[0].(TrainStateCarrier).EpochsSeen() != 0 {
		t.Fatal("no-window training must not advance epochsSeen")
	}
}

// TestHomeBatchRaggedFallback checks diverging window counts reject the
// lockstep path without mutating anything.
func TestHomeBatchRaggedFallback(t *testing.T) {
	fcs, _ := buildPair(t, KindBP, 2)
	hb, err := NewHomeBatch(fcs)
	if err != nil {
		t.Fatal(err)
	}
	ragged := [][]float64{syntheticSeries(400, 1), syntheticSeries(200, 2)}
	before := append([]float64(nil), fcs[0].Model().Params()[0].Data...)
	if _, ok := hb.TrainEpochs(ragged, 1); ok {
		t.Fatal("ragged series should fall back")
	}
	after := fcs[0].Model().Params()[0].Data
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("fallback must not mutate parameters")
		}
	}
	if fcs[0].(TrainStateCarrier).EpochsSeen() != 0 {
		t.Fatal("fallback must not advance epochsSeen")
	}
}

// TestHomeBatchRejectsIncompatibleMembers checks the constructor-level
// fallback triggers: mixed kinds, mismatched shapes, non-SGD members,
// unfleetable architectures.
func TestHomeBatchRejectsIncompatibleMembers(t *testing.T) {
	if _, err := NewHomeBatch(nil); err == nil {
		t.Fatal("empty member list should error")
	}
	lr := MustNew(KindLR, batchCfg(1))
	bp := MustNew(KindBP, batchCfg(1))
	if _, err := NewHomeBatch([]Forecaster{lr, bp}); err == nil {
		t.Fatal("mixed kinds should error")
	}
	other := batchCfg(1)
	other.Window = 30
	if _, err := NewHomeBatch([]Forecaster{lr, MustNew(KindLR, other)}); err == nil {
		t.Fatal("window mismatch should error")
	}
	if _, err := NewHomeBatch([]Forecaster{NewNaive(batchCfg(1))}); err == nil {
		t.Fatal("naive forecaster should error")
	}
	tcnCfg := batchCfg(1)
	tcn := MustNew(KindTCN, tcnCfg)
	if _, err := NewHomeBatch([]Forecaster{tcn}); err == nil {
		t.Fatal("TCN should error (Conv1D is not fleetable)")
	}
	hiddenMismatch := batchCfg(1)
	hiddenMismatch.Hidden = 12
	if _, err := NewHomeBatch([]Forecaster{MustNew(KindLSTM, batchCfg(1)), MustNew(KindLSTM, hiddenMismatch)}); err == nil {
		t.Fatal("hidden-width mismatch should error")
	}
}
