package tensor

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestWriteToReadFromRoundTrip(t *testing.T) {
	m := NewFromSlice(2, 3, []float64{1.5, -2.25, 0, math.Pi, 1e-300, -1e300})
	var buf bytes.Buffer
	n, err := m.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(m.WireSize()) {
		t.Fatalf("WriteTo wrote %d bytes, want %d", n, m.WireSize())
	}
	var out Matrix
	rn, err := out.ReadFrom(&buf)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if rn != n {
		t.Fatalf("ReadFrom read %d bytes, want %d", rn, n)
	}
	if !out.Equal(m) {
		t.Fatalf("round-trip mismatch: %v vs %v", &out, m)
	}
}

func TestReadFromTruncated(t *testing.T) {
	m := NewFromSlice(2, 2, []float64{1, 2, 3, 4})
	blob, _ := m.MarshalBinary()
	var out Matrix
	if _, err := out.ReadFrom(bytes.NewReader(blob[:10])); err == nil {
		t.Fatal("ReadFrom on truncated stream should error")
	}
	if _, err := out.ReadFrom(bytes.NewReader(blob[:3])); err == nil {
		t.Fatal("ReadFrom on truncated header should error")
	}
}

func TestUnmarshalBinaryErrors(t *testing.T) {
	var m Matrix
	if err := m.UnmarshalBinary([]byte{1, 2}); err == nil {
		t.Fatal("short data should error")
	}
	// Header claims 2x2 but only 1 element present.
	good, _ := NewFromSlice(2, 2, []float64{1, 2, 3, 4}).MarshalBinary()
	if err := m.UnmarshalBinary(good[:8+8]); err == nil {
		t.Fatal("length mismatch should error")
	}
	// Oversized header must be rejected before allocation.
	huge := make([]byte, 8)
	for i := range huge {
		huge[i] = 0xff
	}
	if err := m.UnmarshalBinary(huge); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("oversized header should be rejected, got %v", err)
	}
}

func TestZeroSizeMatrixSerialization(t *testing.T) {
	m := New(0, 0)
	blob, err := m.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	var out Matrix
	if err := out.UnmarshalBinary(blob); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	if out.Rows != 0 || out.Cols != 0 {
		t.Fatalf("zero matrix round-trip got %dx%d", out.Rows, out.Cols)
	}
}

func TestNaNSurvivesSerialization(t *testing.T) {
	m := NewFromSlice(1, 1, []float64{math.NaN()})
	blob, _ := m.MarshalBinary()
	var out Matrix
	if err := out.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(out.Data[0]) {
		t.Fatal("NaN payload not preserved bit-exactly")
	}
}
