package tensor

import (
	"fmt"
	"math"
)

// shapeMatch panics unless a and b have the same shape.
func shapeMatch(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// Add returns a+b elementwise.
func Add(a, b *Matrix) *Matrix {
	shapeMatch("Add", a, b)
	out := New(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// AddInto computes dst = a+b elementwise. dst may alias a or b.
func AddInto(dst, a, b *Matrix) {
	shapeMatch("AddInto", a, b)
	shapeMatch("AddInto dst", dst, a)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// AddScaled computes m += alpha*delta in place.
func (m *Matrix) AddScaled(delta *Matrix, alpha float64) {
	shapeMatch("AddScaled", m, delta)
	for i := range m.Data {
		m.Data[i] += alpha * delta.Data[i]
	}
}

// Sub returns a-b elementwise.
func Sub(a, b *Matrix) *Matrix {
	shapeMatch("Sub", a, b)
	out := New(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// SubInto computes dst = a-b elementwise. dst may alias a or b.
func SubInto(dst, a, b *Matrix) {
	shapeMatch("SubInto", a, b)
	shapeMatch("SubInto dst", dst, a)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
}

// Hadamard returns the elementwise product a*b.
func Hadamard(a, b *Matrix) *Matrix {
	shapeMatch("Hadamard", a, b)
	out := New(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// HadamardInto computes dst = a*b elementwise.
func HadamardInto(dst, a, b *Matrix) {
	shapeMatch("HadamardInto", a, b)
	shapeMatch("HadamardInto dst", dst, a)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
}

// Scale returns alpha*a.
func Scale(a *Matrix, alpha float64) *Matrix {
	out := New(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = alpha * a.Data[i]
	}
	return out
}

// ScaleInPlace computes m *= alpha.
func (m *Matrix) ScaleInPlace(alpha float64) {
	for i := range m.Data {
		m.Data[i] *= alpha
	}
}

// AddScalar returns a matrix with alpha added to every element of a.
func AddScalar(a *Matrix, alpha float64) *Matrix {
	out := New(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + alpha
	}
	return out
}

// Apply returns f applied elementwise to a.
func Apply(a *Matrix, f func(float64) float64) *Matrix {
	out := New(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = f(a.Data[i])
	}
	return out
}

// ApplyInPlace applies f elementwise to m.
func (m *Matrix) ApplyInPlace(f func(float64) float64) {
	for i := range m.Data {
		m.Data[i] = f(m.Data[i])
	}
}

// Transpose returns a^T.
func Transpose(a *Matrix) *Matrix {
	out := New(a.Cols, a.Rows)
	TransposeInto(out, a)
	return out
}

// Sum returns the sum of all elements.
func (m *Matrix) Sum() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements, or 0 for an empty matrix.
func (m *Matrix) Mean() float64 {
	if len(m.Data) == 0 {
		return 0
	}
	return m.Sum() / float64(len(m.Data))
}

// Max returns the largest element. It panics on an empty matrix.
func (m *Matrix) Max() float64 {
	if len(m.Data) == 0 {
		panic("tensor: Max of empty matrix")
	}
	best := m.Data[0]
	for _, v := range m.Data[1:] {
		if v > best {
			best = v
		}
	}
	return best
}

// Min returns the smallest element. It panics on an empty matrix.
func (m *Matrix) Min() float64 {
	if len(m.Data) == 0 {
		panic("tensor: Min of empty matrix")
	}
	best := m.Data[0]
	for _, v := range m.Data[1:] {
		if v < best {
			best = v
		}
	}
	return best
}

// ArgMax returns the flat index of the largest element (first on ties).
// It panics on an empty matrix.
func (m *Matrix) ArgMax() int {
	if len(m.Data) == 0 {
		panic("tensor: ArgMax of empty matrix")
	}
	best, bi := m.Data[0], 0
	for i, v := range m.Data[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// RowArgMax returns, for each row, the column index of that row's maximum.
func (m *Matrix) RowArgMax() []int {
	return ArgmaxRowsInto(make([]int, m.Rows), m)
}

// Norm2 returns the Frobenius (L2) norm of m.
func (m *Matrix) Norm2() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of two equally-shaped matrices viewed as
// flat vectors.
func Dot(a, b *Matrix) float64 {
	shapeMatch("Dot", a, b)
	s := 0.0
	for i, v := range a.Data {
		s += v * b.Data[i]
	}
	return s
}

// ClipInPlace clamps every element of m into [-limit, limit].
// A non-positive limit is a no-op.
func (m *Matrix) ClipInPlace(limit float64) {
	if limit <= 0 {
		return
	}
	for i, v := range m.Data {
		if v > limit {
			m.Data[i] = limit
		} else if v < -limit {
			m.Data[i] = -limit
		}
	}
}

// AddRowVectorInPlace adds the 1xC row vector v to every row of m.
func (m *Matrix) AddRowVectorInPlace(v *Matrix) {
	if v.Rows != 1 || v.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowVector shape %dx%d incompatible with %dx%d", v.Rows, v.Cols, m.Rows, m.Cols))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c := range row {
			row[c] += v.Data[c]
		}
	}
}

// ColSums returns a 1xC row vector with the sum of each column of m.
func (m *Matrix) ColSums() *Matrix {
	out := New(1, m.Cols)
	ColSumsInto(out, m)
	return out
}

// Concat returns the horizontal concatenation [a | b]. Row counts must match.
func Concat(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: Concat row mismatch %d vs %d", a.Rows, b.Rows))
	}
	out := New(a.Rows, a.Cols+b.Cols)
	for r := 0; r < a.Rows; r++ {
		copy(out.Row(r)[:a.Cols], a.Row(r))
		copy(out.Row(r)[a.Cols:], b.Row(r))
	}
	return out
}

// SliceCols returns a copy of columns [from, to) of m.
func (m *Matrix) SliceCols(from, to int) *Matrix {
	if from < 0 || to > m.Cols || from > to {
		panic(fmt.Sprintf("tensor: SliceCols [%d,%d) out of range for %d cols", from, to, m.Cols))
	}
	out := New(m.Rows, to-from)
	for r := 0; r < m.Rows; r++ {
		copy(out.Row(r), m.Row(r)[from:to])
	}
	return out
}

// SliceRows returns a copy of rows [from, to) of m.
func (m *Matrix) SliceRows(from, to int) *Matrix {
	if from < 0 || to > m.Rows || from > to {
		panic(fmt.Sprintf("tensor: SliceRows [%d,%d) out of range for %d rows", from, to, m.Rows))
	}
	out := New(to-from, m.Cols)
	copy(out.Data, m.Data[from*m.Cols:to*m.Cols])
	return out
}
