package tensor

import (
	"fmt"

	"repro/internal/sched"
)

// Batched is a fleet of N equally-shaped matrices packed into one
// contiguous fleet-major buffer: item n occupies
// Data[n*Rows*Cols : (n+1)*Rows*Cols], itself row-major. It is the memory
// layout behind the fleet-batched forecaster kernels: per-home parameters,
// activations, and gradients become strided 3-D views over one slab, so a
// wave over all homes is one pool dispatch over flat rows instead of N tiny
// per-home kernel calls.
//
// Bit-exactness: every batched kernel below routes each output row through
// the same row-level kernel as the per-matrix path (or applies the
// per-matrix kernel verbatim to an item view), and items never mix — so
// batched results are bit-identical to running the per-matrix kernels N
// times, the contract the fleet golden tests pin.
type Batched struct {
	N, Rows, Cols int
	// Data holds the N items back to back, each row-major.
	Data []float64
	// views caches one Matrix header per item so Item(n) is allocation-free
	// after the first call. Rebuilt by EnsureBatched on reshape.
	views []Matrix
}

// NewBatched returns a zero-initialized batch of n rows x cols matrices.
func NewBatched(n, rows, cols int) *Batched {
	if n < 0 || rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid batched shape %dx%dx%d", n, rows, cols))
	}
	return &Batched{N: n, Rows: rows, Cols: cols, Data: make([]float64, n*rows*cols)}
}

// EnsureBatched reshapes b to n x rows x cols, reusing the backing slice
// when capacity allows (contents become undefined). A nil b allocates
// fresh. Returns b for chaining.
func EnsureBatched(b *Batched, n, rows, cols int) *Batched {
	if b == nil {
		return NewBatched(n, rows, cols)
	}
	need := n * rows * cols
	if cap(b.Data) < need {
		b.Data = make([]float64, need)
	}
	b.Data = b.Data[:need]
	if b.N != n || b.Rows != rows || b.Cols != cols {
		b.N, b.Rows, b.Cols = n, rows, cols
		b.views = nil
	}
	return b
}

// Item returns a Matrix view of item n, sharing b's backing storage.
// The returned pointer stays valid and stable until the next EnsureBatched
// reshape; writes through it are writes into the slab. The first Item call
// after a reshape materializes the view cache and must not race with other
// Item calls; the batched kernels materialize before fanning out.
func (b *Batched) Item(n int) *Matrix {
	if n < 0 || n >= b.N {
		panic(fmt.Sprintf("tensor: batched item %d out of range [0,%d)", n, b.N))
	}
	b.ensureViews()
	return &b.views[n]
}

func (b *Batched) ensureViews() {
	if b.views != nil {
		return
	}
	stride := b.Rows * b.Cols
	b.views = make([]Matrix, b.N)
	for i := 0; i < b.N; i++ {
		b.views[i] = Matrix{Rows: b.Rows, Cols: b.Cols, Data: b.Data[i*stride : (i+1)*stride : (i+1)*stride]}
	}
}

// Zero sets every element of the batch to 0.
func (b *Batched) Zero() {
	for i := range b.Data {
		b.Data[i] = 0
	}
}

func batchedShapeCheck(op string, b *Batched, n, rows, cols int) {
	if b.N != n || b.Rows != rows || b.Cols != cols {
		panic(fmt.Sprintf("tensor: %s shape %dx%dx%d, want %dx%dx%d", op, b.N, b.Rows, b.Cols, n, rows, cols))
	}
}

// Per-kernel-family cost models for the adaptive grain decisions. The unit
// is one multiply-add, so one model serves all shapes a family sees.
var (
	batchedMatMulCost   sched.CostModel
	batchedDenseFwdCost sched.CostModel
	batchedDenseBwdCost sched.CostModel
)

// BatchedMatMulInto computes dst[n] = a[n]·b[n] for every item. Shapes:
// a: N x r x k, b: N x k x c, dst: N x r x c. dst must not alias a or b.
// Items shard across the pool with an adaptive grain; each item runs the
// exact serial matMulRange kernel, so results are bit-identical to N
// MatMulInto calls.
func BatchedMatMulInto(dst, a, b *Batched) {
	if a.N != b.N || a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: BatchedMatMulInto inner mismatch %dx%dx%d · %dx%dx%d", a.N, a.Rows, a.Cols, b.N, b.Rows, b.Cols))
	}
	batchedShapeCheck("BatchedMatMulInto dst", dst, a.N, a.Rows, b.Cols)
	if a.N == 0 {
		return
	}
	dst.ensureViews()
	a.ensureViews()
	b.ensureViews()
	perItem := a.Rows * a.Cols * b.Cols
	sched.Default().ParallelForCost(&batchedMatMulCost, a.N, perItem, func(lo, hi int) {
		for n := lo; n < hi; n++ {
			matMulRange(dst.Item(n), a.Item(n), b.Item(n), 0, a.Rows)
		}
	})
}

// BatchedDenseForwardInto computes dst[n] = x[n]·w[n] + bias[n] for every
// item: the fleet form of DenseForwardInto. Shapes: x: N x batch x in,
// w: N x in x out, bias: N x 1 x out, dst: N x batch x out. Rows shard flat
// across items (a chunk may straddle item boundaries); each row runs
// denseForwardRow against its item's weight slab.
func BatchedDenseForwardInto(dst, x, w, bias *Batched) {
	batchedDenseForward("BatchedDenseForwardInto", dst, nil, x, w, bias, nil)
}

// BatchedDenseForwardApplyInto is the fleet form of DenseForwardApplyInto:
// pre[n] = x[n]·w[n] + bias[n] and post[n] = fn(pre[n]) in the same sweep.
// fn must be pure; rows may run concurrently.
func BatchedDenseForwardApplyInto(pre, post, x, w, bias *Batched, fn func(float64) float64) {
	if post.N != pre.N || post.Rows != pre.Rows || post.Cols != pre.Cols {
		panic(fmt.Sprintf("tensor: BatchedDenseForwardApplyInto post shape %dx%dx%d, want %dx%dx%d", post.N, post.Rows, post.Cols, pre.N, pre.Rows, pre.Cols))
	}
	batchedDenseForward("BatchedDenseForwardApplyInto", pre, post, x, w, bias, fn)
}

func batchedDenseForward(op string, pre, post, x, w, bias *Batched, fn func(float64) float64) {
	if x.N != w.N || x.Cols != w.Rows {
		panic(fmt.Sprintf("tensor: %s inner mismatch %dx%dx%d · %dx%dx%d", op, x.N, x.Rows, x.Cols, w.N, w.Rows, w.Cols))
	}
	batchedShapeCheck(op+" bias", bias, x.N, 1, w.Cols)
	batchedShapeCheck(op+" dst", pre, x.N, x.Rows, w.Cols)
	if x.N == 0 || x.Rows == 0 {
		return
	}
	in, out := x.Cols, w.Cols
	rows := x.N * x.Rows
	wStride, bStride := in*out, out
	sched.Default().ParallelForCost(&batchedDenseFwdCost, rows, in*out, func(lo, hi int) {
		for fr := lo; fr < hi; fr++ {
			n := fr / x.Rows
			var postRow []float64
			if fn != nil {
				postRow = post.Data[fr*out : (fr+1)*out]
			}
			denseForwardRow(
				pre.Data[fr*out:(fr+1)*out],
				postRow,
				x.Data[fr*in:(fr+1)*in],
				w.Data[n*wStride:(n+1)*wStride],
				bias.Data[n*bStride:(n+1)*bStride],
				out, fn)
		}
	})
}

// BatchedDenseBackwardInto computes the full dense backward pass per item:
// dw[n] = x[n]ᵀ·grad[n] (overwritten), db[n] = column sums of grad[n]
// (overwritten), dx[n] = grad[n]·w[n]ᵀ. Items shard across the pool; each
// item runs the exact DenseBackwardInto kernel on slab views, so per-item
// results are bit-identical to the per-model path.
func BatchedDenseBackwardInto(dw, db, dx, x, w, grad *Batched) {
	if x.N != w.N || grad.N != x.N {
		panic(fmt.Sprintf("tensor: BatchedDenseBackwardInto fleet mismatch x=%d w=%d grad=%d", x.N, w.N, grad.N))
	}
	batchedShapeCheck("BatchedDenseBackwardInto dw", dw, x.N, x.Cols, w.Cols)
	batchedShapeCheck("BatchedDenseBackwardInto db", db, x.N, 1, w.Cols)
	batchedShapeCheck("BatchedDenseBackwardInto dx", dx, x.N, x.Rows, x.Cols)
	if x.N == 0 {
		return
	}
	for _, b := range []*Batched{dw, db, dx, x, w, grad} {
		b.ensureViews()
	}
	perItem := 3 * x.Rows * x.Cols * w.Cols
	sched.Default().ParallelForCost(&batchedDenseBwdCost, x.N, perItem, func(lo, hi int) {
		for n := lo; n < hi; n++ {
			DenseBackwardInto(dw.Item(n), db.Item(n), dx.Item(n), x.Item(n), w.Item(n), grad.Item(n))
		}
	})
}

// BatchedMatMulTransAInto computes dst[n] = a[n]ᵀ·b[n] for every item,
// overwriting dst. Each item runs the exact MatMulTransAInto kernel on slab
// views; items shard across the pool.
func BatchedMatMulTransAInto(dst, a, b *Batched) {
	if a.N != b.N || a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: BatchedMatMulTransAInto inner mismatch (%dx%dx%d)ᵀ · %dx%dx%d", a.N, a.Rows, a.Cols, b.N, b.Rows, b.Cols))
	}
	batchedShapeCheck("BatchedMatMulTransAInto dst", dst, a.N, a.Cols, b.Cols)
	if a.N == 0 {
		return
	}
	dst.ensureViews()
	a.ensureViews()
	b.ensureViews()
	perItem := a.Rows * a.Cols * b.Cols
	sched.Default().ParallelForCost(&batchedMatMulCost, a.N, perItem, func(lo, hi int) {
		for n := lo; n < hi; n++ {
			MatMulTransAInto(dst.Item(n), a.Item(n), b.Item(n))
		}
	})
}

// BatchedMatMulTransBInto computes dst[n] = a[n]·b[n]ᵀ for every item,
// overwriting dst. Each item runs the exact MatMulTransBInto kernel on slab
// views; items shard across the pool.
func BatchedMatMulTransBInto(dst, a, b *Batched) {
	if a.N != b.N || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: BatchedMatMulTransBInto inner mismatch %dx%dx%d · (%dx%dx%d)ᵀ", a.N, a.Rows, a.Cols, b.N, b.Rows, b.Cols))
	}
	batchedShapeCheck("BatchedMatMulTransBInto dst", dst, a.N, a.Rows, b.Rows)
	if a.N == 0 {
		return
	}
	dst.ensureViews()
	a.ensureViews()
	b.ensureViews()
	perItem := a.Rows * a.Cols * b.Rows
	sched.Default().ParallelForCost(&batchedMatMulCost, a.N, perItem, func(lo, hi int) {
		for n := lo; n < hi; n++ {
			MatMulTransBInto(dst.Item(n), a.Item(n), b.Item(n))
		}
	})
}

// BatchedColSumsInto computes dst[n] = column sums of a[n] for every item.
// dst must be N x 1 x a.Cols. Runs serially: the work is one read pass.
func BatchedColSumsInto(dst, a *Batched) {
	batchedShapeCheck("BatchedColSumsInto dst", dst, a.N, 1, a.Cols)
	a.ensureViews()
	dst.ensureViews()
	for n := 0; n < a.N; n++ {
		ColSumsInto(dst.Item(n), a.Item(n))
	}
}

// BatchedAccumulate computes dst += src elementwise over the whole slab:
// the fleet form of the AddInto gradient-accumulation step. Per-element
// adds are independent, so one flat pass is bit-identical to N per-item
// AddInto calls.
func BatchedAccumulate(dst, src *Batched) {
	batchedShapeCheck("BatchedAccumulate src", src, dst.N, dst.Rows, dst.Cols)
	for i, v := range src.Data {
		dst.Data[i] += v
	}
}

// BatchedApplyInto computes dst[n] = fn(a[n]) elementwise over the whole
// slab. dst and a may be the same batch.
func BatchedApplyInto(dst, a *Batched, fn func(float64) float64) {
	batchedShapeCheck("BatchedApplyInto dst", dst, a.N, a.Rows, a.Cols)
	for i, v := range a.Data {
		dst.Data[i] = fn(v)
	}
}
