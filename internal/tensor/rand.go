package tensor

import (
	"math"
	"math/rand"
)

// RandUniform returns a rows x cols matrix with elements drawn i.i.d. from
// U[lo, hi) using rng.
func RandUniform(rng *rand.Rand, rows, cols int, lo, hi float64) *Matrix {
	m := New(rows, cols)
	span := hi - lo
	for i := range m.Data {
		m.Data[i] = lo + span*rng.Float64()
	}
	return m
}

// RandNormal returns a rows x cols matrix with elements drawn i.i.d. from
// N(mean, std²) using rng.
func RandNormal(rng *rand.Rand, rows, cols int, mean, std float64) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = mean + std*rng.NormFloat64()
	}
	return m
}

// XavierUniform returns a fanIn x fanOut weight matrix initialized with the
// Glorot/Xavier uniform scheme: U[-a, a] with a = sqrt(6/(fanIn+fanOut)).
// Appropriate for tanh/sigmoid layers (the LSTM gates).
func XavierUniform(rng *rand.Rand, fanIn, fanOut int) *Matrix {
	a := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return RandUniform(rng, fanIn, fanOut, -a, a)
}

// HeNormal returns a fanIn x fanOut weight matrix initialized with the
// He/Kaiming normal scheme: N(0, 2/fanIn). Appropriate for ReLU layers
// (the 8x100 DQN hidden stack).
func HeNormal(rng *rand.Rand, fanIn, fanOut int) *Matrix {
	std := math.Sqrt(2.0 / float64(fanIn))
	return RandNormal(rng, fanIn, fanOut, 0, std)
}
