package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewShapeAndZero(t *testing.T) {
	m := New(3, 4)
	r, c := m.Shape()
	if r != 3 || c != 4 {
		t.Fatalf("Shape() = (%d,%d), want (3,4)", r, c)
	}
	if m.Size() != 12 {
		t.Fatalf("Size() = %d, want 12", m.Size())
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestNewPanicsOnNegativeShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestNewFromSlicePanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFromSlice with wrong length did not panic")
		}
	}()
	NewFromSlice(2, 2, []float64{1, 2, 3})
}

func TestAtSetRoundTrip(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	if got := m.Data[1*3+2]; got != 7.5 {
		t.Fatalf("row-major layout broken: Data[5] = %v", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	m := New(2, 2)
	for _, idx := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("At(%d,%d) did not panic", idx[0], idx[1])
				}
			}()
			m.At(idx[0], idx[1])
		}()
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			want := 0.0
			if r == c {
				want = 1
			}
			if id.At(r, c) != want {
				t.Fatalf("Identity(3)[%d,%d] = %v, want %v", r, c, id.At(r, c), want)
			}
		}
	}
}

func TestRowAliasesStorage(t *testing.T) {
	m := NewFromSlice(2, 2, []float64{1, 2, 3, 4})
	row := m.Row(1)
	row[0] = 99
	if m.At(1, 0) != 99 {
		t.Fatal("Row did not alias matrix storage")
	}
}

func TestColCopies(t *testing.T) {
	m := NewFromSlice(2, 2, []float64{1, 2, 3, 4})
	col := m.Col(1)
	if col[0] != 2 || col[1] != 4 {
		t.Fatalf("Col(1) = %v, want [2 4]", col)
	}
	col[0] = 42
	if m.At(0, 1) != 2 {
		t.Fatal("Col must return a copy")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := NewFromSlice(1, 2, []float64{1, 2})
	n := m.Clone()
	n.Data[0] = 50
	if m.Data[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestEqualAndAlmostEqual(t *testing.T) {
	a := NewFromSlice(1, 2, []float64{1, 2})
	b := NewFromSlice(1, 2, []float64{1, 2 + 1e-12})
	if a.Equal(b) {
		t.Fatal("Equal should be exact")
	}
	if !a.AlmostEqual(b, 1e-9) {
		t.Fatal("AlmostEqual(1e-9) should accept 1e-12 difference")
	}
	c := NewFromSlice(2, 1, []float64{1, 2})
	if a.Equal(c) || a.AlmostEqual(c, 1) {
		t.Fatal("shape mismatch must compare unequal")
	}
}

func TestHasNaN(t *testing.T) {
	m := NewFromSlice(1, 3, []float64{1, 2, 3})
	if m.HasNaN() {
		t.Fatal("clean matrix reported NaN")
	}
	m.Data[1] = math.NaN()
	if !m.HasNaN() {
		t.Fatal("NaN not detected")
	}
	m.Data[1] = math.Inf(1)
	if !m.HasNaN() {
		t.Fatal("+Inf not detected")
	}
}

func TestSetRowAndCopyFrom(t *testing.T) {
	m := New(2, 3)
	m.SetRow(0, []float64{1, 2, 3})
	if m.At(0, 2) != 3 {
		t.Fatalf("SetRow failed: %v", m.Row(0))
	}
	n := New(2, 3)
	n.CopyFrom(m)
	if !n.Equal(m) {
		t.Fatal("CopyFrom did not copy")
	}
	bad := New(3, 2)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("CopyFrom shape mismatch did not panic")
			}
		}()
		bad.CopyFrom(m)
	}()
}

func TestFillAndZero(t *testing.T) {
	m := New(2, 2)
	m.Fill(3)
	if m.Sum() != 12 {
		t.Fatalf("Fill(3) sum = %v, want 12", m.Sum())
	}
	m.Zero()
	if m.Sum() != 0 {
		t.Fatal("Zero did not zero")
	}
}

func TestFull(t *testing.T) {
	m := Full(2, 3, 1.5)
	if m.Rows != 2 || m.Cols != 3 || m.Sum() != 9 {
		t.Fatalf("Full(2,3,1.5) wrong: %v", m)
	}
}

func TestRowColVectors(t *testing.T) {
	rv := NewRowVector([]float64{1, 2, 3})
	if rv.Rows != 1 || rv.Cols != 3 {
		t.Fatalf("NewRowVector shape %dx%d", rv.Rows, rv.Cols)
	}
	cv := NewColVector([]float64{1, 2, 3})
	if cv.Rows != 3 || cv.Cols != 1 {
		t.Fatalf("NewColVector shape %dx%d", cv.Rows, cv.Cols)
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := NewFromSlice(1, 2, []float64{1, 2})
	if s := small.String(); s == "" {
		t.Fatal("empty String for small matrix")
	}
	large := New(10, 10)
	if s := large.String(); s != "Matrix(10x10)" {
		t.Fatalf("large String = %q", s)
	}
}

func TestRandInitializersShapesAndRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := RandUniform(rng, 5, 5, -2, 3)
	for _, v := range u.Data {
		if v < -2 || v >= 3 {
			t.Fatalf("RandUniform value %v outside [-2,3)", v)
		}
	}
	n := RandNormal(rng, 50, 50, 1, 0.1)
	if m := n.Mean(); math.Abs(m-1) > 0.05 {
		t.Fatalf("RandNormal mean = %v, want ~1", m)
	}
	x := XavierUniform(rng, 100, 100)
	bound := math.Sqrt(6.0 / 200.0)
	for _, v := range x.Data {
		if math.Abs(v) > bound {
			t.Fatalf("Xavier value %v outside ±%v", v, bound)
		}
	}
	h := HeNormal(rng, 64, 64)
	if h.Rows != 64 || h.Cols != 64 {
		t.Fatal("HeNormal wrong shape")
	}
}
