package tensor

import (
	"fmt"

	"repro/internal/sched"
)

// This file holds the fused dense-layer kernels: matmul + bias (+ optional
// elementwise activation) in one sweep for the forward pass, and all three
// backward products (dW, dB, dx) in a single pass over the gradient rows.
// Fusion removes whole-matrix re-read passes (bias add, activation apply,
// column sums) that the composed kernels pay separately.
//
// Bit-exactness contract: for every output element the fused kernels
// perform the identical floating-point operations in the identical order as
// the composed kernels they replace (MatMulInto + AddRowVectorInPlace +
// ApplyInto forward; MatMulTransAInto + ColSumsInto + MatMulTransBInto
// backward). Loop fusion only interleaves independent element chains, and
// the j tiling below never reorders any single element's k-ascending
// accumulation, so results are bit-identical — the property the core golden
// tests pin.

// denseTileJ is the output-column tile width of the fused forward kernel.
// Tiling keeps the streamed weight-row and output-row segments resident in
// L1 when the output width is large (paper-scale layers), at the cost of
// re-scanning the input row once per tile. Element-wise summation order is
// unaffected: tiling partitions j, never k.
const denseTileJ = 512

// DenseForwardInto computes dst = x·w + bias in one sweep. Shapes:
// x: batch x in, w: in x out, bias: 1 x out, dst: batch x out. dst must not
// alias any input. Large products shard batch rows across sched.Default().
func DenseForwardInto(dst, x, w, bias *Matrix) {
	denseForwardCheck("DenseForwardInto", dst, x, w, bias)
	// The serial fast path avoids even the closure allocation: small-batch
	// training must stay allocation-free (the nn workspace gates).
	pool, grain := denseRowSharding(x.Rows, x.Cols*w.Cols)
	if pool == nil {
		denseForwardRange(dst, nil, x, w, bias, nil, 0, x.Rows)
		return
	}
	pool.ParallelFor(x.Rows, grain, func(lo, hi int) {
		denseForwardRange(dst, nil, x, w, bias, nil, lo, hi)
	})
}

// DenseForwardApplyInto computes the fused forward pass of a dense layer
// followed by an elementwise activation: pre = x·w + bias and
// post = fn(pre), in one sweep per row while the row is cache-hot. pre and
// post must both have shape batch x out, must differ, and must not alias
// the inputs. fn must be pure: large batches shard rows across the pool and
// call it concurrently.
func DenseForwardApplyInto(pre, post, x, w, bias *Matrix, fn func(float64) float64) {
	denseForwardCheck("DenseForwardApplyInto", pre, x, w, bias)
	if post.Rows != pre.Rows || post.Cols != pre.Cols {
		panic(fmt.Sprintf("tensor: DenseForwardApplyInto post shape %dx%d, want %dx%d", post.Rows, post.Cols, pre.Rows, pre.Cols))
	}
	pool, grain := denseRowSharding(x.Rows, x.Cols*w.Cols)
	if pool == nil {
		denseForwardRange(pre, post, x, w, bias, fn, 0, x.Rows)
		return
	}
	pool.ParallelFor(x.Rows, grain, func(lo, hi int) {
		denseForwardRange(pre, post, x, w, bias, fn, lo, hi)
	})
}

func denseForwardCheck(op string, dst, x, w, bias *Matrix) {
	if x.Cols != w.Rows {
		panic(fmt.Sprintf("tensor: %s inner dimension mismatch %dx%d · %dx%d", op, x.Rows, x.Cols, w.Rows, w.Cols))
	}
	if bias.Rows != 1 || bias.Cols != w.Cols {
		panic(fmt.Sprintf("tensor: %s bias shape %dx%d, want 1x%d", op, bias.Rows, bias.Cols, w.Cols))
	}
	if dst.Rows != x.Rows || dst.Cols != w.Cols {
		panic(fmt.Sprintf("tensor: %s dst shape %dx%d, want %dx%d", op, dst.Rows, dst.Cols, x.Rows, w.Cols))
	}
}

// denseRowSharding decides whether a rows-deep dense kernel is worth
// sharding across the shared pool. It returns (nil, 0) for the serial fast
// path, else the pool and the row grain to use.
func denseRowSharding(rows, workPerRow int) (*sched.Pool, int) {
	pool := sched.Default()
	if rows*workPerRow < parallelThreshold || pool.Size() < 2 || rows < 2 {
		return nil, 0
	}
	grain := rows / (4 * pool.Size())
	if grain < 1 {
		grain = 1
	}
	return pool, grain
}

// denseForwardRange computes rows [lo,hi) of pre = x·w + bias and, when fn
// is non-nil, post = fn(pre) for the same rows.
func denseForwardRange(pre, post *Matrix, x, w, bias *Matrix, fn func(float64) float64, lo, hi int) {
	n, p := x.Cols, w.Cols
	bRow := bias.Data[:p]
	for i := lo; i < hi; i++ {
		var postRow []float64
		if fn != nil {
			postRow = post.Data[i*p : (i+1)*p]
		}
		denseForwardRow(pre.Data[i*p:(i+1)*p], postRow, x.Data[i*n:(i+1)*n], w.Data, bRow, p, fn)
	}
}

// denseForwardRow computes one output row outRow = xRow·w + bRow and, when
// fn is non-nil, postRow = fn(outRow). It is the single row-level kernel
// shared by the per-model and fleet-batched dense forward paths, which is
// what makes the two paths bit-identical by construction.
func denseForwardRow(outRow, postRow, xRow, wData, bRow []float64, p int, fn func(float64) float64) {
	n := len(xRow)
	for c := range outRow {
		outRow[c] = 0
	}
	for jt := 0; jt < p; jt += denseTileJ {
		jhi := jt + denseTileJ
		if jhi > p {
			jhi = p
		}
		oTile := outRow[jt:jhi]
		// Two k values per pass, applied as two separate += rounds per
		// element (s = o+a0·w0, then s+a1·w1): identical k-ascending
		// accumulation order to the single-k loop, half the output
		// load/store traffic. The zero-skip mirrors matMulRange.
		k := 0
		for ; k+2 <= n; k += 2 {
			a0, a1 := xRow[k], xRow[k+1]
			if a0 == 0 && a1 == 0 {
				continue
			}
			if a0 == 0 {
				w1 := wData[(k+1)*p+jt : (k+1)*p+jhi]
				for j, wv := range w1 {
					oTile[j] += a1 * wv
				}
				continue
			}
			if a1 == 0 {
				w0 := wData[k*p+jt : k*p+jhi]
				for j, wv := range w0 {
					oTile[j] += a0 * wv
				}
				continue
			}
			w0 := wData[k*p+jt : k*p+jhi]
			w1 := wData[(k+1)*p+jt : (k+1)*p+jhi]
			for j, wv := range w0 {
				s := oTile[j] + a0*wv
				oTile[j] = s + a1*w1[j]
			}
		}
		if k < n {
			if av := xRow[k]; av != 0 {
				wTile := wData[k*p+jt : k*p+jhi]
				for j, wv := range wTile {
					oTile[j] += av * wv
				}
			}
		}
	}
	for j, bv := range bRow {
		outRow[j] += bv
	}
	if fn != nil {
		for j, v := range outRow {
			postRow[j] = fn(v)
		}
	}
}

// DenseBackwardInto computes the full backward pass of a dense layer in a
// single sweep over the gradient rows:
//
//	dw = xᵀ·grad   (overwritten; the caller accumulates into its gradient)
//	db = column sums of grad (overwritten)
//	dx = grad·wᵀ   (overwritten)
//
// Shapes: x: batch x in, w: in x out, grad: batch x out, dw: in x out,
// db: 1 x out, dx: batch x in. Outputs must not alias each other or any
// input. The row-major pass reads each grad row exactly once for all three
// products; per-element accumulation orders match MatMulTransAInto,
// ColSumsInto and MatMulTransBInto exactly, so the results are
// bit-identical to the composed kernels.
func DenseBackwardInto(dw, db, dx, x, w, grad *Matrix) {
	batch, in, out := x.Rows, x.Cols, w.Cols
	if grad.Rows != batch || grad.Cols != out {
		panic(fmt.Sprintf("tensor: DenseBackwardInto grad shape %dx%d, want %dx%d", grad.Rows, grad.Cols, batch, out))
	}
	if w.Rows != in {
		panic(fmt.Sprintf("tensor: DenseBackwardInto weight shape %dx%d, want %dx%d", w.Rows, w.Cols, in, out))
	}
	if dw.Rows != in || dw.Cols != out {
		panic(fmt.Sprintf("tensor: DenseBackwardInto dw shape %dx%d, want %dx%d", dw.Rows, dw.Cols, in, out))
	}
	if db.Rows != 1 || db.Cols != out {
		panic(fmt.Sprintf("tensor: DenseBackwardInto db shape %dx%d, want 1x%d", db.Rows, db.Cols, out))
	}
	if dx.Rows != batch || dx.Cols != in {
		panic(fmt.Sprintf("tensor: DenseBackwardInto dx shape %dx%d, want %dx%d", dx.Rows, dx.Cols, batch, in))
	}
	for i := range dw.Data {
		dw.Data[i] = 0
	}
	dbRow := db.Data[:out]
	for c := range dbRow {
		dbRow[c] = 0
	}
	for r := 0; r < batch; r++ {
		gRow := grad.Data[r*out : (r+1)*out]
		xRow := x.Data[r*in : (r+1)*in]

		// db: identical r-outer, j-inner order to ColSumsInto.
		for j, gv := range gRow {
			dbRow[j] += gv
		}

		// dw: identical r-outer accumulation (with the zero-skip on x
		// values) to MatMulTransAInto.
		for i, xv := range xRow {
			if xv == 0 {
				continue
			}
			dwRow := dw.Data[i*out : i*out+out]
			for j, gv := range gRow {
				dwRow[j] += xv * gv
			}
		}

		// dx: the same k-ascending dot products as MatMulTransBInto, four
		// independent accumulator chains per pass to hide FP add latency.
		dxRow := dx.Data[r*in : (r+1)*in]
		c := 0
		for ; c+4 <= in; c += 4 {
			w0 := w.Data[c*out : c*out+out]
			w1 := w.Data[(c+1)*out : (c+1)*out+out]
			w2 := w.Data[(c+2)*out : (c+2)*out+out]
			w3 := w.Data[(c+3)*out : (c+3)*out+out]
			var s0, s1, s2, s3 float64
			for k, gv := range gRow {
				s0 += gv * w0[k]
				s1 += gv * w1[k]
				s2 += gv * w2[k]
				s3 += gv * w3[k]
			}
			dxRow[c] = s0
			dxRow[c+1] = s1
			dxRow[c+2] = s2
			dxRow[c+3] = s3
		}
		for ; c < in; c++ {
			wRow := w.Data[c*out : c*out+out]
			s := 0.0
			for k, gv := range gRow {
				s += gv * wRow[k]
			}
			dxRow[c] = s
		}
	}
}
