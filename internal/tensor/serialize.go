package tensor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// The binary wire format for a Matrix is:
//
//	uint32 rows | uint32 cols | rows*cols float64 (little-endian IEEE 754)
//
// This is what federated agents broadcast: it is compact, versionless, and
// decodable without reflection. maxWireDim bounds each dimension and
// maxWireElems the element product, guarding decoders against corrupt or
// adversarial headers: a flipped header bit must produce an error, never a
// multi-terabyte allocation attempt.
const (
	maxWireDim   = 1 << 24
	maxWireElems = 1 << 28
)

// WriteTo serializes m to w in the binary wire format.
// It returns the number of bytes written.
func (m *Matrix) WriteTo(w io.Writer) (int64, error) {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(m.Rows))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(m.Cols))
	n, err := w.Write(hdr[:])
	written := int64(n)
	if err != nil {
		return written, err
	}
	buf := make([]byte, 8*len(m.Data))
	for i, v := range m.Data {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	n, err = w.Write(buf)
	written += int64(n)
	return written, err
}

// ReadFrom deserializes a matrix from r, replacing m's contents.
// It returns the number of bytes read.
func (m *Matrix) ReadFrom(r io.Reader) (int64, error) {
	var hdr [8]byte
	n, err := io.ReadFull(r, hdr[:])
	read := int64(n)
	if err != nil {
		return read, err
	}
	rows := int(binary.LittleEndian.Uint32(hdr[0:4]))
	cols := int(binary.LittleEndian.Uint32(hdr[4:8]))
	if rows > maxWireDim || cols > maxWireDim || rows*cols > maxWireElems {
		return read, fmt.Errorf("tensor: wire header claims %dx%d matrix, exceeds limit", rows, cols)
	}
	buf := make([]byte, 8*rows*cols)
	n, err = io.ReadFull(r, buf)
	read += int64(n)
	if err != nil {
		return read, err
	}
	m.Rows, m.Cols = rows, cols
	m.Data = make([]float64, rows*cols)
	for i := range m.Data {
		m.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return read, nil
}

// AppendWire appends m's wire encoding to dst and returns the extended
// slice. It is the allocation-free counterpart of WriteTo for callers that
// reuse one marshal buffer across rounds.
func (m *Matrix) AppendWire(dst []byte) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint32(b[0:4], uint32(m.Rows))
	binary.LittleEndian.PutUint32(b[4:8], uint32(m.Cols))
	dst = append(dst, b[:]...)
	for _, v := range m.Data {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		dst = append(dst, b[:]...)
	}
	return dst
}

// DecodeInto decodes one wire-format matrix from the front of data into m,
// reusing m's backing storage when capacity allows. It returns the number of
// bytes consumed, so callers can walk a concatenated stream. On error m is
// left unchanged.
func (m *Matrix) DecodeInto(data []byte) (int, error) {
	if len(data) < 8 {
		return 0, errors.New("tensor: wire data too short for header")
	}
	rows := int(binary.LittleEndian.Uint32(data[0:4]))
	cols := int(binary.LittleEndian.Uint32(data[4:8]))
	if rows > maxWireDim || cols > maxWireDim {
		return 0, fmt.Errorf("tensor: wire header claims %dx%d matrix, exceeds limit", rows, cols)
	}
	need := 8 + 8*rows*cols
	if len(data) < need {
		return 0, fmt.Errorf("tensor: wire data length %d, want %d for %dx%d", len(data), need, rows, cols)
	}
	m.Rows, m.Cols = rows, cols
	if cap(m.Data) >= rows*cols {
		m.Data = m.Data[:rows*cols]
	} else {
		m.Data = make([]float64, rows*cols)
	}
	for i := range m.Data {
		m.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8+i*8:]))
	}
	return need, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *Matrix) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 8+8*len(m.Data))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(m.Rows))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(m.Cols))
	for i, v := range m.Data {
		binary.LittleEndian.PutUint64(buf[8+i*8:], math.Float64bits(v))
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *Matrix) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return errors.New("tensor: binary data too short for header")
	}
	rows := int(binary.LittleEndian.Uint32(data[0:4]))
	cols := int(binary.LittleEndian.Uint32(data[4:8]))
	if rows > maxWireDim || cols > maxWireDim {
		return fmt.Errorf("tensor: binary header claims %dx%d matrix, exceeds limit", rows, cols)
	}
	want := 8 + 8*rows*cols
	if len(data) != want {
		return fmt.Errorf("tensor: binary data length %d, want %d for %dx%d", len(data), want, rows, cols)
	}
	m.Rows, m.Cols = rows, cols
	m.Data = make([]float64, rows*cols)
	for i := range m.Data {
		m.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8+i*8:]))
	}
	return nil
}

// WireSize returns the number of bytes MarshalBinary would produce.
// The federated-network simulator uses this for byte accounting.
func (m *Matrix) WireSize() int { return 8 + 8*len(m.Data) }
