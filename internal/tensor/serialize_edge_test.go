package tensor

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"
)

// edgeMatrices covers the shapes and values the wire codec must survive:
// empty rows/cols, single elements, and the full non-finite bit space.
func edgeMatrices() []*Matrix {
	specials := New(2, 4)
	specials.Data = []float64{
		math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1),
		math.MaxFloat64, -math.SmallestNonzeroFloat64, 1.5, 0,
	}
	return []*Matrix{
		New(0, 7),
		New(3, 0),
		New(0, 0),
		New(1, 1),
		specials,
	}
}

// TestWireEdgeRoundTrip checks every serialize surface round-trips the
// edge matrices bit-exactly: AppendWire/DecodeInto, MarshalBinary/
// UnmarshalBinary, and WriteTo/ReadFrom.
func TestWireEdgeRoundTrip(t *testing.T) {
	for _, m := range edgeMatrices() {
		wire := m.AppendWire(nil)
		if len(wire) != m.WireSize() {
			t.Fatalf("%dx%d: AppendWire %d bytes, WireSize %d", m.Rows, m.Cols, len(wire), m.WireSize())
		}

		var dec Matrix
		n, err := dec.DecodeInto(wire)
		if err != nil || n != len(wire) {
			t.Fatalf("%dx%d: DecodeInto n=%d err=%v", m.Rows, m.Cols, n, err)
		}
		requireBits(t, m, &dec, "DecodeInto")

		blob, err := m.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var dec2 Matrix
		if err := dec2.UnmarshalBinary(blob); err != nil {
			t.Fatalf("%dx%d: UnmarshalBinary: %v", m.Rows, m.Cols, err)
		}
		requireBits(t, m, &dec2, "UnmarshalBinary")

		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		var dec3 Matrix
		if _, err := dec3.ReadFrom(&buf); err != nil {
			t.Fatalf("%dx%d: ReadFrom: %v", m.Rows, m.Cols, err)
		}
		requireBits(t, m, &dec3, "ReadFrom")
	}
}

func requireBits(t *testing.T, want, got *Matrix, ctx string) {
	t.Helper()
	if want.Rows != got.Rows || want.Cols != got.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", ctx, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if math.Float64bits(want.Data[i]) != math.Float64bits(got.Data[i]) {
			t.Fatalf("%s: elem %d bits %x, want %x", ctx, i,
				math.Float64bits(got.Data[i]), math.Float64bits(want.Data[i]))
		}
	}
}

// TestWireTruncationRejected walks every proper prefix of a wire blob
// through both buffer decoders: each must error (never panic) and leave
// the destination untouched.
func TestWireTruncationRejected(t *testing.T) {
	m := New(3, 5)
	for i := range m.Data {
		m.Data[i] = float64(i) * 1.25
	}
	wire := m.AppendWire(nil)
	for cut := 0; cut < len(wire); cut++ {
		var dec Matrix
		dec.Rows, dec.Cols, dec.Data = 9, 9, []float64{42}
		if _, err := dec.DecodeInto(wire[:cut]); err == nil {
			t.Fatalf("DecodeInto accepted %d/%d bytes", cut, len(wire))
		}
		if dec.Rows != 9 || dec.Cols != 9 || dec.Data[0] != 42 {
			t.Fatalf("DecodeInto mutated dst on %d-byte truncation", cut)
		}
		var dec2 Matrix
		if err := dec2.UnmarshalBinary(wire[:cut]); err == nil {
			t.Fatalf("UnmarshalBinary accepted %d/%d bytes", cut, len(wire))
		}
		var dec3 Matrix
		if _, err := dec3.ReadFrom(bytes.NewReader(wire[:cut])); err == nil {
			t.Fatalf("ReadFrom accepted %d/%d bytes", cut, len(wire))
		}
	}
	// Trailing garbage is fine for DecodeInto (stream decoding) but must be
	// an error for the exact-length UnmarshalBinary.
	if err := new(Matrix).UnmarshalBinary(append(wire, 0)); err == nil {
		t.Fatal("UnmarshalBinary accepted trailing byte")
	}
	if n, err := new(Matrix).DecodeInto(append(wire, 0xAB)); err != nil || n != len(wire) {
		t.Fatalf("DecodeInto on stream: n=%d err=%v", n, err)
	}
}

// TestWireHostileHeaders pins the allocation guards: headers claiming
// oversized dimensions — or dimensions that individually pass the check
// while their product is absurd — must error before any allocation.
func TestWireHostileHeaders(t *testing.T) {
	hdr := func(rows, cols uint32) []byte {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint32(b[0:4], rows)
		binary.LittleEndian.PutUint32(b[4:8], cols)
		return b
	}
	for _, tc := range [][2]uint32{
		{1 << 25, 1},         // single dim too large
		{1, 1 << 25},         // other dim too large
		{1 << 24, 1 << 24},   // dims legal, product = 2^48 elements
		{1 << 20, 1 << 12},   // product just past maxWireElems
		{0xFFFFFFFF, 0xFFFF}, // adversarial extremes
	} {
		data := hdr(tc[0], tc[1])
		if _, err := new(Matrix).ReadFrom(bytes.NewReader(data)); err == nil ||
			!strings.Contains(err.Error(), "exceeds limit") {
			t.Fatalf("ReadFrom %dx%d: err=%v, want limit rejection", tc[0], tc[1], err)
		}
		// The buffer decoders are additionally shielded by the length
		// check; the point here is error-not-panic.
		if _, err := new(Matrix).DecodeInto(data); err == nil {
			t.Fatalf("DecodeInto %dx%d accepted", tc[0], tc[1])
		}
		if err := new(Matrix).UnmarshalBinary(data); err == nil {
			t.Fatalf("UnmarshalBinary %dx%d accepted", tc[0], tc[1])
		}
	}
}

// FuzzMatrixDecodeInto throws arbitrary bytes at the stream decoder: it
// must error or decode — never panic — and anything it accepts must
// re-encode to the exact consumed bytes.
func FuzzMatrixDecodeInto(f *testing.F) {
	f.Add(New(2, 3).AppendWire(nil))
	f.Add(edgeMatrices()[4].AppendWire(nil))
	f.Add([]byte{})
	f.Add(make([]byte, 8))
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Matrix
		n, err := m.DecodeInto(data)
		if err != nil {
			return
		}
		if n < 8 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if back := m.AppendWire(nil); !bytes.Equal(back, data[:n]) {
			t.Fatal("re-encode differs from consumed bytes")
		}
	})
}
