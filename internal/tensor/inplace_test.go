package tensor

import (
	"math/rand"
	"testing"
)

func TestEnsureShape(t *testing.T) {
	// nil input allocates fresh, zeroed storage.
	m := EnsureShape(nil, 2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("EnsureShape(nil) shape %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("fresh EnsureShape matrix not zeroed")
		}
	}
	// Shrinking reuses the backing array (same first-element address).
	m.Data[0] = 42
	base := &m.Data[0]
	got := EnsureShape(m, 1, 2)
	if got != m {
		t.Fatal("EnsureShape did not return the workspace pointer")
	}
	if got.Rows != 1 || got.Cols != 2 || &got.Data[0] != base {
		t.Fatal("EnsureShape shrink reallocated")
	}
	// Growing within capacity also reuses.
	got = EnsureShape(m, 2, 3)
	if &got.Data[0] != base {
		t.Fatal("EnsureShape grow-within-cap reallocated")
	}
	// Growing beyond capacity must reallocate to the new size.
	got = EnsureShape(m, 4, 5)
	if got.Rows != 4 || got.Cols != 5 || len(got.Data) != 20 {
		t.Fatalf("EnsureShape grow shape %dx%d len %d", got.Rows, got.Cols, len(got.Data))
	}
}

func TestReshape(t *testing.T) {
	m := NewFromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	r := m.Reshape(3, 2)
	if r != m || r.Rows != 3 || r.Cols != 2 {
		t.Fatalf("Reshape shape %dx%d", r.Rows, r.Cols)
	}
	if r.At(2, 1) != 6 {
		t.Fatal("Reshape changed element order")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Reshape with different element count accepted")
		}
	}()
	m.Reshape(2, 2)
}

func TestTransposeInto(t *testing.T) {
	a := NewFromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	dst := New(3, 2)
	TransposeInto(dst, a)
	if !dst.Equal(Transpose(a)) {
		t.Fatalf("TransposeInto = %v", dst)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("TransposeInto with wrong dst shape accepted")
		}
	}()
	TransposeInto(New(2, 2), a)
}

func TestScaleAddScalarApplyInto(t *testing.T) {
	a := NewFromSlice(1, 3, []float64{1, -2, 3})
	ScaleInto(a, a, 2) // aliasing allowed
	if !a.Equal(NewFromSlice(1, 3, []float64{2, -4, 6})) {
		t.Fatalf("ScaleInto = %v", a)
	}
	AddScalarInto(a, a, 1)
	if !a.Equal(NewFromSlice(1, 3, []float64{3, -3, 7})) {
		t.Fatalf("AddScalarInto = %v", a)
	}
	ApplyInto(a, a, func(x float64) float64 { return -x })
	if !a.Equal(NewFromSlice(1, 3, []float64{-3, 3, -7})) {
		t.Fatalf("ApplyInto = %v", a)
	}
}

func TestColSumsIntoOverwritesDirtyDst(t *testing.T) {
	m := NewFromSlice(2, 2, []float64{1, 2, 3, 4})
	dst := NewFromSlice(1, 2, []float64{99, 99})
	ColSumsInto(dst, m)
	if !dst.Equal(NewFromSlice(1, 2, []float64{4, 6})) {
		t.Fatalf("ColSumsInto did not zero dst first: %v", dst)
	}
}

func TestArgmaxRowsInto(t *testing.T) {
	m := NewFromSlice(2, 3, []float64{1, 5, 2, 9, 0, 9})
	dst := make([]int, 2)
	got := ArgmaxRowsInto(dst, m)
	if got[0] != 1 || got[1] != 0 { // first on ties
		t.Fatalf("ArgmaxRowsInto = %v, want [1 0]", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ArgmaxRowsInto with wrong dst length accepted")
		}
	}()
	ArgmaxRowsInto(make([]int, 1), m)
}

func TestMatVecInto(t *testing.T) {
	a := NewFromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	dst := []float64{99, 99}
	MatVecInto(dst, a, []float64{1, 0, -1})
	if dst[0] != -2 || dst[1] != -2 {
		t.Fatalf("MatVecInto = %v, want [-2 -2]", dst)
	}
}

// TestTransIntoOverwriteDirtyDst verifies the accumulating transpose kernels
// fully overwrite recycled (dirty) destinations.
func TestTransIntoOverwriteDirtyDst(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := RandNormal(rng, 5, 7, 0, 1)
	b := RandNormal(rng, 5, 6, 0, 1)
	dirty := RandNormal(rng, 7, 6, 0, 1)
	MatMulTransAInto(dirty, a, b)
	if !dirty.AlmostEqual(MatMul(Transpose(a), b), 1e-12) {
		t.Fatal("MatMulTransAInto into dirty dst wrong")
	}
	c := RandNormal(rng, 6, 7, 0, 1)
	dirty2 := RandNormal(rng, 5, 6, 0, 1)
	MatMulTransBInto(dirty2, a, c)
	if !dirty2.AlmostEqual(MatMul(a, Transpose(c)), 1e-12) {
		t.Fatal("MatMulTransBInto into dirty dst wrong")
	}
}

// Shapes below parallelThreshold so MatMulInto takes the serial path; the
// goroutine fan-out above it allocates by design.
func TestInplaceKernelsAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := RandNormal(rng, 16, 24, 0, 1)
	b := RandNormal(rng, 24, 16, 0, 1)
	dst := New(16, 16)
	dstT := New(24, 16)
	cs := New(1, 24)
	amax := make([]int, 16)
	checks := []struct {
		name string
		fn   func()
	}{
		{"MatMulInto", func() { MatMulInto(dst, a, b) }},
		{"MatMulTransAInto", func() { MatMulTransAInto(dstT, a, dst) }},
		{"MatMulTransBInto", func() { MatMulTransBInto(dst, a, a) }},
		{"TransposeInto", func() { TransposeInto(dstT, a) }},
		{"ColSumsInto", func() { ColSumsInto(cs, a) }},
		{"ArgmaxRowsInto", func() { ArgmaxRowsInto(amax, a) }},
		{"EnsureShapeReuse", func() { EnsureShape(dst, 16, 16) }},
	}
	for _, c := range checks {
		if n := testing.AllocsPerRun(20, c.fn); n != 0 {
			t.Errorf("%s allocates %v per run, want 0", c.name, n)
		}
	}
}
