package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// refDenseForward is the composed reference for the fused forward kernel:
// MatMulInto + AddRowVectorInPlace, the exact pipeline DenseForwardInto
// replaces. The fused kernel must match it bit for bit.
func refDenseForward(x, w, bias *Matrix) *Matrix {
	out := MatMul(x, w)
	out.AddRowVectorInPlace(bias)
	return out
}

// sprinkleZeros zeroes a deterministic subset of elements so the zero-skip
// branches of the fused kernels (both-zero, first-zero, second-zero pairs)
// are all exercised.
func sprinkleZeros(rng *rand.Rand, m *Matrix, frac float64) {
	for i := range m.Data {
		if rng.Float64() < frac {
			m.Data[i] = 0
		}
	}
}

func TestDenseForwardIntoBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	shapes := []struct{ b, in, out int }{
		{1, 1, 1},
		{1, 24, 12},            // odd-free small
		{3, 7, 5},              // odd in: pair-unroll scalar tail
		{16, 26, 100},          // forecaster/DQN scale
		{2, 9, denseTileJ + 3}, // spans a j-tile boundary
	}
	for _, s := range shapes {
		x := RandNormal(rng, s.b, s.in, 0, 1)
		sprinkleZeros(rng, x, 0.4)
		w := RandNormal(rng, s.in, s.out, 0, 1)
		bias := RandNormal(rng, 1, s.out, 0, 1)
		want := refDenseForward(x, w, bias)
		got := RandNormal(rng, s.b, s.out, 0, 1) // dirty dst must be overwritten
		DenseForwardInto(got, x, w, bias)
		if !got.Equal(want) {
			t.Errorf("DenseForwardInto %dx%d·%dx%d not bit-identical to composed kernels", s.b, s.in, s.in, s.out)
		}
	}
}

func TestDenseForwardApplyIntoBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	fn := math.Tanh
	x := RandNormal(rng, 5, 13, 0, 1)
	sprinkleZeros(rng, x, 0.3)
	w := RandNormal(rng, 13, 9, 0, 1)
	bias := RandNormal(rng, 1, 9, 0, 1)

	wantPre := refDenseForward(x, w, bias)
	wantPost := New(5, 9)
	ApplyInto(wantPost, wantPre, fn)

	pre, post := New(5, 9), New(5, 9)
	DenseForwardApplyInto(pre, post, x, w, bias, fn)
	if !pre.Equal(wantPre) {
		t.Error("DenseForwardApplyInto pre-activation not bit-identical")
	}
	if !post.Equal(wantPost) {
		t.Error("DenseForwardApplyInto activation not bit-identical")
	}
}

func TestDenseBackwardIntoBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	shapes := []struct{ b, in, out int }{
		{1, 1, 1},
		{4, 7, 5},
		{16, 26, 100},
		{3, 10, 8}, // even rows for the MatMulTransA pair path
	}
	for _, s := range shapes {
		x := RandNormal(rng, s.b, s.in, 0, 1)
		sprinkleZeros(rng, x, 0.4)
		w := RandNormal(rng, s.in, s.out, 0, 1)
		grad := RandNormal(rng, s.b, s.out, 0, 1)

		wantDW := MatMulTransA(x, grad)
		wantDB := New(1, s.out)
		ColSumsInto(wantDB, grad)
		wantDX := MatMulTransB(grad, w)

		dw := RandNormal(rng, s.in, s.out, 0, 1) // dirty outputs must be overwritten
		db := RandNormal(rng, 1, s.out, 0, 1)
		dx := RandNormal(rng, s.b, s.in, 0, 1)
		DenseBackwardInto(dw, db, dx, x, w, grad)
		if !dw.Equal(wantDW) {
			t.Errorf("DenseBackwardInto dw (batch=%d in=%d out=%d) not bit-identical to MatMulTransA", s.b, s.in, s.out)
		}
		if !db.Equal(wantDB) {
			t.Errorf("DenseBackwardInto db (batch=%d) not bit-identical to ColSumsInto", s.b)
		}
		if !dx.Equal(wantDX) {
			t.Errorf("DenseBackwardInto dx (batch=%d) not bit-identical to MatMulTransB", s.b)
		}
	}
}

// TestMatMulUnrollBitExact pins the pair/quad-unrolled transpose kernels and
// the sharded MatMulInto against a straight-line reference with the canonical
// accumulation order (k-ascending, zero-skip) — the order the golden run
// tests depend on.
func TestMatMulUnrollBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, rows := range []int{1, 2, 5, 8} { // odd row counts hit the tail loops
		a := RandNormal(rng, rows, 11, 0, 1)
		sprinkleZeros(rng, a, 0.5)
		b := RandNormal(rng, rows, 6, 0, 1)

		// aᵀ·b reference: r-ascending accumulation with zero-skip on a.
		want := New(11, 6)
		for r := 0; r < rows; r++ {
			for i := 0; i < 11; i++ {
				av := a.At(r, i)
				if av == 0 {
					continue
				}
				for j := 0; j < 6; j++ {
					*wantAt(want, i, j) += av * b.At(r, j)
				}
			}
		}
		got := New(11, 6)
		MatMulTransAInto(got, a, b)
		if !got.Equal(want) {
			t.Errorf("MatMulTransAInto rows=%d not bit-identical to reference order", rows)
		}

		// a·bᵀ reference: plain k-ascending dot products.
		c := RandNormal(rng, 7, 11, 0, 1)
		wantT := New(rows, 7)
		for i := 0; i < rows; i++ {
			for j := 0; j < 7; j++ {
				s := 0.0
				for k := 0; k < 11; k++ {
					s += a.At(i, k) * c.At(j, k)
				}
				*wantAt(wantT, i, j) = s
			}
		}
		gotT := New(rows, 7)
		MatMulTransBInto(gotT, a, c)
		if !gotT.Equal(wantT) {
			t.Errorf("MatMulTransBInto rows=%d not bit-identical to reference order", rows)
		}
	}
}

func wantAt(m *Matrix, i, j int) *float64 { return &m.Data[i*m.Cols+j] }

// The fused kernels are on the zero-allocation training hot path; the serial
// (sub-threshold) branch must not even allocate a closure.
func TestFusedKernelsAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	x := RandNormal(rng, 16, 26, 0, 1)
	w := RandNormal(rng, 26, 100, 0, 1)
	bias := RandNormal(rng, 1, 100, 0, 1)
	grad := RandNormal(rng, 16, 100, 0, 1)
	pre, post := New(16, 100), New(16, 100)
	dw, db, dx := New(26, 100), New(1, 100), New(16, 26)
	fn := math.Tanh
	checks := []struct {
		name string
		fn   func()
	}{
		{"DenseForwardInto", func() { DenseForwardInto(pre, x, w, bias) }},
		{"DenseForwardApplyInto", func() { DenseForwardApplyInto(pre, post, x, w, bias, fn) }},
		{"DenseBackwardInto", func() { DenseBackwardInto(dw, db, dx, x, w, grad) }},
	}
	for _, c := range checks {
		if n := testing.AllocsPerRun(20, c.fn); n != 0 {
			t.Errorf("%s allocates %v per run, want 0", c.name, n)
		}
	}
}
