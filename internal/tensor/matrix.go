// Package tensor provides the dense linear-algebra substrate used by the
// PFDRL neural-network stack. It implements a row-major float64 matrix with
// the usual algebraic operations, goroutine-parallel matrix multiplication
// for larger shapes, and binary serialization so model parameters can be
// broadcast between federated agents.
//
// The package is deliberately self-contained (stdlib only) and favors
// predictable allocation behaviour: every operation has an in-place or
// destination-passing variant so hot training loops can run without
// per-step garbage.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense, row-major matrix of float64 values.
//
// The zero value is an empty 0x0 matrix. Use New, NewFromSlice or the
// random initializers to construct matrices of a given shape.
type Matrix struct {
	Rows, Cols int
	// Data holds the elements in row-major order: element (r,c) lives at
	// Data[r*Cols+c]. Len(Data) == Rows*Cols always holds for a valid matrix.
	Data []float64
}

// New returns a zero-initialized matrix of the given shape.
// It panics if either dimension is negative.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewFromSlice returns a matrix of the given shape backed by a copy of data.
// It panics if len(data) != rows*cols.
func NewFromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %dx%d", len(data), rows, cols))
	}
	m := New(rows, cols)
	copy(m.Data, data)
	return m
}

// NewRowVector returns a 1xN matrix holding a copy of data.
func NewRowVector(data []float64) *Matrix {
	return NewFromSlice(1, len(data), data)
}

// NewColVector returns an Nx1 matrix holding a copy of data.
func NewColVector(data []float64) *Matrix {
	return NewFromSlice(len(data), 1, data)
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Full returns a rows x cols matrix with every element set to v.
func Full(rows, cols int, v float64) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = v
	}
	return m
}

// At returns the element at row r, column c.
func (m *Matrix) At(r, c int) float64 {
	m.boundsCheck(r, c)
	return m.Data[r*m.Cols+c]
}

// Set assigns v to the element at row r, column c.
func (m *Matrix) Set(r, c int, v float64) {
	m.boundsCheck(r, c)
	m.Data[r*m.Cols+c] = v
}

func (m *Matrix) boundsCheck(r, c int) {
	if r < 0 || r >= m.Rows || c < 0 || c >= m.Cols {
		panic(fmt.Sprintf("tensor: index (%d,%d) out of range for %dx%d matrix", r, c, m.Rows, m.Cols))
	}
}

// Shape returns (rows, cols).
func (m *Matrix) Shape() (int, int) { return m.Rows, m.Cols }

// Size returns the number of elements, Rows*Cols.
func (m *Matrix) Size() int { return m.Rows * m.Cols }

// Row returns the r-th row as a slice aliasing the matrix storage.
// Mutating the returned slice mutates the matrix.
func (m *Matrix) Row(r int) []float64 {
	if r < 0 || r >= m.Rows {
		panic(fmt.Sprintf("tensor: row %d out of range for %dx%d matrix", r, m.Rows, m.Cols))
	}
	return m.Data[r*m.Cols : (r+1)*m.Cols]
}

// SetRow copies src into row r. It panics if len(src) != Cols.
func (m *Matrix) SetRow(r int, src []float64) {
	if len(src) != m.Cols {
		panic(fmt.Sprintf("tensor: SetRow length %d != cols %d", len(src), m.Cols))
	}
	copy(m.Row(r), src)
}

// Col returns a copy of the c-th column.
func (m *Matrix) Col(c int) []float64 {
	if c < 0 || c >= m.Cols {
		panic(fmt.Sprintf("tensor: col %d out of range for %dx%d matrix", c, m.Rows, m.Cols))
	}
	out := make([]float64, m.Rows)
	for r := 0; r < m.Rows; r++ {
		out[r] = m.Data[r*m.Cols+c]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	return NewFromSlice(m.Rows, m.Cols, m.Data)
}

// CopyFrom copies the contents of src into m. Shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	copy(m.Data, src.Data)
}

// Zero sets every element of m to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element of m to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Equal reports whether m and n have identical shape and elements.
func (m *Matrix) Equal(n *Matrix) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i, v := range m.Data {
		if v != n.Data[i] {
			return false
		}
	}
	return true
}

// AlmostEqual reports whether m and n have identical shape and all elements
// within tol of each other.
func (m *Matrix) AlmostEqual(n *Matrix, tol float64) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-n.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging; large matrices are summarized.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		if r > 0 {
			s += "; "
		}
		for c := 0; c < m.Cols; c++ {
			if c > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(r, c))
		}
	}
	return s + "]"
}

// HasNaN reports whether any element is NaN or infinite. Federated
// aggregation uses this to reject poisoned or diverged parameter updates.
func (m *Matrix) HasNaN() bool {
	for _, v := range m.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}
