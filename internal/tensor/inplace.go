package tensor

import "fmt"

// This file holds the destination-passing (“*Into”) kernels and the
// buffer-reuse helpers that make the training/inference hot path
// allocation-free. The convention, documented in DESIGN.md (“Memory model &
// buffer ownership”):
//
//   - FooInto(dst, ...) writes the full result into dst and never allocates.
//     dst must already have the result shape (use EnsureShape to recycle a
//     workspace). Unless a kernel says otherwise, dst must not alias any
//     input.
//   - EnsureShape reshapes a workspace matrix in place, reusing its backing
//     array whenever capacity allows; the contents after a reuse are
//     unspecified, so callers must fully overwrite (or Zero) the result.

// EnsureShape returns a rows x cols matrix, reusing m's backing storage when
// it has sufficient capacity. m may be nil, in which case a fresh matrix is
// allocated. When storage is reused the element contents are unspecified;
// callers that read before writing must Zero the result first.
//
// The returned pointer is m itself whenever m is non-nil, so the idiomatic
// workspace pattern is:
//
//	w.buf = tensor.EnsureShape(w.buf, rows, cols)
func EnsureShape(m *Matrix, rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	if m == nil {
		return New(rows, cols)
	}
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	} else {
		m.Data = m.Data[:n]
	}
	m.Rows, m.Cols = rows, cols
	return m
}

// Reshape reinterprets m as a rows x cols matrix over the same backing
// storage. The element count must be unchanged; use EnsureShape when the
// size may change.
func (m *Matrix) Reshape(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 || rows*cols != m.Rows*m.Cols {
		panic(fmt.Sprintf("tensor: cannot reshape %dx%d to %dx%d", m.Rows, m.Cols, rows, cols))
	}
	m.Rows, m.Cols = rows, cols
	return m
}

// TransposeInto computes dst = aᵀ. dst must have shape a.Cols x a.Rows and
// must not alias a.
func TransposeInto(dst, a *Matrix) {
	if dst.Rows != a.Cols || dst.Cols != a.Rows {
		panic(fmt.Sprintf("tensor: TransposeInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Cols, a.Rows))
	}
	for r := 0; r < a.Rows; r++ {
		base := r * a.Cols
		for c := 0; c < a.Cols; c++ {
			dst.Data[c*a.Rows+r] = a.Data[base+c]
		}
	}
}

// ScaleInto computes dst = alpha*a elementwise. dst may alias a.
func ScaleInto(dst, a *Matrix, alpha float64) {
	shapeMatch("ScaleInto", dst, a)
	for i := range dst.Data {
		dst.Data[i] = alpha * a.Data[i]
	}
}

// AddScalarInto computes dst = a + alpha elementwise. dst may alias a.
func AddScalarInto(dst, a *Matrix, alpha float64) {
	shapeMatch("AddScalarInto", dst, a)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + alpha
	}
}

// ApplyInto computes dst = f(a) elementwise. dst may alias a.
func ApplyInto(dst, a *Matrix, f func(float64) float64) {
	shapeMatch("ApplyInto", dst, a)
	for i := range dst.Data {
		dst.Data[i] = f(a.Data[i])
	}
}

// ColSumsInto writes the per-column sums of m into the 1 x m.Cols row
// vector dst.
func ColSumsInto(dst, m *Matrix) {
	if dst.Rows != 1 || dst.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: ColSumsInto dst %dx%d, want 1x%d", dst.Rows, dst.Cols, m.Cols))
	}
	for c := range dst.Data {
		dst.Data[c] = 0
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c, v := range row {
			dst.Data[c] += v
		}
	}
}

// ArgmaxRowsInto writes, for each row of m, the column index of that row's
// maximum (first on ties) into dst, which must have length m.Rows. It
// returns dst.
func ArgmaxRowsInto(dst []int, m *Matrix) []int {
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("tensor: ArgmaxRowsInto dst length %d, want %d", len(dst), m.Rows))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		best, bi := row[0], 0
		for c, v := range row[1:] {
			if v > best {
				best, bi = v, c+1
			}
		}
		dst[r] = bi
	}
	return dst
}

// MatVecInto computes dst = a·x where x is treated as a column vector.
// dst must have length a.Rows and must not alias x.
func MatVecInto(dst []float64, a *Matrix, x []float64) {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("tensor: MatVecInto dimension mismatch %dx%d · %d", a.Rows, a.Cols, len(x)))
	}
	if len(dst) != a.Rows {
		panic(fmt.Sprintf("tensor: MatVecInto dst length %d, want %d", len(dst), a.Rows))
	}
	// Four rows per pass: four independent accumulator chains hide the FP
	// add latency while each row's k-ascending order (and therefore its bit
	// pattern) is unchanged.
	n := a.Cols
	i := 0
	for ; i+4 <= a.Rows; i += 4 {
		r0 := a.Data[i*n : i*n+n]
		r1 := a.Data[(i+1)*n : (i+1)*n+n]
		r2 := a.Data[(i+2)*n : (i+2)*n+n]
		r3 := a.Data[(i+3)*n : (i+3)*n+n]
		var s0, s1, s2, s3 float64
		for k, v := range x {
			s0 += r0[k] * v
			s1 += r1[k] * v
			s2 += r2[k] * v
			s3 += r3[k] * v
		}
		dst[i] = s0
		dst[i+1] = s1
		dst[i+2] = s2
		dst[i+3] = s3
	}
	for ; i < a.Rows; i++ {
		row := a.Data[i*n : i*n+n]
		s := 0.0
		for k, v := range row {
			s += v * x[k]
		}
		dst[i] = s
	}
}
