package tensor

import (
	"fmt"

	"repro/internal/sched"
)

// parallelThreshold is the minimum number of multiply-adds below which
// MatMul stays single-threaded: even pool dispatch costs more than it saves
// on small shapes (the PFDRL MLP layers are 100x100, right at the edge).
const parallelThreshold = 64 * 64 * 64

// MatMul returns the matrix product a·b. It panics unless a.Cols == b.Rows.
//
// The kernel is an ikj loop order (streaming through b row-wise for cache
// friendliness) and shards the rows of a across the persistent sched pool
// when the problem is large enough to amortize the dispatch.
func MatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a·b. dst must have shape a.Rows x b.Cols and
// must not alias a or b.
//
// Large products shard rows of a across sched.Default(). The pool's size is
// snapshotted once at pool creation, so a GOMAXPROCS change mid-run cannot
// skew the sharding. Row chunks write disjoint slices of dst and each
// (i,j) element is accumulated in identical k order regardless of the
// partition, so results are bit-identical to the serial kernel.
func MatMulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulInto dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	work := a.Rows * a.Cols * b.Cols
	pool := sched.Default()
	if work < parallelThreshold || pool.Size() < 2 || a.Rows < 2 {
		matMulRange(dst, a, b, 0, a.Rows)
		return
	}
	// Aim for a few chunks per execution slot so the claim loop can absorb
	// uneven row costs (zero-skip makes sparse rows cheaper).
	grain := a.Rows / (4 * pool.Size())
	if grain < 1 {
		grain = 1
	}
	pool.ParallelFor(a.Rows, grain, func(lo, hi int) {
		matMulRange(dst, a, b, lo, hi)
	})
}

// matMulRange computes rows [lo,hi) of dst = a·b.
func matMulRange(dst, a, b *Matrix, lo, hi int) {
	n, p := a.Cols, b.Cols
	for i := lo; i < hi; i++ {
		outRow := dst.Data[i*p : (i+1)*p]
		for c := range outRow {
			outRow[c] = 0
		}
		aRow := a.Data[i*n : (i+1)*n]
		for k, av := range aRow {
			if av == 0 {
				continue
			}
			bRow := b.Data[k*p : (k+1)*p]
			for j, bv := range bRow {
				outRow[j] += av * bv
			}
		}
	}
}

// MatMulTransB returns a·bᵀ without materializing the transpose.
// It panics unless a.Cols == b.Cols.
func MatMulTransB(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Rows)
	MatMulTransBInto(out, a, b)
	return out
}

// MatMulTransBInto computes dst = a·bᵀ without materializing the transpose.
// dst must have shape a.Rows x b.Rows and must not alias a or b.
func MatMulTransBInto(dst, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransBInto dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	// Each output element is a dot product, a serially-dependent add chain
	// that leaves the FPU latency-bound. Computing four independent dots per
	// pass interleaves four chains (and reuses each aRow load) without
	// touching any single dot's k order, so results stay bit-exact.
	n, m := a.Cols, b.Rows
	for i := 0; i < a.Rows; i++ {
		aRow := a.Data[i*n : (i+1)*n]
		outRow := dst.Data[i*m : (i+1)*m]
		j := 0
		for ; j+4 <= m; j += 4 {
			b0 := b.Data[j*n : j*n+n]
			b1 := b.Data[(j+1)*n : (j+1)*n+n]
			b2 := b.Data[(j+2)*n : (j+2)*n+n]
			b3 := b.Data[(j+3)*n : (j+3)*n+n]
			var s0, s1, s2, s3 float64
			for k, av := range aRow {
				s0 += av * b0[k]
				s1 += av * b1[k]
				s2 += av * b2[k]
				s3 += av * b3[k]
			}
			outRow[j] = s0
			outRow[j+1] = s1
			outRow[j+2] = s2
			outRow[j+3] = s3
		}
		for ; j < m; j++ {
			bRow := b.Data[j*n : j*n+n]
			s := 0.0
			for k, av := range aRow {
				s += av * bRow[k]
			}
			outRow[j] = s
		}
	}
}

// MatMulTransA returns aᵀ·b without materializing the transpose.
// It panics unless a.Rows == b.Rows.
func MatMulTransA(a, b *Matrix) *Matrix {
	out := New(a.Cols, b.Cols)
	MatMulTransAInto(out, a, b)
	return out
}

// MatMulTransAInto computes dst = aᵀ·b without materializing the transpose.
// dst must have shape a.Cols x b.Cols and must not alias a or b. The full
// destination is overwritten.
func MatMulTransAInto(dst, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimension mismatch (%dx%d)ᵀ · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransAInto dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	// Two r values per pass, applied as two separate += rounds per element:
	// identical r-ascending accumulation order (with the zero-skip on a
	// values), half the destination load/store traffic.
	n, p := a.Cols, b.Cols
	r := 0
	for ; r+2 <= a.Rows; r += 2 {
		a0Row := a.Data[r*n : (r+1)*n]
		a1Row := a.Data[(r+1)*n : (r+2)*n]
		b0Row := b.Data[r*p : (r+1)*p]
		b1Row := b.Data[(r+1)*p : (r+2)*p]
		for i, a0 := range a0Row {
			a1 := a1Row[i]
			if a0 == 0 && a1 == 0 {
				continue
			}
			outRow := dst.Data[i*p : i*p+p]
			if a0 == 0 {
				for j, bv := range b1Row {
					outRow[j] += a1 * bv
				}
				continue
			}
			if a1 == 0 {
				for j, bv := range b0Row {
					outRow[j] += a0 * bv
				}
				continue
			}
			for j, bv := range b0Row {
				s := outRow[j] + a0*bv
				outRow[j] = s + a1*b1Row[j]
			}
		}
	}
	for ; r < a.Rows; r++ {
		aRow := a.Data[r*n : (r+1)*n]
		bRow := b.Data[r*p : (r+1)*p]
		for i, av := range aRow {
			if av == 0 {
				continue
			}
			outRow := dst.Data[i*p : i*p+p]
			for j, bv := range bRow {
				outRow[j] += av * bv
			}
		}
	}
}

// MatVec returns the matrix-vector product a·x where x is treated as a
// column vector. It panics unless a.Cols == len(x).
func MatVec(a *Matrix, x []float64) []float64 {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("tensor: MatVec dimension mismatch %dx%d · %d", a.Rows, a.Cols, len(x)))
	}
	out := make([]float64, a.Rows)
	MatVecInto(out, a, x)
	return out
}
