package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the minimum number of multiply-adds below which
// MatMul stays single-threaded: goroutine fan-out costs more than it saves
// on small shapes (the PFDRL MLP layers are 100x100, right at the edge).
const parallelThreshold = 64 * 64 * 64

// MatMul returns the matrix product a·b. It panics unless a.Cols == b.Rows.
//
// The kernel is an ikj loop order (streaming through b row-wise for cache
// friendliness) and shards the rows of a across GOMAXPROCS goroutines when
// the problem is large enough to amortize the fan-out.
func MatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a·b. dst must have shape a.Rows x b.Cols and
// must not alias a or b.
func MatMulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulInto dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	work := a.Rows * a.Cols * b.Cols
	workers := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || workers < 2 || a.Rows < 2 {
		matMulRange(dst, a, b, 0, a.Rows)
		return
	}
	if workers > a.Rows {
		workers = a.Rows
	}
	var wg sync.WaitGroup
	chunk := (a.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > a.Rows {
			hi = a.Rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulRange(dst, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// matMulRange computes rows [lo,hi) of dst = a·b.
func matMulRange(dst, a, b *Matrix, lo, hi int) {
	n, p := a.Cols, b.Cols
	for i := lo; i < hi; i++ {
		outRow := dst.Data[i*p : (i+1)*p]
		for c := range outRow {
			outRow[c] = 0
		}
		aRow := a.Data[i*n : (i+1)*n]
		for k, av := range aRow {
			if av == 0 {
				continue
			}
			bRow := b.Data[k*p : (k+1)*p]
			for j, bv := range bRow {
				outRow[j] += av * bv
			}
		}
	}
}

// MatMulTransB returns a·bᵀ without materializing the transpose.
// It panics unless a.Cols == b.Cols.
func MatMulTransB(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Rows)
	MatMulTransBInto(out, a, b)
	return out
}

// MatMulTransBInto computes dst = a·bᵀ without materializing the transpose.
// dst must have shape a.Rows x b.Rows and must not alias a or b.
func MatMulTransBInto(dst, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransBInto dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	for i := 0; i < a.Rows; i++ {
		aRow := a.Row(i)
		outRow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			bRow := b.Row(j)
			s := 0.0
			for k, av := range aRow {
				s += av * bRow[k]
			}
			outRow[j] = s
		}
	}
}

// MatMulTransA returns aᵀ·b without materializing the transpose.
// It panics unless a.Rows == b.Rows.
func MatMulTransA(a, b *Matrix) *Matrix {
	out := New(a.Cols, b.Cols)
	MatMulTransAInto(out, a, b)
	return out
}

// MatMulTransAInto computes dst = aᵀ·b without materializing the transpose.
// dst must have shape a.Cols x b.Cols and must not alias a or b. The full
// destination is overwritten.
func MatMulTransAInto(dst, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimension mismatch (%dx%d)ᵀ · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransAInto dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for r := 0; r < a.Rows; r++ {
		aRow := a.Row(r)
		bRow := b.Row(r)
		for i, av := range aRow {
			if av == 0 {
				continue
			}
			outRow := dst.Row(i)
			for j, bv := range bRow {
				outRow[j] += av * bv
			}
		}
	}
}

// MatVec returns the matrix-vector product a·x where x is treated as a
// column vector. It panics unless a.Cols == len(x).
func MatVec(a *Matrix, x []float64) []float64 {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("tensor: MatVec dimension mismatch %dx%d · %d", a.Rows, a.Cols, len(x)))
	}
	out := make([]float64, a.Rows)
	MatVecInto(out, a, x)
	return out
}
