package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddSubHadamard(t *testing.T) {
	a := NewFromSlice(2, 2, []float64{1, 2, 3, 4})
	b := NewFromSlice(2, 2, []float64{5, 6, 7, 8})
	if got := Add(a, b); !got.Equal(NewFromSlice(2, 2, []float64{6, 8, 10, 12})) {
		t.Fatalf("Add wrong: %v", got)
	}
	if got := Sub(b, a); !got.Equal(NewFromSlice(2, 2, []float64{4, 4, 4, 4})) {
		t.Fatalf("Sub wrong: %v", got)
	}
	if got := Hadamard(a, b); !got.Equal(NewFromSlice(2, 2, []float64{5, 12, 21, 32})) {
		t.Fatalf("Hadamard wrong: %v", got)
	}
}

func TestIntoVariantsAlias(t *testing.T) {
	a := NewFromSlice(1, 3, []float64{1, 2, 3})
	b := NewFromSlice(1, 3, []float64{10, 20, 30})
	AddInto(a, a, b) // a += b, aliasing dst and a
	if !a.Equal(NewFromSlice(1, 3, []float64{11, 22, 33})) {
		t.Fatalf("AddInto aliased wrong: %v", a)
	}
	SubInto(a, a, b)
	if !a.Equal(NewFromSlice(1, 3, []float64{1, 2, 3})) {
		t.Fatalf("SubInto aliased wrong: %v", a)
	}
	HadamardInto(a, a, b)
	if !a.Equal(NewFromSlice(1, 3, []float64{10, 40, 90})) {
		t.Fatalf("HadamardInto aliased wrong: %v", a)
	}
}

func TestScaleAndAddScaled(t *testing.T) {
	a := NewFromSlice(1, 2, []float64{2, 4})
	if got := Scale(a, 0.5); !got.Equal(NewFromSlice(1, 2, []float64{1, 2})) {
		t.Fatalf("Scale wrong: %v", got)
	}
	a.AddScaled(NewFromSlice(1, 2, []float64{1, 1}), 3)
	if !a.Equal(NewFromSlice(1, 2, []float64{5, 7})) {
		t.Fatalf("AddScaled wrong: %v", a)
	}
	a.ScaleInPlace(2)
	if !a.Equal(NewFromSlice(1, 2, []float64{10, 14})) {
		t.Fatalf("ScaleInPlace wrong: %v", a)
	}
}

func TestApplyAndAddScalar(t *testing.T) {
	a := NewFromSlice(1, 3, []float64{-1, 0, 2})
	relu := Apply(a, func(x float64) float64 { return math.Max(0, x) })
	if !relu.Equal(NewFromSlice(1, 3, []float64{0, 0, 2})) {
		t.Fatalf("Apply relu wrong: %v", relu)
	}
	if got := AddScalar(a, 1); !got.Equal(NewFromSlice(1, 3, []float64{0, 1, 3})) {
		t.Fatalf("AddScalar wrong: %v", got)
	}
	a.ApplyInPlace(func(x float64) float64 { return x * x })
	if !a.Equal(NewFromSlice(1, 3, []float64{1, 0, 4})) {
		t.Fatalf("ApplyInPlace wrong: %v", a)
	}
}

func TestTranspose(t *testing.T) {
	a := NewFromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	at := Transpose(a)
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("Transpose shape %dx%d", at.Rows, at.Cols)
	}
	for r := 0; r < 2; r++ {
		for c := 0; c < 3; c++ {
			if a.At(r, c) != at.At(c, r) {
				t.Fatalf("transpose mismatch at (%d,%d)", r, c)
			}
		}
	}
}

func TestReductions(t *testing.T) {
	a := NewFromSlice(2, 2, []float64{4, -1, 3, 2})
	if a.Sum() != 8 {
		t.Fatalf("Sum = %v", a.Sum())
	}
	if a.Mean() != 2 {
		t.Fatalf("Mean = %v", a.Mean())
	}
	if a.Max() != 4 || a.Min() != -1 {
		t.Fatalf("Max/Min = %v/%v", a.Max(), a.Min())
	}
	if a.ArgMax() != 0 {
		t.Fatalf("ArgMax = %d", a.ArgMax())
	}
	if got := a.Norm2(); math.Abs(got-math.Sqrt(30)) > 1e-12 {
		t.Fatalf("Norm2 = %v", got)
	}
	empty := New(0, 0)
	if empty.Mean() != 0 {
		t.Fatal("Mean of empty should be 0")
	}
}

func TestRowArgMax(t *testing.T) {
	a := NewFromSlice(2, 3, []float64{1, 5, 2, 9, 0, 9})
	got := a.RowArgMax()
	if got[0] != 1 || got[1] != 0 { // first on ties
		t.Fatalf("RowArgMax = %v, want [1 0]", got)
	}
}

func TestDot(t *testing.T) {
	a := NewFromSlice(1, 3, []float64{1, 2, 3})
	b := NewFromSlice(1, 3, []float64{4, 5, 6})
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestClipInPlace(t *testing.T) {
	a := NewFromSlice(1, 4, []float64{-5, -0.5, 0.5, 5})
	a.ClipInPlace(1)
	if !a.Equal(NewFromSlice(1, 4, []float64{-1, -0.5, 0.5, 1})) {
		t.Fatalf("ClipInPlace wrong: %v", a)
	}
	b := NewFromSlice(1, 1, []float64{100})
	b.ClipInPlace(0) // no-op
	if b.Data[0] != 100 {
		t.Fatal("ClipInPlace(0) should be a no-op")
	}
}

func TestAddRowVectorAndColSums(t *testing.T) {
	m := NewFromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	m.AddRowVectorInPlace(NewRowVector([]float64{10, 20, 30}))
	if !m.Equal(NewFromSlice(2, 3, []float64{11, 22, 33, 14, 25, 36})) {
		t.Fatalf("AddRowVectorInPlace wrong: %v", m)
	}
	cs := m.ColSums()
	if !cs.Equal(NewRowVector([]float64{25, 47, 69})) {
		t.Fatalf("ColSums wrong: %v", cs)
	}
}

func TestConcatAndSlices(t *testing.T) {
	a := NewFromSlice(2, 2, []float64{1, 2, 3, 4})
	b := NewFromSlice(2, 1, []float64{5, 6})
	cat := Concat(a, b)
	if !cat.Equal(NewFromSlice(2, 3, []float64{1, 2, 5, 3, 4, 6})) {
		t.Fatalf("Concat wrong: %v", cat)
	}
	if got := cat.SliceCols(0, 2); !got.Equal(a) {
		t.Fatalf("SliceCols wrong: %v", got)
	}
	if got := cat.SliceRows(1, 2); !got.Equal(NewFromSlice(1, 3, []float64{3, 4, 6})) {
		t.Fatalf("SliceRows wrong: %v", got)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := NewFromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewFromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := MatMul(a, b)
	want := NewFromSlice(2, 2, []float64{58, 64, 139, 154})
	if !got.Equal(want) {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandNormal(rng, 7, 7, 0, 1)
	if got := MatMul(a, Identity(7)); !got.AlmostEqual(a, 1e-12) {
		t.Fatal("A·I != A")
	}
	if got := MatMul(Identity(7), a); !got.AlmostEqual(a, 1e-12) {
		t.Fatal("I·A != A")
	}
}

func TestMatMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul with mismatched inner dims did not panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

// TestMatMulParallelMatchesSerial forces shapes above the parallel threshold
// and verifies against the simple range kernel.
func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := RandNormal(rng, 70, 80, 0, 1)
	b := RandNormal(rng, 80, 90, 0, 1)
	par := MatMul(a, b)
	ser := New(70, 90)
	matMulRange(ser, a, b, 0, 70)
	if !par.AlmostEqual(ser, 1e-9) {
		t.Fatal("parallel MatMul disagrees with serial kernel")
	}
}

func TestMatMulTransVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := RandNormal(rng, 5, 7, 0, 1)
	b := RandNormal(rng, 6, 7, 0, 1)
	if got := MatMulTransB(a, b); !got.AlmostEqual(MatMul(a, Transpose(b)), 1e-12) {
		t.Fatal("MatMulTransB != A·Bᵀ")
	}
	c := RandNormal(rng, 5, 6, 0, 1)
	if got := MatMulTransA(a, c); !got.AlmostEqual(MatMul(Transpose(a), c), 1e-12) {
		t.Fatal("MatMulTransA != Aᵀ·C")
	}
}

func TestMatVec(t *testing.T) {
	a := NewFromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got := MatVec(a, []float64{1, 0, -1})
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MatVec = %v, want [-2 -2]", got)
	}
}

// --- property-based tests ---

// randMatrix builds a small random matrix from quick-generated content.
func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	return RandNormal(rng, rows, cols, 0, 1)
}

func TestPropAddCommutative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randMatrix(rng, 4, 5)
		b := randMatrix(rng, 4, 5)
		return Add(a, b).AlmostEqual(Add(b, a), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropMatMulDistributesOverAdd(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randMatrix(rng, 3, 4)
		b := randMatrix(rng, 4, 5)
		c := randMatrix(rng, 4, 5)
		lhs := MatMul(a, Add(b, c))
		rhs := Add(MatMul(a, b), MatMul(a, c))
		return lhs.AlmostEqual(rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropMatMulAssociative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randMatrix(rng, 3, 4)
		b := randMatrix(rng, 4, 5)
		c := randMatrix(rng, 5, 2)
		lhs := MatMul(MatMul(a, b), c)
		rhs := MatMul(a, MatMul(b, c))
		return lhs.AlmostEqual(rhs, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randMatrix(rng, 4, 6)
		return Transpose(Transpose(a)).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropSerializationRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randMatrix(rng, 1+int(rng.Int31n(6)), 1+int(rng.Int31n(6)))
		blob, err := a.MarshalBinary()
		if err != nil {
			return false
		}
		if len(blob) != a.WireSize() {
			return false
		}
		var b Matrix
		if err := b.UnmarshalBinary(blob); err != nil {
			return false
		}
		return a.Equal(&b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulIntoDstShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong dst shape accepted")
		}
	}()
	MatMulInto(New(2, 2), New(2, 3), New(3, 3))
}

func TestMatMulSingleRowStaysSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := RandNormal(rng, 1, 300, 0, 1)
	b := RandNormal(rng, 300, 300, 0, 1)
	got := MatMul(a, b) // large work but 1 row: serial path
	want := New(1, 300)
	matMulRange(want, a, b, 0, 1)
	if !got.AlmostEqual(want, 1e-9) {
		t.Fatal("single-row matmul wrong")
	}
}

func TestMatMulMoreWorkersThanRows(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	// 2 rows, big inner dims: parallel path with workers clamped to rows.
	a := RandNormal(rng, 2, 400, 0, 1)
	b := RandNormal(rng, 400, 400, 0, 1)
	got := MatMul(a, b)
	want := New(2, 400)
	matMulRange(want, a, b, 0, 2)
	if !got.AlmostEqual(want, 1e-9) {
		t.Fatal("clamped-worker matmul wrong")
	}
}

func TestMatMulTransPanics(t *testing.T) {
	for _, f := range []func(){
		func() { MatMulTransB(New(2, 3), New(2, 4)) },
		func() { MatMulTransA(New(2, 3), New(3, 4)) },
		func() { MatVec(New(2, 3), []float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("dimension mismatch accepted")
				}
			}()
			f()
		}()
	}
}

func TestEmptyReductionPanics(t *testing.T) {
	empty := New(0, 0)
	for _, f := range []func(){
		func() { empty.Max() },
		func() { empty.Min() },
		func() { empty.ArgMax() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("empty reduction accepted")
				}
			}()
			f()
		}()
	}
}

func TestRowSetRowColPanics(t *testing.T) {
	m := New(2, 2)
	for _, f := range []func(){
		func() { m.Row(5) },
		func() { m.SetRow(0, []float64{1}) },
		func() { m.Col(9) },
		func() { m.AddRowVectorInPlace(New(2, 2)) },
		func() { m.SliceCols(1, 9) },
		func() { m.SliceRows(-1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
