package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func fillRand(data []float64, rng *rand.Rand) {
	for i := range data {
		data[i] = rng.NormFloat64()
	}
}

// seedBatch fills a batch with per-item pseudo-random values, sprinkling
// exact zeros (to exercise the zero-skip paths) and, when hostile is set,
// NaN and ±Inf values (the zero-skip interacts with non-finite values:
// skipping 0·Inf differs from computing it, so batched and per-item paths
// must make the identical skip decisions).
func seedBatch(b *Batched, rng *rand.Rand, hostile bool) {
	fillRand(b.Data, rng)
	for i := range b.Data {
		switch rng.Intn(8) {
		case 0:
			b.Data[i] = 0
		case 1:
			if hostile {
				switch rng.Intn(3) {
				case 0:
					b.Data[i] = math.NaN()
				case 1:
					b.Data[i] = math.Inf(1)
				default:
					b.Data[i] = math.Inf(-1)
				}
			}
		}
	}
}

// bitsEqual compares element-wise at the bit level so NaN payloads and
// signed zeros count too.
func bitsEqual(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: element %d got %v (bits %#x) want %v (bits %#x)",
				label, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

var fleetSizes = []int{1, 3, 8}

// TestBatchedMatMulMatchesPerItem pins BatchedMatMulInto against N separate
// MatMulInto calls, bit-exact, including hostile inputs.
func TestBatchedMatMulMatchesPerItem(t *testing.T) {
	for _, n := range fleetSizes {
		for _, hostile := range []bool{false, true} {
			rng := rand.New(rand.NewSource(int64(41*n + 7)))
			a := NewBatched(n, 5, 9)
			b := NewBatched(n, 9, 4)
			seedBatch(a, rng, hostile)
			seedBatch(b, rng, hostile)
			dst := NewBatched(n, 5, 4)
			BatchedMatMulInto(dst, a, b)
			for i := 0; i < n; i++ {
				want := New(5, 4)
				MatMulInto(want, a.Item(i), b.Item(i))
				bitsEqual(t, "matmul", dst.Item(i).Data, want.Data)
			}
		}
	}
}

// TestBatchedDenseForwardMatchesPerItem pins the fleet dense forward (plain
// and fused-activation forms) against DenseForwardInto/DenseForwardApplyInto
// per item, across fleet sizes and hostile inputs.
func TestBatchedDenseForwardMatchesPerItem(t *testing.T) {
	act := func(v float64) float64 { return 1 / (1 + math.Exp(-v)) }
	for _, n := range fleetSizes {
		for _, hostile := range []bool{false, true} {
			rng := rand.New(rand.NewSource(int64(97*n + 3)))
			const batch, in, out = 6, 15, 48
			x := NewBatched(n, batch, in)
			w := NewBatched(n, in, out)
			bias := NewBatched(n, 1, out)
			seedBatch(x, rng, hostile)
			seedBatch(w, rng, hostile)
			seedBatch(bias, rng, hostile)

			dst := NewBatched(n, batch, out)
			BatchedDenseForwardInto(dst, x, w, bias)
			pre := NewBatched(n, batch, out)
			post := NewBatched(n, batch, out)
			BatchedDenseForwardApplyInto(pre, post, x, w, bias, act)

			for i := 0; i < n; i++ {
				want := New(batch, out)
				DenseForwardInto(want, x.Item(i), w.Item(i), bias.Item(i))
				bitsEqual(t, "dense fwd", dst.Item(i).Data, want.Data)

				wantPre, wantPost := New(batch, out), New(batch, out)
				DenseForwardApplyInto(wantPre, wantPost, x.Item(i), w.Item(i), bias.Item(i), act)
				bitsEqual(t, "dense fwd pre", pre.Item(i).Data, wantPre.Data)
				bitsEqual(t, "dense fwd post", post.Item(i).Data, wantPost.Data)
			}
		}
	}
}

// TestBatchedDenseBackwardMatchesPerItem pins the fleet dense backward
// against DenseBackwardInto per item.
func TestBatchedDenseBackwardMatchesPerItem(t *testing.T) {
	for _, n := range fleetSizes {
		for _, hostile := range []bool{false, true} {
			rng := rand.New(rand.NewSource(int64(13*n + 29)))
			const batch, in, out = 7, 10, 12
			x := NewBatched(n, batch, in)
			w := NewBatched(n, in, out)
			grad := NewBatched(n, batch, out)
			seedBatch(x, rng, hostile)
			seedBatch(w, rng, hostile)
			seedBatch(grad, rng, hostile)

			dw := NewBatched(n, in, out)
			db := NewBatched(n, 1, out)
			dx := NewBatched(n, batch, in)
			BatchedDenseBackwardInto(dw, db, dx, x, w, grad)

			for i := 0; i < n; i++ {
				wdw, wdb, wdx := New(in, out), New(1, out), New(batch, in)
				DenseBackwardInto(wdw, wdb, wdx, x.Item(i), w.Item(i), grad.Item(i))
				bitsEqual(t, "dw", dw.Item(i).Data, wdw.Data)
				bitsEqual(t, "db", db.Item(i).Data, wdb.Data)
				bitsEqual(t, "dx", dx.Item(i).Data, wdx.Data)
			}
		}
	}
}

// TestBatchedItemViewsAlias checks Item returns writable aliasing views
// with stable pointers, and that EnsureBatched rebuilds them on reshape.
func TestBatchedItemViewsAlias(t *testing.T) {
	b := NewBatched(3, 2, 2)
	v := b.Item(1)
	v.Data[0] = 42
	if b.Data[1*4+0] != 42 {
		t.Fatal("Item view does not alias the slab")
	}
	if b.Item(1) != v {
		t.Fatal("Item pointer not stable between calls")
	}
	b2 := EnsureBatched(b, 2, 3, 3)
	if b2 != b {
		t.Fatal("EnsureBatched should reuse the receiver")
	}
	if len(b.Data) != 2*3*3 {
		t.Fatalf("EnsureBatched len = %d, want 18", len(b.Data))
	}
	v2 := b.Item(1)
	if v2.Rows != 3 || v2.Cols != 3 {
		t.Fatalf("post-reshape view shape %dx%d, want 3x3", v2.Rows, v2.Cols)
	}
	if EnsureBatched(nil, 1, 2, 2) == nil {
		t.Fatal("EnsureBatched(nil, ...) should allocate")
	}
}

// TestBatchedApplyInto checks the elementwise helper covers the whole slab
// and supports in-place application.
func TestBatchedApplyInto(t *testing.T) {
	a := NewBatched(2, 2, 3)
	for i := range a.Data {
		a.Data[i] = float64(i)
	}
	dst := NewBatched(2, 2, 3)
	BatchedApplyInto(dst, a, func(v float64) float64 { return 2 * v })
	for i := range dst.Data {
		if dst.Data[i] != 2*float64(i) {
			t.Fatalf("element %d = %v, want %v", i, dst.Data[i], 2*float64(i))
		}
	}
	BatchedApplyInto(a, a, func(v float64) float64 { return v + 1 })
	if a.Data[5] != 6 {
		t.Fatalf("in-place apply got %v, want 6", a.Data[5])
	}
	a.Zero()
	for i := range a.Data {
		if a.Data[i] != 0 {
			t.Fatal("Zero left nonzero element")
		}
	}
}
