package sched

import (
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// poolTel holds the pool's instrument handles, bound once by Instrument.
// Holding them behind one atomic pointer keeps the uninstrumented
// ParallelFor path at a single pointer load.
type poolTel struct {
	sink    *telemetry.Sink
	waves   *telemetry.Counter
	chunks  *telemetry.Counter
	steals  *telemetry.Counter
	inline  *telemetry.Counter
	queue   *telemetry.Gauge
	waveDur *telemetry.Histogram
}

// Instrument binds the pool to a telemetry sink. Subsequent ParallelFor
// calls count waves, chunks, and steals (chunks executed by a helper worker
// rather than the calling goroutine), export the job-queue depth, and
// record one span per multi-chunk wave. A nil sink detaches.
func (p *Pool) Instrument(sink *telemetry.Sink) {
	if p == nil {
		return
	}
	if sink == nil {
		p.tel.Store(nil)
		return
	}
	p.tel.Store(&poolTel{
		sink:    sink,
		waves:   sink.Counter("pfdrl_sched_waves_total", "parallel waves dispatched by the worker pool"),
		chunks:  sink.Counter("pfdrl_sched_chunks_total", "work chunks executed across all waves"),
		steals:  sink.Counter("pfdrl_sched_steals_total", "chunks executed by a helper worker instead of the calling goroutine"),
		inline:  sink.Counter("pfdrl_sched_inline_total", "ParallelFor calls that ran serially on the caller"),
		queue:   sink.Gauge("pfdrl_sched_queue_depth", "buffered jobs waiting in the pool queue at last wave start"),
		waveDur: sink.Histogram("pfdrl_sched_wave_seconds", "wall-clock duration of parallel waves", telemetry.DurationBuckets()),
	})
}

// parallelForTel is the instrumented twin of ParallelFor's parallel branch.
// It mirrors the claim-loop scheduling exactly — same cursor/completion
// protocol, same non-blocking helper offers — and layers counters and a
// wave span on top. Kept separate so the uninstrumented path pays only the
// atomic tel load.
func (p *Pool) parallelForTel(tel *poolTel, n, grain, chunks int, fn func(lo, hi int)) {
	tel.waves.Inc()
	tel.chunks.Add(int64(chunks))
	tel.queue.Set(float64(len(p.jobs)))
	start := time.Now()

	var cursor, completed atomic.Int64
	done := make(chan struct{})
	claim := func(helper bool) {
		for {
			c := cursor.Add(1) - 1
			if c >= int64(chunks) {
				return
			}
			if helper {
				tel.steals.Inc()
			}
			lo := int(c) * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
			if completed.Add(1) == int64(chunks) {
				close(done)
			}
		}
	}
	helperRun := func() { claim(true) }

	helpers := p.size - 1
	if helpers > chunks-1 {
		helpers = chunks - 1
	}
offer:
	for i := 0; i < helpers; i++ {
		select {
		case p.jobs <- helperRun:
		default:
			break offer
		}
	}
	claim(false)
	<-done

	dur := time.Since(start)
	tel.waveDur.Observe(dur.Seconds())
	tel.sink.Record(telemetry.Span{
		Name:      "sched.wave",
		Start:     start,
		Dur:       dur,
		SimMinute: -1,
		N:         int64(chunks),
	})
}
