package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestParallelForCoversRangeExactlyOnce checks that every index in [0,n) is
// visited exactly once across a spread of range sizes and grains, including
// the inline fast paths (n==0, single chunk) and ragged final chunks.
func TestParallelForCoversRangeExactlyOnce(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, tc := range []struct{ n, grain int }{
		{0, 1}, {1, 1}, {1, 8}, {7, 1}, {7, 3}, {8, 8}, {9, 8},
		{100, 1}, {100, 7}, {1000, 64}, {1000, 1000}, {5, 0}, {5, -3},
	} {
		counts := make([]int32, tc.n)
		p.ParallelFor(tc.n, tc.grain, func(lo, hi int) {
			if lo < 0 || hi > tc.n || lo >= hi {
				t.Errorf("n=%d grain=%d: bad chunk [%d,%d)", tc.n, tc.grain, lo, hi)
				return
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d grain=%d: index %d visited %d times", tc.n, tc.grain, i, c)
			}
		}
	}
}

// TestParallelForMatchesSerial checks that a reduction computed through the
// pool (with disjoint per-chunk outputs) is bit-identical to the serial
// loop, the determinism contract the tensor kernels rely on.
func TestParallelForMatchesSerial(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	const n = 4096
	want := make([]float64, n)
	for i := range want {
		want[i] = float64(i)*1.25 + 0.5
	}
	got := make([]float64, n)
	p.ParallelFor(n, 37, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			got[i] = float64(i)*1.25 + 0.5
		}
	})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("index %d: got %v want %v", i, got[i], want[i])
		}
	}
}

// TestParallelForNested checks that ParallelFor called from inside a
// ParallelFor chunk completes (caller participation makes nesting
// deadlock-free even when every worker is busy).
func TestParallelForNested(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var total atomic.Int64
	p.ParallelFor(8, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p.ParallelFor(16, 1, func(ilo, ihi int) {
				total.Add(int64(ihi - ilo))
			})
		}
	})
	if got := total.Load(); got != 8*16 {
		t.Fatalf("nested ParallelFor covered %d indices, want %d", got, 8*16)
	}
}

// TestPoolSizeSnapshot checks the satellite requirement: the pool's shard
// count is fixed at construction and immune to later GOMAXPROCS changes.
func TestPoolSizeSnapshot(t *testing.T) {
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)

	runtime.GOMAXPROCS(2)
	p := NewPool(runtime.GOMAXPROCS(0))
	defer p.Close()
	if p.Size() != 2 {
		t.Fatalf("pool size = %d, want 2", p.Size())
	}
	runtime.GOMAXPROCS(1)
	if p.Size() != 2 {
		t.Fatalf("pool size changed to %d after GOMAXPROCS change, want snapshot 2", p.Size())
	}
}

// TestPoolSizeFloor checks NewPool clamps to at least one slot.
func TestPoolSizeFloor(t *testing.T) {
	p := NewPool(-3)
	defer p.Close()
	if p.Size() != 1 {
		t.Fatalf("NewPool(-3).Size() = %d, want 1", p.Size())
	}
	ran := false
	p.ParallelFor(10, 2, func(lo, hi int) {
		if lo == 0 && hi == 10 {
			ran = true
		}
	})
	if !ran {
		t.Fatal("size-1 pool should run the whole range inline as one chunk")
	}
}

// TestNilPoolRunsInline checks the nil receiver degrades to serial.
func TestNilPoolRunsInline(t *testing.T) {
	var p *Pool
	if p.Size() != 1 {
		t.Fatalf("nil pool Size() = %d, want 1", p.Size())
	}
	sum := 0
	p.ParallelFor(5, 2, func(lo, hi int) { sum += hi - lo })
	if sum != 5 {
		t.Fatalf("nil pool covered %d indices, want 5", sum)
	}
}

// TestClosedPoolRunsInline checks ParallelFor on a closed pool neither
// panics nor loses work.
func TestClosedPoolRunsInline(t *testing.T) {
	p := NewPool(4)
	p.Close()
	p.Close() // idempotent
	var sum atomic.Int64
	p.ParallelFor(100, 3, func(lo, hi int) { sum.Add(int64(hi - lo)) })
	if sum.Load() != 100 {
		t.Fatalf("closed pool covered %d indices, want 100", sum.Load())
	}
}

// TestDefaultPoolSingleton checks Default returns a stable pool and that
// SetDefaultSize swaps it.
func TestDefaultPoolSingleton(t *testing.T) {
	a, b := Default(), Default()
	if a != b {
		t.Fatal("Default() returned distinct pools")
	}
	SetDefaultSize(3)
	c := Default()
	if c == a {
		t.Fatal("SetDefaultSize did not replace the default pool")
	}
	if c.Size() != 3 {
		t.Fatalf("default pool size = %d after SetDefaultSize(3)", c.Size())
	}
	// Restore a GOMAXPROCS-sized default for any tests that follow.
	SetDefaultSize(runtime.GOMAXPROCS(0))
}

// TestParallelForConcurrentCallers exercises simultaneous ParallelFor calls
// from many goroutines sharing one pool (the run-loop shape: home-level
// waves whose chunks issue tensor-level loops). Run with -race.
func TestParallelForConcurrentCallers(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				var sum atomic.Int64
				p.ParallelFor(64, 5, func(lo, hi int) { sum.Add(int64(hi - lo)) })
				if sum.Load() != 64 {
					t.Errorf("covered %d indices, want 64", sum.Load())
					return
				}
			}
		}()
	}
	wg.Wait()
}

func BenchmarkParallelForSmall(b *testing.B) {
	p := NewPool(4)
	defer p.Close()
	for i := 0; i < b.N; i++ {
		p.ParallelFor(8, 1, func(lo, hi int) {})
	}
}

func BenchmarkGoroutineWaveSmall(b *testing.B) {
	// The pre-pool pattern: fresh goroutines per wave, for comparison.
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for j := 0; j < 8; j++ {
			wg.Add(1)
			go func() { defer wg.Done() }()
		}
		wg.Wait()
	}
}
