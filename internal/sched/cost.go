package sched

import (
	"math"
	"sync/atomic"
	"time"
)

// CostModel is an exponentially-weighted moving average of the measured
// cost, in nanoseconds, of one abstract work unit at a parallel call site.
// Each site (a tensor kernel family, the per-home wave in core) owns one
// model; ParallelForCost consults it to derive a chunk grain that targets
// roughly targetChunkNs of work per hand-off instead of a hand-tuned
// constant.
//
// The estimate is stored as float64 bits in one atomic word, so concurrent
// waves may race on updates; a lost update only delays convergence of the
// estimate and can never affect results — grain choice changes only how
// [0,n) is partitioned across goroutines, never the per-index computation.
type CostModel struct {
	nsPerUnit atomic.Uint64 // float64 bits; 0 means "no measurement yet"
}

const (
	// targetChunkNs is the amount of work one chunk should carry so the
	// per-chunk hand-off (channel send + worker wake + two atomics, ~1-20µs
	// depending on contention) stays in the low single-digit percents.
	targetChunkNs = 100_000 // 100µs

	// serialBelowNs is the projected total below which ParallelForCost does
	// not bother with the pool at all: less than two target chunks of work
	// cannot amortize even one hand-off.
	serialBelowNs = 2 * targetChunkNs

	// costEWMAAlpha is the update weight for new measurements. High enough
	// to track phase changes (train bouts vs predict waves), low enough to
	// ride out timer jitter on micro-waves.
	costEWMAAlpha = 0.25
)

// Estimate returns the current ns-per-unit estimate, or 0 when the model
// has not observed a measurement yet.
func (c *CostModel) Estimate() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.nsPerUnit.Load())
}

// Observe folds a measured elapsed duration for `units` work units into the
// moving average. Non-positive inputs are ignored.
func (c *CostModel) Observe(elapsed time.Duration, units float64) {
	if c == nil || units <= 0 || elapsed <= 0 {
		return
	}
	sample := float64(elapsed.Nanoseconds()) / units
	for {
		oldBits := c.nsPerUnit.Load()
		old := math.Float64frombits(oldBits)
		next := sample
		if old > 0 {
			next = old + costEWMAAlpha*(sample-old)
		}
		if c.nsPerUnit.CompareAndSwap(oldBits, math.Float64bits(next)) {
			return
		}
	}
}

// ParallelForCost runs fn over [0,n) like ParallelFor, but derives the
// chunk grain from the cost model instead of a caller-supplied constant.
// workPerItem scales the model's abstract unit to this call: a matmul site
// passes madds-per-row, a per-home wave passes 1.
//
// Decision ladder, in order:
//   - no pool parallelism available → inline (and the run is measured, so
//     the first call doubles as the model's bootstrap probe);
//   - no estimate yet → serial bootstrap probe;
//   - projected total work below serialBelowNs → serial (the fast path that
//     removes the small-fleet hand-off tax);
//   - otherwise grain = targetChunkNs / projected-ns-per-item, clamped so
//     at least two chunks exist, run through the normal claim loop.
//
// Every run — serial or parallel — feeds its measured wall time back into
// the model. Parallel measurements are scaled by the slots plausibly used
// so the stored unit cost stays an estimate of *serial* cost; the scaling
// is approximate, but the model only steers partitioning, never results.
func (p *Pool) ParallelForCost(cm *CostModel, n, workPerItem int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workPerItem < 1 {
		workPerItem = 1
	}
	units := float64(n) * float64(workPerItem)

	runSerial := func() {
		if p != nil {
			if tel := p.tel.Load(); tel != nil {
				tel.inline.Inc()
			}
		}
		start := time.Now()
		fn(0, n)
		cm.Observe(time.Since(start), units)
	}

	if p == nil || p.size < 2 || p.closed.Load() {
		runSerial()
		return
	}
	perItemNs := cm.Estimate() * float64(workPerItem)
	if perItemNs <= 0 {
		// Bootstrap probe: measure one serial run before trusting any grain.
		runSerial()
		return
	}
	totalNs := perItemNs * float64(n)
	if totalNs < serialBelowNs {
		runSerial()
		return
	}
	grain := int(targetChunkNs / perItemNs)
	if grain < 1 {
		grain = 1
	}
	maxGrain := (n + 1) / 2 // keep at least two chunks once we decided to go parallel
	if grain > maxGrain {
		grain = maxGrain
	}
	chunks := (n + grain - 1) / grain
	start := time.Now()
	p.ParallelFor(n, grain, fn)
	slots := chunks
	if slots > p.size {
		slots = p.size
	}
	cm.Observe(time.Duration(float64(time.Since(start).Nanoseconds())*float64(slots)), units)
}
