// Package sched provides the persistent work-stealing worker pool that
// backs every parallel loop in the simulator: the per-wave home fan-out in
// core and the row sharding inside tensor's large matrix kernels.
//
// Before this package each parallel site spawned a fresh goroutine wave per
// call — roughly 25 waves × homes × days for a run, plus one wave per large
// matmul. The pool replaces that churn with a fixed set of workers created
// once, sized by a single GOMAXPROCS snapshot taken at construction (so a
// mid-run GOMAXPROCS change cannot skew sharding), and fed through a small
// buffered queue.
//
// Scheduling model: ParallelFor splits an index range into grain-sized
// chunks behind an atomic cursor. The calling goroutine always participates
// — it claims chunks exactly like a worker — and idle workers are offered
// the same claim loop with a non-blocking send. Work therefore "steals"
// itself: whichever goroutine is free next takes the next chunk, so uneven
// chunk costs (homes with slow devices, rows with different sparsity) no
// longer straggle a wave behind a fixed pre-partition.
//
// Because the caller participates unconditionally, nested ParallelFor calls
// cannot deadlock: when every worker is busy the inner call simply runs on
// the caller, inline. Determinism is the call sites' contract — chunks must
// write disjoint outputs and own their RNG — which keeps results
// bit-identical to a serial run regardless of which goroutine executes
// which chunk.
package sched

import (
	"runtime"
	"sync/atomic"
)

// Pool is a fixed-size set of persistent worker goroutines. The zero value
// is not usable; construct with NewPool or use Default.
type Pool struct {
	size   int
	jobs   chan func()
	closed atomic.Bool
	// tel is nil unless Instrument attached a telemetry sink; ParallelFor
	// pays one atomic load to check it.
	tel atomic.Pointer[poolTel]
}

// NewPool returns a pool of the given size (minimum 1). A pool of size n
// runs n-1 background workers: the n-th execution slot is the goroutine
// that calls ParallelFor, which always participates in its own loop.
func NewPool(size int) *Pool {
	if size < 1 {
		size = 1
	}
	p := &Pool{size: size, jobs: make(chan func(), 2*size)}
	for i := 0; i < size-1; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	for f := range p.jobs {
		f()
	}
}

// Size returns the pool's execution-slot count, fixed at construction.
func (p *Pool) Size() int {
	if p == nil {
		return 1
	}
	return p.size
}

// Close shuts the pool's background workers down. It must not be called
// concurrently with ParallelFor. A closed pool still accepts ParallelFor
// calls but runs them entirely on the caller.
func (p *Pool) Close() {
	if p.closed.CompareAndSwap(false, true) {
		close(p.jobs)
	}
}

// ParallelFor runs fn over the half-open range [0,n) split into chunks of
// at most grain indices. fn(lo, hi) is invoked with disjoint sub-ranges
// covering [0,n) exactly once each; invocations may run concurrently on
// pool workers and on the calling goroutine, so fn must only write state
// that is private to its index range. ParallelFor returns after every
// chunk has completed.
//
// When the pool has a single slot, n fits in one chunk, or p is nil, fn
// runs inline as fn(0, n) — the serial fast path used by small kernels.
func (p *Pool) ParallelFor(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	if p == nil || p.size < 2 || chunks < 2 || p.closed.Load() {
		if p != nil {
			if tel := p.tel.Load(); tel != nil {
				tel.inline.Inc()
			}
		}
		fn(0, n)
		return
	}
	if tel := p.tel.Load(); tel != nil {
		p.parallelForTel(tel, n, grain, chunks, fn)
		return
	}

	// Completion is counted in chunks finished, with the last finisher
	// closing done. Helpers that sit in the queue without ever starting are
	// then harmless: whenever they do run they find the cursor exhausted
	// and return without calling fn. (Waiting on helper goroutines instead
	// would deadlock under nesting — an inner loop could enqueue a helper
	// that only the already-blocked worker could execute.)
	var cursor, completed atomic.Int64
	done := make(chan struct{})
	run := func() {
		for {
			c := cursor.Add(1) - 1
			if c >= int64(chunks) {
				return
			}
			lo := int(c) * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
			if completed.Add(1) == int64(chunks) {
				close(done)
			}
		}
	}

	// Offer the claim loop to idle workers without blocking: a full queue
	// means every worker is already busy, and the caller absorbs the work.
	helpers := p.size - 1
	if helpers > chunks-1 {
		helpers = chunks - 1
	}
offer:
	for i := 0; i < helpers; i++ {
		select {
		case p.jobs <- run:
		default:
			break offer // queue full; the caller absorbs the rest
		}
	}
	run()
	<-done
}

// defaultPool holds the process-wide pool, created on first use with a
// GOMAXPROCS snapshot taken at that moment.
var defaultPool atomic.Pointer[Pool]

// Default returns the shared process-wide pool, creating it on first call
// with size = GOMAXPROCS at that instant. Later GOMAXPROCS changes do not
// affect it; use SetDefaultSize to rebuild it deliberately.
func Default() *Pool {
	if p := defaultPool.Load(); p != nil {
		return p
	}
	fresh := NewPool(runtime.GOMAXPROCS(0))
	if defaultPool.CompareAndSwap(nil, fresh) {
		return fresh
	}
	fresh.Close()
	return defaultPool.Load()
}

// SetDefaultSize replaces the shared pool with a new one of the given size.
// It is intended for benchmarks sweeping GOMAXPROCS and must not be called
// while any ParallelFor on the previous default pool is in flight.
func SetDefaultSize(size int) {
	old := defaultPool.Swap(NewPool(size))
	if old != nil {
		old.Close()
	}
}
