package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestParallelForCostCoversRangeExactlyOnce checks the adaptive entry point
// visits every index exactly once across range sizes, work weights, and
// model states (cold bootstrap, cheap-serial, expensive-parallel).
func TestParallelForCostCoversRangeExactlyOnce(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, tc := range []struct{ n, work int }{
		{0, 1}, {1, 1}, {2, 1}, {7, 3}, {100, 0}, {1000, 64}, {5, -3},
	} {
		var cm CostModel
		// Run several times so the same table row exercises bootstrap,
		// serial-by-estimate, and (for large work) the parallel branch.
		for iter := 0; iter < 3; iter++ {
			counts := make([]int32, tc.n)
			p.ParallelForCost(&cm, tc.n, tc.work, func(lo, hi int) {
				if lo < 0 || hi > tc.n || lo >= hi {
					t.Errorf("n=%d work=%d: bad chunk [%d,%d)", tc.n, tc.work, lo, hi)
					return
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&counts[i], 1)
				}
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("n=%d work=%d iter=%d: index %d visited %d times", tc.n, tc.work, iter, i, c)
				}
			}
		}
	}
}

// TestParallelForCostSerialWhenCheap checks that once the model has seen a
// cheap workload, later calls stay on the caller (the small-fleet fast
// path): with a measured cost of ~ns per item, 8 items project far below
// serialBelowNs and must not touch the pool.
func TestParallelForCostSerialWhenCheap(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var cm CostModel
	cm.Observe(8*time.Nanosecond, 8) // 1ns/unit
	ran := false
	p.ParallelForCost(&cm, 8, 1, func(lo, hi int) {
		if lo == 0 && hi == 8 {
			ran = true
		}
	})
	if !ran {
		t.Fatal("cheap projected work should run as one inline chunk")
	}
}

// TestParallelForCostParallelWhenExpensive checks that a model primed with
// an expensive per-item cost splits the range into more than one chunk.
func TestParallelForCostParallelWhenExpensive(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var cm CostModel
	cm.Observe(time.Duration(16)*time.Millisecond, 16) // 1ms/item
	var chunks atomic.Int64
	var total atomic.Int64
	p.ParallelForCost(&cm, 16, 1, func(lo, hi int) {
		chunks.Add(1)
		total.Add(int64(hi - lo))
	})
	if total.Load() != 16 {
		t.Fatalf("covered %d indices, want 16", total.Load())
	}
	if chunks.Load() < 2 {
		t.Fatalf("expensive projected work ran in %d chunk(s), want >= 2", chunks.Load())
	}
}

// TestCostModelObserve checks bootstrap seeding, EWMA movement toward new
// samples, and rejection of degenerate inputs.
func TestCostModelObserve(t *testing.T) {
	var cm CostModel
	if cm.Estimate() != 0 {
		t.Fatalf("fresh model estimate = %v, want 0", cm.Estimate())
	}
	cm.Observe(1000*time.Nanosecond, 10)
	if got := cm.Estimate(); got != 100 {
		t.Fatalf("bootstrap estimate = %v ns/unit, want 100", got)
	}
	cm.Observe(2000*time.Nanosecond, 10) // sample 200, EWMA moves 25% of the gap
	if got := cm.Estimate(); got != 125 {
		t.Fatalf("post-EWMA estimate = %v ns/unit, want 125", got)
	}
	cm.Observe(-time.Second, 10)
	cm.Observe(time.Second, 0)
	cm.Observe(time.Second, -5)
	if got := cm.Estimate(); got != 125 {
		t.Fatalf("degenerate observations moved estimate to %v, want 125", got)
	}
	var nilModel *CostModel
	if nilModel.Estimate() != 0 {
		t.Fatal("nil model Estimate should be 0")
	}
	nilModel.Observe(time.Second, 1) // must not panic
}

// TestParallelForCostNilAndClosedPools checks the degraded paths still
// cover the range and still feed the model (so a later healthy pool starts
// with a warm estimate).
func TestParallelForCostNilAndClosedPools(t *testing.T) {
	var nilPool *Pool
	var cm CostModel
	sum := 0
	nilPool.ParallelForCost(&cm, 5, 1, func(lo, hi int) { sum += hi - lo })
	if sum != 5 {
		t.Fatalf("nil pool covered %d indices, want 5", sum)
	}
	if cm.Estimate() <= 0 {
		t.Fatal("nil-pool run should still feed the cost model")
	}

	closed := NewPool(4)
	closed.Close()
	var sum2 atomic.Int64
	closed.ParallelForCost(&cm, 100, 3, func(lo, hi int) { sum2.Add(int64(hi - lo)) })
	if sum2.Load() != 100 {
		t.Fatalf("closed pool covered %d indices, want 100", sum2.Load())
	}
}

// TestParallelForCostConcurrent hammers one model from many goroutines;
// run with -race to check the atomic CAS update loop.
func TestParallelForCostConcurrent(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var cm CostModel
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				var sum atomic.Int64
				p.ParallelForCost(&cm, 64, 5, func(lo, hi int) { sum.Add(int64(hi - lo)) })
				if sum.Load() != 64 {
					t.Errorf("covered %d indices, want 64", sum.Load())
					return
				}
			}
		}()
	}
	wg.Wait()
}

// BenchmarkParallelForGrain sweeps the chunk grain for a fixed synthetic
// workload (64k items of ~15ns spin each, roughly a small dense row) to pin
// the serial/parallel crossover that targetChunkNs encodes. Grain 0 runs
// the loop serially outside the pool as the floor.
func BenchmarkParallelForGrain(b *testing.B) {
	const n = 1 << 16
	work := func(lo, hi int) {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += float64(i) * 1.0000001
		}
		sink = s
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			work(0, n)
		}
	})
	p := NewPool(4)
	defer p.Close()
	for _, grain := range []int{64, 256, 1024, 4096, 16384, 65536} {
		b.Run("grain="+itoa(grain), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.ParallelFor(n, grain, work)
			}
		})
	}
	b.Run("cost-adaptive", func(b *testing.B) {
		var cm CostModel
		for i := 0; i < b.N; i++ {
			p.ParallelForCost(&cm, n, 1, work)
		}
	})
}

var sink float64

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
