package dqn

import (
	"math"
	"math/rand"
	"testing"
)

func allocTestAgent() *Agent {
	return New(Config{
		StateDim:      6,
		Actions:       3,
		Hidden:        []int{12, 12},
		BatchSize:     8,
		TargetReplace: 5, // small so the alloc gate crosses sync boundaries
		Seed:          1,
	})
}

// fillBuffer observes enough random transitions for Learn to run.
func fillBuffer(a *Agent, n int) {
	rng := rand.New(rand.NewSource(7))
	s := make([]float64, a.cfg.StateDim)
	nx := make([]float64, a.cfg.StateDim)
	for i := 0; i < n; i++ {
		for j := range s {
			s[j] = rng.NormFloat64()
			nx[j] = rng.NormFloat64()
		}
		tr := Transition{State: s, Action: rng.Intn(3), Reward: rng.Float64(), Next: nx}
		if i%13 == 12 {
			tr.Done = true
			tr.Next = nil
		}
		a.Observe(tr)
	}
}

func TestSelectActionAllocFree(t *testing.T) {
	a := allocTestAgent()
	state := make([]float64, a.cfg.StateDim)
	for i := range state {
		state[i] = float64(i) * 0.1
	}
	a.SelectAction(state) // warm the 1-row scratch
	if n := testing.AllocsPerRun(50, func() { a.SelectAction(state) }); n != 0 {
		t.Errorf("SelectAction allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() { a.Greedy(state) }); n != 0 {
		t.Errorf("Greedy allocates %v per run, want 0", n)
	}
}

func TestLearnAllocFree(t *testing.T) {
	a := allocTestAgent()
	fillBuffer(a, 3*a.cfg.BatchSize)
	if l := a.Learn(); math.IsNaN(l) {
		t.Fatal("warmup Learn returned NaN with a full buffer")
	}
	// TargetReplace is 5, so 30 runs cross several sync boundaries; the gate
	// therefore also covers SyncTarget.
	if n := testing.AllocsPerRun(30, func() { a.Learn() }); n != 0 {
		t.Errorf("Learn allocates %v per run, want 0", n)
	}
}

func TestLearnDoubleDQNAllocFree(t *testing.T) {
	a := New(Config{
		StateDim: 6, Actions: 3, Hidden: []int{12, 12},
		BatchSize: 8, Seed: 2, DoubleDQN: true,
	})
	fillBuffer(a, 3*a.cfg.BatchSize)
	a.Learn()
	if n := testing.AllocsPerRun(30, func() { a.Learn() }); n != 0 {
		t.Errorf("Double-DQN Learn allocates %v per run, want 0", n)
	}
}

// TestObserveCopiesState pins the replay ownership contract: the buffer must
// copy State/Next on Add so callers can reuse their scratch slices.
func TestObserveCopiesState(t *testing.T) {
	a := allocTestAgent()
	s := []float64{1, 2, 3, 4, 5, 6}
	nx := []float64{7, 8, 9, 10, 11, 12}
	a.Observe(Transition{State: s, Action: 1, Reward: 0.5, Next: nx})
	for i := range s {
		s[i], nx[i] = -1, -1 // caller reuses its buffers
	}
	stored := a.buf.buf[0]
	if stored.State[0] != 1 || stored.Next[0] != 7 {
		t.Fatal("replay buffer aliased caller-owned state slices")
	}
}

func TestReplayAddReusesEvictedBacking(t *testing.T) {
	b := NewReplayBuffer(4)
	s := make([]float64, 3)
	for i := 0; i < 4; i++ {
		s[0] = float64(i)
		b.Add(Transition{State: s, Action: 0, Next: s})
	}
	// The ring is full: further Adds recycle evicted slot backing arrays.
	if n := testing.AllocsPerRun(20, func() { b.Add(Transition{State: s, Action: 0, Next: s}) }); n != 0 {
		t.Errorf("steady-state ReplayBuffer.Add allocates %v per run, want 0", n)
	}
	// Done transitions keep a nil Next even when the evicted slot had one.
	b.Add(Transition{State: s, Action: 0, Done: true})
	idx := (b.pos + cap(b.buf) - 1) % cap(b.buf)
	if b.buf[idx].Next != nil {
		t.Fatal("Done transition should store nil Next")
	}
}

func TestSampleIntoMatchesSample(t *testing.T) {
	b := NewReplayBuffer(8)
	s := make([]float64, 2)
	for i := 0; i < 8; i++ {
		s[0] = float64(i)
		b.Add(Transition{State: s, Action: i % 3, Reward: float64(i)})
	}
	// Identical rng streams must yield identical draws: SampleInto preserves
	// Sample's rng call order, which the golden-equivalence suite depends on.
	r1 := rand.New(rand.NewSource(9))
	r2 := rand.New(rand.NewSource(9))
	want := b.Sample(r1, 5)
	dst := make([]Transition, 0, 5)
	got := b.SampleInto(dst, r2, 5)
	if len(got) != len(want) {
		t.Fatalf("SampleInto returned %d transitions, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i].Reward != got[i].Reward || want[i].Action != got[i].Action {
			t.Fatalf("SampleInto draw %d differs from Sample", i)
		}
	}
	if n := testing.AllocsPerRun(20, func() { got = b.SampleInto(got[:0], r2, 5) }); n != 0 {
		t.Errorf("SampleInto allocates %v per run, want 0", n)
	}
}
