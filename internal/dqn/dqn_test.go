package dqn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReplayBufferBasics(t *testing.T) {
	b := NewReplayBuffer(3)
	if b.Cap() != 3 || b.Len() != 0 {
		t.Fatalf("fresh buffer cap=%d len=%d", b.Cap(), b.Len())
	}
	for i := 0; i < 2; i++ {
		b.Add(Transition{Reward: float64(i)})
	}
	if b.Len() != 2 {
		t.Fatalf("len = %d", b.Len())
	}
}

func TestReplayBufferEvictsOldest(t *testing.T) {
	b := NewReplayBuffer(3)
	for i := 0; i < 5; i++ {
		b.Add(Transition{Reward: float64(i)})
	}
	if b.Len() != 3 {
		t.Fatalf("len = %d, want 3", b.Len())
	}
	seen := map[float64]bool{}
	for _, tr := range b.buf {
		seen[tr.Reward] = true
	}
	// Rewards 0 and 1 evicted; 2,3,4 retained.
	if seen[0] || seen[1] || !seen[2] || !seen[3] || !seen[4] {
		t.Fatalf("wrong eviction: %v", seen)
	}
}

func TestReplayBufferSample(t *testing.T) {
	b := NewReplayBuffer(10)
	for i := 0; i < 4; i++ {
		b.Add(Transition{Reward: float64(i)})
	}
	rng := rand.New(rand.NewSource(1))
	s := b.Sample(rng, 100)
	if len(s) != 100 {
		t.Fatalf("sample size %d", len(s))
	}
	for _, tr := range s {
		if tr.Reward < 0 || tr.Reward > 3 {
			t.Fatalf("sampled phantom transition %v", tr.Reward)
		}
	}
}

func TestReplayBufferPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("capacity 0 accepted")
			}
		}()
		NewReplayBuffer(0)
	}()
	b := NewReplayBuffer(2)
	defer func() {
		if recover() == nil {
			t.Fatal("sampling empty buffer did not panic")
		}
	}()
	b.Sample(rand.New(rand.NewSource(1)), 1)
}

func TestEpsilonSchedule(t *testing.T) {
	e := EpsilonSchedule{Start: 1, End: 0.1, DecaySteps: 100}
	if e.At(0) != 1 {
		t.Fatalf("At(0) = %v", e.At(0))
	}
	if got := e.At(50); math.Abs(got-0.55) > 1e-12 {
		t.Fatalf("At(50) = %v, want 0.55", got)
	}
	if e.At(100) != 0.1 || e.At(1000) != 0.1 {
		t.Fatal("schedule should pin at End")
	}
	degenerate := EpsilonSchedule{Start: 0.7, End: 0.2}
	if degenerate.At(0) != 0.2 {
		t.Fatal("zero DecaySteps should return End")
	}
}

func smallAgent(seed int64) *Agent {
	return New(Config{
		StateDim:       4,
		Actions:        3,
		Hidden:         []int{16, 16},
		MemoryCapacity: 200,
		BatchSize:      16,
		TargetReplace:  20,
		Epsilon:        EpsilonSchedule{Start: 1, End: 0, DecaySteps: 300},
		Seed:           seed,
	})
}

func TestConfigDefaults(t *testing.T) {
	a := New(Config{StateDim: 7})
	cfg := a.Config()
	if cfg.Actions != 3 || len(cfg.Hidden) != 8 || cfg.Hidden[0] != 100 {
		t.Fatalf("paper defaults missing: %+v", cfg)
	}
	if cfg.LearnRate != 0.001 || cfg.Gamma != 0.9 || cfg.MemoryCapacity != 2000 || cfg.TargetReplace != 100 {
		t.Fatalf("paper hyperparameters wrong: %+v", cfg)
	}
	// 8 hidden + output = 9 trainable layers.
	if got := a.Online.NumTrainableLayers(); got != 9 {
		t.Fatalf("trainable layers = %d, want 9", got)
	}
}

func TestConfigRequiresStateDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("missing StateDim accepted")
		}
	}()
	New(Config{})
}

func TestQValuesAndGreedy(t *testing.T) {
	a := smallAgent(1)
	q := a.QValues([]float64{0.1, 0.2, 0.3, 0.4})
	if len(q) != 3 {
		t.Fatalf("QValues length %d", len(q))
	}
	g := a.Greedy([]float64{0.1, 0.2, 0.3, 0.4})
	best := 0
	for i, v := range q {
		if v > q[best] {
			best = i
		}
	}
	if g != best {
		t.Fatalf("Greedy = %d, argmax = %d", g, best)
	}
}

func TestQValuesPanicsOnBadDim(t *testing.T) {
	a := smallAgent(1)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong state dim accepted")
		}
	}()
	a.QValues([]float64{1})
}

func TestSelectActionExploresEarlyExploitsLate(t *testing.T) {
	a := smallAgent(2)
	state := []float64{0.5, 0.5, 0.5, 0.5}
	// With ε=1 at the start, actions must be spread across the space.
	counts := map[int]int{}
	for i := 0; i < 150; i++ {
		counts[a.SelectAction(state)]++
	}
	if len(counts) < 3 {
		t.Fatalf("no exploration: %v", counts)
	}
	// Burn the schedule down to ε=0; actions must become deterministic.
	for a.Epsilon() > 0 {
		a.SelectAction(state)
	}
	first := a.SelectAction(state)
	for i := 0; i < 20; i++ {
		if got := a.SelectAction(state); got != first {
			t.Fatal("greedy phase not deterministic")
		}
	}
}

func TestObservePanics(t *testing.T) {
	a := smallAgent(3)
	ok := Transition{State: make([]float64, 4), Action: 0, Next: make([]float64, 4)}
	a.Observe(ok)
	for _, bad := range []Transition{
		{State: make([]float64, 2), Action: 0, Next: make([]float64, 4)},
		{State: make([]float64, 4), Action: 0, Next: make([]float64, 1)},
		{State: make([]float64, 4), Action: 5, Next: make([]float64, 4)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bad transition accepted: %+v", bad)
				}
			}()
			a.Observe(bad)
		}()
	}
	// Terminal transitions may omit Next.
	a.Observe(Transition{State: make([]float64, 4), Action: 1, Done: true})
}

func TestLearnNoOpUntilBatchFull(t *testing.T) {
	a := smallAgent(4)
	if l := a.Learn(); !math.IsNaN(l) {
		t.Fatalf("Learn on empty memory returned %v, want NaN", l)
	}
	if a.LearnSteps() != 0 {
		t.Fatal("no-op Learn counted as a step")
	}
}

func TestTargetSyncCadence(t *testing.T) {
	a := smallAgent(5)
	st := make([]float64, 4)
	for i := 0; i < 50; i++ {
		a.Observe(Transition{State: st, Action: i % 3, Reward: 1, Next: st})
	}
	// After 19 learn steps the target must differ from online; after the
	// 20th they must match (TargetReplace: 20).
	for i := 0; i < 19; i++ {
		a.Learn()
	}
	same := true
	po, pt := a.Online.Params(), a.Target.Params()
	for i := range po {
		if !po[i].Equal(pt[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("target should lag online before sync")
	}
	a.Learn() // 20th step triggers sync
	for i := range po {
		if !po[i].Equal(pt[i]) {
			t.Fatal("target not synced on TargetReplace boundary")
		}
	}
}

// TestLearnsContextualBandit: a 1-step environment where action quality
// depends on the state. The agent must learn the optimal mapping.
func TestLearnsContextualBandit(t *testing.T) {
	a := New(Config{
		StateDim:       2,
		Actions:        3,
		Hidden:         []int{24, 24},
		MemoryCapacity: 500,
		BatchSize:      32,
		TargetReplace:  50,
		LearnRate:      0.005,
		Epsilon:        EpsilonSchedule{Start: 1, End: 0.1, DecaySteps: 1500},
		RewardScale:    1.0 / 30.0,
		Seed:           6,
	})
	rng := rand.New(rand.NewSource(7))
	reward := func(state []float64, action int) float64 {
		// Best action: 0 if state[0] < 0.5, else 2.
		want := 0
		if state[0] >= 0.5 {
			want = 2
		}
		switch {
		case action == want:
			return 30
		case action == 1:
			return -10
		default:
			return -30
		}
	}
	for i := 0; i < 2500; i++ {
		state := []float64{rng.Float64(), rng.Float64()}
		act := a.SelectAction(state)
		r := reward(state, act)
		a.Observe(Transition{State: state, Action: act, Reward: r, Done: true})
		a.Learn()
	}
	correct := 0
	for i := 0; i < 200; i++ {
		state := []float64{rng.Float64(), rng.Float64()}
		want := 0
		if state[0] >= 0.5 {
			want = 2
		}
		if a.Greedy(state) == want {
			correct++
		}
	}
	if correct < 180 {
		t.Fatalf("bandit accuracy %d/200 after training", correct)
	}
}

func TestPropEpsilonMonotoneNonIncreasing(t *testing.T) {
	f := func(s1, s2 uint16) bool {
		e := EpsilonSchedule{Start: 1, End: 0.05, DecaySteps: 1000}
		a, b := int(s1), int(s2)
		if a > b {
			a, b = b, a
		}
		return e.At(a) >= e.At(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
