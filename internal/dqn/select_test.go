package dqn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// TestSelectActionsMatchesSequential pins the batched ε-greedy path against
// per-state SelectAction calls on a twin agent: same actions, same RNG
// stream position, same ε schedule, across many minutes and under learning
// (so the networks the greedy rows evaluate are non-trivial).
func TestSelectActionsMatchesSequential(t *testing.T) {
	mk := func() *Agent {
		return New(Config{
			StateDim: 6,
			Hidden:   []int{10, 10},
			Seed:     42,
			Epsilon:  EpsilonSchedule{Start: 0.6, End: 0.05, DecaySteps: 80},
		})
	}
	batched, serial := mk(), mk()
	rng := rand.New(rand.NewSource(9))
	const devices = 4
	states := tensor.New(devices, 6)
	out := make([]int, devices)
	for minute := 0; minute < 60; minute++ {
		for i := range states.Data {
			states.Data[i] = rng.NormFloat64()
		}
		batched.SelectActions(states, out)
		for i := 0; i < devices; i++ {
			want := serial.SelectAction(states.Row(i))
			if out[i] != want {
				t.Fatalf("minute %d device %d: batched action %d, serial %d", minute, i, out[i], want)
			}
		}
		// Feed both agents identical transitions and learn, so later minutes
		// select through trained (and still identical) networks.
		for i := 0; i < devices; i++ {
			tr := Transition{
				State:  append([]float64(nil), states.Row(i)...),
				Action: out[i],
				Reward: float64(out[i]) - 1,
				Next:   append([]float64(nil), states.Row((i+1)%devices)...),
			}
			batched.Observe(tr)
			serial.Observe(tr)
		}
		batched.Learn()
		serial.Learn()
	}
	if batched.actSteps != serial.actSteps {
		t.Fatalf("actSteps diverged: %d vs %d", batched.actSteps, serial.actSteps)
	}
}

// TestSelectActionsShapeChecks pins the panic contracts.
func TestSelectActionsShapeChecks(t *testing.T) {
	a := New(Config{StateDim: 4, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched out length should panic")
		}
	}()
	a.SelectActions(tensor.New(2, 4), make([]int, 3))
}
