package dqn

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// AgentState is the full serializable training state of one Agent — not
// just the learned policy (SaveModels territory) but everything a
// bit-identical resume needs: both networks, the optimizer moments, the
// replay ring, the exploration/learn counters, and the RNG draw count.
// All fields are exported plain data, so the struct gob-encodes directly.
type AgentState struct {
	ActSteps   int
	LearnSteps int
	// RNGDraws is the exploration/sampling stream's position; restore
	// re-seeds from the agent's configured Seed and fast-forwards.
	RNGDraws uint64

	Online, Target []*tensor.Matrix

	// AdamM/AdamV/AdamT mirror the optimizer's moment estimates; nil
	// moments mean the optimizer has not stepped yet.
	AdamM, AdamV []*tensor.Matrix
	AdamT        int

	ReplayBuf  []Transition
	ReplayPos  int
	ReplayFull bool
}

// StateSnapshot captures the agent's full training state as deep copies.
func (a *Agent) StateSnapshot() AgentState {
	st := AgentState{
		ActSteps:   a.actSteps,
		LearnSteps: a.learnSteps,
		RNGDraws:   a.src.Draws(),
	}
	for _, p := range a.onlineParams {
		st.Online = append(st.Online, p.Clone())
	}
	for _, p := range a.targetParams {
		st.Target = append(st.Target, p.Clone())
	}
	if adam, ok := a.opt.(*nn.Adam); ok {
		st.AdamM, st.AdamV, st.AdamT = adam.StateSnapshot()
	}
	st.ReplayBuf, st.ReplayPos, st.ReplayFull = a.buf.Snapshot()
	return st
}

// RestoreState installs a StateSnapshot into this agent, which must have
// the same architecture and capacity the snapshot was taken from. On
// success the agent continues the original run bit-for-bit: the RNG stream
// is fast-forwarded to the recorded draw, replay sampling sees the same
// ring, and the optimizer resumes with its exact moments.
func (a *Agent) RestoreState(st AgentState) error {
	if err := copyParamSet("online", a.onlineParams, st.Online); err != nil {
		return err
	}
	if err := copyParamSet("target", a.targetParams, st.Target); err != nil {
		return err
	}
	if adam, ok := a.opt.(*nn.Adam); ok {
		if st.AdamM != nil && len(st.AdamM) != len(a.onlineParams) {
			return fmt.Errorf("dqn: snapshot carries %d Adam moments, agent has %d parameters",
				len(st.AdamM), len(a.onlineParams))
		}
		if err := adam.RestoreState(st.AdamM, st.AdamV, st.AdamT); err != nil {
			return fmt.Errorf("dqn: %w", err)
		}
	} else if st.AdamM != nil {
		return fmt.Errorf("dqn: snapshot carries Adam state but agent uses %s", a.opt.Name())
	}
	if err := a.buf.Restore(st.ReplayBuf, st.ReplayPos, st.ReplayFull); err != nil {
		return err
	}
	for _, tr := range st.ReplayBuf {
		if len(tr.State) != a.cfg.StateDim || (!tr.Done && len(tr.Next) != a.cfg.StateDim) {
			return fmt.Errorf("dqn: snapshot transition state dim %d, agent wants %d", len(tr.State), a.cfg.StateDim)
		}
	}
	a.actSteps = st.ActSteps
	a.learnSteps = st.LearnSteps
	a.src.SeekTo(st.RNGDraws)
	return nil
}

// copyParamSet copies src matrices into dst, validating count and shapes.
func copyParamSet(what string, dst, src []*tensor.Matrix) error {
	if len(src) != len(dst) {
		return fmt.Errorf("dqn: snapshot has %d %s tensors, agent has %d", len(src), what, len(dst))
	}
	for i, m := range src {
		if m.Rows != dst[i].Rows || m.Cols != dst[i].Cols {
			return fmt.Errorf("dqn: snapshot %s tensor %d is %dx%d, agent wants %dx%d",
				what, i, m.Rows, m.Cols, dst[i].Rows, dst[i].Cols)
		}
	}
	for i, m := range src {
		dst[i].CopyFrom(m)
	}
	return nil
}
