package dqn

import "repro/internal/telemetry"

// Instrument attaches telemetry handles updated at the end of every
// successful Learn call: the minibatch loss sample, the learn-step counter,
// and the current epsilon / replay-occupancy gauges. Any handle may be nil
// (nil instrument methods are no-ops), so sharing one loss histogram across
// a fleet while giving only one agent the epsilon gauge costs nothing
// extra. Uninstrumented agents pay four nil checks per Learn.
func (a *Agent) Instrument(loss *telemetry.Histogram, steps *telemetry.Counter, eps, replay *telemetry.Gauge) {
	a.telLoss = loss
	a.telSteps = steps
	a.telEps = eps
	a.telReplay = replay
}
