package dqn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// Config holds the agent hyperparameters. Zero values select the paper's
// settings.
type Config struct {
	// StateDim is the observation width (required).
	StateDim int
	// Actions is the action-space size (default 3: off/standby/on).
	Actions int
	// Hidden lists hidden-layer widths (default eight layers of 100).
	Hidden []int
	// LearnRate is the optimizer step size (default 0.001).
	LearnRate float64
	// Gamma is the discount factor κ (default 0.9).
	Gamma float64
	// MemoryCapacity is the replay size (default 2000).
	MemoryCapacity int
	// TargetReplace syncs the target net every N learn steps (default 100).
	TargetReplace int
	// BatchSize is the replay minibatch (default 32).
	BatchSize int
	// Epsilon is the exploration schedule (default 1.0 → 0.05 over 2000).
	Epsilon EpsilonSchedule
	// RewardScale multiplies rewards before they enter the TD target;
	// the Table 1 rewards span ±30, so the default 1/30 keeps Q-values
	// O(1) where the Huber quadratic zone is effective.
	RewardScale float64
	// HuberDelta is the loss crossover (default 1).
	HuberDelta float64
	// Seed drives exploration and replay sampling.
	Seed int64
	// InitSeed, when non-zero, drives weight initialization separately from
	// Seed. Federated deployments give every agent the same InitSeed (the
	// paper: agents start from "the same default training model") so that
	// parameter averaging operates on aligned networks, while each agent
	// keeps its own exploration Seed.
	InitSeed int64
	// DoubleDQN selects the action for the bootstrap target with the online
	// network and evaluates it with the target network (van Hasselt et
	// al.), reducing maximization bias. The paper uses plain DQN; this is
	// the standard extension and is off by default.
	DoubleDQN bool
}

func (c Config) withDefaults() Config {
	if c.StateDim <= 0 {
		panic("dqn: Config.StateDim is required")
	}
	if c.Actions <= 0 {
		c.Actions = 3
	}
	if len(c.Hidden) == 0 {
		c.Hidden = []int{100, 100, 100, 100, 100, 100, 100, 100}
	}
	if c.LearnRate <= 0 {
		c.LearnRate = 0.001
	}
	if c.Gamma == 0 {
		c.Gamma = 0.9
	}
	if c.MemoryCapacity <= 0 {
		c.MemoryCapacity = 2000
	}
	if c.TargetReplace <= 0 {
		c.TargetReplace = 100
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.Epsilon == (EpsilonSchedule{}) {
		c.Epsilon = EpsilonSchedule{Start: 1, End: 0.05, DecaySteps: 2000}
	}
	if c.RewardScale == 0 {
		c.RewardScale = 1.0 / 30.0
	}
	if c.HuberDelta <= 0 {
		c.HuberDelta = 1
	}
	return c
}

// Agent is a DQN learner.
type Agent struct {
	cfg Config
	// Online is the trained Q-network; Target provides bootstrap values and
	// is synced from Online every TargetReplace learn steps.
	Online, Target *nn.Sequential
	buf            *ReplayBuffer
	opt            nn.Optimizer
	// src is the counting source behind rng: exploration and replay
	// sampling draw through it unchanged, and its draw count is the
	// stream's checkpointable state (see StateSnapshot / RestoreState).
	src        *rng.Source
	rng        *rand.Rand
	learnSteps int
	actSteps   int

	// onlineParams/onlineGrads/targetParams cache the (architecture-stable)
	// parameter lists so the hot path never rebuilds them.
	onlineParams, onlineGrads, targetParams []*tensor.Matrix

	// Reusable hot-path buffers (see DESIGN.md "Memory model & buffer
	// ownership"): actRow is the persistent 1-row scratch SelectAction
	// evaluates through, actBatch the SelectActions gather buffer; the rest
	// are Learn's minibatch workspaces, sized once at the first full batch.
	actRow        *tensor.Matrix
	actBatch      *tensor.Matrix
	batch         []Transition
	states, nexts *tensor.Matrix
	nextOnline    *tensor.Matrix
	target, mask  *tensor.Matrix
	grad          *tensor.Matrix

	// Telemetry handles bound by Instrument; all nil (free no-ops) by
	// default.
	telLoss           *telemetry.Histogram
	telSteps          *telemetry.Counter
	telEps, telReplay *telemetry.Gauge
}

// New builds an agent from cfg (panics if StateDim is unset).
func New(cfg Config) *Agent {
	cfg = cfg.withDefaults()
	initSeed := cfg.InitSeed
	if initSeed == 0 {
		initSeed = cfg.Seed
	}
	src := rng.NewSource(cfg.Seed)
	widths := append([]int{cfg.StateDim}, cfg.Hidden...)
	widths = append(widths, cfg.Actions)
	online := nn.NewMLP(rand.New(rand.NewSource(initSeed)), widths...)
	target := nn.NewMLP(rand.New(rand.NewSource(initSeed)), widths...)
	target.CopyParamsFrom(online)
	return &Agent{
		cfg:          cfg,
		Online:       online,
		Target:       target,
		buf:          NewReplayBuffer(cfg.MemoryCapacity),
		opt:          &nn.Adam{LR: cfg.LearnRate, Clip: 5},
		src:          src,
		rng:          rand.New(src),
		onlineParams: online.Params(),
		onlineGrads:  online.Grads(),
		targetParams: target.Params(),
		actRow:       tensor.New(1, cfg.StateDim),
	}
}

// Config returns the effective (defaulted) configuration.
func (a *Agent) Config() Config { return a.cfg }

// Epsilon returns the current exploration rate.
func (a *Agent) Epsilon() float64 { return a.cfg.Epsilon.At(a.actSteps) }

// MemoryLen returns the number of stored transitions.
func (a *Agent) MemoryLen() int { return a.buf.Len() }

// LearnSteps returns the number of completed gradient updates.
func (a *Agent) LearnSteps() int { return a.learnSteps }

// forwardRow evaluates the online network on a single state through the
// persistent 1-row scratch. The returned matrix is network-owned workspace,
// valid only until the next forward pass.
func (a *Agent) forwardRow(state []float64) *tensor.Matrix {
	if len(state) != a.cfg.StateDim {
		panic(fmt.Sprintf("dqn: state dim %d, want %d", len(state), a.cfg.StateDim))
	}
	copy(a.actRow.Data, state)
	return a.Online.Forward(a.actRow)
}

// QValues returns the online network's Q-values for a state. The returned
// slice is freshly allocated and owned by the caller.
func (a *Agent) QValues(state []float64) []float64 {
	out := a.forwardRow(state)
	q := make([]float64, a.cfg.Actions)
	copy(q, out.Data)
	return q
}

// Greedy returns argmax_a Q(state, a). It allocates nothing.
func (a *Agent) Greedy(state []float64) int {
	q := a.forwardRow(state).Data
	best, bi := q[0], 0
	for i, v := range q[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// SelectAction is the ε-greedy policy (Algorithm 2: a_t = random(0,2) or
// argmax_a Q(s_t, a)). It advances the exploration schedule.
func (a *Agent) SelectAction(state []float64) int {
	eps := a.Epsilon()
	a.actSteps++
	if a.rng.Float64() < eps {
		return a.rng.Intn(a.cfg.Actions)
	}
	return a.Greedy(state)
}

// SelectActions runs the ε-greedy policy over a batch of pending decisions
// — states.Row(i) is decision i's observation, in decision order — filling
// out[i] with each chosen action. It is bit-identical to calling
// SelectAction on every row sequentially: the ε schedule and the RNG draw
// sequence advance row by row first (greedy evaluation consumes no
// randomness), and the greedy rows then evaluate through one batched
// forward pass, whose row-level kernels match the single-row path exactly.
// Batching the forward amortizes the per-call layer walk and dispatch over
// every device of a home deciding in the same simulated minute.
func (a *Agent) SelectActions(states *tensor.Matrix, out []int) []int {
	if states.Cols != a.cfg.StateDim {
		panic(fmt.Sprintf("dqn: state dim %d, want %d", states.Cols, a.cfg.StateDim))
	}
	n := states.Rows
	if len(out) != n {
		panic(fmt.Sprintf("dqn: SelectActions got %d output slots for %d states", len(out), n))
	}
	greedy := 0
	for i := 0; i < n; i++ {
		eps := a.Epsilon()
		a.actSteps++
		if a.rng.Float64() < eps {
			out[i] = a.rng.Intn(a.cfg.Actions)
		} else {
			out[i] = -1 // greedy, resolved below
			greedy++
		}
	}
	if greedy == 0 {
		return out
	}
	a.actBatch = tensor.EnsureShape(a.actBatch, greedy, a.cfg.StateDim)
	r := 0
	for i := 0; i < n; i++ {
		if out[i] < 0 {
			copy(a.actBatch.Row(r), states.Row(i))
			r++
		}
	}
	q := a.Online.Forward(a.actBatch)
	r = 0
	for i := 0; i < n; i++ {
		if out[i] < 0 {
			row := q.Row(r)
			best, bi := row[0], 0
			for c, v := range row[1:] {
				if v > best {
					best, bi = v, c+1
				}
			}
			out[i] = bi
			r++
		}
	}
	return out
}

// Observe stores a transition in replay memory. The buffer copies t.State
// and t.Next into storage it owns, so the caller may reuse those slices
// immediately after Observe returns.
func (a *Agent) Observe(t Transition) {
	if len(t.State) != a.cfg.StateDim || (!t.Done && len(t.Next) != a.cfg.StateDim) {
		panic("dqn: Observe with mismatched state dimensions")
	}
	if t.Action < 0 || t.Action >= a.cfg.Actions {
		panic(fmt.Sprintf("dqn: Observe with action %d outside [0,%d)", t.Action, a.cfg.Actions))
	}
	a.buf.Add(t)
}

// Learn runs one minibatch TD update (Algorithm 2's inner loop):
//
//	y_i = r_i + κ·max_a' Q_target(s'_i, a')   (y_i = r_i if terminal)
//	L    = Huber(y_i − Q_online(s_i, a_i))
//
// It is a no-op returning NaN until the buffer holds one full batch.
// Every TargetReplace learn steps the target network is synced.
//
// Learn reuses agent-owned minibatch buffers across calls: after the first
// full batch it performs zero steady-state heap allocations.
func (a *Agent) Learn() float64 {
	if a.buf.Len() < a.cfg.BatchSize {
		return math.NaN()
	}
	n := a.cfg.BatchSize
	a.batch = a.buf.SampleInto(a.batch[:0], a.rng, n)

	a.states = tensor.EnsureShape(a.states, n, a.cfg.StateDim)
	a.nexts = tensor.EnsureShape(a.nexts, n, a.cfg.StateDim)
	a.nexts.Zero() // terminal transitions must read an all-zero next state
	for i, tr := range a.batch {
		a.states.SetRow(i, tr.State)
		if !tr.Done {
			a.nexts.SetRow(i, tr.Next)
		}
	}
	// Bootstrap targets from the frozen network. Under Double DQN the
	// online network picks the argmax action and the target network scores
	// it; under plain DQN the target network does both.
	nextQ := a.Target.Forward(a.nexts)
	if a.cfg.DoubleDQN {
		// The online pass over next-states is copied out of the network's
		// workspace before the pass over current states overwrites it.
		a.nextOnline = tensor.EnsureShape(a.nextOnline, n, a.cfg.Actions)
		a.nextOnline.CopyFrom(a.Online.Forward(a.nexts))
	}
	qPred := a.Online.Forward(a.states)

	a.target = tensor.EnsureShape(a.target, n, a.cfg.Actions)
	a.target.CopyFrom(qPred)
	a.mask = tensor.EnsureShape(a.mask, n, a.cfg.Actions)
	a.mask.Zero()
	for i, tr := range a.batch {
		y := tr.Reward * a.cfg.RewardScale
		if !tr.Done {
			row := nextQ.Row(i)
			var boot float64
			if a.cfg.DoubleDQN {
				sel := a.nextOnline.Row(i)
				bi := 0
				for c, v := range sel[1:] {
					if v > sel[bi] {
						bi = c + 1
					}
				}
				boot = row[bi]
			} else {
				boot = row[0]
				for _, v := range row[1:] {
					if v > boot {
						boot = v
					}
				}
			}
			y += a.cfg.Gamma * boot
		}
		a.target.Set(i, tr.Action, y)
		a.mask.Set(i, tr.Action, 1)
	}

	a.grad = tensor.EnsureShape(a.grad, n, a.cfg.Actions)
	loss := nn.MaskedHuber{Delta: a.cfg.HuberDelta}.LossInto(a.grad, qPred, a.target, a.mask)
	a.Online.ZeroGrads()
	a.Online.Backward(a.grad)
	a.opt.Step(a.onlineParams, a.onlineGrads)

	a.learnSteps++
	if a.learnSteps%a.cfg.TargetReplace == 0 {
		a.SyncTarget()
	}
	a.telLoss.Observe(loss)
	a.telSteps.Inc()
	a.telEps.Set(a.Epsilon())
	a.telReplay.Set(float64(a.buf.Len()))
	return loss
}

// SyncTarget copies the online parameters into the target network. It works
// over the cached parameter lists so periodic syncs inside Learn stay
// allocation-free.
func (a *Agent) SyncTarget() {
	for i, p := range a.targetParams {
		p.CopyFrom(a.onlineParams[i])
	}
}
