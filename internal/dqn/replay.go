// Package dqn implements the Deep Q-Network agent of Section 3.3.1: an
// ε-greedy policy over a deep MLP trained by one-step temporal-difference
// targets from a periodically synced target network, with uniform replay
// memory and the Huber loss (Algorithm 2). The paper's hyperparameters —
// learning rate 0.001, discount κ=0.9, memory capacity 2000, target
// replacement every 100 learn steps, eight hidden layers of 100 ReLU units,
// 3 output Q-values — are the defaults.
package dqn

import (
	"fmt"
	"math/rand"
)

// Transition is one (s, a, r, s', done) experience tuple.
type Transition struct {
	State  []float64
	Action int
	Reward float64
	Next   []float64
	// Done marks episode termination: the target for a terminal transition
	// is the bare reward with no bootstrapped next-state value.
	Done bool
}

// ReplayBuffer is a fixed-capacity uniform-sampling ring buffer.
//
// Ownership: Add copies each transition's State/Next slices into storage the
// buffer owns (reusing the evicted slot's backing arrays once the ring is
// full), so callers may reuse their state scratch buffers between steps.
// Transitions handed out by Sample/SampleInto alias buffer storage and are
// valid until the underlying slot is overwritten — consume them before the
// next Add cycle, and do not mutate them.
type ReplayBuffer struct {
	buf  []Transition
	pos  int
	full bool
}

// NewReplayBuffer returns a buffer holding up to capacity transitions.
func NewReplayBuffer(capacity int) *ReplayBuffer {
	if capacity < 1 {
		panic(fmt.Sprintf("dqn: replay capacity %d < 1", capacity))
	}
	return &ReplayBuffer{buf: make([]Transition, 0, capacity)}
}

// Cap returns the buffer capacity.
func (b *ReplayBuffer) Cap() int { return cap(b.buf) }

// Len returns the number of stored transitions.
func (b *ReplayBuffer) Len() int {
	if b.full {
		return cap(b.buf)
	}
	return len(b.buf)
}

// copyTransition copies src into dst, reusing dst's State/Next backing
// arrays when their capacity suffices. Nil slices stay nil so Done
// transitions round-trip unchanged.
func copyTransition(dst *Transition, src Transition) {
	dst.State = copyFloats(dst.State, src.State)
	dst.Next = copyFloats(dst.Next, src.Next)
	dst.Action = src.Action
	dst.Reward = src.Reward
	dst.Done = src.Done
}

// copyFloats copies src into dst's backing array if it fits, else into a
// fresh allocation. A nil src yields nil.
func copyFloats(dst, src []float64) []float64 {
	if src == nil {
		return nil
	}
	if cap(dst) < len(src) {
		dst = make([]float64, len(src))
	}
	dst = dst[:len(src)]
	copy(dst, src)
	return dst
}

// Add stores a copy of the transition, evicting the oldest once full. Once
// the ring has wrapped, evicted slots donate their backing arrays to the
// incoming transition, so steady-state Adds allocate nothing.
func (b *ReplayBuffer) Add(t Transition) {
	if b.full {
		copyTransition(&b.buf[b.pos], t)
		b.pos = (b.pos + 1) % cap(b.buf)
		return
	}
	var slot Transition
	copyTransition(&slot, t)
	b.buf = append(b.buf, slot)
	if len(b.buf) == cap(b.buf) {
		b.full = true
		b.pos = 0
	}
}

// Sample draws n transitions uniformly with replacement. It panics if the
// buffer is empty. See the type comment for the aliasing contract.
func (b *ReplayBuffer) Sample(rng *rand.Rand, n int) []Transition {
	return b.SampleInto(make([]Transition, 0, n), rng, n)
}

// SampleInto is Sample appending into caller-provided storage (pass
// dst[:0] to reuse a previous sample slice); with sufficient capacity it
// allocates nothing.
func (b *ReplayBuffer) SampleInto(dst []Transition, rng *rand.Rand, n int) []Transition {
	if b.Len() == 0 {
		panic("dqn: Sample from empty replay buffer")
	}
	for i := 0; i < n; i++ {
		dst = append(dst, b.buf[rng.Intn(b.Len())])
	}
	return dst
}

// cloneTransition deep-copies a transition.
func cloneTransition(t Transition) Transition {
	var c Transition
	copyTransition(&c, t)
	return c
}

// Snapshot returns a deep copy of the ring's contents and cursor, for
// checkpointing. Restoring it with Restore reproduces the exact eviction
// and sampling order the buffer would have had without the round-trip.
func (b *ReplayBuffer) Snapshot() (buf []Transition, pos int, full bool) {
	buf = make([]Transition, len(b.buf))
	for i, t := range b.buf {
		buf[i] = cloneTransition(t)
	}
	return buf, b.pos, b.full
}

// Restore replaces the ring's contents with a deep copy of a Snapshot.
// The snapshot must fit the buffer's capacity and describe a consistent
// ring (full ⇒ len == cap and pos in range; not full ⇒ pos == 0).
func (b *ReplayBuffer) Restore(buf []Transition, pos int, full bool) error {
	c := cap(b.buf)
	if len(buf) > c {
		return fmt.Errorf("dqn: replay snapshot holds %d transitions, capacity is %d", len(buf), c)
	}
	if full && (len(buf) != c || pos < 0 || pos >= c) {
		return fmt.Errorf("dqn: inconsistent full replay snapshot (len %d, cap %d, pos %d)", len(buf), c, pos)
	}
	if !full && pos != 0 {
		return fmt.Errorf("dqn: inconsistent partial replay snapshot (pos %d)", pos)
	}
	b.buf = b.buf[:0]
	for _, t := range buf {
		var slot Transition
		copyTransition(&slot, t)
		b.buf = append(b.buf, slot)
	}
	b.pos, b.full = pos, full
	return nil
}

// EpsilonSchedule is a linear exploration decay: ε starts at Start and
// anneals to End over DecaySteps action selections.
type EpsilonSchedule struct {
	Start, End float64
	DecaySteps int
}

// At returns ε after `step` action selections.
func (e EpsilonSchedule) At(step int) float64 {
	if e.DecaySteps <= 0 || step >= e.DecaySteps {
		return e.End
	}
	frac := float64(step) / float64(e.DecaySteps)
	return e.Start + (e.End-e.Start)*frac
}
