package dqn

import (
	"math"
	"math/rand"
	"testing"
)

func TestPrioritizedReplayBasics(t *testing.T) {
	p := NewPrioritizedReplay(5, 0)
	if p.Cap() != 5 || p.Len() != 0 {
		t.Fatalf("cap=%d len=%d", p.Cap(), p.Len())
	}
	for i := 0; i < 7; i++ {
		p.Add(Transition{Reward: float64(i)})
	}
	if p.Len() != 5 {
		t.Fatalf("len = %d after overfill", p.Len())
	}
}

func TestPrioritizedReplayPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("capacity 0 accepted")
			}
		}()
		NewPrioritizedReplay(0, 0.6)
	}()
	p := NewPrioritizedReplay(4, 0.6)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("empty sample accepted")
			}
		}()
		p.Sample(rand.New(rand.NewSource(1)), 1, 0.4)
	}()
	p.Add(Transition{})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("mismatched UpdatePriorities accepted")
			}
		}()
		p.UpdatePriorities([]int{0}, []float64{1, 2})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-range index accepted")
			}
		}()
		p.UpdatePriorities([]int{99}, []float64{1})
	}()
}

// TestPrioritizedSamplingBias: a transition with 100x priority must be
// sampled far more often than its uniform share.
func TestPrioritizedSamplingBias(t *testing.T) {
	p := NewPrioritizedReplay(10, 1.0) // fully proportional
	for i := 0; i < 10; i++ {
		p.Add(Transition{Action: i})
	}
	// Boost transition 3.
	p.UpdatePriorities([]int{3}, []float64{100})
	rng := rand.New(rand.NewSource(2))
	counts := map[int]int{}
	const draws = 3000
	trs, _, _ := p.Sample(rng, draws, 0.4)
	for _, tr := range trs {
		counts[tr.Action]++
	}
	// Transition 3 carries ~100/109 of the mass.
	if counts[3] < draws/2 {
		t.Fatalf("high-priority transition drawn %d/%d times", counts[3], draws)
	}
}

func TestPrioritizedISWeights(t *testing.T) {
	p := NewPrioritizedReplay(4, 1.0)
	for i := 0; i < 4; i++ {
		p.Add(Transition{Action: i})
	}
	p.UpdatePriorities([]int{0, 1, 2, 3}, []float64{8, 1, 1, 1})
	rng := rand.New(rand.NewSource(3))
	_, idxs, weights := p.Sample(rng, 200, 1.0)
	for i, w := range weights {
		if w <= 0 || w > 1+1e-12 {
			t.Fatalf("weight %v outside (0,1]", w)
		}
		// The over-sampled transition must carry the smallest IS weight.
		if idxs[i] == 0 && w > 0.5 {
			t.Fatalf("high-priority sample has weight %v, want < 0.5", w)
		}
	}
}

func TestPrioritizedUniformAlphaZeroish(t *testing.T) {
	// With equal priorities, sampling must cover all entries.
	p := NewPrioritizedReplay(8, 0.6)
	for i := 0; i < 8; i++ {
		p.Add(Transition{Action: i})
	}
	rng := rand.New(rand.NewSource(4))
	trs, _, weights := p.Sample(rng, 400, 0.4)
	seen := map[int]bool{}
	for _, tr := range trs {
		seen[tr.Action] = true
	}
	if len(seen) != 8 {
		t.Fatalf("uniform-priority sampling covered %d/8", len(seen))
	}
	for _, w := range weights {
		if math.Abs(w-1) > 1e-9 {
			t.Fatalf("equal priorities should give unit IS weights, got %v", w)
		}
	}
}

func TestPrioritizedNaNPrioritySafe(t *testing.T) {
	p := NewPrioritizedReplay(2, 0.6)
	p.Add(Transition{})
	p.UpdatePriorities([]int{0}, []float64{math.NaN()})
	rng := rand.New(rand.NewSource(5))
	trs, _, _ := p.Sample(rng, 10, 0.4)
	if len(trs) != 10 {
		t.Fatal("NaN priority broke sampling")
	}
}
