package dqn

import (
	"math/rand"
	"testing"
)

// TestDoubleDQNLearnsBandit mirrors the plain-DQN bandit test with the
// Double DQN target rule enabled.
func TestDoubleDQNLearnsBandit(t *testing.T) {
	a := New(Config{
		StateDim:       2,
		Actions:        3,
		Hidden:         []int{24, 24},
		MemoryCapacity: 500,
		BatchSize:      32,
		TargetReplace:  50,
		LearnRate:      0.005,
		Epsilon:        EpsilonSchedule{Start: 1, End: 0.1, DecaySteps: 1500},
		Seed:           16,
		DoubleDQN:      true,
	})
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 2500; i++ {
		state := []float64{rng.Float64(), rng.Float64()}
		act := a.SelectAction(state)
		want := 0
		if state[0] >= 0.5 {
			want = 2
		}
		r := -30.0
		if act == want {
			r = 30
		} else if act == 1 {
			r = -10
		}
		a.Observe(Transition{State: state, Action: act, Reward: r, Done: true})
		a.Learn()
	}
	correct := 0
	for i := 0; i < 200; i++ {
		state := []float64{rng.Float64(), rng.Float64()}
		want := 0
		if state[0] >= 0.5 {
			want = 2
		}
		if a.Greedy(state) == want {
			correct++
		}
	}
	if correct < 180 {
		t.Fatalf("Double DQN bandit accuracy %d/200", correct)
	}
}

// TestDoubleDQNBootstrapsWithSequentialTask checks a 2-step chain where the
// second state's value must be bootstrapped: state s0 --a--> s1 (reward 0),
// s1 --correct--> +30. Both DQN variants must propagate value back to s0.
func TestDoubleDQNTemporalCredit(t *testing.T) {
	for _, double := range []bool{false, true} {
		a := New(Config{
			StateDim:       1,
			Actions:        2,
			Hidden:         []int{16, 16},
			MemoryCapacity: 400,
			BatchSize:      16,
			TargetReplace:  40,
			LearnRate:      0.01,
			Epsilon:        EpsilonSchedule{Start: 1, End: 0.05, DecaySteps: 800},
			Seed:           9,
			DoubleDQN:      double,
		})
		s0 := []float64{0}
		s1 := []float64{1}
		for i := 0; i < 1500; i++ {
			a0 := a.SelectAction(s0)
			// Action 1 from s0 leads to the rewarding state; action 0 dead-ends.
			if a0 == 1 {
				a.Observe(Transition{State: s0, Action: a0, Reward: 0, Next: s1})
				a1 := a.SelectAction(s1)
				r := -10.0
				if a1 == 0 {
					r = 30
				}
				a.Observe(Transition{State: s1, Action: a1, Reward: r, Done: true})
			} else {
				a.Observe(Transition{State: s0, Action: a0, Reward: 0, Done: true})
			}
			a.Learn()
		}
		if got := a.Greedy(s0); got != 1 {
			t.Fatalf("double=%v: s0 greedy action %d, want 1 (bootstrapped value)", double, got)
		}
		if got := a.Greedy(s1); got != 0 {
			t.Fatalf("double=%v: s1 greedy action %d, want 0", double, got)
		}
	}
}
