package dqn

import (
	"fmt"
	"math"
	"math/rand"
)

// PrioritizedReplay is proportional prioritized experience replay (Schaul
// et al.): transitions are sampled with probability proportional to
// |TD-error|^α, with importance-sampling weights correcting the induced
// bias. A sum-tree gives O(log n) sampling and priority updates.
//
// The paper's agent uses uniform replay; this is the standard extension,
// exposed so ablations can quantify what prioritization buys on the EMS
// task.
type PrioritizedReplay struct {
	capacity int
	alpha    float64
	// tree is a binary sum-tree over priorities; leaves live at
	// [capacity-1, 2*capacity-1).
	tree []float64
	data []Transition
	pos  int
	size int
	// maxPriority seeds new transitions so everything is replayed at least
	// once with high probability.
	maxPriority float64
}

// NewPrioritizedReplay returns a buffer with the given capacity and
// priority exponent alpha (0 = uniform, 1 = fully proportional; 0.6 is the
// usual default, selected when alpha <= 0).
func NewPrioritizedReplay(capacity int, alpha float64) *PrioritizedReplay {
	if capacity < 1 {
		panic(fmt.Sprintf("dqn: prioritized replay capacity %d < 1", capacity))
	}
	if alpha <= 0 {
		alpha = 0.6
	}
	// Round capacity up to a power of two so the tree stays a perfect
	// binary tree; the logical capacity is unchanged.
	cap2 := 1
	for cap2 < capacity {
		cap2 <<= 1
	}
	return &PrioritizedReplay{
		capacity:    capacity,
		alpha:       alpha,
		tree:        make([]float64, 2*cap2-1),
		data:        make([]Transition, capacity),
		maxPriority: 1,
	}
}

// leafBase returns the index of the first leaf.
func (p *PrioritizedReplay) leafBase() int { return len(p.tree) / 2 }

// Len returns the number of stored transitions.
func (p *PrioritizedReplay) Len() int { return p.size }

// Cap returns the logical capacity.
func (p *PrioritizedReplay) Cap() int { return p.capacity }

// Add stores a copy of the transition at maximal current priority, evicting
// the oldest once full. Like ReplayBuffer.Add, it copies State/Next into
// buffer-owned storage so callers may reuse their scratch slices.
func (p *PrioritizedReplay) Add(t Transition) {
	idx := p.pos
	copyTransition(&p.data[idx], t)
	p.setPriority(idx, p.maxPriority)
	p.pos = (p.pos + 1) % p.capacity
	if p.size < p.capacity {
		p.size++
	}
}

// setPriority writes priority^alpha into leaf idx and repairs the sums.
func (p *PrioritizedReplay) setPriority(idx int, priority float64) {
	if priority <= 0 || math.IsNaN(priority) {
		priority = 1e-6
	}
	node := p.leafBase() + idx
	p.tree[node] = math.Pow(priority, p.alpha)
	for node > 0 {
		node = (node - 1) / 2
		p.tree[node] = p.tree[2*node+1] + p.tree[2*node+2]
	}
}

// total returns the sum of all leaf weights.
func (p *PrioritizedReplay) total() float64 { return p.tree[0] }

// Sample draws n transitions ~ priority^alpha. It returns the transitions,
// their buffer indices (for UpdatePriorities), and importance-sampling
// weights normalized to max 1, computed with the given beta exponent
// (beta→1 fully corrects the sampling bias).
func (p *PrioritizedReplay) Sample(rng *rand.Rand, n int, beta float64) ([]Transition, []int, []float64) {
	if p.size == 0 {
		panic("dqn: Sample from empty prioritized replay")
	}
	if beta < 0 {
		beta = 0
	}
	out := make([]Transition, n)
	idxs := make([]int, n)
	weights := make([]float64, n)
	base := p.leafBase()
	maxW := 0.0
	for i := 0; i < n; i++ {
		r := rng.Float64() * p.total()
		node := 0
		for node < base {
			left := 2*node + 1
			if r <= p.tree[left] || p.tree[left+1] == 0 {
				node = left
			} else {
				r -= p.tree[left]
				node = left + 1
			}
		}
		idx := node - base
		if idx >= p.size { // numerical edge: clamp into the filled region
			idx = p.size - 1
			node = base + idx
		}
		idxs[i] = idx
		out[i] = p.data[idx]
		prob := p.tree[node] / p.total()
		w := math.Pow(float64(p.size)*prob, -beta)
		weights[i] = w
		if w > maxW {
			maxW = w
		}
	}
	if maxW > 0 {
		for i := range weights {
			weights[i] /= maxW
		}
	}
	return out, idxs, weights
}

// UpdatePriorities sets new |TD-error| priorities for previously sampled
// indices.
func (p *PrioritizedReplay) UpdatePriorities(idxs []int, tdErrors []float64) {
	if len(idxs) != len(tdErrors) {
		panic(fmt.Sprintf("dqn: UpdatePriorities %d indices vs %d errors", len(idxs), len(tdErrors)))
	}
	for i, idx := range idxs {
		if idx < 0 || idx >= p.capacity {
			panic(fmt.Sprintf("dqn: UpdatePriorities index %d out of range", idx))
		}
		pr := math.Abs(tdErrors[i]) + 1e-6
		if pr > p.maxPriority {
			p.maxPriority = pr
		}
		p.setPriority(idx, pr)
	}
}
