package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// numericGradParam estimates dLoss/dParam[idx] by central differences where
// loss = lossFn() recomputes the full forward pass + loss.
func numericGradParam(p *tensor.Matrix, idx int, lossFn func() float64) float64 {
	const h = 1e-5
	orig := p.Data[idx]
	p.Data[idx] = orig + h
	lp := lossFn()
	p.Data[idx] = orig - h
	lm := lossFn()
	p.Data[idx] = orig
	return (lp - lm) / (2 * h)
}

// checkModelGradients verifies analytic parameter gradients and input
// gradients of model against central differences for a random batch.
func checkModelGradients(t *testing.T, model *Sequential, inDim, batch int, loss Loss, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	x := tensor.RandNormal(rng, batch, inDim, 0, 1)
	pred := model.Forward(x)
	y := tensor.RandNormal(rng, pred.Rows, pred.Cols, 0, 1)

	lossFn := func() float64 {
		p := model.Forward(x)
		l, _ := loss.Loss(p, y)
		return l
	}

	model.ZeroGrads()
	p0 := model.Forward(x)
	_, g := loss.Loss(p0, y)
	dx := model.Backward(g)

	// Parameter gradients: sample a handful of indices from every matrix.
	for pi, p := range model.Params() {
		grad := model.Grads()[pi]
		n := p.Size()
		stride := n/7 + 1
		for idx := 0; idx < n; idx += stride {
			want := numericGradParam(p, idx, lossFn)
			got := grad.Data[idx]
			if math.Abs(got-want) > tol*(1+math.Abs(want)) {
				t.Fatalf("param %d elem %d: analytic %.8g vs numeric %.8g", pi, idx, got, want)
			}
		}
	}

	// Input gradients.
	stride := x.Size()/5 + 1
	for idx := 0; idx < x.Size(); idx += stride {
		orig := x.Data[idx]
		const h = 1e-5
		x.Data[idx] = orig + h
		lp := lossFn()
		x.Data[idx] = orig - h
		lm := lossFn()
		x.Data[idx] = orig
		want := (lp - lm) / (2 * h)
		got := dx.Data[idx]
		if math.Abs(got-want) > tol*(1+math.Abs(want)) {
			t.Fatalf("input elem %d: analytic %.8g vs numeric %.8g", idx, got, want)
		}
	}
}

func TestGradCheckDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	model := NewSequential(NewDense(rng, 6, 4))
	checkModelGradients(t, model, 6, 3, MSE{}, 1e-6)
}

func TestGradCheckDenseTanh(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	model := NewSequential(NewDenseXavier(rng, 5, 7), NewTanh(), NewDenseXavier(rng, 7, 2))
	checkModelGradients(t, model, 5, 4, MSE{}, 1e-5)
}

func TestGradCheckSigmoidStack(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	model := NewSequential(NewDenseXavier(rng, 4, 6), NewSigmoid(), NewDenseXavier(rng, 6, 3))
	checkModelGradients(t, model, 4, 2, MSE{}, 1e-5)
}

// ReLU and LeakyReLU have kinks at 0; central differences are still accurate
// away from the kink, which random continuous inputs hit with probability 0.
func TestGradCheckReLUStack(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	model := NewSequential(NewDense(rng, 5, 8), NewReLU(), NewDense(rng, 8, 2))
	checkModelGradients(t, model, 5, 3, MSE{}, 1e-5)
}

func TestGradCheckLeakyReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	model := NewSequential(NewDense(rng, 4, 4), NewLeakyReLU(0.1), NewDense(rng, 4, 2))
	checkModelGradients(t, model, 4, 3, MSE{}, 1e-5)
}

func TestGradCheckLSTM(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	model := NewSequential(NewLSTM(rng, 1, 5, 6), NewDenseXavier(rng, 5, 2))
	checkModelGradients(t, model, 6, 3, MSE{}, 1e-4)
}

func TestGradCheckLSTMMultiFeature(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	model := NewSequential(NewLSTM(rng, 3, 4, 5), NewDenseXavier(rng, 4, 1))
	checkModelGradients(t, model, 15, 2, MSE{}, 1e-4)
}

func TestGradCheckHuberLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	model := NewSequential(NewDense(rng, 4, 3))
	// Use a large-spread target so both Huber branches are exercised.
	x := tensor.RandNormal(rng, 5, 4, 0, 3)
	y := tensor.RandNormal(rng, 5, 3, 0, 3)
	loss := Huber{Delta: 1}
	lossFn := func() float64 {
		p := model.Forward(x)
		l, _ := loss.Loss(p, y)
		return l
	}
	model.ZeroGrads()
	p0 := model.Forward(x)
	_, g := loss.Loss(p0, y)
	model.Backward(g)
	for pi, p := range model.Params() {
		grad := model.Grads()[pi]
		for idx := 0; idx < p.Size(); idx += 3 {
			want := numericGradParam(p, idx, lossFn)
			got := grad.Data[idx]
			if math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
				t.Fatalf("Huber param %d elem %d: analytic %.8g vs numeric %.8g", pi, idx, got, want)
			}
		}
	}
}

func TestGradCheckMAELoss(t *testing.T) {
	// MAE gradient is a constant sign; check loss/grad pair directly.
	pred := tensor.NewFromSlice(1, 3, []float64{2, -1, 0.5})
	target := tensor.NewFromSlice(1, 3, []float64{1, 1, 0.5})
	l, g := MAE{}.Loss(pred, target)
	if math.Abs(l-3.0) > 1e-12 { // (1 + 2 + 0) summed over outputs, batch of 1
		t.Fatalf("MAE loss = %v, want 3", l)
	}
	want := []float64{1, -1, 0}
	for i, w := range want {
		if math.Abs(g.Data[i]-w) > 1e-12 {
			t.Fatalf("MAE grad[%d] = %v, want %v", i, g.Data[i], w)
		}
	}
}
