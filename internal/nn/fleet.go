package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Fleet runs N architecturally identical Sequential models through shared
// fleet-batched kernels: one tensor.Batched dispatch per layer stage per
// step instead of N per-model kernel calls. It is the compute vehicle
// behind forecast.HomeBatch — all homes sharing a device-type model
// architecture train and predict in lockstep.
//
// The fleet owns packed parameter/gradient slabs (tensor.Batched,
// fleet-major). Members keep owning their parameters: Gather() packs the
// live member matrices into the slabs before a batched op (required because
// federation rounds install averaged parameters into the member models
// between bouts), and ScatterGrads()/Scatter() copy gradients or updated
// parameters back. SlabParams/SlabGrads expose per-member views in exactly
// Sequential.Params() order so a member's own optimizer can step on slab
// data directly.
//
// Bit-exactness contract: Forward/Backward reproduce member-by-member the
// identical floating-point operations in the identical order as calling
// Sequential.Forward/Backward on each member (including the
// Dense→Activation fusion peephole), because every row routes through the
// same row kernels and the per-member loops mirror the layer code
// statement for statement. The fleet golden tests pin this bitwise.
//
// A Fleet is not safe for concurrent use, same as the member models.
type Fleet struct {
	N       int
	members []*Sequential
	layers  []fleetLayer // aligned 1:1 with members' Layers
}

// fleetLayer is one layer position across all fleet members.
type fleetLayer interface {
	// gather packs member n's parameters into the slabs (no-op for
	// parameter-free layers).
	gather(n int)
	// scatter copies slab parameters back into member n's matrices.
	scatter(n int)
	// scatterGrads overwrites member n's gradient matrices from the slabs.
	scatterGrads(n int)
	forward(x *tensor.Batched) *tensor.Batched
	backward(grad *tensor.Batched) *tensor.Batched
	zeroGrads()
	// slabParams/slabGrads return per-member slab views in the member
	// layer's Params()/Grads() order (nil for parameter-free layers).
	slabParams(n int) []*tensor.Matrix
	slabGrads(n int) []*tensor.Matrix
}

// NewFleet builds a fleet over the given members. Every member must have
// the same layer sequence with identical shapes; supported layer kinds are
// Dense, Activation, LSTM, and GRU. Any other layer (Conv1D/TCN stacks,
// Softmax, Dropout) returns an error — callers fall back to the per-model
// path, which stays fully supported.
func NewFleet(members []*Sequential) (*Fleet, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("nn: NewFleet needs at least one member")
	}
	ref := members[0]
	for i, m := range members[1:] {
		if len(m.Layers) != len(ref.Layers) {
			return nil, fmt.Errorf("nn: fleet member %d has %d layers, member 0 has %d", i+1, len(m.Layers), len(ref.Layers))
		}
	}
	f := &Fleet{N: len(members), members: members}
	for li, l := range ref.Layers {
		var fl fleetLayer
		var err error
		switch ref := l.(type) {
		case *Dense:
			fl, err = newFleetDense(members, li, ref)
		case *Activation:
			fl, err = newFleetActivation(members, li, ref)
		case *LSTM:
			fl, err = newFleetLSTM(members, li, ref)
		case *GRU:
			fl, err = newFleetGRU(members, li, ref)
		default:
			err = fmt.Errorf("nn: fleet does not support layer %s", l.Name())
		}
		if err != nil {
			return nil, err
		}
		f.layers = append(f.layers, fl)
	}
	return f, nil
}

// Members returns the fleet's member models in index order.
func (f *Fleet) Members() []*Sequential { return f.members }

// Gather packs every member's current parameters into the fleet slabs.
// Call it before a batched op whenever members' parameters may have changed
// outside the fleet (federation rounds, per-model training, checkpoints).
func (f *Fleet) Gather() {
	for _, fl := range f.layers {
		for n := 0; n < f.N; n++ {
			fl.gather(n)
		}
	}
}

// Scatter copies the slab parameters back into every member's matrices.
// Call it after stepping an optimizer on slab views so the members (the
// source of truth for federation and checkpoints) see the updates.
func (f *Fleet) Scatter() {
	for _, fl := range f.layers {
		for n := 0; n < f.N; n++ {
			fl.scatter(n)
		}
	}
}

// ScatterGrads overwrites every member's gradient matrices from the fleet
// slabs, so a member's own optimizer state (e.g. the DQN's Adam moments)
// can step exactly as if the member had run its own backward pass.
func (f *Fleet) ScatterGrads() {
	for _, fl := range f.layers {
		for n := 0; n < f.N; n++ {
			fl.scatterGrads(n)
		}
	}
}

// SlabParams returns member n's parameter views into the fleet slabs, in
// Sequential.Params() order.
func (f *Fleet) SlabParams(n int) []*tensor.Matrix {
	var out []*tensor.Matrix
	for _, fl := range f.layers {
		out = append(out, fl.slabParams(n)...)
	}
	return out
}

// SlabGrads returns member n's gradient views into the fleet slabs, in
// Sequential.Grads() order.
func (f *Fleet) SlabGrads(n int) []*tensor.Matrix {
	var out []*tensor.Matrix
	for _, fl := range f.layers {
		out = append(out, fl.slabGrads(n)...)
	}
	return out
}

// ZeroGrads clears the fleet gradient slabs.
func (f *Fleet) ZeroGrads() {
	for _, fl := range f.layers {
		fl.zeroGrads()
	}
}

// Forward runs the batched forward pass. x holds one input batch per
// member (same batch size for all members). The returned batch is a
// fleet-owned workspace, valid until the next Forward call. The
// Dense→Activation fusion peephole mirrors Sequential.Forward.
func (f *Fleet) Forward(x *tensor.Batched) *tensor.Batched {
	if x.N != f.N {
		panic(fmt.Sprintf("nn: fleet Forward batch N=%d, fleet N=%d", x.N, f.N))
	}
	for i := 0; i < len(f.layers); i++ {
		if d, ok := f.layers[i].(*fleetDense); ok && i+1 < len(f.layers) {
			if act, ok := f.layers[i+1].(*fleetActivation); ok {
				x = d.forwardFused(x, act)
				i++
				continue
			}
		}
		x = f.layers[i].forward(x)
	}
	return x
}

// Backward runs the batched backward pass, accumulating parameter
// gradients into the fleet slabs. Returns the input gradient (fleet-owned
// workspace).
func (f *Fleet) Backward(grad *tensor.Batched) *tensor.Batched {
	for i := len(f.layers) - 1; i >= 0; i-- {
		grad = f.layers[i].backward(grad)
	}
	return grad
}

// ---------------------------------------------------------------------------
// Dense

type fleetDense struct {
	members []*Dense
	in, out int

	w, b, dw, db *tensor.Batched
	x            *tensor.Batched
	y, dx        *tensor.Batched
	dwTmp, dbTmp *tensor.Batched
}

func newFleetDense(members []*Sequential, li int, ref *Dense) (*fleetDense, error) {
	fd := &fleetDense{in: ref.In(), out: ref.Out()}
	for mi, m := range members {
		d, ok := m.Layers[li].(*Dense)
		if !ok {
			return nil, fmt.Errorf("nn: fleet member %d layer %d is %s, want Dense", mi, li, m.Layers[li].Name())
		}
		if d.In() != fd.in || d.Out() != fd.out {
			return nil, fmt.Errorf("nn: fleet member %d Dense %dx%d, want %dx%d", mi, d.In(), d.Out(), fd.in, fd.out)
		}
		fd.members = append(fd.members, d)
	}
	n := len(members)
	fd.w = tensor.NewBatched(n, fd.in, fd.out)
	fd.b = tensor.NewBatched(n, 1, fd.out)
	fd.dw = tensor.NewBatched(n, fd.in, fd.out)
	fd.db = tensor.NewBatched(n, 1, fd.out)
	return fd, nil
}

func (fd *fleetDense) gather(n int) {
	fd.w.Item(n).CopyFrom(fd.members[n].W)
	fd.b.Item(n).CopyFrom(fd.members[n].B)
}

func (fd *fleetDense) scatter(n int) {
	fd.members[n].W.CopyFrom(fd.w.Item(n))
	fd.members[n].B.CopyFrom(fd.b.Item(n))
}

func (fd *fleetDense) scatterGrads(n int) {
	fd.members[n].dW.CopyFrom(fd.dw.Item(n))
	fd.members[n].dB.CopyFrom(fd.db.Item(n))
}

func (fd *fleetDense) slabParams(n int) []*tensor.Matrix {
	return []*tensor.Matrix{fd.w.Item(n), fd.b.Item(n)}
}

func (fd *fleetDense) slabGrads(n int) []*tensor.Matrix {
	return []*tensor.Matrix{fd.dw.Item(n), fd.db.Item(n)}
}

func (fd *fleetDense) zeroGrads() {
	fd.dw.Zero()
	fd.db.Zero()
}

func (fd *fleetDense) forward(x *tensor.Batched) *tensor.Batched {
	fd.x = x
	fd.y = tensor.EnsureBatched(fd.y, x.N, x.Rows, fd.out)
	tensor.BatchedDenseForwardInto(fd.y, x, fd.w, fd.b)
	return fd.y
}

// forwardFused mirrors Dense.forwardFused: matmul + bias + activation in
// one sweep, with both layers' caches set exactly as separate calls would.
func (fd *fleetDense) forwardFused(x *tensor.Batched, act *fleetActivation) *tensor.Batched {
	fd.x = x
	fd.y = tensor.EnsureBatched(fd.y, x.N, x.Rows, fd.out)
	act.x = fd.y
	act.y = tensor.EnsureBatched(act.y, x.N, x.Rows, fd.out)
	tensor.BatchedDenseForwardApplyInto(fd.y, act.y, x, fd.w, fd.b, act.fn)
	return act.y
}

func (fd *fleetDense) backward(grad *tensor.Batched) *tensor.Batched {
	if fd.x == nil {
		panic("nn: fleet Dense backward before forward")
	}
	fd.dwTmp = tensor.EnsureBatched(fd.dwTmp, grad.N, fd.in, fd.out)
	fd.dbTmp = tensor.EnsureBatched(fd.dbTmp, grad.N, 1, fd.out)
	fd.dx = tensor.EnsureBatched(fd.dx, grad.N, grad.Rows, fd.in)
	tensor.BatchedDenseBackwardInto(fd.dwTmp, fd.dbTmp, fd.dx, fd.x, fd.w, grad)
	tensor.BatchedAccumulate(fd.dw, fd.dwTmp)
	tensor.BatchedAccumulate(fd.db, fd.dbTmp)
	return fd.dx
}

// ---------------------------------------------------------------------------
// Activation

type fleetActivation struct {
	fn    func(float64) float64
	deriv func(x, y float64) float64
	x, y  *tensor.Batched
	dx    *tensor.Batched
}

func newFleetActivation(members []*Sequential, li int, ref *Activation) (*fleetActivation, error) {
	for mi, m := range members {
		a, ok := m.Layers[li].(*Activation)
		if !ok {
			return nil, fmt.Errorf("nn: fleet member %d layer %d is %s, want %s", mi, li, m.Layers[li].Name(), ref.Name())
		}
		if a.Name() != ref.Name() {
			return nil, fmt.Errorf("nn: fleet member %d activation %s, want %s", mi, a.Name(), ref.Name())
		}
	}
	// Activation functions are pure and identical across members; member 0's
	// closures serve the whole fleet.
	return &fleetActivation{fn: ref.fn, deriv: ref.deriv}, nil
}

func (fa *fleetActivation) gather(int)                      {}
func (fa *fleetActivation) scatter(int)                     {}
func (fa *fleetActivation) scatterGrads(int)                {}
func (fa *fleetActivation) slabParams(int) []*tensor.Matrix { return nil }
func (fa *fleetActivation) slabGrads(int) []*tensor.Matrix  { return nil }
func (fa *fleetActivation) zeroGrads()                      {}

func (fa *fleetActivation) forward(x *tensor.Batched) *tensor.Batched {
	fa.x = x
	fa.y = tensor.EnsureBatched(fa.y, x.N, x.Rows, x.Cols)
	tensor.BatchedApplyInto(fa.y, x, fa.fn)
	return fa.y
}

func (fa *fleetActivation) backward(grad *tensor.Batched) *tensor.Batched {
	if fa.x == nil {
		panic("nn: fleet Activation backward before forward")
	}
	fa.dx = tensor.EnsureBatched(fa.dx, grad.N, grad.Rows, grad.Cols)
	for i := range fa.dx.Data {
		fa.dx.Data[i] = grad.Data[i] * fa.deriv(fa.x.Data[i], fa.y.Data[i])
	}
	return fa.dx
}

// ---------------------------------------------------------------------------
// LSTM

type fleetLSTM struct {
	members            []*LSTM
	in, hidden, seqLen int

	w, b, dw, db *tensor.Batched

	// Per-timestep caches, fleet-major mirrors of LSTM's caches.
	zs             []*tensor.Batched
	is, fs, gs, os []*tensor.Batched
	cs, hs         []*tensor.Batched
	tanhCs         []*tensor.Batched
	batch          int

	pre              *tensor.Batched
	dxBuf, dhBuf, dc *tensor.Batched
	dpre, dz         *tensor.Batched
	dwStep, dbStep   *tensor.Batched
}

func newFleetLSTM(members []*Sequential, li int, ref *LSTM) (*fleetLSTM, error) {
	fl := &fleetLSTM{in: ref.InputSize, hidden: ref.Hidden, seqLen: ref.SeqLen}
	for mi, m := range members {
		l, ok := m.Layers[li].(*LSTM)
		if !ok {
			return nil, fmt.Errorf("nn: fleet member %d layer %d is %s, want LSTM", mi, li, m.Layers[li].Name())
		}
		if l.InputSize != fl.in || l.Hidden != fl.hidden || l.SeqLen != fl.seqLen {
			return nil, fmt.Errorf("nn: fleet member %d %s, want LSTM(in=%d,h=%d,T=%d)", mi, l.Name(), fl.in, fl.hidden, fl.seqLen)
		}
		fl.members = append(fl.members, l)
	}
	n := len(members)
	fl.w = tensor.NewBatched(n, fl.in+fl.hidden, 4*fl.hidden)
	fl.b = tensor.NewBatched(n, 1, 4*fl.hidden)
	fl.dw = tensor.NewBatched(n, fl.in+fl.hidden, 4*fl.hidden)
	fl.db = tensor.NewBatched(n, 1, 4*fl.hidden)
	return fl, nil
}

func (fl *fleetLSTM) gather(n int) {
	fl.w.Item(n).CopyFrom(fl.members[n].W)
	fl.b.Item(n).CopyFrom(fl.members[n].B)
}

func (fl *fleetLSTM) scatter(n int) {
	fl.members[n].W.CopyFrom(fl.w.Item(n))
	fl.members[n].B.CopyFrom(fl.b.Item(n))
}

func (fl *fleetLSTM) scatterGrads(n int) {
	fl.members[n].dW.CopyFrom(fl.dw.Item(n))
	fl.members[n].dB.CopyFrom(fl.db.Item(n))
}

func (fl *fleetLSTM) slabParams(n int) []*tensor.Matrix {
	return []*tensor.Matrix{fl.w.Item(n), fl.b.Item(n)}
}

func (fl *fleetLSTM) slabGrads(n int) []*tensor.Matrix {
	return []*tensor.Matrix{fl.dw.Item(n), fl.db.Item(n)}
}

func (fl *fleetLSTM) zeroGrads() {
	fl.dw.Zero()
	fl.db.Zero()
}

func (fl *fleetLSTM) ensureCaches(n, b int) {
	if fl.zs == nil {
		fl.zs = make([]*tensor.Batched, fl.seqLen)
		fl.is = make([]*tensor.Batched, fl.seqLen)
		fl.fs = make([]*tensor.Batched, fl.seqLen)
		fl.gs = make([]*tensor.Batched, fl.seqLen)
		fl.os = make([]*tensor.Batched, fl.seqLen)
		fl.tanhCs = make([]*tensor.Batched, fl.seqLen)
		fl.cs = make([]*tensor.Batched, fl.seqLen+1)
		fl.hs = make([]*tensor.Batched, fl.seqLen+1)
	}
	h := fl.hidden
	for t := 0; t < fl.seqLen; t++ {
		fl.zs[t] = tensor.EnsureBatched(fl.zs[t], n, b, fl.in+h)
		fl.is[t] = tensor.EnsureBatched(fl.is[t], n, b, h)
		fl.fs[t] = tensor.EnsureBatched(fl.fs[t], n, b, h)
		fl.gs[t] = tensor.EnsureBatched(fl.gs[t], n, b, h)
		fl.os[t] = tensor.EnsureBatched(fl.os[t], n, b, h)
		fl.tanhCs[t] = tensor.EnsureBatched(fl.tanhCs[t], n, b, h)
	}
	for t := 0; t <= fl.seqLen; t++ {
		fl.cs[t] = tensor.EnsureBatched(fl.cs[t], n, b, h)
		fl.hs[t] = tensor.EnsureBatched(fl.hs[t], n, b, h)
	}
	fl.pre = tensor.EnsureBatched(fl.pre, n, b, 4*h)
}

// forward mirrors LSTM.Forward with flat (member,row) indexing: row fr of a
// fleet slab is member fr/b's row fr%b, so the assembly copies and the
// elementwise gate loop are the member code verbatim, while the gate
// matmul is one batched dense call for the whole fleet per timestep.
func (fl *fleetLSTM) forward(x *tensor.Batched) *tensor.Batched {
	if x.Cols != fl.seqLen*fl.in {
		panic(fmt.Sprintf("nn: fleet LSTM forward input width %d, want %d", x.Cols, fl.seqLen*fl.in))
	}
	b := x.Rows
	fl.batch = b
	h, in := fl.hidden, fl.in
	rows := x.N * b
	fl.ensureCaches(x.N, b)
	fl.cs[0].Zero()
	fl.hs[0].Zero()

	for t := 0; t < fl.seqLen; t++ {
		z := fl.zs[t]
		hPrev := fl.hs[t]
		zw := in + h
		for fr := 0; fr < rows; fr++ {
			zRow := z.Data[fr*zw : (fr+1)*zw]
			copy(zRow[:in], x.Data[fr*x.Cols+t*in:fr*x.Cols+(t+1)*in])
			copy(zRow[in:], hPrev.Data[fr*h:(fr+1)*h])
		}
		pre := fl.pre
		tensor.BatchedDenseForwardInto(pre, z, fl.w, fl.b)

		it, ft, gt, ot := fl.is[t], fl.fs[t], fl.gs[t], fl.os[t]
		ct, tct, ht := fl.cs[t+1], fl.tanhCs[t], fl.hs[t+1]
		cPrevM := fl.cs[t]
		for fr := 0; fr < rows; fr++ {
			preRow := pre.Data[fr*4*h : (fr+1)*4*h]
			cPrev := cPrevM.Data[fr*h : (fr+1)*h]
			iRow := it.Data[fr*h : (fr+1)*h]
			fRow := ft.Data[fr*h : (fr+1)*h]
			gRow := gt.Data[fr*h : (fr+1)*h]
			oRow := ot.Data[fr*h : (fr+1)*h]
			cRow := ct.Data[fr*h : (fr+1)*h]
			tcRow := tct.Data[fr*h : (fr+1)*h]
			hRow := ht.Data[fr*h : (fr+1)*h]
			for c := 0; c < h; c++ {
				iv := sigmoid(preRow[c])
				fv := sigmoid(preRow[h+c])
				gv := math.Tanh(preRow[2*h+c])
				ov := sigmoid(preRow[3*h+c])
				cv := fv*cPrev[c] + iv*gv
				tcv := math.Tanh(cv)
				iRow[c] = iv
				fRow[c] = fv
				gRow[c] = gv
				oRow[c] = ov
				cRow[c] = cv
				tcRow[c] = tcv
				hRow[c] = ov * tcv
			}
		}
	}
	return fl.hs[fl.seqLen]
}

// backward mirrors LSTM.Backward. The per-timestep parameter-gradient
// products keep the member structure exactly — per-member dwStep/dbStep
// computed then accumulated in one add — because folding the accumulation
// into the product would change floating-point association.
func (fl *fleetLSTM) backward(grad *tensor.Batched) *tensor.Batched {
	if fl.zs == nil {
		panic("nn: fleet LSTM backward before forward")
	}
	b, h, in := fl.batch, fl.hidden, fl.in
	if grad.Rows != b || grad.Cols != h {
		panic(fmt.Sprintf("nn: fleet LSTM backward grad shape %dx%d, want %dx%d", grad.Rows, grad.Cols, b, h))
	}
	n := grad.N
	rows := n * b
	fl.dxBuf = tensor.EnsureBatched(fl.dxBuf, n, b, fl.seqLen*in)
	fl.dhBuf = tensor.EnsureBatched(fl.dhBuf, n, b, h)
	fl.dc = tensor.EnsureBatched(fl.dc, n, b, h)
	fl.dpre = tensor.EnsureBatched(fl.dpre, n, b, 4*h)
	fl.dz = tensor.EnsureBatched(fl.dz, n, b, in+h)
	fl.dwStep = tensor.EnsureBatched(fl.dwStep, n, in+h, 4*h)
	fl.dbStep = tensor.EnsureBatched(fl.dbStep, n, 1, 4*h)
	dx, dh, dc, dpre, dz := fl.dxBuf, fl.dhBuf, fl.dc, fl.dpre, fl.dz
	copy(dh.Data, grad.Data)
	dc.Zero()

	for t := fl.seqLen - 1; t >= 0; t-- {
		it, ft, gt, ot := fl.is[t], fl.fs[t], fl.gs[t], fl.os[t]
		tct := fl.tanhCs[t]
		cPrev := fl.cs[t]
		for fr := 0; fr < rows; fr++ {
			dhR := dh.Data[fr*h : (fr+1)*h]
			dcR := dc.Data[fr*h : (fr+1)*h]
			iR := it.Data[fr*h : (fr+1)*h]
			fR := ft.Data[fr*h : (fr+1)*h]
			gR := gt.Data[fr*h : (fr+1)*h]
			oR := ot.Data[fr*h : (fr+1)*h]
			tcR := tct.Data[fr*h : (fr+1)*h]
			cpR := cPrev.Data[fr*h : (fr+1)*h]
			dpreR := dpre.Data[fr*4*h : (fr+1)*4*h]
			for c := 0; c < h; c++ {
				do := dhR[c] * tcR[c]
				dcTot := dcR[c] + dhR[c]*oR[c]*(1-tcR[c]*tcR[c])
				di := dcTot * gR[c]
				df := dcTot * cpR[c]
				dg := dcTot * iR[c]
				dpreR[c] = di * iR[c] * (1 - iR[c])
				dpreR[h+c] = df * fR[c] * (1 - fR[c])
				dpreR[2*h+c] = dg * (1 - gR[c]*gR[c])
				dpreR[3*h+c] = do * oR[c] * (1 - oR[c])
				dcR[c] = dcTot * fR[c]
			}
		}
		tensor.BatchedMatMulTransAInto(fl.dwStep, fl.zs[t], dpre)
		tensor.BatchedAccumulate(fl.dw, fl.dwStep)
		tensor.BatchedColSumsInto(fl.dbStep, dpre)
		tensor.BatchedAccumulate(fl.db, fl.dbStep)
		tensor.BatchedMatMulTransBInto(dz, dpre, fl.w)
		for fr := 0; fr < rows; fr++ {
			dzR := dz.Data[fr*(in+h) : (fr+1)*(in+h)]
			copy(dx.Data[fr*fl.seqLen*in+t*in:fr*fl.seqLen*in+(t+1)*in], dzR[:in])
			copy(dh.Data[fr*h:(fr+1)*h], dzR[in:])
		}
	}
	return dx
}

// ---------------------------------------------------------------------------
// GRU

type fleetGRU struct {
	members            []*GRU
	in, hidden, seqLen int

	w, b, dw, db *tensor.Batched

	xRef       *tensor.Batched
	hs         []*tensor.Batched
	zs, rs, ns []*tensor.Batched
	batch      int

	dxBuf, dhBuf, dhNext *tensor.Batched
}

func newFleetGRU(members []*Sequential, li int, ref *GRU) (*fleetGRU, error) {
	fg := &fleetGRU{in: ref.InputSize, hidden: ref.Hidden, seqLen: ref.SeqLen}
	for mi, m := range members {
		g, ok := m.Layers[li].(*GRU)
		if !ok {
			return nil, fmt.Errorf("nn: fleet member %d layer %d is %s, want GRU", mi, li, m.Layers[li].Name())
		}
		if g.InputSize != fg.in || g.Hidden != fg.hidden || g.SeqLen != fg.seqLen {
			return nil, fmt.Errorf("nn: fleet member %d %s, want GRU(in=%d,h=%d,T=%d)", mi, g.Name(), fg.in, fg.hidden, fg.seqLen)
		}
		fg.members = append(fg.members, g)
	}
	n := len(members)
	fg.w = tensor.NewBatched(n, fg.in+fg.hidden, 3*fg.hidden)
	fg.b = tensor.NewBatched(n, 1, 3*fg.hidden)
	fg.dw = tensor.NewBatched(n, fg.in+fg.hidden, 3*fg.hidden)
	fg.db = tensor.NewBatched(n, 1, 3*fg.hidden)
	return fg, nil
}

func (fg *fleetGRU) gather(n int) {
	fg.w.Item(n).CopyFrom(fg.members[n].W)
	fg.b.Item(n).CopyFrom(fg.members[n].B)
}

func (fg *fleetGRU) scatter(n int) {
	fg.members[n].W.CopyFrom(fg.w.Item(n))
	fg.members[n].B.CopyFrom(fg.b.Item(n))
}

func (fg *fleetGRU) scatterGrads(n int) {
	fg.members[n].dW.CopyFrom(fg.dw.Item(n))
	fg.members[n].dB.CopyFrom(fg.db.Item(n))
}

func (fg *fleetGRU) slabParams(n int) []*tensor.Matrix {
	return []*tensor.Matrix{fg.w.Item(n), fg.b.Item(n)}
}

func (fg *fleetGRU) slabGrads(n int) []*tensor.Matrix {
	return []*tensor.Matrix{fg.dw.Item(n), fg.db.Item(n)}
}

func (fg *fleetGRU) zeroGrads() {
	fg.dw.Zero()
	fg.db.Zero()
}

// forward mirrors GRU.Forward: the same scalar gate loops, with the member
// weight slab selected per flat row. The batching win for GRU is the
// single dispatch and contiguous fleet memory, not a kernel change.
func (fg *fleetGRU) forward(x *tensor.Batched) *tensor.Batched {
	if x.Cols != fg.seqLen*fg.in {
		panic(fmt.Sprintf("nn: fleet GRU forward input width %d, want %d", x.Cols, fg.seqLen*fg.in))
	}
	b, h, in := x.Rows, fg.hidden, fg.in
	fg.batch = b
	fg.xRef = x
	n := x.N
	rows := n * b
	if fg.hs == nil {
		fg.zs = make([]*tensor.Batched, fg.seqLen)
		fg.rs = make([]*tensor.Batched, fg.seqLen)
		fg.ns = make([]*tensor.Batched, fg.seqLen)
		fg.hs = make([]*tensor.Batched, fg.seqLen+1)
	}
	for t := 0; t < fg.seqLen; t++ {
		fg.zs[t] = tensor.EnsureBatched(fg.zs[t], n, b, h)
		fg.rs[t] = tensor.EnsureBatched(fg.rs[t], n, b, h)
		fg.ns[t] = tensor.EnsureBatched(fg.ns[t], n, b, h)
	}
	for t := 0; t <= fg.seqLen; t++ {
		fg.hs[t] = tensor.EnsureBatched(fg.hs[t], n, b, h)
	}
	fg.hs[0].Zero()

	wStride := (in + h) * 3 * h
	for t := 0; t < fg.seqLen; t++ {
		zt, rt, nt, ht := fg.zs[t], fg.rs[t], fg.ns[t], fg.hs[t+1]
		hPrevM := fg.hs[t]
		for fr := 0; fr < rows; fr++ {
			m := fr / b
			wData := fg.w.Data[m*wStride : (m+1)*wStride]
			bData := fg.b.Data[m*3*h : (m+1)*3*h]
			xr := x.Data[fr*x.Cols+t*in : fr*x.Cols+(t+1)*in]
			hPrev := hPrevM.Data[fr*h : (fr+1)*h]
			zRow := zt.Data[fr*h : (fr+1)*h]
			rRow := rt.Data[fr*h : (fr+1)*h]
			nRow := nt.Data[fr*h : (fr+1)*h]
			hRow := ht.Data[fr*h : (fr+1)*h]
			for c := 0; c < h; c++ {
				var preZ, preR float64
				preZ = bData[c]
				preR = bData[h+c]
				for k, xv := range xr {
					preZ += xv * wData[k*3*h+c]
					preR += xv * wData[k*3*h+h+c]
				}
				for k, hv := range hPrev {
					preZ += hv * wData[(in+k)*3*h+c]
					preR += hv * wData[(in+k)*3*h+h+c]
				}
				zRow[c] = sigmoid(preZ)
				rRow[c] = sigmoid(preR)
			}
			for c := 0; c < h; c++ {
				preN := bData[2*h+c]
				for k, xv := range xr {
					preN += xv * wData[k*3*h+2*h+c]
				}
				for k, hv := range hPrev {
					preN += rRow[k] * hv * wData[(in+k)*3*h+2*h+c]
				}
				nv := math.Tanh(preN)
				nRow[c] = nv
				zv := zRow[c]
				hRow[c] = (1-zv)*nv + zv*hPrev[c]
			}
		}
	}
	return fg.hs[fg.seqLen]
}

// backward mirrors GRU.Backward statement for statement, accumulating into
// the member's gradient slab. Rows of one member run in their original
// serial order (the scalar loop accumulates into shared dW/dB).
func (fg *fleetGRU) backward(grad *tensor.Batched) *tensor.Batched {
	if fg.xRef == nil {
		panic("nn: fleet GRU backward before forward")
	}
	b, h, in := fg.batch, fg.hidden, fg.in
	if grad.Rows != b || grad.Cols != h {
		panic(fmt.Sprintf("nn: fleet GRU backward grad shape %dx%d, want %dx%d", grad.Rows, grad.Cols, b, h))
	}
	n := grad.N
	rows := n * b
	x := fg.xRef
	fg.dxBuf = tensor.EnsureBatched(fg.dxBuf, n, b, fg.seqLen*in)
	fg.dxBuf.Zero()
	fg.dhBuf = tensor.EnsureBatched(fg.dhBuf, n, b, h)
	fg.dhNext = tensor.EnsureBatched(fg.dhNext, n, b, h)
	dx := fg.dxBuf
	dh := fg.dhBuf
	dhNext := fg.dhNext
	copy(dh.Data, grad.Data)

	wStride := (in + h) * 3 * h
	for t := fg.seqLen - 1; t >= 0; t-- {
		zt, rt, nt := fg.zs[t], fg.rs[t], fg.ns[t]
		hPrevM := fg.hs[t]
		dhNext.Zero()
		for fr := 0; fr < rows; fr++ {
			m := fr / b
			wData := fg.w.Data[m*wStride : (m+1)*wStride]
			dwData := fg.dw.Data[m*wStride : (m+1)*wStride]
			dbData := fg.db.Data[m*3*h : (m+1)*3*h]
			dhR := dh.Data[fr*h : (fr+1)*h]
			zR := zt.Data[fr*h : (fr+1)*h]
			rR := rt.Data[fr*h : (fr+1)*h]
			nR := nt.Data[fr*h : (fr+1)*h]
			hpR := hPrevM.Data[fr*h : (fr+1)*h]
			xR := x.Data[fr*x.Cols+t*in : fr*x.Cols+(t+1)*in]
			dxR := dx.Data[fr*fg.seqLen*in+t*in : fr*fg.seqLen*in+(t+1)*in]
			dhN := dhNext.Data[fr*h : (fr+1)*h]

			for c := 0; c < h; c++ {
				dht := dhR[c]
				dz := dht * (hpR[c] - nR[c])
				dn := dht * (1 - zR[c])
				dhN[c] += dht * zR[c]

				dpreZ := dz * zR[c] * (1 - zR[c])
				dpreN := dn * (1 - nR[c]*nR[c])

				dbData[c] += dpreZ
				dbData[2*h+c] += dpreN
				for k, xv := range xR {
					dwData[k*3*h+c] += xv * dpreZ
					dwData[k*3*h+2*h+c] += xv * dpreN
					dxR[k] += dpreZ*wData[k*3*h+c] + dpreN*wData[k*3*h+2*h+c]
				}
				for k := 0; k < h; k++ {
					hv := hpR[k]
					dwData[(in+k)*3*h+c] += hv * dpreZ
					dwData[(in+k)*3*h+2*h+c] += rR[k] * hv * dpreN
					dhN[k] += dpreZ * wData[(in+k)*3*h+c]
					grk := dpreN * wData[(in+k)*3*h+2*h+c]
					dhN[k] += grk * rR[k]
					drk := grk * hv
					dpreR := drk * rR[k] * (1 - rR[k])
					dbData[h+k] += dpreR
					for kk, xv := range xR {
						dwData[kk*3*h+h+k] += xv * dpreR
						dxR[kk] += dpreR * wData[kk*3*h+h+k]
					}
					for kk := 0; kk < h; kk++ {
						dwData[(in+kk)*3*h+h+k] += hpR[kk] * dpreR
						dhN[kk] += dpreR * wData[(in+kk)*3*h+h+k]
					}
				}
			}
		}
		dh, dhNext = dhNext, dh
		fg.dhBuf, fg.dhNext = dh, dhNext
	}
	return dx
}
