package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// The workspace refactor promises two things: layer outputs stay numerically
// identical call over call, and the steady-state Forward/Backward cycle at a
// fixed batch size performs zero heap allocations.

func TestDenseWorkspaceAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(rng, 10, 8)
	x := tensor.RandNormal(rng, 4, 10, 0, 1)
	g := tensor.RandNormal(rng, 4, 8, 0, 1)
	d.Forward(x)
	d.Backward(g)
	if n := testing.AllocsPerRun(20, func() { d.Forward(x) }); n != 0 {
		t.Errorf("Dense.Forward allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(20, func() { d.Backward(g) }); n != 0 {
		t.Errorf("Dense.Backward allocates %v per run, want 0", n)
	}
}

func TestSequentialForwardAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mlp := NewMLP(rng, 12, 16, 16, 3)
	x := tensor.RandNormal(rng, 4, 12, 0, 1)
	mlp.Forward(x)
	if n := testing.AllocsPerRun(20, func() { mlp.Forward(x) }); n != 0 {
		t.Errorf("Sequential.Forward allocates %v per run, want 0", n)
	}
	g := tensor.RandNormal(rng, 4, 3, 0, 1)
	mlp.Backward(g)
	if n := testing.AllocsPerRun(20, func() { mlp.Backward(g) }); n != 0 {
		t.Errorf("Sequential.Backward allocates %v per run, want 0", n)
	}
}

func TestWorkspaceReuseKeepsResultsIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mlp := NewMLP(rng, 6, 9, 3)
	x := tensor.RandNormal(rng, 5, 6, 0, 1)
	first := mlp.Forward(x).Clone()
	for i := 0; i < 3; i++ {
		if got := mlp.Forward(x); !got.Equal(first) {
			t.Fatalf("Forward pass %d differs from first", i+1)
		}
	}
	// Batch-size changes regrow the workspace and still compute correctly:
	// a 2-row batch must give the row-wise prefix of the 5-row result.
	x2 := tensor.NewFromSlice(2, 6, append(append([]float64{}, x.Row(0)...), x.Row(1)...))
	small := mlp.Forward(x2)
	for c := 0; c < small.Cols; c++ {
		if small.At(0, c) != first.At(0, c) || small.At(1, c) != first.At(1, c) {
			t.Fatal("result after batch-size change differs")
		}
	}
	// And back up to the original batch size.
	if got := mlp.Forward(x); !got.Equal(first) {
		t.Fatal("result after growing back differs")
	}
}

func TestActivationSoftmaxDropoutAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.RandNormal(rng, 4, 6, 0, 1)
	g := tensor.RandNormal(rng, 4, 6, 0, 1)
	layers := []struct {
		name string
		l    Layer
	}{
		{"ReLU", NewReLU()},
		{"Sigmoid", NewSigmoid()},
		{"Tanh", NewTanh()},
		{"Softmax", NewSoftmax()},
		{"Dropout", NewDropout(rng, 0.3)},
	}
	for _, tc := range layers {
		tc.l.Forward(x)
		tc.l.Backward(g)
		if n := testing.AllocsPerRun(20, func() { tc.l.Forward(x) }); n != 0 {
			t.Errorf("%s.Forward allocates %v per run, want 0", tc.name, n)
		}
		if n := testing.AllocsPerRun(20, func() { tc.l.Backward(g) }); n != 0 {
			t.Errorf("%s.Backward allocates %v per run, want 0", tc.name, n)
		}
	}
}

func TestDropoutEvalModeIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDropout(rng, 0.5)
	x := tensor.RandNormal(rng, 3, 4, 0, 1)
	g := tensor.RandNormal(rng, 3, 4, 0, 1)
	// A training pass first, so a stale mask exists.
	d.Forward(x)
	d.SetTraining(false)
	if got := d.Forward(x); got != x {
		t.Fatal("eval-mode Forward should return x itself")
	}
	if got := d.Backward(g); got != g {
		t.Fatal("eval-mode Backward should return grad itself (stale mask must not apply)")
	}
}

func TestLossIntoMatchesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pred := tensor.RandNormal(rng, 3, 4, 0, 2)
	target := tensor.RandNormal(rng, 3, 4, 0, 2)
	grad := tensor.New(3, 4)
	type intoLoss interface {
		LossInto(grad, pred, target *tensor.Matrix) float64
	}
	for _, l := range []Loss{MSE{}, MAE{}, Huber{Delta: 0.7}} {
		wantLoss, wantGrad := l.Loss(pred, target)
		gotLoss := l.(intoLoss).LossInto(grad, pred, target)
		if gotLoss != wantLoss || !grad.Equal(wantGrad) {
			t.Errorf("%s: LossInto disagrees with Loss", l.Name())
		}
		if n := testing.AllocsPerRun(20, func() { l.(intoLoss).LossInto(grad, pred, target) }); n != 0 {
			t.Errorf("%s: LossInto allocates %v per run, want 0", l.Name(), n)
		}
	}
	// MaskedHuber takes a mask; check it zeroes unmasked entries of a dirty
	// gradient buffer.
	mask := tensor.New(3, 4)
	mask.Set(0, 1, 1)
	mask.Set(2, 3, 1)
	mh := MaskedHuber{Delta: 0.7}
	wantLoss, wantGrad := mh.Loss(pred, target, mask)
	for i := range grad.Data {
		grad.Data[i] = 99
	}
	gotLoss := mh.LossInto(grad, pred, target, mask)
	if gotLoss != wantLoss || !grad.Equal(wantGrad) {
		t.Error("MaskedHuber: LossInto disagrees with Loss")
	}
	if n := testing.AllocsPerRun(20, func() { mh.LossInto(grad, pred, target, mask) }); n != 0 {
		t.Errorf("MaskedHuber: LossInto allocates %v per run, want 0", n)
	}
}
