package nn

import (
	"math"

	"repro/internal/tensor"
)

// Activation is a parameter-free elementwise layer defined by a function and
// its derivative expressed in terms of the cached forward input and output.
type Activation struct {
	name  string
	fn    func(float64) float64
	deriv func(x, y float64) float64 // derivative given input x and output y
	x     *tensor.Matrix
	// y and dx are layer-owned workspaces, regrown only when the batch
	// size changes.
	y, dx *tensor.Matrix
}

// Forward implements Layer. The returned matrix is a layer-owned workspace.
func (a *Activation) Forward(x *tensor.Matrix) *tensor.Matrix {
	a.x = x
	a.y = tensor.EnsureShape(a.y, x.Rows, x.Cols)
	tensor.ApplyInto(a.y, x, a.fn)
	return a.y
}

// Backward implements Layer. The returned matrix is a layer-owned workspace.
func (a *Activation) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if a.x == nil {
		panic("nn: Activation Backward called before Forward")
	}
	a.dx = tensor.EnsureShape(a.dx, grad.Rows, grad.Cols)
	for i := range a.dx.Data {
		a.dx.Data[i] = grad.Data[i] * a.deriv(a.x.Data[i], a.y.Data[i])
	}
	return a.dx
}

// Params implements Layer (activations are parameter-free).
func (a *Activation) Params() []*tensor.Matrix { return nil }

// Grads implements Layer.
func (a *Activation) Grads() []*tensor.Matrix { return nil }

// ZeroGrads implements Layer.
func (a *Activation) ZeroGrads() {}

// Name implements Layer.
func (a *Activation) Name() string { return a.name }

// NewReLU returns a rectified-linear activation, max(0, x).
func NewReLU() *Activation {
	return &Activation{
		name: "ReLU",
		fn:   func(x float64) float64 { return math.Max(0, x) },
		deriv: func(x, _ float64) float64 {
			if x > 0 {
				return 1
			}
			return 0
		},
	}
}

// NewLeakyReLU returns a leaky ReLU with the given negative slope.
func NewLeakyReLU(slope float64) *Activation {
	return &Activation{
		name: "LeakyReLU",
		fn: func(x float64) float64 {
			if x > 0 {
				return x
			}
			return slope * x
		},
		deriv: func(x, _ float64) float64 {
			if x > 0 {
				return 1
			}
			return slope
		},
	}
}

// NewSigmoid returns a logistic activation, 1/(1+e^-x).
func NewSigmoid() *Activation {
	return &Activation{
		name:  "Sigmoid",
		fn:    sigmoid,
		deriv: func(_, y float64) float64 { return y * (1 - y) },
	}
}

// NewTanh returns a hyperbolic-tangent activation.
func NewTanh() *Activation {
	return &Activation{
		name:  "Tanh",
		fn:    math.Tanh,
		deriv: func(_, y float64) float64 { return 1 - y*y },
	}
}

// NewIdentity returns a pass-through activation (useful in tests and as a
// regression head).
func NewIdentity() *Activation {
	return &Activation{
		name:  "Identity",
		fn:    func(x float64) float64 { return x },
		deriv: func(_, _ float64) float64 { return 1 },
	}
}

func sigmoid(x float64) float64 {
	// Numerically stable split to avoid overflow in exp for large |x|.
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}
