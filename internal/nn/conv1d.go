package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Conv1D is a 1-D convolution over time series, the building block of
// temporal-convolutional forecasters (an alternative to the recurrent
// models; dilation gives exponentially growing receptive fields at constant
// depth).
//
// Input layout matches the recurrent layers: batch x (SeqLen*InChannels),
// timestep-major. Output: batch x (OutLen*OutChannels) with
// OutLen = SeqLen − Dilation·(Kernel−1) (valid padding).
//
// Weights: W has shape (Kernel*InChannels) x OutChannels (taps-major),
// B is 1 x OutChannels.
type Conv1D struct {
	InChannels, OutChannels, Kernel, SeqLen, Dilation int

	W, B   *tensor.Matrix
	dW, dB *tensor.Matrix
	x      *tensor.Matrix
}

// NewConv1D builds a valid-padding 1-D convolution; dilation < 1 is
// treated as 1.
func NewConv1D(rng *rand.Rand, inChannels, outChannels, kernel, seqLen, dilation int) *Conv1D {
	if dilation < 1 {
		dilation = 1
	}
	if inChannels < 1 || outChannels < 1 || kernel < 1 || seqLen < 1 {
		panic(fmt.Sprintf("nn: invalid Conv1D config in=%d out=%d k=%d T=%d", inChannels, outChannels, kernel, seqLen))
	}
	if seqLen-dilation*(kernel-1) < 1 {
		panic(fmt.Sprintf("nn: Conv1D kernel %d (dilation %d) does not fit sequence %d", kernel, dilation, seqLen))
	}
	return &Conv1D{
		InChannels:  inChannels,
		OutChannels: outChannels,
		Kernel:      kernel,
		SeqLen:      seqLen,
		Dilation:    dilation,
		W:           tensor.XavierUniform(rng, kernel*inChannels, outChannels),
		B:           tensor.New(1, outChannels),
		dW:          tensor.New(kernel*inChannels, outChannels),
		dB:          tensor.New(1, outChannels),
	}
}

// OutLen returns the output sequence length.
func (c *Conv1D) OutLen() int { return c.SeqLen - c.Dilation*(c.Kernel-1) }

// OutWidth returns the flattened output width.
func (c *Conv1D) OutWidth() int { return c.OutLen() * c.OutChannels }

// Forward implements Layer.
func (c *Conv1D) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != c.SeqLen*c.InChannels {
		panic(fmt.Sprintf("nn: Conv1D forward input width %d, want %d", x.Cols, c.SeqLen*c.InChannels))
	}
	c.x = x
	outLen := c.OutLen()
	y := tensor.New(x.Rows, outLen*c.OutChannels)
	for r := 0; r < x.Rows; r++ {
		in := x.Row(r)
		out := y.Row(r)
		for t := 0; t < outLen; t++ {
			for oc := 0; oc < c.OutChannels; oc++ {
				acc := c.B.Data[oc]
				for k := 0; k < c.Kernel; k++ {
					srcT := t + k*c.Dilation
					for ic := 0; ic < c.InChannels; ic++ {
						acc += in[srcT*c.InChannels+ic] * c.W.Data[(k*c.InChannels+ic)*c.OutChannels+oc]
					}
				}
				out[t*c.OutChannels+oc] = acc
			}
		}
	}
	return y
}

// Backward implements Layer.
func (c *Conv1D) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if c.x == nil {
		panic("nn: Conv1D Backward called before Forward")
	}
	outLen := c.OutLen()
	if grad.Cols != outLen*c.OutChannels || grad.Rows != c.x.Rows {
		panic(fmt.Sprintf("nn: Conv1D backward grad shape %dx%d, want %dx%d",
			grad.Rows, grad.Cols, c.x.Rows, outLen*c.OutChannels))
	}
	dx := tensor.New(c.x.Rows, c.x.Cols)
	for r := 0; r < c.x.Rows; r++ {
		in := c.x.Row(r)
		g := grad.Row(r)
		dIn := dx.Row(r)
		for t := 0; t < outLen; t++ {
			for oc := 0; oc < c.OutChannels; oc++ {
				go_ := g[t*c.OutChannels+oc]
				if go_ == 0 {
					continue
				}
				c.dB.Data[oc] += go_
				for k := 0; k < c.Kernel; k++ {
					srcT := t + k*c.Dilation
					for ic := 0; ic < c.InChannels; ic++ {
						wIdx := (k*c.InChannels+ic)*c.OutChannels + oc
						c.dW.Data[wIdx] += in[srcT*c.InChannels+ic] * go_
						dIn[srcT*c.InChannels+ic] += c.W.Data[wIdx] * go_
					}
				}
			}
		}
	}
	return dx
}

// Params implements Layer.
func (c *Conv1D) Params() []*tensor.Matrix { return []*tensor.Matrix{c.W, c.B} }

// Grads implements Layer.
func (c *Conv1D) Grads() []*tensor.Matrix { return []*tensor.Matrix{c.dW, c.dB} }

// ZeroGrads implements Layer.
func (c *Conv1D) ZeroGrads() {
	c.dW.Zero()
	c.dB.Zero()
}

// Name implements Layer.
func (c *Conv1D) Name() string {
	return fmt.Sprintf("Conv1D(%d→%d,k=%d,d=%d,T=%d)", c.InChannels, c.OutChannels, c.Kernel, c.Dilation, c.SeqLen)
}

// Dropout zeroes a fraction of activations during training and scales the
// survivors (inverted dropout), acting as the identity in evaluation mode.
// Call SetTraining to switch modes; layers default to training.
type Dropout struct {
	// Rate is the drop probability in [0, 1).
	Rate     float64
	rng      *rand.Rand
	training bool
	// mask is reused across steps; maskValid records whether the last
	// Forward masked (training with Rate > 0) so Backward knows whether to
	// apply it.
	mask      *tensor.Matrix
	maskValid bool
	// y and dx are layer-owned workspaces, regrown only when the batch
	// size changes.
	y, dx *tensor.Matrix
}

// NewDropout builds a dropout layer with its own RNG stream.
func NewDropout(rng *rand.Rand, rate float64) *Dropout {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("nn: dropout rate %v outside [0,1)", rate))
	}
	return &Dropout{Rate: rate, rng: rand.New(rand.NewSource(rng.Int63())), training: true}
}

// SetTraining toggles between training (masking) and evaluation (identity).
func (d *Dropout) SetTraining(training bool) { d.training = training }

// Forward implements Layer. In training mode the returned matrix is a
// layer-owned workspace; in evaluation mode it is x itself.
func (d *Dropout) Forward(x *tensor.Matrix) *tensor.Matrix {
	if !d.training || d.Rate == 0 {
		d.maskValid = false
		return x
	}
	keep := 1 - d.Rate
	d.mask = tensor.EnsureShape(d.mask, x.Rows, x.Cols)
	d.maskValid = true
	d.y = tensor.EnsureShape(d.y, x.Rows, x.Cols)
	for i, v := range x.Data {
		if d.rng.Float64() < keep {
			d.mask.Data[i] = 1 / keep
			d.y.Data[i] = v / keep
		} else {
			d.mask.Data[i] = 0
			d.y.Data[i] = 0
		}
	}
	return d.y
}

// Backward implements Layer. When the last Forward masked, the returned
// matrix is a layer-owned workspace; otherwise it is grad itself.
func (d *Dropout) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if !d.maskValid {
		return grad
	}
	d.dx = tensor.EnsureShape(d.dx, grad.Rows, grad.Cols)
	tensor.HadamardInto(d.dx, grad, d.mask)
	return d.dx
}

// Params implements Layer.
func (d *Dropout) Params() []*tensor.Matrix { return nil }

// Grads implements Layer.
func (d *Dropout) Grads() []*tensor.Matrix { return nil }

// ZeroGrads implements Layer.
func (d *Dropout) ZeroGrads() {}

// Name implements Layer.
func (d *Dropout) Name() string { return fmt.Sprintf("Dropout(%g)", d.Rate) }
